package asm

import (
	"fmt"
	"sort"
	"strings"
)

// Line maps one emitted statement to its source line: the profiler's
// symbolization path and the -listing output are both built from this
// table. Entries are sorted by Addr and never overlap (the location
// counter only moves forward).
type Line struct {
	// Addr is the first byte the statement emitted; Size is how many
	// bytes it covers (8 for la and wide li, 4 for other instructions,
	// the data length for directives).
	Addr, Size uint32
	// Line is the 1-based source line number.
	Line int32
	// Code marks instruction statements (including pseudo expansions);
	// data directives leave it false. The vet analyzer's text/data split
	// is built from this flag.
	Code bool
}

// Label is one code label in address order. Unlike Symbols this excludes
// .equ names (which are values, not addresses), so a nearest-label search
// over it always lands on a real program location.
type Label struct {
	Name string
	Addr uint32
}

// Locate returns the source line whose statement covers addr.
func (p *Program) Locate(addr uint32) (line int, ok bool) {
	i := sort.Search(len(p.Lines), func(i int) bool { return p.Lines[i].Addr > addr })
	if i == 0 {
		return 0, false
	}
	l := p.Lines[i-1]
	if addr >= l.Addr+l.Size {
		return 0, false
	}
	return int(l.Line), true
}

// NearestLabel returns the last label at or before addr and the byte
// offset from it — the "stream_triad+0x18" form of a program counter.
func (p *Program) NearestLabel(addr uint32) (name string, off uint32, ok bool) {
	i := sort.Search(len(p.Labels), func(i int) bool { return p.Labels[i].Addr > addr })
	if i == 0 {
		return "", 0, false
	}
	l := p.Labels[i-1]
	return l.Name, addr - l.Addr, true
}

// SymbolizePC renders addr as "label+0xoff (file:line)", degrading
// gracefully when the label, line table or file name is missing.
func (p *Program) SymbolizePC(addr uint32) string {
	name, off, ok := p.NearestLabel(addr)
	if !ok {
		return fmt.Sprintf("%#x", addr)
	}
	s := name
	if off > 0 {
		s += fmt.Sprintf("+%#x", off)
	}
	if line, ok := p.Locate(addr); ok {
		file := p.File
		if file == "" {
			file = "?"
		}
		s += fmt.Sprintf(" (%s:%d)", file, line)
	}
	return s
}

// FuncName names the enclosing function of addr — the nearest label,
// or the hex address outside any label. Together with SymbolizePC this
// makes *Program a prof.Symbolizer.
func (p *Program) FuncName(addr uint32) string {
	name, _, ok := p.NearestLabel(addr)
	if !ok {
		return fmt.Sprintf("%#x", addr)
	}
	return name
}

// SourceFile returns the source path for reports ("?" when unset).
func (p *Program) SourceFile() string {
	if p.File == "" {
		return "?"
	}
	return p.File
}

// buildLineTable fills Lines and Labels from the laid-out statements; it
// runs after a successful emit, so addresses and the symbol table are
// final.
func (a *assembler) buildLineTable(p *Program) {
	for i := range a.stmts {
		st := &a.stmts[i]
		if st.size == 0 {
			continue
		}
		if st.kind == stDirective && st.directive == ".align" {
			continue // padding has no meaningful source line
		}
		p.Lines = append(p.Lines, Line{Addr: st.addr, Size: st.size, Line: int32(st.line), Code: st.kind == stInst})
	}
	for name, addr := range a.symbols {
		if a.equs[name] {
			continue
		}
		p.Labels = append(p.Labels, Label{Name: name, Addr: addr})
	}
	sort.Slice(p.Labels, func(i, j int) bool {
		if p.Labels[i].Addr != p.Labels[j].Addr {
			return p.Labels[i].Addr < p.Labels[j].Addr
		}
		return p.Labels[i].Name < p.Labels[j].Name
	})
}

// Listing renders an address/bytes/source listing of the program against
// its source text: one row per emitted statement, with the image bytes in
// memory order. Data longer than one row's worth of bytes is elided with
// its size.
func Listing(p *Program, src string) string {
	lines := strings.Split(src, "\n")
	var sb strings.Builder
	sb.WriteString("  addr      bytes             line  source\n")
	for _, l := range p.Lines {
		text := ""
		if int(l.Line) >= 1 && int(l.Line) <= len(lines) {
			text = strings.ReplaceAll(lines[l.Line-1], "\t", "        ")
		}
		var bytes string
		const maxShown = 8
		off := l.Addr - p.Origin
		n := l.Size
		if n > maxShown {
			n = maxShown
		}
		for i := uint32(0); i < n; i++ {
			bytes += fmt.Sprintf("%02x", p.Bytes[off+i])
		}
		if l.Size > maxShown {
			bytes += fmt.Sprintf("+%d", l.Size-maxShown)
		}
		fmt.Fprintf(&sb, "  %06x  %-16s %5d  %s\n", l.Addr, bytes, l.Line, text)
	}
	return sb.String()
}
