package asm

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"cyclops/internal/isa"
)

// emit is the second pass: with the symbol table complete it encodes every
// statement into the image.
func (a *assembler) emit() {
	for i := range a.stmts {
		st := &a.stmts[i]
		switch st.kind {
		case stDirective:
			a.emitDirective(st)
		case stInst:
			a.emitInst(st)
		}
	}
}

func (a *assembler) put8(addr uint32, v byte) {
	a.image[addr-a.origin] = v
}

func (a *assembler) put16(addr uint32, v uint16) {
	a.put8(addr, byte(v))
	a.put8(addr+1, byte(v>>8))
}

func (a *assembler) put32(addr uint32, v uint32) {
	a.put16(addr, uint16(v))
	a.put16(addr+2, uint16(v>>16))
}

func (a *assembler) put64(addr uint32, v uint64) {
	a.put32(addr, uint32(v))
	a.put32(addr+4, uint32(v>>32))
}

func (a *assembler) emitDirective(st *statement) {
	eval := func(s string) (int64, bool) {
		v, err := evalExpr(s, a.symbols)
		if err != nil {
			a.errorf(st.line, "%s: %v", st.directive, err)
			return 0, false
		}
		return v, true
	}
	switch st.directive {
	case ".byte":
		for i, arg := range st.args {
			if v, ok := eval(arg); ok {
				a.put8(st.addr+uint32(i), byte(v))
			}
		}
	case ".half":
		for i, arg := range st.args {
			if v, ok := eval(arg); ok {
				a.put16(st.addr+uint32(2*i), uint16(v))
			}
		}
	case ".word":
		for i, arg := range st.args {
			if v, ok := eval(arg); ok {
				a.put32(st.addr+uint32(4*i), uint32(v))
			}
		}
	case ".double":
		for i, arg := range st.args {
			f, err := strconv.ParseFloat(arg, 64)
			if err != nil {
				// Allow integer expressions too: .double N*8 is a
				// common way to place constants from .equ values.
				if v, ok := eval(arg); ok {
					f = float64(v)
				} else {
					continue
				}
			}
			a.put64(st.addr+uint32(8*i), math.Float64bits(f))
		}
	case ".ascii", ".asciz":
		addr := st.addr
		for _, arg := range st.args {
			b, err := unescapeString(arg)
			if err != nil {
				a.errorf(st.line, "%s: %v", st.directive, err)
				return
			}
			for _, c := range b {
				a.put8(addr, c)
				addr++
			}
			if st.directive == ".asciz" {
				a.put8(addr, 0)
				addr++
			}
		}
	}
	// .label/.equ/.org/.align/.space emit nothing.
}

// emitInst encodes one (possibly pseudo) instruction.
func (a *assembler) emitInst(st *statement) {
	fail := func(format string, args ...interface{}) {
		a.errorf(st.line, format, args...)
	}
	enc := func(off uint32, in isa.Inst) {
		w, err := in.Encode()
		if err != nil {
			fail("%v", err)
			return
		}
		a.put32(st.addr+off, w)
	}
	ops := st.operands
	need := func(n int) bool {
		if len(ops) != n {
			fail("%s needs %d operands, got %d", st.mnemonic, n, len(ops))
			return false
		}
		return true
	}
	reg := func(s string) uint8 {
		r, err := parseReg(s)
		if err != nil {
			fail("%v", err)
		}
		return r
	}
	eval := func(s string) int64 {
		v, err := evalExpr(s, a.symbols)
		if err != nil {
			fail("%v", err)
		}
		return v
	}
	// branchOff converts an absolute target expression into a
	// word-relative offset from the instruction after this one.
	branchOff := func(s string, width int32) int32 {
		target := uint32(eval(s))
		diff := int64(target) - int64(st.addr) - 4
		if diff%4 != 0 {
			fail("branch target %#x is not word aligned", target)
			return 0
		}
		off := diff / 4
		limit := int64(1)<<(width-1) - 1
		if off < -limit-1 || off > limit {
			fail("branch target %#x out of range (offset %d words)", target, off)
			return 0
		}
		return int32(off)
	}
	// memOperand parses "imm(reg)" with an optional immediate part.
	memOperand := func(s string) (imm int32, base uint8) {
		open := strings.LastIndexByte(s, '(')
		if open < 0 || !strings.HasSuffix(s, ")") {
			fail("bad memory operand %q, want imm(reg)", s)
			return 0, 0
		}
		base = reg(s[open+1 : len(s)-1])
		immStr := strings.TrimSpace(s[:open])
		if immStr != "" {
			imm = int32(eval(immStr))
		}
		return imm, base
	}

	// Pseudo-instructions first.
	switch st.mnemonic {
	case "nop":
		if need(0) {
			enc(0, isa.Inst{Op: isa.OpADDI})
		}
		return
	case "mov":
		if need(2) {
			enc(0, isa.Inst{Op: isa.OpADDI, A: reg(ops[0]), B: reg(ops[1])})
		}
		return
	case "not":
		if need(2) {
			r := reg(ops[1])
			enc(0, isa.Inst{Op: isa.OpNOR, A: reg(ops[0]), B: r, C: r})
		}
		return
	case "neg":
		if need(2) {
			enc(0, isa.Inst{Op: isa.OpSUB, A: reg(ops[0]), B: isa.RZero, C: reg(ops[1])})
		}
		return
	case "li", "la":
		if !need(2) {
			return
		}
		rd := reg(ops[0])
		v := uint32(eval(ops[1]))
		if st.size == 4 {
			enc(0, isa.Inst{Op: isa.OpADDI, A: rd, Imm: int32(v)})
			return
		}
		enc(0, isa.Inst{Op: isa.OpLUI, A: rd, Imm: int32(v >> 13)})
		enc(4, isa.Inst{Op: isa.OpORI, A: rd, B: rd, Imm: int32(v & 0x1fff)})
		return
	case "b":
		if need(1) {
			enc(0, isa.Inst{Op: isa.OpBEQ, Imm: branchOff(ops[0], 13)})
		}
		return
	case "j":
		if need(1) {
			enc(0, isa.Inst{Op: isa.OpJAL, A: isa.RZero, Imm: branchOff(ops[0], 19)})
		}
		return
	case "call":
		if need(1) {
			enc(0, isa.Inst{Op: isa.OpJAL, A: isa.RLR, Imm: branchOff(ops[0], 19)})
		}
		return
	case "ret":
		if need(0) {
			enc(0, isa.Inst{Op: isa.OpJALR, A: isa.RZero, B: isa.RLR})
		}
		return
	case "bgt", "ble", "bgtu", "bleu":
		if !need(3) {
			return
		}
		swapped := map[string]isa.Op{
			"bgt": isa.OpBLT, "ble": isa.OpBGE,
			"bgtu": isa.OpBLTU, "bleu": isa.OpBGEU,
		}[st.mnemonic]
		enc(0, isa.Inst{Op: swapped, A: reg(ops[1]), B: reg(ops[0]), Imm: branchOff(ops[2], 13)})
		return
	}

	op, ok := isa.ByName(st.mnemonic)
	if !ok {
		fail("unknown mnemonic %q", st.mnemonic)
		return
	}
	info := isa.Lookup(op)
	in := isa.Inst{Op: op}
	switch info.Format {
	case isa.FmtR:
		switch {
		case info.Mem: // atomics: rd, (ra), rb
			if !need(3) {
				return
			}
			in.A = reg(ops[0])
			inner := strings.TrimSuffix(strings.TrimPrefix(ops[1], "("), ")")
			if inner == ops[1] {
				fail("%s address operand must be parenthesised: (reg)", st.mnemonic)
				return
			}
			in.B = reg(inner)
			in.C = reg(ops[2])
		case op == isa.OpFNEG || op == isa.OpFABS || op == isa.OpFMOV ||
			op == isa.OpFSQRT || op == isa.OpFCVTDW || op == isa.OpFCVTWD:
			if !need(2) {
				return
			}
			in.A, in.B = reg(ops[0]), reg(ops[1])
		default:
			if !need(3) {
				return
			}
			in.A, in.B, in.C = reg(ops[0]), reg(ops[1]), reg(ops[2])
		}
	case isa.FmtR4:
		if !need(4) {
			return
		}
		in.A, in.B, in.C, in.D = reg(ops[0]), reg(ops[1]), reg(ops[2]), reg(ops[3])
	case isa.FmtI:
		switch {
		case info.Mem, op == isa.OpJALR: // rd, imm(ra)
			if !need(2) {
				return
			}
			in.A = reg(ops[0])
			in.Imm, in.B = memOperand(ops[1])
		case op == isa.OpMFSPR, op == isa.OpMTSPR:
			if !need(2) {
				return
			}
			in.A = reg(ops[0])
			in.Imm = int32(eval(ops[1]))
		default:
			if !need(3) {
				return
			}
			in.A, in.B = reg(ops[0]), reg(ops[1])
			in.Imm = int32(eval(ops[2]))
		}
	case isa.FmtS:
		if !need(2) {
			return
		}
		in.A = reg(ops[0])
		in.Imm, in.B = memOperand(ops[1])
	case isa.FmtB:
		if !need(3) {
			return
		}
		in.A, in.B = reg(ops[0]), reg(ops[1])
		in.Imm = branchOff(ops[2], 13)
	case isa.FmtU:
		if !need(2) {
			return
		}
		in.A = reg(ops[0])
		in.Imm = int32(eval(ops[1]))
	case isa.FmtJ:
		if !need(2) {
			return
		}
		in.A = reg(ops[0])
		in.Imm = branchOff(ops[1], 19)
	case isa.FmtN:
		if !need(0) {
			return
		}
	}
	if len(a.errs) > 0 && a.errs[len(a.errs)-1].Line == st.line {
		return // operand errors already reported
	}
	enc(0, in)
}

// Disassemble renders the image as one instruction per line, for the
// cyclops-asm -d tool and for debugging.
func Disassemble(p *Program) string {
	var sb strings.Builder
	for off := uint32(0); off+4 <= uint32(len(p.Bytes)); off += 4 {
		addr := p.Origin + off
		w := p.Word(addr)
		fmt.Fprintf(&sb, "%06x: %08x  %s\n", addr, w, isa.Decode(w))
	}
	return sb.String()
}
