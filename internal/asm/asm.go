// Package asm implements a two-pass assembler for the Cyclops ISA.
//
// The source language is a conventional RISC assembly dialect:
//
//	; STREAM copy inner loop
//	        .equ  N, 2048
//	        .org  0x100
//	_start: la    r8, src          ; pseudo: lui+ori
//	        li    r9, N
//	loop:   ld    d16, 0(r8)
//	        sd    d16, 0x2000(r8)
//	        addi  r8, r8, 8
//	        addi  r9, r9, -1
//	        bne   r9, r0, loop
//	        halt
//	src:    .space N*8
//
// Registers are r0..r63 (aliases: zero, sp, lr, a0..a3). Double-precision
// operands use dN, an alias for the even register N of an (N, N+1) pair.
// Branch and jump targets are expressions evaluating to absolute byte
// addresses; the assembler converts them to word-relative offsets.
//
// Directives: .org .align .space .byte .half .word .double .ascii .asciz
// .equ. Pseudo-instructions: nop, mov, li, la, not, neg, b, j, call, ret,
// bgt, ble, bgtu, bleu.
package asm

import (
	"fmt"
	"sort"
	"strings"
)

// Program is an assembled memory image.
type Program struct {
	// Origin is the load address of Bytes[0].
	Origin uint32
	// Bytes is the image, little-endian words.
	Bytes []byte
	// Entry is the initial program counter: the _start symbol when
	// defined, the origin otherwise.
	Entry uint32
	// Symbols maps every defined label and .equ name to its value.
	Symbols map[string]uint32
	// File names the source for diagnostics and symbolized reports; the
	// assembler leaves it empty and callers that know the path set it.
	File string
	// Lines is the address-sorted line table (see Locate); Labels the
	// address-sorted code labels (see NearestLabel). Together they turn a
	// program counter back into "label+0xoff (file:line)".
	Lines  []Line
	Labels []Label
}

// Word returns the 32-bit word at byte address addr, which must be inside
// the image and aligned.
func (p *Program) Word(addr uint32) uint32 {
	off := addr - p.Origin
	b := p.Bytes[off : off+4]
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// Error is an assembly diagnostic tied to a source line. File is the
// source name when the caller assembled through AssembleNamed, so tools
// report clickable file:line positions instead of bare line numbers.
type Error struct {
	File string
	Line int
	Msg  string
}

func (e Error) Error() string {
	if e.File != "" {
		return fmt.Sprintf("%s:%d: %s", e.File, e.Line, e.Msg)
	}
	return fmt.Sprintf("line %d: %s", e.Line, e.Msg)
}

// ErrorList collects every diagnostic of a failed assembly.
type ErrorList []Error

func (l ErrorList) Error() string {
	if len(l) == 0 {
		return "no errors"
	}
	msgs := make([]string, len(l))
	for i, e := range l {
		msgs[i] = e.Error()
	}
	return strings.Join(msgs, "\n")
}

// Assemble translates source text into a Program.
func Assemble(src string) (*Program, error) { return AssembleNamed("", src) }

// AssembleNamed is Assemble with a source name: the name lands in the
// Program's File field and in every diagnostic, so errors print as
// file:line instead of a bare line number.
func AssembleNamed(file, src string) (*Program, error) {
	a := &assembler{symbols: make(map[string]uint32)}
	a.parse(src)
	if len(a.errs) == 0 {
		a.layout()
	}
	if len(a.errs) == 0 {
		a.emit()
	}
	if len(a.errs) > 0 {
		for i := range a.errs {
			a.errs[i].File = file
		}
		sort.Slice(a.errs, func(i, j int) bool { return a.errs[i].Line < a.errs[j].Line })
		return nil, a.errs
	}
	entry := a.origin
	if e, ok := a.symbols["_start"]; ok {
		entry = e
	}
	p := &Program{Origin: a.origin, Bytes: a.image, Entry: entry, Symbols: a.symbols, File: file}
	a.buildLineTable(p)
	return p, nil
}

// stKind discriminates parsed statements.
type stKind uint8

const (
	stInst stKind = iota
	stDirective
)

// statement is one parsed source statement (labels are applied during
// parsing and do not become statements).
type statement struct {
	line int
	kind stKind

	// Instructions.
	mnemonic string
	operands []string

	// Directives.
	directive string
	args      []string

	// Layout results.
	addr uint32
	size uint32
}

type assembler struct {
	stmts   []statement
	symbols map[string]uint32
	equs    map[string]bool // names defined by .equ (not addresses)
	errs    ErrorList

	origin    uint32
	originSet bool
	image     []byte
}

func (a *assembler) errorf(line int, format string, args ...interface{}) {
	a.errs = append(a.errs, Error{Line: line, Msg: fmt.Sprintf(format, args...)})
}

// parse splits the source into statements and records label positions
// symbolically (their values are assigned during layout).
func (a *assembler) parse(src string) {
	a.equs = make(map[string]bool)
	for i, raw := range strings.Split(src, "\n") {
		line := i + 1
		text := raw
		if j := strings.IndexAny(text, ";#"); j >= 0 {
			text = text[:j]
		}
		text = strings.TrimSpace(text)
		// Peel off any leading labels.
		for {
			j := strings.Index(text, ":")
			if j < 0 {
				break
			}
			name := strings.TrimSpace(text[:j])
			if !isIdent(name) {
				break
			}
			a.stmts = append(a.stmts, statement{line: line, kind: stDirective, directive: ".label", args: []string{name}})
			text = strings.TrimSpace(text[j+1:])
		}
		if text == "" {
			continue
		}
		fields := strings.SplitN(text, " ", 2)
		head := strings.ToLower(fields[0])
		rest := ""
		if len(fields) == 2 {
			rest = strings.TrimSpace(fields[1])
		}
		if strings.HasPrefix(head, ".") {
			a.stmts = append(a.stmts, statement{
				line: line, kind: stDirective, directive: head, args: splitOperands(rest),
			})
			continue
		}
		a.stmts = append(a.stmts, statement{
			line: line, kind: stInst, mnemonic: head, operands: splitOperands(rest),
		})
	}
}

// splitOperands splits on commas that are outside parentheses and quotes.
func splitOperands(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	depth := 0
	inStr := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case inStr:
			if c == '\\' {
				i++
			} else if c == '"' {
				inStr = false
			}
		case c == '"':
			inStr = true
		case c == '(':
			depth++
		case c == ')':
			depth--
		case c == ',' && depth == 0:
			out = append(out, strings.TrimSpace(s[start:i]))
			start = i + 1
		}
	}
	out = append(out, strings.TrimSpace(s[start:]))
	return out
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c == '_' || c == '.':
		case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
