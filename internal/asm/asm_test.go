package asm

import (
	"math"
	"strings"
	"testing"

	"cyclops/internal/isa"
)

func mustAssemble(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Assemble(src)
	if err != nil {
		t.Fatalf("assemble failed:\n%v", err)
	}
	return p
}

func decodeAt(p *Program, addr uint32) isa.Inst { return isa.Decode(p.Word(addr)) }

func TestBasicInstructions(t *testing.T) {
	p := mustAssemble(t, `
		add  r3, r4, r5
		addi r6, r7, -12
		lw   r8, 16(r1)
		sw   r8, -4(sp)
		ld   d16, 8(r9)
		sd   d16, 0(r9)
		fma  d20, d22, d24, d26
		fsqrt d8, d10
		amoadd r3, (r4), r5
		mfspr r9, 4
		mtspr r9, 4
		sync
		halt
	`)
	want := []string{
		"add r3, r4, r5",
		"addi r6, r7, -12",
		"lw r8, 16(r1)",
		"sw r8, -4(r1)",
		"ld r16, 8(r9)",
		"sd r16, 0(r9)",
		"fma r20, r22, r24, r26",
		"fsqrt r8, r10",
		"amoadd r3, (r4), r5",
		"mfspr r9, 4",
		"mtspr r9, 4",
		"sync",
		"halt",
	}
	for i, w := range want {
		if got := decodeAt(p, uint32(4*i)).String(); got != w {
			t.Errorf("inst %d = %q, want %q", i, got, w)
		}
	}
}

func TestLabelsAndBranches(t *testing.T) {
	p := mustAssemble(t, `
_start:	addi r3, r0, 10
loop:	addi r3, r3, -1
	bne  r3, r0, loop
	b    done
	nop
done:	halt
	`)
	if p.Entry != 0 {
		t.Errorf("entry = %#x, want 0", p.Entry)
	}
	// bne at address 8 targets loop (4): offset = (4-12)/4 = -2.
	in := decodeAt(p, 8)
	if in.Op != isa.OpBNE || in.Imm != -2 {
		t.Errorf("bne = %+v, want offset -2", in)
	}
	// b at 12 targets done (20): offset = (20-16)/4 = 1, encoded as beq r0,r0.
	in = decodeAt(p, 12)
	if in.Op != isa.OpBEQ || in.A != 0 || in.B != 0 || in.Imm != 1 {
		t.Errorf("b = %+v, want beq r0,r0,+1", in)
	}
}

func TestForwardAndBackwardJumps(t *testing.T) {
	p := mustAssemble(t, `
	j fwd
	nop
fwd:	call back
	halt
back:	ret
	`)
	if in := decodeAt(p, 0); in.Op != isa.OpJAL || in.A != 0 || in.Imm != 1 {
		t.Errorf("j = %+v", in)
	}
	if in := decodeAt(p, 8); in.Op != isa.OpJAL || in.A != isa.RLR || in.Imm != 1 {
		t.Errorf("call = %+v", in)
	}
	if in := decodeAt(p, 16); in.Op != isa.OpJALR || in.B != isa.RLR {
		t.Errorf("ret = %+v", in)
	}
}

func TestLiSmallAndLarge(t *testing.T) {
	p := mustAssemble(t, `
	li r3, 42
	li r4, 0x12345678
	li r5, -1
	`)
	if in := decodeAt(p, 0); in.Op != isa.OpADDI || in.Imm != 42 {
		t.Errorf("small li = %+v", in)
	}
	// 0x12345678: lui gets the top 19 bits, ori the low 13.
	in1, in2 := decodeAt(p, 4), decodeAt(p, 8)
	if in1.Op != isa.OpLUI || in2.Op != isa.OpORI {
		t.Fatalf("large li = %v / %v", in1, in2)
	}
	v := uint32(in1.Imm)<<13 | uint32(in2.Imm)&0x1fff
	if v != 0x12345678 {
		t.Errorf("large li reconstructs to %#x", v)
	}
	// -1 fits signed 13 bits.
	if in := decodeAt(p, 12); in.Op != isa.OpADDI || in.Imm != -1 {
		t.Errorf("li -1 = %+v", in)
	}
}

func TestLiForwardReferenceUsesTwoWords(t *testing.T) {
	// A forward symbol cannot be sized in pass 1, so li expands to
	// lui+ori even when the final value is small.
	p := mustAssemble(t, `
	li r3, tiny
	halt
	.equ after, 1	; defined after use? .equ evaluates in pass 1 order
tiny:	halt
	`)
	in1, in2 := decodeAt(p, 0), decodeAt(p, 4)
	if in1.Op != isa.OpLUI || in2.Op != isa.OpORI {
		t.Fatalf("forward li = %v / %v", in1, in2)
	}
	v := uint32(in1.Imm)<<13 | uint32(in2.Imm)&0x1fff
	if v != p.Symbols["tiny"] {
		t.Errorf("forward li loads %#x, want %#x", v, p.Symbols["tiny"])
	}
}

func TestLaBuildsFullAddress(t *testing.T) {
	p := mustAssemble(t, `
	.org 0x2000
	la r8, data
	halt
data:	.word 99
	`)
	in1, in2 := decodeAt(p, 0x2000), decodeAt(p, 0x2004)
	v := uint32(in1.Imm)<<13 | uint32(in2.Imm)&0x1fff
	if v != p.Symbols["data"] {
		t.Errorf("la loads %#x, want %#x", v, p.Symbols["data"])
	}
	if p.Word(p.Symbols["data"]) != 99 {
		t.Errorf("data word = %d", p.Word(p.Symbols["data"]))
	}
}

func TestDirectives(t *testing.T) {
	p := mustAssemble(t, `
	.equ  SIZE, 4*8
	.org  0x100
	.word 1, 2, SIZE
	.half 0x1234, 0xffff
	.byte 1, 2, 3, 'A'
	.align 8
aligned:
	.double 1.5, -2.25
	.space 16
	.asciz "hi\n"
end:
	`)
	if p.Origin != 0x100 {
		t.Fatalf("origin = %#x", p.Origin)
	}
	if p.Word(0x100) != 1 || p.Word(0x104) != 2 || p.Word(0x108) != 32 {
		t.Errorf(".word block wrong: %d %d %d", p.Word(0x100), p.Word(0x104), p.Word(0x108))
	}
	off := uint32(0x10c) - p.Origin
	if p.Bytes[off] != 0x34 || p.Bytes[off+1] != 0x12 {
		t.Errorf(".half not little-endian")
	}
	if al := p.Symbols["aligned"]; al%8 != 0 {
		t.Errorf("aligned label at %#x, not 8-aligned", al)
	}
	al := p.Symbols["aligned"]
	bits := uint64(p.Word(al)) | uint64(p.Word(al+4))<<32
	if f := math.Float64frombits(bits); f != 1.5 {
		t.Errorf(".double wrote %v, want 1.5", f)
	}
	bits = uint64(p.Word(al+8)) | uint64(p.Word(al+12))<<32
	if f := math.Float64frombits(bits); f != -2.25 {
		t.Errorf(".double wrote %v, want -2.25", f)
	}
	strAddr := al + 16 + 16 - p.Origin
	if got := string(p.Bytes[strAddr : strAddr+3]); got != "hi\n" {
		t.Errorf(".asciz wrote %q", got)
	}
	if p.Bytes[strAddr+3] != 0 {
		t.Error(".asciz missing NUL")
	}
	if p.Symbols["end"] != al+16+16+4 {
		t.Errorf("end = %#x", p.Symbols["end"])
	}
}

func TestExpressions(t *testing.T) {
	p := mustAssemble(t, `
	.equ A, 10
	.equ B, A*3 + (1 << 4) - 2	; 30+16-2 = 44
	.equ C, B / 4 % 8		; 11 % 8 = 3
	.equ D, ~0 & 0xff | 0x100	; 0x1ff
	.equ E, 'a' + 1
	.word A, B, C, D, E
	`)
	want := []uint32{10, 44, 3, 0x1ff, 'b'}
	for i, w := range want {
		if got := p.Word(uint32(4 * i)); got != w {
			t.Errorf("expr %d = %d, want %d", i, got, w)
		}
	}
}

func TestComparisonPseudos(t *testing.T) {
	p := mustAssemble(t, `
t:	bgt r3, r4, t
	ble r3, r4, t
	bgtu r3, r4, t
	bleu r3, r4, t
	`)
	wants := []struct {
		op   isa.Op
		a, b uint8
	}{
		{isa.OpBLT, 4, 3}, {isa.OpBGE, 4, 3}, {isa.OpBLTU, 4, 3}, {isa.OpBGEU, 4, 3},
	}
	for i, w := range wants {
		in := decodeAt(p, uint32(4*i))
		if in.Op != w.op || in.A != w.a || in.B != w.b {
			t.Errorf("pseudo %d = %+v, want %v r%d,r%d", i, in, w.op, w.a, w.b)
		}
	}
}

func TestRegisterAliases(t *testing.T) {
	p := mustAssemble(t, `add a0, sp, lr`)
	in := decodeAt(p, 0)
	if in.A != isa.RArg0 || in.B != isa.RSP || in.C != isa.RLR {
		t.Errorf("aliases = %+v", in)
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"unknown mnemonic", "frob r1, r2", "unknown mnemonic"},
		{"bad register", "add r1, r2, r99", "out of range"},
		{"odd double reg", "fadd d3, d4, d6", "even pair"},
		{"imm too big", "addi r1, r2, 99999", "13 bits"},
		{"undefined symbol", "b nowhere", "undefined symbol"},
		{"redefined label", "x:\nx:", "redefined"},
		{"org backwards", ".org 8\nnop\nnop\nnop\n.org 4", "backwards"},
		{"bad align", ".align 3", "power of two"},
		{"bad directive", ".bogus 1", "unknown directive"},
		{"wrong operand count", "add r1, r2", "3 operands"},
		{"unaligned branch", "beq r0, r0, 6", "aligned"},
		{"equ forward ref", ".equ X, Y\n.equ Y, 1", "undefined"},
		{"bad mem operand", "lw r1, r2", "imm(reg)"},
		{"negative space", ".space -4", "negative"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Assemble(c.src)
			if err == nil {
				t.Fatal("assembly succeeded, want error")
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("error %q does not mention %q", err, c.wantSub)
			}
		})
	}
}

func TestMultipleErrorsReported(t *testing.T) {
	_, err := Assemble("frob r1\nfrob r2\nfrob r3")
	if err == nil {
		t.Fatal("want errors")
	}
	if n := len(err.(ErrorList)); n != 3 {
		t.Errorf("reported %d errors, want 3", n)
	}
}

func TestEntryDefaultsToOrigin(t *testing.T) {
	p := mustAssemble(t, ".org 0x40\nnop")
	if p.Entry != 0x40 {
		t.Errorf("entry = %#x, want 0x40", p.Entry)
	}
	p = mustAssemble(t, "nop\n_start: nop")
	if p.Entry != 4 {
		t.Errorf("entry = %#x, want 4", p.Entry)
	}
}

func TestCommentStyles(t *testing.T) {
	p := mustAssemble(t, `
	nop	; semicolon comment
	nop	# hash comment
	`)
	if len(p.Bytes) != 8 {
		t.Errorf("image = %d bytes, want 8", len(p.Bytes))
	}
}

func TestDisassembleRoundTrip(t *testing.T) {
	src := `
	add r3, r4, r5
	lw r8, 16(r1)
	halt
	`
	p := mustAssemble(t, src)
	dis := Disassemble(p)
	for _, want := range []string{"add r3, r4, r5", "lw r8, 16(r1)", "halt"} {
		if !strings.Contains(dis, want) {
			t.Errorf("disassembly missing %q:\n%s", want, dis)
		}
	}
}

func TestLabelOnSameLineAsInstruction(t *testing.T) {
	p := mustAssemble(t, "start: nop\nb start")
	if p.Symbols["start"] != 0 {
		t.Errorf("start = %#x", p.Symbols["start"])
	}
	if in := decodeAt(p, 4); in.Imm != -2 {
		t.Errorf("branch offset = %d, want -2", in.Imm)
	}
}
