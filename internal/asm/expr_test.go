package asm

import (
	"fmt"
	"testing"
	"testing/quick"
)

func evalOK(t *testing.T, expr string, want int64) {
	t.Helper()
	got, err := evalExpr(expr, map[string]uint32{"sym": 100, "a.b_c": 7})
	if err != nil {
		t.Fatalf("%q: %v", expr, err)
	}
	if got != want {
		t.Errorf("%q = %d, want %d", expr, got, want)
	}
}

func TestExpressionGrammar(t *testing.T) {
	evalOK(t, "1+2*3", 7)
	evalOK(t, "(1+2)*3", 9)
	evalOK(t, "-4", -4)
	evalOK(t, "+4", 4)
	evalOK(t, "~0", -1)
	evalOK(t, "10 % 4", 2)
	evalOK(t, "1 << 4 | 3", 19)
	evalOK(t, "0xff & 0x0f", 15)
	evalOK(t, "6 ^ 3", 5)
	evalOK(t, "256 >> 4", 16)
	evalOK(t, "sym*2", 200)
	evalOK(t, "a.b_c + 1", 8)
	evalOK(t, "0b1010", 10)
	evalOK(t, "0o17", 15)
	evalOK(t, "0xffffffff", 0xffffffff)
	evalOK(t, "'A'", 65)
	evalOK(t, `'\n'`, 10)
	evalOK(t, `'\t'`, 9)
	evalOK(t, `'\r'`, 13)
	evalOK(t, `'\0'`, 0)
	evalOK(t, `'\\'`, 92)
	evalOK(t, `'\''`, 39)
	evalOK(t, "- - 5", 5)
}

func TestExpressionErrors(t *testing.T) {
	bad := []string{
		"", "1 +", "(1", "1)", "1/0", "1%0", "nosuch", "1 @ 2",
		"'ab'", `'\q'`, "'", "< 3", "1 <", "0x", "2y3",
	}
	for _, e := range bad {
		if _, err := evalExpr(e, nil); err == nil {
			t.Errorf("%q evaluated without error", e)
		}
	}
}

func TestShiftAmountsMasked(t *testing.T) {
	evalOK(t, "1 << 64", 1) // shifts mask to 6 bits like hardware
}

// Property: precedence matches Go for a sampled operator set.
func TestExpressionMatchesGo(t *testing.T) {
	f := func(a, b, c uint16) bool {
		x, y, z := int64(a%1000), int64(b%1000)+1, int64(c%1000)+1
		expr := fmt.Sprintf("%d + %d * %d - %d / %d", x, y, z, x, y)
		got, err := evalExpr(expr, nil)
		return err == nil && got == x+y*z-x/y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringEscapes(t *testing.T) {
	b, err := unescapeString(`"a\t\"b\\\n"`)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "a\t\"b\\\n" {
		t.Errorf("unescaped = %q", b)
	}
	for _, bad := range []string{`"unterminated`, `noquotes`, `"trail\"`, `"bad\q"`} {
		if _, err := unescapeString(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

func TestIsIdent(t *testing.T) {
	for _, ok := range []string{"a", "_x", ".L1", "a1_b.c", "Z9"} {
		if !isIdent(ok) {
			t.Errorf("%q rejected", ok)
		}
	}
	for _, bad := range []string{"", "1a", "a-b", "a b", "a+", "é"} {
		if isIdent(bad) {
			t.Errorf("%q accepted", bad)
		}
	}
}
