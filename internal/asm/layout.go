package asm

import (
	"errors"
	"fmt"
	"strings"
)

// layout is the first pass: it assigns an address and size to every
// statement and builds the symbol table. Directive arguments that shape
// the layout (.org, .align, .space, .equ) must be computable during this
// pass; instruction operands may reference forward labels.
func (a *assembler) layout() {
	lc := uint32(0)
	emitted := false
	maxLC := uint32(0)
	for i := range a.stmts {
		st := &a.stmts[i]
		st.addr = lc
		switch st.kind {
		case stDirective:
			size, newLC, ok := a.layoutDirective(st, lc, emitted)
			if !ok {
				continue
			}
			st.size = size
			lc = newLC
			if size > 0 {
				emitted = true
			}
		case stInst:
			st.size = a.instSize(st)
			lc += st.size
			emitted = true
		}
		if lc > maxLC {
			maxLC = lc
		}
		if lc < a.origin || maxLC-a.origin > 16<<20 {
			a.errorf(st.line, "image exceeds the 16 MB physical address space")
			return
		}
	}
	if len(a.errs) == 0 {
		a.image = make([]byte, maxLC-a.origin)
	}
}

// layoutDirective processes one directive during layout, returning its
// size and the new location counter.
func (a *assembler) layoutDirective(st *statement, lc uint32, emitted bool) (size, newLC uint32, ok bool) {
	fail := func(format string, args ...interface{}) (uint32, uint32, bool) {
		a.errorf(st.line, format, args...)
		return 0, lc, false
	}
	switch st.directive {
	case ".label":
		name := st.args[0]
		if _, dup := a.symbols[name]; dup {
			return fail("symbol %q redefined", name)
		}
		a.symbols[name] = lc
		return 0, lc, true

	case ".equ":
		if len(st.args) != 2 {
			return fail(".equ needs a name and a value")
		}
		name := st.args[0]
		if !isIdent(name) {
			return fail("bad .equ name %q", name)
		}
		if _, dup := a.symbols[name]; dup {
			return fail("symbol %q redefined", name)
		}
		v, err := evalExpr(st.args[1], a.symbols)
		if err != nil {
			return fail(".equ %s: %v", name, err)
		}
		a.symbols[name] = uint32(v)
		a.equs[name] = true
		return 0, lc, true

	case ".org":
		if len(st.args) != 1 {
			return fail(".org needs one address")
		}
		v, err := evalExpr(st.args[0], a.symbols)
		if err != nil {
			return fail(".org: %v", err)
		}
		addr := uint32(v)
		if !emitted && !a.originSet {
			a.origin = addr
			a.originSet = true
			st.addr = addr
			return 0, addr, true
		}
		if addr < lc {
			return fail(".org %#x moves backwards from %#x", addr, lc)
		}
		st.addr = addr
		return 0, addr, true

	case ".align":
		if len(st.args) != 1 {
			return fail(".align needs one value")
		}
		v, err := evalExpr(st.args[0], a.symbols)
		if err != nil {
			return fail(".align: %v", err)
		}
		n := uint32(v)
		if n == 0 || n&(n-1) != 0 {
			return fail(".align %d is not a power of two", v)
		}
		aligned := (lc + n - 1) &^ (n - 1)
		return aligned - lc, aligned, true

	case ".space":
		if len(st.args) != 1 {
			return fail(".space needs one size")
		}
		v, err := evalExpr(st.args[0], a.symbols)
		if err != nil {
			return fail(".space: %v", err)
		}
		if v < 0 {
			return fail(".space %d is negative", v)
		}
		return uint32(v), lc + uint32(v), true

	case ".byte":
		return uint32(len(st.args)), lc + uint32(len(st.args)), true
	case ".half":
		return uint32(2 * len(st.args)), lc + uint32(2*len(st.args)), true
	case ".word":
		return uint32(4 * len(st.args)), lc + uint32(4*len(st.args)), true
	case ".double":
		return uint32(8 * len(st.args)), lc + uint32(8*len(st.args)), true

	case ".ascii", ".asciz":
		var total uint32
		for _, arg := range st.args {
			b, err := unescapeString(arg)
			if err != nil {
				return fail("%s: %v", st.directive, err)
			}
			total += uint32(len(b))
			if st.directive == ".asciz" {
				total++
			}
		}
		return total, lc + total, true

	default:
		return fail("unknown directive %s", st.directive)
	}
}

// instSize returns the byte size of an instruction, expanding pseudos.
// li is 4 bytes when its value is already known and fits a signed 13-bit
// immediate, 8 bytes (lui+ori) otherwise; la is always 8 bytes.
func (a *assembler) instSize(st *statement) uint32 {
	switch st.mnemonic {
	case "la":
		return 8
	case "li":
		if len(st.operands) == 2 {
			v, err := evalExpr(st.operands[1], a.symbols)
			if err == nil && v >= -4096 && v <= 4095 {
				return 4
			}
			if err != nil && !errors.Is(err, errUndefined) {
				a.errorf(st.line, "li: %v", err)
			}
		}
		return 8
	default:
		return 4
	}
}

// parseReg resolves a register operand. Double-precision names dN must be
// even and alias the (N, N+1) pair.
func parseReg(s string) (uint8, error) {
	switch strings.ToLower(s) {
	case "zero":
		return 0, nil
	case "sp":
		return 1, nil
	case "lr":
		return 2, nil
	case "a0":
		return 4, nil
	case "a1":
		return 5, nil
	case "a2":
		return 6, nil
	case "a3":
		return 7, nil
	}
	if len(s) < 2 || (s[0] != 'r' && s[0] != 'd' && s[0] != 'R' && s[0] != 'D') {
		return 0, fmt.Errorf("bad register %q", s)
	}
	n := 0
	for _, c := range s[1:] {
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("bad register %q", s)
		}
		n = n*10 + int(c-'0')
		if n > 63 {
			return 0, fmt.Errorf("register %q out of range", s)
		}
	}
	if s[0] == 'd' || s[0] == 'D' {
		if n%2 != 0 {
			return 0, fmt.Errorf("double register %q must name an even pair", s)
		}
	}
	return uint8(n), nil
}
