package asm

import (
	"errors"
	"strings"
	"testing"
)

// Assembler diagnostics must carry the source name when one is known:
// AssembleNamed stamps every Error with the file, and Error renders as
// "file:line: message".
func TestErrorsCarryFileLine(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"duplicate label",
			"dup:\tnop\ndup:\tnop\n",
			`lib.s:2: symbol "dup" redefined`},
		{"bad operand",
			"_start:\tadd r1, r2\n",
			"lib.s:1: add needs 3 operands, got 2"},
		{"bad register",
			"_start:\tadd r1, r2, r99\n",
			`lib.s:1: register "r99" out of range`},
	}
	for _, c := range cases {
		_, err := AssembleNamed("lib.s", c.src)
		if err == nil {
			t.Errorf("%s: assembled without error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not contain %q", c.name, err.Error(), c.want)
		}
		var list ErrorList
		if !errors.As(err, &list) {
			t.Errorf("%s: error is %T, want ErrorList", c.name, err)
			continue
		}
		for _, e := range list {
			if e.File != "lib.s" {
				t.Errorf("%s: diagnostic file = %q, want lib.s", c.name, e.File)
			}
		}
	}

	// The anonymous entry point keeps the historical bare-line format.
	_, err := Assemble("dup:\tnop\ndup:\tnop\n")
	if err == nil || !strings.HasPrefix(err.Error(), "line 2: ") {
		t.Errorf("Assemble error = %v, want line-prefixed form", err)
	}
}

// The line table's Code flag separates instructions (including pseudo
// expansions) from data directives.
func TestLineTableCodeFlag(t *testing.T) {
	p, err := Assemble(`
_start:	la   r8, data
	addi r8, r8, 4
	halt
data:	.word 1, 2
	.space 8
`)
	if err != nil {
		t.Fatal(err)
	}
	var code, data int
	for _, l := range p.Lines {
		if l.Code {
			code++
			if l.Size != 4 && l.Size != 8 {
				t.Errorf("code line at %#x has size %d", l.Addr, l.Size)
			}
		} else {
			data++
		}
	}
	if code != 3 { // la (8 bytes), addi, halt
		t.Errorf("code lines = %d, want 3", code)
	}
	if data != 2 { // .word, .space
		t.Errorf("data lines = %d, want 2", data)
	}
}
