package asm

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cyclops/internal/isa"
)

// FuzzAsmRoundTrip checks the assemble -> encode -> decode -> render ->
// reassemble loop: any source the assembler accepts must render back to
// text that reassembles into the byte-identical image, and the rendered
// text must be a fix point (rendering the reassembled program changes
// nothing). The 16 MB image cap in layout keeps pathological .space
// inputs from exhausting memory.
func FuzzAsmRoundTrip(f *testing.F) {
	seeds, err := filepath.Glob(filepath.Join("testdata", "fuzz", "seeds", "*.s"))
	if err != nil || len(seeds) == 0 {
		f.Fatalf("no seed corpus: %v", err)
	}
	for _, path := range seeds {
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(data))
	}
	f.Add("\tadd r1, r2, r3\n\thalt\n")
	f.Add("x:\tbne r9, r0, x\n\t.word 0xffffffff\n")
	f.Add("\t.org 0x80\n\t.ascii \"hi\"\n")
	f.Fuzz(func(t *testing.T, src string) {
		p1, err := Assemble(src)
		if err != nil {
			return // rejecting bad source is not a round-trip failure
		}
		text := renderAsm(p1)
		p2, err := Assemble(text)
		if err != nil {
			t.Fatalf("rendered source does not reassemble: %v\n%s", err, text)
		}
		if p2.Origin != p1.Origin {
			t.Fatalf("origin changed: %#x -> %#x", p1.Origin, p2.Origin)
		}
		if !bytes.Equal(p2.Bytes, p1.Bytes) {
			t.Fatalf("image changed after round trip\nsource:\n%s\nrendered:\n%s", src, text)
		}
		if text2 := renderAsm(p2); text2 != text {
			t.Fatalf("render is not a fix point:\n--- first ---\n%s--- second ---\n%s", text, text2)
		}
	})
}

// renderAsm converts an assembled image back into source the assembler
// accepts. Words whose textual form would lose bits — unknown opcodes,
// junk in unused fields, or operands the disassembly syntax drops — fall
// back to .word; a non-word-sized tail becomes .byte.
func renderAsm(p *Program) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "\t.org %#x\n", p.Origin)
	n := uint32(len(p.Bytes))
	for off := uint32(0); off+4 <= n; off += 4 {
		addr := p.Origin + off
		w := p.Word(addr)
		in := isa.Decode(w)
		if enc, err := in.Encode(); err != nil || enc != w || !renderable(in) {
			fmt.Fprintf(&sb, "\t.word %#x\n", w)
			continue
		}
		info := isa.Lookup(in.Op)
		switch info.Format {
		case isa.FmtB, isa.FmtJ:
			// The assembler takes absolute byte addresses and re-derives
			// the word-relative offset; targets outside the 32-bit space
			// cannot be written down, so keep those words literal.
			target := int64(addr) + 4 + 4*int64(in.Imm)
			if target < 0 || target > math.MaxUint32 {
				fmt.Fprintf(&sb, "\t.word %#x\n", w)
			} else if info.Format == isa.FmtB {
				fmt.Fprintf(&sb, "\t%s r%d, r%d, %d\n", info.Name, in.A, in.B, target)
			} else {
				fmt.Fprintf(&sb, "\t%s r%d, %d\n", info.Name, in.A, target)
			}
		default:
			fmt.Fprintf(&sb, "\t%s\n", in)
		}
	}
	for off := n &^ 3; off < n; off++ {
		fmt.Fprintf(&sb, "\t.byte %d\n", p.Bytes[off])
	}
	return sb.String()
}

// renderable reports whether in.String() preserves every operand field:
// the two-operand FP forms drop C, and the SPR moves drop B.
func renderable(in isa.Inst) bool {
	switch in.Op {
	case isa.OpFNEG, isa.OpFABS, isa.OpFMOV, isa.OpFSQRT, isa.OpFCVTDW, isa.OpFCVTWD:
		return in.C == 0
	case isa.OpMFSPR, isa.OpMTSPR:
		return in.B == 0
	}
	return true
}
