package asm

import (
	"fmt"
	"strconv"
	"strings"
)

// Expression evaluation: integer expressions over symbols with C-like
// operators and precedence. Used by directives, immediates and targets.
//
//	unary:  - ~ +
//	binary: * / % << >> & ^ | + -
//
// Numbers may be decimal, 0x hex, 0b binary, 0o octal, or character
// literals ('a', '\n').

type exprParser struct {
	toks []string
	pos  int
	sym  map[string]uint32
}

var errUndefined = fmt.Errorf("undefined symbol")

// evalExpr evaluates s against the symbol table. A reference to an
// undefined symbol returns an error wrapping errUndefined so layout can
// distinguish forward references from syntax errors.
func evalExpr(s string, sym map[string]uint32) (int64, error) {
	toks, err := tokenizeExpr(s)
	if err != nil {
		return 0, err
	}
	if len(toks) == 0 {
		return 0, fmt.Errorf("empty expression")
	}
	p := &exprParser{toks: toks, sym: sym}
	v, err := p.parseBinary(0)
	if err != nil {
		return 0, err
	}
	if p.pos != len(p.toks) {
		return 0, fmt.Errorf("unexpected %q in expression %q", p.toks[p.pos], s)
	}
	return v, nil
}

func tokenizeExpr(s string) ([]string, error) {
	var toks []string
	for i := 0; i < len(s); {
		c := s[i]
		switch {
		case c == ' ' || c == '\t':
			i++
		case c == '\'': // character literal
			j := i + 1
			if j < len(s) && s[j] == '\\' {
				j++
			}
			j++ // the character itself
			if j >= len(s) || s[j] != '\'' {
				return nil, fmt.Errorf("unterminated character literal in %q", s)
			}
			toks = append(toks, s[i:j+1])
			i = j + 1
		case c >= '0' && c <= '9':
			j := i
			for j < len(s) && (isAlnum(s[j]) || s[j] == 'x' || s[j] == 'X') {
				j++
			}
			toks = append(toks, s[i:j])
			i = j
		case isIdentStart(c):
			j := i
			for j < len(s) && (isAlnum(s[j]) || s[j] == '_' || s[j] == '.') {
				j++
			}
			toks = append(toks, s[i:j])
			i = j
		case c == '<' || c == '>':
			if i+1 >= len(s) || s[i+1] != c {
				return nil, fmt.Errorf("bad operator %q in %q", string(c), s)
			}
			toks = append(toks, s[i:i+2])
			i += 2
		case strings.ContainsRune("+-*/%&^|()~", rune(c)):
			toks = append(toks, string(c))
			i++
		default:
			return nil, fmt.Errorf("bad character %q in expression %q", string(c), s)
		}
	}
	return toks, nil
}

func isAlnum(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentStart(c byte) bool {
	return c == '_' || c == '.' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

// binaryPrec returns the precedence of a binary operator, 0 for non-ops.
func binaryPrec(op string) int {
	switch op {
	case "*", "/", "%":
		return 6
	case "+", "-":
		return 5
	case "<<", ">>":
		return 4
	case "&":
		return 3
	case "^":
		return 2
	case "|":
		return 1
	}
	return 0
}

func (p *exprParser) parseBinary(minPrec int) (int64, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return 0, err
	}
	for p.pos < len(p.toks) {
		op := p.toks[p.pos]
		prec := binaryPrec(op)
		if prec == 0 || prec < minPrec {
			break
		}
		p.pos++
		rhs, err := p.parseBinary(prec + 1)
		if err != nil {
			return 0, err
		}
		switch op {
		case "*":
			lhs *= rhs
		case "/":
			if rhs == 0 {
				return 0, fmt.Errorf("division by zero")
			}
			lhs /= rhs
		case "%":
			if rhs == 0 {
				return 0, fmt.Errorf("modulo by zero")
			}
			lhs %= rhs
		case "+":
			lhs += rhs
		case "-":
			lhs -= rhs
		case "<<":
			lhs <<= uint(rhs & 63)
		case ">>":
			lhs = int64(uint64(lhs) >> uint(rhs&63))
		case "&":
			lhs &= rhs
		case "^":
			lhs ^= rhs
		case "|":
			lhs |= rhs
		}
	}
	return lhs, nil
}

func (p *exprParser) parseUnary() (int64, error) {
	if p.pos >= len(p.toks) {
		return 0, fmt.Errorf("unexpected end of expression")
	}
	switch t := p.toks[p.pos]; t {
	case "-":
		p.pos++
		v, err := p.parseUnary()
		return -v, err
	case "+":
		p.pos++
		return p.parseUnary()
	case "~":
		p.pos++
		v, err := p.parseUnary()
		return ^v, err
	case "(":
		p.pos++
		v, err := p.parseBinary(0)
		if err != nil {
			return 0, err
		}
		if p.pos >= len(p.toks) || p.toks[p.pos] != ")" {
			return 0, fmt.Errorf("missing )")
		}
		p.pos++
		return v, nil
	default:
		p.pos++
		return p.atom(t)
	}
}

func (p *exprParser) atom(t string) (int64, error) {
	if t[0] == '\'' {
		c, err := unescapeChar(t[1 : len(t)-1])
		return int64(c), err
	}
	if t[0] >= '0' && t[0] <= '9' {
		v, err := strconv.ParseInt(t, 0, 64)
		if err != nil {
			// Allow full 32-bit unsigned literals like 0xffffffff.
			u, uerr := strconv.ParseUint(t, 0, 64)
			if uerr != nil {
				return 0, fmt.Errorf("bad number %q", t)
			}
			return int64(u), nil
		}
		return v, nil
	}
	if isIdentStart(t[0]) {
		if v, ok := p.sym[t]; ok {
			return int64(v), nil
		}
		return 0, fmt.Errorf("%w: %q", errUndefined, t)
	}
	return 0, fmt.Errorf("unexpected token %q", t)
}

func unescapeChar(s string) (byte, error) {
	if len(s) == 1 {
		return s[0], nil
	}
	if len(s) == 2 && s[0] == '\\' {
		switch s[1] {
		case 'n':
			return '\n', nil
		case 't':
			return '\t', nil
		case 'r':
			return '\r', nil
		case '0':
			return 0, nil
		case '\\':
			return '\\', nil
		case '\'':
			return '\'', nil
		case '"':
			return '"', nil
		}
	}
	return 0, fmt.Errorf("bad character escape %q", s)
}

// unescapeString interprets a quoted .ascii/.asciz argument.
func unescapeString(s string) ([]byte, error) {
	if len(s) < 2 || s[0] != '"' || s[len(s)-1] != '"' {
		return nil, fmt.Errorf("string literal must be double-quoted: %q", s)
	}
	body := s[1 : len(s)-1]
	out := make([]byte, 0, len(body))
	for i := 0; i < len(body); i++ {
		if body[i] != '\\' {
			out = append(out, body[i])
			continue
		}
		i++
		if i >= len(body) {
			return nil, fmt.Errorf("trailing backslash in %q", s)
		}
		c, err := unescapeChar(body[i-1 : i+1])
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}
