package asm

import (
	"strings"
	"testing"
)

const lineTableSrc = `	.equ N, 4
	.org 0x100
_start:	la   r8, data		; 8 bytes
	li   r9, N		; short li, 4 bytes
loop:	ld   d16, 0(r8)
	addi r8, r8, 8
	addi r9, r9, -1
	bne  r9, r0, loop
	halt
	.align 8
data:	.double 1.0, 2.0
`

func TestLineTable(t *testing.T) {
	p, err := Assemble(lineTableSrc)
	if err != nil {
		t.Fatal(err)
	}
	// Lines must be sorted, non-overlapping, and inside the image.
	var prevEnd uint32
	for i, l := range p.Lines {
		if l.Addr < prevEnd {
			t.Fatalf("line %d at %#x overlaps previous end %#x", i, l.Addr, prevEnd)
		}
		if l.Addr+l.Size > p.Origin+uint32(len(p.Bytes)) {
			t.Fatalf("line %d [%#x,%#x) outside image", i, l.Addr, l.Addr+l.Size)
		}
		prevEnd = l.Addr + l.Size
	}

	// _start covers the two-word la at 0x100.
	if line, ok := p.Locate(0x104); !ok || line != 3 {
		t.Errorf("Locate(0x104) = %d, %v; want line 3 (the la expansion)", line, ok)
	}
	// loop's first instruction: la (8) + li (4) => 0x10c.
	if line, ok := p.Locate(0x10c); !ok || line != 5 {
		t.Errorf("Locate(0x10c) = %d, %v; want line 5", line, ok)
	}
	if _, ok := p.Locate(0x0ff); ok {
		t.Error("Locate before the image should fail")
	}

	name, off, ok := p.NearestLabel(0x110)
	if !ok || name != "loop" || off != 4 {
		t.Errorf("NearestLabel(0x110) = %q+%#x, %v; want loop+0x4", name, off, ok)
	}
	// .equ names must not appear as labels.
	for _, l := range p.Labels {
		if l.Name == "N" {
			t.Error(".equ N leaked into the label table")
		}
	}

	got := p.SymbolizePC(0x110)
	if got != "loop+0x4 (?:6)" {
		t.Errorf("SymbolizePC(0x110) = %q", got)
	}
	p.File = "stream.s"
	if got := p.SymbolizePC(0x10c); got != "loop (stream.s:5)" {
		t.Errorf("SymbolizePC(0x10c) = %q", got)
	}
}

func TestListing(t *testing.T) {
	p, err := Assemble(lineTableSrc)
	if err != nil {
		t.Fatal(err)
	}
	out := Listing(p, lineTableSrc)
	for _, want := range []string{"_start", "loop:", "000100", "  3  ", ".double"} {
		if !strings.Contains(out, want) {
			t.Errorf("listing missing %q:\n%s", want, out)
		}
	}
	// The la at 0x100 must show all 8 bytes of its expansion.
	for _, l := range strings.Split(out, "\n") {
		if strings.Contains(l, "000100") && len(strings.Fields(l)) > 1 {
			if n := len(strings.Fields(l)[1]); n != 16 {
				t.Errorf("la row shows %d hex chars, want 16: %s", n, l)
			}
		}
	}
}

func TestLineTableDataAndSpace(t *testing.T) {
	p, err := Assemble("\t.org 0x200\nbuf:\t.space 64\ntab:\t.word 1, 2, 3\n")
	if err != nil {
		t.Fatal(err)
	}
	if line, ok := p.Locate(0x220); !ok || line != 2 {
		t.Errorf("Locate inside .space = %d, %v; want line 2", line, ok)
	}
	if name, off, ok := p.NearestLabel(0x240 + 4); !ok || name != "tab" || off != 4 {
		t.Errorf("NearestLabel in .word = %q+%d, %v", name, off, ok)
	}
}
