; One of everything: every format, the SPR moves, the atomics and the
; floating-point family, plus an unaligned tail. Fuzz seed only.
	.org 0x200
_start:	lui    r8, 0x12
	ori    r8, r8, 0x345
	mfspr  r9, 4
	mtspr  r9, 4
	sync
	amoadd r10, (r8), r9
	amoswap r11, (r8), r9
	amocas r12, (r8), r9
	ld     d16, 0(r8)
	fadd   r20, r16, r18
	fsub   r22, r20, r16
	fmul   r24, r20, r22
	fdiv   r26, r24, r20
	fsqrt  r28, r24
	fma    r30, r16, r18, r20
	fms    r32, r16, r18, r20
	fneg   r34, r30
	fabs   r36, r34
	fmov   r38, r36
	fcvtdw r40, r8
	fcvtwd r42, r40
	fceq   r13, r16, r18
	fclt   r14, r16, r18
	fcle   r15, r16, r18
	sd     d16, 8(r8)
	sh     r9, 2(r8)
	sb     r9, 1(r8)
	lh     r9, 2(r8)
	lhu    r9, 2(r8)
	lb     r9, 1(r8)
	lbu    r9, 1(r8)
	mul    r10, r9, r8
	div    r11, r10, r9
	divu   r12, r10, r9
	slti   r13, r9, -7
	sltiu  r13, r9, 7
	jal    r2, next
next:	jalr   r2, 0(r2)
	beq    r0, r0, done
	bne    r0, r9, done
	blt    r0, r9, done
	bge    r9, r0, done
	bltu   r0, r9, done
	bgeu   r9, r0, done
done:	syscall
	halt
	.word 0xdeadbeef
	.byte 1
