	.equ NW,     32			; reduction workers
	.equ BLK,    1024		; off-chip block bytes
	.equ BATCH,  32			; blocks staged per batch
	.equ TOTALB, 65536		; total blocks = 64 MB

_start:	; workers sum staged words when signalled; main streams blocks in.
	li   r8, 1
	li   r9, NW
spawn:	li   a0, 3
	la   a1, worker
	mov  a2, r8
	syscall
	addi r8, r8, 1
	bleu r8, r9, spawn		; workers get indices 1..NW

	; main: for each batch: read BATCH blocks, then barrier-run workers
	li   r22, 0			; batch base block index
	li   r26, 1			; barrier masks
	li   r27, 2
mainlp:	li   r23, 0			; block within batch
rdloop:	li   a0, 6			; SysOffChipRead a1=ext a2=emb
	add  r9, r22, r23
	slli a1, r9, 10			; ext addr = block * 1 KB
	la   a2, stage
	slli r10, r23, 10
	add  a2, a2, r10
	syscall
	addi r23, r23, 1
	li   r9, BATCH
	blt  r23, r9, rdloop
	; release workers for this batch, wait for them to finish
	mtspr r27, 4
mspin:	mfspr r9, 4
	and  r9, r9, r26
	bne  r9, r0, mspin
	mov  r9, r26
	mov  r26, r27
	mov  r27, r9
	mtspr r27, 4			; second barrier: batch done
mspin2:	mfspr r9, 4
	and  r9, r9, r26
	bne  r9, r0, mspin2
	mov  r9, r26
	mov  r26, r27
	mov  r27, r9
	addi r22, r22, BATCH
	li   r9, TOTALB
	blt  r22, r9, mainlp
	; publish and exit: signal workers to halt via the done flag
	la   r9, done
	li   r10, 1
	sw   r10, 0(r9)
	mtspr r27, 4			; let workers pass the entry barrier
	la   r9, total
	lw   a1, 0(r9)
	li   a0, 2
	syscall
	li   a0, 0
	syscall

worker:	mov  r30, a0			; index 1..NW-1? indices start at 1
	li   r26, 1
	li   r27, 2
wloop:	; entry barrier: wait for a staged batch
	mtspr r27, 4
wspin:	mfspr r9, 4
	and  r9, r9, r26
	bne  r9, r0, wspin
	mov  r9, r26
	mov  r26, r27
	mov  r27, r9
	la   r9, done
	lw   r10, 0(r9)
	bne  r10, r0, wout
	; sum my slice of the staged batch: BATCH KB / NW words each
	.equ WORDS, BATCH*BLK/4
	.equ CHUNK, WORDS/NW
	addi r11, r30, -1		; worker index 0-based
	li   r12, CHUNK*4
	mul  r13, r11, r12
	la   r14, stage
	add  r14, r14, r13
	li   r15, CHUNK
	li   r16, 0
sum:	lw   r17, 0(r14)
	add  r16, r16, r17
	addi r14, r14, 4
	addi r15, r15, -1
	bne  r15, r0, sum
	la   r18, total
	amoadd r19, (r18), r16
	; exit barrier for this batch
	mtspr r27, 4
wspin2:	mfspr r9, 4
	and  r9, r9, r26
	bne  r9, r0, wspin2
	mov  r9, r26
	mov  r26, r27
	mov  r27, r9
	b    wloop
wout:	li   a0, 0
	syscall

	.align 64
total:	.word 0
done:	.word 0
	.align 1024
stage:	.space BATCH*BLK
