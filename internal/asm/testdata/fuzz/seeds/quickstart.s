	.equ NW, 16		; workers
	.equ N,  4096		; array elements

_start:	; fill data[i] = i+1 (main thread)
	la   r8, data
	li   r9, 1
	li   r10, N
fill:	sw   r9, 0(r8)
	addi r8, r8, 4
	addi r9, r9, 1
	bleu r9, r10, fill

	; spawn NW workers, arg = worker index
	li   r8, 0
	la   r16, tids
spawn:	li   a0, 3		; SysSpawn
	la   a1, worker
	mov  a2, r8
	syscall
	sw   a0, 0(r16)
	addi r16, r16, 4
	addi r8, r8, 1
	slti r9, r8, NW
	bne  r9, r0, spawn

	; join them all
	li   r8, 0
	la   r16, tids
join:	li   a0, 4		; SysJoin
	lw   a1, 0(r16)
	syscall
	addi r16, r16, 4
	addi r8, r8, 1
	slti r9, r8, NW
	bne  r9, r0, join

	; print the total
	la   r9, total
	lw   a1, 0(r9)
	li   a0, 2		; SysPutInt
	syscall
	li   a0, 1		; newline
	li   a1, '\n'
	syscall
	li   a0, 0
	syscall

worker:	; sum my slice [index*N/NW, (index+1)*N/NW)
	li   r9, N/NW
	mul  r10, a0, r9	; start element
	la   r8, data
	slli r11, r10, 2
	add  r8, r8, r11
	li   r12, 0		; local sum
	mov  r13, r9		; count
wloop:	lw   r14, 0(r8)
	add  r12, r12, r14
	addi r8, r8, 4
	addi r13, r13, -1
	bne  r13, r0, wloop
	la   r15, total
	amoadd r16, (r15), r12
	li   a0, 0
	syscall

	.align 64
total:	.word 0
tids:	.space 4*NW
	.align 64
data:	.space 4*N
