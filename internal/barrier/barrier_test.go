package barrier

import (
	"math/rand"
	"testing"
)

func TestWiredOR(t *testing.T) {
	w := NewWired(4)
	if w.Read() != 0 {
		t.Fatal("fresh OR nonzero")
	}
	w.Write(0, 0b0001)
	w.Write(1, 0b0010)
	w.Write(2, 0b0001)
	if got := w.Read(); got != 0b0011 {
		t.Fatalf("OR = %#b, want 0b0011", got)
	}
	// Thread 0 clears its bit; thread 2 still drives bit 0.
	w.Write(0, 0)
	if got := w.Read(); got != 0b0011 {
		t.Fatalf("OR = %#b, want 0b0011 (thread 2 still driving)", got)
	}
	w.Write(2, 0)
	if got := w.Read(); got != 0b0010 {
		t.Fatalf("OR = %#b, want 0b0010", got)
	}
	if w.Own(1) != 0b0010 {
		t.Errorf("Own(1) = %#b", w.Own(1))
	}
	w.Reset()
	if w.Read() != 0 {
		t.Error("Reset left bits driven")
	}
}

func TestBitRolesInterchange(t *testing.T) {
	// Barrier 0 uses bits 0 and 1; barrier 3 uses bits 6 and 7.
	if CurBit(0, 0) != 0b01 || NextBit(0, 0) != 0b10 {
		t.Error("barrier 0 phase 0 bits wrong")
	}
	if CurBit(0, 1) != 0b10 || NextBit(0, 1) != 0b01 {
		t.Error("barrier 0 phase 1 roles did not interchange")
	}
	if CurBit(3, 0) != 0x40 || NextBit(3, 0) != 0x80 {
		t.Error("barrier 3 bits wrong")
	}
}

// Run the full protocol for several phases and random arrival orders: no
// thread may observe release before every thread has entered.
func TestProtocolSafetyAndLiveness(t *testing.T) {
	const n = 16
	r := rand.New(rand.NewSource(42))
	for k := 0; k < 4; k++ {
		w := NewWired(n)
		parts := make([]*Participant, n)
		for i := range parts {
			p, init := NewParticipant(k)
			parts[i] = p
			w.Write(i, init)
		}
		for phase := 0; phase < 6; phase++ {
			order := r.Perm(n)
			for idx, tid := range order {
				p := parts[tid]
				w.Write(tid, p.EnterValue(w.Own(tid)))
				released := p.Released(w.Read())
				last := idx == n-1
				if released && !last {
					t.Fatalf("barrier %d phase %d: thread %d saw release with %d threads missing",
						k, phase, tid, n-1-idx)
				}
				if last && !released {
					t.Fatalf("barrier %d phase %d: last thread not released", k, phase)
				}
			}
			// After release every thread observes it and advances.
			for _, p := range parts {
				if !p.Released(w.Read()) {
					t.Fatal("release not visible to all")
				}
				p.Advance()
			}
		}
		for _, p := range parts {
			if p.Phase() != 6 {
				t.Errorf("participant completed %d phases, want 6", p.Phase())
			}
		}
	}
}

// Four barriers are independent: entering barrier 0 does not disturb an
// in-progress barrier 2.
func TestBarriersAreIndependent(t *testing.T) {
	const n = 4
	w := NewWired(n)
	p0 := make([]*Participant, n)
	p2 := make([]*Participant, n)
	for i := 0; i < n; i++ {
		var init0, init2 uint8
		p0[i], init0 = NewParticipant(0)
		p2[i], init2 = NewParticipant(2)
		w.Write(i, init0|init2)
	}
	// Everyone passes barrier 0.
	for i := 0; i < n; i++ {
		w.Write(i, p0[i].EnterValue(w.Own(i)))
	}
	if !p0[0].Released(w.Read()) {
		t.Fatal("barrier 0 did not release")
	}
	// Barrier 2 is still armed: only 3 of 4 enter.
	for i := 0; i < n-1; i++ {
		w.Write(i, p2[i].EnterValue(w.Own(i)))
	}
	if p2[0].Released(w.Read()) {
		t.Fatal("barrier 2 released early")
	}
	w.Write(n-1, p2[n-1].EnterValue(w.Own(n-1)))
	if !p2[0].Released(w.Read()) {
		t.Fatal("barrier 2 did not release")
	}
}

// Non-participating threads leave both bits 0 and never block a barrier.
func TestNonParticipants(t *testing.T) {
	w := NewWired(8)
	// Only threads 0..3 participate.
	parts := make([]*Participant, 4)
	for i := range parts {
		p, init := NewParticipant(1)
		parts[i] = p
		w.Write(i, init)
	}
	for i, p := range parts {
		w.Write(i, p.EnterValue(w.Own(i)))
	}
	if !parts[0].Released(w.Read()) {
		t.Error("idle threads blocked the barrier")
	}
}
