// Package barrier models the Cyclops fast inter-thread hardware barrier
// (Section 2.3): an 8-bit special purpose register per thread, wired-OR
// across the chip. Each thread writes its own SPR and reads back the OR of
// all threads' SPRs. Two bits serve each barrier — one holds the state of
// the current barrier cycle, the other the state of the next — so the 8-bit
// register provides 4 independent barriers.
//
// Protocol, as the paper describes it: participating threads initially set
// their current-cycle bit to 1. To enter the barrier a thread atomically
// writes 0 to the current bit (removing its contribution) and 1 to the next
// bit (initialising the next cycle), then spins reading its own register
// until the OR'd current bit drops to 0 — which happens exactly when every
// participant has entered. The two bits swap roles after each use. Because
// each thread spin-waits on its own register there is no contention for any
// other chip resource.
package barrier

// Wired is the chip-wide wired-OR of the per-thread 8-bit barrier SPRs.
type Wired struct {
	spr []uint8
	// counts[b] is the number of threads currently driving bit b.
	counts [8]int
}

// NewWired builds the barrier network for nThreads thread units.
func NewWired(nThreads int) *Wired {
	return &Wired{spr: make([]uint8, nThreads)}
}

// Write sets thread tid's contribution to the OR.
func (w *Wired) Write(tid int, v uint8) {
	old := w.spr[tid]
	w.spr[tid] = v
	for b := 0; b < 8; b++ {
		mask := uint8(1) << b
		switch {
		case old&mask != 0 && v&mask == 0:
			w.counts[b]--
		case old&mask == 0 && v&mask != 0:
			w.counts[b]++
		}
	}
}

// Read returns the OR over all threads' contributions. Every thread reads
// the same value; the paper's "reads back its register" phrasing refers to
// this OR'd view.
func (w *Wired) Read() uint8 {
	var v uint8
	for b := 0; b < 8; b++ {
		if w.counts[b] > 0 {
			v |= 1 << b
		}
	}
	return v
}

// Own returns thread tid's raw contribution (not OR'd) — what the thread
// last wrote, used when composing the next write.
func (w *Wired) Own(tid int) uint8 { return w.spr[tid] }

// Reset clears every contribution.
func (w *Wired) Reset() {
	for i := range w.spr {
		w.spr[i] = 0
	}
	w.counts = [8]int{}
}

// CurBit and NextBit return the bit masks of barrier k (0..3) for a given
// phase parity. Roles interchange after each use: in even phases the lower
// bit of the pair is "current", in odd phases the upper bit.
func CurBit(k int, phase uint) uint8 {
	if phase%2 == 0 {
		return 1 << (2 * k)
	}
	return 1 << (2*k + 1)
}

// NextBit is the mask of barrier k's next-cycle bit for a phase parity.
func NextBit(k int, phase uint) uint8 {
	return CurBit(k, phase+1)
}

// Participant tracks one thread's position in the barrier protocol and
// produces the SPR values the thread must write. It exists so the
// instruction-level simulator's kernel, the direct-execution runtime and
// the tests all agree on the exact bit protocol.
type Participant struct {
	k     int
	phase uint
}

// NewParticipant prepares a thread to use barrier k. The returned initial
// value (current bit set) must be written to the thread's SPR before any
// participant enters the barrier.
func NewParticipant(k int) (*Participant, uint8) {
	return &Participant{k: k}, CurBit(k, 0)
}

// EnterValue returns the SPR value to write on entering the barrier this
// phase: current bit cleared, next bit set (other barriers' bits in own
// are preserved).
func (p *Participant) EnterValue(own uint8) uint8 {
	return own&^CurBit(p.k, p.phase) | NextBit(p.k, p.phase)
}

// Released reports whether the OR'd value indicates the current phase's
// barrier has completed (everyone entered).
func (p *Participant) Released(or uint8) bool {
	return or&CurBit(p.k, p.phase) == 0
}

// Advance moves the participant to the next phase after a release.
func (p *Participant) Advance() { p.phase++ }

// Phase returns the number of completed barrier cycles.
func (p *Participant) Phase() uint { return p.phase }
