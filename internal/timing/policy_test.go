package timing

import (
	"strings"
	"testing"

	"cyclops/internal/cache"
	"cyclops/internal/obs"
)

func TestParsePolicy(t *testing.T) {
	cases := []struct {
		name    string
		penalty uint64
		want    string
	}{
		{"fine", 0, "fine"},
		{"fine", 8, "fine"}, // penalty ignored
		{"", 8, "fine"},
		{"blocked", 8, "blocked/8"},
		{"blocked", 0, "blocked/0"},
		{"switchmiss", 16, "switchmiss/16"},
	}
	for _, c := range cases {
		p, err := ParsePolicy(c.name, c.penalty)
		if err != nil {
			t.Fatalf("ParsePolicy(%q, %d): %v", c.name, c.penalty, err)
		}
		if p.String() != c.want {
			t.Errorf("ParsePolicy(%q, %d) = %s, want %s", c.name, c.penalty, p, c.want)
		}
	}
	if _, err := ParsePolicy("roundrobin", 0); err == nil || !strings.Contains(err.Error(), "roundrobin") {
		t.Errorf("unknown policy error = %v", err)
	}
}

func TestPolicyTables(t *testing.T) {
	if got := (FineGrain{}).Table(); got != (PolicyTable{}) {
		t.Errorf("fine table = %+v, want all-zero", got)
	}
	if got, want := (Blocked{Pen: 5}).Table(), (PolicyTable{OnDep: 5, OnFPU: 5, OnMem: 5, OnIFetch: 5}); got != want {
		t.Errorf("blocked table = %+v, want %+v", got, want)
	}
	if got, want := (SwitchOnMiss{Pen: 5}).Table(), (PolicyTable{OnMiss: 5, OnIFetch: 5}); got != want {
		t.Errorf("switchmiss table = %+v, want %+v", got, want)
	}
	for _, p := range []Policy{FineGrain{}, Blocked{Pen: 8}, SwitchOnMiss{Pen: 8}} {
		if !p.InlineOK() {
			t.Errorf("%s: InlineOK = false, want true for all shipped policies", p)
		}
	}
	// A zero-penalty policy compiles to the fine-grained table: the basis
	// of the engines' penalty-0 convergence guarantee.
	if got := (Blocked{}).Table(); got != (PolicyTable{}) {
		t.Errorf("blocked/0 table = %+v, want all-zero", got)
	}
	if got := (SwitchOnMiss{}).Table(); got != (PolicyTable{}) {
		t.Errorf("switchmiss/0 table = %+v, want all-zero", got)
	}
}

func TestDefaultPolicy(t *testing.T) {
	if got := DefaultPolicy(); got.String() != "fine" {
		t.Fatalf("initial default = %s, want fine", got)
	}
	prev := SetDefaultPolicy(Blocked{Pen: 4})
	defer SetDefaultPolicy(prev)
	if prev.String() != "fine" {
		t.Errorf("previous default = %s, want fine", prev)
	}
	if got := DefaultPolicy(); got.String() != "blocked/4" {
		t.Errorf("default after set = %s, want blocked/4", got)
	}
	if got := SetDefaultPolicy(nil); got.String() != "blocked/4" {
		t.Errorf("swap out = %s, want blocked/4", got)
	}
	if got := DefaultPolicy(); got.String() != "fine" {
		t.Errorf("nil restores fine, got %s", got)
	}
}

// microTrace drives one hand-built stall sequence through a ledger: a
// dependence wait, an FPU structural wait, a store backpressure with a
// known port/bank split, a clean local-miss load, and an unmet-operand
// wait again. It returns the ledger for per-policy assertions.
func microTrace(pol PolicyTable) *Ledger {
	l := &Ledger{Pol: pol}
	now := uint64(100)
	l.ChargeRun(3)
	now = l.WaitReady(now, 110)                  // 10-cycle dep stall
	now = l.WaitFPU(now, now+4)                  // 4-cycle FPU wait
	a := cache.Access{Where: cache.StoreThrough, // store blocked 6: 2 port + 4 bank
		Wait: cache.Wait{Port: 2, Bank: 4}}
	now = l.SettleAccess(a, now, now+6)
	miss := cache.Access{Where: cache.LocalMiss} // load miss, thread not blocked
	now = l.SettleAccess(miss, now, now)
	l.WaitReady(now, now+5) // 5-cycle dep stall
	return l
}

// TestLedgerPolicyMatrix is the ledger-level unit matrix: the same
// micro-trace under each policy, asserting exact Charge-by-reason
// totals. The switch penalty lands only in the SwitchStall bucket —
// never smeared into the memory or dependence buckets — and the
// resource buckets are identical across policies.
func TestLedgerPolicyMatrix(t *testing.T) {
	if !obs.Enabled {
		t.Skip("counters compiled out")
	}
	base := obs.Breakdown{}
	base[obs.DepStall] = 15
	base[obs.FPUStall] = 4
	base[obs.CachePortStall] = 2
	base[obs.BankConflictStall] = 4
	cases := []struct {
		pol    Policy
		events uint64 // stall events the policy switches on
	}{
		{FineGrain{}, 0},
		{Blocked{Pen: 8}, 4},      // 2 dep + 1 fpu + 1 store backpressure
		{SwitchOnMiss{Pen: 8}, 1}, // the local-miss load only
		{Blocked{Pen: 0}, 0},
		{SwitchOnMiss{Pen: 0}, 0},
	}
	for _, c := range cases {
		l := microTrace(c.pol.Table())
		want := base
		want[obs.SwitchStall] = c.events * c.pol.Penalty()
		if l.Stalls != want {
			t.Errorf("%s: buckets = %v, want %v", c.pol, l.Stalls, want)
		}
		if l.Stalls.Total() != l.Stall {
			t.Errorf("%s: buckets sum %d != Stall %d", c.pol, l.Stalls.Total(), l.Stall)
		}
		if l.Run != 3 {
			t.Errorf("%s: Run = %d, want 3 (penalties are stalls, not work)", c.pol, l.Run)
		}
	}
}

// TestSettleAccessOneSwitchPerAccess pins the at-most-one rule: a
// blocking access that both backpressures and misses charges a single
// switch under the blocked policy (the backpressure event), not two.
func TestSettleAccessOneSwitchPerAccess(t *testing.T) {
	if !obs.Enabled {
		t.Skip("counters compiled out")
	}
	a := cache.Access{Where: cache.LocalMiss, Wait: cache.Wait{Port: 1, Bank: 2}}
	l := &Ledger{Pol: PolicyTable{OnMem: 8, OnMiss: 8}}
	now := l.SettleAccess(a, 100, 103)
	if l.Stalls[obs.SwitchStall] != 8 {
		t.Errorf("switch charge = %d, want one 8-cycle penalty", l.Stalls[obs.SwitchStall])
	}
	if now != 111 { // 103 freed + 8 penalty
		t.Errorf("resume = %d, want 111", now)
	}
	// The same access under switch-on-miss (no OnMem): the miss fires.
	l2 := &Ledger{Pol: PolicyTable{OnMiss: 8}}
	now = l2.SettleAccess(a, 100, 103)
	if l2.Stalls[obs.SwitchStall] != 8 || now != 111 {
		t.Errorf("miss-only: switch=%d resume=%d, want 8 and 111", l2.Stalls[obs.SwitchStall], now)
	}
}

// TestWaitFPUPolicyKeepsPipeTime pins that the FPU switch penalty delays
// the thread's resume, not the operation: WaitFPU(now, start) returns
// start+pen while callers compute the result ready-time from start.
func TestWaitFPUPolicyKeepsPipeTime(t *testing.T) {
	l := &Ledger{Pol: PolicyTable{OnFPU: 8}}
	if got := l.WaitFPU(100, 104); got != 112 {
		t.Errorf("resume = %d, want 112 (pipe start 104 + 8)", got)
	}
	// No structural wait: no charge, no penalty.
	if got := l.WaitFPU(100, 100); got != 100 || l.Stall != 4+8 {
		t.Errorf("free dispatch: resume=%d stall=%d", got, l.Stall)
	}
}
