package timing

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"cyclops/internal/arch"
)

// LatencyModel is the sweepable subset of the Table 2 timing constants:
// the FPU result latencies, the four load-use latencies of the data-side
// memory hierarchy, and the memory port/bank timings. The simulated
// machine consumes it through arch.Config — Apply produces the swept
// configuration and the engines charge through it unchanged — so a
// latency point needs no engine-side special cases and stays exact on
// every engine by construction.
type LatencyModel struct {
	// FPU is the FP add/multiply result latency (Table 2: 5).
	FPU int
	// FMA is the fused multiply-add result latency (9).
	FMA int
	// Load is the load-use latency of a local cache hit (6).
	Load int
	// LocalMiss, RemoteHit and RemoteMiss are the remaining load-use
	// latencies of Table 2 (24, 17, 36).
	LocalMiss, RemoteHit, RemoteMiss int
	// Burst is the DRAM bank occupancy of one 64-byte burst (12 cycles,
	// setting the 42 GB/s peak).
	Burst int
	// StoreLag bounds each bank's write-combining backlog before stores
	// backpressure (192 cycles).
	StoreLag int
}

// LatenciesOf extracts the sweepable subset from a configuration.
func LatenciesOf(c arch.Config) LatencyModel {
	l := c.Latencies
	return LatencyModel{
		FPU:        l.FPLatency,
		FMA:        l.FMALatency,
		Load:       l.LocalHitLatency,
		LocalMiss:  l.LocalMissLatency,
		RemoteHit:  l.RemoteHitLatency,
		RemoteMiss: l.RemoteMissLatency,
		Burst:      c.MemBurstCycles,
		StoreLag:   c.StoreLagCycles,
	}
}

// DefaultLatencies returns the paper's Table 2 point.
func DefaultLatencies() LatencyModel { return LatenciesOf(arch.Default()) }

// Apply returns c with the model's latencies substituted in.
func (m LatencyModel) Apply(c arch.Config) arch.Config {
	c.Latencies.FPLatency = m.FPU
	c.Latencies.FMALatency = m.FMA
	c.Latencies.LocalHitLatency = m.Load
	c.Latencies.LocalMissLatency = m.LocalMiss
	c.Latencies.RemoteHitLatency = m.RemoteHit
	c.Latencies.RemoteMissLatency = m.RemoteMiss
	c.MemBurstCycles = m.Burst
	c.StoreLagCycles = m.StoreLag
	return c
}

// Validate reports the first inconsistency in the model.
func (m LatencyModel) Validate() error {
	switch {
	case m.FPU < 0 || m.FMA < 0:
		return fmt.Errorf("timing: FP latencies must be non-negative (fpu=%d, fma=%d)", m.FPU, m.FMA)
	case m.Load < 1:
		return fmt.Errorf("timing: load-use latency must be at least 1, got %d", m.Load)
	case m.LocalMiss < m.Load:
		return fmt.Errorf("timing: local miss latency %d below the %d-cycle hit", m.LocalMiss, m.Load)
	case m.RemoteHit < m.Load:
		return fmt.Errorf("timing: remote hit latency %d below the %d-cycle local hit", m.RemoteHit, m.Load)
	case m.RemoteMiss < m.LocalMiss:
		return fmt.Errorf("timing: remote miss latency %d below the %d-cycle local miss", m.RemoteMiss, m.LocalMiss)
	case m.Burst < 1:
		return fmt.Errorf("timing: burst occupancy must be at least 1, got %d", m.Burst)
	case m.StoreLag < m.Burst:
		return fmt.Errorf("timing: store lag %d below one %d-cycle burst", m.StoreLag, m.Burst)
	}
	return nil
}

// latencyFields maps spec keys to model fields, in canonical spec order.
var latencyFields = []struct {
	key string
	get func(*LatencyModel) *int
}{
	{"fpu", func(m *LatencyModel) *int { return &m.FPU }},
	{"fma", func(m *LatencyModel) *int { return &m.FMA }},
	{"load", func(m *LatencyModel) *int { return &m.Load }},
	{"miss", func(m *LatencyModel) *int { return &m.LocalMiss }},
	{"rhit", func(m *LatencyModel) *int { return &m.RemoteHit }},
	{"rmiss", func(m *LatencyModel) *int { return &m.RemoteMiss }},
	{"burst", func(m *LatencyModel) *int { return &m.Burst }},
	{"lag", func(m *LatencyModel) *int { return &m.StoreLag }},
}

// String renders the model as its canonical spec, listing only the
// fields that differ from Table 2 — the default point reads "table2".
// The output round-trips through ParseLatencies.
func (m LatencyModel) String() string {
	def := DefaultLatencies()
	var parts []string
	for _, f := range latencyFields {
		if v := *f.get(&m); v != *f.get(&def) {
			parts = append(parts, f.key+"="+strconv.Itoa(v))
		}
	}
	if len(parts) == 0 {
		return "table2"
	}
	return strings.Join(parts, ",")
}

// ParseLatencies builds a model from a comma-separated spec of key=value
// overrides on the Table 2 defaults: "fpu=10,load=12,burst=24". The empty
// spec and "table2" are the default point. Keys are the canonical String
// spellings; unknown keys and non-positive syntax are errors, and the
// resulting model must validate.
func ParseLatencies(spec string) (LatencyModel, error) {
	m := DefaultLatencies()
	if spec == "" || spec == "table2" {
		return m, nil
	}
	for _, part := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return m, fmt.Errorf("timing: latency spec %q: want key=value", part)
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			return m, fmt.Errorf("timing: latency spec %q: %v", part, err)
		}
		found := false
		for _, f := range latencyFields {
			if f.key == k {
				*f.get(&m) = n
				found = true
				break
			}
		}
		if !found {
			return m, fmt.Errorf("timing: latency spec %q: unknown key %q (want %s)",
				part, k, strings.Join(latencyKeys(), ", "))
		}
	}
	return m, m.Validate()
}

// latencyKeys lists the spec keys, sorted for stable error messages.
func latencyKeys() []string {
	keys := make([]string, len(latencyFields))
	for i, f := range latencyFields {
		keys[i] = f.key
	}
	sort.Strings(keys)
	return keys
}
