package timing

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
)

// Policy is the thread-unit issue policy: the rule deciding what happens
// when an issue attempt cannot proceed. The paper's Cyclops issues
// fine-grained from ready threads — a stalled thread simply waits out its
// stall with zero switch cost — while the contrasting blocked-MT designs
// (the related simulators' model) run one thread until it blocks and then
// pay a context-switch penalty to resume. A Policy expresses that design
// axis as a per-trigger penalty table consumed by the shared Ledger, so
// every engine and both execution frontends honor a policy through the
// exact same charge rules.
//
// Semantics: a policy never reorders or suppresses work. It adds a fixed
// penalty — charged to obs.SwitchStall and added to the thread's resume
// time — on each stall *event* whose trigger the policy switches on. The
// underlying wait keeps its own stall reason, so breakdowns attribute the
// policy overhead separately instead of smearing it into the resource
// buckets. A penalty of zero is therefore bit-identical to fine-grained,
// and all timing flows through Ledger charges plus resume times — which
// is what keeps the three sim engines cycle-identical under any policy.
type Policy interface {
	// Name returns the flag spelling: fine, blocked or switchmiss.
	Name() string
	// Penalty returns the context-switch penalty in cycles.
	Penalty() uint64
	// Table compiles the policy into the per-ledger trigger table the
	// hot path consults (no interface dispatch per issue).
	Table() PolicyTable
	// InlineOK reports whether the policy's timing effects flow entirely
	// through Ledger charges and resume times. The block engine's
	// inline-continuation rule consults this before running whole fused
	// blocks without returning to the scheduler; a policy returning
	// false forces one-issue-per-dispatch conservative execution. All
	// shipped policies return true.
	InlineOK() bool
	// String renders the policy for table labels: "fine", "blocked/8".
	String() string
}

// PolicyTable is a compiled Policy: the switch penalty applied on each
// stall trigger, zero meaning the trigger does not switch. The zero value
// is the fine-grained policy. Triggers are stall events, charged once per
// event, not per stalled cycle:
//
//   - OnDep: an operand was not ready (scoreboard interlock).
//   - OnFPU: the quad-shared FPU pipe was occupied (structural wait).
//   - OnMem: the write path backpressured (store buffer / atomic block).
//   - OnMiss: a data-side access missed the cache (local or remote).
//   - OnIFetch: an instruction fetch missed the I-cache.
type PolicyTable struct {
	OnDep, OnFPU, OnMem, OnMiss, OnIFetch uint64
}

// FineGrain is the paper's design point: stalled threads park for free and
// resume the cycle their resource is ready. All triggers are zero.
type FineGrain struct{}

func (FineGrain) Name() string       { return "fine" }
func (FineGrain) Penalty() uint64    { return 0 }
func (FineGrain) Table() PolicyTable { return PolicyTable{} }
func (FineGrain) InlineOK() bool     { return true }
func (FineGrain) String() string     { return "fine" }

// Blocked is classic blocked multithreading: the thread unit runs one
// context until *any* stall event blocks it — dependence wait, FPU
// structural wait, write backpressure, I-fetch miss — and pays Pen cycles
// of pipeline drain/refill to switch. Load misses are not a separate
// trigger: a blocked-MT core switches when the consumer waits, which the
// dependence trigger already charges.
type Blocked struct {
	Pen uint64
}

func (p Blocked) Name() string    { return "blocked" }
func (p Blocked) Penalty() uint64 { return p.Pen }
func (p Blocked) Table() PolicyTable {
	return PolicyTable{OnDep: p.Pen, OnFPU: p.Pen, OnMem: p.Pen, OnIFetch: p.Pen}
}
func (p Blocked) InlineOK() bool { return true }
func (p Blocked) String() string { return fmt.Sprintf("blocked/%d", p.Pen) }

// SwitchOnMiss is the hybrid: short pipeline stalls (dependences, FPU
// occupancy, store backpressure) are tolerated fine-grained, but a cache
// miss — data-side or instruction-side — triggers a switch, paying Pen
// cycles. This is the policy that isolates miss tolerance from
// fine-grained issue.
type SwitchOnMiss struct {
	Pen uint64
}

func (p SwitchOnMiss) Name() string    { return "switchmiss" }
func (p SwitchOnMiss) Penalty() uint64 { return p.Pen }
func (p SwitchOnMiss) Table() PolicyTable {
	return PolicyTable{OnMiss: p.Pen, OnIFetch: p.Pen}
}
func (p SwitchOnMiss) InlineOK() bool { return true }
func (p SwitchOnMiss) String() string { return fmt.Sprintf("switchmiss/%d", p.Pen) }

// ParsePolicySpec resolves a policy's canonical one-string spelling —
// the String form: "fine", "blocked/8", "switchmiss/12" — back into a
// Policy. A bare "blocked" or "switchmiss" takes the default 8-cycle
// penalty (the -switch-penalty flag default). This is the spelling job
// specs and the serve API carry, so it must round-trip String exactly.
func ParsePolicySpec(spec string) (Policy, error) {
	name, penStr, hasPen := strings.Cut(spec, "/")
	pen := uint64(DefaultSwitchPenalty)
	if hasPen {
		v, err := strconv.ParseUint(penStr, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("timing: policy spec %q: bad penalty %q", spec, penStr)
		}
		pen = v
	}
	return ParsePolicy(name, pen)
}

// DefaultSwitchPenalty is the context-switch penalty assumed when a
// policy spec or flag set names a switching policy without one: an
// 8-cycle pipeline drain/refill.
const DefaultSwitchPenalty = 8

// ParsePolicy resolves a -policy flag value with its -switch-penalty.
// The penalty is ignored by the fine-grained policy.
func ParsePolicy(name string, penalty uint64) (Policy, error) {
	switch name {
	case "fine", "":
		return FineGrain{}, nil
	case "blocked":
		return Blocked{Pen: penalty}, nil
	case "switchmiss":
		return SwitchOnMiss{Pen: penalty}, nil
	}
	return nil, fmt.Errorf("timing: unknown policy %q (want fine, blocked or switchmiss)", name)
}

// defaultPolicy is the process-wide default both frontends give fresh
// machines, mirroring sim's default-engine pattern: machine construction
// happens deep inside the harness, so CLI-wide policy selection sets the
// default rather than threading a parameter through every layer.
// Per-point overrides (the matrix experiment) use the machines' SetPolicy
// instead — sweep points with different policies run concurrently, so
// they must not touch this global.
var defaultPolicy atomic.Value // polBox

// polBox keeps atomic.Value's concrete type fixed while the boxed
// Policy implementations vary.
type polBox struct{ p Policy }

// DefaultPolicy returns the policy new machines currently assume.
func DefaultPolicy() Policy {
	if b, ok := defaultPolicy.Load().(polBox); ok {
		return b.p
	}
	return FineGrain{}
}

// SetDefaultPolicy changes the policy for subsequently built machines and
// returns the previous default, for defer-restore in tests.
func SetDefaultPolicy(p Policy) Policy {
	prev := DefaultPolicy()
	if p == nil {
		p = FineGrain{}
	}
	defaultPolicy.Store(polBox{p})
	return prev
}
