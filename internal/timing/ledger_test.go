package timing

import (
	"testing"

	"cyclops/internal/cache"
	"cyclops/internal/obs"
)

func TestChargeBucketsSumToStall(t *testing.T) {
	var l Ledger
	l.ChargeRun(7)
	l.Charge(obs.DepStall, 10)
	l.Charge(obs.FPUStall, 3)
	l.Charge(obs.ICacheStall, 2)
	l.Charge(obs.DepStall, 1)
	if l.Run != 7 {
		t.Fatalf("Run = %d, want 7", l.Run)
	}
	if l.Stall != 16 {
		t.Fatalf("Stall = %d, want 16", l.Stall)
	}
	if obs.Enabled && l.Stalls.Total() != l.Stall {
		t.Fatalf("buckets sum %d != Stall %d", l.Stalls.Total(), l.Stall)
	}
	if obs.Enabled && (l.Stalls[obs.DepStall] != 11 || l.Stalls[obs.FPUStall] != 3) {
		t.Fatalf("buckets: %v", l.Stalls)
	}
}

func TestWaitReady(t *testing.T) {
	var l Ledger
	// Operand already ready: no charge, time unchanged.
	if now := l.WaitReady(100, 90); now != 100 || l.Stall != 0 {
		t.Fatalf("ready in past: now=%d stall=%d", now, l.Stall)
	}
	if now := l.WaitReady(100, 100); now != 100 || l.Stall != 0 {
		t.Fatalf("ready now: now=%d stall=%d", now, l.Stall)
	}
	// Operand ready later: stall for the difference as a dep stall.
	if now := l.WaitReady(100, 125); now != 125 {
		t.Fatalf("ready later: now=%d, want 125", now)
	}
	if l.Stall != 25 {
		t.Fatalf("Stall = %d, want 25", l.Stall)
	}
	if obs.Enabled && l.Stalls[obs.DepStall] != 25 {
		t.Fatalf("dep bucket = %d, want 25", l.Stalls[obs.DepStall])
	}
}

func TestChargeMemStallSplitRule(t *testing.T) {
	if !obs.Enabled {
		t.Skip("built with cyclops_noobs")
	}
	// Port share fits inside the blocked window: port first, bank gets
	// the remainder.
	var l Ledger
	l.ChargeMemStall(cache.Wait{Port: 3, Bank: 40}, 10)
	if l.Stalls[obs.CachePortStall] != 3 || l.Stalls[obs.BankConflictStall] != 7 {
		t.Fatalf("split: %v", l.Stalls)
	}
	if l.Stall != 10 {
		t.Fatalf("Stall = %d, want 10", l.Stall)
	}

	// Port share exceeds the window: clamp, bank gets nothing.
	var m Ledger
	m.ChargeMemStall(cache.Wait{Port: 9}, 4)
	if m.Stalls[obs.CachePortStall] != 4 || m.Stalls[obs.BankConflictStall] != 0 {
		t.Fatalf("clamp: %v", m.Stalls)
	}
	if m.Stall != 4 {
		t.Fatalf("Stall = %d, want 4", m.Stall)
	}

	// No port wait at all: everything is bank backpressure.
	var n Ledger
	n.ChargeMemStall(cache.Wait{}, 6)
	if n.Stalls[obs.BankConflictStall] != 6 || n.Stalls[obs.CachePortStall] != 0 {
		t.Fatalf("bank only: %v", n.Stalls)
	}
}

func TestObserveAccess(t *testing.T) {
	var l Ledger
	l.ObserveAccess(cache.Access{Wait: cache.Wait{Port: 2, Bank: 5, Fill: 1, Hop: 11}})
	l.ObserveAccess(cache.Access{Wait: cache.Wait{Port: 1, Hop: 11}})
	if !obs.Enabled {
		if l.MemWaits.Total() != 0 {
			t.Fatalf("noobs build accumulated mem waits: %v", l.MemWaits)
		}
		return
	}
	want := obs.MemWaits{
		obs.MemWaitPort: 3,
		obs.MemWaitBank: 5,
		obs.MemWaitFill: 1,
		obs.MemWaitHop:  22,
	}
	if l.MemWaits != want {
		t.Fatalf("MemWaits = %v, want %v", l.MemWaits, want)
	}
	// Observation is telemetry, never a stall charge.
	if l.Stall != 0 || l.Run != 0 {
		t.Fatalf("ObserveAccess changed totals: run=%d stall=%d", l.Run, l.Stall)
	}
}

func TestMaxReady(t *testing.T) {
	if MaxReady(3, 9) != 9 || MaxReady(9, 3) != 9 || MaxReady(4, 4) != 4 {
		t.Fatal("MaxReady is not max")
	}
}

func TestThreadStatExport(t *testing.T) {
	var l Ledger
	l.ChargeRun(50)
	l.Charge(obs.BarrierStall, 20)
	l.ObserveAccess(cache.Access{Wait: cache.Wait{Bank: 4}})
	st := l.ThreadStat(6, 1, 123)
	if st.ID != 6 || st.Quad != 1 || st.Insts != 123 {
		t.Fatalf("identity fields: %+v", st)
	}
	if st.Run != 50 || st.Stall != 20 {
		t.Fatalf("totals: %+v", st)
	}
	if obs.Enabled && (st.Stalls[obs.BarrierStall] != 20 || st.MemWaits[obs.MemWaitBank] != 4) {
		t.Fatalf("detail fields: %+v", st)
	}
}
