package timing

import (
	"strings"
	"testing"

	"cyclops/internal/arch"
)

func TestLatencyRoundTrip(t *testing.T) {
	def := DefaultLatencies()
	if def.String() != "table2" {
		t.Fatalf("default spec = %q, want table2", def)
	}
	for _, spec := range []string{"", "table2"} {
		m, err := ParseLatencies(spec)
		if err != nil || m != def {
			t.Fatalf("ParseLatencies(%q) = %+v, %v", spec, m, err)
		}
	}
	m, err := ParseLatencies("miss=48,rmiss=72")
	if err != nil {
		t.Fatal(err)
	}
	if m.LocalMiss != 48 || m.RemoteMiss != 72 || m.Load != def.Load {
		t.Fatalf("overrides: %+v", m)
	}
	if got := m.String(); got != "miss=48,rmiss=72" {
		t.Errorf("String = %q, want canonical round-trip", got)
	}
	back, err := ParseLatencies(m.String())
	if err != nil || back != m {
		t.Errorf("round trip = %+v, %v", back, err)
	}
}

func TestLatencyParseErrors(t *testing.T) {
	cases := []struct{ spec, wantSub string }{
		{"fpu", "key=value"},
		{"fpu=x", "invalid syntax"},
		{"bogus=3", "unknown key"},
		{"load=0", "at least 1"},
		{"miss=2", "below"},
		{"rmiss=5", "below"},
		{"burst=0", "at least 1"},
		{"lag=3", "below"},
	}
	for _, c := range cases {
		if _, err := ParseLatencies(c.spec); err == nil || !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("ParseLatencies(%q) error = %v, want substring %q", c.spec, err, c.wantSub)
		}
	}
}

func TestLatencyApply(t *testing.T) {
	m := DefaultLatencies()
	m.FPU, m.Load, m.Burst = 10, 12, 24
	cfg := m.Apply(arch.Default())
	if cfg.Latencies.FPLatency != 10 || cfg.Latencies.LocalHitLatency != 12 || cfg.MemBurstCycles != 24 {
		t.Fatalf("applied config: fp=%d load=%d burst=%d", cfg.Latencies.FPLatency, cfg.Latencies.LocalHitLatency, cfg.MemBurstCycles)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("applied config does not validate: %v", err)
	}
	// Extraction inverts application.
	if got := LatenciesOf(cfg); got != m {
		t.Errorf("LatenciesOf(Apply(m)) = %+v, want %+v", got, m)
	}
	// Untouched fields survive.
	if cfg.Latencies.IntDivExec != 33 || cfg.Threads != 128 {
		t.Errorf("unrelated fields changed: intdiv=%d threads=%d", cfg.Latencies.IntDivExec, cfg.Threads)
	}
}
