// Package timing owns the per-thread cycle ledger: the single
// implementation of the paper's Table 2 charge rules shared by both
// execution frontends. The instruction-level simulator (internal/sim)
// and the direct-execution runtime (internal/perf) embed a Ledger per
// thread and route every run and stall cycle through it, so the charge
// rules — the run/stall split of Figure 7, the in-order scoreboard
// dependence wait, and the port-first/bank-remainder attribution of
// memory backpressure — exist in exactly one place and every reported
// table agrees across engines by construction rather than by test.
//
// The ledger also owns memory-wait attribution: each timed data access
// carries a cache.Wait (produced once, in internal/cache) saying where
// it queued or travelled — cache port, DRAM bank, in-flight line fill,
// remote cache-switch hop — and ObserveAccess accumulates that into the
// per-thread obs.MemWaits telemetry exported by snapshots, the harness
// breakdown table and the Chrome trace counters.
//
// Everything here is allocation-free and branch-light: with the
// cyclops_noobs build tag the per-reason and per-kind increments compile
// out (obs.Enabled is a false constant) and only the legacy Run/Stall
// totals remain.
package timing

import (
	"cyclops/internal/cache"
	"cyclops/internal/obs"
	"cyclops/internal/prof"
)

// ReadyTime is the shared ready-time abstraction: the cycle at which a
// produced value becomes available to dependent operations. The
// simulator's register scoreboard (TU.ready) and the runtime's dataflow
// tokens (perf.Val) both carry ReadyTimes; the ledger's WaitReady is the
// one rule that turns an unmet ReadyTime into a dependence stall.
type ReadyTime = uint64

// MaxReady returns the later of two ready-times (operand joins).
func MaxReady(a, b ReadyTime) ReadyTime {
	if a > b {
		return a
	}
	return b
}

// Ledger is one thread's cycle account: the Figure 7 run/stall totals,
// the per-reason stall buckets, and the memory-wait sub-attribution.
// The zero value is ready to use. Because every stall charge goes
// through Charge, the buckets sum to Stall exactly — the invariant is
// structural, pinned once by this package's tests.
type Ledger struct {
	// Run counts cycles the thread spent issuing; Stall counts cycles
	// it was blocked on dependences, shared resources or spin-waits.
	Run, Stall uint64
	// Stalls splits Stall by reason; buckets sum to Stall exactly.
	Stalls obs.Breakdown
	// MemWaits sub-attributes memory-system waits by location
	// (port/bank/fill/hop), accumulated per access by ObserveAccess.
	MemWaits obs.MemWaits
	// Samp, when attached, receives every charge as a profiler event:
	// the cycle sampler sees exactly the stream the ledger books, so
	// sampled attributions always agree with the totals. Nil (the
	// default) and cyclops_noobs builds skip the forwarding entirely.
	Samp *prof.TSampler
	// Pol is the compiled issue policy (see Policy): the switch penalty
	// applied per stall trigger. The zero value is fine-grained — no
	// penalties — so existing ledgers behave exactly as before.
	Pol PolicyTable
}

// ChargeRun books n cycles of issued work.
func (l *Ledger) ChargeRun(n uint64) {
	l.Run += n
	if obs.Enabled && l.Samp != nil {
		l.Samp.Charge(prof.KindRun, n)
	}
}

// Charge books n stall cycles to reason r: the legacy total moves
// unconditionally, the per-reason bucket only when the observability
// layer is compiled in.
func (l *Ledger) Charge(r obs.StallReason, n uint64) {
	l.Stall += n
	if obs.Enabled {
		l.Stalls[r] += n
		if l.Samp != nil {
			l.Samp.Charge(prof.StallKind(r), n)
		}
	}
}

// WaitReady is the in-order scoreboard rule shared by both engines: if
// an operand's ready-time lies past now, issue stalls for the difference
// (charged to DepStall) and resumes at ready — plus the issue policy's
// dependence-switch penalty when one is configured. It returns the
// possibly-advanced current time.
func (l *Ledger) WaitReady(now uint64, ready ReadyTime) uint64 {
	if ready > now {
		l.Charge(obs.DepStall, ready-now)
		if p := l.Pol.OnDep; p != 0 {
			l.ChargeSwitch(p)
			ready += p
		}
		return ready
	}
	return now
}

// ChargeSwitch books n cycles of context-switch penalty. The penalty is
// its own stall reason — never folded into the triggering wait's bucket —
// so breakdowns attribute policy overhead separately.
func (l *Ledger) ChargeSwitch(n uint64) {
	l.Charge(obs.SwitchStall, n)
}

// WaitFPU is the structural-wait rule for the quad-shared FPU: start is
// the cycle the pipe accepted the operation; any gap from now is charged
// to FPUStall, plus the policy's FPU-switch penalty. It returns the cycle
// issue resumes. The result's ready-time is the pipe's, computed from
// start — a switch penalty delays the thread, not the value in flight.
func (l *Ledger) WaitFPU(now, start uint64) uint64 {
	if start > now {
		l.Charge(obs.FPUStall, start-now)
		if p := l.Pol.OnFPU; p != 0 {
			l.ChargeSwitch(p)
			return start + p
		}
		return start
	}
	return now
}

// SettleAccess is the shared post-access rule for one timed data access:
// now is the cycle the thread would continue unstalled, free the cycle
// the memory system actually releases it (past now only for write
// backpressure and blocking atomics). The blocked cycles get the Table 2
// port-first/bank-remainder split, then the policy applies at most one
// switch penalty per access — for the backpressure event if it switches
// on memory blocking, else for a cache miss if it switches on misses.
// It returns the cycle the thread resumes issue.
func (l *Ledger) SettleAccess(a cache.Access, now, free uint64) uint64 {
	if free > now {
		l.ChargeMemStall(a.Wait, free-now)
		now = free
		if p := l.Pol.OnMem; p != 0 {
			l.ChargeSwitch(p)
			return now + p
		}
	}
	if p := l.Pol.OnMiss; p != 0 && (a.Where == cache.LocalMiss || a.Where == cache.RemoteMiss) {
		l.ChargeSwitch(p)
		now += p
	}
	return now
}

// ChargeMemStall is the Table 2 split rule for memory backpressure — the
// only implementation in the module. Of the n cycles a thread is blocked
// behind the write path, the access's measured port-queue share is
// charged first to CachePortStall and the remainder to BankConflictStall
// (DRAM burst queueing).
func (l *Ledger) ChargeMemStall(w cache.Wait, n uint64) {
	port := w.Port
	if port > n {
		port = n
	}
	l.Charge(obs.CachePortStall, port)
	l.Charge(obs.BankConflictStall, n-port)
}

// ObserveAccess accumulates one timed access's wait attribution into the
// per-thread MemWaits telemetry. Unlike Charge this is not a stall: load
// waits surface later as dep stalls through the scoreboard, but their
// location in the memory system is only known here.
func (l *Ledger) ObserveAccess(a cache.Access) {
	if obs.Enabled {
		l.MemWaits[obs.MemWaitPort] += a.Wait.Port
		l.MemWaits[obs.MemWaitBank] += a.Wait.Bank
		l.MemWaits[obs.MemWaitFill] += a.Wait.Fill
		l.MemWaits[obs.MemWaitHop] += a.Wait.Hop
	}
}

// ThreadStat exports the ledger as one snapshot row.
func (l *Ledger) ThreadStat(id, quad int, insts uint64) obs.ThreadStat {
	return obs.ThreadStat{
		ID:       id,
		Quad:     quad,
		Insts:    insts,
		Run:      l.Run,
		Stall:    l.Stall,
		Stalls:   l.Stalls,
		MemWaits: l.MemWaits,
	}
}
