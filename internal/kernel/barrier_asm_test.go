package kernel

import (
	"fmt"
	"testing"

	"cyclops/internal/arch"
	"cyclops/internal/asm"
	"cyclops/internal/core"
)

// The Section 3.3 motivation, at the instruction level: a barrier through
// the wired-OR SPR versus a software barrier through shared memory, both
// written in Cyclops assembly and timed on the instruction simulator.
//
// The software variant is a centralized sense-reversing counter barrier:
// amoadd on a shared counter, then spin-loading a generation word — the
// "memory-based synchronization [that] could be very slow" which
// motivated the hardware (Section 1/2.3).

// hwBarrierSrc synchronises NW workers ROUNDS times through SPR 4.
func hwBarrierSrc(workers, rounds int) string {
	return fmt.Sprintf(`
	.equ NW, %d
	.equ ROUNDS, %d
_start:	li   r8, 1
	li   r9, NW
spawn:	li   a0, 3
	la   a1, thread
	mov  a2, r8
	syscall
	addi r8, r8, 1
	blt  r8, r9, spawn
	li   a0, 0
	j    thread

thread:	mov  r30, a0
	li   r26, 1		; current mask
	li   r27, 2		; next mask
	li   r24, ROUNDS
	; record start cycle (main only)
	bne  r30, r0, loop
	mfspr r20, 2
	la   r21, t0
	sw   r20, 0(r21)
loop:	mtspr r27, 4
spin:	mfspr r9, 4
	and  r9, r9, r26
	bne  r9, r0, spin
	mov  r9, r26
	mov  r26, r27
	mov  r27, r9
	addi r24, r24, -1
	bne  r24, r0, loop
	bne  r30, r0, out
	mfspr r20, 2
	la   r21, t1
	sw   r20, 0(r21)
out:	li   a0, 0
	syscall
	.align 8
t0:	.word 0
t1:	.word 0
`, workers, rounds)
}

// swBarrierSrc is the same structure with a counter barrier in memory.
// The shared words live at a chip-wide-shared effective address so the
// spin traffic crosses the cache switch like any shared data.
func swBarrierSrc(workers, rounds int) string {
	return fmt.Sprintf(`
	.equ NW, %d
	.equ ROUNDS, %d
	.equ SHARED, 6 << 29	; interest group: one of all 32 caches
_start:	li   r8, 1
	li   r9, NW
spawn:	li   a0, 3
	la   a1, thread
	mov  a2, r8
	syscall
	addi r8, r8, 1
	blt  r8, r9, spawn
	li   a0, 0
	j    thread

thread:	mov  r30, a0
	la   r14, counter
	li   r15, SHARED
	or   r14, r14, r15	; &counter, shared placement
	la   r16, gen
	or   r16, r16, r15	; &generation, shared placement
	li   r24, ROUNDS
	li   r25, 0		; local generation
	bne  r30, r0, loop
	mfspr r20, 2
	la   r21, t0
	sw   r20, 0(r21)
loop:	li   r9, 1
	amoadd r10, (r14), r9	; arrive
	addi r11, r10, 1
	li   r12, NW
	bne  r11, r12, wait
	; last arrival: reset the counter, bump the generation
	sw   r0, 0(r14)
	addi r13, r25, 1
	sw   r13, 0(r16)
	b    done
wait:	lw   r13, 0(r16)	; spin on the generation word
	bleu r13, r25, wait
done:	addi r25, r25, 1
	addi r24, r24, -1
	bne  r24, r0, loop
	bne  r30, r0, out
	mfspr r20, 2
	la   r21, t1
	sw   r20, 0(r21)
out:	li   a0, 0
	syscall
	.align 8
counter: .word 0
gen:	.word 0
t0:	.word 0
t1:	.word 0
`, workers, rounds)
}

// runBarrierBench boots a source and returns the measured cycles per
// barrier round.
func runBarrierBench(t *testing.T, src string, rounds int) uint64 {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	chip := core.MustNew(arch.Default())
	k := New(chip)
	k.Machine().MaxCycles = 50_000_000
	if err := k.Boot(p); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	t0, _ := chip.Mem.Read32(p.Symbols["t0"])
	t1, _ := chip.Mem.Read32(p.Symbols["t1"])
	if t1 <= t0 {
		t.Fatalf("timing region collapsed: t0=%d t1=%d", t0, t1)
	}
	return uint64(t1-t0) / uint64(rounds)
}

func TestAsmHardwareBarrierBeatsSoftware(t *testing.T) {
	const rounds = 10
	for _, workers := range []int{4, 16, 64} {
		hw := runBarrierBench(t, hwBarrierSrc(workers, rounds), rounds)
		sw := runBarrierBench(t, swBarrierSrc(workers, rounds), rounds)
		if hw >= sw {
			t.Errorf("%d threads: hw barrier %d cycles/round not below sw %d", workers, hw, sw)
		}
		// The wired-OR should stay within tens of cycles per round;
		// the counter barrier serialises amoadds on one location.
		if workers == 64 && hw > 200 {
			t.Errorf("hw barrier at 64 threads costs %d cycles/round, want < 200", hw)
		}
		t.Logf("%2d threads: hw %4d cycles/round, sw %5d", workers, hw, sw)
	}
}

// The barrier must actually synchronise: a worker that skips straight to
// the barrier cannot pass until the delayed workers arrive.
func TestAsmHWBarrierReallySynchronises(t *testing.T) {
	src := `
	.equ NW, 3
_start:	li   r8, 1
	li   r9, NW
spawn:	li   a0, 3
	la   a1, thread
	mov  a2, r8
	syscall
	addi r8, r8, 1
	blt  r8, r9, spawn
	li   a0, 0
	j    thread
thread:	mov  r30, a0
	; stagger: thread k delays 1000*k cycles of work
	li   r9, 400
	mul  r9, r9, r30
	beq  r9, r0, enter
delay:	addi r9, r9, -1
	bne  r9, r0, delay
enter:	li   r27, 2
	mtspr r27, 4
spin:	mfspr r9, 4
	andi r9, r9, 1
	bne  r9, r0, spin
	; record release cycle per thread
	mfspr r20, 2
	la   r21, out
	slli r22, r30, 2
	add  r21, r21, r22
	sw   r20, 0(r21)
	li   a0, 0
	syscall
	.align 8
out:	.space 4*NW
	`
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	chip := core.MustNew(arch.Default())
	k := New(chip)
	k.Machine().MaxCycles = 10_000_000
	if err := k.Boot(p); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	out := p.Symbols["out"]
	var rel [3]uint32
	for i := range rel {
		rel[i], _ = chip.Mem.Read32(out + uint32(4*i))
	}
	for i := 1; i < 3; i++ {
		d := int64(rel[i]) - int64(rel[0])
		if d < -30 || d > 30 {
			t.Errorf("thread %d released %d cycles apart from thread 0", i, d)
		}
	}
	// Release cannot precede the slowest thread's delay (~2*400 loop
	// iterations at ~3 cycles each).
	if rel[0] < 1500 {
		t.Errorf("released at %d, before the slowest thread entered", rel[0])
	}
}
