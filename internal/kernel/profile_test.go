package kernel

import (
	"testing"

	"cyclops/internal/arch"
	"cyclops/internal/asm"
	"cyclops/internal/core"
	"cyclops/internal/obs"
	"cyclops/internal/prof"
)

// The profiler's accounting must reconcile exactly with the timing
// ledger: at a sampling interval of 1 every charged cycle takes a
// sample, so per-unit sample counts equal the unit's run+stall total.
func TestProfilerReconcilesWithLedger(t *testing.T) {
	if !obs.Enabled {
		t.Skip("observability compiled out")
	}
	p, err := asm.Assemble(hwBarrierSrc(4, 8))
	if err != nil {
		t.Fatal(err)
	}
	chip := core.MustNew(arch.Default())
	k := New(chip)
	k.Machine().MaxCycles = 5_000_000
	pr := prof.New(1)
	k.Machine().AttachProfile(pr)
	if err := k.Boot(p); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	samples := pr.SamplesByTU()
	var active int
	for _, tu := range k.Machine().TUs {
		total := tu.Run + tu.Stall
		var got uint64
		if tu.ID < len(samples) {
			got = samples[tu.ID]
		}
		if got != total {
			t.Errorf("TU %d: %d samples at interval 1, ledger has run+stall = %d", tu.ID, got, total)
		}
		if total > 0 {
			active++
		}
	}
	if active < 4 {
		t.Fatalf("only %d units were active; the barrier program should run 4", active)
	}
	if pr.TotalSamples() == 0 {
		t.Fatal("profiler took no samples")
	}
}

// Timeline interval deltas must telescope to the end-of-run counters:
// summing every row reproduces the snapshot's run/stall totals, the
// per-reason breakdown, the memory-wait attribution and the resource
// busy totals exactly.
func TestTimelineSumMatchesSnapshot(t *testing.T) {
	if !obs.Enabled {
		t.Skip("observability compiled out")
	}
	p, err := asm.Assemble(swBarrierSrc(4, 8))
	if err != nil {
		t.Fatal(err)
	}
	chip := core.MustNew(arch.Default())
	k := New(chip)
	k.Machine().MaxCycles = 5_000_000
	tl := prof.NewTimeline(64)
	k.Machine().AttachTimeline(tl)
	if err := k.Boot(p); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(tl.Rows()) == 0 {
		t.Fatal("timeline recorded no intervals")
	}
	sum := tl.Sum()

	var run, stall uint64
	for _, tu := range k.Machine().TUs {
		run += tu.Run
		stall += tu.Stall
	}
	if sum.Run != run || sum.Stall != stall {
		t.Errorf("timeline sum run/stall = %d/%d, ledger totals %d/%d", sum.Run, sum.Stall, run, stall)
	}
	if sum.Stalls != k.Machine().TotalBreakdown() {
		t.Errorf("timeline stall breakdown %v != snapshot %v", sum.Stalls, k.Machine().TotalBreakdown())
	}
	if sum.MemWaits != k.Machine().TotalMemWaits() {
		t.Errorf("timeline memwaits %v != snapshot %v", sum.MemWaits, k.Machine().TotalMemWaits())
	}
	var port, bank, fpu uint64
	for _, rs := range chip.ResourceStats() {
		switch rs.Kind {
		case "cacheport":
			port += rs.Busy
		case "drambank":
			bank += rs.Busy
		case "fpu":
			fpu += rs.Busy
		}
	}
	if sum.PortBusy != port || sum.BankBusy != bank || sum.FPUBusy != fpu {
		t.Errorf("timeline busy %d/%d/%d != resource stats %d/%d/%d",
			sum.PortBusy, sum.BankBusy, sum.FPUBusy, port, bank, fpu)
	}
}
