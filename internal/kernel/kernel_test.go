package kernel

import (
	"strings"
	"testing"

	"cyclops/internal/arch"
	"cyclops/internal/asm"
	"cyclops/internal/core"
	"cyclops/internal/isa"
	"cyclops/internal/sim"
)

func boot(t *testing.T, cfg arch.Config, src string) (*Kernel, *asm.Program) {
	t.Helper()
	k, p, err := tryBoot(cfg, src)
	if err != nil {
		t.Fatal(err)
	}
	return k, p
}

func tryBoot(cfg arch.Config, src string) (*Kernel, *asm.Program, error) {
	p, err := asm.Assemble(src)
	if err != nil {
		return nil, nil, err
	}
	chip, err := core.NewChip(cfg)
	if err != nil {
		return nil, nil, err
	}
	k := New(chip)
	k.Machine().MaxCycles = 5_000_000
	if err := k.Boot(p); err != nil {
		return nil, nil, err
	}
	return k, p, nil
}

func TestHelloOutput(t *testing.T) {
	k, _ := boot(t, arch.Default(), `
	li  a0, 1		; SysPutc
	li  a1, 'h'
	syscall
	li  a1, 'i'
	syscall
	li  a0, 2		; SysPutInt
	li  a1, -42
	syscall
	li  a0, 0		; SysExit
	syscall
	`)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got := string(k.Output); got != "hi-42" {
		t.Errorf("output = %q, want %q", got, "hi-42")
	}
}

func TestMainRunsOnFirstWorkerWithStack(t *testing.T) {
	k, _ := boot(t, arch.Default(), `
	sw   r0, -4(sp)		; stack is writable
	li   a0, 0
	syscall
	`)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	main := k.Machine().TUs[2]
	if main.State != sim.Halted {
		t.Error("main thread did not run on unit 2 (first worker)")
	}
	if main.Insts == 0 {
		t.Error("no instructions executed")
	}
}

// Spawn 10 workers that each add their argument into a shared counter
// atomically; main joins them all and stores the total.
const spawnSrc = `
	.equ NW, 10
_start:	li   r8, 0		; worker index
	la   r16, tids
spawnl:	li   a0, 3		; SysSpawn
	la   a1, worker
	mov  a2, r8		; arg = index
	syscall
	sw   a0, 0(r16)		; record tid
	addi r16, r16, 4
	addi r8, r8, 1
	slti r9, r8, NW
	bne  r9, r0, spawnl
	; join all
	li   r8, 0
	la   r16, tids
joinl:	li   a0, 4		; SysJoin
	lw   a1, 0(r16)
	syscall
	addi r16, r16, 4
	addi r8, r8, 1
	slti r9, r8, NW
	bne  r9, r0, joinl
	; publish the counter
	la   r9, ctr
	lw   r10, 0(r9)
	la   r11, out
	sw   r10, 0(r11)
	li   a0, 0
	syscall

worker:	la   r9, ctr
	addi r10, a0, 1		; arg+1
	amoadd r11, (r9), r10
	li   a0, 0
	syscall

	.align 4
ctr:	.word 0
out:	.word 0
tids:	.space 4*NW
`

func TestSpawnJoinAndAtomicCounter(t *testing.T) {
	k, p := boot(t, arch.Default(), spawnSrc)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	v, err := k.chip.Mem.Read32(p.Symbols["out"])
	if err != nil {
		t.Fatal(err)
	}
	// sum of arg+1 for arg=0..9 = 55.
	if v != 55 {
		t.Errorf("counter = %d, want 55", v)
	}
}

func TestSequentialAllocationFillsQuads(t *testing.T) {
	k, _ := boot(t, arch.Default(), spawnSrc)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// Main on 2; workers on 3..12 — quad 0 filled first.
	for tid := 3; tid <= 12; tid++ {
		if k.Machine().TUs[tid].Insts == 0 {
			t.Errorf("sequential policy skipped unit %d", tid)
		}
	}
	if k.Machine().TUs[33].Insts != 0 {
		t.Error("sequential policy scattered threads")
	}
}

func TestBalancedAllocationSpreadsQuads(t *testing.T) {
	p, _ := asm.Assemble(spawnSrc)
	chip := core.MustNew(arch.Default())
	k := New(chip)
	k.Policy = Balanced
	k.Machine().MaxCycles = 5_000_000
	if err := k.Boot(p); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// Balanced order starts at quad 0 slot 0 (units 2 and 3 reserved?
	// no: reserved are 0,1, so first usable slots are 4,8,12... plus 2,3
	// in quad 0). Count active quads: 11 threads should span 11 quads'
	// worth of slots rather than 3 quads.
	quads := map[int]int{}
	for tid, tu := range k.Machine().TUs {
		if tu.Insts > 0 {
			quads[arch.Default().QuadOf(tid)]++
		}
	}
	if len(quads) < 9 {
		t.Errorf("balanced policy used only %d quads for 11 threads", len(quads))
	}
	for q, n := range quads {
		if n > 2 {
			t.Errorf("balanced policy stacked %d threads on quad %d", n, q)
		}
	}
}

func TestPolicyString(t *testing.T) {
	if Sequential.String() != "sequential" || Balanced.String() != "balanced" {
		t.Error("policy names wrong")
	}
}

func TestSpawnExhaustionReturnsError(t *testing.T) {
	// Spawn more threads than exist; the kernel returns ^0 once full.
	k, p := boot(t, arch.Default(), `
	li   r8, 0
	li   r9, 200
loop:	li   a0, 3
	la   a1, worker
	li   a2, 0
	syscall
	li   r10, -1
	beq  a0, r10, full
	addi r8, r8, 1
	blt  r8, r9, loop
full:	la   r11, out
	sw   r8, 0(r11)
	li   a0, 0
	syscall
worker:	li   a0, 0
	syscall
	.align 4
out:	.word 0
	`)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	v, _ := k.chip.Mem.Read32(p.Symbols["out"])
	// 126 workers minus the main thread = 125 spawnable.
	if v != 125 {
		t.Errorf("spawned %d threads before exhaustion, want 125", v)
	}
}

func TestJoinUnknownTidTraps(t *testing.T) {
	k, _ := boot(t, arch.Default(), `
	li  a0, 4
	li  a1, 77
	syscall
	li  a0, 0
	syscall
	`)
	err := k.Run()
	if err == nil || !strings.Contains(err.Error(), "unknown thread") {
		t.Errorf("join of never-spawned tid: %v", err)
	}
}

func TestUnknownSyscallTraps(t *testing.T) {
	k, _ := boot(t, arch.Default(), "li a0, 99\nsyscall")
	err := k.Run()
	if err == nil || !strings.Contains(err.Error(), "unknown syscall") {
		t.Errorf("unknown syscall: %v", err)
	}
}

func TestBootRejectsImageOverlappingStacks(t *testing.T) {
	cfg := arch.Default()
	// 128 threads x 8 KB = 1 MB of stacks at the top of 8 MB.
	_, _, err := tryBoot(cfg, `
	.org 0x7fe000
	halt
	.space 0x3000
	`)
	if err == nil || !strings.Contains(err.Error(), "stack region") {
		t.Errorf("overlapping image: %v", err)
	}
}

func TestStackBase(t *testing.T) {
	chip := core.MustNew(arch.Default())
	k := New(chip)
	want := uint32(8<<20) - 128*(8<<10)
	if got := k.StackBase(); got != want {
		t.Errorf("StackBase = %#x, want %#x", got, want)
	}
	// Stacks are addressed through the own-cache interest group.
	sp := k.stackFor(5)
	if arch.GroupOf(sp).Mode != arch.GroupOwn {
		t.Error("stack pointer does not use the own-cache interest group")
	}
	if arch.Phys(sp) != 8<<20-5*(8<<10) {
		t.Errorf("stack top for tid 5 = %#x", arch.Phys(sp))
	}
}

func TestOffChipSyscalls(t *testing.T) {
	cfg := arch.Default()
	cfg.OffChipBytes = 1 << 20
	k, p := boot(t, cfg, `
	; write pattern, push block out, wipe, pull back
	la   r8, buf
	li   r9, 0x1234
	sw   r9, 0(r8)
	li   a0, 7		; SysOffChipWrite: a1=ext, a2=emb
	li   a1, 0
	mov  a2, r8
	syscall
	sw   r0, 0(r8)		; wipe
	li   a0, 6		; SysOffChipRead
	li   a1, 0
	mov  a2, r8
	syscall
	lw   r10, 0(r8)
	la   r11, out
	sw   r10, 0(r11)
	li   a0, 0
	syscall
	.align 1024
buf:	.space 1024
out:	.word 0
	`)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	v, _ := k.chip.Mem.Read32(p.Symbols["out"])
	if v != 0x1234 {
		t.Errorf("round trip through off-chip memory = %#x, want 0x1234", v)
	}
}

func TestOffChipWithoutHardwareTraps(t *testing.T) {
	k, _ := boot(t, arch.Default(), "li a0, 6\nsyscall")
	err := k.Run()
	if err == nil || !strings.Contains(err.Error(), "off-chip") {
		t.Errorf("off-chip syscall without hardware: %v", err)
	}
}

func TestWorkersGetDistinctStacks(t *testing.T) {
	chip := core.MustNew(arch.Default())
	k := New(chip)
	seen := map[uint32]bool{}
	for tid := 2; tid < 10; tid++ {
		sp := k.stackFor(tid)
		if seen[sp] {
			t.Fatalf("duplicate stack pointer %#x", sp)
		}
		seen[sp] = true
	}
}

func TestSpawnArmsBarrierContribution(t *testing.T) {
	k, _ := boot(t, arch.Default(), `
	li  a0, 0
	syscall
	`)
	// Before running, the booted main thread must already drive bit 0.
	if k.chip.Barrier.Read()&1 == 0 {
		t.Error("main thread's barrier contribution not armed at boot")
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// After exit the contribution is withdrawn.
	if k.chip.Barrier.Read() != 0 {
		t.Error("exited thread still drives the wired-OR")
	}
}

func TestSysThreads(t *testing.T) {
	k, p := boot(t, arch.Default(), `
	li  a0, 5
	syscall
	la  r8, out
	sw  a0, 0(r8)
	li  a0, 0
	syscall
out:	.word 0
	`)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	v, _ := k.chip.Mem.Read32(p.Symbols["out"])
	if v != 126 {
		t.Errorf("SysThreads = %d, want 126", v)
	}
	_ = isa.SysThreads
}
