// Package kernel is the resident system kernel of Section 3.1: it supports
// single-user, single-program, multithreaded applications in one shared
// address space. There is no resource virtualization — virtual addresses
// map directly to physical addresses (no paging) and software threads map
// directly to hardware thread units. No preemption, scheduling or
// prioritization; every thread gets a fixed-size stack preallocated at
// boot, giving fast thread creation and reuse. Two thread units are
// reserved for the system, leaving 126 for applications on the default
// chip.
package kernel

import (
	"fmt"
	"strconv"

	"cyclops/internal/arch"
	"cyclops/internal/asm"
	"cyclops/internal/barrier"
	"cyclops/internal/core"
	"cyclops/internal/isa"
	"cyclops/internal/sim"
)

// Policy selects how software threads are placed on hardware thread units
// (Section 3.2.2, "Thread allocation policies").
type Policy uint8

const (
	// Sequential fills quads in order: threads 0..3 on quad 0, 4..7 on
	// quad 1, and so on. This is the default.
	Sequential Policy = iota
	// Balanced deals threads cyclically across quads, so with fewer
	// than all threads in use every quad carries as few as possible and
	// cache/FPU pressure per quad is minimized.
	Balanced
)

func (p Policy) String() string {
	if p == Balanced {
		return "balanced"
	}
	return "sequential"
}

// Kernel implements sim.Syscaller and owns thread placement, stacks and
// the console.
type Kernel struct {
	chip *core.Chip
	m    *sim.Machine

	// StackBytes is the per-thread stack size fixed at boot.
	StackBytes uint32
	// Policy is the thread allocation policy.
	Policy Policy

	// Output receives console bytes (sysPutc / sysPutInt).
	Output []byte

	// allocation order, rebuilt when the policy changes.
	order []int
	// joinWaiters guards against joining unknown tids forever.
	spawned map[int]bool
}

// New builds a kernel for a chip and creates the machine that runs it.
func New(chip *core.Chip) *Kernel {
	k := &Kernel{
		chip:       chip,
		StackBytes: 8 << 10,
		spawned:    make(map[int]bool),
	}
	k.m = sim.New(chip, k)
	return k
}

// Machine returns the machine the kernel schedules onto.
func (k *Kernel) Machine() *sim.Machine { return k.m }

// workerOrder lists usable worker thread units in allocation order.
func (k *Kernel) workerOrder() []int {
	if k.order != nil {
		return k.order
	}
	cfg := k.chip.Cfg
	var tids []int
	switch k.Policy {
	case Balanced:
		nq := cfg.Quads()
		for slot := 0; slot < cfg.ThreadsPerQuad; slot++ {
			for q := 0; q < nq; q++ {
				tid := q*cfg.ThreadsPerQuad + slot
				if tid >= cfg.ReservedThreads && k.chip.ThreadUsable(tid) {
					tids = append(tids, tid)
				}
			}
		}
	default:
		for tid := cfg.ReservedThreads; tid < cfg.Threads; tid++ {
			if k.chip.ThreadUsable(tid) {
				tids = append(tids, tid)
			}
		}
	}
	k.order = tids
	return tids
}

// stackFor returns the initial stack pointer for a hardware thread: the
// stacks are carved from the top of embedded memory, one fixed-size slab
// per thread unit, addressed through the thread's own quad cache so stack
// data stays local (Section 2.1 names thread stacks as the canonical
// high-affinity data).
func (k *Kernel) stackFor(tid int) uint32 {
	top := k.chip.Mem.Size() - uint32(tid)*k.StackBytes
	return arch.EA(arch.InterestGroup{Mode: arch.GroupOwn}, top)
}

// StackBase returns the lowest physical address reserved for stacks; the
// application image and heap must stay below it.
func (k *Kernel) StackBase() uint32 {
	return k.chip.Mem.Size() - uint32(k.chip.Cfg.Threads)*k.StackBytes
}

// startThread initialises a unit and begins execution at pc.
func (k *Kernel) startThread(tid int, pc uint32, arg uint32) error {
	tu := k.m.TUs[tid]
	for r := range tu.Regs {
		tu.Regs[r] = 0
	}
	tu.Regs[isa.RSP] = k.stackFor(tid)
	tu.Regs[isa.RArg0] = arg
	// Arm the thread's contribution to barrier 0 before it runs, so the
	// first chip-wide barrier cannot release early (Section 2.3's "all
	// threads participating initially set their current bit").
	_, init := barrier.NewParticipant(0)
	k.chip.Barrier.Write(tid, init)
	k.spawned[tid] = true
	return k.m.Start(tid, pc)
}

// Boot loads an assembled program and starts its entry point on the first
// worker thread unit.
func (k *Kernel) Boot(p *asm.Program) error {
	if p.Origin+uint32(len(p.Bytes)) > k.StackBase() {
		return fmt.Errorf("kernel: image [%#x,%#x) overlaps the stack region at %#x",
			p.Origin, p.Origin+uint32(len(p.Bytes)), k.StackBase())
	}
	if err := k.chip.LoadImage(p.Origin, p.Bytes); err != nil {
		return err
	}
	order := k.workerOrder()
	if len(order) == 0 {
		return fmt.Errorf("kernel: no usable worker threads")
	}
	return k.startThread(order[0], p.Entry, 0)
}

// Run boots nothing further and executes to completion.
func (k *Kernel) Run() error { return k.m.Run() }

// Syscall implements sim.Syscaller.
func (k *Kernel) Syscall(m *sim.Machine, tu *sim.TU) sim.SysResult {
	no := tu.Regs[isa.RArg0]
	a1 := tu.Regs[isa.RArg1]
	a2 := tu.Regs[isa.RArg2]
	switch no {
	case isa.SysExit:
		// Withdraw from the wired-OR so later barriers among the
		// surviving threads are not blocked by a dead contribution.
		k.chip.Barrier.Write(tu.ID, 0)
		return sim.SysResult{Halt: true}

	case isa.SysPutc:
		k.Output = append(k.Output, byte(a1))
		return sim.SysResult{Cost: 4}

	case isa.SysPutInt:
		k.Output = append(k.Output, []byte(strconv.Itoa(int(int32(a1))))...)
		return sim.SysResult{Cost: 8}

	case isa.SysSpawn:
		tid := k.freeWorker()
		if tid < 0 {
			tu.Regs[isa.RArg0] = ^uint32(0)
			return sim.SysResult{Cost: 10}
		}
		if err := k.startThread(tid, a1, a2); err != nil {
			m.Trap("kernel: spawn: %v", err)
			return sim.SysResult{Halt: true}
		}
		tu.Regs[isa.RArg0] = uint32(tid)
		// Thread creation is fast on Cyclops (preallocated stacks).
		return sim.SysResult{Cost: 10}

	case isa.SysJoin:
		tid := int(a1)
		if tid < 0 || tid >= len(m.TUs) || !k.spawned[tid] {
			m.Trap("kernel: thread %d joined unknown thread %d", tu.ID, tid)
			return sim.SysResult{Halt: true}
		}
		if m.TUs[tid].State == sim.Running {
			return sim.SysResult{Cost: 20, Retry: true}
		}
		return sim.SysResult{Cost: 4}

	case isa.SysThreads:
		tu.Regs[isa.RArg0] = uint32(len(k.workerOrder()))
		return sim.SysResult{Cost: 4}

	case isa.SysOffChipRead, isa.SysOffChipWrite:
		if k.chip.OffChip == nil {
			m.Trap("kernel: no off-chip memory configured")
			return sim.SysResult{Halt: true}
		}
		var done uint64
		var err error
		if no == isa.SysOffChipRead {
			done, err = k.chip.OffChip.ReadBlock(m.Cycle(), k.chip.Mem, a1, a2)
		} else {
			done, err = k.chip.OffChip.WriteBlock(m.Cycle(), k.chip.Mem, a2, a1)
		}
		if err != nil {
			m.Trap("kernel: off-chip: %v", err)
			return sim.SysResult{Halt: true}
		}
		return sim.SysResult{Cost: done - m.Cycle()}

	default:
		m.Trap("kernel: thread %d: unknown syscall %d", tu.ID, no)
		return sim.SysResult{Halt: true}
	}
}

// freeWorker returns the next never-started usable worker unit, -1 if none.
func (k *Kernel) freeWorker() int {
	for _, tid := range k.workerOrder() {
		if !k.spawned[tid] && k.m.TUs[tid].State == sim.Idle {
			return tid
		}
	}
	return -1
}
