package kernel

import (
	"testing"

	"cyclops/internal/asm"
	"cyclops/internal/vet"
)

// Every hand-written assembly kernel in this package must be vet-clean
// at error severity: these sources exercise the call convention, the
// hardware barrier and the FP pair discipline, so they double as the
// analyzer's negative corpus. (The splash kernels are direct-execution
// Go and have no assembly to vet.)
func TestKernelSourcesVetClean(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"asmlib", asmlibSrc},
		{"gemm", gemmSrc},
		{"hwbarrier", hwBarrierSrc(4, 3)},
		{"swbarrier", swBarrierSrc(4, 3)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p, err := asm.AssembleNamed(c.name+".s", c.src)
			if err != nil {
				t.Fatalf("assemble: %v", err)
			}
			diags := vet.Check(p)
			for _, d := range diags {
				if d.Sev == vet.Error {
					t.Errorf("error diagnostic: %s", d)
				} else {
					t.Logf("warning: %s", d)
				}
			}
		})
	}
}
