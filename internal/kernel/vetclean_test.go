package kernel

import (
	"strconv"
	"testing"

	"cyclops/internal/asm"
	"cyclops/internal/vet"
)

// Every hand-written assembly kernel in this package must be vet-clean
// at error severity: these sources exercise the call convention, the
// hardware barrier and the FP pair discipline, so they double as the
// analyzer's negative corpus. (The splash kernels are direct-execution
// Go and have no assembly to vet.)
func TestKernelSourcesVetClean(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"asmlib", asmlibSrc},
		{"gemm", gemmSrc},
	}
	// The barrier microbenchmarks across worker/round shapes: the
	// concurrency passes must accept every generated variant (the
	// spawn loop, the wired-OR episodes, the sw-barrier's amoadd
	// counter with its tid-guarded reset).
	for _, workers := range []int{1, 2, 4, 8} {
		for _, rounds := range []int{1, 3, 16} {
			cases = append(cases,
				struct{ name, src string }{
					name: "hwbarrier-w" + strconv.Itoa(workers) + "-r" + strconv.Itoa(rounds),
					src:  hwBarrierSrc(workers, rounds),
				},
				struct{ name, src string }{
					name: "swbarrier-w" + strconv.Itoa(workers) + "-r" + strconv.Itoa(rounds),
					src:  swBarrierSrc(workers, rounds),
				})
		}
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p, err := asm.AssembleNamed(c.name+".s", c.src)
			if err != nil {
				t.Fatalf("assemble: %v", err)
			}
			diags := vet.Check(p)
			for _, d := range diags {
				if d.Sev == vet.Error {
					t.Errorf("error diagnostic: %s", d)
				} else {
					t.Logf("warning: %s", d)
				}
			}
		})
	}
}
