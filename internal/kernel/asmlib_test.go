package kernel

import (
	"testing"

	"cyclops/internal/arch"
	"cyclops/internal/asm"
	"cyclops/internal/core"
)

// Small library routines in Cyclops assembly — the call/return convention,
// byte-granularity memory ops and flow control working together.
const asmlibSrc = `
_start:	; memcpy(dst, src, 37)
	la   a1, dst
	la   a2, src
	li   a3, 37
	call memcpy
	; n = strlen(dst)
	la   a1, dst
	call strlen
	la   r9, outlen
	sw   a0, 0(r9)
	; cmp = strcmp(dst, src)  -> 0
	la   a1, dst
	la   a2, src
	call strcmp
	la   r9, outcmp
	sw   a0, 0(r9)
	; cmp2 = strcmp(src, other) -> nonzero
	la   a1, src
	la   a2, other
	call strcmp
	la   r9, outcmp2
	sw   a0, 0(r9)
	li   a0, 0
	syscall

; memcpy(a1=dst, a2=src, a3=n): bytewise
memcpy:	beq  a3, r0, mcdone
mcloop:	lbu  r8, 0(a2)
	sb   r8, 0(a1)
	addi a1, a1, 1
	addi a2, a2, 1
	addi a3, a3, -1
	bne  a3, r0, mcloop
mcdone:	ret

; strlen(a1) -> a0
strlen:	li   a0, 0
sloop:	lbu  r8, 0(a1)
	beq  r8, r0, sdone
	addi a0, a0, 1
	addi a1, a1, 1
	b    sloop
sdone:	ret

; strcmp(a1, a2) -> a0 (difference of first mismatching bytes)
strcmp:	lbu  r8, 0(a1)
	lbu  r9, 0(a2)
	bne  r8, r9, scdiff
	beq  r8, r0, sceq
	addi a1, a1, 1
	addi a2, a2, 1
	b    strcmp
sceq:	li   a0, 0
	ret
scdiff:	sub  a0, r8, r9
	ret

	.align 4
src:	.asciz "the quick brown fox jumps over me"
other:	.asciz "the quick brown fox jumps over you"
	.align 4
outlen:	.word 0
outcmp:	.word 1
outcmp2:.word 0
	.align 4
dst:	.space 64
`

func TestAsmLibraryRoutines(t *testing.T) {
	p, err := asm.Assemble(asmlibSrc)
	if err != nil {
		t.Fatal(err)
	}
	chip := core.MustNew(arch.Default())
	k := New(chip)
	k.Machine().MaxCycles = 1_000_000
	if err := k.Boot(p); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	rd := func(sym string) uint32 {
		v, err := chip.Mem.Read32(p.Symbols[sym])
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	const text = "the quick brown fox jumps over me"
	if n := rd("outlen"); n != uint32(len(text)) {
		t.Errorf("strlen = %d, want %d", n, len(text))
	}
	if c := rd("outcmp"); c != 0 {
		t.Errorf("strcmp(equal) = %d", c)
	}
	if c := rd("outcmp2"); int32(c) >= 0 {
		t.Errorf("strcmp('...me','...you') = %d, want negative ('m' < 'y')", int32(c))
	}
	// The copied string is intact in memory.
	got := make([]byte, len(text))
	if err := chip.Mem.Read(p.Symbols["dst"], got); err != nil {
		t.Fatal(err)
	}
	if string(got) != text {
		t.Errorf("memcpy result = %q", got)
	}
}
