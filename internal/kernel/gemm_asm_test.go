package kernel

import (
	"math"
	"testing"

	"cyclops/internal/arch"
	"cyclops/internal/asm"
	"cyclops/internal/core"
)

// A dense matrix multiply written in Cyclops assembly — the linear-algebra
// member of the Section 5 application trio exercised at the instruction
// level: parallel FMA loops over quad-shared FPUs with row partitioning
// across worker threads, verified against a Go reference.
const gemmSrc = `
	.equ N, 16		; N x N doubles
	.equ NW, 4		; worker threads

_start:	; spawn workers 1..NW-1; main is worker 0
	li   r8, 1
	li   r9, NW
spawn:	li   a0, 3
	la   a1, worker
	mov  a2, r8
	syscall
	addi r8, r8, 1
	blt  r8, r9, spawn
	li   a0, 0
	j    worker

worker:	mov  r30, a0		; worker index
	; rows [index*N/NW, (index+1)*N/NW)
	li   r9, N/NW
	mul  r10, r30, r9	; first row
	add  r11, r10, r9	; limit row
rowlp:	li   r12, 0		; column j
collp:	; c[i][j] = sum_k a[i][k]*b[k][j]
	la   r13, amat
	li   r14, N*8
	mul  r15, r10, r14
	add  r13, r13, r15	; &a[i][0]
	la   r16, bmat
	slli r17, r12, 3
	add  r16, r16, r17	; &b[0][j]
	li   r18, N		; k counter
	fsub d32, d32, d32	; acc = 0
dotlp:	ld   d34, 0(r13)
	ld   d36, 0(r16)
	fma  d32, d34, d36, d32
	addi r13, r13, 8
	add  r16, r16, r14
	addi r18, r18, -1
	bne  r18, r0, dotlp
	; store c[i][j]
	la   r19, cmat
	mul  r20, r10, r14
	add  r19, r19, r20
	add  r19, r19, r17
	sd   d32, 0(r19)
	addi r12, r12, 1
	li   r21, N
	blt  r12, r21, collp
	addi r10, r10, 1
	blt  r10, r11, rowlp
	li   a0, 0
	syscall

	.align 64
amat:	.space N*N*8
bmat:	.space N*N*8
cmat:	.space N*N*8
`

func TestAsmGEMMMatchesGo(t *testing.T) {
	p, err := asm.Assemble(gemmSrc)
	if err != nil {
		t.Fatal(err)
	}
	const n = 16
	chip := core.MustNew(arch.Default())
	k := New(chip)
	k.Machine().MaxCycles = 50_000_000

	// Fill A and B with a deterministic pattern before boot.
	a := make([]float64, n*n)
	b := make([]float64, n*n)
	for i := range a {
		a[i] = float64(i%7) - 3
		b[i] = float64(i%5)*0.5 - 1
	}
	if err := k.Boot(p); err != nil {
		t.Fatal(err)
	}
	wr := func(base uint32, m []float64) {
		for i, v := range m {
			if err := chip.Mem.Write64(base+uint32(8*i), math.Float64bits(v)); err != nil {
				t.Fatal(err)
			}
		}
	}
	wr(p.Symbols["amat"], a)
	wr(p.Symbols["bmat"], b)

	if err := k.Run(); err != nil {
		t.Fatal(err)
	}

	// Reference product.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var want float64
			for kk := 0; kk < n; kk++ {
				want += a[i*n+kk] * b[kk*n+j]
			}
			bits, err := chip.Mem.Read64(p.Symbols["cmat"] + uint32(8*(i*n+j)))
			if err != nil {
				t.Fatal(err)
			}
			got := math.Float64frombits(bits)
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("c[%d][%d] = %g, want %g", i, j, got, want)
			}
		}
	}

	// All four workers computed.
	busy := 0
	for _, tu := range k.Machine().TUs {
		if tu.Insts > 100 {
			busy++
		}
	}
	if busy != 4 {
		t.Errorf("%d busy threads, want 4", busy)
	}
}
