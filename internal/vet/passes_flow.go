package vet

import "fmt"

// Pass flow: reachability findings. Unreachable code is a warning (dead
// functions are sometimes kept on purpose); running off the end of the
// instruction stream into data or past the image is an error, because
// the machine would decode whatever bytes come next.
func passFlow(g *graph, diags *[]Diagnostic) {
	// Merge address-contiguous runs of unreachable blocks into one
	// finding per region, so a dead function reports once.
	for b := 0; b < len(g.blocks); b++ {
		if g.reachable[b] {
			continue
		}
		first := g.blocks[b].first
		last := g.blocks[b].last
		for b+1 < len(g.blocks) && !g.reachable[b+1] &&
			g.insts[g.blocks[b+1].first].pc == g.insts[last].pc+4 {
			b++
			last = g.blocks[b].last
		}
		*diags = append(*diags, Diagnostic{
			Pass: "flow", Sev: Warn, PC: g.insts[first].pc,
			Msg: fmt.Sprintf("unreachable code (%d instructions)", last-first+1),
		})
	}
	for b := range g.blocks {
		if g.reachable[b] && g.blocks[b].fallsOff {
			pc := g.insts[g.blocks[b].last].pc
			*diags = append(*diags, Diagnostic{
				Pass: "flow", Sev: Error, PC: pc,
				Msg: "control falls through the end of the instruction stream into data",
			})
		}
	}
}

// Pass branch: every static branch or jump must land on an instruction
// boundary of a real statement. Targets outside the decoded code are
// errors, as are targets inside a pseudo-instruction expansion (the
// second word of a la/li is a valid instruction, but never one the
// programmer wrote).
func passBranch(g *graph, diags *[]Diagnostic) {
	for i := range g.insts {
		in := &g.insts[i]
		if !in.hasTarget {
			continue
		}
		j, ok := g.index[in.target]
		if !ok {
			*diags = append(*diags, Diagnostic{
				Pass: "branch", Sev: Error, PC: in.pc,
				Msg: fmt.Sprintf("branch target %#x is not code", in.target),
			})
			continue
		}
		if t := &g.insts[j]; t.pc != t.stmtAddr {
			*diags = append(*diags, Diagnostic{
				Pass: "branch", Sev: Error, PC: in.pc,
				Msg: fmt.Sprintf("branch target %#x lands inside a pseudo-instruction expansion (statement at %#x)",
					in.target, t.stmtAddr),
			})
		}
	}
}
