package vet

import (
	"fmt"

	"cyclops/internal/isa"
)

// Pass fppair: every pair-typed operand must name an even register so
// the (base, base+1) double occupies one architectural pair. It runs
// before uninit and returns the flawed instructions so the dataflow pass
// does not pile use-before-def noise on top of a mis-paired operand.
func passFPPair(g *graph, diags *[]Diagnostic) map[uint32]bool {
	flawed := map[uint32]bool{}
	for i := range g.insts {
		in := g.insts[i].in
		for _, pr := range isa.PairBases(in) {
			if pr.Reg%2 == 0 {
				continue
			}
			flawed[g.insts[i].pc] = true
			*diags = append(*diags, Diagnostic{
				Pass: "fppair", Sev: Error, PC: g.insts[i].pc,
				Msg: fmt.Sprintf("%s operand %s names odd register r%d; double pairs are (even, odd)",
					isa.Lookup(in.Op).Name, pr.Name, pr.Reg),
			})
		}
	}
	return flawed
}

// Pass uninit: definite-assignment over the CFG. A register read is
// flagged when some path from an entry reaches it without a write; the
// kernel ABI seeds (sp and the argument registers) keep conventional
// prologues quiet. After a report the register is treated as defined so
// one mistake yields one diagnostic, not one per downstream use.
func passUninit(g *graph, flawed map[uint32]bool, diags *[]Diagnostic) {
	in := g.solveDefined()
	for b := range g.blocks {
		if !g.reachable[b] {
			continue
		}
		state := in[b]
		blk := &g.blocks[b]
		for i := blk.first; i <= blk.last; i++ {
			uses, defs := instEffects(g.insts[i].in)
			if !flawed[g.insts[i].pc] {
				for _, r := range (uses &^ state).Regs() {
					*diags = append(*diags, Diagnostic{
						Pass: "uninit", Sev: Error, PC: g.insts[i].pc,
						Msg: fmt.Sprintf("r%d is read but no path from the entry point writes it first", r),
					})
				}
			}
			state |= uses | defs
		}
	}
}
