package vet_test

import (
	"strings"
	"testing"

	"cyclops/internal/asm"
	"cyclops/internal/vet"
)

func checkPasses(t *testing.T, src string, only []string) []vet.Diagnostic {
	t.Helper()
	p, err := asm.AssembleNamed("test.s", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return vet.CheckPasses(p, only)
}

// CheckPasses restricts which passes emit: an uninit bug is invisible
// to a concurrency-only run and Check equals the nil subset.
func TestCheckPassesSubset(t *testing.T) {
	src := positives["uninit"].src
	if diags := checkPasses(t, src, []string{"race", "barrier", "deadlock"}); len(diags) != 0 {
		t.Errorf("conc-only run emitted:\n%s", vet.Render(diags))
	}
	diags := checkPasses(t, src, []string{"uninit"})
	if len(diags) != 1 || diags[0].Pass != "uninit" {
		t.Errorf("uninit-only run = %v", diags)
	}
	if got, want := vet.Render(checkPasses(t, src, nil)), vet.Render(checkSrc(t, src)); got != want {
		t.Errorf("CheckPasses(nil) diverges from Check:\n%s\nvs\n%s", got, want)
	}
}

// fppair's flawed-register result feeds uninit; selecting uninit alone
// must still suppress the fppair findings while keeping uninit's.
func TestCheckPassesUninitWithoutFPPair(t *testing.T) {
	src := positives["fppair"].src
	if diags := checkPasses(t, src, []string{"uninit"}); len(diags) != 0 {
		for _, d := range diags {
			if d.Pass != "uninit" {
				t.Errorf("stray %q diagnostic: %s", d.Pass, d)
			}
		}
	}
}

// A worker that runs a data-dependent number of barrier episodes has an
// unbounded phase interval; it must overlap any fixed count the boot
// thread runs, so no phase-mismatch error may fire.
func TestPhaseIntervalSaturates(t *testing.T) {
	src := `
_start:	li   a0, 3
	la   a1, worker
	li   a2, 5
	syscall
	li   r8, 1
	mtspr r8, 4
s1:	mfspr r9, 4
	and  r9, r9, r8
	bne  r9, r0, s1
	mtspr r8, 4
s2:	mfspr r9, 4
	and  r9, r9, r8
	bne  r9, r0, s2
	li   a0, 0
	syscall
worker:	li   r18, 1
loop:	mtspr r18, 4
w1:	mfspr r19, 4
	and  r19, r19, r18
	bne  r19, r0, w1
	addi a0, a0, -1
	bne  a0, r0, loop
	li   a0, 0
	syscall
`
	if diags := checkPasses(t, src, nil); len(diags) != 0 {
		t.Errorf("unbounded-episode program produced diagnostics:\n%s", vet.Render(diags))
	}
}

// Stores on opposite arms of a branch over a thread-distinguishing
// value (the tid SPR, the spawn argument) are the owner-computes idiom:
// the race pass must not pair them.
func TestGuardedAccessesExempt(t *testing.T) {
	src := `
_start:	li   a0, 3
	la   a1, worker
	li   a2, 1
	syscall
	mfspr r8, 0
	bne  r8, r0, bskip
	la   r9, word0
	li   r10, 1
	sw   r10, 0(r9)
bskip:	li   a0, 0
	syscall
worker:	bne  a0, r0, wskip
	la   r9, word0
	li   r10, 2
	sw   r10, 0(r9)
wskip:	li   a0, 0
	syscall
	.align 8
word0:	.word 0
`
	if diags := checkPasses(t, src, nil); len(diags) != 0 {
		t.Errorf("tid-partitioned program produced diagnostics:\n%s", vet.Render(diags))
	}
}

// The boot thread reading results after joining its worker is ordered
// by the join; deleting the join revives the conflict as a warning.
func TestMustJoinOrdersBootReads(t *testing.T) {
	src := `
_start:	li   a0, 3
	la   a1, worker
	li   a2, 0
	syscall
	li   a0, 4
	syscall
	la   r8, total
	lw   r9, 0(r8)
	li   a0, 0
	syscall
worker:	la   r10, total
	li   r11, 1
	amoadd r11, (r10), r11
	li   a0, 0
	syscall
	.align 8
total:	.word 0
`
	if diags := checkPasses(t, src, nil); len(diags) != 0 {
		t.Errorf("join-ordered program produced diagnostics:\n%s", vet.Render(diags))
	}

	noJoin := strings.Replace(src, "\tli   a0, 4\n\tsyscall\n", "", 1)
	if noJoin == src {
		t.Fatal("join removal did not apply")
	}
	diags := checkPasses(t, noJoin, nil)
	if len(diags) != 1 || diags[0].Pass != "race" || diags[0].Sev != vet.Warn {
		t.Errorf("joinless variant = %v, want one race warning", diags)
	}
}
