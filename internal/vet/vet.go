// Package vet statically analyzes assembled Cyclops guest programs.
//
// The repo generates thousands of lines of assembly from Go emitters
// (stream, the kernel test programs, the examples); a single
// uninitialized register or a mismatched barrier arrival silently
// corrupts a figure instead of failing loudly. vet rebuilds a basic-block
// control-flow graph from an assembled image — using the line table's
// code/data split, so only real instructions are decoded — and runs a
// fixed pass pipeline over it:
//
//	uninit  use-before-def register dataflow (forward, per-block
//	        gen/kill with a fixpoint over the CFG, seeded by the
//	        kernel's entry ABI)
//	flow    unreachable code and fallthrough off the end of .text
//	fppair  FP paired-register discipline (odd pair bases)
//	spr     barrier/SPR protocol (writes to read-only SPRs, barrier
//	        arrivals never followed by a spin read)
//	smc     stores whose address is provably inside .text
//	branch  branch targets outside the image or into the middle of a
//	        pseudo-instruction expansion
//
// Diagnostics are deterministic: sorted by PC, then pass, then message,
// so golden-file tests can pin exact output.
package vet

import (
	"fmt"
	"sort"
	"strings"

	"cyclops/internal/asm"
)

// Severity grades a diagnostic. Errors block cyclops-asm -vet output and
// fail the generator tests; warnings go to stderr and don't block.
type Severity uint8

const (
	// Warn flags suspicious but possibly intentional constructs
	// (unreachable code, release-only barrier arrivals, deliberate
	// self-modifying stores).
	Warn Severity = iota
	// Error flags constructs that are wrong on every execution the
	// analysis can see.
	Error
)

func (s Severity) String() string {
	if s == Error {
		return "error"
	}
	return "warning"
}

// Diagnostic is one vet finding, tied to a program counter and, through
// the assembler's line table, to a source position.
type Diagnostic struct {
	// Pass is the emitting pass id (one of PassIDs).
	Pass string `json:"pass"`
	// Sev is the severity.
	Sev Severity `json:"severity"`
	// PC is the program counter of the offending instruction.
	PC uint32 `json:"pc"`
	// File and Line locate the source statement ("?" and 0 when the
	// program has no line table entry covering PC).
	File string `json:"file"`
	Line int    `json:"line"`
	// Msg is the human-readable finding.
	Msg string `json:"msg"`
}

// String renders "file:line: severity: [pass] msg (pc 0x118)".
func (d Diagnostic) String() string {
	file := d.File
	if file == "" {
		file = "?"
	}
	return fmt.Sprintf("%s:%d: %s: [%s] %s (pc %#x)", file, d.Line, d.Sev, d.Pass, d.Msg, d.PC)
}

// PassInfo describes one pass for tooling and coverage assertions.
type PassInfo struct {
	ID  string
	Doc string
}

// Passes lists the pipeline in execution order. Every pass must have a
// faulty fixture under examples/faulty/vet/<id>.s; the fixture coverage
// test enumerates this table.
var Passes = []PassInfo{
	{"uninit", "use of a register no path has defined"},
	{"flow", "unreachable code and fallthrough off the end of .text"},
	{"fppair", "FP paired-register discipline (odd pair bases)"},
	{"spr", "SPR/barrier protocol (read-only SPRs, arrival without spin)"},
	{"smc", "stores whose address is provably inside .text"},
	{"branch", "branch targets outside code or into a pseudo expansion"},
}

// Check analyzes an assembled program and returns its diagnostics in
// deterministic order.
func Check(p *asm.Program) []Diagnostic {
	g, diags := buildCFG(p)
	if g != nil {
		flawed := passFPPair(g, &diags)
		passUninit(g, flawed, &diags)
		passFlow(g, &diags)
		passBranch(g, &diags)
		passSPR(g, &diags)
		passSMC(g, &diags)
	}
	for i := range diags {
		diags[i].File = p.SourceFile()
		if line, ok := p.Locate(diags[i].PC); ok {
			diags[i].Line = line
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.PC != b.PC {
			return a.PC < b.PC
		}
		if a.Pass != b.Pass {
			return a.Pass < b.Pass
		}
		return a.Msg < b.Msg
	})
	// Dedupe identical findings (e.g. the same PC reached twice).
	out := diags[:0]
	for i, d := range diags {
		if i == 0 || d != diags[i-1] {
			out = append(out, d)
		}
	}
	return out
}

// HasErrors reports whether any diagnostic is error-severity.
func HasErrors(diags []Diagnostic) bool {
	for _, d := range diags {
		if d.Sev == Error {
			return true
		}
	}
	return false
}

// Render formats diagnostics one per line with a trailing newline;
// empty input renders as the empty string.
func Render(diags []Diagnostic) string {
	var sb strings.Builder
	for _, d := range diags {
		sb.WriteString(d.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}
