// Package vet statically analyzes assembled Cyclops guest programs.
//
// The repo generates thousands of lines of assembly from Go emitters
// (stream, the kernel test programs, the examples); a single
// uninitialized register or a mismatched barrier arrival silently
// corrupts a figure instead of failing loudly. vet rebuilds a basic-block
// control-flow graph from an assembled image — using the line table's
// code/data split, so only real instructions are decoded — and runs a
// fixed pass pipeline over it:
//
//	uninit    use-before-def register dataflow (forward, per-block
//	          gen/kill with a fixpoint over the CFG, seeded by the
//	          kernel's entry ABI)
//	flow      unreachable code and fallthrough off the end of .text
//	fppair    FP paired-register discipline (odd pair bases)
//	spr       SPR protocol (writes to read-only or undefined SPRs,
//	          reads of undefined SPRs)
//	smc       stores whose address is provably inside .text
//	branch    branch targets outside the image or into the middle of a
//	          pseudo-instruction expansion
//	race      may-overlap memory conflicts between threads in the same
//	          barrier phase that are not both atomics
//	barrier   arrival/wait pairing and cross-thread phase-count
//	          mismatches on the wired-OR barrier
//	deadlock  barriers never reached by a concurrent thread, and spin
//	          loops on addresses nothing ever writes
//
// The last three share an inter-thread model (conc.go): a spawn graph
// partitioning code into thread roots, a barrier-phase lattice giving a
// static happens-before relation, and per-root shared-address summaries
// from constant propagation.
//
// Diagnostics are deterministic: sorted by PC, then pass, then message,
// so golden-file tests can pin exact output.
package vet

import (
	"fmt"
	"sort"
	"strings"

	"cyclops/internal/asm"
)

// Severity grades a diagnostic. Errors block cyclops-asm -vet output and
// fail the generator tests; warnings go to stderr and don't block.
type Severity uint8

const (
	// Warn flags suspicious but possibly intentional constructs
	// (unreachable code, release-only barrier arrivals, deliberate
	// self-modifying stores).
	Warn Severity = iota
	// Error flags constructs that are wrong on every execution the
	// analysis can see.
	Error
)

func (s Severity) String() string {
	if s == Error {
		return "error"
	}
	return "warning"
}

// Diagnostic is one vet finding, tied to a program counter and, through
// the assembler's line table, to a source position.
type Diagnostic struct {
	// Pass is the emitting pass id (one of PassIDs).
	Pass string `json:"pass"`
	// Sev is the severity.
	Sev Severity `json:"severity"`
	// PC is the program counter of the offending instruction.
	PC uint32 `json:"pc"`
	// File and Line locate the source statement ("?" and 0 when the
	// program has no line table entry covering PC).
	File string `json:"file"`
	Line int    `json:"line"`
	// Msg is the human-readable finding.
	Msg string `json:"msg"`
}

// String renders "file:line: severity: [pass] msg (pc 0x118)".
func (d Diagnostic) String() string {
	file := d.File
	if file == "" {
		file = "?"
	}
	return fmt.Sprintf("%s:%d: %s: [%s] %s (pc %#x)", file, d.Line, d.Sev, d.Pass, d.Msg, d.PC)
}

// PassInfo describes one pass for tooling and coverage assertions.
type PassInfo struct {
	ID  string
	Doc string
}

// Passes lists the pipeline in execution order. Every pass must have a
// faulty fixture under examples/faulty/vet/<id>.s; the fixture coverage
// test enumerates this table.
var Passes = []PassInfo{
	{"uninit", "use of a register no path has defined"},
	{"flow", "unreachable code and fallthrough off the end of .text"},
	{"fppair", "FP paired-register discipline (odd pair bases)"},
	{"spr", "SPR protocol (read-only and undefined SPRs)"},
	{"smc", "stores whose address is provably inside .text"},
	{"branch", "branch targets outside code or into a pseudo expansion"},
	{"race", "may-overlap memory conflicts between threads in the same barrier phase"},
	{"barrier", "barrier arrival/wait pairing and cross-thread phase-count mismatches"},
	{"deadlock", "barriers no concurrent thread reaches, and spins nothing releases"},
}

// KnownPass reports whether id names a registered pass.
func KnownPass(id string) bool {
	for _, p := range Passes {
		if p.ID == id {
			return true
		}
	}
	return false
}

// Check analyzes an assembled program and returns its diagnostics in
// deterministic order, running every registered pass.
func Check(p *asm.Program) []Diagnostic {
	return CheckPasses(p, nil)
}

// CheckPasses runs a subset of the pipeline: only passes whose id is in
// `only` emit diagnostics (nil means all). Unknown ids are ignored;
// validate against Passes/KnownPass first when ids come from a user.
func CheckPasses(p *asm.Program, only []string) []Diagnostic {
	on := func(id string) bool {
		if only == nil {
			return true
		}
		for _, o := range only {
			if o == id {
				return true
			}
		}
		return false
	}
	g, diags := buildCFG(p)
	if !on("flow") {
		// CFG construction itself only emits flow diagnostics.
		diags = diags[:0]
	}
	if g != nil {
		if on("fppair") || on("uninit") {
			flawed := passFPPair(g, &diags)
			if !on("fppair") {
				diags = filterPass(diags, "fppair")
			}
			if on("uninit") {
				passUninit(g, flawed, &diags)
			}
		}
		if on("flow") {
			passFlow(g, &diags)
		}
		if on("branch") {
			passBranch(g, &diags)
		}
		if on("spr") {
			passSPR(g, &diags)
		}
		if on("smc") {
			passSMC(g, &diags)
		}
		if on("race") || on("barrier") || on("deadlock") {
			m := buildConc(g)
			if on("race") {
				passRace(m, &diags)
			}
			if on("barrier") {
				passBarrier(m, &diags)
			}
			if on("deadlock") {
				passDeadlock(m, &diags)
			}
		}
	}
	for i := range diags {
		diags[i].File = p.SourceFile()
		if line, ok := p.Locate(diags[i].PC); ok {
			diags[i].Line = line
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.PC != b.PC {
			return a.PC < b.PC
		}
		if a.Pass != b.Pass {
			return a.Pass < b.Pass
		}
		return a.Msg < b.Msg
	})
	// Dedupe identical findings (e.g. the same PC reached twice).
	out := diags[:0]
	for i, d := range diags {
		if i == 0 || d != diags[i-1] {
			out = append(out, d)
		}
	}
	return out
}

// filterPass drops diagnostics emitted by pass id, in place.
func filterPass(diags []Diagnostic, id string) []Diagnostic {
	out := diags[:0]
	for _, d := range diags {
		if d.Pass != id {
			out = append(out, d)
		}
	}
	return out
}

// HasErrors reports whether any diagnostic is error-severity.
func HasErrors(diags []Diagnostic) bool {
	for _, d := range diags {
		if d.Sev == Error {
			return true
		}
	}
	return false
}

// Render formats diagnostics one per line with a trailing newline;
// empty input renders as the empty string.
func Render(diags []Diagnostic) string {
	var sb strings.Builder
	for _, d := range diags {
		sb.WriteString(d.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}
