package vet_test

import (
	"reflect"
	"strings"
	"testing"

	"cyclops/internal/asm"
	"cyclops/internal/stream"
	"cyclops/internal/vet"
)

func checkSrc(t *testing.T, src string) []vet.Diagnostic {
	t.Helper()
	p, err := asm.AssembleNamed("test.s", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return vet.Check(p)
}

// positives maps each pass to a fixture that triggers it and the message
// substrings expected; every diagnostic the fixture produces must belong
// to the pass under test, so one bug yields one family of findings.
var positives = map[string]struct {
	src  string
	want []string
}{
	"uninit": {
		src: `
_start:	mov  r8, r9
	halt
`,
		want: []string{"r9 is read but no path"},
	},
	"flow": {
		src: `
_start:	j    done
dead:	nop
done:	addi r8, r0, 1
	.word 0
`,
		want: []string{"unreachable code (1 instructions)", "falls through the end"},
	},
	"fppair": {
		src: `
_start:	fsub d34, d34, d34
	fsub d36, d36, d36
	fadd r33, r34, r36
	halt
`,
		want: []string{"fadd operand rd names odd register r33"},
	},
	"spr": {
		src: `
_start:	li    r8, 1
	mtspr r8, 0
	mfspr r9, 7
	halt
`,
		want: []string{"read-only SPR 0 (tid)", "undefined SPR 7"},
	},
	"smc": {
		src: `
_start:	la   r8, _start
	li   r9, 7
	sw   r9, 0(r8)
	halt
`,
		want: []string{"store writes code", "_start"},
	},
	"branch": {
		src: `
_start:	la   r8, num
	b    _start+4
num:	.word 42
`,
		want: []string{"inside a pseudo-instruction expansion"},
	},
	"race": {
		src: `
_start:	li   a0, 3
	la   a1, worker
	li   a2, 0
	syscall
	la   r8, flag
	li   r9, 1
	sw   r9, 0(r8)
	li   a0, 0
	syscall
worker:	la   r10, flag
	li   r11, 2
	sw   r11, 0(r10)
	li   a0, 0
	syscall
	.align 8
flag:	.word 0
`,
		want: []string{"possible data race on flag", "the boot thread (_start)", "thread worker (spawned at test.s:5)"},
	},
	"barrier": {
		src: `
_start:	li   a0, 3
	la   a1, worker
	li   a2, 0
	syscall
	li   r8, 1
	mtspr r8, 4
s1:	mfspr r9, 4
	and  r9, r9, r8
	bne  r9, r0, s1
	mtspr r8, 4
s2:	mfspr r9, 4
	and  r9, r9, r8
	bne  r9, r0, s2
	li   a0, 0
	syscall
worker:	li   r18, 1
	mtspr r18, 4
w1:	mfspr r19, 4
	and  r19, r19, r18
	bne  r19, r0, w1
	li   a0, 0
	syscall
`,
		want: []string{"barrier phase mismatch", "arrives 2 times per run", "arrives 1 times"},
	},
	"deadlock": {
		src: `
_start:	li   a0, 3
	la   a1, worker
	li   a2, 0
	syscall
	li   r8, 1
	mtspr r8, 4
s1:	mfspr r9, 4
	and  r9, r9, r8
	bne  r9, r0, s1
	li   a0, 0
	syscall
worker:	la   r20, flag
wspin:	lw   r21, 0(r20)
	beq  r21, r0, wspin
	li   a0, 0
	syscall
	.align 8
flag:	.word 0
`,
		want: []string{"never reached by thread worker", "spin loop in thread worker", "no thread ever writes"},
	},
}

func TestPassPositives(t *testing.T) {
	for _, p := range vet.Passes {
		fix, ok := positives[p.ID]
		if !ok {
			t.Errorf("pass %q has no positive fixture", p.ID)
			continue
		}
		t.Run(p.ID, func(t *testing.T) {
			diags := checkSrc(t, fix.src)
			if len(diags) == 0 {
				t.Fatalf("no diagnostics; want pass %q to fire", p.ID)
			}
			all := vet.Render(diags)
			for _, d := range diags {
				if d.Pass != p.ID {
					t.Errorf("unexpected pass %q diagnostic:\n%s", d.Pass, all)
				}
				if d.File != "test.s" || d.Line == 0 {
					t.Errorf("diagnostic not located: %s", d)
				}
			}
			for _, w := range fix.want {
				if !strings.Contains(all, w) {
					t.Errorf("diagnostics missing %q:\n%s", w, all)
				}
			}
		})
	}
}

// negatives are the clean twins: the same shapes written correctly must
// produce no diagnostics at all.
var negatives = map[string]string{
	"uninit": `
_start:	li   r9, 1
	mov  r8, r9
	halt
`,
	"flow": `
_start:	j    done
done:	halt
`,
	"fppair": `
_start:	fsub d34, d34, d34
	fadd d32, d34, d34
	halt
`,
	"spr": `
_start:	li    r8, 1
	mtspr r8, 4
spin:	mfspr r9, 4
	and   r9, r9, r8
	bne   r9, r0, spin
	mfspr r10, 2
	halt
`,
	"smc": `
_start:	la   r8, buf
	li   r9, 7
	sw   r9, 0(r8)
	halt
buf:	.word 0
`,
	"branch": `
_start:	la   r8, buf
	b    next
next:	halt
buf:	.word 0
`,
	// The race positive with both plain stores replaced by in-memory
	// atomics: the paper's intended idiom for unordered shared updates.
	"race": `
_start:	li   a0, 3
	la   a1, worker
	li   a2, 0
	syscall
	la   r8, flag
	li   r9, 1
	amoadd r9, (r8), r9
	li   a0, 0
	syscall
worker:	la   r10, flag
	li   r11, 2
	amoadd r11, (r10), r11
	li   a0, 0
	syscall
	.align 8
flag:	.word 0
`,
	// Both threads run one complete arrive+spin episode: counts match.
	"barrier": `
_start:	li   a0, 3
	la   a1, worker
	li   a2, 0
	syscall
	li   r8, 1
	mtspr r8, 4
s1:	mfspr r9, 4
	and  r9, r9, r8
	bne  r9, r0, s1
	li   a0, 0
	syscall
worker:	li   r18, 1
	mtspr r18, 4
w1:	mfspr r19, 4
	and  r19, r19, r18
	bne  r19, r0, w1
	li   a0, 0
	syscall
`,
	// The spin has a release: the flag is stored before the worker is
	// spawned, so the wait terminates (and pre-spawn writes don't race).
	"deadlock": `
_start:	la   r8, flag
	li   r9, 1
	sw   r9, 0(r8)
	li   a0, 3
	la   a1, worker
	li   a2, 0
	syscall
	li   a0, 0
	syscall
worker:	la   r20, flag
wspin:	lw   r21, 0(r20)
	beq  r21, r0, wspin
	li   a0, 0
	syscall
	.align 8
flag:	.word 0
`,
}

func TestPassNegatives(t *testing.T) {
	for _, p := range vet.Passes {
		src, ok := negatives[p.ID]
		if !ok {
			t.Errorf("pass %q has no negative fixture", p.ID)
			continue
		}
		t.Run(p.ID, func(t *testing.T) {
			if diags := checkSrc(t, src); len(diags) != 0 {
				t.Errorf("clean program produced diagnostics:\n%s", vet.Render(diags))
			}
		})
	}
}

// A program exercising every analyzed construct at once — entry ABI,
// zero idiom, barrier protocol, spawn via materialized address, calls,
// exit syscalls — must be entirely clean.
const cleanComprehensive = `
	.org 0x100
_start:	mov   r8, a0
	li    r9, 4
	la    r10, buf
	fsub  d32, d32, d32
loop:	sd    d32, 0(r10)
	addi  r10, r10, 8
	addi  r9, r9, -1
	bne   r9, r0, loop
	li    r8, 1
	mtspr r8, 4
spin:	mfspr r11, 4
	and   r11, r11, r8
	bne   r11, r0, spin
	la    a1, worker
	li    a0, 3
	syscall
	call  fn
	li    a0, 0
	syscall
worker:	mov   r12, a0
	li    a0, 0
	syscall
fn:	addi  a0, a0, 1
	ret
	.align 8
buf:	.space 64
`

func TestCleanComprehensive(t *testing.T) {
	if diags := checkSrc(t, cleanComprehensive); len(diags) != 0 {
		t.Errorf("comprehensive program produced diagnostics:\n%s", vet.Render(diags))
	}
}

func TestEntryNotCode(t *testing.T) {
	diags := checkSrc(t, `
lab:	nop
	halt
_start:	.word 0
`)
	if len(diags) != 1 || diags[0].Pass != "flow" || diags[0].Sev != vet.Error ||
		!strings.Contains(diags[0].Msg, "entry point") {
		t.Errorf("diagnostics = %v, want one flow error about the entry point", diags)
	}
}

func TestDataOnlyProgram(t *testing.T) {
	if diags := checkSrc(t, "buf:\t.word 1, 2, 3\n"); len(diags) != 0 {
		t.Errorf("data-only program produced diagnostics:\n%s", vet.Render(diags))
	}
}

// Diagnostics must be byte-stable across runs so golden tests can pin
// them exactly.
func TestDeterministicOutput(t *testing.T) {
	src := positives["spr"].src + "\nextra:\tmov r20, r21\n\tj extra\n"
	var first []vet.Diagnostic
	var rendered string
	for i := 0; i < 5; i++ {
		diags := checkSrc(t, src)
		if i == 0 {
			first = diags
			rendered = vet.Render(diags)
			continue
		}
		if !reflect.DeepEqual(diags, first) || vet.Render(diags) != rendered {
			t.Fatalf("run %d diverged:\n%s\nvs\n%s", i, vet.Render(diags), rendered)
		}
	}
}

// The motivating scenario (EXPERIMENTS.md "Vet"): a generator bug that
// drops the STREAM scalar load. The program still assembles and, because
// the kernel zeroes registers at boot, still runs — Triad just computes
// a[i] = b[i] + 0*c[i] and reports plausible-looking bandwidth. Vet
// catches the dead read statically, before a single cycle is simulated.
func TestSeededGeneratorBugCaught(t *testing.T) {
	src, err := stream.Generate(stream.Params{Kernel: stream.Triad, N: 64, Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, "ld   d60, 0(r9)") {
		t.Fatal("generator no longer emits the scalar load; update the seeded bug")
	}
	buggy := strings.Replace(src, "ld   d60, 0(r9)", "nop", 1)

	p, err := asm.AssembleNamed("triad-buggy.s", buggy)
	if err != nil {
		t.Fatal(err)
	}
	diags := vet.Check(p)
	if !vet.HasErrors(diags) {
		t.Fatalf("seeded bug not caught; diagnostics:\n%s", vet.Render(diags))
	}
	found := false
	for _, d := range diags {
		if d.Pass == "uninit" && strings.Contains(d.Msg, "r60") {
			found = true
		}
	}
	if !found {
		t.Errorf("no uninit finding for the dropped scalar pair:\n%s", vet.Render(diags))
	}

	// The pristine generator output stays clean.
	clean, err := asm.AssembleNamed("triad.s", src)
	if err != nil {
		t.Fatal(err)
	}
	if diags := vet.Check(clean); len(diags) != 0 {
		t.Errorf("pristine Triad produced diagnostics:\n%s", vet.Render(diags))
	}
}

func TestDiagnosticStringAndHelpers(t *testing.T) {
	d := vet.Diagnostic{Pass: "uninit", Sev: vet.Error, PC: 0x118, File: "k.s", Line: 7, Msg: "r9 bad"}
	if got, want := d.String(), "k.s:7: error: [uninit] r9 bad (pc 0x118)"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	if vet.HasErrors([]vet.Diagnostic{{Sev: vet.Warn}}) {
		t.Error("HasErrors(warn-only) = true")
	}
	if !vet.HasErrors([]vet.Diagnostic{{Sev: vet.Warn}, {Sev: vet.Error}}) {
		t.Error("HasErrors(with error) = false")
	}
	if vet.Render(nil) != "" {
		t.Error("Render(nil) must be empty")
	}
}
