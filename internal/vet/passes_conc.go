package vet

import (
	"fmt"
	"sort"

	"cyclops/internal/isa"
)

// The concurrency passes: queries over the inter-thread model in
// conc.go. All three share one model build per Check.

// Pass race: may-overlap conflicts between accesses that can execute in
// the same barrier phase of concurrently-running threads. The machine
// has no coherent data caches (Section 2.3), so a race is not just
// nondeterminism — there is no hardware that ever makes it right. Two
// plain writes are an error; a conflict involving a read or an atomic
// is a warning, because the model cannot see whether the read's value
// matters or the atomic's ordering is the intended protocol.
func passRace(m *concModel, diags *[]Diagnostic) {
	g := m.g
	boot := m.roots[0]
	exempt := func(r *troot, a access) bool {
		if r == boot {
			if m.preSpawn[a.inst] {
				return true // nothing else is running yet
			}
		}
		return false
	}
	for ai, ra := range m.roots {
		for bi := ai; bi < len(m.roots); bi++ {
			rb := m.roots[bi]
			if !m.concurrent(ra, rb) {
				continue
			}
			for xi, x := range ra.acc {
				for yi, y := range rb.acc {
					if ra == rb && yi < xi {
						continue // unordered self-pairs once
					}
					if !x.known || !y.known {
						continue
					}
					if !(x.write || y.write) || (x.atom && y.atom) {
						continue
					}
					if x.addr+x.size <= y.addr || y.addr+y.size <= x.addr {
						continue // disjoint ranges
					}
					if m.guarded[x.inst] && m.guarded[y.inst] {
						continue // owner-computes partitioning
					}
					if exempt(ra, x) || exempt(rb, y) {
						continue
					}
					// The boot thread joining workers orders it after
					// their writes; credit that on boot-vs-spawned
					// pairs.
					if ra == boot && rb.spawned && m.mustJoin[x.inst] {
						continue
					}
					if rb == boot && ra.spawned && m.mustJoin[y.inst] {
						continue
					}
					if !phasesOverlap(ra, x.inst, rb, y.inst) {
						continue // a barrier separates them
					}
					sev := Warn
					if x.write && y.write && !x.atom && !y.atom {
						sev = Error
					}
					// Anchor on the (first) write.
					at, other, rAt, rOther := x, y, ra, rb
					if (!x.write && y.write) ||
						(x.write == y.write && g.insts[y.inst].pc < g.insts[x.inst].pc) {
						at, other, rAt, rOther = y, x, rb, ra
					}
					*diags = append(*diags, Diagnostic{
						Pass: "race", Sev: sev, PC: g.insts[at.inst].pc,
						Msg: fmt.Sprintf("possible data race on %s: %s in %s conflicts with %s at pc %#x in %s",
							g.describeAddr(at.addr),
							isa.Lookup(g.insts[at.inst].in.Op).Name, rAt.name(g),
							isa.Lookup(g.insts[other.inst].in.Op).Name, g.insts[other.inst].pc,
							rOther.name(g)),
					})
				}
			}
		}
	}
}

// Pass barrier: structural misuse of the wired-OR barrier. An arrival
// never followed by a spin read is a warning (a release-only arrival
// just before exit is legitimate — the kernel withdraws an exiting
// thread's contribution); a spin read reachable with no prior arrival
// on any path is an error (the thread waits on a barrier it never
// joined); concurrent threads whose every path executes a provably
// different number of arrivals is an error (the phases can never line
// up, so some thread's last barrier hangs).
func passBarrier(m *concModel, diags *[]Diagnostic) {
	g := m.g

	// rootOf names the first root (in deterministic root order) that
	// reaches an instruction, for thread context.
	rootOf := func(i int) *troot {
		for _, r := range m.roots {
			if r.phLo[i] >= 0 {
				return r
			}
		}
		return m.roots[0]
	}

	for _, i := range m.arriveInsts() {
		if !g.barrierReadFollows(i) {
			*diags = append(*diags, Diagnostic{
				Pass: "barrier", Sev: Warn, PC: g.insts[i].pc,
				Msg: fmt.Sprintf("barrier arrival (mtspr 4) in %s is never followed by a barrier read (mfspr 4) on any path",
					rootOf(i).name(g)),
			})
		}
	}

	for _, i := range m.waitInsts() {
		good, bad := m.arrivalPrecedes(i)
		if !bad {
			continue
		}
		sev, what := Error, "every path"
		if good {
			sev, what = Warn, "some path"
		}
		*diags = append(*diags, Diagnostic{
			Pass: "barrier", Sev: sev, PC: g.insts[i].pc,
			Msg: fmt.Sprintf("barrier read (mfspr 4) in %s is reachable with no prior arrival (mtspr 4) on %s",
				rootOf(i).name(g), what),
		})
	}

	// The mismatch check compares arrival counts over whole runs, so a
	// root qualifies only if every arrival it makes is a shared one —
	// a boot thread that also uses the barrier alone before spawning
	// has exit counts the comparison cannot attribute.
	eligible := func(r *troot) bool {
		return r.hasExit && len(r.arrives) > 0 &&
			len(m.sharedArrives(r)) == len(r.arrives)
	}
	for ai, ra := range m.roots {
		for _, rb := range m.roots[ai+1:] {
			if !m.concurrent(ra, rb) || !eligible(ra) || !eligible(rb) {
				continue
			}
			if ra.exitHi < rb.exitLo || rb.exitHi < ra.exitLo {
				at := ra
				if rb.exitHi < ra.exitLo {
					at = rb
				}
				*diags = append(*diags, Diagnostic{
					Pass: "barrier", Sev: Error, PC: g.insts[at.arrives[0]].pc,
					Msg: fmt.Sprintf("barrier phase mismatch: %s arrives %s times per run but %s arrives %s times",
						ra.name(g), phaseRange(ra.exitLo, ra.exitHi),
						rb.name(g), phaseRange(rb.exitLo, rb.exitHi)),
				})
			}
		}
	}
}

// Pass deadlock: synchronization a thread can wait on forever. A
// barrier used by one thread but never reached by a concurrent thread
// is a warning (the peer may deliberately exit instead, which withdraws
// its contribution); a value-dependent spin loop reading an address no
// thread ever writes and no DMA fills is an error — nothing in the
// machine can change the value being spun on.
func passDeadlock(m *concModel, diags *[]Diagnostic) {
	g := m.g
	for _, ra := range m.roots {
		sa := m.sharedArrives(ra)
		if len(sa) == 0 {
			continue
		}
		for _, rb := range m.roots {
			if ra == rb || !m.concurrent(ra, rb) || len(rb.arrives) > 0 {
				continue
			}
			*diags = append(*diags, Diagnostic{
				Pass: "deadlock", Sev: Warn, PC: g.insts[sa[0]].pc,
				Msg: fmt.Sprintf("barrier used by %s is never reached by %s; the barrier cannot fire unless that thread exits",
					ra.name(g), rb.name(g)),
			})
		}
	}
	m.checkSpins(diags)
}

// arriveInsts and waitInsts return the deduplicated, sorted instruction
// indexes of barrier arrivals/waits reachable from any root.
func (m *concModel) arriveInsts() []int {
	return dedupInsts(m.roots, func(r *troot) []int { return r.arrives })
}
func (m *concModel) waitInsts() []int {
	return dedupInsts(m.roots, func(r *troot) []int { return r.waits })
}

// sharedArrives returns r's arrivals that can synchronize with a peer:
// for the boot thread, an arrival no path to which has spawned anything
// is a barrier among one thread — it fires immediately and cannot be
// held up by, or hold up, anyone else.
func (m *concModel) sharedArrives(r *troot) []int {
	if r != m.roots[0] {
		return r.arrives
	}
	var out []int
	for _, i := range r.arrives {
		if !m.preSpawn[i] {
			out = append(out, i)
		}
	}
	return out
}

func dedupInsts(roots []*troot, f func(*troot) []int) []int {
	seen := map[int]bool{}
	var out []int
	for _, r := range roots {
		for _, i := range f(r) {
			if !seen[i] {
				seen[i] = true
				out = append(out, i)
			}
		}
	}
	sort.Ints(out)
	return out
}

// arrivalPrecedes classifies the backward paths from a barrier read:
// good means some path crosses an arrival first, bad means some path
// reaches a thread root without one. Another barrier read terminates a
// path neutrally — that read is checked on its own.
func (m *concModel) arrivalPrecedes(i int) (good, bad bool) {
	g := m.g
	isRootBlk := func(b int) bool {
		for _, r := range m.roots {
			if r.blk == b {
				return true
			}
		}
		return false
	}
	// scan walks backwards within block b from index j; returns true if
	// the walk fell off the top of the block (path continues to preds).
	scan := func(b, j int) bool {
		for ; j >= g.blocks[b].first; j-- {
			in := g.insts[j].in
			if isa.BarrierArrive(in) {
				good = true
				return false
			}
			if isa.BarrierWait(in) {
				return false // neutral: checked at that site
			}
		}
		return true
	}
	if !scan(g.blkOf[i], i-1) {
		return good, bad
	}
	visited := map[int]bool{g.blkOf[i]: true}
	work := []int{}
	expand := func(b int) {
		if len(g.preds[b]) == 0 || isRootBlk(b) {
			bad = true
		}
		for _, e := range g.preds[b] {
			if !visited[e.to] {
				visited[e.to] = true
				work = append(work, e.to)
			}
		}
	}
	expand(g.blkOf[i])
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		if scan(b, g.blocks[b].last) {
			expand(b)
		}
	}
	return good, bad
}

// checkSpins finds value-dependent spin loops with no matching release:
// a load in a CFG cycle whose exit branches depend on the loaded value,
// where no instruction anywhere stores to an overlapping address, no
// store has an unprovable address, and no syscall can DMA into memory.
func (m *concModel) checkSpins(diags *[]Diagnostic) {
	g := m.g
	if len(m.roots) < 2 {
		return // single-threaded wait loops are out of scope
	}

	// Global suppressors: any write the model cannot place, or any
	// syscall that may write memory (off-chip DMA, or an unresolvable
	// call number), may be the release.
	mayWrite := func(addr, size uint32) bool {
		for _, r := range m.roots {
			for _, a := range r.acc {
				if !a.write {
					continue
				}
				if !a.known {
					return true
				}
				if a.addr < addr+size && addr < a.addr+a.size {
					return true
				}
			}
		}
		for i := range g.insts {
			if g.insts[i].in.Op != isa.OpSYSCALL {
				continue
			}
			no, ok := g.sysA0(i)
			if !ok || no == isa.SysOffChipRead {
				return true
			}
		}
		return false
	}

	reach := make([][]bool, len(g.blocks))
	reachOf := func(b int) []bool {
		if reach[b] == nil {
			reach[b] = g.reachFrom(b)
		}
		return reach[b]
	}

	seen := map[int]bool{} // loads already reported
	for _, r := range m.roots {
		for _, a := range r.acc {
			if !a.load || a.write || !a.known || seen[a.inst] {
				continue
			}
			lb := g.blkOf[a.inst]
			if !g.blockInCycle(lb) {
				continue
			}
			// The loop: blocks on a cycle through the load's block.
			inLoop := func(b int) bool {
				return reachOf(lb)[b] && reachOf(b)[lb]
			}
			// Registers derived from the loaded value, closed over the
			// loop body.
			_, derived := isa.RegEffects(g.insts[a.inst].in)
			for changed := true; changed; {
				changed = false
				for b := range g.blocks {
					if !inLoop(b) {
						continue
					}
					for i := g.blocks[b].first; i <= g.blocks[b].last; i++ {
						in := g.insts[i].in
						if i == a.inst || isa.Lookup(in.Op).Mem {
							continue
						}
						uses, defs := isa.RegEffects(in)
						if uses&derived != 0 && derived|defs != derived {
							derived |= defs
							changed = true
						}
					}
				}
			}
			// A loop branch on a derived value makes it a spin-wait.
			spin := false
			for b := range g.blocks {
				if !inLoop(b) {
					continue
				}
				last := g.insts[g.blocks[b].last].in
				if isa.Lookup(last.Op).Format == isa.FmtB &&
					(isa.Bit(last.A)|isa.Bit(last.B))&derived != 0 {
					spin = true
				}
			}
			if !spin || mayWrite(a.addr, a.size) {
				continue
			}
			seen[a.inst] = true
			*diags = append(*diags, Diagnostic{
				Pass: "deadlock", Sev: Error, PC: g.insts[a.inst].pc,
				Msg: fmt.Sprintf("spin loop in %s reads %s, which no thread ever writes and no DMA fills; the wait can never be released",
					r.name(g), g.describeAddr(a.addr)),
			})
		}
	}
}
