package vet

import "cyclops/internal/isa"

// Definite-assignment dataflow: forward, with meet = intersection over
// predecessors (a register is defined only if every path defines it).
// The lattice is RegMask ordered by ⊆ with top = all registers; blocks
// start at top so loop back-edges cannot spuriously kill definitions
// made before the loop. Entry blocks are clamped to their ABI seed.

const allRegs = ^isa.RegMask(0)

// zeroIdiom reports the conventional "clear a register by subtracting or
// xoring it with itself" pattern; the result does not depend on the
// operand's previous value, so the use side is ignored.
func zeroIdiom(in isa.Inst) bool {
	switch in.Op {
	case isa.OpSUB, isa.OpXOR, isa.OpFSUB:
		return in.A == in.B && in.B == in.C
	}
	return false
}

// instEffects is RegEffects with the zero idiom applied.
func instEffects(in isa.Inst) (uses, defs isa.RegMask) {
	uses, defs = isa.RegEffects(in)
	if zeroIdiom(in) {
		uses = 0
	}
	return uses, defs
}

// solveDefined runs the fixpoint and returns the block entry states.
func (g *graph) solveDefined() []isa.RegMask {
	in := make([]isa.RegMask, len(g.blocks))
	out := make([]isa.RegMask, len(g.blocks))
	for b := range g.blocks {
		in[b] = allRegs
		if g.blocks[b].seeded {
			in[b] &= g.blocks[b].seed
		}
		out[b] = g.transferDefined(b, in[b])
	}
	work := make([]int, len(g.blocks))
	inWork := make([]bool, len(g.blocks))
	for b := range g.blocks {
		work[b] = b
		inWork[b] = true
	}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		inWork[b] = false
		acc := allRegs
		if g.blocks[b].seeded {
			acc &= g.blocks[b].seed
		}
		for _, e := range g.preds[b] {
			acc &= out[e.to] | e.extra
		}
		if acc == in[b] {
			continue
		}
		in[b] = acc
		o := g.transferDefined(b, acc)
		if o == out[b] {
			continue
		}
		out[b] = o
		for _, e := range g.blocks[b].succs {
			if !inWork[e.to] {
				inWork[e.to] = true
				work = append(work, e.to)
			}
		}
	}
	return in
}

// transferDefined applies a block's definitions to an entry state.
func (g *graph) transferDefined(b int, state isa.RegMask) isa.RegMask {
	blk := &g.blocks[b]
	for i := blk.first; i <= blk.last; i++ {
		_, defs := instEffects(g.insts[i].in)
		state |= defs
	}
	return state
}

// --- Constant propagation ---------------------------------------------
//
// A small per-register constant lattice (unknown / known value) used by
// the smc pass to prove store addresses. Only the handful of ops the
// assembler's address-materialization pseudos expand to are modeled;
// everything else kills its destinations.

// cstate holds per-register constant facts as parallel known/value
// arrays; r0 is handled in cget, not stored.
type cstate struct {
	known [64]bool
	val   [64]uint32
}

func (s *cstate) get(r uint8) (uint32, bool) {
	if r == isa.RZero {
		return 0, true
	}
	return s.val[r], s.known[r]
}

func (s *cstate) set(r uint8, v uint32) {
	if r != isa.RZero {
		s.known[r] = true
		s.val[r] = v
	}
}

func (s *cstate) kill(m isa.RegMask) {
	for _, r := range m.Regs() {
		s.known[r] = false
	}
}

// meet lowers s to the intersection of s and o; it reports whether s
// changed.
func (s *cstate) meet(o *cstate) bool {
	changed := false
	for r := 1; r < 64; r++ {
		if s.known[r] && (!o.known[r] || o.val[r] != s.val[r]) {
			s.known[r] = false
			changed = true
		}
	}
	return changed
}

// cstep advances the constant state across one instruction.
func cstep(s *cstate, in isa.Inst) {
	// Compute before killing: the destination may also be a source.
	var v uint32
	ok := false
	switch in.Op {
	case isa.OpADDI:
		if b, kb := s.get(in.B); kb {
			v, ok = b+uint32(in.Imm), true
		}
	case isa.OpLUI:
		v, ok = uint32(in.Imm)<<13, true
	case isa.OpORI:
		if b, kb := s.get(in.B); kb {
			v, ok = b|uint32(in.Imm), true
		}
	case isa.OpANDI:
		if b, kb := s.get(in.B); kb {
			v, ok = b&uint32(in.Imm), true
		}
	case isa.OpXORI:
		if b, kb := s.get(in.B); kb {
			v, ok = b^uint32(in.Imm), true
		}
	case isa.OpSLLI:
		if b, kb := s.get(in.B); kb {
			v, ok = b<<(uint32(in.Imm)&31), true
		}
	case isa.OpADD:
		if b, kb := s.get(in.B); kb {
			if c, kc := s.get(in.C); kc {
				v, ok = b+c, true
			}
		}
	case isa.OpSUB:
		if b, kb := s.get(in.B); kb {
			if c, kc := s.get(in.C); kc {
				v, ok = b-c, true
			}
		}
	case isa.OpOR:
		if b, kb := s.get(in.B); kb {
			if c, kc := s.get(in.C); kc {
				v, ok = b|c, true
			}
		}
	}
	_, defs := isa.RegEffects(in)
	s.kill(defs)
	if ok {
		s.set(in.A, v)
	}
}

// solveConsts propagates constants from the entry blocks and returns the
// per-block entry states; the bool marks blocks the solver visited
// (unvisited blocks have no trustworthy state).
func (g *graph) solveConsts() ([]cstate, []bool) {
	in := make([]cstate, len(g.blocks))
	have := make([]bool, len(g.blocks))
	var work []int
	inWork := make([]bool, len(g.blocks))
	for _, b := range g.entries {
		if !have[b] {
			have[b] = true // entry state: everything unknown
			work = append(work, b)
			inWork[b] = true
		}
	}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		inWork[b] = false
		st := in[b] // copy
		blk := &g.blocks[b]
		for i := blk.first; i <= blk.last; i++ {
			cstep(&st, g.insts[i].in)
		}
		for _, e := range g.blocks[b].succs {
			succ := st // copy per edge
			if e.extra != 0 {
				// Call-return edge: the callee may have written any
				// register, so no constant survives.
				succ = cstate{}
			}
			changed := false
			if !have[e.to] {
				have[e.to] = true
				in[e.to] = succ
				changed = true
			} else {
				changed = in[e.to].meet(&succ)
			}
			if changed && !inWork[e.to] {
				inWork[e.to] = true
				work = append(work, e.to)
			}
		}
	}
	return in, have
}
