package vet

import (
	"fmt"
	"sort"

	"cyclops/internal/asm"
	"cyclops/internal/isa"
)

// The CFG layer: the assembled image is split into .text and data using
// the line table's Code flag (only instruction statements are decoded, so
// data that happens to decode never pollutes the analysis), instructions
// are grouped into basic blocks, and jal/jalr sites contribute call edges
// and call-return summaries.

// interval is a half-open address range [lo, hi).
type interval struct{ lo, hi uint32 }

// inst is one decoded instruction with its source-statement extent; the
// extent spans 8 bytes inside a la/li pseudo expansion, which is how the
// branch pass recognises jumps into the middle of one.
type inst struct {
	pc       uint32
	in       isa.Inst
	stmtAddr uint32
	stmtSize uint32
	// target is the static branch/jump destination (FmtB/FmtJ only).
	target    uint32
	hasTarget bool
	// exit marks syscalls whose a0 is a block-local constant SysExit:
	// they terminate the thread and end their block without fallthrough.
	exit bool
}

// edge is one CFG edge; extra carries registers defined by the edge
// itself (the call-return summary: lr and the a0..a3 result registers a
// callee may set before returning).
type edge struct {
	to    int
	extra isa.RegMask
}

// block is a basic block: insts[first..last] inclusive.
type block struct {
	first, last int
	succs       []edge
	// seed constrains the dataflow entry state for entry blocks.
	seeded bool
	seed   isa.RegMask
	// fallsOff marks a block whose execution runs past the end of its
	// code interval into data or off the image.
	fallsOff bool
}

type graph struct {
	p      *asm.Program
	insts  []inst
	index  map[uint32]int // pc -> inst index
	text   []interval     // merged code intervals, address order
	blocks []block
	blkOf  []int // inst index -> block index
	preds  [][]edge
	// entries lists entry blocks: the boot entry point plus every code
	// label whose address the program materialises into a register
	// (spawn targets, jalr callees).
	entries   []int
	reachable []bool
}

// Entry-ABI seeds (Section 3.1's kernel): a booted or spawned thread
// starts with the stack pointer and its argument in a0; an indirectly
// entered routine may additionally rely on the link register and the
// full a0..a3 argument set of the call convention. r0 is hardwired and
// never appears in effect masks, so it needs no seeding.
var (
	seedBoot     = isa.Bit(isa.RSP) | isa.Bit(isa.RArg0)
	seedIndirect = seedBoot | isa.Bit(isa.RLR) |
		isa.Bit(isa.RArg1) | isa.Bit(isa.RArg2) | isa.Bit(isa.RArg3)
	callSummary = isa.Bit(isa.RArg0) | isa.Bit(isa.RArg1) |
		isa.Bit(isa.RArg2) | isa.Bit(isa.RArg3)
)

// inText reports whether [addr, addr+size) lies inside a code interval.
func (g *graph) inText(addr, size uint32) bool {
	for _, iv := range g.text {
		if addr < iv.hi && addr+size > iv.lo {
			return true
		}
	}
	return false
}

// buildCFG decodes the program's code lines and assembles the block
// graph. Structural findings that belong to no pass's fixpoint (an entry
// point that is not code) are appended to diags directly.
func buildCFG(p *asm.Program) (*graph, []Diagnostic) {
	var diags []Diagnostic
	g := &graph{p: p, index: make(map[uint32]int)}

	// 1. Decode every instruction statement; merge the text intervals.
	for _, l := range p.Lines {
		if !l.Code || l.Size == 0 {
			continue
		}
		if n := len(g.text); n > 0 && g.text[n-1].hi == l.Addr {
			g.text[n-1].hi = l.Addr + l.Size
		} else {
			g.text = append(g.text, interval{l.Addr, l.Addr + l.Size})
		}
		for off := uint32(0); off+4 <= l.Size; off += 4 {
			pc := l.Addr + off
			g.index[pc] = len(g.insts)
			g.insts = append(g.insts, inst{
				pc: pc, in: isa.Decode(p.Word(pc)),
				stmtAddr: l.Addr, stmtSize: l.Size,
			})
		}
	}
	if len(g.insts) == 0 {
		return nil, diags
	}
	if _, ok := g.index[p.Entry]; !ok {
		diags = append(diags, Diagnostic{
			Pass: "flow", Sev: Error, PC: p.Entry,
			Msg: fmt.Sprintf("entry point %#x is not code", p.Entry),
		})
		return nil, diags
	}

	// 2. Static branch/jump targets.
	for i := range g.insts {
		in := &g.insts[i]
		f := isa.Lookup(in.in.Op).Format
		if f == isa.FmtB || f == isa.FmtJ {
			in.target = uint32(int64(in.pc) + 4 + 4*int64(in.in.Imm))
			in.hasTarget = true
		}
	}

	// 3. Entry points: the boot entry plus materialised code addresses.
	entryPCs := map[uint32]isa.RegMask{p.Entry: seedBoot}
	for _, pc := range g.materializedCodeAddrs() {
		if pc == p.Entry {
			continue
		}
		if _, ok := entryPCs[pc]; !ok {
			entryPCs[pc] = seedIndirect
		}
	}

	// 4. Leaders: entries, in-text targets, and whatever follows a
	// control transfer.
	leader := map[uint32]bool{}
	for pc := range entryPCs {
		leader[pc] = true
	}
	for i := range g.insts {
		in := &g.insts[i]
		if in.hasTarget {
			if _, ok := g.index[in.target]; ok {
				leader[in.target] = true
			}
		}
		if isControl(in.in) {
			leader[in.pc+4] = true
		}
	}

	// 5. Terminal-exit syscalls (needs leaders for the block-local scan).
	for i := range g.insts {
		if g.insts[i].in.Op == isa.OpSYSCALL {
			g.insts[i].exit = g.syscallIsExit(i, leader)
		}
	}

	// 6. Blocks.
	start := 0
	flush := func(end int) { // insts[start..end] inclusive
		g.blocks = append(g.blocks, block{first: start, last: end})
		start = end + 1
	}
	for i := range g.insts {
		atEnd := i == len(g.insts)-1
		contiguous := !atEnd && g.insts[i+1].pc == g.insts[i].pc+4
		if isControl(g.insts[i].in) || atEnd || !contiguous || leader[g.insts[i+1].pc] {
			flush(i)
		}
	}
	g.blkOf = make([]int, len(g.insts))
	blockAt := make(map[uint32]int, len(g.blocks))
	for b := range g.blocks {
		blockAt[g.insts[g.blocks[b].first].pc] = b
		for i := g.blocks[b].first; i <= g.blocks[b].last; i++ {
			g.blkOf[i] = b
		}
	}

	// 7. Edges.
	for b := range g.blocks {
		blk := &g.blocks[b]
		last := &g.insts[blk.last]
		addEdge := func(pc uint32, extra isa.RegMask) bool {
			if t, ok := blockAt[pc]; ok {
				blk.succs = append(blk.succs, edge{to: t, extra: extra})
				return true
			}
			return false
		}
		fallthrough_ := func(extra isa.RegMask) {
			if !addEdge(last.pc+4, extra) {
				blk.fallsOff = true
			}
		}
		in := last.in
		switch {
		case isa.Lookup(in.Op).Format == isa.FmtB:
			taken, never := branchStatics(in)
			if !never {
				addEdge(last.target, 0) // invalid targets are pass 6's job
			}
			if !taken {
				fallthrough_(0)
			}
		case in.Op == isa.OpJAL:
			if in.A == isa.RZero { // plain jump
				addEdge(last.target, 0)
			} else { // call: edge into the callee, resume after it
				addEdge(last.target, 0)
				fallthrough_(callSummary)
			}
		case in.Op == isa.OpJALR:
			if in.A != isa.RZero { // indirect call, unknown callee
				fallthrough_(callSummary)
			} // else: ret or indirect tail jump — no static successor
		case in.Op == isa.OpHALT:
		case in.Op == isa.OpSYSCALL && last.exit:
		default:
			fallthrough_(0)
		}
	}

	// 8. Entry seeds, predecessors, reachability.
	for pc, seed := range entryPCs {
		b := blockAt[pc]
		// A materialised address that is not a block start (mid-block
		// label) still marks its block as an entry; the branch pass
		// flags mid-expansion cases separately.
		if g.insts[g.blocks[b].first].pc != pc {
			b = g.blkOf[g.index[pc]]
		}
		blk := &g.blocks[b]
		if blk.seeded {
			blk.seed &= seed
		} else {
			blk.seeded = true
			blk.seed = seed
		}
		g.entries = append(g.entries, b)
	}
	sort.Ints(g.entries)
	g.preds = make([][]edge, len(g.blocks))
	for b := range g.blocks {
		for _, e := range g.blocks[b].succs {
			g.preds[e.to] = append(g.preds[e.to], edge{to: b, extra: e.extra})
		}
	}
	g.reachable = make([]bool, len(g.blocks))
	var stack []int
	for _, b := range g.entries {
		if !g.reachable[b] {
			g.reachable[b] = true
			stack = append(stack, b)
		}
	}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.blocks[b].succs {
			if !g.reachable[e.to] {
				g.reachable[e.to] = true
				stack = append(stack, e.to)
			}
		}
	}
	return g, diags
}

// isControl reports instructions that end a basic block. The definition
// itself lives in isa.EndsBlock, shared with the simulator's block
// compiler so both derive the same leaders.
func isControl(in isa.Inst) bool { return isa.EndsBlock(in) }

// Leaders returns the sorted basic-block leader addresses of p's text:
// the boot entry, every materialised code address (spawn targets and
// indirect callees), every in-text static branch/jump target, and the
// instruction after each control transfer. The simulator's block engine
// uses this to precompile a program's blocks before execution; the set
// is exactly the block starts buildCFG derives.
func Leaders(p *asm.Program) []uint32 {
	g, _ := buildCFG(p)
	if g == nil {
		return nil
	}
	out := make([]uint32, 0, len(g.blocks))
	for b := range g.blocks {
		out = append(out, g.insts[g.blocks[b].first].pc)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// branchStatics classifies compare-and-branch instructions whose operands
// are the same register: beq/bge/bgeu r,r always branch (the assembler's
// `b` pseudo is beq r0, r0) and bne/blt/bltu r,r never do.
func branchStatics(in isa.Inst) (alwaysTaken, neverTaken bool) {
	if in.A != in.B {
		return false, false
	}
	switch in.Op {
	case isa.OpBEQ, isa.OpBGE, isa.OpBGEU:
		return true, false
	case isa.OpBNE, isa.OpBLT, isa.OpBLTU:
		return false, true
	}
	return false, false
}

// syscallIsExit scans backwards through the syscall's straight-line
// predecessors for the defining write to a0: a block-local `li a0,
// SysExit` proves the call never returns.
func (g *graph) syscallIsExit(i int, leader map[uint32]bool) bool {
	pc := g.insts[i].pc
	for j := i - 1; j >= 0; j-- {
		if g.insts[j].pc != pc-4 || isControl(g.insts[j].in) {
			return false // crossed a gap or a control transfer
		}
		pc -= 4
		in := g.insts[j].in
		_, defs := isa.RegEffects(in)
		if defs.Has(isa.RArg0) {
			return in.Op == isa.OpADDI && in.B == isa.RZero &&
				in.Imm == isa.SysExit
		}
		if leader[pc] {
			return false // block starts here; a0 comes from a predecessor
		}
	}
	return false
}

// materializedCodeAddrs scans for code addresses the program builds into
// registers and returns them as extra entry points: spawn targets and
// indirect call destinations. Only the lui+ori pattern — what the `la`
// pseudo (and wide `li`) expands to — counts, and only when the value is
// exactly a code label's address. Short-form li constants are just
// integers; treating them as entries misfires whenever a loop bound or
// byte offset collides with a label address (`li r9, 512` in a program
// with a label at 0x200).
func (g *graph) materializedCodeAddrs() []uint32 {
	labels := map[uint32]bool{}
	for _, l := range g.p.Labels {
		labels[l.Addr] = true
	}
	var out []uint32
	seen := map[uint32]bool{}
	for i := range g.insts {
		in := g.insts[i].in
		if in.Op != isa.OpLUI || i+1 >= len(g.insts) {
			continue
		}
		next := g.insts[i+1].in
		if g.insts[i+1].pc != g.insts[i].pc+4 ||
			next.Op != isa.OpORI || next.A != in.A || next.B != in.A {
			continue
		}
		v := uint32(in.Imm)<<13 | uint32(next.Imm)
		if !seen[v] && labels[v] && g.inText(v, 4) {
			if _, ok := g.index[v]; ok {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
