package vet

import (
	"fmt"
	"sort"

	"cyclops/internal/isa"
)

// The inter-thread model: the CFG partitioned into thread roots by the
// spawn graph, a barrier-phase lattice giving a static happens-before
// relation between roots, and a const-prop summary of the shared
// addresses each root touches per phase. The race/barrier/deadlock
// passes are queries over this model.
//
// Everything here is a MAY analysis. Spawn counts are estimated (a
// spawn site inside a CFG cycle means "many instances"), phase
// intervals widen to unbounded across loops that contain a barrier,
// and only const-provable addresses participate in conflict checks —
// so silence is not a proof of absence, and severities are chosen so
// that only findings true on every execution the model can see are
// errors.

// phaseInf is the "unbounded" upper phase bound: a barrier inside a
// loop whose trip count the analysis cannot see.
const phaseInf = int32(1 << 30)

// phaseCap is the widening threshold: a phase count that climbs past it
// during the fixpoint is declared unbounded.
const phaseCap = int32(64)

// access is one memory operation with its const-prop-resolved address.
type access struct {
	inst  int    // instruction index
	addr  uint32 // resolved byte address (valid when known)
	size  uint32 // bytes touched
	known bool   // address proven by constant propagation
	write bool
	atom  bool
	load  bool // reads memory (loads and atomics)
}

// spawnSite is one syscall statically recognized as SysSpawn.
type spawnSite struct {
	inst      int
	target    uint32 // entry PC of the spawned thread
	hasTarget bool   // false when a1 is not a materialized code label
	looped    bool   // the site sits in a CFG cycle (runs many times)
}

// troot is one thread root: the boot entry or a spawn target, with the
// per-root projections of the shared CFG.
type troot struct {
	pc      uint32
	blk     int
	spawned bool
	spawnPC uint32 // lowest spawn-site PC naming this root (spawned only)
	sites   int    // static spawn sites naming it
	many    bool   // more than one instance may run this root's code
	reach   []bool // per-block reachability from this root

	// Per-instruction barrier-phase intervals: the number of barrier
	// arrivals any path from this root's entry has executed before the
	// instruction. phLo == -1 marks instructions this root never
	// reaches.
	phLo, phHi []int32

	// Arrival-count interval over every entry→exit path (exit = halt,
	// SysExit, or a block with no static successor).
	exitLo, exitHi int32
	hasExit        bool

	arrives []int // reachable barrier-arrival instruction indexes
	waits   []int // reachable barrier-wait instruction indexes
	acc     []access
}

// name renders the root for diagnostics, naming the spawn site so a
// finding can be traced to the thread that executes it.
func (r *troot) name(g *graph) string {
	label, off, ok := g.p.NearestLabel(r.pc)
	who := fmt.Sprintf("%#x", r.pc)
	if ok && off == 0 {
		who = label
	} else if ok {
		who = fmt.Sprintf("%s+%#x", label, off)
	}
	if !r.spawned {
		return fmt.Sprintf("the boot thread (%s)", who)
	}
	file := g.p.SourceFile()
	if file == "" {
		file = "?"
	}
	line, _ := g.p.Locate(r.spawnPC)
	n := ""
	if r.many {
		n = "s"
	}
	return fmt.Sprintf("thread%s %s (spawned at %s:%d)", n, who, file, line)
}

// concModel ties the roots to the ordering facts shared between them.
type concModel struct {
	g     *graph
	roots []*troot // roots[0] is always the boot thread

	// unresolved counts spawn syscalls whose target register was not a
	// materialized code label; any such site makes instance estimates
	// unreliable, so every root degrades to "many".
	unresolved int

	// guarded marks instructions every path to which crosses a branch
	// on a thread-distinguishing value (the spawn argument, the tid
	// SPR, or an atomic's result). Code partitioned that way — the
	// owner-computes idiom — is exempted from same-address conflicts.
	guarded []bool

	// preSpawn marks boot-thread instructions no path to which has
	// executed a spawn: nothing else is running yet, so they cannot
	// race. mustJoin marks boot-thread instructions every path to
	// which has passed a SysJoin: the boot thread has (at least once)
	// waited on a worker, which the model credits as ordering.
	preSpawn, mustJoin []bool
}

// sysA0 resolves the block-local constant in a0 at a syscall, scanning
// backwards through straight-line predecessors for the defining write,
// exactly as the CFG's terminal-exit detection does.
func (g *graph) sysA0(i int) (int32, bool) {
	first := g.blocks[g.blkOf[i]].first
	pc := g.insts[i].pc
	for j := i - 1; j >= first; j-- {
		if g.insts[j].pc != pc-4 {
			return 0, false
		}
		pc -= 4
		in := g.insts[j].in
		_, defs := isa.RegEffects(in)
		if defs.Has(isa.RArg0) {
			if in.Op == isa.OpADDI && in.B == isa.RZero {
				return in.Imm, true
			}
			return 0, false
		}
	}
	return 0, false
}

// spawnTarget resolves the block-local a1 value at a spawn syscall. Only
// the strict lui+ori pair (the `la` expansion) counts, mirroring the
// entry-point matching: a short-form li constant that happens to equal a
// label address must not conjure a thread root.
func (g *graph) spawnTarget(i int) (uint32, bool) {
	first := g.blocks[g.blkOf[i]].first
	pc := g.insts[i].pc
	for j := i - 1; j >= first; j-- {
		if g.insts[j].pc != pc-4 {
			return 0, false
		}
		pc -= 4
		in := g.insts[j].in
		_, defs := isa.RegEffects(in)
		if !defs.Has(isa.RArg1) {
			continue
		}
		if in.Op != isa.OpORI || in.A != isa.RArg1 || in.B != isa.RArg1 || j == first {
			return 0, false
		}
		prev := g.insts[j-1]
		if prev.pc != pc-4 || prev.in.Op != isa.OpLUI || prev.in.A != isa.RArg1 {
			return 0, false
		}
		v := uint32(prev.in.Imm)<<13 | uint32(in.Imm)&0x1fff
		if _, ok := g.index[v]; !ok {
			return 0, false
		}
		return v, true
	}
	return 0, false
}

// spawnSites scans every syscall for the SysSpawn idiom.
func (g *graph) spawnSites() []spawnSite {
	var out []spawnSite
	for i := range g.insts {
		if g.insts[i].in.Op != isa.OpSYSCALL {
			continue
		}
		no, ok := g.sysA0(i)
		if !ok || no != isa.SysSpawn {
			continue
		}
		s := spawnSite{inst: i}
		s.target, s.hasTarget = g.spawnTarget(i)
		s.looped = g.blockInCycle(g.blkOf[i])
		out = append(out, s)
	}
	return out
}

// blockInCycle reports whether b can reach itself through CFG edges.
func (g *graph) blockInCycle(b int) bool {
	seen := make([]bool, len(g.blocks))
	stack := []int{}
	for _, e := range g.blocks[b].succs {
		if !seen[e.to] {
			seen[e.to] = true
			stack = append(stack, e.to)
		}
	}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if x == b {
			return true
		}
		for _, e := range g.blocks[x].succs {
			if !seen[e.to] {
				seen[e.to] = true
				stack = append(stack, e.to)
			}
		}
	}
	return false
}

// reachFrom computes per-block reachability from one root block.
func (g *graph) reachFrom(b int) []bool {
	reach := make([]bool, len(g.blocks))
	reach[b] = true
	stack := []int{b}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.blocks[x].succs {
			if !reach[e.to] {
				reach[e.to] = true
				stack = append(stack, e.to)
			}
		}
	}
	return reach
}

// buildConc assembles the inter-thread model. A program with no spawn
// sites still gets a model (one boot root) so the barrier pass can
// check arrival/wait pairing on single-threaded programs.
func buildConc(g *graph) *concModel {
	m := &concModel{g: g}

	sites := g.spawnSites()
	boot := &troot{pc: g.p.Entry, blk: g.blkOf[g.index[g.p.Entry]]}
	m.roots = append(m.roots, boot)
	byPC := map[uint32]*troot{}
	for _, s := range sites {
		if !s.hasTarget {
			m.unresolved++
			continue
		}
		r := byPC[s.target]
		if r == nil {
			b := g.blkOf[g.index[s.target]]
			r = &troot{pc: s.target, blk: b, spawned: true, spawnPC: g.insts[s.inst].pc}
			byPC[s.target] = r
			m.roots = append(m.roots, r)
		}
		if pc := g.insts[s.inst].pc; pc < r.spawnPC {
			r.spawnPC = pc
		}
		r.sites++
		if s.looped {
			r.many = true
		}
	}
	sort.Slice(m.roots[1:], func(i, j int) bool {
		return m.roots[i+1].pc < m.roots[j+1].pc
	})
	for _, r := range m.roots {
		if r.sites > 1 || m.unresolved > 0 {
			r.many = r.spawned
		}
	}

	consts, haveConsts := g.solveConsts()
	for _, r := range m.roots {
		r.reach = g.reachFrom(r.blk)
		m.solvePhases(r)
		m.collect(r, consts, haveConsts)
	}
	m.solveGuarded()
	m.solveBootOrder(boot)
	return m
}

// solvePhases runs the barrier-phase interval fixpoint over one root's
// subgraph and projects the result down to instructions, arrival-count
// exit intervals, and the arrival/wait site lists.
func (m *concModel) solvePhases(r *troot) {
	g := m.g
	lo := make([]int32, len(g.blocks))
	hi := make([]int32, len(g.blocks))
	for b := range lo {
		lo[b] = -1 // unvisited
	}
	lo[r.blk], hi[r.blk] = 0, 0
	work := []int{r.blk}
	inWork := make([]bool, len(g.blocks))
	inWork[r.blk] = true
	addPh := func(v, n int32) int32 {
		if v >= phaseInf {
			return phaseInf
		}
		if v += n; v > phaseCap {
			return phaseInf
		}
		return v
	}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		inWork[b] = false
		var n int32
		blk := &g.blocks[b]
		for i := blk.first; i <= blk.last; i++ {
			if isa.BarrierArrive(g.insts[i].in) {
				n++
			}
		}
		outLo, outHi := addPh(lo[b], n), addPh(hi[b], n)
		for _, e := range blk.succs {
			nl, nh := outLo, outHi
			if lo[e.to] >= 0 {
				if lo[e.to] < nl {
					nl = lo[e.to]
				}
				if hi[e.to] > nh {
					nh = hi[e.to]
				}
			}
			if nl != lo[e.to] || nh != hi[e.to] {
				lo[e.to], hi[e.to] = nl, nh
				if !inWork[e.to] {
					inWork[e.to] = true
					work = append(work, e.to)
				}
			}
		}
	}

	r.phLo = make([]int32, len(g.insts))
	r.phHi = make([]int32, len(g.insts))
	for i := range r.phLo {
		r.phLo[i] = -1
	}
	for b := range g.blocks {
		if !r.reach[b] || lo[b] < 0 {
			continue
		}
		cl, ch := lo[b], hi[b]
		blk := &g.blocks[b]
		for i := blk.first; i <= blk.last; i++ {
			r.phLo[i], r.phHi[i] = cl, ch
			in := g.insts[i].in
			if isa.BarrierArrive(in) {
				r.arrives = append(r.arrives, i)
				cl, ch = addPh(cl, 1), addPh(ch, 1)
			}
			if isa.BarrierWait(in) {
				r.waits = append(r.waits, i)
			}
			exit := in.Op == isa.OpHALT ||
				(in.Op == isa.OpSYSCALL && g.insts[i].exit) ||
				(i == blk.last && len(blk.succs) == 0)
			if exit {
				if !r.hasExit {
					r.exitLo, r.exitHi, r.hasExit = cl, ch, true
				} else {
					if cl < r.exitLo {
						r.exitLo = cl
					}
					if ch > r.exitHi {
						r.exitHi = ch
					}
				}
			}
		}
	}
}

// accessShape returns the base register, offset and width of a memory
// operation; atomics address through ra with no offset.
func accessShape(in isa.Inst) (base uint8, off, size uint32) {
	info := isa.Lookup(in.Op)
	if info.Store || info.Atomic {
		return storeShape(in)
	}
	switch in.Op { // loads: rd, imm(ra)
	case isa.OpLB, isa.OpLBU:
		return in.B, uint32(in.Imm), 1
	case isa.OpLH, isa.OpLHU:
		return in.B, uint32(in.Imm), 2
	case isa.OpLD:
		return in.B, uint32(in.Imm), 8
	default:
		return in.B, uint32(in.Imm), 4
	}
}

// collect walks one root's reachable blocks with the global constant
// states and records its memory accesses.
func (m *concModel) collect(r *troot, consts []cstate, have []bool) {
	g := m.g
	for b := range g.blocks {
		if !r.reach[b] {
			continue
		}
		st := cstate{}
		ok := have[b]
		if ok {
			st = consts[b]
		}
		blk := &g.blocks[b]
		for i := blk.first; i <= blk.last; i++ {
			in := g.insts[i].in
			info := isa.Lookup(in.Op)
			if info.Mem {
				base, off, size := accessShape(in)
				a := access{
					inst:  i,
					size:  size,
					write: info.Store,
					atom:  info.Atomic,
					load:  !info.Store || info.Atomic,
				}
				if v, known := st.get(base); known && ok {
					a.addr, a.known = v+off, true
				}
				r.acc = append(r.acc, a)
			}
			cstep(&st, in)
		}
	}
}

// solveGuarded computes the tid-taint and guardedness facts. Taint is a
// forward may-analysis over registers holding thread-distinguishing
// values; guardedness is a forward must-analysis marking blocks every
// path to which crosses a branch on a tainted register. Both run over
// the whole graph at once: a block shared between roots is guarded only
// if every way of reaching it from any root is.
func (m *concModel) solveGuarded() {
	g := m.g
	seedBlk := make([]isa.RegMask, len(g.blocks))
	isRoot := make([]bool, len(g.blocks))
	for _, r := range m.roots {
		seedBlk[r.blk] |= isa.Bit(isa.RArg0)
		isRoot[r.blk] = true
	}

	// Taint fixpoint (union meet).
	tin := make([]isa.RegMask, len(g.blocks))
	tout := make([]isa.RegMask, len(g.blocks))
	step := func(t isa.RegMask, in isa.Inst) isa.RegMask {
		uses, defs := isa.RegEffects(in)
		info := isa.Lookup(in.Op)
		switch {
		case info.Atomic:
			return t | defs // amoadd results differ per thread
		case in.Op == isa.OpMFSPR:
			if in.Imm == isa.SPRTid || in.Imm == isa.SPRQuad {
				return t | defs
			}
			return t &^ defs
		case info.Mem: // loads: memory contents are not tracked
			return t &^ defs
		default:
			if uses&t != 0 {
				return t | defs
			}
			return t &^ defs
		}
	}
	transferTaint := func(b int) isa.RegMask {
		t := tin[b]
		for i := g.blocks[b].first; i <= g.blocks[b].last; i++ {
			t = step(t, g.insts[i].in)
		}
		return t
	}
	for b := range g.blocks {
		tin[b] = seedBlk[b]
		tout[b] = transferTaint(b)
	}
	changed := true
	for changed {
		changed = false
		for b := range g.blocks {
			acc := seedBlk[b]
			for _, e := range g.preds[b] {
				acc |= tout[e.to]
			}
			if acc != tin[b] {
				tin[b] = acc
				changed = true
			}
			if o := transferTaint(b); o != tout[b] {
				tout[b] = o
				changed = true
			}
		}
	}

	// taintedBranch: the block ends in a compare-and-branch on a
	// tainted register, partitioning its successors by thread.
	taintedBranch := make([]bool, len(g.blocks))
	for b := range g.blocks {
		last := g.insts[g.blocks[b].last].in
		if isa.Lookup(last.Op).Format != isa.FmtB {
			continue
		}
		t := tin[b]
		for i := g.blocks[b].first; i < g.blocks[b].last; i++ {
			t = step(t, g.insts[i].in)
		}
		if (isa.Bit(last.A)|isa.Bit(last.B))&t != 0 {
			taintedBranch[b] = true
		}
	}

	// Guardedness fixpoint (intersection meet, decreasing from true).
	guard := make([]bool, len(g.blocks))
	for b := range guard {
		guard[b] = !isRoot[b]
	}
	changed = true
	for changed {
		changed = false
		for b := range g.blocks {
			if isRoot[b] || !guard[b] {
				continue // root entries start a fresh, unguarded instance
			}
			v := len(g.preds[b]) > 0
			for _, e := range g.preds[b] {
				if !guard[e.to] && !taintedBranch[e.to] {
					v = false
					break
				}
			}
			if v != guard[b] {
				guard[b] = v
				changed = true
			}
		}
	}
	m.guarded = make([]bool, len(g.insts))
	for b := range g.blocks {
		for i := g.blocks[b].first; i <= g.blocks[b].last; i++ {
			m.guarded[i] = guard[b]
		}
	}
}

// solveBootOrder computes the boot thread's spawn/join ordering facts:
// preSpawn (no path has spawned anything yet — nothing to race with)
// and mustJoin (every path has joined at least one worker).
func (m *concModel) solveBootOrder(boot *troot) {
	g := m.g
	m.preSpawn = make([]bool, len(g.insts))
	m.mustJoin = make([]bool, len(g.insts))

	isSys := func(i int, no int32) bool {
		if g.insts[i].in.Op != isa.OpSYSCALL {
			return false
		}
		v, ok := g.sysA0(i)
		return ok && v == no
	}
	// maySpawn: union meet, increasing from false.
	// mustJoin: intersection meet, decreasing from true.
	maySp := make([]bool, len(g.blocks))  // at block entry
	mustJn := make([]bool, len(g.blocks)) // at block entry
	for b := range mustJn {
		mustJn[b] = b != boot.blk && boot.reach[b]
	}
	outOf := func(in []bool, b int, no int32) bool {
		v := in[b]
		for i := g.blocks[b].first; i <= g.blocks[b].last; i++ {
			if isSys(i, no) {
				v = true
			}
		}
		return v
	}
	changed := true
	for changed {
		changed = false
		for b := range g.blocks {
			if !boot.reach[b] || b == boot.blk {
				continue
			}
			sp, jn := false, len(g.preds[b]) > 0
			for _, e := range g.preds[b] {
				if !boot.reach[e.to] {
					continue
				}
				if outOf(maySp, e.to, isa.SysSpawn) {
					sp = true
				}
				if !outOf(mustJn, e.to, isa.SysJoin) {
					jn = false
				}
			}
			if sp != maySp[b] {
				maySp[b] = sp
				changed = true
			}
			if jn != mustJn[b] {
				mustJn[b] = jn
				changed = true
			}
		}
	}
	for b := range g.blocks {
		if !boot.reach[b] {
			continue
		}
		sp, jn := maySp[b], mustJn[b]
		for i := g.blocks[b].first; i <= g.blocks[b].last; i++ {
			m.preSpawn[i] = !sp
			m.mustJoin[i] = jn
			if isSys(i, isa.SysSpawn) {
				sp = true
			}
			if isSys(i, isa.SysJoin) {
				jn = true
			}
		}
	}
}

// concurrent reports whether instances of roots a and b can run at the
// same time: distinct roots always can once anything is spawned, and a
// root races with itself only when more than one instance may exist.
func (m *concModel) concurrent(a, b *troot) bool {
	if len(m.roots) == 1 && !m.roots[0].many {
		return false
	}
	if a == b {
		return a.many
	}
	return true
}

// phasesOverlap reports whether instruction x (under root a) and y
// (under root b) can execute in the same barrier phase: the static
// happens-before says accesses separated by a barrier everyone passes
// cannot be concurrent.
func phasesOverlap(a *troot, x int, b *troot, y int) bool {
	if a.phLo[x] < 0 || b.phLo[y] < 0 {
		return false // a root never reaches the instruction
	}
	return a.phLo[x] <= b.phHi[y] && b.phLo[y] <= a.phHi[x]
}

// phaseRange renders an arrival-count interval for diagnostics.
func phaseRange(lo, hi int32) string {
	if hi >= phaseInf {
		if lo == 0 {
			return "0 or more"
		}
		return fmt.Sprintf("%d or more", lo)
	}
	if lo == hi {
		return fmt.Sprintf("%d", lo)
	}
	return fmt.Sprintf("%d-%d", lo, hi)
}
