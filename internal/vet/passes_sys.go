package vet

import (
	"fmt"

	"cyclops/internal/isa"
)

// Pass spr: the SPR protocol the simulator enforces at run time (exec
// traps on bad SPR numbers), checked statically. Writes to read-only or
// undefined SPRs and reads of undefined SPRs are errors. Barrier
// arrival/wait pairing moved to the barrier pass, which checks it per
// thread root against the inter-thread model.
func passSPR(g *graph, diags *[]Diagnostic) {
	for i := range g.insts {
		in := g.insts[i].in
		switch in.Op {
		case isa.OpMTSPR:
			switch {
			case in.Imm == isa.SPRBarrier:
				// Writable; pairing is the barrier pass's job.
			case isa.ReadOnlySPR(in.Imm):
				*diags = append(*diags, Diagnostic{
					Pass: "spr", Sev: Error, PC: g.insts[i].pc,
					Msg: fmt.Sprintf("mtspr to read-only SPR %d (%s)", in.Imm, isa.SPRName(in.Imm)),
				})
			default:
				*diags = append(*diags, Diagnostic{
					Pass: "spr", Sev: Error, PC: g.insts[i].pc,
					Msg: fmt.Sprintf("mtspr to undefined SPR %d", in.Imm),
				})
			}
		case isa.OpMFSPR:
			if !isa.KnownSPR(in.Imm) {
				*diags = append(*diags, Diagnostic{
					Pass: "spr", Sev: Error, PC: g.insts[i].pc,
					Msg: fmt.Sprintf("mfspr from undefined SPR %d", in.Imm),
				})
			}
		}
	}
}

// instSuccs returns the instruction-level successors of insts[i].
func (g *graph) instSuccs(i int) []int {
	b := g.blkOf[i]
	if i < g.blocks[b].last {
		return []int{i + 1}
	}
	var out []int
	for _, e := range g.blocks[b].succs {
		out = append(out, g.blocks[e.to].first)
	}
	return out
}

// barrierReadFollows searches forward from the arrival at insts[i] for a
// barrier read, stopping at the next arrival (a later barrier's spin
// must not satisfy this one).
func (g *graph) barrierReadFollows(i int) bool {
	visited := map[int]bool{}
	work := g.instSuccs(i)
	for len(work) > 0 {
		j := work[0]
		work = work[1:]
		if visited[j] {
			continue
		}
		visited[j] = true
		in := g.insts[j].in
		if in.Op == isa.OpMFSPR && in.Imm == isa.SPRBarrier {
			return true
		}
		if in.Op == isa.OpMTSPR && in.Imm == isa.SPRBarrier {
			continue // next barrier episode starts here
		}
		work = append(work, g.instSuccs(j)...)
	}
	return false
}

// Pass smc: stores whose address constant-propagation proves to be inside
// the instruction stream. The simulator's decoded-instruction model never
// re-reads patched words, so self-modifying stores silently diverge from
// real hardware; they are reported as warnings because a program may
// legitimately patch code it never re-executes.
func passSMC(g *graph, diags *[]Diagnostic) {
	in, have := g.solveConsts()
	for b := range g.blocks {
		if !g.reachable[b] || !have[b] {
			continue
		}
		st := in[b] // copy
		blk := &g.blocks[b]
		for i := blk.first; i <= blk.last; i++ {
			inst := g.insts[i].in
			info := isa.Lookup(inst.Op)
			if info.Store {
				base, off, size := storeShape(inst)
				if v, ok := st.get(base); ok {
					addr := v + off
					if g.inText(addr, size) {
						*diags = append(*diags, Diagnostic{
							Pass: "smc", Sev: Warn, PC: g.insts[i].pc,
							Msg: fmt.Sprintf("store writes code at %#x (%s); the simulator will not re-decode it",
								addr, g.describeAddr(addr)),
						})
					}
				}
			}
			cstep(&st, inst)
		}
	}
}

// storeShape returns the base register, immediate offset and width in
// bytes of a store; atomics address through ra with no offset.
func storeShape(in isa.Inst) (base uint8, off, size uint32) {
	switch in.Op {
	case isa.OpSB:
		return in.B, uint32(in.Imm), 1
	case isa.OpSH:
		return in.B, uint32(in.Imm), 2
	case isa.OpSW:
		return in.B, uint32(in.Imm), 4
	case isa.OpSD:
		return in.B, uint32(in.Imm), 8
	default: // amoadd/amoswap/amocas: rd, (ra), rb
		return in.B, 0, 4
	}
}

// describeAddr renders addr as label+offset when the program has labels.
func (g *graph) describeAddr(addr uint32) string {
	name, off, ok := g.p.NearestLabel(addr)
	if !ok {
		return fmt.Sprintf("%#x", addr)
	}
	if off == 0 {
		return name
	}
	return fmt.Sprintf("%s+%#x", name, off)
}
