package refdata_test

import (
	"strings"
	"testing"

	"cyclops/internal/harness"
	"cyclops/internal/refdata"
)

// TestOrigin3800Series pins the shape of the digitized Figure 6(b)
// reference: the paper's published SGI Origin numbers, which must stay
// internally consistent — monotone in processors and bandwidth, with
// Add/Triad leading and Scale trailing as in the figure.
func TestOrigin3800Series(t *testing.T) {
	pts := refdata.Origin3800
	if len(pts) != 8 {
		t.Fatalf("%d points, want 8 (2..128 processors)", len(pts))
	}
	if pts[0].Processors != 2 || pts[len(pts)-1].Processors != 128 {
		t.Errorf("series spans %d..%d processors, want 2..128", pts[0].Processors, pts[len(pts)-1].Processors)
	}
	for i, p := range pts {
		for _, v := range []float64{p.Copy, p.Scale, p.Add, p.Triad} {
			if v <= 0 {
				t.Errorf("point %d (%d cpus) has non-positive bandwidth", i, p.Processors)
			}
		}
		if !(p.Triad >= p.Copy && p.Add >= p.Copy && p.Copy >= p.Scale) {
			t.Errorf("point %d (%d cpus): kernel ordering broken (want add/triad >= copy >= scale): %+v", i, p.Processors, p)
		}
		if i == 0 {
			continue
		}
		prev := pts[i-1]
		if p.Processors <= prev.Processors {
			t.Errorf("point %d: processors not increasing (%d after %d)", i, p.Processors, prev.Processors)
		}
		for _, pair := range [][2]float64{{p.Copy, prev.Copy}, {p.Scale, prev.Scale}, {p.Add, prev.Add}, {p.Triad, prev.Triad}} {
			if pair[0] <= pair[1] {
				t.Errorf("point %d (%d cpus): bandwidth not increasing (%.1f after %.1f)", i, p.Processors, pair[0], pair[1])
			}
		}
	}
	// The 128-cpu plateau the paper plots against: mid-40s GB/s on Triad.
	if top := pts[len(pts)-1].Triad; top < 40 || top > 55 {
		t.Errorf("128-cpu triad = %.1f GB/s, want the figure's ~49", top)
	}
}

// TestPaperTargets pins the headline numbers quoted from the paper text;
// these are transcriptions, so any change is a transcription error.
func TestPaperTargets(t *testing.T) {
	pt := refdata.PaperTargets
	golden := []struct {
		name string
		got  float64
		want float64
	}{
		{"SustainedMemGBps", pt.SustainedMemGBps, 40},
		{"InCacheGBps", pt.InCacheGBps, 80},
		{"FFT256BarrierGainPct", pt.FFT256BarrierGainPct, 10},
		{"FFT64KBarrierGainPct", pt.FFT64KBarrierGainPct, 5},
		{"AggregateRatioLow", pt.AggregateRatioLow, 112},
		{"AggregateRatioHigh", pt.AggregateRatioHigh, 120},
		{"LocalCacheSmallGainPct", pt.LocalCacheSmallGainPct, 60},
		{"LocalCacheScaleGainPct", pt.LocalCacheScaleGainPct, 30},
	}
	for _, g := range golden {
		if g.got != g.want {
			t.Errorf("PaperTargets.%s = %v, want %v (paper text)", g.name, g.got, g.want)
		}
	}
	if pt.AggregateRatioLow >= pt.AggregateRatioHigh {
		t.Error("aggregate ratio bounds inverted")
	}
}

// TestSeriesMatchesHarnessSchema checks the reference data against its
// consumer: the fig6b table must carry one row per Origin3800 point and a
// column per STREAM kernel, so the series and the rendered table cannot
// drift apart.
func TestSeriesMatchesHarnessSchema(t *testing.T) {
	tab, err := harness.Fig6b()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(refdata.Origin3800) {
		t.Errorf("fig6b renders %d rows for %d reference points", len(tab.Rows), len(refdata.Origin3800))
	}
	// First column names the processor count; the four kernels follow.
	if len(tab.Columns) != 5 {
		t.Fatalf("fig6b has %d columns, want processors + 4 kernels", len(tab.Columns))
	}
	for _, kernel := range []string{"copy", "scale", "add", "triad"} {
		found := false
		for _, c := range tab.Columns {
			if strings.Contains(strings.ToLower(c), kernel) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("fig6b columns %v missing kernel %q", tab.Columns, kernel)
		}
	}
}
