// Package refdata holds the external reference series the paper compares
// against. The paper itself uses *published* STREAM results for the SGI
// Origin 3800/400 (Figure 6b) rather than simulating one; we do the same.
// The series below are digitized from Figure 6(b) of the paper — they are
// comparison background, not measurements of this simulator.
package refdata

// OriginPoint is one published SGI Origin 3800/400 STREAM measurement
// (vector length 5,000,000 elements per processor).
type OriginPoint struct {
	Processors int
	// GBps per kernel, in the paper's plotting order.
	Copy, Scale, Add, Triad float64
}

// Origin3800 is the Figure 6(b) reference series: sustained bandwidth
// grows near-linearly with processor count up to ~45 GB/s at 128 CPUs,
// with Add/Triad slightly ahead of Copy and Scale trailing.
var Origin3800 = []OriginPoint{
	{Processors: 2, Copy: 0.8, Scale: 0.7, Add: 0.9, Triad: 0.9},
	{Processors: 4, Copy: 1.6, Scale: 1.4, Add: 1.8, Triad: 1.8},
	{Processors: 8, Copy: 3.1, Scale: 2.8, Add: 3.5, Triad: 3.6},
	{Processors: 16, Copy: 6.2, Scale: 5.5, Add: 7.0, Triad: 7.1},
	{Processors: 32, Copy: 12.0, Scale: 10.8, Add: 13.7, Triad: 13.9},
	{Processors: 64, Copy: 23.0, Scale: 20.5, Add: 26.5, Triad: 27.0},
	{Processors: 96, Copy: 33.5, Scale: 30.0, Add: 38.5, Triad: 39.5},
	{Processors: 128, Copy: 42.0, Scale: 37.5, Add: 48.0, Triad: 49.0},
}

// PaperTargets records the headline numbers the paper reports, used by
// EXPERIMENTS.md and by shape-checking tests.
var PaperTargets = struct {
	// SustainedMemGBps is the out-of-cache STREAM plateau (Section 1:
	// "sustainable memory bandwidth of 40 GB/s, equal to the peak").
	SustainedMemGBps float64
	// InCacheGBps is the small-vector bandwidth ("above 80 GB/s").
	InCacheGBps float64
	// FFT256BarrierGainPct is the total-cycle improvement of hardware
	// barriers on the 256-point FFT at 16 threads ("about 10%").
	FFT256BarrierGainPct float64
	// FFT64KBarrierGainPct is the same for the 64K-point FFT at 64
	// threads ("about 5%").
	FFT64KBarrierGainPct float64
	// AggregateRatioLow/High bound the 126-thread independent STREAM
	// aggregate relative to single-threaded (Section 3.2.1: "112 to
	// 120 times larger").
	AggregateRatioLow, AggregateRatioHigh float64
	// LocalCacheSmallGainPct and LocalCacheScaleGainPct are the
	// Section 3.2.2 improvements from local-cache placement.
	LocalCacheSmallGainPct, LocalCacheScaleGainPct float64
}{
	SustainedMemGBps:       40,
	InCacheGBps:            80,
	FFT256BarrierGainPct:   10,
	FFT64KBarrierGainPct:   5,
	AggregateRatioLow:      112,
	AggregateRatioHigh:     120,
	LocalCacheSmallGainPct: 60,
	LocalCacheScaleGainPct: 30,
}
