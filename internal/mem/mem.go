// Package mem models the embedded memory of the Cyclops chip: 16
// independent banks of 512 KB DRAM behind a memory switch (Section 2.1).
//
// The banks provide a contiguous physical address space, interleaved at
// cache-line granularity so a 64-byte line fill rides a single 12-cycle
// burst (two consecutive 32-byte blocks in burst transfer mode). The peak
// bandwidth is 16 banks x 64 B / 12 cycles = 42.7 GB/s at 500 MHz.
//
// The package also implements the Section 5 fault-tolerance behaviour —
// failed banks shrink the contiguous space and addresses are re-mapped over
// the surviving banks — and the Section 2.1 off-chip memory, which is not
// directly addressable and moves 1 KB blocks like a disk.
package mem

import (
	"fmt"

	"cyclops/internal/arch"
	"cyclops/internal/obs"
)

// Memory is the embedded DRAM: functional storage plus per-bank timing.
type Memory struct {
	cfg  arch.Config
	data []byte

	// live maps logical bank -> physical bank after failures; len(live)
	// banks remain.
	live []int

	banks []bank

	// Code watch (see WatchCode): [watchLo, watchHi) bounds the text
	// addresses some consumer has cached decodings of; codeGen counts
	// writes landing inside the range so caches can invalidate.
	watchLo, watchHi uint32
	watchSet         bool
	codeGen          uint64

	// Stats.
	LineFills   uint64
	WriteBursts uint64
}

type bank struct {
	// freeAt is the first cycle at which the bank can start a new burst.
	freeAt uint64
	// wcbBytes counts write-through bytes accumulated toward the next
	// 32-byte write-combining burst.
	wcbBytes int
	// busy accumulates occupied cycles for utilization stats.
	busy uint64
	// grants/conflicts/waitCycles are the per-bank telemetry the
	// observability layer exports: bursts served, bursts that found the
	// bank busy, and the total queueing delay they saw.
	grants, conflicts, waitCycles uint64
}

// New builds the embedded memory for a configuration.
func New(cfg arch.Config) *Memory {
	live := make([]int, cfg.MemBanks)
	for i := range live {
		live[i] = i
	}
	return &Memory{
		cfg:   cfg,
		data:  make([]byte, cfg.MemBytes()),
		live:  live,
		banks: make([]bank, cfg.MemBanks),
	}
}

// Size returns the currently working memory size in bytes; bank failures
// reduce it (the value the SPRMemSize register reports).
func (m *Memory) Size() uint32 {
	return uint32(len(m.live) * m.cfg.MemBankBytes)
}

// FailBank removes physical bank pb from service. The hardware re-maps the
// remaining banks so that the address space stays contiguous (Section 5);
// data is not preserved, as on real hardware, so this is a boot-time event.
func (m *Memory) FailBank(pb int) error {
	if pb < 0 || pb >= m.cfg.MemBanks {
		return fmt.Errorf("mem: no bank %d", pb)
	}
	for i, b := range m.live {
		if b == pb {
			m.live = append(m.live[:i:i], m.live[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("mem: bank %d already failed", pb)
}

// LiveBanks returns the number of working banks.
func (m *Memory) LiveBanks() int { return len(m.live) }

// bankOf maps a physical address to the index into m.banks, applying the
// fault re-map: the XOR-folded interleave (see arch.Config.BankOf) runs
// over the surviving banks only.
func (m *Memory) bankOf(addr uint32) (int, error) {
	if addr >= m.Size() {
		return 0, fmt.Errorf("mem: address %#x beyond working memory %#x", addr, m.Size())
	}
	line := addr >> m.cfg.MemInterleaveShift
	logical := int(line^line>>4^line>>8) % len(m.live)
	return m.live[logical], nil
}

// backingOffset maps a physical address to an offset in the storage
// array. Storage layout is independent of bank assignment (the array is
// sized for all banks and stays a simple identity map), which keeps the
// mapping bijective after bank failures shrink the address space; data is
// not preserved across a failure, as on the real hardware.
func (m *Memory) backingOffset(addr uint32) (int, error) {
	if addr >= m.Size() {
		return 0, fmt.Errorf("mem: address %#x beyond working memory %#x", addr, m.Size())
	}
	return int(addr), nil
}

// --- Functional storage ---------------------------------------------------

// Read copies len(p) bytes at physical address addr into p.
func (m *Memory) Read(addr uint32, p []byte) error {
	for i := range p {
		off, err := m.backingOffset(addr + uint32(i))
		if err != nil {
			return err
		}
		p[i] = m.data[off]
	}
	return nil
}

// WatchCode widens the watched text range to cover [lo, hi). Consumers
// that cache decoded instructions (internal/sim's decode cache) register
// the ranges they have cached; any later write overlapping the watched
// range bumps the generation counter returned by CodeGen, signalling that
// cached decodings may be stale (self-modifying code, program reload).
func (m *Memory) WatchCode(lo, hi uint32) {
	if !m.watchSet {
		m.watchLo, m.watchHi, m.watchSet = lo, hi, true
		return
	}
	if lo < m.watchLo {
		m.watchLo = lo
	}
	if hi > m.watchHi {
		m.watchHi = hi
	}
}

// CodeGen returns the code-modification generation: it increments every
// time a write overlaps the watched text range.
func (m *Memory) CodeGen() uint64 { return m.codeGen }

// Write stores p at physical address addr.
func (m *Memory) Write(addr uint32, p []byte) error {
	if m.watchSet && addr < m.watchHi && addr+uint32(len(p)) > m.watchLo {
		m.codeGen++
	}
	for i := range p {
		off, err := m.backingOffset(addr + uint32(i))
		if err != nil {
			return err
		}
		m.data[off] = p[i]
	}
	return nil
}

// Read32 loads a naturally aligned 32-bit word.
func (m *Memory) Read32(addr uint32) (uint32, error) {
	var b [4]byte
	if err := m.Read(addr, b[:]); err != nil {
		return 0, err
	}
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24, nil
}

// Write32 stores a naturally aligned 32-bit word.
func (m *Memory) Write32(addr uint32, v uint32) error {
	b := [4]byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)}
	return m.Write(addr, b[:])
}

// Read64 loads a naturally aligned 64-bit doubleword.
func (m *Memory) Read64(addr uint32) (uint64, error) {
	lo, err := m.Read32(addr)
	if err != nil {
		return 0, err
	}
	hi, err := m.Read32(addr + 4)
	return uint64(hi)<<32 | uint64(lo), err
}

// Write64 stores a naturally aligned 64-bit doubleword.
func (m *Memory) Write64(addr uint32, v uint64) error {
	if err := m.Write32(addr, uint32(v)); err != nil {
		return err
	}
	return m.Write32(addr+4, uint32(v>>32))
}

// --- Timing ---------------------------------------------------------------

// FillLine charges the timing of a cache-line fill starting no earlier than
// cycle now. The target bank serves bursts FIFO; the fill occupies it for
// MemBurstCycles. It returns the cycle at which the line data is complete.
func (m *Memory) FillLine(now uint64, addr uint32) uint64 {
	pb, err := m.bankOf(addr)
	if err != nil {
		// Out-of-range timing requests model as a full-latency access
		// to bank 0; the functional path reports the error.
		pb = m.live[0]
	}
	b := &m.banks[pb]
	start := now
	if b.freeAt > start {
		start = b.freeAt
		if obs.Enabled {
			b.conflicts++
			b.waitCycles += start - now
		}
	}
	if obs.Enabled {
		b.grants++
	}
	b.freeAt = start + uint64(m.cfg.MemBurstCycles)
	b.busy += uint64(m.cfg.MemBurstCycles)
	m.LineFills++
	return b.freeAt
}

// WriteThrough charges the bank-side cost of a write-through store of size
// bytes. Stores retire into per-bank write-combining buffers; each
// accumulated 32-byte block costs the bank half a burst. The traffic
// competes with line fills for bank occupancy, which is what bounds
// STREAM's out-of-cache bandwidth. The returned admit cycle is when the
// store is accepted: normally now, but if the bank's backlog exceeds the
// finite write-buffer depth (StoreLagCycles) the storing thread is held
// until the backlog drains.
func (m *Memory) WriteThrough(now uint64, addr uint32, size int) (admit uint64) {
	pb, err := m.bankOf(addr)
	if err != nil {
		pb = m.live[0]
	}
	b := &m.banks[pb]
	b.wcbBytes += size
	block := m.cfg.MemBurstBytes / 2 // one 32-byte block
	for b.wcbBytes >= block {
		b.wcbBytes -= block
		start := now
		if b.freeAt > start {
			start = b.freeAt
			if obs.Enabled {
				b.conflicts++
				b.waitCycles += start - now
			}
		}
		if obs.Enabled {
			b.grants++
		}
		cost := uint64(m.cfg.MemBurstCycles / 2)
		b.freeAt = start + cost
		b.busy += cost
		m.WriteBursts++
	}
	admit = now
	if lag := uint64(m.cfg.StoreLagCycles); b.freeAt > now+lag {
		admit = b.freeAt - lag
	}
	return admit
}

// Banks returns the number of physical banks (including failed ones, so
// BankStats IDs are stable across fault experiments).
func (m *Memory) Banks() int { return len(m.banks) }

// BankStats returns bank i's telemetry for the observability layer.
func (m *Memory) BankStats(i int) obs.ResourceStats {
	b := &m.banks[i]
	return obs.ResourceStats{
		Kind:       "drambank",
		ID:         i,
		Busy:       b.busy,
		Grants:     b.grants,
		Conflicts:  b.conflicts,
		WaitCycles: b.waitCycles,
	}
}

// BusyCycles returns the total occupied cycles summed over all banks.
func (m *Memory) BusyCycles() uint64 {
	var t uint64
	for i := range m.banks {
		t += m.banks[i].busy
	}
	return t
}

// ResetTiming clears bank timing state (not contents), for back-to-back
// experiment runs on one chip.
func (m *Memory) ResetTiming() {
	for i := range m.banks {
		m.banks[i] = bank{}
	}
	m.LineFills = 0
	m.WriteBursts = 0
}
