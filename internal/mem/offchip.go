package mem

import (
	"fmt"

	"cyclops/internal/arch"
)

// OffChip models the optional external memory of Section 2.1: 128 MB to
// 2 GB that is not directly addressable. Data moves between it and the
// embedded memory in 1 KB blocks, much like disk operations, over a single
// channel whose bandwidth is far below the embedded memory's.
type OffChip struct {
	cfg    arch.Config
	data   []byte
	freeAt uint64

	// Transfers counts completed block moves.
	Transfers uint64
}

// NewOffChip builds the external memory; returns nil when the
// configuration does not include one.
func NewOffChip(cfg arch.Config) *OffChip {
	if cfg.OffChipBytes == 0 {
		return nil
	}
	return &OffChip{cfg: cfg, data: make([]byte, cfg.OffChipBytes)}
}

// Size returns the external memory capacity in bytes.
func (o *OffChip) Size() uint32 { return uint32(len(o.data)) }

// ReadBlock transfers one block from external address src to embedded
// address dst, starting no earlier than cycle now. It returns the
// completion cycle.
func (o *OffChip) ReadBlock(now uint64, m *Memory, src, dst uint32) (uint64, error) {
	if err := o.checkArgs(src, dst); err != nil {
		return now, err
	}
	if err := m.Write(dst, o.data[src:src+uint32(o.cfg.OffChipBlock)]); err != nil {
		return now, err
	}
	return o.charge(now), nil
}

// WriteBlock transfers one block from embedded address src to external
// address dst, starting no earlier than cycle now.
func (o *OffChip) WriteBlock(now uint64, m *Memory, src, dst uint32) (uint64, error) {
	if err := o.checkArgs(dst, src); err != nil {
		return now, err
	}
	if err := m.Read(src, o.data[dst:dst+uint32(o.cfg.OffChipBlock)]); err != nil {
		return now, err
	}
	return o.charge(now), nil
}

func (o *OffChip) checkArgs(ext, emb uint32) error {
	blk := uint32(o.cfg.OffChipBlock)
	switch {
	case ext%blk != 0 || emb%blk != 0:
		return fmt.Errorf("mem: off-chip transfers must be %d-byte aligned (ext %#x, emb %#x)", blk, ext, emb)
	case ext+blk > o.Size():
		return fmt.Errorf("mem: off-chip address %#x beyond %#x", ext, o.Size())
	}
	return nil
}

func (o *OffChip) charge(now uint64) uint64 {
	start := now
	if o.freeAt > start {
		start = o.freeAt
	}
	o.freeAt = start + uint64(o.cfg.OffChipBlockCycles)
	o.Transfers++
	return o.freeAt
}
