package mem

import (
	"testing"
	"testing/quick"

	"cyclops/internal/arch"
)

func TestReadWriteRoundTrip(t *testing.T) {
	m := New(arch.Default())
	if err := m.Write32(0x1234, 0xdeadbeef); err != nil {
		t.Fatal(err)
	}
	v, err := m.Read32(0x1234)
	if err != nil || v != 0xdeadbeef {
		t.Fatalf("Read32 = %#x, %v", v, err)
	}
	if err := m.Write64(0x2000, 0x0123456789abcdef); err != nil {
		t.Fatal(err)
	}
	d, err := m.Read64(0x2000)
	if err != nil || d != 0x0123456789abcdef {
		t.Fatalf("Read64 = %#x, %v", d, err)
	}
}

func TestLittleEndianLayout(t *testing.T) {
	m := New(arch.Default())
	m.Write32(0, 0x04030201)
	var b [4]byte
	m.Read(0, b[:])
	if b != [4]byte{1, 2, 3, 4} {
		t.Errorf("layout = %v, want little-endian", b)
	}
}

func TestRoundTripProperty(t *testing.T) {
	m := New(arch.Default())
	f := func(addr uint32, v uint64) bool {
		addr = addr % (m.Size() - 8) &^ 7
		if m.Write64(addr, v) != nil {
			return false
		}
		got, err := m.Read64(addr)
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOutOfRangeRejected(t *testing.T) {
	m := New(arch.Default())
	if _, err := m.Read32(m.Size()); err == nil {
		t.Error("read past end succeeded")
	}
	if err := m.Write32(m.Size()-2, 0); err == nil {
		t.Error("straddling write succeeded")
	}
}

func TestFillLineTiming(t *testing.T) {
	m := New(arch.Default())
	// Unloaded fill completes one burst after it starts.
	if done := m.FillLine(100, 0); done != 112 {
		t.Errorf("unloaded fill done at %d, want 112", done)
	}
	// A second fill to the same bank queues behind the first: line 17
	// hashes back to bank 0 (17 ^ 17>>4 = 16, & 15 = 0).
	if done := m.FillLine(100, 17*64); done != 124 {
		t.Errorf("queued fill done at %d, want 124", done)
	}
	// A fill to a different bank proceeds in parallel.
	if done := m.FillLine(100, 64); done != 112 {
		t.Errorf("parallel fill done at %d, want 112", done)
	}
	if m.LineFills != 3 {
		t.Errorf("LineFills = %d, want 3", m.LineFills)
	}
}

func TestPeakBandwidthIsFortyTwoGBPerSecond(t *testing.T) {
	// Saturating all 16 banks moves 64 bytes per bank per 12 cycles:
	// the Section 2.1 peak. Simulate 1200 cycles of saturation.
	m := New(arch.Default())
	cfg := arch.Default()
	var bytes int
	for round := 0; round < 100; round++ {
		for b := 0; b < cfg.MemBanks; b++ {
			m.FillLine(uint64(round*12), uint32(b*64))
			bytes += 64
		}
	}
	cycles := float64(1200)
	gbps := float64(bytes) / cycles * arch.ClockHz / 1e9
	if gbps < 42 || gbps > 43.5 {
		t.Errorf("saturated bandwidth = %.1f GB/s, want ~42.7", gbps)
	}
}

func TestWriteCombining(t *testing.T) {
	m := New(arch.Default())
	// Three 8-byte stores accumulate without a burst.
	for i := 0; i < 3; i++ {
		m.WriteThrough(uint64(i), uint32(i*8), 8)
	}
	if m.WriteBursts != 0 {
		t.Fatalf("burst fired after 24 bytes")
	}
	// The fourth completes a 32-byte block: one half-burst.
	m.WriteThrough(3, 24, 8)
	if m.WriteBursts != 1 {
		t.Fatalf("WriteBursts = %d, want 1", m.WriteBursts)
	}
	if m.BusyCycles() != 6 {
		t.Errorf("half-burst occupied %d cycles, want 6", m.BusyCycles())
	}
}

func TestStoresCompeteWithFills(t *testing.T) {
	m := New(arch.Default())
	m.WriteThrough(0, 0, 32) // occupies bank 0 cycles 0-6
	if done := m.FillLine(0, 0); done != 18 {
		t.Errorf("fill behind store burst done at %d, want 18", done)
	}
}

func TestFailBankShrinksAndRemaps(t *testing.T) {
	cfg := arch.Default()
	m := New(cfg)
	if err := m.FailBank(3); err != nil {
		t.Fatal(err)
	}
	if m.LiveBanks() != 15 {
		t.Fatalf("LiveBanks = %d", m.LiveBanks())
	}
	if m.Size() != uint32(15*cfg.MemBankBytes) {
		t.Errorf("Size = %#x, want 15 banks", m.Size())
	}
	// The address space stays contiguous: every address below Size works,
	// and no line maps to the dead bank.
	for addr := uint32(0); addr < 64*64; addr += 64 {
		b, err := m.bankOf(addr)
		if err != nil {
			t.Fatalf("addr %#x unusable: %v", addr, err)
		}
		if b == 3 {
			t.Fatalf("addr %#x mapped to failed bank", addr)
		}
	}
	// Data written after the failure still round-trips everywhere.
	for addr := uint32(0); addr < m.Size(); addr += m.Size() / 64 {
		a := addr &^ 7
		if err := m.Write64(a, uint64(a)|1); err != nil {
			t.Fatalf("write %#x: %v", a, err)
		}
	}
	for addr := uint32(0); addr < m.Size(); addr += m.Size() / 64 {
		a := addr &^ 7
		v, err := m.Read64(a)
		if err != nil || v != uint64(a)|1 {
			t.Fatalf("read %#x = %#x, %v", a, v, err)
		}
	}
	// Reads beyond the shrunken size fail.
	if _, err := m.Read32(m.Size()); err == nil {
		t.Error("read beyond shrunken memory succeeded")
	}
	// Failing the same bank twice is an error.
	if err := m.FailBank(3); err == nil {
		t.Error("double failure accepted")
	}
	if err := m.FailBank(99); err == nil {
		t.Error("nonexistent bank accepted")
	}
}

func TestResetTiming(t *testing.T) {
	m := New(arch.Default())
	m.FillLine(0, 0)
	m.ResetTiming()
	if m.LineFills != 0 || m.BusyCycles() != 0 {
		t.Error("ResetTiming did not clear stats")
	}
	if done := m.FillLine(0, 0); done != 12 {
		t.Errorf("fill after reset done at %d, want 12", done)
	}
}

func TestOffChipTransfers(t *testing.T) {
	cfg := arch.Default()
	cfg.OffChipBytes = 1 << 20
	m := New(cfg)
	o := NewOffChip(cfg)
	if o == nil {
		t.Fatal("off-chip memory not built")
	}
	// Write a pattern into embedded memory, push it out, wipe, pull back.
	for i := uint32(0); i < uint32(cfg.OffChipBlock); i += 8 {
		m.Write64(0x4000+i, uint64(i)*3+1)
	}
	done, err := o.WriteBlock(0, m, 0x4000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if done != uint64(cfg.OffChipBlockCycles) {
		t.Errorf("WriteBlock done at %d, want %d", done, cfg.OffChipBlockCycles)
	}
	for i := uint32(0); i < uint32(cfg.OffChipBlock); i += 8 {
		m.Write64(0x4000+i, 0)
	}
	done2, err := o.ReadBlock(done, m, 0, 0x4000)
	if err != nil {
		t.Fatal(err)
	}
	if done2 != 2*uint64(cfg.OffChipBlockCycles) {
		t.Errorf("second transfer serialised to %d", done2)
	}
	for i := uint32(0); i < uint32(cfg.OffChipBlock); i += 8 {
		if v, _ := m.Read64(0x4000 + i); v != uint64(i)*3+1 {
			t.Fatalf("byte %d corrupted: %#x", i, v)
		}
	}
}

func TestOffChipValidation(t *testing.T) {
	cfg := arch.Default()
	if NewOffChip(cfg) != nil {
		t.Error("off-chip built with zero size")
	}
	cfg.OffChipBytes = 1 << 20
	m := New(cfg)
	o := NewOffChip(cfg)
	if _, err := o.ReadBlock(0, m, 100, 0); err == nil {
		t.Error("unaligned external address accepted")
	}
	if _, err := o.ReadBlock(0, m, o.Size(), 0); err == nil {
		t.Error("out-of-range external address accepted")
	}
}
