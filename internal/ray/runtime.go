package ray

import (
	"fmt"

	"cyclops/internal/arch"
	"cyclops/internal/core"
	"cyclops/internal/perf"
	"cyclops/internal/splash"
)

// newMachine mirrors the splash kernels' machine construction.
func newMachine(c *splash.Config) (*perf.Machine, error) {
	chip := c.Chip
	if chip == nil {
		chip = core.MustNew(arch.Default())
	}
	if c.Threads < 1 || c.Threads > chip.Cfg.WorkerThreads() {
		return nil, fmt.Errorf("ray: %d threads out of range (1..%d)", c.Threads, chip.Cfg.WorkerThreads())
	}
	m := perf.New(chip)
	m.Balanced = c.Balanced
	return m, nil
}

// scanSpan splits n scanlines across nThreads.
func scanSpan(n, p, nThreads int) (lo, hi int) {
	base := n / nThreads
	rem := n % nThreads
	lo = p*base + min(p, rem)
	hi = lo + base
	if p < rem {
		hi++
	}
	return lo, hi
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// resultFor packages the standard metrics.
func resultFor(threads, w, h int, m *perf.Machine) *splash.Result {
	run, stall := m.TotalRunStall()
	return &splash.Result{
		Name:    "Ray",
		Threads: threads,
		Problem: fmt.Sprintf("%dx%d image", w, h),
		Cycles:  m.Elapsed(),
		Run:     run,
		Stall:   stall,
	}
}
