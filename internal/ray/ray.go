// Package ray implements the raytracing workload the paper's Section 5
// names alongside molecular dynamics and linear algebra as the
// application class Cyclops targets: compute-intensive and massively
// parallel.
//
// The tracer is a classical Whitted-style renderer over spheres and a
// ground plane — primary rays, hard shadows, specular reflection —
// parallelised by scanline blocks on the direct-execution runtime. Rays
// are independent, so the kernel has no barriers at all until the final
// join: the embarrassingly-parallel end of the paper's workload spectrum,
// bounded purely by FPU sharing and scene-data cache traffic.
package ray

import (
	"fmt"
	"math"

	"cyclops/internal/isa"
	"cyclops/internal/perf"
	"cyclops/internal/splash"
)

// Vec is a 3-component vector.
type Vec struct{ X, Y, Z float64 }

// Arithmetic helpers.
func (a Vec) Add(b Vec) Vec       { return Vec{a.X + b.X, a.Y + b.Y, a.Z + b.Z} }
func (a Vec) Sub(b Vec) Vec       { return Vec{a.X - b.X, a.Y - b.Y, a.Z - b.Z} }
func (a Vec) Scale(s float64) Vec { return Vec{a.X * s, a.Y * s, a.Z * s} }
func (a Vec) Dot(b Vec) float64   { return a.X*b.X + a.Y*b.Y + a.Z*b.Z }
func (a Vec) Mul(b Vec) Vec       { return Vec{a.X * b.X, a.Y * b.Y, a.Z * b.Z} }

// Norm returns the unit vector.
func (a Vec) Norm() Vec {
	l := math.Sqrt(a.Dot(a))
	if l == 0 {
		return a
	}
	return a.Scale(1 / l)
}

// Sphere is one scene primitive.
type Sphere struct {
	Center     Vec
	Radius     float64
	Color      Vec
	Reflective float64
}

// Scene holds the world.
type Scene struct {
	Spheres []Sphere
	Light   Vec // point light position
	Ambient float64
}

// DefaultScene builds a deterministic test world: a grid of mixed-finish
// spheres above a reflective floor (the floor is a huge sphere).
func DefaultScene(nSpheres int) *Scene {
	sc := &Scene{
		Light:   Vec{-8, 12, -4},
		Ambient: 0.1,
		Spheres: []Sphere{{
			Center: Vec{0, -1e4, 0}, Radius: 1e4 - 1,
			Color: Vec{0.7, 0.7, 0.7}, Reflective: 0.3,
		}},
	}
	seed := uint32(77)
	next := func() float64 {
		seed = seed*1664525 + 1013904223
		return float64(seed>>8) / float64(1<<24)
	}
	for i := 0; i < nSpheres; i++ {
		sc.Spheres = append(sc.Spheres, Sphere{
			Center:     Vec{next()*10 - 5, next()*2 + 0.2, next()*6 + 2},
			Radius:     0.3 + next()*0.7,
			Color:      Vec{0.2 + next()*0.8, 0.2 + next()*0.8, 0.2 + next()*0.8},
			Reflective: next() * 0.8,
		})
	}
	return sc
}

// Opts configures a render.
type Opts struct {
	splash.Config
	// Width and Height are the image size; Spheres the scene size
	// (default 16); Depth the reflection bound (default 3).
	Width, Height int
	Spheres       int
	Depth         int
	// Image, when non-nil, receives the RGB framebuffer (len W*H).
	Image []Vec
}

// Render traces the scene and returns timing plus the framebuffer.
func Render(opts Opts) (*splash.Result, []Vec, error) {
	w, h := opts.Width, opts.Height
	if w < 1 || h < 1 {
		return nil, nil, fmt.Errorf("ray: bad image %dx%d", w, h)
	}
	if opts.Threads > h {
		return nil, nil, fmt.Errorf("ray: %d threads exceed %d scanlines", opts.Threads, h)
	}
	depth := opts.Depth
	if depth == 0 {
		depth = 3
	}
	nSph := opts.Spheres
	if nSph == 0 {
		nSph = 16
	}
	scene := DefaultScene(nSph)
	img := make([]Vec, w*h)

	mach, err := newMachine(&opts.Config)
	if err != nil {
		return nil, nil, err
	}
	// Scene data lives in the chip-wide shared cache; the framebuffer is
	// written through per-pixel.
	eaScene := mach.SharedAlloc(64 * len(scene.Spheres))
	eaImg := mach.SharedAlloc(32 * w * h)
	T := opts.Threads

	err = mach.SpawnN(T, func(t *perf.T, p int) {
		lo, hi := scanSpan(h, p, T)
		tr := tracer{scene: scene, t: t, eaScene: eaScene, depth: depth}
		for y := lo; y < hi; y++ {
			for x := 0; x < w; x++ {
				// Camera ray through the pixel.
				u := (float64(x)+0.5)/float64(w)*2 - 1
				v := 1 - (float64(y)+0.5)/float64(h)*2
				dir := Vec{u * float64(w) / float64(h), v, 1}.Norm()
				img[y*w+x] = tr.trace(Vec{0, 1.5, -4}, dir, depth)
			}
			// One framebuffer store per pixel of the scanline.
			t.StoreBlock(eaImg+uint32(32*y*w), w, 8, 32)
			t.Work(6 * w) // per-pixel camera setup
		}
	})
	if err != nil {
		return nil, nil, err
	}
	if err := mach.Run(); err != nil {
		return nil, nil, err
	}
	if opts.Image != nil {
		copy(opts.Image, img)
	}
	res := resultFor(opts.Threads, w, h, mach)
	return res, img, nil
}

// tracer carries per-thread state for timed tracing.
type tracer struct {
	scene   *Scene
	t       *perf.T
	eaScene uint32
	depth   int
}

// trace returns the color along one ray, charging timing as it goes.
func (tr *tracer) trace(origin, dir Vec, depth int) Vec {
	// Intersection test against every sphere: loads of scene records
	// plus ~10 multiply-add-class ops per test, one sqrt per candidate.
	n := len(tr.scene.Spheres)
	tr.t.LoadBlock(tr.eaScene, n, 8, 64)
	tr.t.FPBlock(isa.PipeBoth, 10*n)

	idx, hitT := tr.nearest(origin, dir)
	if idx < 0 {
		// Sky gradient.
		k := 0.5 * (dir.Y + 1)
		return Vec{0.6, 0.7, 1.0}.Scale(k).Add(Vec{1, 1, 1}.Scale(0.2 * (1 - k)))
	}
	tr.t.FSqrt() // the accepted hit's root

	s := &tr.scene.Spheres[idx]
	hit := origin.Add(dir.Scale(hitT))
	normal := hit.Sub(s.Center).Norm()

	// Shadow ray: another full intersection pass.
	toLight := tr.scene.Light.Sub(hit)
	lightDist := math.Sqrt(toLight.Dot(toLight))
	ldir := toLight.Scale(1 / lightDist)
	tr.t.LoadBlock(tr.eaScene, n, 8, 64)
	tr.t.FPBlock(isa.PipeBoth, 10*n)
	shadowIdx, shadowT := tr.nearest(hit.Add(normal.Scale(1e-6)), ldir)
	lit := shadowIdx < 0 || shadowT > lightDist

	// Shading: ~20 flops.
	tr.t.FPBlock(isa.PipeBoth, 20)
	shade := tr.scene.Ambient
	if lit {
		if d := normal.Dot(ldir); d > 0 {
			shade += d
		}
	}
	color := s.Color.Scale(shade)

	if s.Reflective > 0 && depth > 1 {
		refl := dir.Sub(normal.Scale(2 * dir.Dot(normal)))
		bounce := tr.trace(hit.Add(normal.Scale(1e-6)), refl, depth-1)
		color = color.Scale(1 - s.Reflective).Add(bounce.Mul(s.Color).Scale(s.Reflective))
	}
	return color
}

// nearest returns the closest intersecting sphere index and distance
// (functional math only; timing is charged by the caller).
func (tr *tracer) nearest(origin, dir Vec) (int, float64) {
	best := -1
	bestT := math.Inf(1)
	for i := range tr.scene.Spheres {
		s := &tr.scene.Spheres[i]
		oc := origin.Sub(s.Center)
		b := oc.Dot(dir)
		c := oc.Dot(oc) - s.Radius*s.Radius
		disc := b*b - c
		if disc <= 0 {
			continue
		}
		sq := math.Sqrt(disc)
		t0 := -b - sq
		if t0 > 1e-9 && t0 < bestT {
			best, bestT = i, t0
			continue
		}
		t1 := -b + sq
		if t1 > 1e-9 && t1 < bestT {
			best, bestT = i, t1
		}
	}
	return best, bestT
}

// Checksum folds a framebuffer into a stable fingerprint for tests.
func Checksum(img []Vec) float64 {
	var s float64
	for i, p := range img {
		s += (p.X + 2*p.Y + 3*p.Z) * float64(i%97+1)
	}
	return s
}
