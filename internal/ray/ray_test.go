package ray

import (
	"math"
	"testing"

	"cyclops/internal/splash"
)

func cfg(threads int) splash.Config { return splash.Config{Threads: threads} }

func TestRenderProducesImage(t *testing.T) {
	_, img, err := Render(Opts{Config: cfg(4), Width: 32, Height: 24})
	if err != nil {
		t.Fatal(err)
	}
	if len(img) != 32*24 {
		t.Fatalf("image has %d pixels", len(img))
	}
	// Pixels are finite, non-negative and not all identical.
	first := img[0]
	varied := false
	for _, p := range img {
		for _, c := range []float64{p.X, p.Y, p.Z} {
			if math.IsNaN(c) || math.IsInf(c, 0) || c < 0 {
				t.Fatalf("bad pixel component %v", c)
			}
		}
		if p != first {
			varied = true
		}
	}
	if !varied {
		t.Error("image is a flat color")
	}
}

func TestRenderThreadInvariance(t *testing.T) {
	_, a, err := Render(Opts{Config: cfg(1), Width: 24, Height: 16})
	if err != nil {
		t.Fatal(err)
	}
	_, b, err := Render(Opts{Config: cfg(7), Width: 24, Height: 16})
	if err != nil {
		t.Fatal(err)
	}
	if Checksum(a) != Checksum(b) {
		t.Error("image depends on thread count")
	}
}

func TestRenderDeterministic(t *testing.T) {
	r1, img1, err := Render(Opts{Config: cfg(8), Width: 24, Height: 16})
	if err != nil {
		t.Fatal(err)
	}
	r2, img2, err := Render(Opts{Config: cfg(8), Width: 24, Height: 16})
	if err != nil {
		t.Fatal(err)
	}
	if Checksum(img1) != Checksum(img2) || r1.Cycles != r2.Cycles {
		t.Error("repeat renders differ")
	}
}

func TestShadowsDarken(t *testing.T) {
	// With the light far above, the floor under a sphere must be darker
	// than open floor. Compare a pixel straight below a known sphere to
	// a far-corner floor pixel using a single-sphere scene through the
	// full pipeline: simply check that the image has meaningful dynamic
	// range (shadows + highlights).
	_, img, err := Render(Opts{Config: cfg(4), Width: 48, Height: 32, Spheres: 8})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, p := range img {
		l := p.X + p.Y + p.Z
		lo = math.Min(lo, l)
		hi = math.Max(hi, l)
	}
	if hi-lo < 0.5 {
		t.Errorf("dynamic range %.2f too small: no shadows or highlights", hi-lo)
	}
}

func TestReflectionDepthMatters(t *testing.T) {
	_, shallow, err := Render(Opts{Config: cfg(2), Width: 24, Height: 16, Depth: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, deep, err := Render(Opts{Config: cfg(2), Width: 24, Height: 16, Depth: 4})
	if err != nil {
		t.Fatal(err)
	}
	if Checksum(shallow) == Checksum(deep) {
		t.Error("reflection depth has no effect: reflective surfaces missing")
	}
}

func TestRenderScales(t *testing.T) {
	base, _, err := Render(Opts{Config: cfg(1), Width: 48, Height: 48})
	if err != nil {
		t.Fatal(err)
	}
	// Rays are independent: balanced placement should scale near the
	// quad count.
	par, _, err := Render(Opts{Config: splash.Config{Threads: 16, Balanced: true}, Width: 48, Height: 48})
	if err != nil {
		t.Fatal(err)
	}
	if s := par.Speedup(base); s < 8 {
		t.Errorf("16-thread balanced render speedup = %.2f, want > 8", s)
	}
}

func TestRenderValidation(t *testing.T) {
	if _, _, err := Render(Opts{Config: cfg(1), Width: 0, Height: 10}); err == nil {
		t.Error("zero width accepted")
	}
	if _, _, err := Render(Opts{Config: cfg(64), Width: 8, Height: 8}); err == nil {
		t.Error("more threads than scanlines accepted")
	}
	if _, _, err := Render(Opts{Config: cfg(0), Width: 8, Height: 8}); err == nil {
		t.Error("zero threads accepted")
	}
}

func TestVecHelpers(t *testing.T) {
	a := Vec{1, 2, 3}
	if a.Add(a) != (Vec{2, 4, 6}) || a.Sub(a) != (Vec{}) {
		t.Error("add/sub broken")
	}
	if a.Dot(Vec{1, 1, 1}) != 6 {
		t.Error("dot broken")
	}
	n := Vec{3, 0, 4}.Norm()
	if math.Abs(n.Dot(n)-1) > 1e-12 {
		t.Error("norm broken")
	}
	if (Vec{}).Norm() != (Vec{}) {
		t.Error("zero norm broken")
	}
}
