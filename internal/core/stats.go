package core

import (
	"fmt"
	"strings"
)

// Utilization summarises how busy each shared resource was over an
// elapsed window — the first place to look when deciding whether a
// workload is bank-, port- or FPU-bound.
type Utilization struct {
	Elapsed uint64
	// BankBusyFrac is mean DRAM bank occupancy (0..1).
	BankBusyFrac float64
	// PortBusyFrac is mean cache-port occupancy (0..1).
	PortBusyFrac float64
	// FPUOpsPerCycle is aggregate FPU operations per cycle (peak: 2 per
	// quad — one add + one multiply).
	FPUOpsPerCycle float64
	// DCacheHitRate over all data caches (0..1); NaN-free: 0 if no
	// accesses.
	DCacheHitRate float64
	// LineFills and WriteBursts are raw memory-traffic counters.
	LineFills, WriteBursts uint64
	// Quads records the chip shape for peak annotations.
	Quads int
}

// Utilization computes the report for the first elapsed cycles; pass the
// machine's final cycle count.
func (c *Chip) Utilization(elapsed uint64) Utilization {
	u := Utilization{Elapsed: elapsed, Quads: c.Cfg.Quads()}
	if elapsed == 0 {
		return u
	}
	u.BankBusyFrac = float64(c.Mem.BusyCycles()) / float64(elapsed*uint64(c.Cfg.MemBanks))
	var port uint64
	for q := 0; q < c.Cfg.Quads(); q++ {
		port += c.Data.PortBusy(q)
	}
	u.PortBusyFrac = float64(port) / float64(elapsed*uint64(c.Cfg.Quads()))
	var fpuOps uint64
	for _, f := range c.FPUs {
		fpuOps += f.Ops
	}
	u.FPUOpsPerCycle = float64(fpuOps) / float64(elapsed)
	var hits, misses uint64
	for _, d := range c.Data.Caches {
		hits += d.Hits
		misses += d.Misses
	}
	if hits+misses > 0 {
		u.DCacheHitRate = float64(hits) / float64(hits+misses)
	}
	u.LineFills = c.Mem.LineFills
	u.WriteBursts = c.Mem.WriteBursts
	return u
}

// String renders the report as a compact block.
func (u Utilization) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "over %d cycles:\n", u.Elapsed)
	fmt.Fprintf(&sb, "  memory banks %5.1f%% busy (%d fills, %d write bursts)\n",
		100*u.BankBusyFrac, u.LineFills, u.WriteBursts)
	fmt.Fprintf(&sb, "  cache ports  %5.1f%% busy, hit rate %.1f%%\n",
		100*u.PortBusyFrac, 100*u.DCacheHitRate)
	fmt.Fprintf(&sb, "  FPUs         %5.2f ops/cycle (peak %d)\n",
		u.FPUOpsPerCycle, 2*u.Quads)
	return sb.String()
}
