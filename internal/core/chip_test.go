package core

import (
	"strings"
	"testing"

	"cyclops/internal/arch"
	"cyclops/internal/isa"
)

func TestNewChipStructure(t *testing.T) {
	c, err := NewChip(arch.Default())
	if err != nil {
		t.Fatal(err)
	}
	if len(c.FPUs) != 32 {
		t.Errorf("FPUs = %d, want 32", len(c.FPUs))
	}
	if len(c.ICaches) != 16 {
		t.Errorf("ICaches = %d, want 16", len(c.ICaches))
	}
	if len(c.Data.Caches) != 32 {
		t.Errorf("D-caches = %d, want 32", len(c.Data.Caches))
	}
	if c.OffChip != nil {
		t.Error("off-chip memory built without configuration")
	}
	if c.UsableThreads() != 128 {
		t.Errorf("UsableThreads = %d", c.UsableThreads())
	}
}

func TestNewChipRejectsInvalidConfig(t *testing.T) {
	cfg := arch.Default()
	cfg.Threads = 0
	if _, err := NewChip(cfg); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestFPUAdderAndMultiplierAreIndependentPipes(t *testing.T) {
	var f FPU
	// An add and a multiply dispatched the same cycle both start at once.
	if s := f.Dispatch(10, isa.PipeAdd, 1); s != 10 {
		t.Errorf("add start = %d", s)
	}
	if s := f.Dispatch(10, isa.PipeMul, 1); s != 10 {
		t.Errorf("mul start = %d", s)
	}
	// A second add the same cycle waits one cycle (pipelined, 1/cycle).
	if s := f.Dispatch(10, isa.PipeAdd, 1); s != 11 {
		t.Errorf("second add start = %d, want 11", s)
	}
}

func TestFMAOccupiesBothPipes(t *testing.T) {
	var f FPU
	f.Dispatch(0, isa.PipeBoth, 1) // starts at 0
	// Adds and muls the same cycle are pushed back.
	if s := f.Dispatch(0, isa.PipeAdd, 1); s != 1 {
		t.Errorf("add behind FMA start = %d, want 1", s)
	}
	if s := f.Dispatch(0, isa.PipeMul, 1); s != 1 {
		t.Errorf("mul behind FMA start = %d, want 1", s)
	}
	// FMAs themselves complete one per cycle.
	if s := f.Dispatch(0, isa.PipeBoth, 1); s != 2 {
		t.Errorf("second FMA start = %d, want 2 (behind add+mul)", s)
	}
}

func TestDivideUnitIsNotPipelined(t *testing.T) {
	var f FPU
	f.Dispatch(0, isa.PipeDiv, 30)
	if s := f.Dispatch(1, isa.PipeDiv, 30); s != 30 {
		t.Errorf("second divide start = %d, want 30", s)
	}
	// The adder is unaffected by a busy divider.
	if s := f.Dispatch(1, isa.PipeAdd, 1); s != 1 {
		t.Errorf("add during divide start = %d, want 1", s)
	}
}

func TestFPUReset(t *testing.T) {
	var f FPU
	f.Dispatch(0, isa.PipeDiv, 56)
	f.Reset()
	if s := f.Dispatch(0, isa.PipeDiv, 56); s != 0 {
		t.Errorf("post-reset divide start = %d", s)
	}
}

func TestDisableQuad(t *testing.T) {
	c := MustNew(arch.Default())
	if err := c.DisableQuad(2); err != nil {
		t.Fatal(err)
	}
	if err := c.DisableQuad(2); err == nil {
		t.Error("double disable accepted")
	}
	if err := c.DisableQuad(99); err == nil {
		t.Error("bad quad accepted")
	}
	if c.ThreadUsable(8) || c.ThreadUsable(11) {
		t.Error("threads of a disabled quad still usable")
	}
	if !c.ThreadUsable(12) {
		t.Error("thread of a live quad unusable")
	}
	if c.UsableThreads() != 124 {
		t.Errorf("UsableThreads = %d, want 124", c.UsableThreads())
	}
	if !c.QuadDisabled(2) || c.QuadDisabled(3) {
		t.Error("QuadDisabled bookkeeping wrong")
	}
}

func TestLoadImageAndResetTiming(t *testing.T) {
	c := MustNew(arch.Default())
	if err := c.LoadImage(0x100, []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	w, err := c.Mem.Read32(0x100)
	if err != nil || w != 0x04030201 {
		t.Fatalf("image word = %#x, %v", w, err)
	}
	c.FPUs[0].Dispatch(0, isa.PipeDiv, 56)
	c.Barrier.Write(0, 1)
	c.ResetTiming()
	if c.Barrier.Read() != 0 {
		t.Error("ResetTiming left barrier bits")
	}
	if s := c.FPUs[0].Dispatch(0, isa.PipeDiv, 1); s != 0 {
		t.Error("ResetTiming left FPU busy")
	}
	// Memory contents survive.
	if w, _ := c.Mem.Read32(0x100); w != 0x04030201 {
		t.Error("ResetTiming wiped memory")
	}
}

func TestUtilizationReport(t *testing.T) {
	c := MustNew(arch.Default())
	// Drive some traffic through every resource class.
	c.Data.Load(0, 0x1000, 8, 0)
	c.Data.Load(50, 0x1000, 8, 0) // hit
	c.Data.Store(60, 0x2000, 8, 1)
	c.FPUs[0].Dispatch(0, isa.PipeBoth, 1)
	u := c.Utilization(1000)
	if u.Elapsed != 1000 || u.Quads != 32 {
		t.Errorf("report header wrong: %+v", u)
	}
	if u.BankBusyFrac <= 0 || u.BankBusyFrac > 1 {
		t.Errorf("bank fraction %v", u.BankBusyFrac)
	}
	if u.PortBusyFrac <= 0 {
		t.Error("port fraction zero despite traffic")
	}
	if u.DCacheHitRate <= 0 || u.DCacheHitRate >= 1 {
		t.Errorf("hit rate %v, want strictly between 0 and 1", u.DCacheHitRate)
	}
	if u.FPUOpsPerCycle <= 0 {
		t.Error("FPU ops missing")
	}
	s := u.String()
	for _, want := range []string{"memory banks", "cache ports", "FPUs", "peak 64"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
	// Zero elapsed is safe.
	if z := c.Utilization(0); z.BankBusyFrac != 0 {
		t.Error("zero-window report not zeroed")
	}
}
