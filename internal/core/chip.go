// Package core composes a Cyclops chip: the thread-unit topology, the
// quad-shared FPUs, the data cache system, the quad-pair instruction
// caches, the embedded memory banks, the wired-OR barrier network and the
// optional off-chip memory — Figure 1 of the paper as a data structure.
//
// The package owns structure and shared-resource timing. Instruction
// execution lives in internal/sim; the direct-execution timing runtime in
// internal/perf drives the same chip object, so both frontends contend for
// the identical resources.
package core

import (
	"fmt"

	"cyclops/internal/arch"
	"cyclops/internal/barrier"
	"cyclops/internal/cache"
	"cyclops/internal/isa"
	"cyclops/internal/mem"
	"cyclops/internal/obs"
)

// FPU is one quad's floating-point unit: an adder and a multiplier, each
// accepting one operation per cycle, and a non-pipelined divide/square-root
// unit. A floating-point multiply-add dispatches to adder and multiplier
// together and completes every cycle (Section 2).
type FPU struct {
	addFree, mulFree, divFree uint64
	Ops                       uint64
	// Busy accumulates pipe-occupancy cycles; Conflicts counts dispatches
	// that found their pipe busy and WaitCycles the delay they queued —
	// the per-FPU telemetry the observability layer exports.
	Busy, Conflicts, WaitCycles uint64
}

// Dispatch reserves the pipes needed by pipe for exec cycles, starting no
// earlier than now. It returns the cycle execution begins. The adder and
// multiplier are pipelined (busy 1 cycle per op regardless of exec); the
// divide/sqrt unit is not (busy for the whole exec).
func (f *FPU) Dispatch(now uint64, pipe isa.FPUPipe, exec int) uint64 {
	start := now
	occupancy := uint64(1)
	switch pipe {
	case isa.PipeAdd:
		if f.addFree > start {
			start = f.addFree
		}
		f.addFree = start + 1
	case isa.PipeMul:
		if f.mulFree > start {
			start = f.mulFree
		}
		f.mulFree = start + 1
	case isa.PipeBoth:
		if f.addFree > start {
			start = f.addFree
		}
		if f.mulFree > start {
			start = f.mulFree
		}
		f.addFree = start + 1
		f.mulFree = start + 1
		occupancy = 2
	case isa.PipeDiv:
		if f.divFree > start {
			start = f.divFree
		}
		f.divFree = start + uint64(exec)
		occupancy = uint64(exec)
	default:
		return now
	}
	f.Ops++
	if obs.Enabled {
		f.Busy += occupancy
		if start > now {
			f.Conflicts++
			f.WaitCycles += start - now
		}
	}
	return start
}

// Stats returns the FPU's telemetry for the observability layer.
func (f *FPU) Stats(id int) obs.ResourceStats {
	return obs.ResourceStats{
		Kind:       "fpu",
		ID:         id,
		Busy:       f.Busy,
		Grants:     f.Ops,
		Conflicts:  f.Conflicts,
		WaitCycles: f.WaitCycles,
	}
}

// Reset clears timing state.
func (f *FPU) Reset() { *f = FPU{} }

// Chip is a fully assembled Cyclops cell.
type Chip struct {
	Cfg     arch.Config
	Mem     *mem.Memory
	Data    *cache.System
	ICaches []*cache.ICache
	Fetch   []*cache.FetchPath
	FPUs    []*FPU
	Barrier *barrier.Wired
	OffChip *mem.OffChip

	disabledQuad []bool
}

// NewChip builds a chip for the configuration.
func NewChip(cfg arch.Config) (*Chip, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := mem.New(cfg)
	c := &Chip{
		Cfg:          cfg,
		Mem:          m,
		Data:         cache.NewSystem(cfg, m),
		ICaches:      make([]*cache.ICache, cfg.ICaches()),
		Fetch:        make([]*cache.FetchPath, cfg.ICaches()),
		FPUs:         make([]*FPU, cfg.Quads()),
		Barrier:      barrier.NewWired(cfg.Threads),
		OffChip:      mem.NewOffChip(cfg),
		disabledQuad: make([]bool, cfg.Quads()),
	}
	for i := range c.ICaches {
		c.ICaches[i] = cache.NewICache(cfg)
		c.Fetch[i] = &cache.FetchPath{IC: c.ICaches[i], Mem: m, ICHitCycles: 2}
	}
	for i := range c.FPUs {
		c.FPUs[i] = &FPU{}
	}
	return c, nil
}

// MustNew builds a chip from a configuration known to be valid.
func MustNew(cfg arch.Config) *Chip {
	c, err := NewChip(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// DisableQuad implements the Section 5 fault model for a broken FPU: the
// whole quad is taken out of service — its four thread units stop being
// schedulable and its data cache is bypassed. Computation continues on the
// remaining quads.
func (c *Chip) DisableQuad(q int) error {
	if q < 0 || q >= c.Cfg.Quads() {
		return fmt.Errorf("core: no quad %d", q)
	}
	if c.disabledQuad[q] {
		return fmt.Errorf("core: quad %d already disabled", q)
	}
	if !c.Data.DisableQuad(q) {
		return fmt.Errorf("core: cannot disable quad %d (last one standing?)", q)
	}
	c.disabledQuad[q] = true
	return nil
}

// QuadDisabled reports whether quad q is out of service.
func (c *Chip) QuadDisabled(q int) bool { return c.disabledQuad[q] }

// ThreadUsable reports whether thread unit tid can be scheduled (its quad
// is alive).
func (c *Chip) ThreadUsable(tid int) bool {
	return tid >= 0 && tid < c.Cfg.Threads && !c.disabledQuad[c.Cfg.QuadOf(tid)]
}

// UsableThreads counts schedulable thread units.
func (c *Chip) UsableThreads() int {
	n := 0
	for _, d := range c.disabledQuad {
		if !d {
			n += c.Cfg.ThreadsPerQuad
		}
	}
	return n
}

// ResetTiming clears all shared-resource timing (not memory contents or
// fault state) for back-to-back experiment runs.
func (c *Chip) ResetTiming() {
	c.Data.Reset()
	for _, f := range c.FPUs {
		f.Reset()
	}
	c.Barrier.Reset()
}

// ResourceStats collects the telemetry of every contended shared resource
// — quad cache ports, DRAM banks, quad FPUs — in a fixed deterministic
// order (cache ports, then banks, then FPUs, each by ID).
func (c *Chip) ResourceStats() []obs.ResourceStats {
	quads := c.Cfg.Quads()
	out := make([]obs.ResourceStats, 0, quads*2+c.Mem.Banks())
	for q := 0; q < quads; q++ {
		out = append(out, c.Data.PortStats(q))
	}
	for b := 0; b < c.Mem.Banks(); b++ {
		out = append(out, c.Mem.BankStats(b))
	}
	for q, f := range c.FPUs {
		out = append(out, f.Stats(q))
	}
	return out
}

// LoadImage copies a program image into embedded memory.
func (c *Chip) LoadImage(origin uint32, image []byte) error {
	return c.Mem.Write(origin, image)
}
