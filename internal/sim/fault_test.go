package sim

import (
	"fmt"
	"testing"

	"cyclops/internal/arch"
	"cyclops/internal/asm"
	"cyclops/internal/core"
	"cyclops/internal/obs"
)

// faultSrc loops loads and stores over a group-one effective address so
// every data access is pinned to one selectable quad cache.
func faultSrc(ea uint32) string {
	return fmt.Sprintf(`
	li   r8, %d
	li   r9, 200
loop:	lw   r10, 0(r8)
	add  r11, r11, r10
	sw   r11, 4(r8)
	addi r9, r9, -1
	bne  r9, r0, loop
	halt
`, ea)
}

// runFault assembles and runs faultSrc on thread 2, optionally disabling
// quad q first, and returns the machine for inspection.
func runFault(t *testing.T, ea uint32, disable int) *Machine {
	t.Helper()
	p, err := asm.Assemble(faultSrc(ea))
	if err != nil {
		t.Fatal(err)
	}
	chip := core.MustNew(arch.Default())
	if disable >= 0 {
		if err := chip.DisableQuad(disable); err != nil {
			t.Fatal(err)
		}
	}
	m := New(chip, nil)
	m.MaxCycles = 2_000_000
	if err := chip.LoadImage(p.Origin, p.Bytes); err != nil {
		t.Fatal(err)
	}
	if err := m.Start(2, p.Entry); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestDisableQuadStallAccounting pins the Section 5 fault model against
// the timing ledger on the instruction-level engine: disabling a quad
// redirects its cache traffic to the next live quad, and the redirected
// run's accounting keeps every ledger invariant — the per-reason buckets
// still sum to the stall total, and remote transit is still attributed
// to the hop kind of the memory-wait telemetry.
func TestDisableQuadStallAccounting(t *testing.T) {
	ea := arch.EA(arch.InterestGroup{Mode: arch.GroupOne, Sel: 3}, 0x2000)
	healthy := runFault(t, ea, -1)
	faulted := runFault(t, ea, 3)

	if c := healthy.Chip.Data.CacheFor(ea, 0); c != 3 {
		t.Fatalf("healthy chip resolves group-one(3) EA to cache %d", c)
	}
	if c := faulted.Chip.Data.CacheFor(ea, 0); c != 4 {
		t.Fatalf("faulted chip resolves group-one(3) EA to cache %d, want redirect to 4", c)
	}

	for name, m := range map[string]*Machine{"healthy": healthy, "faulted": faulted} {
		tu := m.TUs[2]
		if tu.Run == 0 || tu.Stall == 0 {
			t.Errorf("%s: run/stall = %d/%d, want both > 0", name, tu.Run, tu.Stall)
		}
		if !obs.Enabled {
			continue
		}
		if got := tu.Stalls.Total(); got != tu.Stall {
			t.Errorf("%s: reason buckets sum to %d, Stall = %d", name, got, tu.Stall)
		}
		// The serving cache is remote from quad 0 either way, so the
		// loads' switch transit must show up as hop waits.
		if tu.MemWaits[obs.MemWaitHop] == 0 {
			t.Errorf("%s: remote accesses recorded no hop waits (%v)", name, tu.MemWaits)
		}
	}

	// The redirected cache starts cold but the access class (remote) is
	// unchanged, so the two runs issue identical instruction counts.
	if healthy.TUs[2].Insts != faulted.TUs[2].Insts {
		t.Errorf("insts diverged: healthy %d, faulted %d", healthy.TUs[2].Insts, faulted.TUs[2].Insts)
	}
}

// TestDisableQuadRejectsStart pins that a thread in a disabled quad
// cannot be started and charges nothing to any ledger.
func TestDisableQuadRejectsStart(t *testing.T) {
	chip := core.MustNew(arch.Default())
	if err := chip.DisableQuad(3); err != nil {
		t.Fatal(err)
	}
	m := New(chip, nil)
	tid := 3 * chip.Cfg.ThreadsPerQuad
	if err := m.Start(tid, 0); err == nil {
		t.Fatalf("started thread %d in disabled quad 3", tid)
	}
	tu := m.TUs[tid]
	if tu.Run != 0 || tu.Stall != 0 || tu.Insts != 0 {
		t.Errorf("rejected start charged cycles: run=%d stall=%d insts=%d", tu.Run, tu.Stall, tu.Insts)
	}
}
