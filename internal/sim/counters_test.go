package sim

import (
	"bytes"
	"encoding/json"
	"testing"

	"cyclops/internal/arch"
	"cyclops/internal/asm"
	"cyclops/internal/core"
	"cyclops/internal/obs"
)

// retrySys blocks the first few syscalls the way the kernel's join path
// does, so tests can provoke SleepIdle charges without booting a kernel.
type retrySys struct{ left int }

func (s *retrySys) Syscall(m *Machine, tu *TU) SysResult {
	if s.left > 0 {
		s.left--
		return SysResult{Cost: 8, Retry: true}
	}
	return SysResult{Cost: 1}
}

// reasonSrc provokes a charge under every stall reason a single thread
// can produce: fetch, scoreboard, FPU structural, and syscall sleep.
const reasonSrc = `
_start:	la   r8, data
	lw   r9, 0(r8)
	add  r10, r9, r9	; scoreboard stall on the load
	fdiv r20, r16, r18
	fdiv r24, r16, r18	; divide unit still busy: FPU stall
	syscall			; retried by the stub kernel: sleep
	halt
data:	.word 42
`

func runCounting(t *testing.T, src string, sys Syscaller) *Machine {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	chip := core.MustNew(arch.Default())
	m := New(chip, sys)
	m.MaxCycles = 1_000_000
	if err := chip.LoadImage(p.Origin, p.Bytes); err != nil {
		t.Fatal(err)
	}
	if err := m.Start(2, p.Entry); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestStallReasonsSumToLegacyTotal is the accounting contract: the tagged
// buckets must sum to the untagged StallCycles for every thread unit, and
// each provoked reason must actually land in its bucket.
func TestStallReasonsSumToLegacyTotal(t *testing.T) {
	if !obs.Enabled {
		t.Skip("counters compiled out")
	}
	m := runCounting(t, reasonSrc, &retrySys{left: 3})
	var want obs.Breakdown
	for _, tu := range m.TUs {
		if got := tu.Stalls.Total(); got != tu.Stall {
			t.Errorf("TU %d: reasons sum to %d, Stall = %d (%v)", tu.ID, got, tu.Stall, tu.Stalls)
		}
		want.AddAll(tu.Stalls)
	}
	if got := m.TotalBreakdown(); got != want {
		t.Errorf("TotalBreakdown = %v, per-TU sum = %v", got, want)
	}
	b := m.TotalBreakdown()
	for _, r := range []obs.StallReason{obs.DepStall, obs.FPUStall, obs.ICacheStall, obs.SleepIdle} {
		if b[r] == 0 {
			t.Errorf("%v: no cycles charged (breakdown %v)", r, b)
		}
	}
	if b[obs.BarrierStall] != 0 {
		t.Errorf("BarrierStall charged %d cycles with no barrier in the program", b[obs.BarrierStall])
	}
	if b[obs.SleepIdle] != 3*8 {
		t.Errorf("SleepIdle = %d cycles, want 3 retries x 8", b[obs.SleepIdle])
	}
}

// TestSnapshotDeterministicJSON renders the stats snapshot twice from two
// identical runs: the exported bytes must match exactly, and the
// aggregates must equal the per-thread sums.
func TestSnapshotDeterministicJSON(t *testing.T) {
	if !obs.Enabled {
		t.Skip("counters compiled out")
	}
	render := func() ([]byte, *Machine) {
		m := runCounting(t, reasonSrc, &retrySys{left: 3})
		var buf bytes.Buffer
		if err := m.Snapshot().WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), m
	}
	a, m := render()
	b, _ := render()
	if !bytes.Equal(a, b) {
		t.Fatalf("snapshot JSON not deterministic:\n%s\n---\n%s", a, b)
	}
	s := m.Snapshot()
	var run, stall uint64
	for _, th := range s.Threads {
		run += th.Run
		stall += th.Stall
	}
	if s.Run != run || s.Stall != stall {
		t.Errorf("aggregates (%d, %d) do not match thread sums (%d, %d)", s.Run, s.Stall, run, stall)
	}
	if s.Stalls.Total() != s.Stall {
		t.Errorf("snapshot breakdown sums to %d, Stall = %d", s.Stalls.Total(), s.Stall)
	}
	if len(s.Resources) == 0 {
		t.Error("snapshot carries no resource telemetry")
	}
}

// TestChromeTraceSchema checks the exported trace against the Chrome
// trace-event format: a traceEvents array of thread-name metadata and
// complete ("X") slices with the required keys, identical across runs.
func TestChromeTraceSchema(t *testing.T) {
	render := func() []byte {
		p, err := asm.Assemble(reasonSrc)
		if err != nil {
			t.Fatal(err)
		}
		chip := core.MustNew(arch.Default())
		m := New(chip, &retrySys{left: 3})
		m.MaxCycles = 1_000_000
		m.Trace = NewTraceBuffer(1024)
		chip.LoadImage(p.Origin, p.Bytes)
		m.Start(2, p.Entry)
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := m.ChromeTrace(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a := render()
	if b := render(); !bytes.Equal(a, b) {
		t.Fatal("trace output not deterministic across identical runs")
	}

	var doc struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(a, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	var meta, slices, counters int
	for i, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		switch ph {
		case "M":
			meta++
			if ev["name"] != "thread_name" {
				t.Errorf("event %d: metadata name = %v", i, ev["name"])
			}
		case "X":
			slices++
			for _, key := range []string{"name", "ts", "dur", "pid", "tid"} {
				if _, ok := ev[key]; !ok {
					t.Errorf("event %d: complete event missing %q: %v", i, key, ev)
					break
				}
			}
			if dur, _ := ev["dur"].(float64); dur < 1 {
				t.Errorf("event %d: dur = %v, want >= 1", i, ev["dur"])
			}
		case "C":
			counters++
			if ev["name"] != "memwait" {
				t.Errorf("event %d: counter name = %v", i, ev["name"])
			}
			args, ok := ev["args"].(map[string]interface{})
			if !ok {
				t.Errorf("event %d: counter missing args: %v", i, ev)
				break
			}
			for _, kind := range obs.MemWaitNames() {
				if _, ok := args[kind].(float64); !ok {
					t.Errorf("event %d: counter series %q is not numeric: %v", i, kind, args[kind])
				}
			}
		default:
			t.Errorf("event %d: unexpected phase %q", i, ph)
		}
	}
	if meta == 0 || slices == 0 {
		t.Errorf("trace has %d metadata and %d slice events, want both > 0", meta, slices)
	}
	// One memwait counter per traced unit when accounting is compiled in.
	if obs.Enabled && counters != meta {
		t.Errorf("trace has %d counter events for %d traced units", counters, meta)
	}
}

// TestChromeTraceRequiresBuffer pins the error path.
func TestChromeTraceRequiresBuffer(t *testing.T) {
	m := New(core.MustNew(arch.Default()), nil)
	if err := m.ChromeTrace(&bytes.Buffer{}); err == nil {
		t.Error("ChromeTrace with no buffer succeeded")
	}
}
