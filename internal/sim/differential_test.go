package sim

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"cyclops/internal/arch"
	"cyclops/internal/asm"
	"cyclops/internal/core"
	"cyclops/internal/timing"
)

// The differential harness: the same program runs to completion on every
// engine — under the same issue policy and latency model — and
// everything observable: the run error, the statistics snapshot, and
// each unit's final PC, state and register file, must match
// byte-for-byte. The legacy interpreter is the oracle; the decoded and
// block engines must be indistinguishable from it.

// diffScenario is one (issue policy, latency model) point a differential
// case runs under.
type diffScenario struct {
	pol Policy
	lat timing.LatencyModel
}

func (s diffScenario) String() string {
	return s.pol.String() + "@" + s.lat.String()
}

// diffDefault is the seed behavior: fine-grained issue at Table 2.
func diffDefault() diffScenario {
	return diffScenario{pol: timing.FineGrain{}, lat: timing.DefaultLatencies()}
}

// diffLatencies are the latency points differential cases draw from:
// Table 2, slow misses, slow FPU, and a fast-hit/slow-burst point.
func diffLatencies() []timing.LatencyModel {
	pts := make([]timing.LatencyModel, 4)
	for i := range pts {
		pts[i] = timing.DefaultLatencies()
	}
	pts[1].LocalMiss, pts[1].RemoteMiss = 48, 72
	pts[2].FPU, pts[2].FMA = 10, 18
	pts[3].Load, pts[3].Burst = 3, 24
	return pts
}

// scenarioFor derives a scenario from two draws in [0, 255]: the policy
// family and penalty from polDraw, the latency point from latDraw. Both
// the seeded corpus and the fuzzer route through this, so every engine
// comparison exercises a deterministic (policy, latency) pair.
func scenarioFor(polDraw, latDraw int) diffScenario {
	pen := uint64(polDraw>>2)%16 + 1
	var pol Policy
	switch polDraw % 3 {
	case 0:
		pol = timing.FineGrain{}
	case 1:
		pol = timing.Blocked{Pen: pen}
	case 2:
		pol = timing.SwitchOnMiss{Pen: pen}
	}
	lats := diffLatencies()
	return diffScenario{pol: pol, lat: lats[latDraw%len(lats)]}
}

// diffRun assembles src and runs it on engine e under scenario sc with a
// tight cycle budget (random programs may loop forever; the identical
// cycle-limit error is then part of the compared state).
func diffRun(src string, e Engine, sc diffScenario) (*Machine, error) {
	p, err := asm.Assemble(src)
	if err != nil {
		return nil, err
	}
	chip := core.MustNew(sc.lat.Apply(arch.Default()))
	m := New(chip, nil)
	m.SetEngine(e)
	m.SetPolicy(sc.pol)
	m.MaxCycles = 50_000
	if err := chip.LoadImage(p.Origin, p.Bytes); err != nil {
		return nil, err
	}
	if err := m.Start(2, p.Entry); err != nil {
		return nil, err
	}
	return m, m.Run()
}

// diffState flattens a finished machine into a comparable string: run
// error, deterministic snapshot, and per-unit architectural state.
func diffState(m *Machine, err error) string {
	var sb strings.Builder
	if err != nil {
		fmt.Fprintf(&sb, "err=%v\n", err)
	}
	if m == nil {
		return sb.String()
	}
	if serr := m.Snapshot().WriteJSON(&sb); serr != nil {
		fmt.Fprintf(&sb, "snapshot-error=%v\n", serr)
	}
	for _, tu := range m.TUs {
		if tu.State == Idle && tu.Insts == 0 {
			continue
		}
		fmt.Fprintf(&sb, "tu%d state=%d pc=%#x insts=%d regs=%v\n",
			tu.ID, tu.State, tu.PC, tu.Insts, tu.Regs)
	}
	return sb.String()
}

// diffCompare runs src on every engine under scenario sc and fails the
// test on the first divergence from the legacy oracle.
func diffCompare(t *testing.T, name, src string, sc diffScenario) {
	t.Helper()
	ref, refErr := diffRun(src, EngineLegacy, sc)
	want := diffState(ref, refErr)
	for _, e := range []Engine{EngineDecoded, EngineBlock} {
		m, err := diffRun(src, e, sc)
		if got := diffState(m, err); got != want {
			t.Fatalf("%s (%s): %s engine diverges from legacy\nprogram:\n%s\n--- legacy ---\n%s--- %s ---\n%s",
				name, sc, e, src, want, e, got)
		}
	}
}

// randomProgram emits a short pseudo-random but valid program: ALU ops
// over r8..r15, conditional branches between real labels (mostly
// forward, so most programs terminate; the rest hit the cycle limit
// identically on every engine), loads and stores through a data window
// — and through small raw addresses, which smashes program text and
// exercises compiled-code invalidation — plus the occasional jal or
// kernel-less syscall trap.
func randomProgram(rng *rand.Rand) string {
	n := 5 + rng.Intn(36)
	nlabels := 1 + rng.Intn(4)
	labelAt := map[int]int{}
	for placed := 0; placed < nlabels; {
		p := rng.Intn(n)
		if _, dup := labelAt[p]; !dup {
			labelAt[p] = placed
			placed++
		}
	}
	reg := func() int { return 8 + rng.Intn(8) }
	var sb strings.Builder
	sb.WriteString("_start:\tla r16, data\n")
	for i := 0; i < n; i++ {
		if l, ok := labelAt[i]; ok {
			fmt.Fprintf(&sb, "L%d:", l)
		}
		switch rng.Intn(16) {
		case 0, 1, 2:
			ops := []string{"add", "sub", "and", "or", "xor", "nor", "slt", "sltu", "sll", "srl", "sra"}
			fmt.Fprintf(&sb, "\t%s r%d, r%d, r%d\n", ops[rng.Intn(len(ops))], reg(), reg(), reg())
		case 3, 4, 5:
			ops := []string{"addi", "andi", "ori", "xori", "slti"}
			fmt.Fprintf(&sb, "\t%s r%d, r%d, %d\n", ops[rng.Intn(len(ops))], reg(), reg(), rng.Intn(128)-64)
		case 6:
			fmt.Fprintf(&sb, "\t%s r%d, r%d, %d\n",
				[]string{"slli", "srli", "srai"}[rng.Intn(3)], reg(), reg(), rng.Intn(32))
		case 7:
			fmt.Fprintf(&sb, "\tlui r%d, %d\n", reg(), rng.Intn(1<<12))
		case 8:
			fmt.Fprintf(&sb, "\tmul r%d, r%d, r%d\n", reg(), reg(), reg())
		case 9, 10:
			fmt.Fprintf(&sb, "\tlw r%d, %d(r16)\n", reg(), 4*rng.Intn(16))
		case 11:
			fmt.Fprintf(&sb, "\tsw r%d, %d(r16)\n", reg(), 4*rng.Intn(16))
		case 12:
			// Store through a small raw address: usually lands in text.
			fmt.Fprintf(&sb, "\tsw r%d, %d(r0)\n", reg(), 4*rng.Intn(64))
		case 13, 14:
			ops := []string{"beq", "bne", "blt", "bge", "bltu", "bgeu"}
			fmt.Fprintf(&sb, "\t%s r%d, r%d, L%d\n", ops[rng.Intn(len(ops))], reg(), reg(), rng.Intn(nlabels))
		case 15:
			if rng.Intn(4) == 0 {
				sb.WriteString("\tsyscall\n") // no kernel: identical trap
			} else {
				fmt.Fprintf(&sb, "\tjal r%d, L%d\n", reg(), rng.Intn(nlabels))
			}
		}
	}
	sb.WriteString("\thalt\n")
	sb.WriteString("\t.align 64\ndata:\t.space 64\n")
	return sb.String()
}

// TestEngineDifferential cross-checks the engines on a fixed corpus of
// pseudo-random short programs (seeded, so failures reproduce), each
// under a random (policy, latency) scenario drawn from the same stream.
func TestEngineDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(2002))
	for i := 0; i < 150; i++ {
		src := randomProgram(rng)
		sc := scenarioFor(rng.Intn(256), rng.Intn(256))
		diffCompare(t, fmt.Sprintf("program #%d", i), src, sc)
	}
}

// FuzzEngineDifferential drives the same oracle from raw instruction
// words: every byte pattern — legal or not — must behave identically on
// every engine, including trap messages and trap timing.
func FuzzEngineDifferential(f *testing.F) {
	seed := func(src string) []byte {
		p, err := asm.Assemble(src)
		if err != nil {
			f.Fatal(err)
		}
		return p.Bytes
	}
	f.Add(seed(`
_start:	li r8, 40
loop:	addi r8, r8, -1
	add r9, r9, r8
	xor r10, r9, r8
	bne r8, r0, loop
	halt
`))
	f.Add(seed(`
_start:	la r16, d
	lw r8, 0(r16)
	sw r8, 4(r16)
	halt
d:	.word 7
	.space 4
`))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 || len(data) > 256 {
			t.Skip()
		}
		var sb strings.Builder
		sb.WriteString("_start:\n")
		for i := 0; i+4 <= len(data); i += 4 {
			fmt.Fprintf(&sb, "\t.word %d\n", binary.LittleEndian.Uint32(data[i:]))
		}
		sb.WriteString("\thalt\n")
		// The scenario derives from the input bytes, so the fuzzer also
		// explores the policy × latency plane and failures reproduce
		// from the corpus file alone.
		sc := scenarioFor(int(data[0]), int(data[len(data)-1]))
		diffCompare(t, "fuzz input", sb.String(), sc)
	})
}
