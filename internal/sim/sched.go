package sim

// eventQueue is a binary min-heap of running thread units keyed by
// tu.nextAt. The engine uses it to jump straight to the earliest pending
// issue cycle instead of scanning every active unit each cycle: Run pops
// the whole batch of units due at the minimum cycle, issues them in the
// rotating round-robin order, and pushes the survivors back with their
// new wakeup cycles.
//
// The heap is deliberately order-agnostic for ties — batch issue order is
// decided by Machine.sortBatch, which reproduces the legacy engine's
// positional rotation bit-for-bit.
type eventQueue struct {
	tus []*TU
}

func (q *eventQueue) Len() int { return len(q.tus) }

// min returns the unit with the earliest nextAt without removing it.
func (q *eventQueue) min() *TU { return q.tus[0] }

func (q *eventQueue) push(tu *TU) {
	q.tus = append(q.tus, tu)
	i := len(q.tus) - 1
	for i > 0 {
		p := (i - 1) / 2
		if q.tus[p].nextAt <= q.tus[i].nextAt {
			break
		}
		q.tus[p], q.tus[i] = q.tus[i], q.tus[p]
		i = p
	}
}

func (q *eventQueue) pop() *TU {
	top := q.tus[0]
	last := len(q.tus) - 1
	q.tus[0] = q.tus[last]
	q.tus[last] = nil
	q.tus = q.tus[:last]
	// Sift down.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		if l >= len(q.tus) {
			break
		}
		c := l
		if r < len(q.tus) && q.tus[r].nextAt < q.tus[l].nextAt {
			c = r
		}
		if q.tus[i].nextAt <= q.tus[c].nextAt {
			break
		}
		q.tus[i], q.tus[c] = q.tus[c], q.tus[i]
		i = c
	}
	return top
}
