package sim

import "cyclops/internal/timing"

// Policy is the thread-unit issue policy — fine-grained round-robin (the
// paper's design), blocked switch-on-stall, or hybrid switch-on-miss.
// The abstraction and its charge rules live in internal/timing, shared
// with the direct-execution runtime; this alias and the re-exports below
// let simulator callers select policies without importing timing.
// Policies are honored identically by all three engines: every penalty
// flows through the shared Ledger and the unit's resume time, both of
// which the engines already agree on by construction.
type Policy = timing.Policy

// ParsePolicy resolves a -policy flag value with its -switch-penalty.
func ParsePolicy(name string, penalty uint64) (Policy, error) {
	return timing.ParsePolicy(name, penalty)
}

// DefaultPolicy returns the process-wide policy New currently assigns.
func DefaultPolicy() Policy { return timing.DefaultPolicy() }

// SetDefaultPolicy changes the policy for subsequently built machines
// (both frontends) and returns the previous default, for defer-restore
// in tests. Existing machines are unaffected; concurrent sweep points
// with differing policies must use Machine.SetPolicy instead.
func SetDefaultPolicy(p Policy) Policy { return timing.SetDefaultPolicy(p) }

// SetPolicy selects this machine's issue policy. Must be called before
// any thread is started: the compiled trigger tables are installed per
// unit, and switching them mid-run would split one run's accounting
// across two policies.
func (m *Machine) SetPolicy(p Policy) {
	if len(m.active) > 0 {
		panic("sim: SetPolicy after Start")
	}
	if p == nil {
		p = timing.FineGrain{}
	}
	m.pol = p
	m.polInline = p.InlineOK()
	tab := p.Table()
	for _, tu := range m.TUs {
		tu.Pol = tab
	}
}

// Policy reports the machine's selected issue policy.
func (m *Machine) Policy() Policy { return m.pol }
