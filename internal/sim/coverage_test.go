package sim

import (
	"strings"
	"testing"

	"cyclops/internal/asm"
)

func TestSPRReads(t *testing.T) {
	src := `
	mfspr r8, 0		; tid
	mfspr r9, 1		; nthreads
	mfspr r10, 3		; cycle hi
	mfspr r11, 5		; memsize
	mfspr r12, 6		; quad
	la   r20, out
	sw   r8, 0(r20)
	sw   r9, 4(r20)
	sw   r10, 8(r20)
	sw   r11, 12(r20)
	sw   r12, 16(r20)
	sync
	halt
out:	.space 20
	`
	m := run(t, src)
	p, _ := asm.Assemble(src)
	o := p.Symbols["out"]
	if v := word(t, m, o); v != 2 {
		t.Errorf("tid = %d, want 2", v)
	}
	if v := word(t, m, o+4); v != 128 {
		t.Errorf("nthreads = %d", v)
	}
	if v := word(t, m, o+8); v != 0 {
		t.Errorf("cycle hi = %d early in a run", v)
	}
	if v := word(t, m, o+12); v != 8<<20 {
		t.Errorf("memsize = %d, want 8 MB", v)
	}
	if v := word(t, m, o+16); v != 0 {
		t.Errorf("quad of thread 2 = %d, want 0", v)
	}
	// Unknown SPR traps.
	if _, err := tryRun("mfspr r8, 7\nhalt"); err == nil {
		t.Error("mfspr of undefined SPR succeeded")
	}
}

func TestCallAndReturn(t *testing.T) {
	src := `
_start:	li   r8, 5
	call double
	call double
	la   r20, out
	sw   r8, 0(r20)
	halt
double:	add  r8, r8, r8
	ret
out:	.word 0
	`
	m := run(t, src)
	p, _ := asm.Assemble(src)
	if v := word(t, m, p.Symbols["out"]); v != 20 {
		t.Errorf("double twice = %d, want 20", v)
	}
}

func TestJalrComputedTarget(t *testing.T) {
	src := `
	la   r8, target
	jalr r9, 0(r8)
	halt			; skipped
target:	la   r20, out
	sw   r9, 0(r20)		; link = address after jalr
	halt
out:	.word 0
	`
	m := run(t, src)
	p, _ := asm.Assemble(src)
	link := word(t, m, p.Symbols["out"])
	// jalr is the program's third word (after the 2-word la).
	if link != p.Origin+12 {
		t.Errorf("link = %#x, want %#x", link, p.Origin+12)
	}
	// Unaligned indirect targets trap.
	if _, err := tryRun("li r8, 2\njalr r9, 0(r8)"); err == nil ||
		!strings.Contains(err.Error(), "unaligned") {
		t.Errorf("unaligned jalr: %v", err)
	}
}

func TestAllBranchConditions(t *testing.T) {
	// Each branch both taken and not taken; result accumulates a bitmask
	// of taken branches.
	src := `
	li   r8, 1
	li   r9, 2
	li   r10, -1
	li   r20, 0
	beq  r8, r8, t0
	b    n0
t0:	ori  r20, r20, 1
n0:	bne  r8, r9, t1
	b    n1
t1:	ori  r20, r20, 2
n1:	blt  r10, r8, t2	; signed: -1 < 1
	b    n2
t2:	ori  r20, r20, 4
n2:	bge  r8, r9, t3		; not taken
	b    n3
t3:	ori  r20, r20, 8
n3:	bltu r8, r10, t4	; unsigned: 1 < 0xffffffff
	b    n4
t4:	ori  r20, r20, 16
n4:	bgeu r10, r8, t5	; unsigned: 0xffffffff >= 1
	b    n5
t5:	ori  r20, r20, 32
n5:	la   r21, out
	sw   r20, 0(r21)
	halt
out:	.word 0
	`
	m := run(t, src)
	p, _ := asm.Assemble(src)
	if v := word(t, m, p.Symbols["out"]); v != 1|2|4|16|32 {
		t.Errorf("branch mask = %#b, want 0b110111", v)
	}
}

func TestFPRemainingOps(t *testing.T) {
	src := `
	la   r8, in
	ld   d16, 0(r8)		; -2.5
	fneg d18, d16		; 2.5
	fabs d20, d16		; 2.5
	fmov d22, d18
	fms  d24, d18, d20, d22	; 2.5*2.5 - 2.5 = 3.75
	fceq r9, d18, d20	; 1
	fcle r10, d16, d18	; 1
	fcle r11, d18, d16	; 0
	la   r12, out
	sd   d24, 0(r12)
	sw   r9, 8(r12)
	sw   r10, 12(r12)
	sw   r11, 16(r12)
	halt
	.align 8
in:	.double -2.5
out:	.space 24
	`
	m := run(t, src)
	p, _ := asm.Assemble(src)
	o := p.Symbols["out"]
	bits, _ := m.Chip.Mem.Read64(o)
	if f := mathFloat64frombits(bits); f != 3.75 {
		t.Errorf("fms = %v, want 3.75", f)
	}
	if word(t, m, o+8) != 1 || word(t, m, o+12) != 1 || word(t, m, o+16) != 0 {
		t.Error("fp compares wrong")
	}
}

func TestRunningThreadsAndTotals(t *testing.T) {
	m, err := tryRun("li r8, 1\nhalt")
	if err != nil {
		t.Fatal(err)
	}
	if m.RunningThreads() != 0 {
		t.Errorf("RunningThreads after halt = %d", m.RunningThreads())
	}
	if m.TotalInsts() < 2 {
		t.Errorf("TotalInsts = %d", m.TotalInsts())
	}
	if m.Cycle() == 0 {
		t.Error("Cycle() = 0 after a run")
	}
}

func TestPIBCrossingLoop(t *testing.T) {
	// A loop longer than the 16-instruction PIB refills every iteration,
	// paying fetch bubbles; a tight loop does not.
	long := "loop:\n" + strings.Repeat("\tadd r8, r8, r9\n", 20) +
		"\taddi r10, r10, -1\n\tbne r10, r0, loop\n\thalt"
	short := "loop:\n" + strings.Repeat("\tadd r8, r8, r9\n", 4) +
		"\taddi r10, r10, -1\n\tbne r10, r0, loop\n\thalt"
	prep := "\tli r10, 200\n"
	mLong := run(t, prep+long)
	mShort := run(t, prep+short)
	perInstLong := float64(mLong.TUs[2].Stall) / float64(mLong.TUs[2].Insts)
	perInstShort := float64(mShort.TUs[2].Stall) / float64(mShort.TUs[2].Insts)
	if perInstLong <= perInstShort {
		t.Errorf("PIB-crossing loop stalls %.3f/inst, tight loop %.3f/inst; expected more",
			perInstLong, perInstShort)
	}
}

func TestSetRegIgnoresR0(t *testing.T) {
	m := run(t, `
	li  r8, 7
	add r0, r8, r8		; write to the zero register
	la  r20, out
	sw  r0, 0(r20)
	halt
out:	.word 1
	`)
	p, _ := asm.Assemble("nop\nout:.word 1")
	_ = p
	pp, _ := asm.Assemble(`
	li  r8, 7
	add r0, r8, r8
	la  r20, out
	sw  r0, 0(r20)
	halt
out:	.word 1
	`)
	if v := word(t, m, pp.Symbols["out"]); v != 0 {
		t.Errorf("r0 = %d after write, want 0", v)
	}
}
