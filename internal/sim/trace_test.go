package sim

import (
	"strings"
	"testing"

	"cyclops/internal/arch"
	"cyclops/internal/asm"
	"cyclops/internal/core"
)

func tracedRun(t *testing.T, src string, buf *TraceBuffer) *Machine {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	chip := core.MustNew(arch.Default())
	m := New(chip, nil)
	m.MaxCycles = 100_000
	m.Trace = buf
	chip.LoadImage(p.Origin, p.Bytes)
	m.Start(2, p.Entry)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestTraceRecordsIssues(t *testing.T) {
	buf := NewTraceBuffer(64)
	tracedRun(t, `
	li  r8, 3
	add r9, r8, r8
	halt
	`, buf)
	if buf.Len() != 3 {
		t.Fatalf("trace holds %d entries, want 3", buf.Len())
	}
	dump := buf.Dump()
	for _, want := range []string{"addi r8, r0, 3", "add r9, r8, r8", "halt", "t002"} {
		if !strings.Contains(dump, want) {
			t.Errorf("dump missing %q:\n%s", want, dump)
		}
	}
	// Cycles are nondecreasing.
	es := buf.Entries()
	for i := 1; i < len(es); i++ {
		if es[i].Cycle < es[i-1].Cycle {
			t.Error("trace out of order")
		}
	}
}

func TestTraceRingWraps(t *testing.T) {
	buf := NewTraceBuffer(8)
	tracedRun(t, `
	li   r10, 20
loop:	addi r10, r10, -1
	bne  r10, r0, loop
	halt
	`, buf)
	if buf.Len() != 8 {
		t.Fatalf("ring holds %d, want capacity 8", buf.Len())
	}
	es := buf.Entries()
	// The last entry must be the halt; the oldest entries were dropped.
	last := es[len(es)-1]
	if !strings.Contains(last.String(), "halt") {
		t.Errorf("last traced instruction = %s, want halt", last)
	}
}

func TestTraceFilter(t *testing.T) {
	buf := NewTraceBuffer(128)
	buf.Filter = 3 // a unit that never runs in this test
	tracedRun(t, "li r8, 1\nhalt", buf)
	if buf.Len() != 0 {
		t.Errorf("filtered trace recorded %d entries", buf.Len())
	}
}

func TestTraceBufferMinCapacity(t *testing.T) {
	buf := NewTraceBuffer(0)
	buf.record(TraceEntry{TID: 1})
	if buf.Len() != 1 {
		t.Error("zero-capacity buffer unusable")
	}
}
