package sim

import (
	"strings"
	"testing"

	"cyclops/internal/arch"
	"cyclops/internal/asm"
	"cyclops/internal/core"
)

func TestParseEngine(t *testing.T) {
	for _, e := range Engines() {
		got, err := ParseEngine(e.String())
		if err != nil || got != e {
			t.Errorf("ParseEngine(%q) = %v, %v", e.String(), got, err)
		}
	}
	got, err := ParseEngine("turbo")
	if err == nil {
		t.Fatal("ParseEngine(turbo): no error")
	}
	if !strings.Contains(err.Error(), `"turbo"`) || !strings.Contains(err.Error(), "block, decoded or legacy") {
		t.Errorf("error = %v, want the flag spelling hint", err)
	}
	if got != EngineBlock {
		t.Errorf("error case returns %v, want the EngineBlock zero value", got)
	}
}

func TestEngineString(t *testing.T) {
	if got := Engine(200).String(); got != "Engine(200)" {
		t.Errorf("unknown engine String = %q", got)
	}
}

func TestSetEngineAfterStartPanics(t *testing.T) {
	p, err := asm.Assemble("_start:\thalt\n")
	if err != nil {
		t.Fatal(err)
	}
	chip := core.MustNew(arch.Default())
	m := New(chip, nil)
	if err := chip.LoadImage(p.Origin, p.Bytes); err != nil {
		t.Fatal(err)
	}
	if err := m.Start(1, p.Entry); err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("SetEngine on a started machine did not panic")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "SetEngine after Start") {
			t.Fatalf("panic = %v, want SetEngine after Start", r)
		}
	}()
	m.SetEngine(EngineLegacy)
}

func TestSetDefaultEngine(t *testing.T) {
	prev := SetDefaultEngine(EngineLegacy)
	defer SetDefaultEngine(prev)
	if got := DefaultEngine(); got != EngineLegacy {
		t.Errorf("default = %v after set, want legacy", got)
	}
	m := New(core.MustNew(arch.Default()), nil)
	if got := m.Engine(); got != EngineLegacy {
		t.Errorf("new machine engine = %v, want the process default legacy", got)
	}
	m.SetEngine(EngineDecoded)
	if got := m.Engine(); got != EngineDecoded {
		t.Errorf("per-machine engine = %v, want decoded", got)
	}
}
