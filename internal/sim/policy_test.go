package sim

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"cyclops/internal/arch"
	"cyclops/internal/asm"
	"cyclops/internal/core"
	"cyclops/internal/timing"
)

// polCycles runs src single-threaded on engine e under pol and returns
// the finished machine's cycle count. The programs used here terminate,
// so any run error is a test bug.
func polCycles(t *testing.T, src string, e Engine, pol Policy) uint64 {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	chip := core.MustNew(arch.Default())
	m := New(chip, nil)
	m.SetEngine(e)
	m.SetPolicy(pol)
	m.MaxCycles = 5_000_000
	if err := chip.LoadImage(p.Origin, p.Bytes); err != nil {
		t.Fatal(err)
	}
	if err := m.Start(1, p.Entry); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatalf("%s under %s: %v", e, pol, err)
	}
	return m.Snapshot().Cycles
}

// polPrograms are small terminating single-thread workloads covering
// every switch trigger: scoreboard dependences on load results, FPU
// pipeline latency chains, store backpressure bursts, and enough code
// footprint to miss the I-cache at least on the first fetch.
func polPrograms() map[string]string {
	return map[string]string{
		"load-chain": `
_start:	la r16, data
	li r8, 200
loop:	lw r9, 0(r16)
	add r10, r10, r9
	lw r9, 4(r16)
	add r10, r10, r9
	addi r8, r8, -1
	bne r8, r0, loop
	halt
	.align 64
data:	.word 3
	.word 5
`,
		"fp-chain": `
_start:	la r16, data
	ld r8, 0(r16)
	li r10, 150
loop:	fmul r8, r8, r8
	fadd r8, r8, r8
	addi r10, r10, -1
	bne r10, r0, loop
	halt
	.align 64
data:	.double 1.0000001
`,
		"store-burst": `
_start:	la r16, data
	li r8, 400
loop:	sw r8, 0(r16)
	sw r8, 4(r16)
	sw r8, 8(r16)
	sw r8, 12(r16)
	addi r8, r8, -1
	bne r8, r0, loop
	halt
	.align 64
data:	.space 64
`,
	}
}

// TestPolicyConvergenceAtZeroPenalty pins the property that makes the
// policy abstraction safe to leave enabled everywhere: with a zero
// penalty, blocked and switch-on-miss are bit-identical to fine-grained
// on every engine — same cycles, same stall breakdowns, same registers.
func TestPolicyConvergenceAtZeroPenalty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	srcs := polPrograms()
	for i := 0; i < 10; i++ {
		srcs[fmt.Sprintf("random #%d", i)] = randomProgram(rng)
	}
	for name, src := range srcs {
		for _, e := range Engines() {
			fine := diffScenario{pol: timing.FineGrain{}, lat: timing.DefaultLatencies()}
			ref, refErr := diffRun(src, e, fine)
			want := diffState(ref, refErr)
			for _, pol := range []Policy{timing.Blocked{Pen: 0}, timing.SwitchOnMiss{Pen: 0}} {
				sc := diffScenario{pol: pol, lat: timing.DefaultLatencies()}
				m, err := diffRun(src, e, sc)
				if got := diffState(m, err); got != want {
					t.Fatalf("%s on %s: %s at penalty 0 differs from fine-grained\n--- fine ---\n%s--- %s ---\n%s",
						name, e, pol, want, pol, got)
				}
			}
		}
	}
}

// TestBlockedDominatesFineSingleThread pins the monotonicity property:
// on a single-thread run a switching policy can only add delay — every
// penalty pushes the one thread's resume time later and no contention
// relief exists to win it back — so blocked and switch-on-miss cycle
// counts dominate fine-grained. (Multi-thread runs are deliberately NOT
// covered: switching changes interleaving and can reduce port
// contention, as the matrix experiment shows.)
func TestBlockedDominatesFineSingleThread(t *testing.T) {
	for name, src := range polPrograms() {
		for _, e := range Engines() {
			fine := polCycles(t, src, e, timing.FineGrain{})
			for _, pol := range []Policy{timing.Blocked{Pen: 8}, timing.SwitchOnMiss{Pen: 8}} {
				got := polCycles(t, src, e, pol)
				if got < fine {
					t.Errorf("%s on %s: %s = %d cycles, below fine-grained %d",
						name, e, pol, got, fine)
				}
			}
			// Blocked switches on a superset of switch-on-miss's triggers
			// at equal penalty, so it also dominates the hybrid.
			miss := polCycles(t, src, e, timing.SwitchOnMiss{Pen: 8})
			blocked := polCycles(t, src, e, timing.Blocked{Pen: 8})
			if blocked < miss {
				t.Errorf("%s on %s: blocked/8 = %d cycles, below switchmiss/8 %d",
					name, e, blocked, miss)
			}
		}
	}
}

// noInlinePolicy is fine-grained timing with InlineOK reporting false:
// it forces the block engine onto its conservative one-issue-per-dispatch
// path without changing any charge, so diffing it against the legacy
// oracle proves the inline-continuation fast path is an optimization,
// not load-bearing semantics.
type noInlinePolicy struct{ timing.FineGrain }

func (noInlinePolicy) InlineOK() bool { return false }
func (noInlinePolicy) String() string { return "fine/noinline" }

// TestInlineOKConsultedByBlockEngine runs the corpus with inline
// continuation vetoed by the policy: the block engine must still match
// the legacy oracle exactly, and must match its own fast-path output.
func TestInlineOKConsultedByBlockEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	srcs := polPrograms()
	for i := 0; i < 10; i++ {
		srcs[fmt.Sprintf("random #%d", i)] = randomProgram(rng)
	}
	for name, src := range srcs {
		slow := diffScenario{pol: noInlinePolicy{}, lat: timing.DefaultLatencies()}
		fast := diffScenario{pol: timing.FineGrain{}, lat: timing.DefaultLatencies()}
		ref, refErr := diffRun(src, EngineLegacy, slow)
		want := diffState(ref, refErr)
		m, err := diffRun(src, EngineBlock, slow)
		if got := diffState(m, err); got != want {
			t.Fatalf("%s: block engine with inlining vetoed diverges from legacy\n--- legacy ---\n%s--- block ---\n%s",
				name, want, got)
		}
		m, err = diffRun(src, EngineBlock, fast)
		if got := diffState(m, err); got != want {
			t.Fatalf("%s: block engine fast path diverges from its no-inline path\n--- no-inline ---\n%s--- fast ---\n%s",
				name, want, got)
		}
	}
}

func TestSetPolicyAfterStartPanics(t *testing.T) {
	p, err := asm.Assemble("_start:\thalt\n")
	if err != nil {
		t.Fatal(err)
	}
	chip := core.MustNew(arch.Default())
	m := New(chip, nil)
	if err := chip.LoadImage(p.Origin, p.Bytes); err != nil {
		t.Fatal(err)
	}
	if err := m.Start(1, p.Entry); err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("SetPolicy on a started machine did not panic")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "SetPolicy after Start") {
			t.Fatalf("panic = %v, want SetPolicy after Start", r)
		}
	}()
	m.SetPolicy(timing.Blocked{Pen: 8})
}

func TestSetPolicyDefaults(t *testing.T) {
	prev := SetDefaultPolicy(timing.SwitchOnMiss{Pen: 4})
	defer SetDefaultPolicy(prev)
	m := New(core.MustNew(arch.Default()), nil)
	if got := m.Policy().String(); got != "switchmiss/4" {
		t.Errorf("new machine policy = %s, want the process default switchmiss/4", got)
	}
	// nil resets to fine-grained explicitly.
	m.SetPolicy(nil)
	if got := m.Policy().String(); got != "fine" {
		t.Errorf("SetPolicy(nil) = %s, want fine", got)
	}
	for _, tu := range m.TUs {
		if tu.Pol != (timing.PolicyTable{}) {
			t.Fatalf("tu%d trigger table %+v, want zero after reset", tu.ID, tu.Pol)
		}
	}
}
