package sim

import (
	"testing"

	"cyclops/internal/asm"
)

// smcSrc executes the instruction at patch: (so it lands in the decode
// cache), overwrites it with a store, jumps back, and records what the
// second pass computed. The decode cache must notice the store into
// cached text — a stale decode would write 7 instead of 42.
const smcSrc = `
	la   r20, out
	la   r21, patch
	la   r22, tmpl
	li   r9, 0
patch:	addi r11, r0, 7		; executed twice; rewritten between passes
	bne  r9, r0, done
	li   r9, 1
	lw   r10, 0(r22)	; template word: "addi r11, r0, 42"
	sw   r10, 0(r21)	; store into text -> must flush the decode cache
	j    patch
done:	sw   r11, 0(r20)
	halt
tmpl:	addi r11, r0, 42
out:	.space 4
`

func smcOut(t *testing.T) uint32 {
	t.Helper()
	p, err := asm.Assemble(smcSrc)
	if err != nil {
		t.Fatal(err)
	}
	return p.Symbols["out"]
}

// TestSelfModifyingCode checks the decode cache's safety property on the
// default (cached, event-driven) engine.
func TestSelfModifyingCode(t *testing.T) {
	m := run(t, smcSrc)
	if m.decPages == nil {
		t.Fatal("decode cache was never populated (legacy path taken?)")
	}
	if got := word(t, m, smcOut(t)); got != 42 {
		t.Fatalf("out = %d, want 42 (stale decode executed)", got)
	}
}

// TestSelfModifyingCodeLegacy runs the same program through the seed
// interpreter loop, pinning the reference behaviour the cached engine
// must match.
func TestSelfModifyingCodeLegacy(t *testing.T) {
	LegacyEngine = true
	defer func() { LegacyEngine = false }()
	m := run(t, smcSrc)
	if m.decPages != nil {
		t.Fatal("legacy engine populated the decode cache")
	}
	if got := word(t, m, smcOut(t)); got != 42 {
		t.Fatalf("out = %d, want 42", got)
	}
}
