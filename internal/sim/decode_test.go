package sim

import (
	"testing"

	"cyclops/internal/asm"
)

// smcSrc executes the instruction at patch: (so it lands in the decode
// cache), overwrites it with a store, jumps back, and records what the
// second pass computed. The decode cache must notice the store into
// cached text — a stale decode would write 7 instead of 42.
const smcSrc = `
	la   r20, out
	la   r21, patch
	la   r22, tmpl
	li   r9, 0
patch:	addi r11, r0, 7		; executed twice; rewritten between passes
	bne  r9, r0, done
	li   r9, 1
	lw   r10, 0(r22)	; template word: "addi r11, r0, 42"
	sw   r10, 0(r21)	; store into text -> must flush the decode cache
	j    patch
done:	sw   r11, 0(r20)
	halt
tmpl:	addi r11, r0, 42
out:	.space 4
`

func smcOut(t *testing.T) uint32 {
	t.Helper()
	p, err := asm.Assemble(smcSrc)
	if err != nil {
		t.Fatal(err)
	}
	return p.Symbols["out"]
}

// TestSelfModifyingCode checks the WatchCode invalidation property on
// every engine: the legacy interpreter (which re-reads memory each issue
// and so is correct trivially — the pinned reference), the decoded
// engine (stale decode entries must flush), and the block engine (stale
// compiled blocks must flush and recompile).
func TestSelfModifyingCode(t *testing.T) {
	for _, e := range Engines() {
		t.Run(e.String(), func(t *testing.T) {
			m, err := tryRunEngine(smcSrc, e)
			if err != nil {
				t.Fatal(err)
			}
			switch e {
			case EngineLegacy:
				if m.decPages != nil {
					t.Fatal("legacy engine populated the decode cache")
				}
			case EngineDecoded:
				if m.decPages == nil {
					t.Fatal("decode cache was never populated (legacy path taken?)")
				}
			case EngineBlock:
				if m.blocks == nil {
					t.Fatal("block cache was never populated (wrong engine path taken?)")
				}
				if m.blockFlushes == 0 {
					t.Fatal("store into compiled text did not flush the block cache")
				}
			}
			if got := word(t, m, smcOut(t)); got != 42 {
				t.Fatalf("%s: out = %d, want 42 (stale code executed)", e, got)
			}
		})
	}
}
