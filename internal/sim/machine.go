// Package sim is the architecturally accurate instruction-level simulator
// of the Cyclops chip (Section 3.1 of the paper): it executes Cyclops
// instructions, modeling resource contention between instructions — the
// quad-shared FPU pipes, the cache ports, the memory banks — and charges
// the Table 2 execution and latency cycles.
//
// Each thread unit is a simple single-issue in-order processor with a
// register scoreboard: an instruction issues when its source operands are
// ready and its shared resource is granted; completion may be out of
// order. If two threads contend for a shared resource in the same cycle,
// the winner rotates round-robin to prevent starvation (Section 2).
package sim

import (
	"fmt"

	"cyclops/internal/core"
)

// State is a thread unit's scheduling state.
type State uint8

const (
	// Idle: the unit has not been started.
	Idle State = iota
	// Running: the unit is executing instructions.
	Running
	// Halted: the unit executed halt (or its software thread exited).
	Halted
)

// TU is one thread unit: 64 single-precision registers (pairable for
// double precision), a program counter and a sequencer.
type TU struct {
	ID   int
	Quad int

	Regs  [64]uint32
	PC    uint32
	State State

	// ready[r] is the cycle at which register r's value is available.
	ready [64]uint64
	// nextAt is the next cycle the unit will attempt to issue.
	nextAt uint64

	pib pibState

	// RunCycles counts cycles spent busy computing; StallCycles counts
	// cycles stalled on dependences, shared resources or fetch — the
	// quantities Figure 7 reports.
	RunCycles, StallCycles uint64
	// StartCycle and EndCycle bound the unit's active lifetime.
	StartCycle, EndCycle uint64
	// Insts counts issued instructions.
	Insts uint64
}

// pibState wraps the per-thread prefetch instruction buffer.
type pibState struct {
	base  uint32
	words uint32
}

const pibEmpty = ^uint32(0)

func (p *pibState) contains(addr uint32) bool {
	return p.base != pibEmpty && addr >= p.base && addr < p.base+p.words
}

// FRegOK reports whether r can name a double-precision pair.
func FRegOK(r uint8) bool { return r%2 == 0 && r < 63 }

// Syscaller handles syscall instructions. The kernel package implements
// it; sim stays independent of kernel policy.
type Syscaller interface {
	// Syscall is invoked when tu executes a syscall instruction at
	// m.Cycle(). The handler may read and write tu's registers and the
	// machine's memory, start threads, or halt tu.
	Syscall(m *Machine, tu *TU) SysResult
}

// SysResult tells the engine how to resume after a syscall.
type SysResult struct {
	// Cost is the cycles the syscall occupies the thread (min 1).
	Cost uint64
	// Retry re-executes the same syscall after Cost cycles without
	// advancing the PC (used for blocking calls such as join).
	Retry bool
	// Halt stops the thread.
	Halt bool
}

// Machine drives a chip cycle by cycle.
type Machine struct {
	Chip   *core.Chip
	TUs    []*TU
	Kernel Syscaller

	cycle  uint64
	active []*TU
	rr     int

	// MaxCycles aborts runaway programs; 0 means no limit.
	MaxCycles uint64

	// Trace, when non-nil, records every issued instruction (see
	// TraceBuffer); it costs a few percent of simulation speed.
	Trace *TraceBuffer

	trap error
}

// New builds a machine over a chip. Kernel may be nil for programs that
// make no syscalls.
func New(chip *core.Chip, kernel Syscaller) *Machine {
	m := &Machine{Chip: chip, Kernel: kernel}
	pibWords := uint32(chip.Cfg.PIBEntries * 4)
	for i := 0; i < chip.Cfg.Threads; i++ {
		m.TUs = append(m.TUs, &TU{
			ID:   i,
			Quad: chip.Cfg.QuadOf(i),
			pib:  pibState{base: pibEmpty, words: pibWords},
		})
	}
	return m
}

// Cycle returns the current simulation cycle.
func (m *Machine) Cycle() uint64 { return m.cycle }

// Start begins execution of thread unit tid at pc, from the current cycle.
// It returns an error if the unit is unusable (disabled quad) or already
// running.
func (m *Machine) Start(tid int, pc uint32) error {
	if tid < 0 || tid >= len(m.TUs) {
		return fmt.Errorf("sim: no thread unit %d", tid)
	}
	if !m.Chip.ThreadUsable(tid) {
		return fmt.Errorf("sim: thread unit %d is in a disabled quad", tid)
	}
	tu := m.TUs[tid]
	if tu.State == Running {
		return fmt.Errorf("sim: thread unit %d already running", tid)
	}
	tu.State = Running
	tu.PC = pc
	tu.nextAt = m.cycle
	tu.StartCycle = m.cycle
	tu.pib.base = pibEmpty
	for r := range tu.ready {
		tu.ready[r] = 0
	}
	m.active = append(m.active, tu)
	return nil
}

// Trap aborts the run with a diagnostic (used by the kernel for fatal
// software conditions as well as by the engine for hardware traps).
func (m *Machine) Trap(format string, args ...interface{}) {
	if m.trap == nil {
		m.trap = fmt.Errorf(format, args...)
	}
}

// Run executes until every started thread halts, a trap fires, or the
// cycle limit is hit. It returns the first trap, if any.
func (m *Machine) Run() error {
	for len(m.active) > 0 && m.trap == nil {
		// Advance to the earliest pending issue cycle.
		next := m.active[0].nextAt
		for _, tu := range m.active[1:] {
			if tu.nextAt < next {
				next = tu.nextAt
			}
		}
		m.cycle = next
		if m.MaxCycles > 0 && m.cycle > m.MaxCycles {
			return fmt.Errorf("sim: cycle limit %d exceeded", m.MaxCycles)
		}
		// Issue every unit scheduled for this cycle, rotating the
		// starting position for round-robin fairness on ties.
		n := len(m.active)
		m.rr++
		for i := 0; i < n; i++ {
			tu := m.active[(i+m.rr)%n]
			if tu.nextAt == m.cycle && tu.State == Running {
				m.step(tu)
				if m.trap != nil {
					break
				}
			}
		}
		// Compact halted units out of the active list.
		live := m.active[:0]
		for _, tu := range m.active {
			if tu.State == Running {
				live = append(live, tu)
			} else {
				tu.EndCycle = m.cycle
			}
		}
		m.active = live
	}
	return m.trap
}

// RunningThreads returns the number of currently active units.
func (m *Machine) RunningThreads() int { return len(m.active) }

// halt stops tu; the engine removes it from the active list after the
// current cycle.
func (m *Machine) halt(tu *TU) {
	tu.State = Halted
}

// TotalInsts sums issued instructions over all units.
func (m *Machine) TotalInsts() uint64 {
	var n uint64
	for _, tu := range m.TUs {
		n += tu.Insts
	}
	return n
}
