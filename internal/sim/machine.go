// Package sim is the architecturally accurate instruction-level simulator
// of the Cyclops chip (Section 3.1 of the paper): it executes Cyclops
// instructions, modeling resource contention between instructions — the
// quad-shared FPU pipes, the cache ports, the memory banks — and charges
// the Table 2 execution and latency cycles.
//
// Each thread unit is a simple single-issue in-order processor with a
// register scoreboard: an instruction issues when its source operands are
// ready and its shared resource is granted; completion may be out of
// order. If two threads contend for a shared resource in the same cycle,
// the winner rotates round-robin to prevent starvation (Section 2).
package sim

import (
	"fmt"

	"cyclops/internal/core"
	"cyclops/internal/obs"
	"cyclops/internal/prof"
	"cyclops/internal/timing"
)

// State is a thread unit's scheduling state.
type State uint8

const (
	// Idle: the unit has not been started.
	Idle State = iota
	// Running: the unit is executing instructions.
	Running
	// Halted: the unit executed halt (or its software thread exited).
	Halted
)

// TU is one thread unit: 64 single-precision registers (pairable for
// double precision), a program counter and a sequencer.
type TU struct {
	ID   int
	Quad int

	Regs  [64]uint32
	PC    uint32
	State State

	// ready[r] is the cycle at which register r's value is available.
	ready [64]uint64
	// nextAt is the next cycle the unit will attempt to issue.
	nextAt uint64

	pib pibState

	// pos is the unit's index in the machine's active list; the
	// event-driven scheduler uses it to reproduce the legacy positional
	// round-robin tie order.
	pos int
	// decPage / decPageKey hint the unit's current decode-cache page.
	decPage    *decPage
	decPageKey uint32
	// blk hints the unit's current compiled block (block engine only).
	blk *simBlock

	// Ledger is the unit's cycle account (the Figure 7 run/stall totals,
	// per-reason buckets and memory-wait attribution). The charge rules
	// live in internal/timing, shared with the direct-execution runtime;
	// its Run/Stall/Stalls/MemWaits fields are promoted into TU.
	timing.Ledger
	// StartCycle and EndCycle bound the unit's active lifetime.
	StartCycle, EndCycle uint64
	// Insts counts issued instructions.
	Insts uint64
}

// pibState wraps the per-thread prefetch instruction buffer.
type pibState struct {
	base  uint32
	words uint32
}

const pibEmpty = ^uint32(0)

func (p *pibState) contains(addr uint32) bool {
	return p.base != pibEmpty && addr >= p.base && addr < p.base+p.words
}

// FRegOK reports whether r can name a double-precision pair.
func FRegOK(r uint8) bool { return r%2 == 0 && r < 63 }

// Syscaller handles syscall instructions. The kernel package implements
// it; sim stays independent of kernel policy.
type Syscaller interface {
	// Syscall is invoked when tu executes a syscall instruction at
	// m.Cycle(). The handler may read and write tu's registers and the
	// machine's memory, start threads, or halt tu.
	Syscall(m *Machine, tu *TU) SysResult
}

// SysResult tells the engine how to resume after a syscall.
type SysResult struct {
	// Cost is the cycles the syscall occupies the thread (min 1).
	Cost uint64
	// Retry re-executes the same syscall after Cost cycles without
	// advancing the PC (used for blocking calls such as join).
	Retry bool
	// Halt stops the thread.
	Halt bool
}

// Machine drives a chip cycle by cycle.
type Machine struct {
	Chip   *core.Chip
	TUs    []*TU
	Kernel Syscaller

	cycle  uint64
	active []*TU
	rr     int

	// Event-driven scheduler state: eq orders running units by their next
	// issue cycle; batch is the reused buffer of units due at the current
	// cycle.
	eq    eventQueue
	batch []*TU

	// Decoded-instruction cache (see decode.go).
	decPages map[uint32]*decPage
	decGen   uint64

	// Compiled-block cache (see block.go), keyed by entry PC.
	blocks        map[uint32]*simBlock
	blockCompiles uint64
	blockFlushes  uint64

	// engine selects the execution engine tier (see engine.go). All
	// tiers are cycle- and byte-identical; they differ in host cost.
	engine Engine

	// pol is the issue policy (see policy.go); polInline caches its
	// InlineOK answer for the block engine's continuation rule.
	pol       Policy
	polInline bool

	// MaxCycles aborts runaway programs; 0 means no limit.
	MaxCycles uint64

	// Trace, when non-nil, records every issued instruction (see
	// TraceBuffer); it costs a few percent of simulation speed.
	Trace *TraceBuffer

	// Prof and TL are the attached guest profiler and telemetry
	// timeline (see AttachProfile / AttachTimeline); nil means off.
	Prof *prof.Profile
	TL   *prof.Timeline

	trap error
}

// New builds a machine over a chip, running the process default engine
// and issue policy (see SetDefaultEngine / SetDefaultPolicy and the
// per-machine SetEngine / SetPolicy). Kernel may be nil for programs
// that make no syscalls.
func New(chip *core.Chip, kernel Syscaller) *Machine {
	m := &Machine{Chip: chip, Kernel: kernel, engine: DefaultEngine()}
	pibWords := uint32(chip.Cfg.PIBEntries * 4)
	for i := 0; i < chip.Cfg.Threads; i++ {
		m.TUs = append(m.TUs, &TU{
			ID:   i,
			Quad: chip.Cfg.QuadOf(i),
			pib:  pibState{base: pibEmpty, words: pibWords},
		})
	}
	m.SetPolicy(DefaultPolicy())
	return m
}

// Cycle returns the current simulation cycle.
func (m *Machine) Cycle() uint64 { return m.cycle }

// AttachProfile wires a guest profiler: every thread unit's ledger
// forwards its charges to a per-unit sampler. Call before Run; a no-op
// under cyclops_noobs.
func (m *Machine) AttachProfile(p *prof.Profile) {
	if !obs.Enabled {
		return
	}
	m.Prof = p
	for _, tu := range m.TUs {
		tu.Samp = p.Sampler(tu.ID)
	}
}

// AttachTimeline wires an interval telemetry timeline sampled on the
// machine's cycle clock. Call before Run; a no-op under cyclops_noobs.
func (m *Machine) AttachTimeline(t *prof.Timeline) {
	if !obs.Enabled {
		return
	}
	m.TL = t
}

// counters gathers the chip-wide telemetry the timeline samples.
func (m *Machine) counters() prof.Counters {
	var c prof.Counters
	for _, tu := range m.TUs {
		c.Run += tu.Run
		c.Stall += tu.Stall
		c.Stalls.AddAll(tu.Stalls)
		c.MemWaits.AddAll(tu.MemWaits)
	}
	for _, r := range m.Chip.ResourceStats() {
		switch r.Kind {
		case "cacheport":
			c.PortBusy += r.Busy
		case "drambank":
			c.BankBusy += r.Busy
		case "fpu":
			c.FPUBusy += r.Busy
		}
	}
	return c
}

// tickTimeline samples the timeline when the clock has crossed an
// interval boundary; finishTimeline flushes the final partial interval
// when the run ends.
func (m *Machine) tickTimeline() {
	if m.TL != nil && m.TL.Due(m.cycle) {
		m.TL.Tick(m.cycle, m.counters())
	}
}

func (m *Machine) finishTimeline() {
	if m.TL != nil {
		m.TL.Finish(m.cycle, m.counters())
	}
}

// Start begins execution of thread unit tid at pc, from the current cycle.
// It returns an error if the unit is unusable (disabled quad) or already
// running.
func (m *Machine) Start(tid int, pc uint32) error {
	if tid < 0 || tid >= len(m.TUs) {
		return fmt.Errorf("sim: no thread unit %d", tid)
	}
	if !m.Chip.ThreadUsable(tid) {
		return fmt.Errorf("sim: thread unit %d is in a disabled quad", tid)
	}
	tu := m.TUs[tid]
	if tu.State == Running {
		return fmt.Errorf("sim: thread unit %d already running", tid)
	}
	tu.State = Running
	tu.PC = pc
	tu.nextAt = m.cycle
	tu.StartCycle = m.cycle
	tu.pib.base = pibEmpty
	for r := range tu.ready {
		tu.ready[r] = 0
	}
	tu.pos = len(m.active)
	m.active = append(m.active, tu)
	if m.engine != EngineLegacy {
		m.eq.push(tu)
	}
	return nil
}

// Trap aborts the run with a diagnostic (used by the kernel for fatal
// software conditions as well as by the engine for hardware traps).
func (m *Machine) Trap(format string, args ...interface{}) {
	if m.trap == nil {
		m.trap = fmt.Errorf(format, args...)
	}
}

// Run executes until every started thread halts, a trap fires, or the
// cycle limit is hit. It returns the first trap, if any.
//
// The decoded engine is event-driven: a min-heap over the units' next
// issue cycles replaces the legacy per-cycle scan of the whole active
// list, so cost scales with units actually issuing rather than units
// merely alive. Tie order is the legacy rotating round-robin over
// active-list positions, reproduced bit-for-bit (see sortBatch). The
// block engine (block.go) keeps this scheduler but replaces per-issue
// dispatch with compiled basic blocks.
func (m *Machine) Run() error {
	switch m.engine {
	case EngineLegacy:
		return m.runLegacy()
	case EngineBlock:
		return m.runBlock()
	}
	for len(m.active) > 0 && m.trap == nil {
		// Advance to the earliest pending issue cycle.
		m.cycle = m.eq.min().nextAt
		if m.MaxCycles > 0 && m.cycle > m.MaxCycles {
			return fmt.Errorf("sim: cycle limit %d exceeded", m.MaxCycles)
		}
		m.tickTimeline()
		// Pop every unit due this cycle and issue in round-robin order.
		// Units started by a syscall during the batch land in the queue
		// at the current cycle and form their own batch next iteration,
		// exactly as the legacy engine's captured-length loop behaved.
		m.batch = m.batch[:0]
		for m.eq.Len() > 0 && m.eq.min().nextAt == m.cycle {
			m.batch = append(m.batch, m.eq.pop())
		}
		n := len(m.active)
		m.rr++
		m.sortBatch(n)
		anyHalted := false
		for bi, tu := range m.batch {
			m.step(tu)
			if tu.State == Running {
				m.eq.push(tu)
			} else {
				anyHalted = true
			}
			if m.trap != nil {
				// Requeue the units this batch never reached.
				for _, rest := range m.batch[bi+1:] {
					m.eq.push(rest)
				}
				break
			}
		}
		if anyHalted {
			m.compact()
		}
	}
	m.finishTimeline()
	return m.trap
}

// sortBatch orders the due units the way the legacy engine visited them:
// positions (i+rr)%n over the active list, i ascending. Batches are
// almost always tiny, so an insertion sort beats sort.Slice here.
func (m *Machine) sortBatch(n int) {
	if len(m.batch) < 2 {
		return
	}
	r := m.rr % n
	key := func(tu *TU) int {
		k := tu.pos - r
		if k < 0 {
			k += n
		}
		return k
	}
	for i := 1; i < len(m.batch); i++ {
		tu := m.batch[i]
		k := key(tu)
		j := i - 1
		for j >= 0 && key(m.batch[j]) > k {
			m.batch[j+1] = m.batch[j]
			j--
		}
		m.batch[j+1] = tu
	}
}

// compact removes halted units from the active list, preserving order and
// refreshing each survivor's position.
func (m *Machine) compact() {
	live := m.active[:0]
	for _, tu := range m.active {
		if tu.State == Running {
			tu.pos = len(live)
			live = append(live, tu)
		} else {
			tu.EndCycle = m.cycle
		}
	}
	m.active = live
}

// runLegacy is the seed engine, byte-for-byte: linear min-scan over the
// active list every cycle plus unconditional compaction. The equivalence
// tests run every experiment through both engines and diff the tables.
func (m *Machine) runLegacy() error {
	for len(m.active) > 0 && m.trap == nil {
		// Advance to the earliest pending issue cycle.
		next := m.active[0].nextAt
		for _, tu := range m.active[1:] {
			if tu.nextAt < next {
				next = tu.nextAt
			}
		}
		m.cycle = next
		if m.MaxCycles > 0 && m.cycle > m.MaxCycles {
			return fmt.Errorf("sim: cycle limit %d exceeded", m.MaxCycles)
		}
		m.tickTimeline()
		// Issue every unit scheduled for this cycle, rotating the
		// starting position for round-robin fairness on ties.
		n := len(m.active)
		m.rr++
		for i := 0; i < n; i++ {
			tu := m.active[(i+m.rr)%n]
			if tu.nextAt == m.cycle && tu.State == Running {
				m.step(tu)
				if m.trap != nil {
					break
				}
			}
		}
		// Compact halted units out of the active list.
		live := m.active[:0]
		for _, tu := range m.active {
			if tu.State == Running {
				live = append(live, tu)
			} else {
				tu.EndCycle = m.cycle
			}
		}
		m.active = live
	}
	m.finishTimeline()
	return m.trap
}

// RunningThreads returns the number of currently active units.
func (m *Machine) RunningThreads() int { return len(m.active) }

// halt stops tu; the engine removes it from the active list after the
// current cycle.
func (m *Machine) halt(tu *TU) {
	tu.State = Halted
}

// TotalInsts sums issued instructions over all units.
func (m *Machine) TotalInsts() uint64 {
	var n uint64
	for _, tu := range m.TUs {
		n += tu.Insts
	}
	return n
}

// TotalBreakdown sums the per-reason stall buckets over all units.
func (m *Machine) TotalBreakdown() obs.Breakdown {
	var b obs.Breakdown
	for _, tu := range m.TUs {
		b.AddAll(tu.Stalls)
	}
	return b
}

// TotalMemWaits sums the memory-wait attribution over all units.
func (m *Machine) TotalMemWaits() obs.MemWaits {
	var w obs.MemWaits
	for _, tu := range m.TUs {
		w.AddAll(tu.MemWaits)
	}
	return w
}

// Snapshot captures the run's cycle accounting and resource telemetry in
// the deterministic export form. Units that never issued are omitted.
func (m *Machine) Snapshot() *obs.Snapshot {
	s := &obs.Snapshot{Cycles: m.cycle, Resources: m.Chip.ResourceStats()}
	for _, tu := range m.TUs {
		if tu.Insts == 0 && tu.Run == 0 && tu.Stall == 0 {
			continue
		}
		s.Threads = append(s.Threads, tu.ThreadStat(tu.ID, tu.Quad, tu.Insts))
	}
	s.Finish()
	return s
}
