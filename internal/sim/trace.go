package sim

import (
	"fmt"
	"strings"

	"cyclops/internal/isa"
)

// TraceEntry records one issued instruction.
type TraceEntry struct {
	Cycle uint64
	TID   int
	PC    uint32
	Word  uint32
}

// String renders the entry with disassembly.
func (e TraceEntry) String() string {
	return fmt.Sprintf("%10d  t%03d  %06x  %s", e.Cycle, e.TID, e.PC, isa.Decode(e.Word))
}

// TraceBuffer is a fixed-capacity ring of the most recent issues — the
// first tool to reach for when a program traps or hangs on the simulator.
type TraceBuffer struct {
	entries []TraceEntry
	next    int
	full    bool
	// Filter restricts recording to one thread unit when >= 0.
	Filter int
}

// NewTraceBuffer holds the last n issues.
func NewTraceBuffer(n int) *TraceBuffer {
	if n < 1 {
		n = 1
	}
	return &TraceBuffer{entries: make([]TraceEntry, n), Filter: -1}
}

// record appends an entry, overwriting the oldest.
func (tb *TraceBuffer) record(e TraceEntry) {
	if tb.Filter >= 0 && e.TID != tb.Filter {
		return
	}
	tb.entries[tb.next] = e
	tb.next++
	if tb.next == len(tb.entries) {
		tb.next = 0
		tb.full = true
	}
}

// Entries returns the recorded issues, oldest first.
func (tb *TraceBuffer) Entries() []TraceEntry {
	if !tb.full {
		return append([]TraceEntry(nil), tb.entries[:tb.next]...)
	}
	out := make([]TraceEntry, 0, len(tb.entries))
	out = append(out, tb.entries[tb.next:]...)
	out = append(out, tb.entries[:tb.next]...)
	return out
}

// Len reports how many entries are held.
func (tb *TraceBuffer) Len() int {
	if tb.full {
		return len(tb.entries)
	}
	return tb.next
}

// Dump renders the buffer, oldest first.
func (tb *TraceBuffer) Dump() string {
	var sb strings.Builder
	sb.WriteString("     cycle  unit      pc  instruction\n")
	for _, e := range tb.Entries() {
		sb.WriteString(e.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}
