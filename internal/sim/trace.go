package sim

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"cyclops/internal/isa"
	"cyclops/internal/obs"
)

// TraceEntry records one issued instruction.
type TraceEntry struct {
	Cycle uint64
	TID   int
	PC    uint32
	Word  uint32
}

// String renders the entry with disassembly.
func (e TraceEntry) String() string {
	return fmt.Sprintf("%10d  t%03d  %06x  %s", e.Cycle, e.TID, e.PC, isa.Decode(e.Word))
}

// TraceBuffer is a fixed-capacity ring of the most recent issues — the
// first tool to reach for when a program traps or hangs on the simulator.
type TraceBuffer struct {
	entries []TraceEntry
	next    int
	full    bool
	// Filter restricts recording to one thread unit when >= 0.
	Filter int
}

// NewTraceBuffer holds the last n issues.
func NewTraceBuffer(n int) *TraceBuffer {
	if n < 1 {
		n = 1
	}
	return &TraceBuffer{entries: make([]TraceEntry, n), Filter: -1}
}

// record appends an entry, overwriting the oldest.
func (tb *TraceBuffer) record(e TraceEntry) {
	if tb.Filter >= 0 && e.TID != tb.Filter {
		return
	}
	tb.entries[tb.next] = e
	tb.next++
	if tb.next == len(tb.entries) {
		tb.next = 0
		tb.full = true
	}
}

// Entries returns the recorded issues, oldest first.
func (tb *TraceBuffer) Entries() []TraceEntry {
	if !tb.full {
		return append([]TraceEntry(nil), tb.entries[:tb.next]...)
	}
	out := make([]TraceEntry, 0, len(tb.entries))
	out = append(out, tb.entries[tb.next:]...)
	out = append(out, tb.entries[:tb.next]...)
	return out
}

// Len reports how many entries are held.
func (tb *TraceBuffer) Len() int {
	if tb.full {
		return len(tb.entries)
	}
	return tb.next
}

// ChromeTrace renders the machine's trace buffer as Chrome trace-event
// JSON: one timeline per thread unit (grouped by quad as the process),
// one slice per issued instruction, and — when the observability layer is
// compiled in — one "memwait" counter sample per unit publishing its
// final port/bank/fill/hop memory-wait attribution. A slice spans from
// the instruction's issue to the unit's next issue, so stalls show up as
// long slices on the instruction that preceded them; chrome://tracing
// and Perfetto both load the output directly.
func (m *Machine) ChromeTrace(w io.Writer) error {
	if m.Trace == nil {
		return fmt.Errorf("sim: no trace buffer attached (set Machine.Trace)")
	}
	entries := m.Trace.Entries()

	// A slice lasts until its unit issues again; the final issue of each
	// unit gets one cycle.
	durs := make([]uint64, len(entries))
	nextIssue := make(map[int]uint64)
	for i := len(entries) - 1; i >= 0; i-- {
		e := entries[i]
		if nxt, ok := nextIssue[e.TID]; ok && nxt > e.Cycle {
			durs[i] = nxt - e.Cycle
		} else {
			durs[i] = 1
		}
		nextIssue[e.TID] = e.Cycle
	}

	tids := make([]int, 0, len(nextIssue))
	for tid := range nextIssue {
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	threads := make([]obs.TraceThread, 0, len(tids))
	for _, tid := range tids {
		threads = append(threads, obs.TraceThread{
			PID:  m.Chip.Cfg.QuadOf(tid),
			TID:  tid,
			Name: fmt.Sprintf("TU %d", tid),
		})
	}

	slices := make([]obs.TraceSlice, 0, len(entries))
	for i, e := range entries {
		slices = append(slices, obs.TraceSlice{
			Name:  isa.Decode(e.Word).String(),
			PID:   m.Chip.Cfg.QuadOf(e.TID),
			TID:   e.TID,
			Start: e.Cycle,
			Dur:   durs[i],
			Args: [][2]string{
				{"pc", fmt.Sprintf("%#x", e.PC)},
				{"word", fmt.Sprintf("%#08x", e.Word)},
			},
		})
	}

	// Publish each traced unit's memory-wait attribution as a counter
	// sample at its last recorded issue, in the same kind order as the
	// breakdown table columns.
	var counters []obs.TraceCounter
	if obs.Enabled {
		lastIssue := make(map[int]uint64, len(tids))
		for _, e := range entries { // oldest first: last write wins
			lastIssue[e.TID] = e.Cycle
		}
		names := obs.MemWaitNames()
		for _, tid := range tids {
			tu := m.TUs[tid]
			series := make([][2]string, len(names))
			for k, name := range names {
				series[k] = [2]string{name, fmt.Sprintf("%d", tu.MemWaits[obs.MemWaitKind(k)])}
			}
			counters = append(counters, obs.TraceCounter{
				Name:   "memwait",
				PID:    m.Chip.Cfg.QuadOf(tid),
				TID:    tid,
				At:     lastIssue[tid],
				Series: series,
			})
		}
		// An attached timeline adds time-resolved chip-wide counter
		// tracks (per-interval stall/memwait/busy deltas) on pid 0.
		if m.TL != nil {
			counters = append(counters, m.TL.CounterTracks()...)
		}
	}
	return obs.WriteChromeTrace(w, threads, slices, counters)
}

// Dump renders the buffer, oldest first.
func (tb *TraceBuffer) Dump() string {
	var sb strings.Builder
	sb.WriteString("     cycle  unit      pc  instruction\n")
	for _, e := range tb.Entries() {
		sb.WriteString(e.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}
