package sim

import (
	"fmt"

	"cyclops/internal/arch"
	"cyclops/internal/isa"
	"cyclops/internal/obs"
	"cyclops/internal/timing"
)

// The block-compiling engine. The decoded engine still pays one trip
// through the big issue switch per instruction; for long-lived loops
// that dispatch is the dominant host-side cost. This engine discovers
// basic blocks at runtime (block boundaries are isa.EndsBlock, the same
// definition internal/vet's CFG uses for leaders), translates each block
// once into a slice of pre-bound Go closures — threaded code — and runs
// closure after closure, block after block, without returning to the
// scheduler, for as long as the thread unit is provably the only one
// due. The hot ops (single-cycle ALU, conditional branches, lw/ld/sw)
// compile to fully specialized closures: one indirect call per
// instruction, everything else straight-line. Adjacent pairs led by a
// fall-through op additionally compile to fused superinstructions that
// commit two issues per dispatch — that covers lui+ori, addi+bne,
// ld+fma and every other back-to-back idiom.
//
// Timing stays exact by construction, not by approximation:
//
//   - Every closure drives the shared timing.Ledger exactly as the
//     per-issue engines do (ChargeRun, WaitReady, ChargeMemStall,
//     ObserveAccess), so every table, snapshot and profile is
//     byte-identical across engines.
//   - Ops are 1:1 with instructions — a block never commits more than
//     the per-issue engines would. Each issue attempt replicates one
//     scheduler iteration: inline continuation advances m.cycle, bumps
//     the round-robin counter and ticks the timeline exactly as a trip
//     through Run's outer loop would, and is only taken when the event
//     queue proves no other unit is due first.
//   - Multi-unit batches fall back to one issue per unit per cycle, the
//     decoded engine's exact regime, so contention, tie order and
//     compaction are untouched.
//   - Fused superinstructions bypass the per-attempt observability
//     hooks, so they are compiled in but only dispatched when no tracer,
//     profiler sampler or timeline is attached; each re-checks the
//     inline conditions itself and commits only its first instruction
//     when the second may not run this dispatch.
//
// Compiled blocks invalidate with the decode cache: both sit behind
// mem.WatchCode's code-generation counter, checked before any op that
// follows a possible memory write, so self-modifying stores, DMA
// reloads and program reloads flush blocks exactly when they flush
// decodings (see flushDecode).

// opFn executes one issue attempt at cycle; the closure performs the
// instruction's scoreboard wait, charges, effects and PC advance. It
// returns true only when the instruction committed, fell through to
// pc+4 AND could not have written memory — the conditions under which a
// fused successor may issue without another trip through the dispatch
// loop, and the code-generation re-check may be skipped. Stalls, traps,
// taken branches, stores and generic ops report false.
type opFn func(m *Machine, tu *TU, cycle uint64) bool

// fusedFn is a superinstruction: it always commits its first
// instruction, and commits the second only after fuseStep proves the
// unit is still alone and books the scheduler iteration. The returned
// bool has opFn's meaning, for whichever instruction ran last.
type fusedFn func(m *Machine, tu *TU, cycle, limit uint64) bool

// blockOp is one compiled instruction slot. fn is always set; fused,
// when non-nil, is the superinstruction starting at this slot.
type blockOp struct {
	fn    opFn
	fused fusedFn
}

// simBlock is one compiled basic block covering text [base, end).
type simBlock struct {
	base, end uint32
	ops       []blockOp
}

// maxBlockOps caps a block when no isa.EndsBlock instruction shows up
// (straight-line code running into data); continuation past the cap just
// enters the next block.
const maxBlockOps = 256

// runBlock is the block engine's scheduler: the decoded engine's
// event-driven loop, with stepBlock in place of step. A batch of one —
// the steady state of any single-thread phase — lifts the issue limit so
// stepBlock runs whole blocks inline; multi-unit batches issue exactly
// one instruction per unit, preserving contention and tie order
// bit-for-bit.
func (m *Machine) runBlock() error {
	for len(m.active) > 0 && m.trap == nil {
		// Advance to the earliest pending issue cycle.
		m.cycle = m.eq.min().nextAt
		if m.MaxCycles > 0 && m.cycle > m.MaxCycles {
			return fmt.Errorf("sim: cycle limit %d exceeded", m.MaxCycles)
		}
		m.tickTimeline()
		m.batch = m.batch[:0]
		for m.eq.Len() > 0 && m.eq.min().nextAt == m.cycle {
			m.batch = append(m.batch, m.eq.pop())
		}
		n := len(m.active)
		m.rr++
		m.sortBatch(n)
		limit := m.cycle
		if len(m.batch) == 1 && m.polInline {
			// A lone ready unit may run unboundedly inline — but only when
			// the issue policy certifies its timing flows entirely through
			// ledger charges and resume times (InlineOK).
			limit = ^uint64(0)
		}
		anyHalted := false
		for bi, tu := range m.batch {
			m.stepBlock(tu, limit)
			if tu.State == Running {
				m.eq.push(tu)
			} else {
				anyHalted = true
			}
			if m.trap != nil {
				// Requeue the units this batch never reached.
				for _, rest := range m.batch[bi+1:] {
					m.eq.push(rest)
				}
				break
			}
		}
		if anyHalted {
			m.compact()
		}
	}
	m.finishTimeline()
	return m.trap
}

// stepBlock issues instructions for tu starting at the current cycle and
// continues inline — op after op, block after block — while the issue
// limit and the event queue allow it. limit is the first cycle the unit
// may NOT issue at inline (the batch cycle itself when other units
// issued this cycle; unbounded when the unit is alone).
func (m *Machine) stepBlock(tu *TU, limit uint64) {
	memory := m.Chip.Mem
	tl := m.TL
	// Fused superinstructions skip the per-attempt observability hooks
	// (SetPC, trace records, timeline ticks), so they dispatch only when
	// none of those observers is attached — and only when the issue
	// policy permits inline continuation (InlineOK).
	fuse := m.polInline && m.Trace == nil && tl == nil && !(obs.Enabled && tu.Samp != nil)
	blk := tu.blk
	// clean is opFn's contract: the last op provably wrote no memory, so
	// the code generation cannot have moved and need not be re-read.
	// Entry from the scheduler is never clean — another unit's batch may
	// have stored into text.
	clean := false
	for {
		if !clean {
			if g := memory.CodeGen(); g != m.decGen {
				m.decGen = g
				m.flushDecode()
				blk = nil
			}
		}
		pc := tu.PC
		if obs.Enabled && tu.Samp != nil {
			tu.Samp.SetPC(pc)
		}
		if tu.pib.contains(pc) {
			if blk == nil || pc-blk.base >= blk.end-blk.base {
				blk = m.blockFor(pc)
				tu.blk = blk
			}
			op := &blk.ops[(pc-blk.base)>>2]
			if fuse && op.fused != nil {
				clean = op.fused(m, tu, m.cycle, limit)
			} else {
				clean = op.fn(m, tu, m.cycle)
			}
			if m.trap != nil || tu.State != Running {
				return
			}
		} else {
			m.fetchPIB(tu, m.cycle)
			clean = true // a PIB refill only reads memory
		}
		// Inline continuation: replicate one trip through the scheduler's
		// outer loop, legal only when this unit is provably the next (and
		// only) one due. Every attempt above advanced nextAt past the
		// cycle it issued at, so each inline step is exactly one
		// scheduler iteration: same cycle advance, same round-robin
		// increment, same timeline tick.
		next := tu.nextAt
		if next >= limit {
			return
		}
		if m.eq.Len() > 0 && m.eq.min().nextAt <= next {
			return
		}
		if m.MaxCycles > 0 && next > m.MaxCycles {
			// The outer loop raises the identical cycle-limit error.
			return
		}
		m.cycle = next
		m.rr++
		if tl != nil {
			m.tickTimeline()
		}
	}
}

// fuseStep books the scheduler iteration a fused pair's second issue
// occupies: legal only when the unit is still the only one due at c2 and
// the cycle limit is unreached. The dispatcher already verified no
// timeline is attached, so no tick is needed here.
func (m *Machine) fuseStep(c2, limit uint64) bool {
	if c2 >= limit {
		return false
	}
	if m.eq.Len() > 0 && m.eq.min().nextAt <= c2 {
		return false
	}
	if m.MaxCycles > 0 && c2 > m.MaxCycles {
		return false
	}
	m.cycle = c2
	m.rr++
	return true
}

// blockFor returns (compiling on demand) the block whose base is pc.
// Mid-block jump targets simply compile an overlapping suffix block —
// the ops are position-independent, so the duplication is memory, not
// semantics.
func (m *Machine) blockFor(pc uint32) *simBlock {
	if b := m.blocks[pc]; b != nil {
		return b
	}
	b := m.compileBlock(pc)
	if m.blocks == nil {
		m.blocks = make(map[uint32]*simBlock)
	}
	m.blocks[pc] = b
	return b
}

// Precompile compiles blocks for the given leader PCs (typically
// vet.Leaders of the loaded program) ahead of execution. Compilation has
// no timing effect — it only fills host-side caches — so this is purely
// a warm-up; lazily discovered blocks behave identically. Engines other
// than the block engine ignore it.
func (m *Machine) Precompile(pcs []uint32) {
	if m.engine != EngineBlock {
		return
	}
	if g := m.Chip.Mem.CodeGen(); g != m.decGen {
		m.decGen = g
		m.flushDecode()
	}
	for _, pc := range pcs {
		if pc%4 == 0 {
			m.blockFor(pc)
		}
	}
}

// compileBlock translates the straight-line run starting at base into
// ops, stopping after the first isa.EndsBlock instruction, at the first
// unfetchable or illegal word (compiled to a trap op that fires only if
// execution reaches it), or at the op cap.
func (m *Machine) compileBlock(base uint32) *simBlock {
	m.blockCompiles++
	b := &simBlock{base: base}
	var ents []*decEntry
	pc := base
	for len(b.ops) < maxBlockOps {
		e, word, err := m.decodeAt(pc)
		if e == nil {
			b.ops = append(b.ops, blockOp{fn: trapOp(pc, word, err)})
			ents = append(ents, nil)
			break
		}
		b.ops = append(b.ops, blockOp{fn: m.compileOp(pc, e)})
		ents = append(ents, e)
		if isa.EndsBlock(e.in) {
			break
		}
		pc += 4
	}
	b.end = base + uint32(4*len(b.ops))
	// Superinstruction pass: any run of ops whose leading members are
	// fuse leaders — ops that can commit a fall-through without writing
	// memory — becomes a superinstruction of up to maxFuse issues; the
	// final member is arbitrary. Chains may overlap (every leader slot
	// starts its own); the dispatcher naturally enters whichever slot
	// execution reaches, so a mid-chain branch target loses nothing.
	fns := make([]opFn, len(b.ops))
	for i := range b.ops {
		fns[i] = b.ops[i].fn
	}
	for i := 0; i+1 < len(b.ops); i++ {
		if ents[i] == nil || ents[i+1] == nil || !canLeadFuse(ents[i].in) {
			continue
		}
		j := i + 1
		for j+1 < len(b.ops) && j-i+1 < maxFuse && ents[j+1] != nil && canLeadFuse(ents[j].in) {
			j++
		}
		b.ops[i].fused = fuseChain(fns[i : j+1])
	}
	return b
}

// maxFuse caps a superinstruction's length; longer straight runs simply
// chain superinstructions across dispatches.
const maxFuse = 8

// fuseChain composes a run of compiled ops into a superinstruction. All
// ops but the last are fuse leaders (canLeadFuse): each returns true
// only when it committed, fell through and wrote no memory — so the
// next issue may skip the dispatch loop's per-attempt hooks (all gated
// off by the dispatcher) and the code-generation re-check. The final op
// is arbitrary: every op performs its own scoreboard wait and charges,
// so a dependent instruction mid-chain commits its predecessors plus
// its own dep stall, exactly as the plain path would, and issues on a
// later dispatch.
func fuseChain(ops []opFn) fusedFn {
	return func(m *Machine, tu *TU, cyc, limit uint64) bool {
		if !ops[0](m, tu, cyc) {
			return true // fuse leaders never write memory, even on false
		}
		for k := 1; k < len(ops); k++ {
			c := tu.nextAt
			if !tu.pib.contains(tu.PC) || !m.fuseStep(c, limit) {
				return true // committed exactly the plain ops' state
			}
			if ok := ops[k](m, tu, c); !ok {
				// A false from a leader is a stall, trap or taken
				// branch — never a write. A false from the final op may
				// be a store or a generic issue: not clean.
				return k != len(ops)-1
			}
		}
		return true
	}
}

// canLeadFuse reports whether in can lead a superinstruction: its
// compiled op never writes memory and reports fall-through commits
// (single-cycle ALU ops, lw/ld, and conditional branches on their
// not-taken path). Stores write, jumps always redirect, and everything
// generic may do either — none can lead.
func canLeadFuse(in isa.Inst) bool {
	switch in.Op {
	case isa.OpADD, isa.OpSUB, isa.OpAND, isa.OpOR, isa.OpXOR, isa.OpNOR,
		isa.OpSLL, isa.OpSRL, isa.OpSRA, isa.OpSLT, isa.OpSLTU,
		isa.OpADDI, isa.OpANDI, isa.OpORI, isa.OpXORI,
		isa.OpSLLI, isa.OpSRLI, isa.OpSRAI, isa.OpSLTI, isa.OpSLTIU,
		isa.OpLUI, isa.OpLW, isa.OpLD,
		isa.OpBEQ, isa.OpBNE, isa.OpBLT, isa.OpBGE, isa.OpBLTU, isa.OpBGEU:
		return true
	}
	return false
}

// trapOp reproduces the per-issue fetch path's trap lazily: compilation
// runs ahead of execution, so an illegal word only traps if the program
// actually reaches it.
func trapOp(pc, word uint32, err error) opFn {
	return func(m *Machine, tu *TU, cycle uint64) bool {
		if err != nil {
			m.Trap("sim: thread %d: fetch at %#x: %v", tu.ID, pc, err)
		} else {
			m.Trap("sim: thread %d: illegal instruction %#08x at %#x", tu.ID, word, pc)
		}
		return false
	}
}

// compileOp translates one instruction into its closure: a fully
// specialized form for the hot ALU/branch/memory ops, or a generic op
// that calls the shared issue path — semantically identical to the
// per-issue engines by construction.
func (m *Machine) compileOp(pc uint32, e *decEntry) opFn {
	in, info, word := e.in, e.info, e.word
	lat := &m.Chip.Cfg.Latencies
	if fn := compileALU(pc, in, word); fn != nil {
		return fn
	}
	if fn := compileBranch(pc, in, word, uint64(lat.BranchExec)); fn != nil {
		return fn
	}
	switch in.Op {
	case isa.OpJAL:
		return mkJAL(pc, word, in.A, pc+4+uint32(in.Imm)*4, uint64(lat.BranchExec))
	case isa.OpJALR:
		return mkJALR(pc, word, in.A, in.B, uint32(in.Imm), uint64(lat.BranchExec))
	case isa.OpLW:
		return mkLW(pc, word, in.A, in.B, uint32(in.Imm), uint64(lat.MemExec))
	case isa.OpLD:
		return mkLD(pc, word, in.A, in.B, uint32(in.Imm), uint64(lat.MemExec))
	case isa.OpSW:
		return mkSW(pc, word, in.A, in.B, uint32(in.Imm), uint64(lat.MemExec))
	}
	return func(m *Machine, tu *TU, cycle uint64) bool {
		m.issue(tu, in, info, word, cycle)
		return false
	}
}

// compileALU builds the complete closure for a single-cycle integer op
// (the ClassOther ALU set: register, immediate and lui forms), nil for
// anything else. Multiplies, divides, SPR moves, sync and syscall are
// not simple — they have latencies, traps or side effects — and stay on
// the generic path. Each closure is deliberately self-contained
// straight-line code: the dispatch pays exactly one indirect call per
// instruction. The bodies all follow the issue path's shape — scoreboard
// wait, Insts++, optional trace record, effect at cyc+1, ChargeRun(1),
// nextAt, PC — so each commits byte-identical ledger state.
func compileALU(pc uint32, in isa.Inst, word uint32) opFn {
	a, b, c := in.A, in.B, in.C
	imm := in.Imm
	uimm := uint32(in.Imm)
	sh := uimm & 31
	switch in.Op {
	case isa.OpADD:
		return func(m *Machine, tu *TU, cyc uint64) bool {
			if r := timing.MaxReady(tu.regReady(b), tu.regReady(c)); r > cyc {
				tu.nextAt = tu.WaitReady(cyc, r)
				return false
			}
			tu.Insts++
			if m.Trace != nil {
				m.Trace.record(TraceEntry{Cycle: cyc, TID: tu.ID, PC: pc, Word: word})
			}
			tu.setReg(a, tu.reg(b)+tu.reg(c), cyc+1)
			tu.ChargeRun(1)
			tu.nextAt = cyc + 1
			tu.PC = pc + 4
			return true
		}
	case isa.OpSUB:
		return func(m *Machine, tu *TU, cyc uint64) bool {
			if r := timing.MaxReady(tu.regReady(b), tu.regReady(c)); r > cyc {
				tu.nextAt = tu.WaitReady(cyc, r)
				return false
			}
			tu.Insts++
			if m.Trace != nil {
				m.Trace.record(TraceEntry{Cycle: cyc, TID: tu.ID, PC: pc, Word: word})
			}
			tu.setReg(a, tu.reg(b)-tu.reg(c), cyc+1)
			tu.ChargeRun(1)
			tu.nextAt = cyc + 1
			tu.PC = pc + 4
			return true
		}
	case isa.OpAND:
		return func(m *Machine, tu *TU, cyc uint64) bool {
			if r := timing.MaxReady(tu.regReady(b), tu.regReady(c)); r > cyc {
				tu.nextAt = tu.WaitReady(cyc, r)
				return false
			}
			tu.Insts++
			if m.Trace != nil {
				m.Trace.record(TraceEntry{Cycle: cyc, TID: tu.ID, PC: pc, Word: word})
			}
			tu.setReg(a, tu.reg(b)&tu.reg(c), cyc+1)
			tu.ChargeRun(1)
			tu.nextAt = cyc + 1
			tu.PC = pc + 4
			return true
		}
	case isa.OpOR:
		return func(m *Machine, tu *TU, cyc uint64) bool {
			if r := timing.MaxReady(tu.regReady(b), tu.regReady(c)); r > cyc {
				tu.nextAt = tu.WaitReady(cyc, r)
				return false
			}
			tu.Insts++
			if m.Trace != nil {
				m.Trace.record(TraceEntry{Cycle: cyc, TID: tu.ID, PC: pc, Word: word})
			}
			tu.setReg(a, tu.reg(b)|tu.reg(c), cyc+1)
			tu.ChargeRun(1)
			tu.nextAt = cyc + 1
			tu.PC = pc + 4
			return true
		}
	case isa.OpXOR:
		return func(m *Machine, tu *TU, cyc uint64) bool {
			if r := timing.MaxReady(tu.regReady(b), tu.regReady(c)); r > cyc {
				tu.nextAt = tu.WaitReady(cyc, r)
				return false
			}
			tu.Insts++
			if m.Trace != nil {
				m.Trace.record(TraceEntry{Cycle: cyc, TID: tu.ID, PC: pc, Word: word})
			}
			tu.setReg(a, tu.reg(b)^tu.reg(c), cyc+1)
			tu.ChargeRun(1)
			tu.nextAt = cyc + 1
			tu.PC = pc + 4
			return true
		}
	case isa.OpNOR:
		return func(m *Machine, tu *TU, cyc uint64) bool {
			if r := timing.MaxReady(tu.regReady(b), tu.regReady(c)); r > cyc {
				tu.nextAt = tu.WaitReady(cyc, r)
				return false
			}
			tu.Insts++
			if m.Trace != nil {
				m.Trace.record(TraceEntry{Cycle: cyc, TID: tu.ID, PC: pc, Word: word})
			}
			tu.setReg(a, ^(tu.reg(b) | tu.reg(c)), cyc+1)
			tu.ChargeRun(1)
			tu.nextAt = cyc + 1
			tu.PC = pc + 4
			return true
		}
	case isa.OpSLL:
		return func(m *Machine, tu *TU, cyc uint64) bool {
			if r := timing.MaxReady(tu.regReady(b), tu.regReady(c)); r > cyc {
				tu.nextAt = tu.WaitReady(cyc, r)
				return false
			}
			tu.Insts++
			if m.Trace != nil {
				m.Trace.record(TraceEntry{Cycle: cyc, TID: tu.ID, PC: pc, Word: word})
			}
			tu.setReg(a, tu.reg(b)<<(tu.reg(c)&31), cyc+1)
			tu.ChargeRun(1)
			tu.nextAt = cyc + 1
			tu.PC = pc + 4
			return true
		}
	case isa.OpSRL:
		return func(m *Machine, tu *TU, cyc uint64) bool {
			if r := timing.MaxReady(tu.regReady(b), tu.regReady(c)); r > cyc {
				tu.nextAt = tu.WaitReady(cyc, r)
				return false
			}
			tu.Insts++
			if m.Trace != nil {
				m.Trace.record(TraceEntry{Cycle: cyc, TID: tu.ID, PC: pc, Word: word})
			}
			tu.setReg(a, tu.reg(b)>>(tu.reg(c)&31), cyc+1)
			tu.ChargeRun(1)
			tu.nextAt = cyc + 1
			tu.PC = pc + 4
			return true
		}
	case isa.OpSRA:
		return func(m *Machine, tu *TU, cyc uint64) bool {
			if r := timing.MaxReady(tu.regReady(b), tu.regReady(c)); r > cyc {
				tu.nextAt = tu.WaitReady(cyc, r)
				return false
			}
			tu.Insts++
			if m.Trace != nil {
				m.Trace.record(TraceEntry{Cycle: cyc, TID: tu.ID, PC: pc, Word: word})
			}
			tu.setReg(a, uint32(int32(tu.reg(b))>>(tu.reg(c)&31)), cyc+1)
			tu.ChargeRun(1)
			tu.nextAt = cyc + 1
			tu.PC = pc + 4
			return true
		}
	case isa.OpSLT:
		return func(m *Machine, tu *TU, cyc uint64) bool {
			if r := timing.MaxReady(tu.regReady(b), tu.regReady(c)); r > cyc {
				tu.nextAt = tu.WaitReady(cyc, r)
				return false
			}
			tu.Insts++
			if m.Trace != nil {
				m.Trace.record(TraceEntry{Cycle: cyc, TID: tu.ID, PC: pc, Word: word})
			}
			tu.setReg(a, boolBit(int32(tu.reg(b)) < int32(tu.reg(c))), cyc+1)
			tu.ChargeRun(1)
			tu.nextAt = cyc + 1
			tu.PC = pc + 4
			return true
		}
	case isa.OpSLTU:
		return func(m *Machine, tu *TU, cyc uint64) bool {
			if r := timing.MaxReady(tu.regReady(b), tu.regReady(c)); r > cyc {
				tu.nextAt = tu.WaitReady(cyc, r)
				return false
			}
			tu.Insts++
			if m.Trace != nil {
				m.Trace.record(TraceEntry{Cycle: cyc, TID: tu.ID, PC: pc, Word: word})
			}
			tu.setReg(a, boolBit(tu.reg(b) < tu.reg(c)), cyc+1)
			tu.ChargeRun(1)
			tu.nextAt = cyc + 1
			tu.PC = pc + 4
			return true
		}
	case isa.OpADDI:
		return func(m *Machine, tu *TU, cyc uint64) bool {
			if r := tu.regReady(b); r > cyc {
				tu.nextAt = tu.WaitReady(cyc, r)
				return false
			}
			tu.Insts++
			if m.Trace != nil {
				m.Trace.record(TraceEntry{Cycle: cyc, TID: tu.ID, PC: pc, Word: word})
			}
			tu.setReg(a, tu.reg(b)+uimm, cyc+1)
			tu.ChargeRun(1)
			tu.nextAt = cyc + 1
			tu.PC = pc + 4
			return true
		}
	case isa.OpANDI:
		return func(m *Machine, tu *TU, cyc uint64) bool {
			if r := tu.regReady(b); r > cyc {
				tu.nextAt = tu.WaitReady(cyc, r)
				return false
			}
			tu.Insts++
			if m.Trace != nil {
				m.Trace.record(TraceEntry{Cycle: cyc, TID: tu.ID, PC: pc, Word: word})
			}
			tu.setReg(a, tu.reg(b)&uimm, cyc+1)
			tu.ChargeRun(1)
			tu.nextAt = cyc + 1
			tu.PC = pc + 4
			return true
		}
	case isa.OpORI:
		return func(m *Machine, tu *TU, cyc uint64) bool {
			if r := tu.regReady(b); r > cyc {
				tu.nextAt = tu.WaitReady(cyc, r)
				return false
			}
			tu.Insts++
			if m.Trace != nil {
				m.Trace.record(TraceEntry{Cycle: cyc, TID: tu.ID, PC: pc, Word: word})
			}
			tu.setReg(a, tu.reg(b)|uimm, cyc+1)
			tu.ChargeRun(1)
			tu.nextAt = cyc + 1
			tu.PC = pc + 4
			return true
		}
	case isa.OpXORI:
		return func(m *Machine, tu *TU, cyc uint64) bool {
			if r := tu.regReady(b); r > cyc {
				tu.nextAt = tu.WaitReady(cyc, r)
				return false
			}
			tu.Insts++
			if m.Trace != nil {
				m.Trace.record(TraceEntry{Cycle: cyc, TID: tu.ID, PC: pc, Word: word})
			}
			tu.setReg(a, tu.reg(b)^uimm, cyc+1)
			tu.ChargeRun(1)
			tu.nextAt = cyc + 1
			tu.PC = pc + 4
			return true
		}
	case isa.OpSLLI:
		return func(m *Machine, tu *TU, cyc uint64) bool {
			if r := tu.regReady(b); r > cyc {
				tu.nextAt = tu.WaitReady(cyc, r)
				return false
			}
			tu.Insts++
			if m.Trace != nil {
				m.Trace.record(TraceEntry{Cycle: cyc, TID: tu.ID, PC: pc, Word: word})
			}
			tu.setReg(a, tu.reg(b)<<sh, cyc+1)
			tu.ChargeRun(1)
			tu.nextAt = cyc + 1
			tu.PC = pc + 4
			return true
		}
	case isa.OpSRLI:
		return func(m *Machine, tu *TU, cyc uint64) bool {
			if r := tu.regReady(b); r > cyc {
				tu.nextAt = tu.WaitReady(cyc, r)
				return false
			}
			tu.Insts++
			if m.Trace != nil {
				m.Trace.record(TraceEntry{Cycle: cyc, TID: tu.ID, PC: pc, Word: word})
			}
			tu.setReg(a, tu.reg(b)>>sh, cyc+1)
			tu.ChargeRun(1)
			tu.nextAt = cyc + 1
			tu.PC = pc + 4
			return true
		}
	case isa.OpSRAI:
		return func(m *Machine, tu *TU, cyc uint64) bool {
			if r := tu.regReady(b); r > cyc {
				tu.nextAt = tu.WaitReady(cyc, r)
				return false
			}
			tu.Insts++
			if m.Trace != nil {
				m.Trace.record(TraceEntry{Cycle: cyc, TID: tu.ID, PC: pc, Word: word})
			}
			tu.setReg(a, uint32(int32(tu.reg(b))>>sh), cyc+1)
			tu.ChargeRun(1)
			tu.nextAt = cyc + 1
			tu.PC = pc + 4
			return true
		}
	case isa.OpSLTI:
		return func(m *Machine, tu *TU, cyc uint64) bool {
			if r := tu.regReady(b); r > cyc {
				tu.nextAt = tu.WaitReady(cyc, r)
				return false
			}
			tu.Insts++
			if m.Trace != nil {
				m.Trace.record(TraceEntry{Cycle: cyc, TID: tu.ID, PC: pc, Word: word})
			}
			tu.setReg(a, boolBit(int32(tu.reg(b)) < imm), cyc+1)
			tu.ChargeRun(1)
			tu.nextAt = cyc + 1
			tu.PC = pc + 4
			return true
		}
	case isa.OpSLTIU:
		return func(m *Machine, tu *TU, cyc uint64) bool {
			if r := tu.regReady(b); r > cyc {
				tu.nextAt = tu.WaitReady(cyc, r)
				return false
			}
			tu.Insts++
			if m.Trace != nil {
				m.Trace.record(TraceEntry{Cycle: cyc, TID: tu.ID, PC: pc, Word: word})
			}
			tu.setReg(a, boolBit(tu.reg(b) < uimm), cyc+1)
			tu.ChargeRun(1)
			tu.nextAt = cyc + 1
			tu.PC = pc + 4
			return true
		}
	case isa.OpLUI:
		return func(m *Machine, tu *TU, cyc uint64) bool {
			tu.Insts++ // FmtU: no sources, never waits
			if m.Trace != nil {
				m.Trace.record(TraceEntry{Cycle: cyc, TID: tu.ID, PC: pc, Word: word})
			}
			tu.setReg(a, uimm<<13, cyc+1)
			tu.ChargeRun(1)
			tu.nextAt = cyc + 1
			tu.PC = pc + 4
			return true
		}
	}
	return nil
}

// compileBranch builds the complete closure for a conditional branch,
// nil for any other op. A branch reports a fall-through commit (true)
// only when not taken, so an untaken branch can lead a fused pair while
// a taken one ends the dispatch.
func compileBranch(pc uint32, in isa.Inst, word uint32, be uint64) opFn {
	ra, rb := in.A, in.B
	target := pc + 4 + uint32(in.Imm)*4
	switch in.Op {
	case isa.OpBEQ:
		return func(m *Machine, tu *TU, cyc uint64) bool {
			if r := timing.MaxReady(tu.regReady(ra), tu.regReady(rb)); r > cyc {
				tu.nextAt = tu.WaitReady(cyc, r)
				return false
			}
			tu.Insts++
			if m.Trace != nil {
				m.Trace.record(TraceEntry{Cycle: cyc, TID: tu.ID, PC: pc, Word: word})
			}
			tu.ChargeRun(be)
			tu.nextAt = cyc + be
			if tu.reg(ra) == tu.reg(rb) {
				tu.PC = target
				return false
			}
			tu.PC = pc + 4
			return true
		}
	case isa.OpBNE:
		return func(m *Machine, tu *TU, cyc uint64) bool {
			if r := timing.MaxReady(tu.regReady(ra), tu.regReady(rb)); r > cyc {
				tu.nextAt = tu.WaitReady(cyc, r)
				return false
			}
			tu.Insts++
			if m.Trace != nil {
				m.Trace.record(TraceEntry{Cycle: cyc, TID: tu.ID, PC: pc, Word: word})
			}
			tu.ChargeRun(be)
			tu.nextAt = cyc + be
			if tu.reg(ra) != tu.reg(rb) {
				tu.PC = target
				return false
			}
			tu.PC = pc + 4
			return true
		}
	case isa.OpBLT:
		return func(m *Machine, tu *TU, cyc uint64) bool {
			if r := timing.MaxReady(tu.regReady(ra), tu.regReady(rb)); r > cyc {
				tu.nextAt = tu.WaitReady(cyc, r)
				return false
			}
			tu.Insts++
			if m.Trace != nil {
				m.Trace.record(TraceEntry{Cycle: cyc, TID: tu.ID, PC: pc, Word: word})
			}
			tu.ChargeRun(be)
			tu.nextAt = cyc + be
			if int32(tu.reg(ra)) < int32(tu.reg(rb)) {
				tu.PC = target
				return false
			}
			tu.PC = pc + 4
			return true
		}
	case isa.OpBGE:
		return func(m *Machine, tu *TU, cyc uint64) bool {
			if r := timing.MaxReady(tu.regReady(ra), tu.regReady(rb)); r > cyc {
				tu.nextAt = tu.WaitReady(cyc, r)
				return false
			}
			tu.Insts++
			if m.Trace != nil {
				m.Trace.record(TraceEntry{Cycle: cyc, TID: tu.ID, PC: pc, Word: word})
			}
			tu.ChargeRun(be)
			tu.nextAt = cyc + be
			if int32(tu.reg(ra)) >= int32(tu.reg(rb)) {
				tu.PC = target
				return false
			}
			tu.PC = pc + 4
			return true
		}
	case isa.OpBLTU:
		return func(m *Machine, tu *TU, cyc uint64) bool {
			if r := timing.MaxReady(tu.regReady(ra), tu.regReady(rb)); r > cyc {
				tu.nextAt = tu.WaitReady(cyc, r)
				return false
			}
			tu.Insts++
			if m.Trace != nil {
				m.Trace.record(TraceEntry{Cycle: cyc, TID: tu.ID, PC: pc, Word: word})
			}
			tu.ChargeRun(be)
			tu.nextAt = cyc + be
			if tu.reg(ra) < tu.reg(rb) {
				tu.PC = target
				return false
			}
			tu.PC = pc + 4
			return true
		}
	case isa.OpBGEU:
		return func(m *Machine, tu *TU, cyc uint64) bool {
			if r := timing.MaxReady(tu.regReady(ra), tu.regReady(rb)); r > cyc {
				tu.nextAt = tu.WaitReady(cyc, r)
				return false
			}
			tu.Insts++
			if m.Trace != nil {
				m.Trace.record(TraceEntry{Cycle: cyc, TID: tu.ID, PC: pc, Word: word})
			}
			tu.ChargeRun(be)
			tu.nextAt = cyc + be
			if tu.reg(ra) >= tu.reg(rb) {
				tu.PC = target
				return false
			}
			tu.PC = pc + 4
			return true
		}
	}
	return nil
}

func mkJAL(pc, word uint32, a uint8, target uint32, be uint64) opFn {
	return func(m *Machine, tu *TU, cyc uint64) bool {
		tu.Insts++ // FmtJ: no sources, issues immediately
		if m.Trace != nil {
			m.Trace.record(TraceEntry{Cycle: cyc, TID: tu.ID, PC: pc, Word: word})
		}
		tu.setReg(a, pc+4, cyc+2)
		if obs.Enabled && tu.Samp != nil && a != isa.RZero {
			tu.Samp.Call(target)
		}
		tu.ChargeRun(be)
		tu.nextAt = cyc + be
		tu.PC = target
		return false
	}
}

func mkJALR(pc, word uint32, a, b uint8, imm uint32, be uint64) opFn {
	return func(m *Machine, tu *TU, cyc uint64) bool {
		if r := tu.regReady(b); r > cyc {
			tu.nextAt = tu.WaitReady(cyc, r)
			return false
		}
		tu.Insts++
		if m.Trace != nil {
			m.Trace.record(TraceEntry{Cycle: cyc, TID: tu.ID, PC: pc, Word: word})
		}
		t := tu.reg(b) + imm
		tu.setReg(a, pc+4, cyc+2)
		if t%4 != 0 {
			m.Trap("sim: thread %d: jalr to unaligned %#x at %#x", tu.ID, t, pc)
			tu.ChargeRun(be)
			tu.nextAt = cyc + be
			return false
		}
		if obs.Enabled && tu.Samp != nil {
			if a != isa.RZero {
				tu.Samp.Call(t)
			} else {
				tu.Samp.Ret()
			}
		}
		tu.ChargeRun(be)
		tu.nextAt = cyc + be
		tu.PC = t
		return false
	}
}

func mkLW(pc, word uint32, a, b uint8, imm uint32, memExec uint64) opFn {
	return func(m *Machine, tu *TU, cyc uint64) bool {
		if r := tu.regReady(b); r > cyc {
			tu.nextAt = tu.WaitReady(cyc, r)
			return false
		}
		tu.Insts++
		if m.Trace != nil {
			m.Trace.record(TraceEntry{Cycle: cyc, TID: tu.ID, PC: pc, Word: word})
		}
		ea := tu.reg(b) + imm
		phys := arch.Phys(ea)
		if phys%4 != 0 {
			m.Trap("sim: thread %d: unaligned %d-byte access to %#x at pc %#x", tu.ID, 4, ea, pc)
			return false
		}
		v, err := m.Chip.Mem.Read32(phys &^ 3)
		if err != nil {
			m.Trap("sim: thread %d: %v at pc %#x", tu.ID, err, pc)
			return false
		}
		acc := m.Chip.Data.Load(cyc, ea, 4, tu.Quad)
		tu.setReg(a, v, acc.Done)
		tu.ObserveAccess(acc)
		tu.ChargeRun(memExec)
		// Loads free the thread at cyc+1; SettleAccess also applies the
		// policy's miss-switch penalty, same as the generic issue path.
		tu.nextAt = tu.SettleAccess(acc, cyc+memExec, cyc+1)
		tu.PC = pc + 4
		return true
	}
}

func mkLD(pc, word uint32, a, b uint8, imm uint32, memExec uint64) opFn {
	return func(m *Machine, tu *TU, cyc uint64) bool {
		if r := tu.regReady(b); r > cyc {
			tu.nextAt = tu.WaitReady(cyc, r)
			return false
		}
		tu.Insts++
		if m.Trace != nil {
			m.Trace.record(TraceEntry{Cycle: cyc, TID: tu.ID, PC: pc, Word: word})
		}
		ea := tu.reg(b) + imm
		phys := arch.Phys(ea)
		if phys%8 != 0 {
			m.Trap("sim: thread %d: unaligned %d-byte access to %#x at pc %#x", tu.ID, 8, ea, pc)
			return false
		}
		if !FRegOK(a) {
			m.Trap("sim: thread %d: ld destination r%d not a pair at %#x", tu.ID, a, pc)
			return false
		}
		v, err := m.Chip.Mem.Read64(phys)
		if err != nil {
			m.Trap("sim: thread %d: %v at pc %#x", tu.ID, err, pc)
			return false
		}
		acc := m.Chip.Data.Load(cyc, ea, 8, tu.Quad)
		tu.setReg(a, uint32(v), acc.Done)
		tu.setReg(a+1, uint32(v>>32), acc.Done)
		tu.ObserveAccess(acc)
		tu.ChargeRun(memExec)
		tu.nextAt = tu.SettleAccess(acc, cyc+memExec, cyc+1)
		tu.PC = pc + 4
		return true
	}
}

func mkSW(pc, word uint32, a, b uint8, imm uint32, memExec uint64) opFn {
	return func(m *Machine, tu *TU, cyc uint64) bool {
		if r := timing.MaxReady(tu.regReady(a), tu.regReady(b)); r > cyc {
			tu.nextAt = tu.WaitReady(cyc, r)
			return false
		}
		tu.Insts++
		if m.Trace != nil {
			m.Trace.record(TraceEntry{Cycle: cyc, TID: tu.ID, PC: pc, Word: word})
		}
		ea := tu.reg(b) + imm
		phys := arch.Phys(ea)
		if phys%4 != 0 {
			m.Trap("sim: thread %d: unaligned %d-byte access to %#x at pc %#x", tu.ID, 4, ea, pc)
			return false
		}
		if err := m.Chip.Mem.Write32(phys, tu.reg(a)); err != nil {
			m.Trap("sim: thread %d: %v at pc %#x", tu.ID, err, pc)
			return false
		}
		// A store into watched text bumps the code generation; reporting
		// false forces the dispatch loop to re-check it before the next
		// op, so a store can never execute stale compiled code — not
		// even in its own block.
		acc := m.Chip.Data.Store(cyc, ea, 4, tu.Quad)
		tu.ObserveAccess(acc)
		tu.ChargeRun(memExec)
		tu.nextAt = tu.SettleAccess(acc, cyc+memExec, acc.Done)
		tu.PC = pc + 4
		return false
	}
}
