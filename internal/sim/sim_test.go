package sim

import (
	"math"
	"strings"
	"testing"

	"cyclops/internal/arch"
	"cyclops/internal/asm"
	"cyclops/internal/core"
)

// run assembles src, loads it, starts thread 2 at the entry point and runs
// to completion, returning the machine for inspection.
func run(t *testing.T, src string) *Machine {
	t.Helper()
	m, err := tryRun(src)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func tryRun(src string) (*Machine, error) {
	return tryRunEngine(src, DefaultEngine())
}

func tryRunEngine(src string, e Engine) (*Machine, error) {
	p, err := asm.Assemble(src)
	if err != nil {
		return nil, err
	}
	chip := core.MustNew(arch.Default())
	m := New(chip, nil)
	m.SetEngine(e)
	m.MaxCycles = 2_000_000
	if err := chip.LoadImage(p.Origin, p.Bytes); err != nil {
		return nil, err
	}
	if err := m.Start(2, p.Entry); err != nil {
		return nil, err
	}
	return m, m.Run()
}

// runEngine is run with an explicit engine selection.
func runEngine(t *testing.T, src string, e Engine) *Machine {
	t.Helper()
	m, err := tryRunEngine(src, e)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func word(t *testing.T, m *Machine, addr uint32) uint32 {
	t.Helper()
	v, err := m.Chip.Mem.Read32(addr)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestArithmeticProgram(t *testing.T) {
	m := run(t, `
	li   r8, 1000
	li   r9, 337
	add  r10, r8, r9	; 1337
	sub  r11, r8, r9	; 663
	mul  r12, r8, r9	; 337000
	div  r13, r8, r9	; 2
	la   r20, out
	sw   r10, 0(r20)
	sw   r11, 4(r20)
	sw   r12, 8(r20)
	sw   r13, 12(r20)
	halt
out:	.space 16
	`)
	out := m.Chip.Mem
	base, _ := out.Read32(0) // unused; silence nothing
	_ = base
	addr := uint32(0)
	// Find "out" via known layout: instructions occupy the start; easier
	// to just scan the assembled symbol table — but run() drops it, so
	// recompute from the fact out follows the halt. Instead re-assemble.
	p, _ := asm.Assemble(`
	li   r8, 1000
	li   r9, 337
	add  r10, r8, r9
	sub  r11, r8, r9
	mul  r12, r8, r9
	div  r13, r8, r9
	la   r20, out
	sw   r10, 0(r20)
	sw   r11, 4(r20)
	sw   r12, 8(r20)
	sw   r13, 12(r20)
	halt
out:	.space 16
	`)
	addr = p.Symbols["out"]
	want := []uint32{1337, 663, 337000, 2}
	for i, w := range want {
		if got := word(t, m, addr+uint32(4*i)); got != w {
			t.Errorf("out[%d] = %d, want %d", i, got, w)
		}
	}
}

func TestLogicAndShifts(t *testing.T) {
	m := run(t, `
	li   r8, 0xff0
	li   r9, 0x0ff
	and  r10, r8, r9
	or   r11, r8, r9
	xor  r12, r8, r9
	nor  r13, r8, r9
	slli r14, r9, 4
	srli r15, r8, 4
	li   r16, -64
	srai r17, r16, 3	; -8
	slt  r18, r16, r0	; 1 (signed)
	sltu r19, r16, r0	; 0 (unsigned: big)
	la   r20, out
	sw   r10, 0(r20)
	sw   r11, 4(r20)
	sw   r12, 8(r20)
	sw   r13, 12(r20)
	sw   r14, 16(r20)
	sw   r15, 20(r20)
	sw   r17, 24(r20)
	sw   r18, 28(r20)
	sw   r19, 32(r20)
	halt
	.align 4
out:	.space 36
	`)
	p, _ := asm.Assemble("nop") // placeholder; need symbol from same src
	_ = p
	// Recover the symbol address by re-assembling the same source.
	src := `
	li   r8, 0xff0
	li   r9, 0x0ff
	and  r10, r8, r9
	or   r11, r8, r9
	xor  r12, r8, r9
	nor  r13, r8, r9
	slli r14, r9, 4
	srli r15, r8, 4
	li   r16, -64
	srai r17, r16, 3
	slt  r18, r16, r0
	sltu r19, r16, r0
	la   r20, out
	sw   r10, 0(r20)
	sw   r11, 4(r20)
	sw   r12, 8(r20)
	sw   r13, 12(r20)
	sw   r14, 16(r20)
	sw   r15, 20(r20)
	sw   r17, 24(r20)
	sw   r18, 28(r20)
	sw   r19, 32(r20)
	halt
	.align 4
out:	.space 36
	`
	pp, _ := asm.Assemble(src)
	addr := pp.Symbols["out"]
	minus8 := int32(-8)
	want := []uint32{0x0f0, 0xfff, 0xf0f, ^uint32(0xfff), 0xff0, 0xff, uint32(minus8), 1, 0}
	for i, w := range want {
		if got := word(t, m, addr+uint32(4*i)); got != w {
			t.Errorf("out[%d] = %#x, want %#x", i, got, w)
		}
	}
}

func TestLoopAndBranches(t *testing.T) {
	// Sum 1..100 = 5050.
	m := run(t, `
	li   r8, 0	; sum
	li   r9, 1	; i
	li   r10, 100
loop:	add  r8, r8, r9
	addi r9, r9, 1
	ble  r9, r10, loop
	la   r20, out
	sw   r8, 0(r20)
	halt
out:	.space 4
	`)
	pp, _ := asm.Assemble(`
	li   r8, 0
	li   r9, 1
	li   r10, 100
loop:	add  r8, r8, r9
	addi r9, r9, 1
	ble  r9, r10, loop
	la   r20, out
	sw   r8, 0(r20)
	halt
out:	.space 4
	`)
	if got := word(t, m, pp.Symbols["out"]); got != 5050 {
		t.Errorf("sum = %d, want 5050", got)
	}
}

func TestFloatingPoint(t *testing.T) {
	src := `
	la   r8, in
	ld   d16, 0(r8)		; 3.0
	ld   d18, 8(r8)		; 4.0
	fmul d20, d16, d16	; 9
	fma  d22, d18, d18, d20	; 16+9 = 25
	fsqrt d24, d22		; 5
	fadd d26, d24, d16	; 8
	fsub d28, d26, d18	; 4
	fdiv d30, d28, d16	; 4/3
	la   r9, out
	sd   d24, 0(r9)
	sd   d30, 8(r9)
	fcvtwd r10, d24
	sw   r10, 16(r9)
	li   r11, 7
	fcvtdw d32, r11
	sd   d32, 24(r9)
	fclt r12, d16, d18	; 1
	sw   r12, 32(r9)
	halt
	.align 8
in:	.double 3.0, 4.0
out:	.space 40
	`
	m := run(t, src)
	pp, _ := asm.Assemble(src)
	o := pp.Symbols["out"]
	rd64 := func(a uint32) float64 {
		v, err := m.Chip.Mem.Read64(a)
		if err != nil {
			t.Fatal(err)
		}
		return float64frombits(v)
	}
	if got := rd64(o); got != 5.0 {
		t.Errorf("sqrt(25) = %v", got)
	}
	if got := rd64(o + 8); got < 1.333 || got > 1.334 {
		t.Errorf("4/3 = %v", got)
	}
	if got := word(t, m, o+16); got != 5 {
		t.Errorf("fcvtwd = %d", got)
	}
	if got := rd64(o + 24); got != 7.0 {
		t.Errorf("fcvtdw = %v", got)
	}
	if got := word(t, m, o+32); got != 1 {
		t.Errorf("fclt = %d", got)
	}
}

func TestSubWordMemory(t *testing.T) {
	src := `
	la   r8, buf
	li   r9, 0x80
	sb   r9, 0(r8)
	li   r9, 0x8001
	sh   r9, 2(r8)
	lb   r10, 0(r8)		; sign-extends to -128
	lbu  r11, 0(r8)		; 0x80
	lh   r12, 2(r8)		; sign-extends
	lhu  r13, 2(r8)		; 0x8001
	la   r14, out
	sw   r10, 0(r14)
	sw   r11, 4(r14)
	sw   r12, 8(r14)
	sw   r13, 12(r14)
	halt
	.align 4
buf:	.space 8
out:	.space 16
	`
	m := run(t, src)
	pp, _ := asm.Assemble(src)
	o := pp.Symbols["out"]
	minus128 := int32(-128)
	h := uint16(0x8001)
	sexth := int32(int16(h))
	want := []uint32{uint32(minus128), 0x80, uint32(sexth), 0x8001}
	for i, w := range want {
		if got := word(t, m, o+uint32(4*i)); got != w {
			t.Errorf("out[%d] = %#x, want %#x", i, got, w)
		}
	}
}

func TestAtomics(t *testing.T) {
	src := `
	la   r8, ctr
	li   r9, 5
	amoadd r10, (r8), r9	; old 0, ctr=5
	li   r9, 40
	amoswap r11, (r8), r9	; old 5, ctr=40
	mov  r12, r9		; expect 40
	li   r13, 99
	mov  r4, r12
	amocas r4, (r8), r13	; matches -> ctr=99, r4=40
	la   r14, out
	sw   r10, 0(r14)
	sw   r11, 4(r14)
	sw   r4, 8(r14)
	lw   r15, 0(r8)
	sw   r15, 12(r14)
	halt
	.align 4
ctr:	.word 0
out:	.space 16
	`
	m := run(t, src)
	pp, _ := asm.Assemble(src)
	o := pp.Symbols["out"]
	want := []uint32{0, 5, 40, 99}
	for i, w := range want {
		if got := word(t, m, o+uint32(4*i)); got != w {
			t.Errorf("out[%d] = %d, want %d", i, got, w)
		}
	}
}

func float64frombits(b uint64) float64 {
	return mathFloat64frombits(b)
}

func TestTraps(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"illegal", ".word 0xffffffff", "illegal instruction"},
		{"unaligned lw", "li r8, 2\nlw r9, 0(r8)\nhalt", "unaligned"},
		{"unaligned ld", "li r8, 4\nld d16, 0(r8)\nhalt", "unaligned"},
		{"div by zero", "li r8, 1\ndiv r9, r8, r0\nhalt", "divide by zero"},
		{"odd ld dest", "ld r9, 0(r0)\nhalt", "not a pair"},
		{"syscall without kernel", "syscall", "no kernel"},
		{"mtspr bad", "mtspr r8, 0", "not writable"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := tryRun(c.src)
			if err == nil {
				t.Fatal("no trap")
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("trap %q does not mention %q", err, c.wantSub)
			}
		})
	}
}

func TestDependentAddsRunOnePerCycle(t *testing.T) {
	// 100 dependent adds vs 100 independent adds should take the same
	// time: ALU results are ready the next cycle either way.
	dep := run(t, strings.Repeat("add r8, r8, r8\n", 100)+"halt")
	var indep strings.Builder
	for i := 0; i < 100; i++ {
		indep.WriteString("add r8, r9, r10\n")
	}
	indep.WriteString("halt")
	ind := run(t, indep.String())
	d, i := dep.TUs[2], ind.TUs[2]
	if d.Run != i.Run {
		t.Errorf("dependent adds %d run cycles vs independent %d", d.Run, i.Run)
	}
}

func TestLoadUseStall(t *testing.T) {
	// A chain of load->use pairs stalls on the 6-cycle local-hit latency;
	// the same loads without consumers do not.
	chained := run(t, `
	la  r8, buf
	lw  r9, 0(r8)
	add r10, r9, r9
	lw  r9, 0(r8)
	add r10, r9, r9
	lw  r9, 0(r8)
	add r10, r9, r9
	halt
buf:	.word 7
	`)
	free := run(t, `
	la  r8, buf
	lw  r9, 0(r8)
	add r10, r11, r11
	lw  r9, 0(r8)
	add r10, r11, r11
	lw  r9, 0(r8)
	add r10, r11, r11
	halt
buf:	.word 7
	`)
	c, f := chained.TUs[2], free.TUs[2]
	if c.Stall <= f.Stall {
		t.Errorf("load-use chain stalled %d cycles, independent %d: expected more stalls with dependences",
			c.Stall, f.Stall)
	}
}

func TestFPLatencyChain(t *testing.T) {
	// Dependent FP adds pay the 1+5 cycle latency each.
	dep := run(t, `
	fadd d16, d16, d16
	fadd d16, d16, d16
	fadd d16, d16, d16
	fadd d16, d16, d16
	halt
	`)
	ind := run(t, `
	fadd d16, d20, d22
	fadd d18, d20, d22
	fadd d24, d20, d22
	fadd d26, d20, d22
	halt
	`)
	if dep.TUs[2].Stall < ind.TUs[2].Stall+12 {
		t.Errorf("dependent FP chain stalls = %d, independent = %d; want >= 12 cycle gap",
			dep.TUs[2].Stall, ind.TUs[2].Stall)
	}
}

func TestIntDivBlocksThread(t *testing.T) {
	div := run(t, `
	li  r8, 100
	li  r9, 3
	div r10, r8, r9
	halt
	`)
	add := run(t, `
	li  r8, 100
	li  r9, 3
	add r10, r8, r9
	halt
	`)
	gap := div.TUs[2].Run - add.TUs[2].Run
	if gap != 32 { // 33-cycle divide vs 1-cycle add
		t.Errorf("divide run-cycle gap = %d, want 32", gap)
	}
}

func TestHardwareBarrierBetweenThreads(t *testing.T) {
	// Two threads synchronise through the wired-OR SPR; thread B busy
	// waits much longer because A loops before entering.
	chip := core.MustNew(arch.Default())
	m := New(chip, nil)
	m.MaxCycles = 1_000_000
	src := `
	; r4 = 1 for the slow thread, 0 for the fast one
	mfspr r8, 4		; current OR (bit0 armed by test)
	li   r9, 2000
	beq  r4, r0, enter
delay:	addi r9, r9, -1
	bne  r9, r0, delay
enter:	mfspr r10, 4		; own | OR
	; enter: clear bit0, set bit1
	li   r11, 2
	mtspr r11, 4
spin:	mfspr r12, 4
	andi r12, r12, 1
	bne  r12, r0, spin
	; both threads released: record the cycle
	mfspr r13, 2
	la   r14, out
	mfspr r15, 0		; tid
	slli r15, r15, 2
	add  r14, r14, r15
	sw   r13, 0(r14)
	halt
	.align 4
out:	.space 1024
	`
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	chip.LoadImage(p.Origin, p.Bytes)
	// Arm bit0 for both participants before start.
	chip.Barrier.Write(2, 1)
	chip.Barrier.Write(3, 1)
	m.Start(2, p.Entry)
	m.Start(3, p.Entry)
	m.TUs[2].Regs[4] = 1 // slow
	m.TUs[3].Regs[4] = 0 // fast
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	out := p.Symbols["out"]
	c2 := word(t, m, out+2*4)
	c3 := word(t, m, out+3*4)
	diff := int64(c2) - int64(c3)
	if diff < -20 || diff > 20 {
		t.Errorf("barrier release cycles differ by %d (thread2 %d, thread3 %d)", diff, c2, c3)
	}
	// Both threads ran at least the delay loop length.
	if c2 < 2000 {
		t.Errorf("released at cycle %d, before the slow thread could enter", c2)
	}
}

func TestRunRespectsMaxCycles(t *testing.T) {
	_, err := tryRunWithLimit("spin: b spin", 5000)
	if err == nil || !strings.Contains(err.Error(), "cycle limit") {
		t.Errorf("runaway loop not stopped: %v", err)
	}
}

func tryRunWithLimit(src string, limit uint64) (*Machine, error) {
	p, err := asm.Assemble(src)
	if err != nil {
		return nil, err
	}
	chip := core.MustNew(arch.Default())
	m := New(chip, nil)
	m.MaxCycles = limit
	chip.LoadImage(p.Origin, p.Bytes)
	m.Start(2, p.Entry)
	return m, m.Run()
}

func TestStartValidation(t *testing.T) {
	chip := core.MustNew(arch.Default())
	m := New(chip, nil)
	if err := m.Start(-1, 0); err == nil {
		t.Error("negative tid accepted")
	}
	if err := m.Start(999, 0); err == nil {
		t.Error("huge tid accepted")
	}
	chip.DisableQuad(3)
	if err := m.Start(12, 0); err == nil {
		t.Error("thread in disabled quad accepted")
	}
	if err := m.Start(2, 0); err != nil {
		t.Error(err)
	}
	if err := m.Start(2, 0); err == nil {
		t.Error("double start accepted")
	}
}

func TestRunStallAccounting(t *testing.T) {
	m := run(t, `
	li r8, 50
loop:	addi r8, r8, -1
	bne r8, r0, loop
	halt
	`)
	tu := m.TUs[2]
	if tu.Run == 0 {
		t.Fatal("no run cycles recorded")
	}
	total := tu.EndCycle - tu.StartCycle
	if tu.Run+tu.Stall > total+2 {
		t.Errorf("run %d + stall %d exceeds elapsed %d", tu.Run, tu.Stall, total)
	}
	if tu.Insts < 100 {
		t.Errorf("instruction count = %d, want >= 100", tu.Insts)
	}
}

// mathFloat64frombits avoids importing math twice in test helpers.
func mathFloat64frombits(b uint64) float64 { return math.Float64frombits(b) }
