package sim

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"cyclops/internal/arch"
	"cyclops/internal/asm"
	"cyclops/internal/core"
)

// Property test: random straight-line integer programs executed by the
// simulator must match a direct Go evaluation of the same operations.

type aluOp struct {
	mnem string
	eval func(b, c uint32) uint32
	imm  bool // immediate form: c is the immediate
}

func aluOps() []aluOp {
	return []aluOp{
		{"add", func(b, c uint32) uint32 { return b + c }, false},
		{"sub", func(b, c uint32) uint32 { return b - c }, false},
		{"and", func(b, c uint32) uint32 { return b & c }, false},
		{"or", func(b, c uint32) uint32 { return b | c }, false},
		{"xor", func(b, c uint32) uint32 { return b ^ c }, false},
		{"nor", func(b, c uint32) uint32 { return ^(b | c) }, false},
		{"sll", func(b, c uint32) uint32 { return b << (c & 31) }, false},
		{"srl", func(b, c uint32) uint32 { return b >> (c & 31) }, false},
		{"sra", func(b, c uint32) uint32 { return uint32(int32(b) >> (c & 31)) }, false},
		{"slt", func(b, c uint32) uint32 { return boolBit(int32(b) < int32(c)) }, false},
		{"sltu", func(b, c uint32) uint32 { return boolBit(b < c) }, false},
		{"mul", func(b, c uint32) uint32 { return uint32(int32(b) * int32(c)) }, false},
		{"addi", func(b, c uint32) uint32 { return b + c }, true},
		{"andi", func(b, c uint32) uint32 { return b & c }, true},
		{"ori", func(b, c uint32) uint32 { return b | c }, true},
		{"xori", func(b, c uint32) uint32 { return b ^ c }, true},
		{"slli", func(b, c uint32) uint32 { return b << (c & 31) }, true},
		{"srli", func(b, c uint32) uint32 { return b >> (c & 31) }, true},
		{"srai", func(b, c uint32) uint32 { return uint32(int32(b) >> (c & 31)) }, true},
	}
}

func TestALUAgainstGoOracle(t *testing.T) {
	ops := aluOps()
	for trial := 0; trial < 30; trial++ {
		r := rand.New(rand.NewSource(int64(trial)))
		// Oracle register file: r8..r23 hold working values.
		regs := make([]uint32, 24)
		var src strings.Builder
		for i := 8; i < 24; i++ {
			v := r.Uint32() >> uint(r.Intn(20)) // mixed magnitudes
			regs[i] = v
			fmt.Fprintf(&src, "\tli r%d, %d\n", i, int64(v))
		}
		for k := 0; k < 60; k++ {
			op := ops[r.Intn(len(ops))]
			rd := 8 + r.Intn(16)
			rb := 8 + r.Intn(16)
			if op.imm {
				var imm int32
				if op.mnem == "slli" || op.mnem == "srli" || op.mnem == "srai" {
					imm = int32(r.Intn(32))
				} else if op.mnem == "addi" {
					imm = int32(r.Intn(8192)) - 4096
				} else {
					imm = int32(r.Intn(8192)) // logical: unsigned 13-bit
				}
				fmt.Fprintf(&src, "\t%s r%d, r%d, %d\n", op.mnem, rd, rb, imm)
				regs[rd] = op.eval(regs[rb], uint32(imm))
			} else {
				rc := 8 + r.Intn(16)
				fmt.Fprintf(&src, "\t%s r%d, r%d, r%d\n", op.mnem, rd, rb, rc)
				regs[rd] = op.eval(regs[rb], regs[rc])
			}
		}
		// Dump the working registers.
		src.WriteString("\tla r30, out\n")
		for i := 8; i < 24; i++ {
			fmt.Fprintf(&src, "\tsw r%d, %d(r30)\n", i, 4*(i-8))
		}
		src.WriteString("\thalt\nout:\t.space 64\n")

		p, err := asm.Assemble(src.String())
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, src.String())
		}
		chip := core.MustNew(arch.Default())
		m := New(chip, nil)
		m.MaxCycles = 1_000_000
		chip.LoadImage(p.Origin, p.Bytes)
		m.Start(2, p.Entry)
		if err := m.Run(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		out := p.Symbols["out"]
		for i := 8; i < 24; i++ {
			got, err := chip.Mem.Read32(out + uint32(4*(i-8)))
			if err != nil {
				t.Fatal(err)
			}
			if got != regs[i] {
				t.Fatalf("trial %d: r%d = %#x, oracle %#x\n%s", trial, i, got, regs[i], src.String())
			}
		}
	}
}

// The immediate forms must agree with their register forms.
func TestImmediateFormsMatchRegisterForms(t *testing.T) {
	pairs := [][2]string{
		{"add", "addi"}, {"and", "andi"}, {"or", "ori"}, {"xor", "xori"},
		{"sll", "slli"}, {"srl", "srli"}, {"sra", "srai"},
	}
	for _, pair := range pairs {
		src := fmt.Sprintf(`
	li   r8, 0x1234
	li   r9, 7
	%s   r10, r8, r9
	%s   r11, r8, 7
	la   r12, out
	sw   r10, 0(r12)
	sw   r11, 4(r12)
	halt
out:	.space 8
	`, pair[0], pair[1])
		m, err := tryRun(src)
		if err != nil {
			t.Fatalf("%v: %v", pair, err)
		}
		p, _ := asm.Assemble(src)
		a, _ := m.Chip.Mem.Read32(p.Symbols["out"])
		b, _ := m.Chip.Mem.Read32(p.Symbols["out"] + 4)
		if a != b {
			t.Errorf("%s/%s disagree: %#x vs %#x", pair[0], pair[1], a, b)
		}
	}
}
