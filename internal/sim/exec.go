package sim

import (
	"math"

	"cyclops/internal/arch"
	"cyclops/internal/cache"
	"cyclops/internal/isa"
	"cyclops/internal/obs"
	"cyclops/internal/timing"
)

// All stall charging is delegated to the embedded timing.Ledger
// (Charge, WaitReady, ChargeMemStall, ObserveAccess): the Table 2 charge
// rules have exactly one implementation, shared with internal/perf.

// reg reads a register; r0 is hardwired to zero.
func (tu *TU) reg(r uint8) uint32 {
	if r == isa.RZero || r >= isa.NumRegs {
		// r only exceeds the file via the +1 of a pair access based at
		// r63; reads clamp to zero, matching isa's RegMask metadata.
		return 0
	}
	return tu.Regs[r]
}

// setReg writes a register and records when its value becomes available.
func (tu *TU) setReg(r uint8, v uint32, ready uint64) {
	if r == isa.RZero || r >= isa.NumRegs {
		return
	}
	tu.Regs[r] = v
	tu.ready[r] = ready
}

// freg reads the double-precision value in pair (r, r+1); r must be even.
func (tu *TU) freg(r uint8) float64 {
	lo, hi := uint64(tu.reg(r)), uint64(tu.reg(r+1))
	return math.Float64frombits(hi<<32 | lo)
}

// setFReg writes a double into pair (r, r+1).
func (tu *TU) setFReg(r uint8, f float64, ready uint64) {
	bits := math.Float64bits(f)
	tu.setReg(r, uint32(bits), ready)
	tu.setReg(r+1, uint32(bits>>32), ready)
}

// regReady returns the cycle register r is available.
func (tu *TU) regReady(r uint8) uint64 {
	if r == isa.RZero || r >= isa.NumRegs {
		return 0
	}
	return tu.ready[r]
}

// sources returns the cycle at which all of in's source operands are ready.
func (tu *TU) sources(in isa.Inst, info *isa.Info) timing.ReadyTime {
	var t timing.ReadyTime
	pair := func(r uint8) {
		t = timing.MaxReady(t, tu.regReady(r))
		t = timing.MaxReady(t, tu.regReady(r+1))
	}
	switch info.Format {
	case isa.FmtR:
		switch {
		case info.Mem: // atomics: address B, value C, compare A (cas)
			t = timing.MaxReady(tu.regReady(in.B), tu.regReady(in.C))
			if in.Op == isa.OpAMOCAS {
				t = timing.MaxReady(t, tu.regReady(in.A))
			}
		case in.Op == isa.OpFCVTDW: // integer source
			t = tu.regReady(in.B)
		case info.Pipe != isa.PipeNone: // FP: pair sources
			pair(in.B)
			switch in.Op {
			case isa.OpFNEG, isa.OpFABS, isa.OpFMOV, isa.OpFSQRT, isa.OpFCVTWD:
			default:
				pair(in.C)
			}
		default:
			t = timing.MaxReady(tu.regReady(in.B), tu.regReady(in.C))
		}
	case isa.FmtR4:
		pair(in.B)
		pair(in.C)
		pair(in.D)
	case isa.FmtI:
		switch in.Op {
		case isa.OpMFSPR:
		case isa.OpMTSPR:
			t = tu.regReady(in.A)
		default:
			t = tu.regReady(in.B)
		}
	case isa.FmtS:
		t = timing.MaxReady(tu.regReady(in.A), tu.regReady(in.B))
		if info.Pair {
			t = timing.MaxReady(t, tu.regReady(in.A+1))
		}
	case isa.FmtB:
		t = timing.MaxReady(tu.regReady(in.A), tu.regReady(in.B))
	}
	return t
}

// memSize returns the access width of a memory instruction.
func memSize(op isa.Op) uint32 {
	switch op {
	case isa.OpLB, isa.OpLBU, isa.OpSB:
		return 1
	case isa.OpLH, isa.OpLHU, isa.OpSH:
		return 2
	case isa.OpLD, isa.OpSD:
		return 8
	default:
		return 4
	}
}

// step attempts to issue one instruction for tu at the current cycle.
func (m *Machine) step(tu *TU) {
	cycle := m.cycle
	if obs.Enabled && tu.Samp != nil {
		// Publish the PC before any charge so fetch stalls, dep stalls
		// and issue cycles all sample at the instruction they belong to.
		tu.Samp.SetPC(tu.PC)
	}

	// Instruction fetch through the PIB and the quad pair's I-cache.
	if !tu.pib.contains(tu.PC) {
		m.fetchPIB(tu, cycle)
		return
	}

	var in isa.Inst
	var info *isa.Info
	var word uint32
	if m.engine == EngineLegacy {
		w, err := m.Chip.Mem.Read32(tu.PC)
		if err != nil {
			m.Trap("sim: thread %d: fetch at %#x: %v", tu.ID, tu.PC, err)
			return
		}
		in = isa.Decode(w)
		if in.Op == isa.OpInvalid {
			m.Trap("sim: thread %d: illegal instruction %#08x at %#x", tu.ID, w, tu.PC)
			return
		}
		info, word = isa.InfoRef(in.Op), w
	} else {
		e := m.fetchDecoded(tu)
		if e == nil {
			return
		}
		in, info, word = e.in, e.info, e.word
	}
	m.issue(tu, in, info, word, cycle)
}

// fetchPIB refills the thread's prefetch instruction buffer at tu.PC,
// charging the 2-cycle PIB latency plus any I-cache miss fill. An
// I-cache miss is a switch trigger for the blocked and switch-on-miss
// policies; the penalty is booked separately and extends the refill.
func (m *Machine) fetchPIB(tu *TU, cycle uint64) {
	tu.pib.base = tu.PC
	ic := m.Chip.ICaches[m.Chip.Cfg.ICacheOf(tu.ID)]
	stall := uint64(2)
	var pen uint64
	if !ic.Fetch(tu.PC) {
		done := m.Chip.Mem.FillLine(cycle, tu.PC&arch.PhysAddrMask)
		stall += done - cycle
		if pen = tu.Pol.OnIFetch; pen != 0 {
			tu.ChargeSwitch(pen)
		}
	}
	tu.Charge(obs.ICacheStall, stall)
	tu.nextAt = cycle + stall + pen
}

// issue executes one fetched instruction: the scoreboard wait, the
// per-class execution and charge rules, and the PC advance. It is the
// semantic core all three engines share — the block compiler's generic
// ops call it directly, so any instruction without a specialized closure
// is equivalent by construction.
func (m *Machine) issue(tu *TU, in isa.Inst, info *isa.Info, word uint32, cycle uint64) {
	lat := &m.Chip.Cfg.Latencies
	// Scoreboard: in-order issue waits for source operands; the dep-stall
	// charge is the ledger's WaitReady rule.
	if ready := tu.sources(in, info); ready > cycle {
		tu.nextAt = tu.WaitReady(cycle, ready)
		return
	}

	tu.Insts++
	if m.Trace != nil {
		m.Trace.record(TraceEntry{Cycle: cycle, TID: tu.ID, PC: tu.PC, Word: word})
	}
	nextPC := tu.PC + 4

	switch info.Class {
	case isa.ClassOther:
		if !m.execSimple(tu, in, cycle) {
			return
		}
		if in.Op == isa.OpSYSCALL {
			if m.Kernel == nil {
				m.Trap("sim: thread %d: syscall with no kernel at %#x", tu.ID, tu.PC)
				return
			}
			res := m.Kernel.Syscall(m, tu)
			cost := res.Cost
			if cost == 0 {
				cost = 1
			}
			switch {
			case res.Halt:
				tu.ChargeRun(1)
				tu.nextAt = cycle + 1
				m.halt(tu)
				return
			case res.Retry:
				// The retried issue is a stall, not work: nothing is
				// charged as run, so the sampler never sees a charge
				// that would later need taking back.
				tu.Charge(obs.SleepIdle, cost)
				tu.Insts--
				tu.nextAt = cycle + cost
				return
			default:
				tu.ChargeRun(cost)
				tu.nextAt = cycle + cost
			}
		} else {
			tu.ChargeRun(1)
			tu.nextAt = cycle + 1
			if in.Op == isa.OpHALT {
				m.halt(tu)
				return
			}
		}

	case isa.ClassBranch:
		taken, target := m.execBranch(tu, in, cycle)
		tu.ChargeRun(uint64(lat.BranchExec))
		tu.nextAt = cycle + uint64(lat.BranchExec)
		if taken {
			nextPC = target
		}

	case isa.ClassIntMul:
		v := int32(tu.reg(in.B)) * int32(tu.reg(in.C))
		tu.setReg(in.A, uint32(v), cycle+uint64(lat.IntMulExec+lat.IntMulLatency))
		tu.ChargeRun(uint64(lat.IntMulExec))
		tu.nextAt = cycle + uint64(lat.IntMulExec)

	case isa.ClassIntDiv:
		b, c := tu.reg(in.B), tu.reg(in.C)
		if c == 0 {
			m.Trap("sim: thread %d: divide by zero at %#x", tu.ID, tu.PC)
			return
		}
		var v uint32
		if in.Op == isa.OpDIV {
			v = uint32(int32(b) / int32(c))
		} else {
			v = b / c
		}
		// The private divider blocks the thread for the whole execution.
		exec := uint64(lat.IntDivExec)
		tu.setReg(in.A, v, cycle+exec)
		tu.ChargeRun(exec)
		tu.nextAt = cycle + exec

	case isa.ClassFP, isa.ClassFPDiv, isa.ClassFPSqrt, isa.ClassFMA:
		m.execFP(tu, in, info, cycle)

	case isa.ClassMem:
		freeAt, acc, ok := m.execMem(tu, in, info, cycle)
		if !ok {
			return
		}
		tu.ObserveAccess(acc)
		tu.ChargeRun(uint64(lat.MemExec))
		// SettleAccess is the shared rule: the port/bank split for any
		// write backpressure past the issue cycle, then the policy's
		// per-access switch penalty (backpressure or cache miss).
		tu.nextAt = tu.SettleAccess(acc, cycle+uint64(lat.MemExec), freeAt)
	}

	if m.trap == nil && tu.State == Running {
		tu.PC = nextPC
	}
}

// execSimple covers ClassOther: integer ALU, immediates, SPR moves, sync.
// It returns false when a trap fired.
func (m *Machine) execSimple(tu *TU, in isa.Inst, cycle uint64) bool {
	done := cycle + 1
	b, c := tu.reg(in.B), tu.reg(in.C)
	switch in.Op {
	case isa.OpADD:
		tu.setReg(in.A, b+c, done)
	case isa.OpSUB:
		tu.setReg(in.A, b-c, done)
	case isa.OpAND:
		tu.setReg(in.A, b&c, done)
	case isa.OpOR:
		tu.setReg(in.A, b|c, done)
	case isa.OpXOR:
		tu.setReg(in.A, b^c, done)
	case isa.OpNOR:
		tu.setReg(in.A, ^(b | c), done)
	case isa.OpSLL:
		tu.setReg(in.A, b<<(c&31), done)
	case isa.OpSRL:
		tu.setReg(in.A, b>>(c&31), done)
	case isa.OpSRA:
		tu.setReg(in.A, uint32(int32(b)>>(c&31)), done)
	case isa.OpSLT:
		tu.setReg(in.A, boolBit(int32(b) < int32(c)), done)
	case isa.OpSLTU:
		tu.setReg(in.A, boolBit(b < c), done)

	case isa.OpADDI:
		tu.setReg(in.A, b+uint32(in.Imm), done)
	case isa.OpANDI:
		tu.setReg(in.A, b&uint32(in.Imm), done)
	case isa.OpORI:
		tu.setReg(in.A, b|uint32(in.Imm), done)
	case isa.OpXORI:
		tu.setReg(in.A, b^uint32(in.Imm), done)
	case isa.OpSLLI:
		tu.setReg(in.A, b<<(uint32(in.Imm)&31), done)
	case isa.OpSRLI:
		tu.setReg(in.A, b>>(uint32(in.Imm)&31), done)
	case isa.OpSRAI:
		tu.setReg(in.A, uint32(int32(b)>>(uint32(in.Imm)&31)), done)
	case isa.OpSLTI:
		tu.setReg(in.A, boolBit(int32(b) < in.Imm), done)
	case isa.OpSLTIU:
		tu.setReg(in.A, boolBit(b < uint32(in.Imm)), done)
	case isa.OpLUI:
		tu.setReg(in.A, uint32(in.Imm)<<13, done)

	case isa.OpMFSPR:
		v, ok := m.readSPR(tu, uint32(in.Imm))
		if !ok {
			m.Trap("sim: thread %d: mfspr %d at %#x", tu.ID, in.Imm, tu.PC)
			return false
		}
		tu.setReg(in.A, v, done)
	case isa.OpMTSPR:
		if uint32(in.Imm) != isa.SPRBarrier {
			m.Trap("sim: thread %d: mtspr %d is not writable at %#x", tu.ID, in.Imm, tu.PC)
			return false
		}
		m.Chip.Barrier.Write(tu.ID, uint8(tu.reg(in.A)))
	case isa.OpSYNC, isa.OpSYSCALL, isa.OpHALT:
		// sync: the sequential engine is already globally ordered.
	}
	return true
}

func (m *Machine) readSPR(tu *TU, n uint32) (uint32, bool) {
	switch n {
	case isa.SPRTid:
		return uint32(tu.ID), true
	case isa.SPRNThreads:
		return uint32(m.Chip.Cfg.Threads), true
	case isa.SPRCycle:
		return uint32(m.cycle), true
	case isa.SPRCycleHi:
		return uint32(m.cycle >> 32), true
	case isa.SPRBarrier:
		return uint32(m.Chip.Barrier.Read()), true
	case isa.SPRMemSize:
		return m.Chip.Mem.Size(), true
	case isa.SPRQuad:
		return uint32(tu.Quad), true
	}
	return 0, false
}

func boolBit(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// execBranch resolves a branch or jump, returning whether it was taken and
// the target.
func (m *Machine) execBranch(tu *TU, in isa.Inst, cycle uint64) (bool, uint32) {
	off := uint32(in.Imm) * 4
	target := tu.PC + 4 + off
	switch in.Op {
	case isa.OpJAL:
		tu.setReg(in.A, tu.PC+4, cycle+2)
		if obs.Enabled && tu.Samp != nil && in.A != isa.RZero {
			tu.Samp.Call(target) // linking jump: enter the callee
		}
		return true, target
	case isa.OpJALR:
		t := tu.reg(in.B) + uint32(in.Imm)
		tu.setReg(in.A, tu.PC+4, cycle+2)
		if t%4 != 0 {
			m.Trap("sim: thread %d: jalr to unaligned %#x at %#x", tu.ID, t, tu.PC)
			return false, 0
		}
		if obs.Enabled && tu.Samp != nil {
			if in.A != isa.RZero {
				tu.Samp.Call(t) // indirect call
			} else {
				tu.Samp.Ret() // jalr r0, rl: the return idiom
			}
		}
		return true, t
	}
	a, b := tu.reg(in.A), tu.reg(in.B)
	var taken bool
	switch in.Op {
	case isa.OpBEQ:
		taken = a == b
	case isa.OpBNE:
		taken = a != b
	case isa.OpBLT:
		taken = int32(a) < int32(b)
	case isa.OpBGE:
		taken = int32(a) >= int32(b)
	case isa.OpBLTU:
		taken = a < b
	case isa.OpBGEU:
		taken = a >= b
	}
	return taken, target
}

// execFP dispatches a floating-point operation to the quad's shared FPU.
func (m *Machine) execFP(tu *TU, in isa.Inst, info *isa.Info, cycle uint64) {
	lat := &m.Chip.Cfg.Latencies
	var exec, extra int
	switch info.Class {
	case isa.ClassFP:
		exec, extra = lat.FPExec, lat.FPLatency
	case isa.ClassFPDiv:
		exec, extra = lat.FPDivExec, 0
	case isa.ClassFPSqrt:
		exec, extra = lat.FPSqrtExec, 0
	case isa.ClassFMA:
		exec, extra = lat.FMAExec, lat.FMALatency
	}
	fpu := m.Chip.FPUs[tu.Quad]
	start := fpu.Dispatch(cycle, info.Pipe, exec)
	// WaitFPU charges any structural wait plus the policy's FPU-switch
	// penalty; the result's ready-time stays pinned to the pipe's start —
	// a switch delays the thread, not the operation in flight.
	resume := tu.WaitFPU(cycle, start)
	done := start + uint64(exec+extra)
	// The thread issues in one cycle; the pipe carries the rest.
	tu.ChargeRun(1)
	tu.nextAt = resume + 1

	writeF := func(f float64) {
		if !FRegOK(in.A) || in.A == 0 {
			m.Trap("sim: thread %d: bad fp destination r%d at %#x", tu.ID, in.A, tu.PC)
			return
		}
		tu.setFReg(in.A, f, done)
	}
	switch in.Op {
	case isa.OpFADD:
		writeF(tu.freg(in.B) + tu.freg(in.C))
	case isa.OpFSUB:
		writeF(tu.freg(in.B) - tu.freg(in.C))
	case isa.OpFMUL:
		writeF(tu.freg(in.B) * tu.freg(in.C))
	case isa.OpFDIV:
		writeF(tu.freg(in.B) / tu.freg(in.C))
	case isa.OpFSQRT:
		writeF(math.Sqrt(tu.freg(in.B)))
	case isa.OpFMA:
		writeF(tu.freg(in.B)*tu.freg(in.C) + tu.freg(in.D))
	case isa.OpFMS:
		writeF(tu.freg(in.B)*tu.freg(in.C) - tu.freg(in.D))
	case isa.OpFNEG:
		writeF(-tu.freg(in.B))
	case isa.OpFABS:
		writeF(math.Abs(tu.freg(in.B)))
	case isa.OpFMOV:
		writeF(tu.freg(in.B))
	case isa.OpFCVTDW:
		writeF(float64(int32(tu.reg(in.B))))
	case isa.OpFCVTWD:
		tu.setReg(in.A, uint32(int32(tu.freg(in.B))), done)
	case isa.OpFCEQ:
		tu.setReg(in.A, boolBit(tu.freg(in.B) == tu.freg(in.C)), done)
	case isa.OpFCLT:
		tu.setReg(in.A, boolBit(tu.freg(in.B) < tu.freg(in.C)), done)
	case isa.OpFCLE:
		tu.setReg(in.A, boolBit(tu.freg(in.B) <= tu.freg(in.C)), done)
	}
}

// execMem performs loads, stores and atomics: functional access against
// the embedded memory, timing through the cache system. It returns the
// cycle the thread is free to continue (stores block on write-buffer
// backpressure; loads free the thread immediately and deliver through the
// scoreboard), the access (for stall attribution), and ok=false on trap.
func (m *Machine) execMem(tu *TU, in isa.Inst, info *isa.Info, cycle uint64) (freeAt uint64, acc cache.Access, ok bool) {
	size := memSize(in.Op)
	var ea uint32
	if info.Format == isa.FmtR { // atomics: address in B, no offset
		ea = tu.reg(in.B)
	} else {
		ea = tu.reg(in.B) + uint32(in.Imm)
	}
	phys := arch.Phys(ea)
	if phys%size != 0 {
		m.Trap("sim: thread %d: unaligned %d-byte access to %#x at pc %#x", tu.ID, size, ea, tu.PC)
		return 0, cache.Access{}, false
	}
	memory := m.Chip.Mem
	fail := func(err error) (uint64, cache.Access, bool) {
		m.Trap("sim: thread %d: %v at pc %#x", tu.ID, err, tu.PC)
		return 0, cache.Access{}, false
	}

	switch in.Op {
	case isa.OpLD:
		if !FRegOK(in.A) {
			m.Trap("sim: thread %d: ld destination r%d not a pair at %#x", tu.ID, in.A, tu.PC)
			return 0, cache.Access{}, false
		}
		v, err := memory.Read64(phys)
		if err != nil {
			return fail(err)
		}
		a := m.Chip.Data.Load(cycle, ea, int(size), tu.Quad)
		tu.setReg(in.A, uint32(v), a.Done)
		tu.setReg(in.A+1, uint32(v>>32), a.Done)
		return cycle + 1, a, true

	case isa.OpLW, isa.OpLH, isa.OpLHU, isa.OpLB, isa.OpLBU:
		v, err := memory.Read32(phys &^ 3)
		if err != nil {
			return fail(err)
		}
		shift := (phys & 3) * 8
		switch in.Op {
		case isa.OpLH:
			v = uint32(int32(int16(v >> shift)))
		case isa.OpLHU:
			v = uint32(uint16(v >> shift))
		case isa.OpLB:
			v = uint32(int32(int8(v >> shift)))
		case isa.OpLBU:
			v = uint32(uint8(v >> shift))
		}
		a := m.Chip.Data.Load(cycle, ea, int(size), tu.Quad)
		tu.setReg(in.A, v, a.Done)
		return cycle + 1, a, true

	case isa.OpSD:
		v := uint64(tu.reg(in.A)) | uint64(tu.reg(in.A+1))<<32
		if err := memory.Write64(phys, v); err != nil {
			return fail(err)
		}
		a := m.Chip.Data.Store(cycle, ea, int(size), tu.Quad)
		return a.Done, a, true

	case isa.OpSW:
		if err := memory.Write32(phys, tu.reg(in.A)); err != nil {
			return fail(err)
		}
		a := m.Chip.Data.Store(cycle, ea, int(size), tu.Quad)
		return a.Done, a, true

	case isa.OpSH:
		b := [2]byte{byte(tu.reg(in.A)), byte(tu.reg(in.A) >> 8)}
		if err := memory.Write(phys, b[:]); err != nil {
			return fail(err)
		}
		a := m.Chip.Data.Store(cycle, ea, int(size), tu.Quad)
		return a.Done, a, true

	case isa.OpSB:
		if err := memory.Write(phys, []byte{byte(tu.reg(in.A))}); err != nil {
			return fail(err)
		}
		a := m.Chip.Data.Store(cycle, ea, int(size), tu.Quad)
		return a.Done, a, true

	case isa.OpAMOADD, isa.OpAMOSWAP, isa.OpAMOCAS:
		old, err := memory.Read32(phys)
		if err != nil {
			return fail(err)
		}
		newV := old
		switch in.Op {
		case isa.OpAMOADD:
			newV = old + tu.reg(in.C)
		case isa.OpAMOSWAP:
			newV = tu.reg(in.C)
		case isa.OpAMOCAS:
			if old == tu.reg(in.A) {
				newV = tu.reg(in.C)
			}
		}
		if newV != old {
			if err := memory.Write32(phys, newV); err != nil {
				return fail(err)
			}
		}
		a := m.Chip.Data.Atomic(cycle, ea, int(size), tu.Quad)
		tu.setReg(in.A, old, a.Done)
		return a.Done, a, true
	}
	return cycle + 1, cache.Access{}, true
}
