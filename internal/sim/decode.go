package sim

import "cyclops/internal/isa"

// The decoded-instruction cache. The legacy engine re-read and re-decoded
// the instruction word from embedded memory on every issue; for long-lived
// loops that is the single largest host-side cost per simulated
// instruction. The cache decodes each text word once into a page of ready
// entries, and each thread unit keeps a hint to its current page so the
// steady-state fetch is one array index.
//
// Correctness under self-modifying code: every cached page registers its
// address range with mem.Memory.WatchCode. Any write overlapping a watched
// range — a store instruction, an off-chip DMA block, a program reload —
// bumps the memory's code generation; the engine compares that generation
// on every issue and flushes the whole cache when it moves. Flushes are
// rare (text stores only), so the common path pays one load and compare.

const (
	// decPageShift sizes a page at 1 KB of text = 256 instruction words.
	decPageShift = 10
	decPageWords = 1 << (decPageShift - 2)
	decPageMask  = decPageWords - 1
)

// decEntry is one pre-decoded instruction.
type decEntry struct {
	info *isa.Info
	in   isa.Inst
	word uint32 // raw instruction word, kept for tracing
	ok   bool
}

// decPage holds the decodings of one aligned 1 KB text page.
type decPage struct {
	entries [decPageWords]decEntry
}

// decPageFor returns (creating and watching on demand) the decode page
// covering pc.
func (m *Machine) decPageFor(pc uint32) *decPage {
	pk := pc >> decPageShift
	pg := m.decPages[pk]
	if pg == nil {
		if m.decPages == nil {
			m.decPages = make(map[uint32]*decPage)
		}
		pg = new(decPage)
		m.decPages[pk] = pg
		m.Chip.Mem.WatchCode(pk<<decPageShift, (pk+1)<<decPageShift)
	}
	return pg
}

// fetchDecoded returns the decoded instruction at tu.PC, filling the cache
// on a miss. It returns nil after raising a trap (fetch fault or illegal
// instruction), exactly where the legacy fetch path trapped.
func (m *Machine) fetchDecoded(tu *TU) *decEntry {
	memory := m.Chip.Mem
	if g := memory.CodeGen(); g != m.decGen {
		m.decGen = g
		m.flushDecode()
	}
	pk := tu.PC >> decPageShift
	pg := tu.decPage
	if pg == nil || tu.decPageKey != pk {
		pg = m.decPageFor(tu.PC)
		tu.decPage, tu.decPageKey = pg, pk
	}
	e := &pg.entries[(tu.PC>>2)&decPageMask]
	if !e.ok {
		word, err := memory.Read32(tu.PC)
		if err != nil {
			m.Trap("sim: thread %d: fetch at %#x: %v", tu.ID, tu.PC, err)
			return nil
		}
		in := isa.Decode(word)
		if in.Op == isa.OpInvalid {
			m.Trap("sim: thread %d: illegal instruction %#08x at %#x", tu.ID, word, tu.PC)
			return nil
		}
		e.in, e.word, e.info, e.ok = in, word, isa.InfoRef(in.Op), true
	}
	return e
}

// decodeAt fills and returns the decode-cache entry at pc for the block
// compiler. Unlike fetchDecoded it never traps: an unreadable or illegal
// word returns a nil entry plus the raw word and fetch error, which the
// compiler turns into a trap op that fires only if execution actually
// reaches pc.
func (m *Machine) decodeAt(pc uint32) (*decEntry, uint32, error) {
	pg := m.decPageFor(pc)
	e := &pg.entries[(pc>>2)&decPageMask]
	if !e.ok {
		word, err := m.Chip.Mem.Read32(pc)
		if err != nil {
			return nil, 0, err
		}
		in := isa.Decode(word)
		if in.Op == isa.OpInvalid {
			return nil, word, nil
		}
		e.in, e.word, e.info, e.ok = in, word, isa.InfoRef(in.Op), true
	}
	return e, e.word, nil
}

// flushDecode drops every cached decoding, compiled block and per-thread
// hint. Called when the memory's code generation moves (a write landed
// in watched text): decodings and compiled blocks invalidate together,
// on the same WatchCode counter.
func (m *Machine) flushDecode() {
	m.decPages = nil
	if m.blocks != nil {
		m.blocks = nil
		m.blockFlushes++
	}
	for _, tu := range m.TUs {
		tu.decPage, tu.decPageKey = nil, 0
		tu.blk = nil
	}
}
