package sim

import "cyclops/internal/isa"

// The decoded-instruction cache. The legacy engine re-read and re-decoded
// the instruction word from embedded memory on every issue; for long-lived
// loops that is the single largest host-side cost per simulated
// instruction. The cache decodes each text word once into a page of ready
// entries, and each thread unit keeps a hint to its current page so the
// steady-state fetch is one array index.
//
// Correctness under self-modifying code: every cached page registers its
// address range with mem.Memory.WatchCode. Any write overlapping a watched
// range — a store instruction, an off-chip DMA block, a program reload —
// bumps the memory's code generation; the engine compares that generation
// on every issue and flushes the whole cache when it moves. Flushes are
// rare (text stores only), so the common path pays one load and compare.

const (
	// decPageShift sizes a page at 1 KB of text = 256 instruction words.
	decPageShift = 10
	decPageWords = 1 << (decPageShift - 2)
	decPageMask  = decPageWords - 1
)

// decEntry is one pre-decoded instruction.
type decEntry struct {
	info *isa.Info
	in   isa.Inst
	word uint32 // raw instruction word, kept for tracing
	ok   bool
}

// decPage holds the decodings of one aligned 1 KB text page.
type decPage struct {
	entries [decPageWords]decEntry
}

// fetchDecoded returns the decoded instruction at tu.PC, filling the cache
// on a miss. It returns nil after raising a trap (fetch fault or illegal
// instruction), exactly where the legacy fetch path trapped.
func (m *Machine) fetchDecoded(tu *TU) *decEntry {
	memory := m.Chip.Mem
	if g := memory.CodeGen(); g != m.decGen {
		m.decGen = g
		m.flushDecode()
	}
	pk := tu.PC >> decPageShift
	pg := tu.decPage
	if pg == nil || tu.decPageKey != pk {
		pg = m.decPages[pk]
		if pg == nil {
			if m.decPages == nil {
				m.decPages = make(map[uint32]*decPage)
			}
			pg = new(decPage)
			m.decPages[pk] = pg
			memory.WatchCode(pk<<decPageShift, (pk+1)<<decPageShift)
		}
		tu.decPage, tu.decPageKey = pg, pk
	}
	e := &pg.entries[(tu.PC>>2)&decPageMask]
	if !e.ok {
		word, err := memory.Read32(tu.PC)
		if err != nil {
			m.Trap("sim: thread %d: fetch at %#x: %v", tu.ID, tu.PC, err)
			return nil
		}
		in := isa.Decode(word)
		if in.Op == isa.OpInvalid {
			m.Trap("sim: thread %d: illegal instruction %#08x at %#x", tu.ID, word, tu.PC)
			return nil
		}
		e.in, e.word, e.info, e.ok = in, word, isa.InfoRef(in.Op), true
	}
	return e
}

// flushDecode drops every cached decoding and page hint. Called when the
// memory's code generation moves (a write landed in watched text).
func (m *Machine) flushDecode() {
	m.decPages = nil
	for _, tu := range m.TUs {
		tu.decPage, tu.decPageKey = nil, 0
	}
}
