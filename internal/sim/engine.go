package sim

import (
	"fmt"
	"sync/atomic"
)

// Engine selects a Machine's execution engine. The three tiers share
// every model component — the timing.Ledger charge rules, the cache and
// FPU contention models, the scheduler's round-robin tie order — and are
// required (and tested) to be cycle- and byte-identical; they differ
// only in host-side dispatch cost.
type Engine uint8

const (
	// EngineBlock is the production engine: basic blocks compiled once
	// into slices of pre-bound closures (threaded code) with fused
	// superinstructions, executed a whole block per dispatch while the
	// thread unit is provably the only one due (see block.go).
	EngineBlock Engine = iota
	// EngineDecoded dispatches one decoded-cache entry per issue through
	// the event-driven min-heap scheduler (the PR 1 engine, kept as the
	// first-tier oracle).
	EngineDecoded
	// EngineLegacy is the seed interpreter: per-issue fetch+decode and an
	// O(active) min-scan scheduler. Kept as the root oracle the faster
	// tiers are pinned against.
	EngineLegacy
)

// String returns the engine's flag spelling.
func (e Engine) String() string {
	switch e {
	case EngineBlock:
		return "block"
	case EngineDecoded:
		return "decoded"
	case EngineLegacy:
		return "legacy"
	}
	return fmt.Sprintf("Engine(%d)", uint8(e))
}

// ParseEngine resolves a -engine flag value.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "block":
		return EngineBlock, nil
	case "decoded":
		return EngineDecoded, nil
	case "legacy":
		return EngineLegacy, nil
	}
	return EngineBlock, fmt.Errorf("sim: unknown engine %q (want block, decoded or legacy)", s)
}

// Engines lists every engine, fastest first — the order benchmark and
// equivalence sweeps iterate.
func Engines() []Engine { return []Engine{EngineBlock, EngineDecoded, EngineLegacy} }

// defaultEngine is the process-wide default New gives fresh machines.
// Machine construction happens deep inside the harness (every experiment
// point builds its own chip and kernel), so harness-wide engine sweeps —
// the equivalence tests, the bench-smoke lane — set the default rather
// than thread a parameter through every layer. The zero value is
// EngineBlock.
var defaultEngine atomic.Uint32

// DefaultEngine returns the engine New currently assigns.
func DefaultEngine() Engine { return Engine(defaultEngine.Load()) }

// SetDefaultEngine changes the engine for subsequently built machines
// and returns the previous default, for defer-restore in tests. Existing
// machines are unaffected; use Machine.SetEngine for per-machine
// selection.
func SetDefaultEngine(e Engine) Engine {
	return Engine(defaultEngine.Swap(uint32(e)))
}

// SetEngine selects this machine's engine. Must be called before any
// thread is started: the legacy scheduler scans the active list while
// the other tiers pull from the event queue, so switching mid-run would
// lose queued units.
func (m *Machine) SetEngine(e Engine) {
	if len(m.active) > 0 {
		panic("sim: SetEngine after Start")
	}
	m.engine = e
}

// Engine reports the machine's selected engine.
func (m *Machine) Engine() Engine { return m.engine }

// BlockStats reports the block engine's host-side cache activity: blocks
// compiled (including recompiles after a flush) and whole-cache flushes
// forced by the code-generation counter (self-modifying stores, DMA
// reloads). Zero on the other engines.
func (m *Machine) BlockStats() (compiles, flushes uint64) {
	return m.blockCompiles, m.blockFlushes
}
