package perf

import (
	"testing"

	"cyclops/internal/arch"
	"cyclops/internal/core"
	"cyclops/internal/obs"
)

// runFaulted runs a load/store workload over a group-one region pinned to
// quad 3's cache, optionally with that quad disabled, and returns the
// machine for inspection.
func runFaulted(t *testing.T, disable bool) *Machine {
	t.Helper()
	chip := core.MustNew(arch.Default())
	if disable {
		if err := chip.DisableQuad(3); err != nil {
			t.Fatal(err)
		}
	}
	m := New(chip)
	ea := m.MustAlloc(8192, arch.InterestGroup{Mode: arch.GroupOne, Sel: 3})
	if err := m.SpawnN(4, func(th *T, i int) {
		base := ea + uint32(i*2048)
		v := th.LoadBlock(base, 64, 8, 8)
		th.StoreBlock(base, 64, 8, 8, v)
	}); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestDisableQuadStallAccounting pins the Section 5 fault model against
// the timing ledger on the direct-execution engine: with a quad disabled
// its cache traffic redirects to the next live quad, spawned threads skip
// the dead quad, and every ledger invariant holds on the redirected run —
// per-reason buckets sum to the stall total per thread, and the remote
// transit of the pinned region shows up as hop waits.
func TestDisableQuadStallAccounting(t *testing.T) {
	healthy := runFaulted(t, false)
	faulted := runFaulted(t, true)

	for name, m := range map[string]*Machine{"healthy": healthy, "faulted": faulted} {
		run, stall := m.TotalRunStall()
		if run == 0 {
			t.Errorf("%s: no run cycles", name)
		}
		if !obs.Enabled {
			continue
		}
		if got := m.TotalBreakdown().Total(); got != stall {
			t.Errorf("%s: aggregate buckets sum to %d, stall total = %d", name, got, stall)
		}
		for _, th := range m.Threads() {
			if got := th.Stalls.Total(); got != th.Stall {
				t.Errorf("%s: thread %d buckets sum to %d, Stall = %d", name, th.ID, got, th.Stall)
			}
			// The region is pinned to a cache remote from every worker
			// quad, so each thread's loads cross the switch.
			if th.MemWaits[obs.MemWaitHop] == 0 {
				t.Errorf("%s: thread %d recorded no hop waits (%v)", name, th.ID, th.MemWaits)
			}
		}
		if got := m.TotalMemWaits().Total(); got == 0 {
			t.Errorf("%s: no memory waits recorded", name)
		}
	}

	// No faulted-run thread may sit on the disabled quad.
	for _, th := range faulted.Threads() {
		if th.Quad == 3 {
			t.Errorf("thread %d placed on disabled quad 3", th.ID)
		}
	}
}
