package perf

import (
	"strings"
	"testing"

	"cyclops/internal/arch"
	"cyclops/internal/core"
)

func TestSingleThreadTimings(t *testing.T) {
	m := NewDefault()
	ea := m.SharedAlloc(4096)
	var loadDone, addDone uint64
	m.Spawn(func(th *T) {
		v := th.LoadF64(ea)
		loadDone = v.Ready()
		w := th.FAdd(v, v)
		addDone = w.Ready()
		th.StoreF64(ea+64, w)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	// Cold load: miss (24) plus possible remote classification.
	if loadDone < 24 || loadDone > 40 {
		t.Errorf("cold load ready at %d, want a Table 2 miss", loadDone)
	}
	// The dependent add issues after the load and takes 1+5.
	if addDone < loadDone+6 {
		t.Errorf("dependent fadd ready at %d, load at %d", addDone, loadDone)
	}
}

func TestScoreboardStallsOnDependence(t *testing.T) {
	m := NewDefault()
	ea := m.SharedAlloc(4096)
	var chain, indep *T
	chain, _ = m.Spawn(func(th *T) {
		v := th.LoadF64(ea)
		for i := 0; i < 10; i++ {
			v = th.FAdd(v, v) // serial dependence: 6 cycles apiece
		}
	})
	m2 := NewDefault()
	ea2 := m2.SharedAlloc(4096)
	indep, _ = m2.Spawn(func(th *T) {
		v := th.LoadF64(ea2)
		for i := 0; i < 10; i++ {
			th.FAdd(v, v) // independent: issue every cycle
		}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if err := m2.Run(); err != nil {
		t.Fatal(err)
	}
	if chain.Stall <= indep.Stall+40 {
		t.Errorf("dependent chain stalled %d, independent %d; want ~50 cycle gap",
			chain.Stall, indep.Stall)
	}
}

func TestFPUSharedWithinQuad(t *testing.T) {
	// Four threads in one quad all hammering the adder make less
	// progress per cycle than four threads across four quads.
	elapsed := func(balanced bool) uint64 {
		m := NewDefault()
		m.Balanced = balanced
		m.SpawnN(4, func(th *T, i int) {
			v := Val{}
			for k := 0; k < 200; k++ {
				th.FAdd(v) // independent adds: pipe-bound
			}
		})
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		return m.Elapsed()
	}
	sameQuad := elapsed(false) // sequential: threads 2..5 (quad 0 + one in quad 1)
	spread := elapsed(true)    // balanced: four different quads
	if spread*2 > sameQuad {
		t.Errorf("quad-shared FPU contention missing: same-quad %d vs spread %d cycles",
			sameQuad, spread)
	}
}

func TestHWBarrierSynchronises(t *testing.T) {
	m := NewDefault()
	const n = 16
	b := NewHWBarrier(n)
	after := make([]uint64, n)
	m.SpawnN(n, func(th *T, i int) {
		th.Work(10 * (i + 1)) // staggered arrivals
		th.HWBarrier(b)
		after[i] = th.Now()
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	// All threads resume at the same cycle (+ the constant exit cost).
	for i := 1; i < n; i++ {
		if after[i] != after[0] {
			t.Fatalf("thread %d released at %d, thread 0 at %d", i, after[i], after[0])
		}
	}
	// Release happens just after the slowest arrival.
	if after[0] < 10*n {
		t.Errorf("released at %d, before the last arrival at %d", after[0], 10*n)
	}
}

func TestHWBarrierSpinIsRunCycles(t *testing.T) {
	m := NewDefault()
	b := NewHWBarrier(2)
	var fast *T
	fast, _ = m.Spawn(func(th *T) {
		th.HWBarrier(b)
	})
	m.Spawn(func(th *T) {
		th.Work(500)
		th.HWBarrier(b)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	// The fast thread spun ~500 cycles on its own SPR: run, not stall.
	if fast.Run < 450 {
		t.Errorf("hw barrier spin counted %d run cycles, want ~500", fast.Run)
	}
	if fast.Stall > 50 {
		t.Errorf("hw barrier charged %d stall cycles, want ~0", fast.Stall)
	}
}

func TestHWBarrierReusableAcrossPhases(t *testing.T) {
	m := NewDefault()
	const n, phases = 8, 5
	b := NewHWBarrier(n)
	counts := make([]int, n)
	m.SpawnN(n, func(th *T, i int) {
		for p := 0; p < phases; p++ {
			th.Work(i + 1)
			th.HWBarrier(b)
			counts[i]++
		}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	for i, c := range counts {
		if c != phases {
			t.Errorf("thread %d completed %d phases", i, c)
		}
	}
}

func TestSWBarrierSynchronises(t *testing.T) {
	m := NewDefault()
	const n = 16
	b := NewSWBarrier(m, n, 4)
	order := []int{}
	m.SpawnN(n, func(th *T, i int) {
		th.Work(5 * (n - i)) // reverse-staggered
		th.SWBarrier(b, i)
		order = append(order, i)
		th.Work(1)
		th.SWBarrier(b, i) // second phase: sense reversal works
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != n {
		t.Fatalf("%d of %d threads passed the barrier", len(order), n)
	}
}

func TestSWBarrierCostsMoreStallThanHW(t *testing.T) {
	// Figure 7's premise: software barriers stall threads on memory;
	// the hardware barrier converts that into cheap spin (run) cycles.
	const n, phases = 32, 6
	runHW := func() (run, stall uint64) {
		m := NewDefault()
		b := NewHWBarrier(n)
		m.SpawnN(n, func(th *T, i int) {
			for p := 0; p < phases; p++ {
				th.Work(20 + i)
				th.HWBarrier(b)
			}
		})
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		return m.TotalRunStall()
	}
	runSW := func() (run, stall uint64) {
		m := NewDefault()
		b := NewSWBarrier(m, n, 4)
		m.SpawnN(n, func(th *T, i int) {
			for p := 0; p < phases; p++ {
				th.Work(20 + i)
				th.SWBarrier(b, i)
			}
		})
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		return m.TotalRunStall()
	}
	hwRun, hwStall := runHW()
	swRun, swStall := runSW()
	if swStall <= hwStall {
		t.Errorf("sw barrier stalls (%d) not above hw (%d)", swStall, hwStall)
	}
	if hwRun <= swRun/4 {
		t.Errorf("hw barrier run cycles (%d) suspiciously low vs sw (%d)", hwRun, swRun)
	}
}

func TestDeterministicElapsed(t *testing.T) {
	run := func() uint64 {
		m := NewDefault()
		b := NewHWBarrier(8)
		ea := m.SharedAlloc(1 << 16)
		m.SpawnN(8, func(th *T, i int) {
			for k := 0; k < 50; k++ {
				v := th.LoadF64(ea + uint32((i*50+k)*8))
				w := th.FMA(v)
				th.StoreF64(ea+uint32((i*50+k)*8), w)
				if k%10 == 9 {
					th.HWBarrier(b)
				}
			}
		})
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		return m.Elapsed()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("two identical runs took %d and %d cycles", a, b)
	}
}

func TestBlockOpsMatchSingleOps(t *testing.T) {
	// A LoadBlock over a line costs the same as the equivalent loop of
	// single loads when no other thread interferes.
	single := func() uint64 {
		m := NewDefault()
		ea := m.SharedAlloc(4096)
		m.Spawn(func(th *T) {
			var v Val
			for i := 0; i < 32; i++ {
				v = th.LoadF64(ea + uint32(8*i))
			}
			th.waitVals(v)
		})
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		return m.Elapsed()
	}()
	block := func() uint64 {
		m := NewDefault()
		ea := m.SharedAlloc(4096)
		m.Spawn(func(th *T) {
			v := th.LoadBlock(ea, 32, 8, 8)
			th.waitVals(v)
		})
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		return m.Elapsed()
	}()
	diff := int64(single) - int64(block)
	if diff < -4 || diff > 4 {
		t.Errorf("block load %d cycles vs singles %d", block, single)
	}
}

func TestAllocator(t *testing.T) {
	m := NewDefault()
	a := m.SharedAlloc(100)
	b := m.SharedAlloc(100)
	if arch.Phys(a)%64 != 0 || arch.Phys(b)%64 != 0 {
		t.Error("allocations not line-aligned")
	}
	if b <= a || arch.Phys(b)-arch.Phys(a) < 100 {
		t.Error("allocations overlap")
	}
	if arch.GroupOf(a).Mode != arch.GroupAll {
		t.Error("SharedAlloc did not use the chip-wide group")
	}
	if _, err := m.Alloc(64<<20, arch.InterestGroup{}); err == nil {
		t.Error("oversized allocation accepted")
	}
	own, err := m.Alloc(64, arch.InterestGroup{Mode: arch.GroupOwn})
	if err != nil || arch.GroupOf(own).Mode != arch.GroupOwn {
		t.Error("own-cache allocation broken")
	}
}

func TestSpawnLimits(t *testing.T) {
	m := NewDefault()
	if err := m.SpawnN(126, func(th *T, i int) {}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Spawn(func(th *T) {}); err == nil {
		t.Error("127th worker accepted (two units are reserved)")
	}
}

func TestSpawnSkipsDisabledQuads(t *testing.T) {
	chip := core.MustNew(arch.Default())
	chip.DisableQuad(0) // removes units 0..3, including both reserved
	m := New(chip)
	th, err := m.Spawn(func(t *T) {})
	if err != nil {
		t.Fatal(err)
	}
	if th.Quad == 0 {
		t.Error("thread placed on disabled quad")
	}
}

func TestDeadlockDetected(t *testing.T) {
	m := NewDefault()
	b := NewHWBarrier(3) // only 2 threads will arrive
	m.SpawnN(2, func(th *T, i int) {
		th.HWBarrier(b)
	})
	err := m.Run()
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Errorf("missing deadlock detection: %v", err)
	}
}

func TestRunWithoutThreads(t *testing.T) {
	m := NewDefault()
	if err := m.Run(); err == nil {
		t.Error("Run with no threads succeeded")
	}
}

func TestWorkAndStallAccounting(t *testing.T) {
	m := NewDefault()
	var th *T
	th, _ = m.Spawn(func(t *T) {
		t.Work(100)
		t.Idle(50)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if th.Run != 100 || th.Stall != 50 {
		t.Errorf("run/stall = %d/%d, want 100/50", th.Run, th.Stall)
	}
	if th.Now() != 150 {
		t.Errorf("now = %d, want 150", th.Now())
	}
}

func TestStoreBackpressureInRuntime(t *testing.T) {
	// A thread streaming stores faster than one bank can drain gets
	// stalled by the finite write buffer.
	m := NewDefault()
	ea := m.SharedAlloc(1 << 20)
	var th *T
	th, _ = m.Spawn(func(t *T) {
		for i := 0; i < 2000; i++ {
			// All stores to one bank: stride one line, hash-inverted
			// is hard, so just hammer a single line's bank.
			t.StoreF64(ea)
		}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if th.Stall == 0 {
		t.Error("unbounded store stream never hit write-buffer backpressure")
	}
}
