package perf

import (
	"testing"

	"cyclops/internal/obs"
)

// TestPerfStallReasonsSum drives every reason the direct-execution engine
// can charge — dependences, FPU structural waits, sleep, software-barrier
// spins and store backpressure — and checks each thread's buckets sum to
// its legacy stall total.
func TestPerfStallReasonsSum(t *testing.T) {
	if !obs.Enabled {
		t.Skip("counters compiled out")
	}
	const n = 8
	m := NewDefault()
	b := NewSWBarrier(m, n, 4)
	data := m.SharedAlloc(n * 64)
	m.SpawnN(n, func(th *T, i int) {
		v := th.LoadF64(data + uint32(8*i))
		q := th.FDiv(v)
		r := th.FDiv(q) // divide unit still busy: structural wait
		th.StoreF64(data+uint32(8*i), r)
		th.Idle(5 + i) // explicit sleep
		th.SWBarrier(b, i)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	var want obs.Breakdown
	for _, th := range m.Threads() {
		if got := th.Stalls.Total(); got != th.Stall {
			t.Errorf("thread %d: reasons sum to %d, Stall = %d (%v)", th.ID, got, th.Stall, th.Stalls)
		}
		want.AddAll(th.Stalls)
	}
	if got := m.TotalBreakdown(); got != want {
		t.Errorf("TotalBreakdown = %v, per-thread sum = %v", got, want)
	}
	bd := m.TotalBreakdown()
	for _, r := range []obs.StallReason{obs.DepStall, obs.FPUStall, obs.SleepIdle, obs.BarrierStall} {
		if bd[r] == 0 {
			t.Errorf("%v: no cycles charged (breakdown %v)", r, bd)
		}
	}
	// The engine abstracts the instruction stream: fetch cannot stall.
	if bd[obs.ICacheStall] != 0 {
		t.Errorf("ICacheStall = %d on the direct-execution engine", bd[obs.ICacheStall])
	}
}

// TestHWBarrierChargesNoBarrierStall pins the Figure 7 semantics: the
// wired-OR barrier spins on an SPR, which is run time, never a tagged
// barrier stall.
func TestHWBarrierChargesNoBarrierStall(t *testing.T) {
	const n = 4
	m := NewDefault()
	b := NewHWBarrier(n)
	m.SpawnN(n, func(th *T, i int) {
		th.Work(100 * (i + 1)) // staggered arrivals force spinning
		th.HWBarrier(b)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if bd := m.TotalBreakdown(); bd[obs.BarrierStall] != 0 {
		t.Errorf("hw barrier charged %d barrier-stall cycles, want 0 (spin is run time)", bd[obs.BarrierStall])
	}
}

// TestStoreBackpressureSplit floods the write path from many threads and
// checks the wait is split across the port and bank buckets without
// breaking the sum invariant.
func TestStoreBackpressureSplit(t *testing.T) {
	if !obs.Enabled {
		t.Skip("counters compiled out")
	}
	const n = 16
	m := NewDefault()
	dst := m.SharedAlloc(1 << 16)
	m.SpawnN(n, func(th *T, i int) {
		// Large non-combining strided bursts overrun the store queue.
		for rep := 0; rep < 4; rep++ {
			th.StoreBlock(dst+uint32(4*i), 256, 4, 64*n)
		}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	bd := m.TotalBreakdown()
	if bd[obs.CachePortStall]+bd[obs.BankConflictStall] == 0 {
		t.Errorf("no memory-system stalls under store flood (breakdown %v)", bd)
	}
	for _, th := range m.Threads() {
		if got := th.Stalls.Total(); got != th.Stall {
			t.Errorf("thread %d: reasons sum to %d, Stall = %d", th.ID, got, th.Stall)
		}
	}
}

// TestSnapshotAggregates checks the deterministic export derives its
// totals from the per-thread stats.
func TestSnapshotAggregates(t *testing.T) {
	m := NewDefault()
	m.SpawnN(2, func(th *T, i int) {
		v := th.LoadF64(uint32(8 * i))
		th.StoreF64(uint32(1024+8*i), v)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	s := m.Snapshot()
	run, stall := m.TotalRunStall()
	if s.Run != run || s.Stall != stall {
		t.Errorf("snapshot (%d, %d) != machine totals (%d, %d)", s.Run, s.Stall, run, stall)
	}
	if s.Stalls != m.TotalBreakdown() {
		t.Errorf("snapshot breakdown %v != machine breakdown %v", s.Stalls, m.TotalBreakdown())
	}
	if s.Cycles != m.Elapsed() {
		t.Errorf("snapshot cycles %d != elapsed %d", s.Cycles, m.Elapsed())
	}
	if len(s.Threads) != 2 {
		t.Errorf("snapshot has %d threads, want 2", len(s.Threads))
	}
}
