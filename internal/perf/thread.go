package perf

import (
	"cyclops/internal/cache"
	"cyclops/internal/isa"
	"cyclops/internal/obs"
	"cyclops/internal/timing"
)

// T is one simulated Cyclops thread: a virtual clock plus the in-order
// single-issue semantics of a thread unit. All methods must be called
// from the thread's own body function.
type T struct {
	m *Machine
	// ID is the hardware thread unit; Quad its quad (cache + FPU home).
	ID, Quad int

	fn     func(*T)
	resume chan struct{}
	wakes  []event

	now uint64
	// Ledger is the thread's cycle account; the charge rules live in
	// internal/timing, shared with the instruction-level simulator. Its
	// Run/Stall/Stalls/MemWaits fields are promoted into T.
	timing.Ledger
}

// Val is a dataflow token: the virtual cycle at which a produced value
// becomes available to dependent operations. Values themselves live in
// ordinary Go variables; Val carries only timing.
type Val struct {
	ready uint64
}

// Ready returns the cycle the value is available.
func (v Val) Ready() uint64 { return v.ready }

// Now returns the thread's virtual clock.
func (t *T) Now() uint64 { return t.now }

// Region opens a named profiling region and returns its closer:
//
//	defer t.Region("fft_rows")()
//
// Regions are the direct-execution engine's substitute for program
// counters: while one is open, every cycle the thread charges samples
// to the region's synthetic PC, and nesting builds the same two-level
// folded stacks the simulator derives from jal/return flow. Without an
// attached profiler (or under cyclops_noobs) the cost is one nil check.
func (t *T) Region(name string) func() {
	if !obs.Enabled || t.Samp == nil {
		return func() {}
	}
	id := t.m.Regions.Intern(name)
	prev := t.Samp.PC()
	t.Samp.Call(id)
	t.Samp.SetPC(id)
	return func() {
		t.Samp.Ret()
		t.Samp.SetPC(prev)
	}
}

// settleStore books one store's wait attribution and, when the write
// buffer backpressured, advances the clock past the blockage; the
// port/bank split and the policy's switch penalty are the ledger's
// shared rule (timing.SettleAccess).
func (t *T) settleStore(a cache.Access) {
	t.ObserveAccess(a)
	t.now = t.SettleAccess(a, t.now, a.Done)
}

// settleLoad applies the issue policy's per-access rule to a completed
// non-blocking access: the thread is already free (free == now), so only
// the miss-switch trigger can fire.
func (t *T) settleLoad(a cache.Access) {
	t.now = t.SettleAccess(a, t.now, t.now)
}

// acquire yields to the engine; on return this thread holds the globally
// minimal virtual time and may touch shared resources at t.now.
func (t *T) acquire() {
	t.m.send(t, msgYield, t.now)
	<-t.resume
}

// block parks the thread on a synchronisation object; a peer wakes it.
func (t *T) block() {
	t.m.send(t, msgBlock, 0)
	<-t.resume
}

// waitVals charges the in-order scoreboard stall until every operand is
// ready — the ledger's WaitReady rule, applied once to the operand join
// so a policy switch is one event per join, not one per operand. For the
// fine-grained policy this books the same total as per-operand waits
// (sequential dep charges telescope to the max).
func (t *T) waitVals(vals ...Val) {
	ready := t.now
	for _, v := range vals {
		ready = timing.MaxReady(ready, v.ready)
	}
	t.now = t.WaitReady(t.now, ready)
}

// Work advances the clock by n cycles of thread-local computation
// (integer arithmetic, address generation, loop control): run cycles with
// no shared-resource interaction.
func (t *T) Work(n int) {
	t.now += uint64(n)
	t.ChargeRun(uint64(n))
}

// Idle advances the clock by n cycles counted as sleep/idle stall (used
// by synthetic workloads; real stalls come from the operations
// themselves). It models time the thread is parked, not contention for a
// hardware resource.
func (t *T) Idle(n int) {
	t.now += uint64(n)
	t.Charge(obs.SleepIdle, uint64(n))
}

// --- Memory ----------------------------------------------------------------

// load issues one timed load of size bytes.
func (t *T) load(ea uint32, size int) Val {
	t.acquire()
	a := t.m.Chip.Data.Load(t.now, ea, size, t.Quad)
	t.ObserveAccess(a)
	t.ChargeRun(1)
	t.now++
	t.settleLoad(a)
	return Val{ready: a.Done}
}

// LoadF64 times a double-precision load at effective address ea.
func (t *T) LoadF64(ea uint32) Val { return t.load(ea, 8) }

// LoadU32 times a word load.
func (t *T) LoadU32(ea uint32) Val { return t.load(ea, 4) }

// store issues one timed store after its operands are ready.
func (t *T) store(ea uint32, size int, deps ...Val) {
	t.waitVals(deps...)
	t.acquire()
	a := t.m.Chip.Data.Store(t.now, ea, size, t.Quad)
	t.ChargeRun(1)
	t.now++
	// Write-buffer backpressure.
	t.settleStore(a)
}

// StoreF64 times a double-precision store of a value produced by deps.
func (t *T) StoreF64(ea uint32, deps ...Val) { t.store(ea, 8, deps...) }

// StoreU32 times a word store.
func (t *T) StoreU32(ea uint32, deps ...Val) { t.store(ea, 4, deps...) }

// Atomic times an atomic read-modify-write (amoadd and friends) and
// returns the old-value token.
func (t *T) Atomic(ea uint32) Val {
	t.acquire()
	a := t.m.Chip.Data.Atomic(t.now, ea, 4, t.Quad)
	t.ObserveAccess(a)
	t.ChargeRun(1)
	t.now++
	t.settleLoad(a)
	return Val{ready: a.Done}
}

// bulkChunk bounds how many accesses one scheduling point may reserve.
// Larger chunks cut engine overhead; smaller ones keep same-quad threads
// interleaving fairly on the shared cache port. 32 accesses is under half
// a port-busy line fill.
const bulkChunk = 32

// LoadBlock times n loads of width size at stride bytes starting at ea,
// yielding to the engine every bulkChunk accesses so contending threads
// interleave. It returns the token of the last load.
func (t *T) LoadBlock(ea uint32, n, size, stride int) Val {
	last := Val{ready: t.now}
	for i := 0; i < n; i += bulkChunk {
		c := n - i
		if c > bulkChunk {
			c = bulkChunk
		}
		t.acquire()
		for k := 0; k < c; k++ {
			a := t.m.Chip.Data.Load(t.now, ea+uint32((i+k)*stride), size, t.Quad)
			t.ObserveAccess(a)
			t.ChargeRun(1)
			t.now++
			t.settleLoad(a)
			if a.Done > last.ready {
				last = Val{ready: a.Done}
			}
		}
	}
	return last
}

// StoreBlock times n stores of width size at stride bytes, first waiting
// for deps, yielding every bulkChunk accesses.
func (t *T) StoreBlock(ea uint32, n, size, stride int, deps ...Val) {
	t.waitVals(deps...)
	for i := 0; i < n; i += bulkChunk {
		c := n - i
		if c > bulkChunk {
			c = bulkChunk
		}
		t.acquire()
		for k := 0; k < c; k++ {
			a := t.m.Chip.Data.Store(t.now, ea+uint32((i+k)*stride), size, t.Quad)
			t.ChargeRun(1)
			t.now++
			t.settleStore(a)
		}
	}
}

// LoadGather times loads from arbitrary effective addresses, yielding
// every bulkChunk accesses, and returns the latest-completing token.
func (t *T) LoadGather(eas []uint32, size int) Val {
	last := Val{ready: t.now}
	for i := 0; i < len(eas); i += bulkChunk {
		c := len(eas) - i
		if c > bulkChunk {
			c = bulkChunk
		}
		t.acquire()
		for _, ea := range eas[i : i+c] {
			a := t.m.Chip.Data.Load(t.now, ea, size, t.Quad)
			t.ObserveAccess(a)
			t.ChargeRun(1)
			t.now++
			t.settleLoad(a)
			if a.Done > last.ready {
				last = Val{ready: a.Done}
			}
		}
	}
	return last
}

// StoreScatter times stores to arbitrary effective addresses (the radix
// permute pattern), yielding every bulkChunk accesses.
func (t *T) StoreScatter(eas []uint32, size int, deps ...Val) {
	t.waitVals(deps...)
	for i := 0; i < len(eas); i += bulkChunk {
		c := len(eas) - i
		if c > bulkChunk {
			c = bulkChunk
		}
		t.acquire()
		for _, ea := range eas[i : i+c] {
			a := t.m.Chip.Data.Store(t.now, ea, size, t.Quad)
			t.ChargeRun(1)
			t.now++
			t.settleStore(a)
		}
	}
}

// --- Floating point ---------------------------------------------------------

// fp dispatches one FP operation to the quad's shared FPU.
func (t *T) fp(pipe isa.FPUPipe, exec, extra int, ops ...Val) Val {
	t.waitVals(ops...)
	t.acquire()
	fpu := t.m.Chip.FPUs[t.Quad]
	start := fpu.Dispatch(t.now, pipe, exec)
	t.now = t.WaitFPU(t.now, start)
	t.ChargeRun(1)
	t.now++
	return Val{ready: start + uint64(exec+extra)}
}

// FAdd times a double-precision addition (or subtraction, negation,
// comparison — anything on the adder pipe).
func (t *T) FAdd(ops ...Val) Val {
	l := &t.m.Chip.Cfg.Latencies
	return t.fp(isa.PipeAdd, l.FPExec, l.FPLatency, ops...)
}

// FMul times a double-precision multiplication.
func (t *T) FMul(ops ...Val) Val {
	l := &t.m.Chip.Cfg.Latencies
	return t.fp(isa.PipeMul, l.FPExec, l.FPLatency, ops...)
}

// FMA times a fused multiply-add (both pipes, 9-cycle latency).
func (t *T) FMA(ops ...Val) Val {
	l := &t.m.Chip.Cfg.Latencies
	return t.fp(isa.PipeBoth, l.FMAExec, l.FMALatency, ops...)
}

// FDiv times a double-precision division on the non-pipelined unit.
func (t *T) FDiv(ops ...Val) Val {
	l := &t.m.Chip.Cfg.Latencies
	return t.fp(isa.PipeDiv, l.FPDivExec, 0, ops...)
}

// FSqrt times a double-precision square root.
func (t *T) FSqrt(ops ...Val) Val {
	l := &t.m.Chip.Cfg.Latencies
	return t.fp(isa.PipeDiv, l.FPSqrtExec, 0, ops...)
}

// FPBlock times n independent pipelined operations on pipe (bulk
// arithmetic such as an n-body interaction list), yielding every
// bulkChunk operations, and returns the last result token.
func (t *T) FPBlock(pipe isa.FPUPipe, n int, ops ...Val) Val {
	if n <= 0 {
		return Val{ready: t.now}
	}
	t.waitVals(ops...)
	l := &t.m.Chip.Cfg.Latencies
	fpu := t.m.Chip.FPUs[t.Quad]
	exec, extra := l.FPExec, l.FPLatency
	if pipe == isa.PipeBoth {
		exec, extra = l.FMAExec, l.FMALatency
	}
	last := Val{ready: t.now}
	for i := 0; i < n; i += bulkChunk {
		c := n - i
		if c > bulkChunk {
			c = bulkChunk
		}
		t.acquire()
		for k := 0; k < c; k++ {
			start := fpu.Dispatch(t.now, pipe, exec)
			t.now = t.WaitFPU(t.now, start)
			t.ChargeRun(1)
			t.now++
			last = Val{ready: start + uint64(exec+extra)}
		}
	}
	return last
}
