// Package perf is the direct-execution timing runtime: SPLASH-2-style
// kernels are written as Go functions against a thread API whose every
// operation charges the Table 2 costs through the same chip model —
// cache ports, memory banks, quad FPUs, the wired-OR barrier — that the
// instruction-level simulator in internal/sim uses.
//
// Compared to internal/sim, programs here execute natively (data lives in
// Go values) while time is simulated: loads, stores, floating-point
// operations and barriers advance a per-thread virtual clock, stall on
// dependences like an in-order single-issue Cyclops thread unit, and
// contend for shared resources. This is how the SPLASH-2 evaluation of
// Section 3 becomes tractable without the authors' cross-compiler; the
// timing model is identical, only the instruction stream is abstracted.
//
// # Determinism
//
// The engine is a conservative discrete-event scheduler: simulated
// threads run as goroutines, but exactly one executes at a time and
// every shared-resource operation first yields to the engine, which
// always resumes the thread with the globally minimal (time, id) key.
// State observed at time T is therefore final, and runs are bit-for-bit
// reproducible.
//
// Bulk operations (LoadBlock, StoreBlock, FPBlock) reserve several
// accesses under a single scheduling point. Within one bulk call other
// threads cannot interleave, a quantum-style approximation that bounds
// engine overhead; keep blocks at or below a few cache lines.
package perf

import (
	"container/heap"
	"fmt"

	"cyclops/internal/arch"
	"cyclops/internal/core"
	"cyclops/internal/obs"
	"cyclops/internal/prof"
	"cyclops/internal/timing"
)

// Machine owns the engine and the chip being timed.
type Machine struct {
	Chip *core.Chip

	threads []*T
	msgs    chan msg
	pq      eventQueue
	running bool

	// brk is the bump allocator cursor for Alloc.
	brk uint32
	// allocLimit keeps allocations below the region the ISA kernel would
	// use for stacks, for symmetry with internal/kernel.
	allocLimit uint32

	// Balanced selects the balanced thread-placement policy (deal
	// spawned threads across quads) instead of sequential quad filling.
	Balanced bool

	// Prof and TL are the attached guest profiler and telemetry
	// timeline (see AttachProfile / AttachTimeline); nil means off.
	// The direct-execution engine has no instruction stream, so
	// profiler "PCs" are synthetic region ids from Regions, annotated
	// by kernels via T.Region.
	Prof    *prof.Profile
	Regions *prof.RegionTable
	TL      *prof.Timeline

	// pol is the issue policy; polTab its compiled trigger table,
	// installed into each thread's ledger at Spawn.
	pol    timing.Policy
	polTab timing.PolicyTable

	nextTid int
}

// New builds a runtime machine over a chip, on the process default issue
// policy (timing.SetDefaultPolicy).
func New(chip *core.Chip) *Machine {
	m := &Machine{
		Chip:       chip,
		msgs:       make(chan msg),
		brk:        0x1000,
		allocLimit: chip.Mem.Size() - uint32(chip.Cfg.Threads*(8<<10)),
	}
	m.SetPolicy(timing.DefaultPolicy())
	return m
}

// SetPolicy selects the issue policy — fine-grained, blocked, or
// switch-on-miss — honored by every thread's ledger through the shared
// charge rules. Call before Run; threads spawned earlier are re-wired
// retroactively, like AttachProfile.
func (m *Machine) SetPolicy(p timing.Policy) {
	if m.running {
		panic("perf: SetPolicy after Run")
	}
	if p == nil {
		p = timing.FineGrain{}
	}
	m.pol = p
	m.polTab = p.Table()
	for _, t := range m.threads {
		t.Pol = m.polTab
	}
}

// Policy reports the machine's selected issue policy.
func (m *Machine) Policy() timing.Policy { return m.pol }

// NewDefault builds a machine on a fresh default chip.
func NewDefault() *Machine {
	return New(core.MustNew(arch.Default()))
}

// Alloc reserves n bytes of simulated memory, 64-byte aligned, addressed
// through interest group g. The data itself lives in Go values; the
// returned effective address drives cache and bank timing.
func (m *Machine) Alloc(n int, g arch.InterestGroup) (uint32, error) {
	base := (m.brk + 63) &^ 63
	if base+uint32(n) > m.allocLimit {
		return 0, fmt.Errorf("perf: allocation of %d bytes exceeds embedded memory (brk %#x, limit %#x)", n, base, m.allocLimit)
	}
	m.brk = base + uint32(n)
	return arch.EA(g, base), nil
}

// MustAlloc is Alloc for sizes known to fit.
func (m *Machine) MustAlloc(n int, g arch.InterestGroup) uint32 {
	ea, err := m.Alloc(n, g)
	if err != nil {
		panic(err)
	}
	return ea
}

// SharedAlloc allocates in the chip-wide shared interest group, the
// system-software default placement.
func (m *Machine) SharedAlloc(n int) uint32 {
	return m.MustAlloc(n, arch.InterestGroup{Mode: arch.GroupAll})
}

// msgKind discriminates thread-to-engine messages.
type msgKind uint8

const (
	// msgYield: the thread wants to continue at msg.at.
	msgYield msgKind = iota
	// msgDone: the thread body returned.
	msgDone
	// msgBlock: the thread parked on a synchronisation object; a peer
	// will wake it by carrying an event in a later message.
	msgBlock
)

type msg struct {
	t    *T
	kind msgKind
	at   uint64
	// wakes carries threads the sender unparked (barrier releases).
	wakes []event
}

// Spawn registers a simulated thread that will run fn when Run is called.
// Threads are placed on hardware units in allocation-policy order; the
// reserved system units are skipped as in the resident kernel.
func (m *Machine) Spawn(fn func(t *T)) (*T, error) {
	if m.running {
		return nil, fmt.Errorf("perf: Spawn after Run")
	}
	tid, err := m.placeThread()
	if err != nil {
		return nil, err
	}
	t := &T{
		m:      m,
		ID:     tid,
		Quad:   m.Chip.Cfg.QuadOf(tid),
		fn:     fn,
		resume: make(chan struct{}),
	}
	t.Pol = m.polTab
	if obs.Enabled && m.Prof != nil {
		t.Samp = m.Prof.Sampler(tid)
	}
	m.threads = append(m.threads, t)
	return t, nil
}

// AttachProfile wires a guest profiler: every thread's ledger forwards
// its charges to a per-unit sampler, and Regions provides the synthetic
// PC space for T.Region annotations. Call before Run (threads spawned
// earlier are wired retroactively); a no-op under cyclops_noobs.
func (m *Machine) AttachProfile(p *prof.Profile) {
	if !obs.Enabled {
		return
	}
	m.Prof = p
	if m.Regions == nil {
		m.Regions = prof.NewRegionTable()
	}
	for _, t := range m.threads {
		t.Samp = p.Sampler(t.ID)
	}
}

// AttachTimeline wires an interval telemetry timeline sampled on the
// engine's virtual clock. Call before Run; a no-op under cyclops_noobs.
func (m *Machine) AttachTimeline(t *prof.Timeline) {
	if !obs.Enabled {
		return
	}
	m.TL = t
}

// counters gathers the chip-wide telemetry the timeline samples. Only
// called from the engine loop while every thread is parked, so the
// ledger reads are race-free.
func (m *Machine) counters() prof.Counters {
	var c prof.Counters
	for _, t := range m.threads {
		c.Run += t.Run
		c.Stall += t.Stall
		c.Stalls.AddAll(t.Stalls)
		c.MemWaits.AddAll(t.MemWaits)
	}
	for _, r := range m.Chip.ResourceStats() {
		switch r.Kind {
		case "cacheport":
			c.PortBusy += r.Busy
		case "drambank":
			c.BankBusy += r.Busy
		case "fpu":
			c.FPUBusy += r.Busy
		}
	}
	return c
}

// SpawnN spawns n threads running fn(t, index); index runs 0..n-1.
func (m *Machine) SpawnN(n int, fn func(t *T, index int)) error {
	for i := 0; i < n; i++ {
		idx := i
		if _, err := m.Spawn(func(t *T) { fn(t, idx) }); err != nil {
			return err
		}
	}
	return nil
}

// placeThread returns the hardware unit for the next spawned thread.
func (m *Machine) placeThread() (int, error) {
	cfg := m.Chip.Cfg
	order := make([]int, 0, cfg.Threads)
	if m.Balanced {
		for slot := 0; slot < cfg.ThreadsPerQuad; slot++ {
			for q := 0; q < cfg.Quads(); q++ {
				tid := q*cfg.ThreadsPerQuad + slot
				if tid >= cfg.ReservedThreads && m.Chip.ThreadUsable(tid) {
					order = append(order, tid)
				}
			}
		}
	} else {
		for tid := cfg.ReservedThreads; tid < cfg.Threads; tid++ {
			if m.Chip.ThreadUsable(tid) {
				order = append(order, tid)
			}
		}
	}
	if m.nextTid >= len(order) {
		return 0, fmt.Errorf("perf: no free thread units (have %d)", len(order))
	}
	tid := order[m.nextTid]
	m.nextTid++
	return tid, nil
}

// event queue: min-heap on (time, thread id).
type event struct {
	at uint64
	t  *T
}

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }

// Less orders by time; ties break by a deterministic hash of (time, id)
// rather than the id itself, so no thread systematically wins simultaneous
// resource races — the engine's analogue of the hardware's rotating
// round-robin priority (Section 2).
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	hi := tieHash(q[i].at, q[i].t.ID)
	hj := tieHash(q[j].at, q[j].t.ID)
	if hi != hj {
		return hi < hj
	}
	return q[i].t.ID < q[j].t.ID
}

func tieHash(at uint64, id int) uint32 {
	h := uint32(at)*2654435761 ^ uint32(id)*0x9e3779b9
	h ^= h >> 15
	return h * 0x85ebca6b
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// Run executes every spawned thread to completion. It returns an error on
// deadlock (threads blocked with no runnable peer).
func (m *Machine) Run() error {
	if len(m.threads) == 0 {
		return fmt.Errorf("perf: no threads spawned")
	}
	m.running = true
	defer func() { m.running = false }()
	live := len(m.threads)
	for _, t := range m.threads {
		tt := t
		heap.Push(&m.pq, event{at: 0, t: tt})
		go func() {
			<-tt.resume
			tt.fn(tt)
			m.send(tt, msgDone, 0)
		}()
	}
	for live > 0 {
		if m.pq.Len() == 0 {
			return fmt.Errorf("perf: deadlock: %d threads blocked on synchronisation", live)
		}
		ev := heap.Pop(&m.pq).(event)
		if m.TL != nil && m.TL.Due(ev.at) {
			m.TL.Tick(ev.at, m.counters())
		}
		ev.t.resume <- struct{}{}
		mg := <-m.msgs
		for _, w := range mg.wakes {
			heap.Push(&m.pq, w)
		}
		switch mg.kind {
		case msgYield:
			heap.Push(&m.pq, event{at: mg.at, t: mg.t})
		case msgDone:
			live--
		case msgBlock:
			// Parked: a peer's wakes will requeue it.
		}
	}
	if m.TL != nil {
		m.TL.Finish(m.Elapsed(), m.counters())
	}
	return nil
}

// send delivers a message to the engine, attaching any pending wakes.
func (m *Machine) send(t *T, kind msgKind, at uint64) {
	wakes := t.wakes
	t.wakes = nil
	m.msgs <- msg{t: t, kind: kind, at: at, wakes: wakes}
}

// Elapsed returns the latest virtual time reached by any thread.
func (m *Machine) Elapsed() uint64 {
	var max uint64
	for _, t := range m.threads {
		if t.now > max {
			max = t.now
		}
	}
	return max
}

// Threads returns the spawned threads for stats inspection.
func (m *Machine) Threads() []*T { return m.threads }

// TotalRunStall sums run and stall cycles over all threads (the Figure 7
// aggregates).
func (m *Machine) TotalRunStall() (run, stall uint64) {
	for _, t := range m.threads {
		run += t.Run
		stall += t.Stall
	}
	return run, stall
}

// TotalBreakdown sums the per-reason stall buckets over all threads.
func (m *Machine) TotalBreakdown() obs.Breakdown {
	var b obs.Breakdown
	for _, t := range m.threads {
		b.AddAll(t.Stalls)
	}
	return b
}

// TotalMemWaits sums the memory-wait attribution over all threads.
func (m *Machine) TotalMemWaits() obs.MemWaits {
	var w obs.MemWaits
	for _, t := range m.threads {
		w.AddAll(t.MemWaits)
	}
	return w
}

// Snapshot captures the run's cycle accounting and resource telemetry in
// the deterministic export form. The direct-execution engine abstracts
// the instruction stream, so per-thread Insts stays zero.
func (m *Machine) Snapshot() *obs.Snapshot {
	s := &obs.Snapshot{Cycles: m.Elapsed(), Resources: m.Chip.ResourceStats()}
	for _, t := range m.threads {
		s.Threads = append(s.Threads, t.ThreadStat(t.ID, t.Quad, 0))
	}
	s.Finish()
	return s
}
