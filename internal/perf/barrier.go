package perf

import (
	"cyclops/internal/arch"
	"cyclops/internal/obs"
)

// HWBarrier is the fast wired-OR hardware barrier of Section 2.3 as seen
// by the timing runtime: entry is a single SPR write, waiting threads
// spin on their own register at full speed (run cycles, no shared-resource
// contention), and release propagates one cycle after the last arrival.
type HWBarrier struct {
	n        int
	count    int
	maxEnter uint64
	parked   []*T
}

// NewHWBarrier builds a barrier for n participants.
func NewHWBarrier(n int) *HWBarrier { return &HWBarrier{n: n} }

// HWBarrier enters b and returns when every participant has entered.
// The wait is charged as run cycles: the thread busy-spins reading its own
// SPR, which contends for nothing (the paper's "all threads run at full
// speed").
func (t *T) HWBarrier(b *HWBarrier) {
	t.acquire()
	t.ChargeRun(1) // the atomic SPR write: clear current bit, set next bit
	t.now++
	enter := t.now
	b.count++
	if enter > b.maxEnter {
		b.maxEnter = enter
	}
	if b.count < b.n {
		b.parked = append(b.parked, t)
		t.block()
		// The releasing thread advanced t.now to the release cycle;
		// the interval was spent spinning on the SPR.
		t.ChargeRun(t.now - enter)
	} else {
		// Last arrival: the OR's current bit drops one cycle later.
		release := b.maxEnter + 1
		for _, p := range b.parked {
			p.now = release
			t.wakes = append(t.wakes, event{at: release, t: p})
		}
		t.ChargeRun(release - enter)
		t.now = release
		b.count = 0
		b.maxEnter = 0
		b.parked = nil
	}
	t.Work(3) // spin-exit branch and current/next mask swap
}

// flagStamp records a software-barrier flag value: the phase written and
// the virtual time the store became visible.
type flagStamp struct {
	phase uint32
	at    uint64
}

// SWBarrier is the software baseline the paper measures against
// (Section 3.3): a tree over memory. On entering, a thread notifies its
// parent through a store and then spins on a memory location that its
// parent writes when all threads have arrived. Every notify and every
// poll is a timed memory access through the shared cache system, so the
// contention the paper attributes to software barriers emerges naturally.
type SWBarrier struct {
	m        *Machine
	n, arity int

	arriveEA  []uint32
	releaseEA []uint32
	arrive    []flagStamp
	release   []flagStamp
	phase     []uint32
}

// NewSWBarrier builds a tree barrier for n participants with the given
// fan-in (4 is typical; 2 gives the deepest tree). Flags are 64-byte
// padded and placed in the chip-wide shared interest group, the system
// default.
func NewSWBarrier(m *Machine, n, arity int) *SWBarrier {
	if arity < 2 {
		arity = 2
	}
	b := &SWBarrier{
		m:         m,
		n:         n,
		arity:     arity,
		arriveEA:  make([]uint32, n),
		releaseEA: make([]uint32, n),
		arrive:    make([]flagStamp, n),
		release:   make([]flagStamp, n),
		phase:     make([]uint32, n),
	}
	g := arch.InterestGroup{Mode: arch.GroupAll}
	for i := 0; i < n; i++ {
		b.arriveEA[i] = m.MustAlloc(64, g)
		b.releaseEA[i] = m.MustAlloc(64, g)
	}
	return b
}

// children returns the tree children of node i.
func (b *SWBarrier) children(i int) []int {
	var cs []int
	for k := 1; k <= b.arity; k++ {
		c := i*b.arity + k
		if c < b.n {
			cs = append(cs, c)
		}
	}
	return cs
}

// spinFlag polls a flag location until it carries phase want, charging a
// timed load plus branch per poll. The flag state is examined at each
// poll's issue time, which the engine guarantees is globally consistent.
func (t *T) spinFlag(ea uint32, flag *flagStamp, want uint32) {
	for {
		t.acquire()
		issue := t.now
		a := t.m.Chip.Data.Load(t.now, ea, 4, t.Quad)
		t.ObserveAccess(a)
		t.ChargeRun(1)
		t.now++
		seen := flag.phase >= want && flag.at <= issue
		// The conditional branch consumes the loaded value. The wait is
		// time spent inside the software barrier, so it is charged as
		// barrier stall rather than a generic load-use dependence.
		if a.Done > t.now {
			t.Charge(obs.BarrierStall, a.Done-t.now)
			t.now = a.Done
		}
		t.Work(2)
		if seen {
			return
		}
	}
}

// setFlag stores the phase into a flag location.
func (t *T) setFlag(ea uint32, flag *flagStamp, phase uint32) {
	t.store(ea, 4)
	flag.phase = phase
	flag.at = t.now
}

// SWBarrier enters the tree barrier as participant index (0..n-1; index 0
// is the root).
func (t *T) SWBarrier(b *SWBarrier, index int) {
	ph := b.phase[index] + 1
	b.phase[index] = ph

	// Gather: wait for the subtree, then notify the parent.
	for _, c := range b.children(index) {
		t.spinFlag(b.arriveEA[c], &b.arrive[c], ph)
	}
	if index != 0 {
		t.setFlag(b.arriveEA[index], &b.arrive[index], ph)
		t.spinFlag(b.releaseEA[index], &b.release[index], ph)
	}
	// Scatter: release the children.
	for _, c := range b.children(index) {
		t.setFlag(b.releaseEA[c], &b.release[c], ph)
	}
}
