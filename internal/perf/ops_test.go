package perf

import (
	"testing"

	"cyclops/internal/isa"
)

func TestWordOpsAndAtomic(t *testing.T) {
	m := NewDefault()
	ea := m.SharedAlloc(4096)
	var loadDone, atomicDone uint64
	m.Spawn(func(th *T) {
		v := th.LoadU32(ea)
		loadDone = v.Ready()
		th.StoreU32(ea+4, v)
		a := th.Atomic(ea + 64)
		atomicDone = a.Ready()
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if loadDone == 0 {
		t.Error("word load produced no timing")
	}
	// The atomic returns the old value: a load-latency path plus the
	// store half.
	if atomicDone <= loadDone {
		t.Errorf("atomic done %d not after earlier load %d", atomicDone, loadDone)
	}
}

func TestGatherScatter(t *testing.T) {
	m := NewDefault()
	base := m.SharedAlloc(1 << 16)
	eas := make([]uint32, 100)
	for i := range eas {
		eas[i] = base + uint32(8*i*13%60000)&^7
	}
	var th *T
	th, _ = m.Spawn(func(t *T) {
		v := t.LoadGather(eas, 8)
		t.StoreScatter(eas, 8, v)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	// 200 accesses issued: at least that many run cycles.
	if th.Run < 200 {
		t.Errorf("gather+scatter issued %d run cycles, want >= 200", th.Run)
	}
	// Empty inputs are no-ops.
	m2 := NewDefault()
	m2.Spawn(func(t *T) {
		v := t.LoadGather(nil, 8)
		t.StoreScatter(nil, 8, v)
		if t.Now() != 0 {
			panic("empty bulk ops advanced time")
		}
	})
	if err := m2.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestFPVariantTimings(t *testing.T) {
	m := NewDefault()
	var mulDone, divDone, sqrtDone uint64
	m.Spawn(func(th *T) {
		a := th.FMul()
		mulDone = a.Ready()
		d := th.FDiv()
		divDone = d.Ready() - th.Now() + 1
		s := th.FSqrt()
		sqrtDone = s.Ready()
		_ = s
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if mulDone != 6 { // issue at 0, 1 exec + 5 latency
		t.Errorf("fmul ready at %d, want 6", mulDone)
	}
	if divDone < 29 { // 30-cycle non-pipelined divide
		t.Errorf("fdiv completes %d cycles after issue, want ~30", divDone)
	}
	if sqrtDone < 56 {
		t.Errorf("fsqrt ready at %d, want >= 56", sqrtDone)
	}
}

func TestFPBlockPipelines(t *testing.T) {
	// 100 independent adds through FPBlock take ~100 cycles (pipelined),
	// not 600.
	m := NewDefault()
	var done uint64
	m.Spawn(func(th *T) {
		v := th.FPBlock(isa.PipeAdd, 100)
		done = v.Ready()
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if done < 100 || done > 140 {
		t.Errorf("100 pipelined adds ready at %d, want ~105", done)
	}
	// Chunking: a big block still sums to the right issue count.
	m2 := NewDefault()
	var th2 *T
	th2, _ = m2.Spawn(func(th *T) {
		th.FPBlock(isa.PipeBoth, 500)
	})
	if err := m2.Run(); err != nil {
		t.Fatal(err)
	}
	if th2.Run != 500 {
		t.Errorf("FPBlock(500) issued %d ops", th2.Run)
	}
	// Zero-length is a no-op.
	m3 := NewDefault()
	m3.Spawn(func(th *T) {
		if v := th.FPBlock(isa.PipeAdd, 0); v.Ready() != th.Now() {
			panic("empty FPBlock advanced readiness")
		}
	})
	if err := m3.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestStoreBlockBackpressure(t *testing.T) {
	// A long contiguous store stream must eventually stall on the
	// write buffers (all to one thread: far above one bank's rate).
	m := NewDefault()
	ea := m.SharedAlloc(1 << 20)
	var th *T
	th, _ = m.Spawn(func(t *T) {
		for rep := 0; rep < 50; rep++ {
			t.StoreBlock(ea, 256, 8, 0) // hammer one line's bank
		}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if th.Stall == 0 {
		t.Error("12800 stores to one bank never stalled")
	}
}

func TestThreadsAccessor(t *testing.T) {
	m := NewDefault()
	m.SpawnN(3, func(th *T, i int) { th.Work(i) })
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if len(m.Threads()) != 3 {
		t.Errorf("Threads() = %d entries", len(m.Threads()))
	}
}

func TestBlockChunkingPreservesTotals(t *testing.T) {
	// A 100-element LoadBlock equals 100 single loads in issued work
	// even though it spans multiple scheduling quanta.
	m := NewDefault()
	ea := m.SharedAlloc(1 << 12)
	var th *T
	th, _ = m.Spawn(func(t *T) {
		t.LoadBlock(ea, 100, 8, 8)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if th.Run != 100 {
		t.Errorf("LoadBlock(100) issued %d cycles of work", th.Run)
	}
}
