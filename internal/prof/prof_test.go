package prof

import (
	"bytes"
	"os"
	"os/exec"
	"strings"
	"testing"

	"cyclops/internal/obs"
)

func TestSamplerIntervalSemantics(t *testing.T) {
	p := New(10)
	s := p.Sampler(0)
	s.SetPC(0x100)
	s.Charge(KindRun, 9) // cum 9 < 10: no sample
	if s.Samples() != 0 {
		t.Fatalf("samples after 9 cycles = %d, want 0", s.Samples())
	}
	s.Charge(KindRun, 1) // cum 10: first sample
	if s.Samples() != 1 {
		t.Fatalf("samples after 10 cycles = %d, want 1", s.Samples())
	}
	s.Charge(StallKind(obs.DepStall), 25) // cum 35: samples at 20, 30
	if s.Samples() != 3 {
		t.Fatalf("samples after 35 cycles = %d, want 3", s.Samples())
	}
	// floor(total/E) invariant.
	if want := s.Cycles() / p.Interval; s.Samples() != want {
		t.Fatalf("samples = %d, want floor(%d/%d) = %d", s.Samples(), s.Cycles(), p.Interval, want)
	}
}

func TestSamplerExactReconciliationAtE1(t *testing.T) {
	p := New(1)
	s := p.Sampler(3)
	s.SetPC(0x200)
	s.Charge(KindRun, 7)
	s.Charge(StallKind(obs.FPUStall), 4)
	s.Charge(StallKind(obs.DepStall), 2)
	if s.Samples() != 13 {
		t.Fatalf("E=1 samples = %d, want 13 (== charged cycles)", s.Samples())
	}
	rep := p.Report(nil)
	if len(rep.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(rep.Rows))
	}
	r := rep.Rows[0]
	if r.Cycles != 13 || r.Kinds[KindRun] != 7 || r.Kinds[StallKind(obs.FPUStall)] != 4 {
		t.Fatalf("row = %+v", r)
	}
	if got := p.SamplesByTU(); len(got) != 4 || got[3] != 13 {
		t.Fatalf("SamplesByTU = %v", got)
	}
}

func TestShadowStack(t *testing.T) {
	p := New(1)
	s := p.Sampler(0)
	s.SetPC(0x10)
	s.Charge(KindRun, 1) // fn = NoPC
	s.Call(0x100)
	s.SetPC(0x104)
	s.Charge(KindRun, 1) // fn = 0x100
	s.Call(0x200)
	s.SetPC(0x204)
	if s.Depth() != 2 {
		t.Fatalf("depth = %d", s.Depth())
	}
	s.Charge(KindRun, 1) // fn = 0x200
	s.Ret()
	s.SetPC(0x108)
	s.Charge(KindRun, 1) // fn = 0x100 again
	s.Ret()
	s.Ret() // underflow: tolerated, context resets
	s.SetPC(0x14)
	s.Charge(KindRun, 1)

	var sb strings.Builder
	if err := p.WriteFolded(&sb, nil); err != nil {
		t.Fatal(err)
	}
	folded := sb.String()
	for _, want := range []string{
		"0x100;0x104 [run] 1",
		"0x200;0x204 [run] 1",
		"0x100;0x108 [run] 1",
		"0x10 [run] 1",
	} {
		if !strings.Contains(folded, want) {
			t.Errorf("folded output missing %q:\n%s", want, folded)
		}
	}
}

func TestReportOrderingAndTopK(t *testing.T) {
	p := New(1)
	s := p.Sampler(0)
	s.SetPC(0x100)
	s.Charge(KindRun, 5)
	s.SetPC(0x200)
	s.Charge(StallKind(obs.BankConflictStall), 9)
	s.SetPC(0x300)
	s.Charge(KindRun, 2)
	rep := p.Report(nil)
	if len(rep.Rows) != 3 || rep.Rows[0].Cycles != 9 || rep.Rows[2].Cycles != 2 {
		t.Fatalf("rows = %+v", rep.Rows)
	}
	if top := rep.Top(2); len(top) != 2 || top[0].Name != "0x200" {
		t.Fatalf("top-2 = %+v", top)
	}
	var sb strings.Builder
	if err := rep.WriteText(&sb, 0); err != nil {
		t.Fatal(err)
	}
	if out := sb.String(); !strings.Contains(out, "bankconflict") || !strings.Contains(out, "0x200") {
		t.Fatalf("text report:\n%s", out)
	}
}

func TestRegionTable(t *testing.T) {
	rt := NewRegionTable()
	a := rt.Intern("fft_rows")
	b := rt.Intern("transpose")
	if a2 := rt.Intern("fft_rows"); a2 != a {
		t.Fatalf("re-intern moved id: %d vs %d", a2, a)
	}
	if rt.FuncName(b) != "transpose" || rt.SymbolizePC(a) != "fft_rows" {
		t.Fatal("region names wrong")
	}
	if got := rt.FuncName(99); got != "region#99" {
		t.Fatalf("unknown region = %q", got)
	}
}

func TestProfileDeterminism(t *testing.T) {
	build := func() *Profile {
		p := New(2)
		for tu := 0; tu < 4; tu++ {
			s := p.Sampler(tu)
			for i := 0; i < 50; i++ {
				s.SetPC(uint32(0x100 + 4*(i%7)))
				s.Charge(Kind(i%NumKinds), uint64(1+i%3))
			}
		}
		return p
	}
	p1, p2 := build(), build()
	var f1, f2, pb1, pb2 bytes.Buffer
	if err := p1.WriteFolded(&f1, nil); err != nil {
		t.Fatal(err)
	}
	if err := p2.WriteFolded(&f2, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(f1.Bytes(), f2.Bytes()) {
		t.Error("folded output not deterministic")
	}
	if err := p1.WritePprof(&pb1, nil); err != nil {
		t.Fatal(err)
	}
	if err := p2.WritePprof(&pb2, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pb1.Bytes(), pb2.Bytes()) {
		t.Error("pprof output not deterministic")
	}
}

// TestPprofToolReadsProfile shells out to `go tool pprof -top`; skipped
// when the go tool is unavailable.
func TestPprofToolReadsProfile(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool not available")
	}
	p := New(1)
	s := p.Sampler(0)
	s.Call(0x100)
	s.SetPC(0x104)
	s.Charge(KindRun, 90)
	s.SetPC(0x108)
	s.Charge(StallKind(obs.DepStall), 10)
	f := t.TempDir() + "/prof.pb.gz"
	var buf bytes.Buffer
	if err := p.WritePprof(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(f, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command("go", "tool", "pprof", "-top", "-nodecount=5", f).CombinedOutput()
	if err != nil {
		t.Fatalf("go tool pprof: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "0x104") {
		t.Errorf("pprof -top missing hot symbol:\n%s", out)
	}
}

func TestTimeline(t *testing.T) {
	tl := NewTimeline(100)
	if tl.Due(99) {
		t.Fatal("due before first boundary")
	}
	c := Counters{Run: 80, Stall: 20}
	c.Stalls[obs.DepStall] = 20
	tl.Tick(100, c)
	// Clock jumps over several boundaries: one row at the last one.
	c2 := Counters{Run: 300, Stall: 50, FPUBusy: 7}
	c2.Stalls[obs.DepStall] = 50
	tl.Tick(350, c2)
	// No change: row elided.
	tl.Tick(450, c2)
	c3 := c2
	c3.Run += 5
	tl.Finish(512, c3)
	rows := tl.Rows()
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3: %+v", len(rows), rows)
	}
	if rows[0].Cycle != 100 || rows[1].Cycle != 300 || rows[2].Cycle != 512 {
		t.Fatalf("cycles = %d,%d,%d", rows[0].Cycle, rows[1].Cycle, rows[2].Cycle)
	}
	if rows[1].Run != 220 || rows[1].FPUBusy != 7 {
		t.Fatalf("jump delta = %+v", rows[1].Counters)
	}
	if sum := tl.Sum(); sum != c3 {
		t.Fatalf("telescoped sum %+v != final %+v", sum, c3)
	}

	var csv, js bytes.Buffer
	if err := tl.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csv.String(), "cycle,run,stall,dep,") {
		t.Fatalf("csv header: %q", strings.SplitN(csv.String(), "\n", 2)[0])
	}
	if lines := strings.Count(csv.String(), "\n"); lines != 4 {
		t.Fatalf("csv lines = %d, want 4", lines)
	}
	if err := tl.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(js.String(), `"cycle": 512`) {
		t.Fatalf("json missing final row:\n%s", js.String())
	}
	if tracks := tl.CounterTracks(); len(tracks) != 9 {
		t.Fatalf("counter tracks = %d, want 9", len(tracks))
	}
}
