package prof

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"cyclops/internal/obs"
)

// Counters is one instant's chip-wide telemetry: the aggregate ledger
// totals plus the busy cycles of each contended resource class. It is
// both an absolute snapshot (as gathered from the machine) and a delta
// (as stored per timeline interval) — the same fields either way.
type Counters struct {
	// Run and Stall are the summed per-thread ledger totals.
	Run   uint64 `json:"run"`
	Stall uint64 `json:"stall"`
	// Stalls splits Stall by reason; MemWaits is the per-access
	// memory-wait sub-attribution.
	Stalls   obs.Breakdown `json:"stalls"`
	MemWaits obs.MemWaits  `json:"mem_waits"`
	// PortBusy, BankBusy and FPUBusy are the summed busy cycles of the
	// quad cache ports, DRAM banks and quad FPUs.
	PortBusy uint64 `json:"port_busy"`
	BankBusy uint64 `json:"bank_busy"`
	FPUBusy  uint64 `json:"fpu_busy"`
}

// Sub returns c - o field-wise (the interval delta between snapshots).
func (c Counters) Sub(o Counters) Counters {
	d := Counters{
		Run:      c.Run - o.Run,
		Stall:    c.Stall - o.Stall,
		PortBusy: c.PortBusy - o.PortBusy,
		BankBusy: c.BankBusy - o.BankBusy,
		FPUBusy:  c.FPUBusy - o.FPUBusy,
	}
	for i := range d.Stalls {
		d.Stalls[i] = c.Stalls[i] - o.Stalls[i]
	}
	for i := range d.MemWaits {
		d.MemWaits[i] = c.MemWaits[i] - o.MemWaits[i]
	}
	return d
}

// Add accumulates o into c (used by tests to telescope deltas back to
// end-of-run totals).
func (c *Counters) Add(o Counters) {
	c.Run += o.Run
	c.Stall += o.Stall
	c.Stalls.AddAll(o.Stalls)
	c.MemWaits.AddAll(o.MemWaits)
	c.PortBusy += o.PortBusy
	c.BankBusy += o.BankBusy
	c.FPUBusy += o.FPUBusy
}

// IsZero reports whether every field is zero.
func (c Counters) IsZero() bool {
	return c == Counters{}
}

// Interval is one timeline row: the telemetry delta accumulated in the
// interval ending at Cycle. Deltas telescope — summing every row
// reproduces the end-of-run totals exactly.
type Interval struct {
	Cycle uint64 `json:"cycle"`
	Counters
}

// Timeline samples chip-wide telemetry every Every cycles of simulated
// time. The engine calls Tick with the current cycle and a gather
// function whenever its clock advances; rows are emitted at interval
// boundaries (empty intervals are skipped) and Finish flushes the final
// partial interval. Like the PC sampler this is driven purely by
// simulated cycles, so timelines are byte-identical across runs.
type Timeline struct {
	// Every is the interval length in cycles.
	Every uint64

	rows []Interval
	prev Counters
	next uint64
}

// NewTimeline returns a timeline sampling every `every` cycles (minimum 1).
func NewTimeline(every uint64) *Timeline {
	if every == 0 {
		every = 1
	}
	return &Timeline{Every: every, next: every}
}

// Due reports whether cycle has reached the next interval boundary —
// the cheap guard engines test before gathering counters.
func (t *Timeline) Due(cycle uint64) bool { return cycle >= t.next }

// Tick records the interval ending at the last boundary at or before
// cycle, given the current absolute counters. The engine's clock may
// jump several intervals between events; the whole jump lands in one
// row at the last crossed boundary, which keeps the telescoping sum
// exact without inventing per-interval attributions the engine never
// observed.
func (t *Timeline) Tick(cycle uint64, cur Counters) {
	if cycle < t.next {
		return
	}
	boundary := cycle - cycle%t.Every
	if d := cur.Sub(t.prev); !d.IsZero() {
		t.rows = append(t.rows, Interval{Cycle: boundary, Counters: d})
	}
	t.prev = cur
	t.next = boundary + t.Every
}

// Finish flushes the partial interval ending at the final cycle.
func (t *Timeline) Finish(cycle uint64, cur Counters) {
	if d := cur.Sub(t.prev); !d.IsZero() {
		t.rows = append(t.rows, Interval{Cycle: cycle, Counters: d})
	}
	t.prev = cur
	t.next = cycle + t.Every
}

// Rows returns the recorded intervals in time order.
func (t *Timeline) Rows() []Interval { return t.rows }

// Sum telescopes every row back into absolute end-of-run totals.
func (t *Timeline) Sum() Counters {
	var c Counters
	for _, r := range t.rows {
		c.Add(r.Counters)
	}
	return c
}

// WriteCSV writes the timeline as CSV: one header, one row per
// interval, columns in a fixed order (cycle, run, stall, one column per
// stall reason, w:* mem-wait columns, resource busy columns).
func (t *Timeline) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("cycle,run,stall")
	for _, n := range obs.ReasonNames() {
		bw.WriteString("," + n)
	}
	for _, n := range obs.MemWaitNames() {
		bw.WriteString(",w:" + n)
	}
	bw.WriteString(",port_busy,bank_busy,fpu_busy\n")
	for _, r := range t.rows {
		bw.WriteString(strconv.FormatUint(r.Cycle, 10))
		cols := []uint64{r.Run, r.Stall}
		cols = append(cols, r.Stalls[:]...)
		cols = append(cols, r.MemWaits[:]...)
		cols = append(cols, r.PortBusy, r.BankBusy, r.FPUBusy)
		for _, v := range cols {
			bw.WriteByte(',')
			bw.WriteString(strconv.FormatUint(v, 10))
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// WriteJSON writes the timeline as an indented JSON array of interval
// rows with stable key order.
func (t *Timeline) WriteJSON(w io.Writer) error {
	rows := t.rows
	if rows == nil {
		rows = []Interval{}
	}
	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// CounterTracks renders the timeline as time-resolved Chrome-trace
// counter tracks — one "C" event series per resource group at each
// interval boundary — replacing the end-of-run-only totals the trace
// exporter had before. pid/tid 0 places the tracks on the chip row.
func (t *Timeline) CounterTracks() []obs.TraceCounter {
	var out []obs.TraceCounter
	u := strconv.FormatUint
	for _, r := range t.rows {
		stalls := [][2]string{{"run", u(r.Run, 10)}}
		for i, n := range obs.ReasonNames() {
			stalls = append(stalls, [2]string{n, u(r.Stalls[i], 10)})
		}
		out = append(out, obs.TraceCounter{Name: "cycles/interval", At: r.Cycle, Series: stalls})
		waits := [][2]string{}
		for i, n := range obs.MemWaitNames() {
			waits = append(waits, [2]string{n, u(r.MemWaits[i], 10)})
		}
		out = append(out, obs.TraceCounter{Name: "memwaits/interval", At: r.Cycle, Series: waits})
		out = append(out, obs.TraceCounter{Name: "busy/interval", At: r.Cycle, Series: [][2]string{
			{"port", u(r.PortBusy, 10)},
			{"bank", u(r.BankBusy, 10)},
			{"fpu", u(r.FPUBusy, 10)},
		}})
	}
	return out
}

// String summarizes the timeline for logs.
func (t *Timeline) String() string {
	return fmt.Sprintf("timeline{every=%d rows=%d}", t.Every, len(t.rows))
}
