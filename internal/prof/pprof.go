package prof

import (
	"compress/gzip"
	"io"
)

// WritePprof writes the profile as a gzipped pprof protobuf, the input
// format of `go tool pprof` (-top, -flamegraph, -raw ...). The encoding
// is hand-rolled — the profile.proto schema is small and stable, and
// depending on a protobuf library for one writer is not worth it. One
// sample type ("cycles") is emitted; the charge kind and thread unit
// ride along as sample labels, so pprof's -tagfocus/-tagshow can slice
// by stall reason or TU. Output is deterministic: samples, locations,
// functions and the string table are all built in sorted order.
//
// If sym also implements Locate(pc) (line int, ok bool) and
// SourceFile() string — as *asm.Program does — locations carry source
// line numbers and functions a file name.
func (p *Profile) WritePprof(w io.Writer, sym Symbolizer) error {
	if sym == nil {
		sym = HexSymbols
	}
	locator, _ := sym.(interface{ Locate(uint32) (int, bool) })
	filer, _ := sym.(interface{ SourceFile() string })
	file := ""
	if filer != nil {
		file = filer.SourceFile()
	}

	var e pprofEnc
	e.str("") // index 0 is always the empty string

	samples := p.merged()

	// Locations: one per distinct PC (leaf or caller), plus a pseudo
	// location for NoPC leaves. IDs are dense from 1 in ascending PC
	// order; the NoPC pseudo location, when needed, comes last.
	locID := map[uint32]uint64{}
	var pcs []uint32
	needRoot := false
	addPC := func(pc uint32) {
		if pc == NoPC {
			needRoot = true
			return
		}
		if _, ok := locID[pc]; !ok {
			locID[pc] = 0 // placeholder; assigned after sorting
			pcs = append(pcs, pc)
		}
	}
	for _, s := range samples {
		addPC(s.PC)
		if s.Fn != NoPC {
			addPC(s.Fn)
		}
	}
	sortU32(pcs)
	for i, pc := range pcs {
		locID[pc] = uint64(i + 1)
	}
	rootLoc := uint64(0)
	if needRoot {
		rootLoc = uint64(len(pcs) + 1)
	}

	// Functions: one per distinct enclosing-function name, in the order
	// the sorted locations first reference them.
	funcID := map[string]uint64{}
	var funcs []string
	fnOf := func(name string) uint64 {
		if id, ok := funcID[name]; ok {
			return id
		}
		id := uint64(len(funcs) + 1)
		funcID[name] = id
		funcs = append(funcs, name)
		return id
	}

	// Message: sample_type {cycles, cycles}.
	e.msg(1, func(e *pprofEnc) {
		e.varint(1, uint64(e.str("cycles")))
		e.varint(2, uint64(e.str("cycles")))
	})
	// Samples.
	keyKind := e.str("kind")
	keyTU := e.str("tu")
	for _, s := range samples {
		s := s
		e.msg(2, func(e *pprofEnc) {
			var ids []uint64
			if s.PC == NoPC {
				ids = append(ids, rootLoc)
			} else {
				ids = append(ids, locID[s.PC])
			}
			if s.Fn != NoPC {
				ids = append(ids, locID[s.Fn])
			}
			e.packed(1, ids)
			e.packed(2, []uint64{s.Count * p.Interval})
			kindStr := e.str(s.Kind.String())
			e.msg(3, func(e *pprofEnc) {
				e.varint(1, uint64(keyKind))
				e.varint(2, uint64(kindStr))
			})
			e.msg(3, func(e *pprofEnc) {
				e.varint(1, uint64(keyTU))
				e.varint(3, uint64(s.TU))
			})
		})
	}
	// Locations with one line each.
	for _, pc := range pcs {
		pc := pc
		e.msg(4, func(e *pprofEnc) {
			e.varint(1, locID[pc])
			e.varint(3, uint64(pc))
			e.msg(4, func(e *pprofEnc) {
				e.varint(1, fnOf(sym.FuncName(pc)))
				if locator != nil {
					if line, ok := locator.Locate(pc); ok {
						e.varint(2, uint64(line))
					}
				}
			})
		})
	}
	if needRoot {
		e.msg(4, func(e *pprofEnc) {
			e.varint(1, rootLoc)
			e.msg(4, func(e *pprofEnc) { e.varint(1, fnOf(rootName)) })
		})
	}
	// Functions.
	fileStr := e.str(file)
	for i, name := range funcs {
		i, name := i, name
		e.msg(5, func(e *pprofEnc) {
			e.varint(1, uint64(i+1))
			e.varint(2, uint64(e.str(name)))
			e.varint(4, uint64(fileStr))
		})
	}
	// Period: one sample stands for Interval cycles.
	e.msg(11, func(e *pprofEnc) {
		e.varint(1, uint64(e.str("cycles")))
		e.varint(2, uint64(e.str("cycles")))
	})
	e.varint(12, p.Interval)
	// String table last (field 6): it was interned during encoding.
	var out pprofEnc
	out.buf = append(out.buf, e.buf...)
	for _, s := range e.strs {
		out.bytes(6, []byte(s))
	}

	zw := gzip.NewWriter(w)
	if _, err := zw.Write(out.buf); err != nil {
		return err
	}
	return zw.Close()
}

// pprofEnc is a minimal deterministic protobuf encoder with a string
// interner for the pprof string table.
type pprofEnc struct {
	buf  []byte
	strs []string
	sidx map[string]int64
}

// str interns s and returns its string-table index.
func (e *pprofEnc) str(s string) int64 {
	if e.sidx == nil {
		e.sidx = make(map[string]int64)
	}
	if i, ok := e.sidx[s]; ok {
		return i
	}
	i := int64(len(e.strs))
	e.strs = append(e.strs, s)
	e.sidx[s] = i
	return i
}

func (e *pprofEnc) raw(v uint64) {
	for v >= 0x80 {
		e.buf = append(e.buf, byte(v)|0x80)
		v >>= 7
	}
	e.buf = append(e.buf, byte(v))
}

func (e *pprofEnc) tag(field, wire int) { e.raw(uint64(field)<<3 | uint64(wire)) }

// varint emits a varint-typed field; zero values are omitted (proto3).
func (e *pprofEnc) varint(field int, v uint64) {
	if v == 0 {
		return
	}
	e.tag(field, 0)
	e.raw(v)
}

// bytes emits a length-delimited field (always, even when empty, so the
// string table keeps its indices).
func (e *pprofEnc) bytes(field int, b []byte) {
	e.tag(field, 2)
	e.raw(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// packed emits a packed repeated varint field.
func (e *pprofEnc) packed(field int, vs []uint64) {
	if len(vs) == 0 {
		return
	}
	var p pprofEnc
	for _, v := range vs {
		p.raw(v)
	}
	e.bytes(field, p.buf)
}

// msg emits an embedded message built by fn, sharing the interner.
func (e *pprofEnc) msg(field int, fn func(*pprofEnc)) {
	sub := pprofEnc{strs: e.strs, sidx: e.sidx}
	fn(&sub)
	e.strs, e.sidx = sub.strs, sub.sidx
	e.bytes(field, sub.buf)
}

func sortU32(v []uint32) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}
