// Package prof is the guest-level profiler: a deterministic cycle-count
// sampler over the timing ledger, symbolized hot-spot reports, gzipped
// pprof protobuf output, and an interval telemetry timeline.
//
// Sampling is driven by simulated cycles, never wall clock: each thread
// unit owns a TSampler whose cycle accumulator advances with every
// ledger charge, and a sample fires each time the accumulator crosses a
// multiple of the sampling interval E (the first at E). A sample records
// the thread's current program counter, its caller context from a shadow
// call stack maintained on jal/return flow, and the charge's kind — run,
// or one of the obs.StallReason buckets — so every sampled cycle is
// attributed the same way the ledger attributes it. Because the sampler
// is a pure function of the charge stream and each TSampler owns its own
// buckets (merged only at report time), profiles are byte-identical for
// any sweep worker count, and with E=1 the per-thread sample count
// equals the thread's run+stall cycle total exactly.
package prof

import (
	"sort"

	"cyclops/internal/obs"
)

// NoPC is the sentinel program counter meaning "none": the caller
// context before any call, and the PC of engines that execute native
// code (internal/perf) outside any annotated region.
const NoPC = ^uint32(0)

// Kind is what a sampled cycle was charged as: run, or one of the
// stall reasons, in the obs enum order shifted by one.
type Kind uint8

// KindRun marks issued work; StallKind(r) marks a stall charged to r.
const KindRun Kind = 0

// NumKinds bounds the enum: run plus every stall reason.
const NumKinds = 1 + int(obs.NumStallReasons)

// StallKind maps a ledger stall reason to its sample kind.
func StallKind(r obs.StallReason) Kind { return Kind(1 + r) }

func (k Kind) String() string {
	if k == KindRun {
		return "run"
	}
	return obs.StallReason(k - 1).String()
}

// KindNames returns the kind taxonomy in column order (run first).
func KindNames() []string {
	names := make([]string, NumKinds)
	for k := Kind(0); k < Kind(NumKinds); k++ {
		names[k] = k.String()
	}
	return names
}

// site is one sample bucket key: an exact PC, its caller context, and
// what the cycle was charged as.
type site struct {
	PC, Fn uint32
	Kind   Kind
}

// TSampler is one thread unit's sampler. The engine keeps its PC
// current, maintains the shadow call stack via Call/Ret, and the
// embedding ledger forwards every charge; everything else is internal.
// A TSampler is used only from its thread's execution context and
// shares nothing mutable, so concurrent threads never contend.
type TSampler struct {
	prof *Profile
	tu   int

	pc      uint32
	fn      uint32   // current caller context (function entry PC)
	stack   []uint32 // shadow call stack of outer contexts
	cum     uint64   // cycles charged so far
	nextAt  uint64   // next sampling threshold (multiple of interval)
	samples uint64
	buckets map[site]uint64
}

// SetPC publishes the thread's current program counter; samples fired
// by subsequent charges attribute to it.
func (s *TSampler) SetPC(pc uint32) { s.pc = pc }

// PC returns the last published program counter (NoPC before the
// first SetPC); region annotations use it to restore the outer
// context on close.
func (s *TSampler) PC() uint32 { return s.pc }

// Call pushes the current context and enters the function at entry
// (a jal/jalr with a live link register, or a perf region open).
func (s *TSampler) Call(entry uint32) {
	s.stack = append(s.stack, s.fn)
	s.fn = entry
}

// Ret pops back to the caller context (a jalr through the link
// register, or a perf region close). Underflow is tolerated: returns
// past the tracked depth reset the context to NoPC.
func (s *TSampler) Ret() {
	if n := len(s.stack); n > 0 {
		s.fn = s.stack[n-1]
		s.stack = s.stack[:n-1]
	} else {
		s.fn = NoPC
	}
}

// Depth reports the shadow call stack depth (for tests).
func (s *TSampler) Depth() int { return len(s.stack) }

// Charge advances the sampler by n cycles attributed as k, firing one
// sample per interval boundary crossed.
func (s *TSampler) Charge(k Kind, n uint64) {
	s.cum += n
	for s.cum >= s.nextAt {
		s.buckets[site{PC: s.pc, Fn: s.fn, Kind: k}]++
		s.samples++
		s.nextAt += s.prof.Interval
	}
}

// Samples reports how many samples this thread has taken: exactly
// floor(charged cycles / interval), which with interval 1 equals the
// thread's run+stall total.
func (s *TSampler) Samples() uint64 { return s.samples }

// Cycles reports the total cycles charged through this sampler.
func (s *TSampler) Cycles() uint64 { return s.cum }

// Profile collects the samplers of one run. Create one per machine,
// attach it before Run, and read reports after.
type Profile struct {
	// Interval is the sampling period E in cycles; each sample stands
	// for E cycles of its kind.
	Interval uint64

	samplers []*TSampler
}

// New returns a Profile sampling every interval cycles. interval must
// be at least 1.
func New(interval uint64) *Profile {
	if interval == 0 {
		interval = 1
	}
	return &Profile{Interval: interval}
}

// Sampler returns thread unit tu's sampler, creating it on first use.
// Engines call this once per thread at attach/spawn time, before the
// thread runs.
func (p *Profile) Sampler(tu int) *TSampler {
	for len(p.samplers) <= tu {
		p.samplers = append(p.samplers, nil)
	}
	if p.samplers[tu] == nil {
		p.samplers[tu] = &TSampler{
			prof:    p,
			tu:      tu,
			pc:      NoPC,
			fn:      NoPC,
			nextAt:  p.Interval,
			buckets: make(map[site]uint64),
		}
	}
	return p.samplers[tu]
}

// SamplesByTU returns each thread unit's sample count, indexed by TU id
// (zero for units that never sampled).
func (p *Profile) SamplesByTU() []uint64 {
	out := make([]uint64, len(p.samplers))
	for i, s := range p.samplers {
		if s != nil {
			out[i] = s.samples
		}
	}
	return out
}

// TotalSamples sums every thread's sample count.
func (p *Profile) TotalSamples() uint64 {
	var t uint64
	for _, s := range p.samplers {
		if s != nil {
			t += s.samples
		}
	}
	return t
}

// sample is one merged bucket: a site, its owning thread unit, and the
// sample count. The slice form is the deterministic iteration order
// every exporter shares.
type sample struct {
	site
	TU    int
	Count uint64
}

// merged flattens every sampler's buckets into a deterministically
// ordered slice: by TU, then PC, then caller, then kind.
func (p *Profile) merged() []sample {
	var out []sample
	for tu, s := range p.samplers {
		if s == nil {
			continue
		}
		for k, n := range s.buckets {
			out = append(out, sample{site: k, TU: tu, Count: n})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.TU != b.TU {
			return a.TU < b.TU
		}
		if a.PC != b.PC {
			return a.PC < b.PC
		}
		if a.Fn != b.Fn {
			return a.Fn < b.Fn
		}
		return a.Kind < b.Kind
	})
	return out
}
