package prof

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Symbolizer turns program counters back into names. asm.Program
// implements it via the assembler's line table; the direct-execution
// engine implements it with a region-name table over synthetic PCs.
type Symbolizer interface {
	// SymbolizePC renders an exact program counter, e.g.
	// "stream_triad+0x18 (stream.s:142)".
	SymbolizePC(pc uint32) string
	// FuncName names the enclosing function (nearest label / region)
	// of pc, e.g. "stream_triad".
	FuncName(pc uint32) string
}

// hexSymbols is the fallback Symbolizer when no program is available
// (e.g. a raw .cyc image with no line table): every PC is hex.
type hexSymbols struct{}

func (hexSymbols) SymbolizePC(pc uint32) string { return fmt.Sprintf("%#x", pc) }
func (hexSymbols) FuncName(pc uint32) string    { return fmt.Sprintf("%#x", pc) }

// HexSymbols symbolizes every PC as a raw hex address.
var HexSymbols Symbolizer = hexSymbols{}

// RegionTable is the Symbolizer for engines without an instruction
// stream: names are interned to stable synthetic PCs in registration
// order, and symbolization is the name itself.
type RegionTable struct {
	names []string
	ids   map[string]uint32
}

// NewRegionTable returns an empty region table.
func NewRegionTable() *RegionTable {
	return &RegionTable{ids: make(map[string]uint32)}
}

// Intern returns the stable synthetic PC for name, allocating one on
// first use. IDs are dense from 0 in first-intern order, so a program
// that registers regions deterministically gets deterministic PCs.
func (t *RegionTable) Intern(name string) uint32 {
	if id, ok := t.ids[name]; ok {
		return id
	}
	id := uint32(len(t.names))
	t.names = append(t.names, name)
	t.ids[name] = id
	return id
}

func (t *RegionTable) name(pc uint32) string {
	if int(pc) < len(t.names) {
		return t.names[pc]
	}
	return fmt.Sprintf("region#%d", pc)
}

func (t *RegionTable) SymbolizePC(pc uint32) string { return t.name(pc) }
func (t *RegionTable) FuncName(pc uint32) string    { return t.name(pc) }

// rootName labels samples taken outside any call/region context.
const rootName = "(root)"

// Row is one symbol's line in a Report: total attributed cycles and the
// per-kind split, all in cycles (samples × interval).
type Row struct {
	// Name is the symbol (nearest label or region name).
	Name string
	// Cycles is the symbol's total attributed cycles.
	Cycles uint64
	// Samples is the raw sample count behind Cycles.
	Samples uint64
	// Kinds splits Cycles by charge kind (run first, then the stall
	// reasons in obs enum order).
	Kinds [NumKinds]uint64
}

// Report is a symbol-level aggregation of a Profile: one row per
// enclosing function, hottest first.
type Report struct {
	// Interval is the sampling period the counts were taken at.
	Interval uint64
	// Rows is sorted by Cycles descending, ties by name.
	Rows []Row
}

// Report aggregates the profile by enclosing function using sym.
func (p *Profile) Report(sym Symbolizer) *Report {
	if sym == nil {
		sym = HexSymbols
	}
	agg := make(map[string]*Row)
	order := []string{}
	for _, s := range p.merged() {
		name := rootName
		if s.PC != NoPC {
			name = sym.FuncName(s.PC)
		}
		r := agg[name]
		if r == nil {
			r = &Row{Name: name}
			agg[name] = r
			order = append(order, name)
		}
		r.Samples += s.Count
		r.Cycles += s.Count * p.Interval
		r.Kinds[s.Kind] += s.Count * p.Interval
	}
	rep := &Report{Interval: p.Interval}
	for _, name := range order {
		rep.Rows = append(rep.Rows, *agg[name])
	}
	sort.Slice(rep.Rows, func(i, j int) bool {
		if rep.Rows[i].Cycles != rep.Rows[j].Cycles {
			return rep.Rows[i].Cycles > rep.Rows[j].Cycles
		}
		return rep.Rows[i].Name < rep.Rows[j].Name
	})
	return rep
}

// Top returns the first k rows (all rows if k <= 0 or past the end).
func (r *Report) Top(k int) []Row {
	if k <= 0 || k > len(r.Rows) {
		k = len(r.Rows)
	}
	return r.Rows[:k]
}

// WriteText renders the report as an aligned table: symbol, cycles,
// share, then one column per kind. k limits the rows as in Top.
func (r *Report) WriteText(w io.Writer, k int) error {
	rows := r.Top(k)
	var total uint64
	for _, row := range r.Rows {
		total += row.Cycles
	}
	names := KindNames()
	fmt.Fprintf(w, "%-28s %12s %6s", "symbol", "cycles", "%")
	for _, n := range names {
		fmt.Fprintf(w, " %12s", n)
	}
	fmt.Fprintln(w)
	for _, row := range rows {
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(row.Cycles) / float64(total)
		}
		fmt.Fprintf(w, "%-28s %12d %5.1f%%", row.Name, row.Cycles, pct)
		for k := 0; k < NumKinds; k++ {
			fmt.Fprintf(w, " %12d", row.Kinds[k])
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// WriteFolded writes the profile in collapsed-stack ("folded") format —
// "caller;pc-symbol count" per line, cycle-weighted, sorted — the input
// format of flame-graph tools.
func (p *Profile) WriteFolded(w io.Writer, sym Symbolizer) error {
	if sym == nil {
		sym = HexSymbols
	}
	agg := make(map[string]uint64)
	for _, s := range p.merged() {
		leaf := rootName
		if s.PC != NoPC {
			leaf = sym.SymbolizePC(s.PC)
		}
		frames := leaf + " [" + s.Kind.String() + "]"
		if s.Fn != NoPC {
			frames = sym.FuncName(s.Fn) + ";" + frames
		}
		agg[frames] += s.Count * p.Interval
	}
	keys := make([]string, 0, len(agg))
	for k := range agg {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&sb, "%s %d\n", k, agg[k])
	}
	_, err := io.WriteString(w, sb.String())
	return err
}
