package link

import (
	"testing"
	"testing/quick"
)

func mustMesh(t *testing.T, x, y, z int, torus bool) *Mesh {
	t.Helper()
	m, err := NewMesh(DefaultLinkConfig(), Coord{x, y, z}, torus)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestDefaultBandwidthMatchesPaper(t *testing.T) {
	c := DefaultLinkConfig()
	if c.BytesPerCycle() != 2 {
		t.Errorf("16-bit link moves %.1f B/cycle, want 2", c.BytesPerCycle())
	}
	// Section 2.2: maximum I/O bandwidth 12 GB/s.
	if got := c.PeakBandwidth() / 1e9; got < 11.9 || got > 12.1 {
		t.Errorf("peak I/O = %.1f GB/s, want 12", got)
	}
}

func TestMeshValidation(t *testing.T) {
	if _, err := NewMesh(DefaultLinkConfig(), Coord{0, 1, 1}, false); err == nil {
		t.Error("zero dimension accepted")
	}
	if _, err := NewMesh(LinkConfig{WidthBits: 0}, Coord{1, 1, 1}, false); err == nil {
		t.Error("zero-width link accepted")
	}
	m := mustMesh(t, 4, 3, 2, false)
	if m.Cells() != 24 {
		t.Errorf("Cells = %d", m.Cells())
	}
}

func TestDimensionOrderedRouting(t *testing.T) {
	m := mustMesh(t, 4, 4, 4, false)
	hops, err := m.Route(Coord{0, 0, 0}, Coord{2, 3, 1})
	if err != nil {
		t.Fatal(err)
	}
	want := []Direction{XPlus, XPlus, YPlus, YPlus, YPlus, ZPlus}
	if len(hops) != len(want) {
		t.Fatalf("route = %v, want %v", hops, want)
	}
	for i := range want {
		if hops[i] != want[i] {
			t.Fatalf("hop %d = %v, want %v (x before y before z)", i, hops[i], want[i])
		}
	}
	// Negative directions too.
	hops, _ = m.Route(Coord{3, 3, 3}, Coord{1, 3, 3})
	if len(hops) != 2 || hops[0] != XMinus {
		t.Errorf("backward route = %v", hops)
	}
	// Self route is empty.
	if hops, _ := m.Route(Coord{1, 1, 1}, Coord{1, 1, 1}); len(hops) != 0 {
		t.Errorf("self route = %v", hops)
	}
	if _, err := m.Route(Coord{9, 0, 0}, Coord{0, 0, 0}); err == nil {
		t.Error("out-of-mesh source accepted")
	}
}

func TestTorusTakesShortWayAround(t *testing.T) {
	m := mustMesh(t, 8, 1, 1, true)
	hops, err := m.Route(Coord{0, 0, 0}, Coord{6, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	// 0 -> 6 is 2 hops backwards around the ring, not 6 forwards.
	if len(hops) != 2 || hops[0] != XMinus {
		t.Errorf("torus route = %v, want two x- hops", hops)
	}
	mesh := mustMesh(t, 8, 1, 1, false)
	hops, _ = mesh.Route(Coord{0, 0, 0}, Coord{6, 0, 0})
	if len(hops) != 6 {
		t.Errorf("mesh route = %v hops, want 6 (no wrap)", len(hops))
	}
}

// Property: a route always reaches its destination.
func TestRouteReachesDestination(t *testing.T) {
	for _, torus := range []bool{false, true} {
		m := mustMesh(t, 5, 4, 3, torus)
		f := func(sx, sy, sz, dx, dy, dz uint8) bool {
			src := Coord{int(sx) % 5, int(sy) % 4, int(sz) % 3}
			dst := Coord{int(dx) % 5, int(dy) % 4, int(dz) % 3}
			hops, err := m.Route(src, dst)
			if err != nil {
				return false
			}
			cur := src
			for _, h := range hops {
				cur = m.step(cur, h)
			}
			return cur == dst
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("torus=%v: %v", torus, err)
		}
	}
}

func TestSendTiming(t *testing.T) {
	m := mustMesh(t, 4, 1, 1, false)
	// 1 KB over one 2 B/cycle hop: 512 transfer + 10 hop latency.
	done, err := m.Send(0, Coord{0, 0, 0}, Coord{1, 0, 0}, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if done != 522 {
		t.Errorf("one-hop 1 KB delivered at %d, want 522", done)
	}
	// Two hops: store-and-forward doubles transfer plus two latencies.
	m.ResetTiming()
	done, _ = m.Send(0, Coord{0, 0, 0}, Coord{2, 0, 0}, 1024)
	if done != 2*522 {
		t.Errorf("two-hop 1 KB delivered at %d, want 1044", done)
	}
}

func TestLinkContention(t *testing.T) {
	m := mustMesh(t, 2, 1, 1, false)
	src, dst := Coord{0, 0, 0}, Coord{1, 0, 0}
	first, _ := m.Send(0, src, dst, 1024)
	second, err := m.Send(0, src, dst, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if second <= first {
		t.Errorf("contending sends not serialised: %d then %d", first, second)
	}
	if second != first+512 {
		t.Errorf("second send at %d, want first+transfer %d", second, first+512)
	}
	// Opposite-direction traffic is independent.
	back, _ := m.Send(0, dst, src, 1024)
	if back != first {
		t.Errorf("reverse link serialised with forward: %d vs %d", back, first)
	}
}

func TestLinkStats(t *testing.T) {
	m := mustMesh(t, 3, 1, 1, false)
	m.Send(0, Coord{0, 0, 0}, Coord{2, 0, 0}, 512)
	if m.Messages != 1 || m.HopCount != 2 {
		t.Errorf("messages/hops = %d/%d", m.Messages, m.HopCount)
	}
	busy, err := m.LinkBusy(Coord{0, 0, 0}, XPlus)
	if err != nil || busy != 256 {
		t.Errorf("link busy = %d, %v; want 256", busy, err)
	}
	if _, err := m.LinkBusy(Coord{9, 9, 9}, XPlus); err == nil {
		t.Error("bad coordinate accepted")
	}
	m.ResetTiming()
	if b, _ := m.LinkBusy(Coord{0, 0, 0}, XPlus); b != 0 {
		t.Error("ResetTiming kept occupancy")
	}
}

func TestHostLink(t *testing.T) {
	m := mustMesh(t, 2, 2, 1, false)
	done, err := m.HostSend(0, Coord{1, 1, 0}, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if done != 1024+10 {
		t.Errorf("host transfer done at %d, want 1034", done)
	}
	// The host port is its own resource.
	mesh, _ := m.Send(0, Coord{1, 1, 0}, Coord{0, 1, 0}, 2048)
	if mesh != 1034 {
		t.Errorf("mesh send should not queue behind host port: %d", mesh)
	}
	if _, err := m.HostSend(0, Coord{5, 0, 0}, 8); err == nil {
		t.Error("bad host cell accepted")
	}
}

func TestSendValidation(t *testing.T) {
	m := mustMesh(t, 2, 2, 2, false)
	if _, err := m.Send(0, Coord{0, 0, 0}, Coord{1, 1, 1}, 0); err == nil {
		t.Error("empty message accepted")
	}
	if _, err := m.Send(0, Coord{0, 0, 0}, Coord{3, 0, 0}, 64); err == nil {
		t.Error("out-of-mesh destination accepted")
	}
}

func TestDirectionNames(t *testing.T) {
	names := map[Direction]string{
		XPlus: "x+", XMinus: "x-", YPlus: "y+", YMinus: "y-",
		ZPlus: "z+", ZMinus: "z-", Host: "host",
	}
	for d, want := range names {
		if d.String() != want {
			t.Errorf("%d = %q, want %q", d, d.String(), want)
		}
	}
	for d := XPlus; d <= ZMinus; d++ {
		if opposite(opposite(d)) != d {
			t.Errorf("opposite not involutive for %v", d)
		}
	}
}
