// Package link models the Cyclops communication interface (Section 2.2):
// each chip provides six input and six output links, 16 bits wide at
// 500 MHz (1 GB/s per direction per link, 12 GB/s aggregate), that
// connect chips directly into a three-dimensional mesh or torus. A
// seventh link attaches a host computer. Large systems are built by
// replicating the chip as a cell in a regular pattern — the "cellular
// computing" of the paper's title.
//
// The model is message-level: blocks move between neighbouring cells with
// link occupancy and store-and-forward hop latency, and multi-hop
// transfers follow dimension-ordered (x, then y, then z) routing, the
// standard deadlock-free choice for meshes.
package link

import (
	"fmt"

	"cyclops/internal/arch"
)

// Direction names the six mesh links plus the host port.
type Direction int

// The six cell faces and the host link.
const (
	XPlus Direction = iota
	XMinus
	YPlus
	YMinus
	ZPlus
	ZMinus
	Host
	numDirections
)

func (d Direction) String() string {
	switch d {
	case XPlus:
		return "x+"
	case XMinus:
		return "x-"
	case YPlus:
		return "y+"
	case YMinus:
		return "y-"
	case ZPlus:
		return "z+"
	case ZMinus:
		return "z-"
	case Host:
		return "host"
	}
	return fmt.Sprintf("Direction(%d)", int(d))
}

// opposite returns the receiving side of a link.
func opposite(d Direction) Direction {
	switch d {
	case XPlus:
		return XMinus
	case XMinus:
		return XPlus
	case YPlus:
		return YMinus
	case YMinus:
		return YPlus
	case ZPlus:
		return ZMinus
	}
	return ZPlus
}

// Coord addresses a cell in the 3-D array.
type Coord struct{ X, Y, Z int }

// LinkConfig sizes the interconnect.
type LinkConfig struct {
	// WidthBits is the link width (16) and determines bandwidth:
	// WidthBits/8 bytes per cycle at the 500 MHz clock.
	WidthBits int
	// HopLatency is the store-and-forward switch latency per hop in
	// cycles.
	HopLatency int
}

// DefaultLinkConfig matches Section 2.2.
func DefaultLinkConfig() LinkConfig {
	return LinkConfig{WidthBits: 16, HopLatency: 10}
}

// BytesPerCycle returns the per-link bandwidth.
func (c LinkConfig) BytesPerCycle() float64 { return float64(c.WidthBits) / 8 }

// PeakBandwidth returns the aggregate I/O bandwidth in bytes/second over
// the six input plus six output links (12 GB/s at the default, matching
// Section 2.2).
func (c LinkConfig) PeakBandwidth() float64 {
	return 12 * c.BytesPerCycle() * arch.ClockHz
}

// Mesh is a 3-D array of cells connected by links. Torus wrap-around is
// optional per the paper ("mesh or torus").
type Mesh struct {
	cfg   LinkConfig
	dims  Coord
	torus bool
	// freeAt[cell][dir] is the next cycle the outgoing link is idle.
	freeAt [][numDirections]uint64
	// busy accumulates per-link occupancy for utilization stats.
	busy [][numDirections]uint64

	// Messages counts completed transfers; HopCount their total hops.
	Messages, HopCount uint64
}

// NewMesh builds a dims.X x dims.Y x dims.Z cell array.
func NewMesh(cfg LinkConfig, dims Coord, torus bool) (*Mesh, error) {
	if dims.X < 1 || dims.Y < 1 || dims.Z < 1 {
		return nil, fmt.Errorf("link: bad mesh dimensions %+v", dims)
	}
	if cfg.WidthBits < 1 || cfg.HopLatency < 0 {
		return nil, fmt.Errorf("link: bad link config %+v", cfg)
	}
	n := dims.X * dims.Y * dims.Z
	return &Mesh{
		cfg:    cfg,
		dims:   dims,
		torus:  torus,
		freeAt: make([][numDirections]uint64, n),
		busy:   make([][numDirections]uint64, n),
	}, nil
}

// Cells returns the number of cells.
func (m *Mesh) Cells() int { return m.dims.X * m.dims.Y * m.dims.Z }

// Dims returns the array shape.
func (m *Mesh) Dims() Coord { return m.dims }

func (m *Mesh) index(c Coord) (int, error) {
	if c.X < 0 || c.X >= m.dims.X || c.Y < 0 || c.Y >= m.dims.Y || c.Z < 0 || c.Z >= m.dims.Z {
		return 0, fmt.Errorf("link: coordinate %+v outside %+v", c, m.dims)
	}
	return (c.Z*m.dims.Y+c.Y)*m.dims.X + c.X, nil
}

// Route returns the dimension-ordered hop sequence from src to dst.
// On a torus each axis takes the shorter way around.
func (m *Mesh) Route(src, dst Coord) ([]Direction, error) {
	if _, err := m.index(src); err != nil {
		return nil, err
	}
	if _, err := m.index(dst); err != nil {
		return nil, err
	}
	var hops []Direction
	axes := []struct {
		cur, want, size int
		plus, minus     Direction
	}{
		{src.X, dst.X, m.dims.X, XPlus, XMinus},
		{src.Y, dst.Y, m.dims.Y, YPlus, YMinus},
		{src.Z, dst.Z, m.dims.Z, ZPlus, ZMinus},
	}
	for _, a := range axes {
		d := a.want - a.cur
		if m.torus && a.size > 1 {
			// Take the shorter direction around the ring.
			if d > a.size/2 {
				d -= a.size
			} else if d < -a.size/2 {
				d += a.size
			}
		}
		for d > 0 {
			hops = append(hops, a.plus)
			d--
		}
		for d < 0 {
			hops = append(hops, a.minus)
			d++
		}
	}
	return hops, nil
}

// step returns the coordinate after one hop, applying torus wrap.
func (m *Mesh) step(c Coord, d Direction) Coord {
	switch d {
	case XPlus:
		c.X++
	case XMinus:
		c.X--
	case YPlus:
		c.Y++
	case YMinus:
		c.Y--
	case ZPlus:
		c.Z++
	case ZMinus:
		c.Z--
	}
	wrap := func(v, size int) int { return (v + size) % size }
	if m.torus {
		c.X, c.Y, c.Z = wrap(c.X, m.dims.X), wrap(c.Y, m.dims.Y), wrap(c.Z, m.dims.Z)
	}
	return c
}

// Send times a bytes-long message from src to dst starting no earlier
// than cycle now, returning the delivery cycle. Each hop occupies the
// outgoing link for bytes/width cycles (store-and-forward) plus the hop
// latency; contending messages queue FIFO per link.
func (m *Mesh) Send(now uint64, src, dst Coord, bytes int) (uint64, error) {
	if bytes <= 0 {
		return now, fmt.Errorf("link: message size %d", bytes)
	}
	hops, err := m.Route(src, dst)
	if err != nil {
		return now, err
	}
	if len(hops) == 0 {
		return now, nil // local delivery
	}
	transfer := uint64(float64(bytes)/m.cfg.BytesPerCycle() + 0.999)
	t := now
	cur := src
	for _, d := range hops {
		idx, err := m.index(cur)
		if err != nil {
			return now, fmt.Errorf("link: route left the mesh at %+v (no torus wrap?)", cur)
		}
		start := t
		if m.freeAt[idx][d] > start {
			start = m.freeAt[idx][d]
		}
		m.freeAt[idx][d] = start + transfer
		m.busy[idx][d] += transfer
		t = start + transfer + uint64(m.cfg.HopLatency)
		cur = m.step(cur, d)
		m.HopCount++
	}
	m.Messages++
	return t, nil
}

// HostSend times a transfer over a cell's host link.
func (m *Mesh) HostSend(now uint64, cell Coord, bytes int) (uint64, error) {
	idx, err := m.index(cell)
	if err != nil {
		return now, err
	}
	transfer := uint64(float64(bytes)/m.cfg.BytesPerCycle() + 0.999)
	start := now
	if m.freeAt[idx][Host] > start {
		start = m.freeAt[idx][Host]
	}
	m.freeAt[idx][Host] = start + transfer
	m.busy[idx][Host] += transfer
	m.Messages++
	return start + transfer + uint64(m.cfg.HopLatency), nil
}

// LinkBusy returns the accumulated occupancy of one outgoing link.
func (m *Mesh) LinkBusy(cell Coord, d Direction) (uint64, error) {
	idx, err := m.index(cell)
	if err != nil {
		return 0, err
	}
	if d < 0 || d >= numDirections {
		return 0, fmt.Errorf("link: bad direction %d", d)
	}
	return m.busy[idx][d], nil
}

// ResetTiming clears link occupancy between experiments.
func (m *Mesh) ResetTiming() {
	for i := range m.freeAt {
		m.freeAt[i] = [numDirections]uint64{}
		m.busy[i] = [numDirections]uint64{}
	}
	m.Messages, m.HopCount = 0, 0
}
