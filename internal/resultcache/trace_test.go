package resultcache

import (
	"os"
	"testing"

	"cyclops/internal/obs"
)

// The disk-byte gauge tracks exactly what du would report for the
// object tree: writes add, re-writes of identical content are neutral,
// corrupt evictions subtract, and a fresh Open re-seeds from a scan.
func TestDiskBytesGauge(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, "scheme/1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.DiskBytes(); got != 0 {
		t.Fatalf("fresh cache DiskBytes = %d; want 0", got)
	}
	a, b := testKey(1), testKey(2)
	if err := c.Put(a, []byte("small")); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(b, []byte("a somewhat longer payload")); err != nil {
		t.Fatal(err)
	}
	var want uint64
	for _, k := range []Key{a, b} {
		fi, err := os.Stat(c.entryPath(k))
		if err != nil {
			t.Fatal(err)
		}
		want += uint64(fi.Size())
	}
	if got := c.DiskBytes(); got != want {
		t.Fatalf("DiskBytes = %d; want %d (sum of entry files)", got, want)
	}

	// Same key, same bytes: the gauge must not double-count.
	if err := c.Put(a, []byte("small")); err != nil {
		t.Fatal(err)
	}
	if got := c.DiskBytes(); got != want {
		t.Fatalf("DiskBytes after identical re-put = %d; want %d", got, want)
	}

	// Reopen seeds the gauge from the directory scan.
	c2, err := Open(dir, "scheme/1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := c2.DiskBytes(); got != want {
		t.Fatalf("DiskBytes after reopen = %d; want %d", got, want)
	}

	// A corrupt entry's eviction subtracts its size.
	path := c2.entryPath(a)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.Get(a); ok {
		t.Fatal("corrupt entry served as a hit")
	}
	if got := c2.DiskBytes(); got != want-uint64(fi.Size()) {
		t.Fatalf("DiskBytes after corrupt eviction = %d; want %d", got, want-uint64(fi.Size()))
	}
}

// GetTraced and PutTraced record the tier spans: a write span with a
// byte count, then — after the memory tier is dropped by a reopen — a
// mem miss, a disk probe and a verify child reporting success.
func TestTracedTierSpans(t *testing.T) {
	dir := t.TempDir()
	tr := obs.NewTracer(0)
	c, err := Open(dir, "scheme/1", 0)
	if err != nil {
		t.Fatal(err)
	}
	k := testKey(5)
	root := tr.StartTrace("test")
	if err := c.PutTraced(k, []byte("traced payload"), root); err != nil {
		t.Fatal(err)
	}

	c2, err := Open(dir, "scheme/1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.GetTraced(k, root); !ok {
		t.Fatal("disk entry missing")
	}
	root.End()

	byName := map[string]obs.Span{}
	for _, sp := range tr.Snapshot() {
		byName[sp.Name] = sp
	}
	attr := func(sp obs.Span, key string) string {
		for _, kv := range sp.Attrs {
			if kv[0] == key {
				return kv[1]
			}
		}
		return ""
	}
	wsp, ok := byName["cache.write"]
	if !ok || attr(wsp, "bytes") != "14" {
		t.Errorf("cache.write span = %+v; want bytes=14", wsp)
	}
	msp, ok := byName["cache.mem"]
	if !ok || attr(msp, "outcome") != "miss" {
		t.Errorf("cache.mem span = %+v; want outcome=miss", msp)
	}
	dsp, ok := byName["cache.disk"]
	if !ok || attr(dsp, "outcome") != "hit" {
		t.Errorf("cache.disk span = %+v; want outcome=hit", dsp)
	}
	vsp, ok := byName["cache.verify"]
	if !ok || attr(vsp, "ok") != "true" {
		t.Errorf("cache.verify span = %+v; want ok=true", vsp)
	}
	if vsp.Parent != dsp.ID {
		t.Errorf("cache.verify parent = %s; want the cache.disk span %s", vsp.Parent, dsp.ID)
	}
	for _, name := range []string{"cache.write", "cache.mem", "cache.disk"} {
		if byName[name].Parent != root.SpanID() {
			t.Errorf("%s parent = %s; want the root %s", name, byName[name].Parent, root.SpanID())
		}
	}
}
