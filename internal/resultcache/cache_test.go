package resultcache

import (
	"bytes"
	"crypto/sha256"
	"os"
	"path/filepath"
	"testing"
)

func testKey(b byte) Key {
	var k Key
	k[0] = b
	k[31] = b ^ 0xff
	return k
}

func TestMemoryRoundTrip(t *testing.T) {
	c := OpenMemory(0)
	k := testKey(1)
	if _, ok := c.Get(k); ok {
		t.Fatal("empty cache reported a hit")
	}
	if err := c.Put(k, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(k)
	if !ok || string(got) != "payload" {
		t.Fatalf("Get = %q, %v; want payload, true", got, ok)
	}
	st := c.Stats()
	if st.MemHits != 1 || st.Misses != 1 || st.Puts != 1 {
		t.Fatalf("counters = %+v; want 1 mem hit, 1 miss, 1 put", st)
	}
}

func TestMemoryLRUEviction(t *testing.T) {
	c := OpenMemory(20) // room for two 8-byte entries, not three
	a, b, d := testKey(1), testKey(2), testKey(3)
	for _, k := range []Key{a, b, d} {
		if err := c.Put(k, []byte("12345678")); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := c.Get(a); ok {
		t.Fatal("oldest entry survived past the byte budget")
	}
	if _, ok := c.Get(d); !ok {
		t.Fatal("newest entry was evicted")
	}
	if ev := c.Stats().Evictions; ev != 1 {
		t.Fatalf("evictions = %d; want 1", ev)
	}
}

func TestDiskPersistsAcrossOpens(t *testing.T) {
	dir := t.TempDir()
	k := testKey(7)
	c1, err := Open(dir, "scheme/1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Put(k, []byte("persisted")); err != nil {
		t.Fatal(err)
	}

	c2, err := Open(dir, "scheme/1", 0)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := c2.Get(k)
	if !ok || string(got) != "persisted" {
		t.Fatalf("Get after reopen = %q, %v; want persisted, true", got, ok)
	}
	st := c2.Stats()
	if st.DiskHits != 1 || st.MemHits != 0 {
		t.Fatalf("counters = %+v; want the hit served from disk", st)
	}
	// The disk hit promotes into memory: the next Get is a memory hit.
	if _, ok := c2.Get(k); !ok {
		t.Fatal("promoted entry missing")
	}
	if st := c2.Stats(); st.MemHits != 1 {
		t.Fatalf("counters = %+v; want the second hit served from memory", st)
	}
}

// corruptTests mutates a valid on-disk entry in-place; every mutation
// must read as a miss, bump the corrupt counter, and delete the file.
func TestCorruptEntryEvictedAndRecoverable(t *testing.T) {
	mutations := []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"flipped payload byte", func(raw []byte) []byte {
			raw[len(raw)-1] ^= 0x01
			return raw
		}},
		{"flipped digest byte", func(raw []byte) []byte {
			raw[len(entryMagic)] ^= 0x01
			return raw
		}},
		{"truncated below header", func(raw []byte) []byte {
			return raw[:len(entryMagic)+sha256.Size/2]
		}},
		{"truncated payload", func(raw []byte) []byte {
			return raw[:len(raw)-3]
		}},
		{"wrong magic", func(raw []byte) []byte {
			copy(raw, "NOPE!\n")
			return raw
		}},
	}
	for _, tc := range mutations {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			c, err := Open(dir, "scheme/1", 0)
			if err != nil {
				t.Fatal(err)
			}
			k := testKey(9)
			if err := c.Put(k, []byte("fragile payload")); err != nil {
				t.Fatal(err)
			}
			path := c.entryPath(k)
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.mut(raw), 0o644); err != nil {
				t.Fatal(err)
			}

			// Fresh open so the memory tier cannot mask the damage.
			c2, err := Open(dir, "scheme/1", 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, ok := c2.Get(k); ok {
				t.Fatal("corrupt entry served as a hit")
			}
			if st := c2.Stats(); st.Corrupt != 1 || st.Misses != 1 {
				t.Fatalf("counters = %+v; want 1 corrupt, 1 miss", st)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Fatalf("corrupt entry still on disk (stat err %v)", err)
			}
			// The slot is reusable: a re-run stores and serves again.
			if err := c2.Put(k, []byte("fresh payload")); err != nil {
				t.Fatal(err)
			}
			c3, err := Open(dir, "scheme/1", 0)
			if err != nil {
				t.Fatal(err)
			}
			got, ok := c3.Get(k)
			if !ok || string(got) != "fresh payload" {
				t.Fatalf("Get after re-put = %q, %v; want fresh payload, true", got, ok)
			}
		})
	}
}

func TestOpenRefusesNonEmptyNonCacheDir(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "precious.txt"), []byte("data"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, "scheme/1", 0); err == nil {
		t.Fatal("Open accepted a non-empty directory without a manifest")
	}
	// The refusal must not have touched the directory.
	if _, err := os.Stat(filepath.Join(dir, ManifestName)); !os.IsNotExist(err) {
		t.Fatal("refused Open still wrote a manifest")
	}
}

func TestOpenRefusesKeySchemeMismatch(t *testing.T) {
	dir := t.TempDir()
	if _, err := Open(dir, "scheme/1", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, "scheme/2", 0); err == nil {
		t.Fatal("Open accepted a cache written under a different key scheme")
	}
	if _, err := Open(dir, "scheme/1", 0); err != nil {
		t.Fatalf("matching scheme refused: %v", err)
	}
}

func TestOpenRefusesBogusManifest(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, ManifestName), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, "scheme/1", 0); err == nil {
		t.Fatal("Open accepted an unparsable manifest")
	}
}

func TestKeyStringRoundTrip(t *testing.T) {
	k := testKey(0xab)
	parsed, err := ParseKey(k.String())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(parsed[:], k[:]) {
		t.Fatalf("round trip changed the key: %s vs %s", parsed, k)
	}
	for _, bad := range []string{"", "zz", k.String()[:10], k.String() + "00"} {
		if _, err := ParseKey(bad); err == nil {
			t.Fatalf("ParseKey(%q) accepted", bad)
		}
	}
}
