// Package resultcache stores encoded job results under their spec keys:
// a two-tier cache — an in-memory LRU over a content-addressed on-disk
// store — exploiting the simulator's determinism (a spec key fully
// determines its result, so entries never invalidate; they only age out
// of the memory tier or get evicted when corrupt).
//
// Disk layout under the cache directory:
//
//	manifest.json        format + key-scheme stamp (see Open)
//	objects/ab/<hex>     one entry per key, sharded by the first byte
//
// Every entry file carries a magic and a SHA-256 digest of its payload;
// Get verifies the digest and evicts (deletes) entries that fail it, so
// a torn write or bit rot becomes a cache miss and a re-run, never a
// wrong result. Writes go through a temp file and an atomic rename, so
// a crashed writer can leave at worst an orphaned temp file.
package resultcache

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"

	"cyclops/internal/obs"
)

// Key is a job spec's content hash (SHA-256 over the canonical spec
// encoding plus the semantics version).
type Key [sha256.Size]byte

// String returns the key as lowercase hex, the on-disk entry name.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// ParseKey reads the hex form back into a Key.
func ParseKey(s string) (Key, error) {
	var k Key
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != len(k) {
		return k, fmt.Errorf("resultcache: %q is not a %d-byte hex key", s, len(k))
	}
	copy(k[:], b)
	return k, nil
}

// entryMagic heads every on-disk entry: format name + version. Bump the
// version when the entry framing changes (the payload schema is covered
// by the spec key, not by this).
const entryMagic = "CYCR1\n"

// ManifestName is the stamp file marking a directory as a result cache.
const ManifestName = "manifest.json"

// manifest is the content of ManifestName: enough to recognise the
// directory as ours and to refuse mixing incompatible key schemes.
type manifest struct {
	Format    string `json:"format"`
	KeyScheme string `json:"key_scheme"`
}

// manifestFormat identifies the directory layout.
const manifestFormat = "cyclops-result-cache/1"

// Counters is a snapshot of the cache's activity since Open.
type Counters struct {
	// MemHits and DiskHits split Get hits by serving tier; a disk hit
	// also promotes the entry into the memory tier.
	MemHits, DiskHits uint64
	// Misses counts Gets that found nothing in either tier.
	Misses uint64
	// Corrupt counts disk entries evicted because their digest or
	// framing failed verification.
	Corrupt uint64
	// Evictions counts memory-tier LRU evictions (disk entries persist).
	Evictions uint64
	// Puts counts successful stores.
	Puts uint64
}

// Cache is the two-tier store. Safe for concurrent use.
type Cache struct {
	dir string // "" = memory-only

	mu     sync.Mutex
	lru    *list.List // front = most recent; values are *memEntry
	index  map[Key]*list.Element
	memCap int // bytes budget for the memory tier
	memUse int

	memHits, diskHits, misses, corrupt, evictions, puts atomic.Uint64

	// diskBytes tracks the disk tier's payload footprint (framed entry
	// sizes): seeded by a directory walk at Open, then maintained by
	// writes and corrupt-entry evictions — the /metrics byte gauge.
	diskBytes atomic.Int64
}

type memEntry struct {
	key  Key
	data []byte
}

// DefaultMemBytes is the default memory-tier budget: enough for
// thousands of table-sized results while staying far below any
// simulation's own footprint.
const DefaultMemBytes = 64 << 20

// OpenMemory returns a memory-only cache (no disk tier) with the given
// byte budget (<= 0 selects DefaultMemBytes).
func OpenMemory(memBytes int) *Cache {
	if memBytes <= 0 {
		memBytes = DefaultMemBytes
	}
	return &Cache{
		lru:    list.New(),
		index:  make(map[Key]*list.Element),
		memCap: memBytes,
	}
}

// Open attaches the on-disk tier rooted at dir, creating it if needed,
// with a memory tier of memBytes on top. keyScheme is the spec-key
// derivation stamp (job.SemanticsVersion): it is recorded in the
// manifest on first use and must match on every later open.
//
// Open refuses a non-empty directory that lacks the manifest — pointing
// a cache at a directory holding unrelated files must fail loudly
// instead of treating (or eventually overwriting) them as cache
// entries — and refuses a manifest recording a different key scheme,
// since its entries were keyed under different semantics.
func Open(dir, keyScheme string, memBytes int) (*Cache, error) {
	if dir == "" {
		return nil, fmt.Errorf("resultcache: empty cache directory")
	}
	if err := checkDir(dir, keyScheme); err != nil {
		return nil, err
	}
	c := OpenMemory(memBytes)
	c.dir = dir
	c.diskBytes.Store(scanDiskBytes(dir))
	return c, nil
}

// scanDiskBytes sums the existing entry files so the byte gauge starts
// truthful on a warm cache. Orphaned temp files are skipped: they are
// not entries and a crashed writer's leftovers should not inflate the
// gauge.
func scanDiskBytes(dir string) int64 {
	var total int64
	root := filepath.Join(dir, "objects")
	_ = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || len(d.Name()) != 2*sha256.Size {
			return nil
		}
		if info, err := d.Info(); err == nil {
			total += info.Size()
		}
		return nil
	})
	return total
}

// checkDir validates or initialises the cache directory and manifest.
func checkDir(dir, keyScheme string) error {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("resultcache: %w", err)
		}
		entries = nil
	} else if err != nil {
		return fmt.Errorf("resultcache: %w", err)
	}
	mpath := filepath.Join(dir, ManifestName)
	data, merr := os.ReadFile(mpath)
	switch {
	case merr == nil:
		var m manifest
		if err := json.Unmarshal(data, &m); err != nil || m.Format != manifestFormat {
			return fmt.Errorf("resultcache: %s is not a %s manifest", mpath, manifestFormat)
		}
		if m.KeyScheme != keyScheme {
			return fmt.Errorf("resultcache: %s was written under key scheme %q, this build uses %q; use a fresh directory (old entries could never match anyway)",
				dir, m.KeyScheme, keyScheme)
		}
		return nil
	case os.IsNotExist(merr):
		if len(entries) > 0 {
			return fmt.Errorf("resultcache: refusing %s: directory is not empty and has no %s manifest (not a result cache — pick an empty or fresh directory)",
				dir, ManifestName)
		}
		m, err := json.MarshalIndent(manifest{Format: manifestFormat, KeyScheme: keyScheme}, "", "  ")
		if err != nil {
			return err
		}
		return writeAtomic(mpath, append(m, '\n'))
	default:
		return fmt.Errorf("resultcache: %w", merr)
	}
}

// Dir returns the disk-tier root ("" for a memory-only cache).
func (c *Cache) Dir() string { return c.dir }

// Get returns the entry stored under k, consulting the memory tier
// first and falling back to disk. A disk hit is promoted into memory.
// The returned slice must be treated as read-only (memory-tier hits
// share it).
func (c *Cache) Get(k Key) ([]byte, bool) { return c.GetTraced(k, nil) }

// GetTraced is Get with span recording: the memory and disk lookups
// (and the disk entry's digest verification) become child spans of
// parent, so a request trace shows which tier served it and what the
// verification cost. A nil parent records nothing and costs nothing.
func (c *Cache) GetTraced(k Key, parent *obs.ActiveSpan) ([]byte, bool) {
	msp := parent.Child("cache.mem")
	c.mu.Lock()
	if el, ok := c.index[k]; ok {
		c.lru.MoveToFront(el)
		data := el.Value.(*memEntry).data
		c.mu.Unlock()
		c.memHits.Add(1)
		msp.Attr("outcome", "hit").End()
		return data, true
	}
	c.mu.Unlock()
	msp.Attr("outcome", "miss").End()
	if c.dir == "" {
		c.misses.Add(1)
		return nil, false
	}
	dsp := parent.Child("cache.disk")
	data, ok := c.readDisk(k, dsp)
	dsp.End()
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.diskHits.Add(1)
	c.insertMem(k, data)
	return data, true
}

// Put stores data under k in both tiers. Storing the same key again is
// a no-op at the callers' level of abstraction (deterministic results),
// so the last write simply wins.
func (c *Cache) Put(k Key, data []byte) error { return c.PutTraced(k, data, nil) }

// PutTraced is Put with the disk write recorded as a child span of
// parent (attrs: payload bytes). A nil parent records nothing.
func (c *Cache) PutTraced(k Key, data []byte, parent *obs.ActiveSpan) error {
	if c.dir != "" {
		wsp := parent.Child("cache.write").Attr("bytes", strconv.Itoa(len(data)))
		err := c.writeDisk(k, data)
		wsp.End()
		if err != nil {
			return err
		}
	}
	c.insertMem(k, data)
	c.puts.Add(1)
	return nil
}

// insertMem adds (or refreshes) a memory-tier entry and evicts from the
// LRU tail past the byte budget. Entries larger than the whole budget
// are not cached in memory (disk still holds them).
func (c *Cache) insertMem(k Key, data []byte) {
	if len(data) > c.memCap {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.index[k]; ok {
		e := el.Value.(*memEntry)
		c.memUse += len(data) - len(e.data)
		e.data = data
		c.lru.MoveToFront(el)
	} else {
		c.index[k] = c.lru.PushFront(&memEntry{key: k, data: data})
		c.memUse += len(data)
	}
	for c.memUse > c.memCap {
		tail := c.lru.Back()
		if tail == nil {
			break
		}
		e := tail.Value.(*memEntry)
		c.lru.Remove(tail)
		delete(c.index, e.key)
		c.memUse -= len(e.data)
		c.evictions.Add(1)
	}
}

// entryPath shards entries by the first key byte to keep directories
// small under large sweeps.
func (c *Cache) entryPath(k Key) string {
	hexKey := k.String()
	return filepath.Join(c.dir, "objects", hexKey[:2], hexKey)
}

// readDisk loads and verifies one disk entry, annotating sp (the
// enclosing cache.disk span) with the outcome. Any verification failure
// deletes the entry (corrupt-entry eviction) and reads as a miss.
func (c *Cache) readDisk(k Key, sp *obs.ActiveSpan) ([]byte, bool) {
	path := c.entryPath(k)
	raw, err := os.ReadFile(path)
	if err != nil {
		sp.Attr("outcome", "miss")
		return nil, false
	}
	vsp := sp.Child("cache.verify").Attr("bytes", strconv.Itoa(len(raw)))
	header := len(entryMagic) + sha256.Size
	if len(raw) < header || string(raw[:len(entryMagic)]) != entryMagic {
		vsp.Attr("ok", "false").End()
		sp.Attr("outcome", "corrupt")
		c.evictCorrupt(path)
		return nil, false
	}
	payload := raw[header:]
	sum := sha256.Sum256(payload)
	if !bytes.Equal(sum[:], raw[len(entryMagic):header]) {
		vsp.Attr("ok", "false").End()
		sp.Attr("outcome", "corrupt")
		c.evictCorrupt(path)
		return nil, false
	}
	vsp.Attr("ok", "true").End()
	sp.Attr("outcome", "hit")
	return payload, true
}

func (c *Cache) evictCorrupt(path string) {
	c.corrupt.Add(1)
	if info, err := os.Stat(path); err == nil {
		c.diskBytes.Add(-info.Size())
	}
	os.Remove(path)
}

// writeDisk frames and stores one entry via temp file + atomic rename,
// so a reader never observes a partially written entry under its final
// name.
func (c *Cache) writeDisk(k Key, data []byte) error {
	path := c.entryPath(k)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("resultcache: %w", err)
	}
	sum := sha256.Sum256(data)
	buf := make([]byte, 0, len(entryMagic)+len(sum)+len(data))
	buf = append(buf, entryMagic...)
	buf = append(buf, sum[:]...)
	buf = append(buf, data...)
	var old int64
	if info, err := os.Stat(path); err == nil {
		old = info.Size() // overwrite: the gauge tracks the delta
	}
	if err := writeAtomic(path, buf); err != nil {
		return fmt.Errorf("resultcache: %w", err)
	}
	c.diskBytes.Add(int64(len(buf)) - old)
	return nil
}

// writeAtomic writes data next to path and renames it into place.
func writeAtomic(path string, data []byte) error {
	f, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// Stats snapshots the activity counters.
func (c *Cache) Stats() Counters {
	return Counters{
		MemHits:   c.memHits.Load(),
		DiskHits:  c.diskHits.Load(),
		Misses:    c.misses.Load(),
		Corrupt:   c.corrupt.Load(),
		Evictions: c.evictions.Load(),
		Puts:      c.puts.Load(),
	}
}

// MemLen reports the number of memory-tier entries (for tests and the
// serve metrics endpoint).
func (c *Cache) MemLen() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// MemBytes reports the memory tier's current byte footprint.
func (c *Cache) MemBytes() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.memUse
}

// DiskBytes reports the disk tier's framed-entry byte footprint (0 for
// a memory-only cache).
func (c *Cache) DiskBytes() uint64 {
	n := c.diskBytes.Load()
	if n < 0 {
		return 0
	}
	return uint64(n)
}
