package image

import (
	"testing"
	"testing/quick"

	"cyclops/internal/asm"
)

func TestRoundTrip(t *testing.T) {
	p, err := asm.Assemble(`
	.org 0x200
_start:	li r8, 42
	halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(Encode(p))
	if err != nil {
		t.Fatal(err)
	}
	if got.Origin != p.Origin || got.Entry != p.Entry {
		t.Errorf("header: %#x/%#x, want %#x/%#x", got.Origin, got.Entry, p.Origin, p.Entry)
	}
	if len(got.Bytes) != len(p.Bytes) {
		t.Fatalf("size %d, want %d", len(got.Bytes), len(p.Bytes))
	}
	for i := range p.Bytes {
		if got.Bytes[i] != p.Bytes[i] {
			t.Fatalf("byte %d differs", i)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(origin, entry uint32, body []byte) bool {
		p := &asm.Program{Origin: origin, Entry: entry, Bytes: body}
		got, err := Decode(Encode(p))
		if err != nil {
			return false
		}
		if got.Origin != origin || got.Entry != entry || len(got.Bytes) != len(body) {
			return false
		}
		for i := range body {
			if got.Bytes[i] != body[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("short"),
		[]byte("NOPE0123456789ab"),
		append([]byte(Magic), 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, 0xff, 0xff, 0xff, 0x7f), // huge size
	}
	for i, c := range cases {
		if _, err := Decode(c); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}
