// Package image defines the on-disk container for assembled Cyclops
// programs, shared by cyclops-asm (writer) and cyclops-sim (reader).
//
// Layout (little-endian):
//
//	offset 0   4  magic "CYC1"
//	offset 4   4  origin
//	offset 8   4  entry
//	offset 12  4  image byte count n
//	offset 16  n  image bytes
package image

import (
	"encoding/binary"
	"fmt"

	"cyclops/internal/asm"
)

// Magic identifies a Cyclops image file.
const Magic = "CYC1"

// Encode serialises a program.
func Encode(p *asm.Program) []byte {
	out := make([]byte, 16+len(p.Bytes))
	copy(out, Magic)
	binary.LittleEndian.PutUint32(out[4:], p.Origin)
	binary.LittleEndian.PutUint32(out[8:], p.Entry)
	binary.LittleEndian.PutUint32(out[12:], uint32(len(p.Bytes)))
	copy(out[16:], p.Bytes)
	return out
}

// Decode parses an image file. Symbols are not stored in the container;
// the returned program has an empty symbol table.
func Decode(b []byte) (*asm.Program, error) {
	if len(b) < 16 || string(b[:4]) != Magic {
		return nil, fmt.Errorf("image: not a %s file", Magic)
	}
	n := binary.LittleEndian.Uint32(b[12:])
	if uint32(len(b)-16) < n {
		return nil, fmt.Errorf("image: truncated: header says %d bytes, file has %d", n, len(b)-16)
	}
	return &asm.Program{
		Origin:  binary.LittleEndian.Uint32(b[4:]),
		Entry:   binary.LittleEndian.Uint32(b[8:]),
		Bytes:   b[16 : 16+n],
		Symbols: map[string]uint32{},
	}, nil
}
