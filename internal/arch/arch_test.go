package arch

import (
	"math"
	"testing"
)

func TestDefaultConfigMatchesTable2(t *testing.T) {
	c := Default()
	if err := c.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	// Unit counts from the lower half of Table 2.
	if c.Threads != 128 {
		t.Errorf("Threads = %d, want 128", c.Threads)
	}
	if c.Quads() != 32 {
		t.Errorf("Quads = %d, want 32 (one FPU + D-cache each)", c.Quads())
	}
	if c.ICaches() != 16 {
		t.Errorf("ICaches = %d, want 16", c.ICaches())
	}
	if c.MemBanks != 16 || c.MemBankBytes != 512<<10 {
		t.Errorf("memory = %d banks x %d B, want 16 x 512 KB", c.MemBanks, c.MemBankBytes)
	}
	if got := c.MemBytes(); got != 8<<20 {
		t.Errorf("MemBytes = %d, want 8 MB", got)
	}
	if c.DCacheBytes != 16<<10 || c.DCacheAssoc != 8 || c.DCacheLine != 64 {
		t.Errorf("D-cache = %d B %d-way %d B lines, want 16 KB 8-way 64 B", c.DCacheBytes, c.DCacheAssoc, c.DCacheLine)
	}
	if c.ICacheBytes != 32<<10 || c.ICacheAssoc != 8 || c.ICacheLine != 32 {
		t.Errorf("I-cache = %d B %d-way %d B lines, want 32 KB 8-way 32 B", c.ICacheBytes, c.ICacheAssoc, c.ICacheLine)
	}
	if c.WorkerThreads() != 126 {
		t.Errorf("WorkerThreads = %d, want 126 (two reserved for the system)", c.WorkerThreads())
	}

	// Instruction latencies from the upper half of Table 2.
	l := c.Latencies
	checks := []struct {
		name string
		got  int
		want int
	}{
		{"branch exec", l.BranchExec, 2},
		{"int mul latency", l.IntMulLatency, 5},
		{"int div exec", l.IntDivExec, 33},
		{"fp latency", l.FPLatency, 5},
		{"fp div exec", l.FPDivExec, 30},
		{"fp sqrt exec", l.FPSqrtExec, 56},
		{"fma latency", l.FMALatency, 9},
		{"local hit", l.LocalHitLatency, 6},
		{"local miss", l.LocalMissLatency, 24},
		{"remote hit", l.RemoteHitLatency, 17},
		{"remote miss", l.RemoteMissLatency, 36},
	}
	for _, ck := range checks {
		if ck.got != ck.want {
			t.Errorf("%s = %d, want %d", ck.name, ck.got, ck.want)
		}
	}
}

func TestDerivedPeaks(t *testing.T) {
	c := Default()
	// Section 2.1: 64 bytes every 12 cycles, 16 banks -> 42.7 GB/s.
	if got := c.PeakMemBandwidth() / 1e9; math.Abs(got-42.7) > 0.1 {
		t.Errorf("PeakMemBandwidth = %.2f GB/s, want ~42.7", got)
	}
	// Section 2.1: 8 bytes per cycle, 32 caches -> 128 GB/s.
	if got := c.PeakCacheBandwidth() / 1e9; math.Abs(got-128) > 0.1 {
		t.Errorf("PeakCacheBandwidth = %.2f GB/s, want 128", got)
	}
	// Section 2: 1 GFlops per FPU, 32 FPUs.
	if got := c.PeakFlops() / 1e9; math.Abs(got-32) > 0.1 {
		t.Errorf("PeakFlops = %.2f GFlops, want 32", got)
	}
}

func TestValidateRejectsBrokenConfigs(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero threads", func(c *Config) { c.Threads = 0 }},
		{"threads not multiple of quad", func(c *Config) { c.Threads = 126 }},
		{"quads not multiple of icache share", func(c *Config) { c.QuadsPerICache = 3 }},
		{"non power-of-two banks", func(c *Config) { c.MemBanks = 12 }},
		{"zero bank bytes", func(c *Config) { c.MemBankBytes = 0 }},
		{"memory exceeds 24-bit space", func(c *Config) { c.MemBankBytes = 2 << 20 }},
		{"non power-of-two dcache line", func(c *Config) { c.DCacheLine = 48 }},
		{"dcache not line multiple", func(c *Config) { c.DCacheBytes = 1000 }},
		{"assoc does not divide lines", func(c *Config) { c.DCacheAssoc = 7 }},
		{"icache geometry broken", func(c *Config) { c.ICacheBytes = 1000 }},
		{"burst smaller than line", func(c *Config) { c.MemBurstBytes = 32 }},
		{"reserved >= threads", func(c *Config) { c.ReservedThreads = 128 }},
		{"too many barriers", func(c *Config) { c.Barriers = 5 }},
		{"offchip not block multiple", func(c *Config) { c.OffChipBytes = 1500 }},
	}
	for _, m := range mutations {
		c := Default()
		m.mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a broken config", m.name)
		}
	}
}

func TestTopologyHelpers(t *testing.T) {
	c := Default()
	if q := c.QuadOf(0); q != 0 {
		t.Errorf("QuadOf(0) = %d, want 0", q)
	}
	if q := c.QuadOf(127); q != 31 {
		t.Errorf("QuadOf(127) = %d, want 31", q)
	}
	if ic := c.ICacheOf(7); ic != 0 {
		t.Errorf("ICacheOf(7) = %d, want 0 (quads 0,1 share I-cache 0)", ic)
	}
	if ic := c.ICacheOf(8); ic != 1 {
		t.Errorf("ICacheOf(8) = %d, want 1", ic)
	}
	// 64-byte interleave keeps one cache line in one bank and spreads
	// consecutive lines across banks.
	if b := c.BankOf(0x00003f); b != c.BankOf(0) {
		t.Errorf("one line split across banks: %d vs %d", b, c.BankOf(0))
	}
	seen := map[int]bool{}
	for line := uint32(0); line < 16; line++ {
		seen[c.BankOf(line*64)] = true
	}
	if len(seen) != 16 {
		t.Errorf("16 consecutive lines cover %d banks, want all 16", len(seen))
	}
	// The XOR-folded interleave spreads power-of-two strides: 16 KB
	// chunk starts (the blocked-STREAM per-thread layout) must not all
	// land on one bank.
	seen = map[int]bool{}
	for t := uint32(0); t < 16; t++ {
		seen[c.BankOf(t*16<<10)] = true
	}
	if len(seen) < 8 {
		t.Errorf("16 KB-strided addresses cover only %d banks", len(seen))
	}
}
