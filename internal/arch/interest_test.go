package arch

import (
	"testing"
	"testing/quick"
)

func TestGroupEncodeDecodeRoundTrip(t *testing.T) {
	for m := GroupOwn; m < numGroupModes; m++ {
		for sel := 0; sel < 32; sel++ {
			g := InterestGroup{Mode: m, Sel: uint8(sel)}
			got := DecodeGroup(EncodeGroup(g))
			if got != g {
				t.Fatalf("round trip %v/%d -> %v/%d", m, sel, got.Mode, got.Sel)
			}
		}
	}
}

func TestDecodeGroupTotal(t *testing.T) {
	// Every possible byte decodes to a defined mode.
	for b := 0; b < 256; b++ {
		g := DecodeGroup(uint8(b))
		if g.Mode >= numGroupModes {
			t.Fatalf("byte %#x decodes to invalid mode %d", b, g.Mode)
		}
	}
	// The reserved encoding 7 falls back to the chip-wide shared mode.
	if g := DecodeGroup(0xff); g.Mode != GroupAll {
		t.Errorf("reserved encoding decodes to %v, want all", g.Mode)
	}
}

func TestEAComposition(t *testing.T) {
	g := InterestGroup{Mode: GroupOne, Sel: 8}
	ea := EA(g, 0x123456)
	if Phys(ea) != 0x123456 {
		t.Errorf("Phys = %#x, want 0x123456", Phys(ea))
	}
	if GroupOf(ea) != g {
		t.Errorf("GroupOf = %+v, want %+v", GroupOf(ea), g)
	}
	// Physical part is masked to 24 bits.
	if p := Phys(EA(g, 0xff123456)); p != 0x123456 {
		t.Errorf("EA did not mask physical address: %#x", p)
	}
}

func TestGroupSizes(t *testing.T) {
	want := map[GroupMode]int{
		GroupOwn: 1, GroupOne: 1, GroupPair: 2, GroupFour: 4,
		GroupEight: 8, GroupSixteen: 16, GroupAll: 32,
	}
	for m, n := range want {
		if got := m.GroupSize(32); got != n {
			t.Errorf("GroupSize(%v) = %d, want %d", m, got, n)
		}
	}
	// Groups clamp on smaller chips.
	if got := GroupSixteen.GroupSize(8); got != 8 {
		t.Errorf("GroupSize(sixteen, 8 caches) = %d, want 8", got)
	}
}

// Table 1 semantics: each non-own mode partitions the 32 caches into
// aligned groups, and an address selects exactly one cache inside its group.
func TestCacheForSelectsWithinAlignedGroup(t *testing.T) {
	const nCaches, lineShift = 32, 6
	for m := GroupOne; m <= GroupAll; m++ {
		size := m.GroupSize(nCaches)
		for sel := 0; sel < nCaches; sel++ {
			base := sel &^ (size - 1)
			for line := uint32(0); line < 64; line++ {
				ea := EA(InterestGroup{Mode: m, Sel: uint8(sel)}, line<<lineShift)
				c := CacheFor(ea, 5, nCaches, lineShift)
				if c < base || c >= base+size {
					t.Fatalf("mode %v sel %d line %d: cache %d outside group [%d,%d)",
						m, sel, line, c, base, base+size)
				}
			}
		}
	}
}

func TestCacheForOwnMode(t *testing.T) {
	ea := EA(InterestGroup{Mode: GroupOwn}, 0x4000)
	for own := 0; own < 32; own++ {
		if c := CacheFor(ea, own, 32, 6); c != own {
			t.Fatalf("own-mode access from cache %d resolved to %d", own, c)
		}
	}
}

// Section 2.1: "references to the same effective address get mapped to the
// same cache" — the scramble must be a pure function of the address.
func TestCacheForDeterministic(t *testing.T) {
	f := func(phys uint32, sel uint8) bool {
		ea := EA(InterestGroup{Mode: GroupAll, Sel: sel}, phys)
		a := CacheFor(ea, 3, 32, 6)
		b := CacheFor(ea, 17, 32, 6) // different accessing thread
		return a == b && a >= 0 && a < 32
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Section 2.1: the scrambling function must utilise all caches of a group
// uniformly. Consecutive lines (the common streaming pattern) should spread
// within a small imbalance factor.
func TestCacheForUniformity(t *testing.T) {
	const nCaches, lineShift, lines = 32, 6, 32 * 1024
	counts := make([]int, nCaches)
	for line := 0; line < lines; line++ {
		ea := EA(InterestGroup{Mode: GroupAll}, uint32(line)<<lineShift)
		counts[CacheFor(ea, 0, nCaches, lineShift)]++
	}
	want := lines / nCaches
	for c, n := range counts {
		if n < want*8/10 || n > want*12/10 {
			t.Errorf("cache %d got %d of %d lines (want ~%d)", c, n, lines, want)
		}
	}
}

// With the chip-wide shared mode, a uniform access pattern should hit the
// accessing thread's own cache roughly 1 in 32 times (Section 2.1 notes
// this drawback explicitly).
func TestSharedModeLocalFraction(t *testing.T) {
	const nCaches, lineShift, lines = 32, 6, 64 * 1024
	local := 0
	for line := 0; line < lines; line++ {
		ea := EA(InterestGroup{Mode: GroupAll}, uint32(line)<<lineShift)
		if CacheFor(ea, 7, nCaches, lineShift) == 7 {
			local++
		}
	}
	frac := float64(local) / lines
	if frac < 0.02 || frac > 0.05 {
		t.Errorf("local fraction = %.4f, want ~1/32", frac)
	}
}

func TestGroupModeString(t *testing.T) {
	if GroupAll.String() != "all" || GroupOwn.String() != "own" {
		t.Error("GroupMode.String misnames the documented modes")
	}
	if s := GroupMode(9).String(); s == "" {
		t.Error("unknown mode should still stringify")
	}
}
