package arch

import "fmt"

// Interest groups (Table 1 of the paper).
//
// The upper 8 bits of a 32-bit effective address select which data cache(s)
// may hold the addressed line. The low 24 bits are the physical address.
// The same physical address can therefore be reached through different
// effective addresses that place it in different caches; software picks the
// placement, the hardware never enforces coherence between placements.
//
// The extracted paper text does not preserve the exact bit patterns of
// Table 1, so this implementation uses a clean encoding that realises the
// same seven semantic rows:
//
//	mode (bits 7..5)  selected caches                      Table 1 row
//	0                 accessing thread's own cache         "thread's own"
//	1                 exactly cache sel                    "exactly one"
//	2                 one of the aligned pair of sel       "one of a pair"
//	3                 one of the aligned four of sel       "one of four"
//	4                 one of the aligned eight of sel      "one of eight"
//	5                 one of the aligned sixteen of sel    "one of sixteen"
//	6                 one of all 32                        "one of all"
//
// sel is bits 4..0. For multi-member groups a deterministic scrambling
// function of the physical line address picks the member, so that all the
// caches in the group are uniformly utilised and references to the same
// effective address always map to the same cache (Section 2.1).

// GroupMode enumerates the seven placement modes of Table 1.
type GroupMode uint8

const (
	// GroupOwn caches the line in the accessing thread's own quad cache.
	// Different threads touching the same address replicate it; software
	// is responsible for keeping replicas consistent.
	GroupOwn GroupMode = iota
	// GroupOne places the line in exactly the selected cache.
	GroupOne
	// GroupPair places the line in one cache of an aligned pair.
	GroupPair
	// GroupFour places the line in one cache of an aligned group of 4.
	GroupFour
	// GroupEight places the line in one cache of an aligned group of 8.
	GroupEight
	// GroupSixteen places the line in one cache of an aligned group of 16.
	GroupSixteen
	// GroupAll places the line in one of all 32 caches: the chip-wide
	// 512 KB coherent shared cache used as the system-software default.
	GroupAll

	numGroupModes
)

// String returns the Table 1 row name for the mode.
func (m GroupMode) String() string {
	switch m {
	case GroupOwn:
		return "own"
	case GroupOne:
		return "one"
	case GroupPair:
		return "pair"
	case GroupFour:
		return "four"
	case GroupEight:
		return "eight"
	case GroupSixteen:
		return "sixteen"
	case GroupAll:
		return "all"
	}
	return fmt.Sprintf("GroupMode(%d)", uint8(m))
}

// GroupSize returns how many caches are in a group of this mode on a chip
// with nCaches data caches. GroupOwn counts as 1.
func (m GroupMode) GroupSize(nCaches int) int {
	switch m {
	case GroupOwn, GroupOne:
		return 1
	case GroupAll:
		return nCaches
	default:
		n := 1 << (m - GroupOne)
		if n > nCaches {
			n = nCaches
		}
		return n
	}
}

// InterestGroup is the decoded form of the 8-bit placement field.
type InterestGroup struct {
	Mode GroupMode
	// Sel identifies the group: for GroupOne it is the cache number; for
	// the partitioned modes any member of the aligned group; ignored for
	// GroupOwn and GroupAll.
	Sel uint8
}

// EncodeGroup builds the 8-bit field for an interest group.
func EncodeGroup(g InterestGroup) uint8 {
	return uint8(g.Mode)<<5 | g.Sel&0x1f
}

// DecodeGroup splits an 8-bit placement field into mode and selector.
// The unused encoding 7 decodes as GroupAll so that every byte value is
// well defined, mirroring hardware that must do something with every
// address presented to it.
func DecodeGroup(b uint8) InterestGroup {
	m := GroupMode(b >> 5)
	if m >= numGroupModes {
		m = GroupAll
	}
	return InterestGroup{Mode: m, Sel: b & 0x1f}
}

// EA builds a 32-bit effective address from an interest group and a
// physical address.
func EA(g InterestGroup, phys uint32) uint32 {
	return uint32(EncodeGroup(g))<<GroupShift | phys&PhysAddrMask
}

// GroupOf extracts the placement field of an effective address.
func GroupOf(ea uint32) InterestGroup { return DecodeGroup(uint8(ea >> GroupShift)) }

// Phys extracts the physical part of an effective address.
func Phys(ea uint32) uint32 { return ea & PhysAddrMask }

// scramble is the deterministic hash that spreads line addresses uniformly
// over the members of a multi-cache group. It depends only on the physical
// line address, so the same effective address always selects the same cache.
// The constant is the 32-bit golden-ratio multiplier; xor-folding the high
// halves decorrelates strided access patterns from the group index.
func scramble(line uint32) uint32 {
	h := line * 0x9e3779b9
	h ^= h >> 16
	h *= 0x85ebca6b
	h ^= h >> 13
	return h
}

// CacheFor resolves the data cache that holds effective address ea when
// accessed by a thread whose quad cache is ownCache, on a chip with nCaches
// data caches (a power of two). lineShift is log2 of the cache line size.
func CacheFor(ea uint32, ownCache, nCaches int, lineShift uint) int {
	g := GroupOf(ea)
	if g.Mode == GroupOwn {
		return ownCache
	}
	size := g.Mode.GroupSize(nCaches)
	base := (int(g.Sel) & (nCaches - 1)) &^ (size - 1)
	if size == 1 {
		return base
	}
	line := Phys(ea) >> lineShift
	return base + int(scramble(line))%size
}
