// Package arch defines the architectural parameters of the Cyclops chip:
// the configuration knobs of Table 2 of the HPCA 2002 paper, the memory
// map, and the interest-group address encoding of Table 1.
//
// Every other package derives sizes, latencies and peaks from a Config
// value so that design-space exploration (cmd/cyclops-explore) can vary a
// single parameter and rebuild the whole machine.
package arch

import (
	"fmt"
	"sync/atomic"
)

// Fixed structural constants of the evaluated design point. These are the
// quantities the paper treats as given by silicon area; the variable ones
// live in Config.
const (
	// WordSize is the architectural word size in bytes (32-bit design).
	WordSize = 4
	// NumGPR is the number of 32-bit general-purpose registers per thread.
	// Registers pair up (even, odd) for double-precision values.
	NumGPR = 64
	// PhysAddrBits is the width of a physical address. 24 bits give a
	// maximum addressable embedded memory of 16 MB.
	PhysAddrBits = 24
	// PhysAddrMask extracts the physical part of an effective address.
	PhysAddrMask = 1<<PhysAddrBits - 1
	// GroupShift is the bit position of the 8-bit interest-group field in
	// a 32-bit effective address.
	GroupShift = PhysAddrBits
	// ClockHz is the design-point clock: 500 MHz.
	ClockHz = 500_000_000
)

// Config carries every architectural parameter of a simulated chip.
// The zero value is not useful; start from Default().
type Config struct {
	// Threads is the number of thread units on the chip.
	Threads int
	// ThreadsPerQuad is the FPU/D-cache sharing degree (4 in the paper).
	ThreadsPerQuad int
	// QuadsPerICache is the number of quads sharing one I-cache (2).
	QuadsPerICache int

	// MemBanks is the number of embedded DRAM banks (16).
	MemBanks int
	// MemBankBytes is the capacity of one bank (512 KB).
	MemBankBytes int
	// MemBurstBytes is the size of one DRAM burst transfer (64 B:
	// two consecutive 32-byte blocks in burst mode).
	MemBurstBytes int
	// MemBurstCycles is the bank occupancy of one burst (12 cycles,
	// giving the 42 GB/s peak of Section 2.1).
	MemBurstCycles int
	// MemInterleaveShift selects the address bits that pick a bank:
	// bank = (addr >> shift) % MemBanks. 6 keeps a 64-byte cache line
	// inside one bank so line fills ride a single burst.
	MemInterleaveShift uint
	// StoreLagCycles bounds each bank's write-combining backlog: a
	// write-through store whose target bank is further behind than this
	// blocks the storing thread until the backlog drains (finite write
	// buffers give stores backpressure).
	StoreLagCycles int

	// DCacheBytes is the capacity of one data cache (16 KB).
	DCacheBytes int
	// DCacheLine is the data-cache line size (64 B).
	DCacheLine int
	// DCacheAssoc is the data-cache associativity (up to 8).
	DCacheAssoc int
	// DCachePortBytes is the per-cycle port width of one cache (8 B,
	// giving the 128 GB/s aggregate peak).
	DCachePortBytes int

	// ICacheBytes is the capacity of one instruction cache (32 KB).
	ICacheBytes int
	// ICacheLine is the instruction-cache line size (32 B per Table 2).
	ICacheLine int
	// ICacheAssoc is the instruction-cache associativity (8).
	ICacheAssoc int
	// PIBEntries is the per-thread prefetch instruction buffer size (16).
	PIBEntries int

	// Latencies is the instruction cost table (Table 2).
	Latencies LatencyTable

	// ReservedThreads is the number of thread units claimed by the
	// resident kernel (2: threads 0 and 1).
	ReservedThreads int

	// OffChipBytes is the optional external memory size (0 disables it).
	OffChipBytes int
	// OffChipBlock is the external transfer granularity (1 KB).
	OffChipBlock int
	// OffChipBlockCycles is the cost of moving one block, derived from
	// the 12 GB/s aggregate link budget of Section 2.2.
	OffChipBlockCycles int

	// Barriers is the number of independent hardware barriers provided
	// by the 8-bit wired-OR SPR (4: two bits per barrier).
	Barriers int
}

// LatencyTable holds per-class instruction costs following Table 2 of the
// paper. Execution is the number of cycles the functional unit stays busy;
// Latency is the additional cycles before the result becomes available to
// dependent instructions.
type LatencyTable struct {
	BranchExec int // branches: 2 execution, 0 latency

	IntMulExec    int
	IntMulLatency int
	IntDivExec    int // non-pipelined

	FPExec     int // add, multiply, convert
	FPLatency  int
	FPDivExec  int // double-precision divide, non-pipelined
	FPSqrtExec int // double-precision square root, non-pipelined
	FMAExec    int
	FMALatency int

	MemExec           int // all memory operations occupy the port 1 cycle
	LocalHitLatency   int
	LocalMissLatency  int
	RemoteHitLatency  int
	RemoteMissLatency int

	OtherExec int // every remaining operation: 1 cycle, no latency
}

// defaultOverride, when set, replaces the paper's design point as the
// process-wide default configuration. CLI latency sweeps set it once at
// startup (cyclops-bench -lat-*), before any machine is built; workloads
// that construct chips deep inside the harness then pick the swept
// latencies up through Default with no parameter threading.
var defaultOverride atomic.Pointer[Config]

// SetDefault installs cfg as the configuration Default returns, after
// validating it; nil restores the paper's Table 2 point. It returns the
// previous override (nil when the paper's point was active) so tests can
// defer-restore. Concurrent sweep points needing *different* latencies
// must instead pass explicit chips; this override is process-wide.
func SetDefault(cfg *Config) (*Config, error) {
	if cfg != nil {
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
		cc := *cfg
		cfg = &cc
	}
	return defaultOverride.Swap(cfg), nil
}

// Default returns the process default configuration: the design point
// evaluated in the paper — 128 threads, 32 quads, 16 banks, the Table 2
// latencies — unless SetDefault installed an override.
func Default() Config {
	if c := defaultOverride.Load(); c != nil {
		return *c
	}
	return Config{
		Threads:            128,
		ThreadsPerQuad:     4,
		QuadsPerICache:     2,
		MemBanks:           16,
		MemBankBytes:       512 << 10,
		MemBurstBytes:      64,
		MemBurstCycles:     12,
		MemInterleaveShift: 6,
		StoreLagCycles:     192,
		DCacheBytes:        16 << 10,
		DCacheLine:         64,
		DCacheAssoc:        8,
		DCachePortBytes:    8,
		ICacheBytes:        32 << 10,
		ICacheLine:         32,
		ICacheAssoc:        8,
		PIBEntries:         16,
		Latencies: LatencyTable{
			BranchExec:        2,
			IntMulExec:        1,
			IntMulLatency:     5,
			IntDivExec:        33,
			FPExec:            1,
			FPLatency:         5,
			FPDivExec:         30,
			FPSqrtExec:        56,
			FMAExec:           1,
			FMALatency:        9,
			MemExec:           1,
			LocalHitLatency:   6,
			LocalMissLatency:  24,
			RemoteHitLatency:  17,
			RemoteMissLatency: 36,
			OtherExec:         1,
		},
		ReservedThreads:    2,
		OffChipBytes:       0,
		OffChipBlock:       1 << 10,
		OffChipBlockCycles: 42, // 1 KB at ~12 GB/s on a 500 MHz clock
		Barriers:           4,
	}
}

// Validate reports the first structural inconsistency in the configuration.
func (c Config) Validate() error {
	switch {
	case c.Threads <= 0:
		return fmt.Errorf("arch: Threads must be positive, got %d", c.Threads)
	case c.ThreadsPerQuad <= 0 || c.Threads%c.ThreadsPerQuad != 0:
		return fmt.Errorf("arch: Threads (%d) must be a positive multiple of ThreadsPerQuad (%d)", c.Threads, c.ThreadsPerQuad)
	case c.QuadsPerICache <= 0 || c.Quads()%c.QuadsPerICache != 0:
		return fmt.Errorf("arch: Quads (%d) must be a positive multiple of QuadsPerICache (%d)", c.Quads(), c.QuadsPerICache)
	case c.MemBanks <= 0 || c.MemBanks&(c.MemBanks-1) != 0:
		return fmt.Errorf("arch: MemBanks must be a positive power of two, got %d", c.MemBanks)
	case c.MemBankBytes <= 0:
		return fmt.Errorf("arch: MemBankBytes must be positive, got %d", c.MemBankBytes)
	case c.MemBanks*c.MemBankBytes > 1<<PhysAddrBits:
		return fmt.Errorf("arch: embedded memory %d B exceeds the %d-bit physical address space", c.MemBanks*c.MemBankBytes, PhysAddrBits)
	case c.DCacheLine <= 0 || c.DCacheLine&(c.DCacheLine-1) != 0:
		return fmt.Errorf("arch: DCacheLine must be a positive power of two, got %d", c.DCacheLine)
	case c.DCacheBytes%c.DCacheLine != 0:
		return fmt.Errorf("arch: DCacheBytes (%d) must be a multiple of DCacheLine (%d)", c.DCacheBytes, c.DCacheLine)
	case c.DCacheAssoc <= 0 || c.DCacheBytes/c.DCacheLine%c.DCacheAssoc != 0:
		return fmt.Errorf("arch: DCacheAssoc %d does not divide the %d lines of a cache", c.DCacheAssoc, c.DCacheBytes/c.DCacheLine)
	case c.ICacheLine <= 0 || c.ICacheLine&(c.ICacheLine-1) != 0:
		return fmt.Errorf("arch: ICacheLine must be a positive power of two, got %d", c.ICacheLine)
	case c.ICacheBytes%(c.ICacheLine*c.ICacheAssoc) != 0:
		return fmt.Errorf("arch: ICache geometry %d/%d/%d does not tile", c.ICacheBytes, c.ICacheLine, c.ICacheAssoc)
	case c.MemBurstBytes < c.DCacheLine:
		return fmt.Errorf("arch: MemBurstBytes (%d) must cover a cache line (%d)", c.MemBurstBytes, c.DCacheLine)
	case c.ReservedThreads < 0 || c.ReservedThreads >= c.Threads:
		return fmt.Errorf("arch: ReservedThreads %d out of range for %d threads", c.ReservedThreads, c.Threads)
	case c.Barriers <= 0 || c.Barriers > 4:
		return fmt.Errorf("arch: Barriers must be in 1..4, got %d", c.Barriers)
	case c.OffChipBytes < 0 || (c.OffChipBytes > 0 && c.OffChipBytes%c.OffChipBlock != 0):
		return fmt.Errorf("arch: OffChipBytes (%d) must be a multiple of OffChipBlock (%d)", c.OffChipBytes, c.OffChipBlock)
	}
	return nil
}

// Quads returns the number of quads (thread groups sharing FPU + D-cache).
func (c Config) Quads() int { return c.Threads / c.ThreadsPerQuad }

// ICaches returns the number of instruction caches.
func (c Config) ICaches() int { return c.Quads() / c.QuadsPerICache }

// MemBytes returns the total embedded memory size.
func (c Config) MemBytes() int { return c.MemBanks * c.MemBankBytes }

// WorkerThreads returns the number of threads available to applications
// after the kernel reserves its own.
func (c Config) WorkerThreads() int { return c.Threads - c.ReservedThreads }

// QuadOf returns the quad that thread unit tid belongs to.
func (c Config) QuadOf(tid int) int { return tid / c.ThreadsPerQuad }

// ICacheOf returns the instruction cache serving thread unit tid.
func (c Config) ICacheOf(tid int) int { return c.QuadOf(tid) / c.QuadsPerICache }

// BankOf returns the DRAM bank holding physical address addr. The
// interleave XOR-folds upper line-address bits into the bank index so
// power-of-two strides (per-thread chunks, matrix columns) spread across
// banks instead of marching through them in lockstep; consecutive lines
// still hit consecutive banks.
func (c Config) BankOf(addr uint32) int {
	line := addr >> c.MemInterleaveShift
	return int(line^line>>4^line>>8) & (c.MemBanks - 1)
}

// PeakMemBandwidth returns the peak embedded-memory bandwidth in bytes per
// second (42.7 GB/s at the default design point).
func (c Config) PeakMemBandwidth() float64 {
	return float64(c.MemBanks) * float64(c.MemBurstBytes) / float64(c.MemBurstCycles) * ClockHz
}

// PeakCacheBandwidth returns the peak aggregate cache bandwidth in bytes
// per second (128 GB/s at the default design point).
func (c Config) PeakCacheBandwidth() float64 {
	return float64(c.Quads()) * float64(c.DCachePortBytes) * ClockHz
}

// PeakFlops returns the peak floating-point rate in FLOP/s: one FMA
// (2 FLOPs) per FPU per cycle, 32 GFlops at the default design point.
func (c Config) PeakFlops() float64 {
	return float64(c.Quads()) * 2 * ClockHz
}
