package serve_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"cyclops/internal/obs"
	"cyclops/internal/serve"
)

// debugRuns decodes GET /debug/runs.
func debugRuns(t *testing.T, base string) []serve.RunRecord {
	t.Helper()
	resp, err := http.Get(base + "/debug/runs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/runs: HTTP %d", resp.StatusCode)
	}
	var body struct {
		Runs []serve.RunRecord `json:"runs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	return body.Runs
}

// A request carrying a well-formed traceparent must join that trace:
// the response header and body echo the caller's trace ID (with a fresh
// server-side span), and the run's /debug/runs record carries it too.
func TestTraceparentRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{})

	const callerTrace = "4bf92f3577b34da6a3ce929d0e0e4736"
	const callerSpan = "00f067aa0ba902b7"
	body, err := json.Marshal(streamSpec())
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", ts.URL+"/v1/run", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("traceparent", "00-"+callerTrace+"-"+callerSpan+"-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	echoed := resp.Header.Get("traceparent")
	rb := decodeRun(t, resp)

	if rb.Trace != callerTrace {
		t.Errorf("response trace = %q; want caller's %q", rb.Trace, callerTrace)
	}
	trace, span, err := obs.ParseTraceparent(echoed)
	if err != nil {
		t.Fatalf("echoed traceparent %q: %v", echoed, err)
	}
	if trace.String() != callerTrace {
		t.Errorf("echoed trace = %s; want %s", trace, callerTrace)
	}
	if span.String() == callerSpan || span.IsZero() {
		t.Errorf("echoed span = %s; want a fresh server-side span", span)
	}
	runs := debugRuns(t, ts.URL)
	if len(runs) != 1 || runs[0].Trace != callerTrace {
		t.Fatalf("debug runs = %+v; want one record with trace %s", runs, callerTrace)
	}

	// A malformed traceparent is ignored, not an error: the run succeeds
	// under a fresh server-rooted trace.
	req, err = http.NewRequest("POST", ts.URL+"/v1/run", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("traceparent", "00-zzzz-bad-01")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	rb = decodeRun(t, resp)
	if rb.Trace == callerTrace || rb.Trace == "" {
		t.Errorf("malformed traceparent produced trace %q; want a fresh one", rb.Trace)
	}
}

// The /debug/runs ring keeps only the newest RecentRuns records, newest
// first.
func TestDebugRunsRingBounds(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{RecentRuns: 4})

	for i := 0; i < 7; i++ {
		resp := postSpec(t, ts.URL, map[string]any{"workload": "nonesuch"}, fmt.Sprintf("c%d", i))
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("request %d: HTTP %d; want 400", i, resp.StatusCode)
		}
	}
	runs := debugRuns(t, ts.URL)
	if len(runs) != 4 {
		t.Fatalf("ring holds %d records; want 4", len(runs))
	}
	for i, want := range []string{"c6", "c5", "c4", "c3"} {
		if runs[i].Client != want {
			t.Errorf("runs[%d].Client = %q; want %q (newest first)", i, runs[i].Client, want)
		}
		if runs[i].Status != http.StatusBadRequest {
			t.Errorf("runs[%d].Status = %d; want 400", i, runs[i].Status)
		}
	}
}

// With a pinned tracer (fixed seed, fixed clock) the access log is
// byte-deterministic: trace IDs count up from the seed and every stamp
// and duration is exact.
func TestAccessLogGolden(t *testing.T) {
	tracer := obs.NewTracerSeeded(obs.DefaultTraceCapacity, 0x42)
	fixed := time.Date(2026, 1, 2, 3, 4, 5, 6, time.UTC)
	tracer.SetClock(func() time.Time { return fixed })

	var logBuf bytes.Buffer
	_, ts := newTestServer(t, serve.Config{AccessLog: &logBuf, Tracer: tracer})

	cold := decodeRun(t, postSpec(t, ts.URL, streamSpec(), "golden"))
	warm := decodeRun(t, postSpec(t, ts.URL, streamSpec(), "golden"))
	if cold.Cached || !warm.Cached {
		t.Fatalf("cached flags = %t/%t; want false/true", cold.Cached, warm.Cached)
	}

	lines := strings.Split(strings.TrimSuffix(logBuf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("access log holds %d lines; want 2:\n%s", len(lines), logBuf.String())
	}
	want := []string{
		`{"time":"2026-01-02T03:04:05.000000006Z","trace":"00000000000000420000000000000001","client":"golden","key":"` + cold.Key + `","workload":"stream","status":200,"cached":false,"coalesced":false,"queue_depth":0,"queue_seconds":0,"run_seconds":0,"total_seconds":0}`,
		`{"time":"2026-01-02T03:04:05.000000006Z","trace":"00000000000000420000000000000002","client":"golden","key":"` + warm.Key + `","workload":"stream","status":200,"cached":true,"coalesced":false,"queue_depth":0,"queue_seconds":0,"run_seconds":0,"total_seconds":0}`,
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Errorf("access log line %d:\n got %s\nwant %s", i+1, lines[i], want[i])
		}
	}
}

// The span tree for a cold-then-warm pair must show the full stage
// taxonomy parented under the request traces.
func TestRequestSpanTaxonomy(t *testing.T) {
	srv, ts := newTestServer(t, serve.Config{})
	cold := decodeRun(t, postSpec(t, ts.URL, streamSpec(), ""))
	warm := decodeRun(t, postSpec(t, ts.URL, streamSpec(), ""))

	byTrace := map[string]map[string]int{}
	for _, sp := range srv.Tracer().Snapshot() {
		m := byTrace[sp.Trace.String()]
		if m == nil {
			m = map[string]int{}
			byTrace[sp.Trace.String()] = m
		}
		m[sp.Name]++
	}
	coldSpans := byTrace[cold.Trace]
	for _, name := range []string{"request", "queue_wait", "canonicalize", "cache_lookup", "execute", "encode", "store"} {
		if coldSpans[name] == 0 {
			t.Errorf("cold trace is missing a %q span (got %v)", name, coldSpans)
		}
	}
	warmSpans := byTrace[warm.Trace]
	if warmSpans["request"] == 0 || warmSpans["cache_lookup"] == 0 {
		t.Errorf("warm trace = %v; want request + cache_lookup spans", warmSpans)
	}
	if warmSpans["execute"] != 0 || warmSpans["queue_wait"] != 0 {
		t.Errorf("warm trace = %v; hit must not execute or queue", warmSpans)
	}

	// Every non-request span belongs to a request-rooted trace and has a
	// parent; request spans are the roots.
	roots := map[string]bool{}
	for _, sp := range srv.Tracer().Snapshot() {
		if sp.Name == "request" {
			if !sp.Parent.IsZero() {
				t.Errorf("request span has parent %s; want root", sp.Parent)
			}
			roots[sp.Trace.String()] = true
		}
	}
	for _, sp := range srv.Tracer().Snapshot() {
		if sp.Name == "request" {
			continue
		}
		if !roots[sp.Trace.String()] {
			t.Errorf("span %q in trace %s has no request root", sp.Name, sp.Trace)
		}
		if sp.Parent.IsZero() {
			t.Errorf("span %q has no parent", sp.Name)
		}
	}
}
