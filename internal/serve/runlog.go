package serve

import (
	"encoding/json"
	"io"
	"sync"
)

// RunRecord is the operational summary of one completed POST /v1/run
// request: what ran, how it was served, and where its wall time went.
// It is both the access-log line (one JSON object per line) and the
// /debug/runs entry; field order is the struct order, so logs are
// byte-deterministic for a given record.
type RunRecord struct {
	// Time is the request arrival stamp (RFC 3339, UTC, nanoseconds).
	Time string `json:"time"`
	// Trace is the request's trace ID — paste it into a span dump or a
	// Chrome trace to find the request's full tree.
	Trace string `json:"trace"`
	// Client is the fairness-queue identity the request ran under.
	Client string `json:"client"`
	// Key is the canonical spec key ("" when the spec never parsed).
	Key string `json:"key,omitempty"`
	// Workload names what ran ("" when the spec never parsed).
	Workload string `json:"workload,omitempty"`
	// Status is the HTTP status served.
	Status int `json:"status"`
	// Cached: the cache served the bytes. Coalesced: the request joined
	// an identical in-flight execution.
	Cached    bool `json:"cached"`
	Coalesced bool `json:"coalesced"`
	// QueueDepth is the number of requests already pending when this
	// one was submitted (0 for cache hits, which never queue).
	QueueDepth int `json:"queue_depth"`
	// QueueSeconds and RunSeconds split the served time into
	// waiting-for-a-worker and running-the-job; TotalSeconds is the
	// whole handler, decode to reply.
	QueueSeconds float64 `json:"queue_seconds"`
	RunSeconds   float64 `json:"run_seconds"`
	TotalSeconds float64 `json:"total_seconds"`
	// Error carries the served error message for non-200 statuses.
	Error string `json:"error,omitempty"`
}

// runLog is a bounded ring of recent RunRecords backing /debug/runs.
type runLog struct {
	mu    sync.Mutex
	buf   []RunRecord
	next  int // slot the next record lands in
	total int // records ever added
}

func newRunLog(capacity int) *runLog {
	return &runLog{buf: make([]RunRecord, capacity)}
}

func (l *runLog) add(rec RunRecord) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.buf[l.next] = rec
	l.next = (l.next + 1) % len(l.buf)
	l.total++
}

// snapshot returns the retained records, newest first (the order an
// operator wants when tailing recent activity).
func (l *runLog) snapshot() []RunRecord {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.total
	if n > len(l.buf) {
		n = len(l.buf)
	}
	out := make([]RunRecord, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, l.buf[(l.next-i+len(l.buf))%len(l.buf)])
	}
	return out
}

// accessLog serialises RunRecords onto one writer, one JSON line each.
type accessLog struct {
	mu sync.Mutex
	w  io.Writer
}

func (a *accessLog) write(rec RunRecord) {
	if a == nil || a.w == nil {
		return
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return
	}
	line = append(line, '\n')
	a.mu.Lock()
	defer a.mu.Unlock()
	_, _ = a.w.Write(line)
}
