package serve_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"cyclops/internal/job"
	"cyclops/internal/serve"
)

// runBody is the decoded POST /v1/run response.
type runBody struct {
	Key    string          `json:"key"`
	Trace  string          `json:"trace"`
	Cached bool            `json:"cached"`
	Result json.RawMessage `json:"result"`
}

func newTestServer(t *testing.T, cfg serve.Config) (*serve.Server, *httptest.Server) {
	t.Helper()
	srv, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func postSpec(t *testing.T, url string, spec any, client string) *http.Response {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", url+"/v1/run", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if client != "" {
		req.Header.Set("X-Cyclops-Client", client)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeRun(t *testing.T, resp *http.Response) runBody {
	t.Helper()
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d: %s", resp.StatusCode, data)
	}
	var rb runBody
	if err := json.Unmarshal(data, &rb); err != nil {
		t.Fatal(err)
	}
	return rb
}

func streamSpec() map[string]any {
	return map[string]any{
		"workload": "stream",
		"args":     map[string]any{"kernel": "copy", "threads": 2, "n": 128, "reps": 2},
	}
}

func TestRunThenCacheHitThenResultEndpoint(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{})

	cold := decodeRun(t, postSpec(t, ts.URL, streamSpec(), ""))
	if cold.Cached {
		t.Fatal("cold run reported cached")
	}
	warm := decodeRun(t, postSpec(t, ts.URL, streamSpec(), ""))
	if !warm.Cached {
		t.Fatal("second identical run missed the cache")
	}
	if warm.Key != cold.Key || !bytes.Equal(warm.Result, cold.Result) {
		t.Fatalf("warm reply differs from cold:\n%s\nvs\n%s", warm.Result, cold.Result)
	}

	// The result endpoint serves the canonical bytes under the key.
	resp, err := http.Get(ts.URL + "/v1/result/" + cold.Key)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET result: HTTP %d: %s", resp.StatusCode, data)
	}
	if !bytes.Equal(data, cold.Result) {
		t.Fatalf("result endpoint bytes differ from run reply:\n%s\nvs\n%s", data, cold.Result)
	}

	// Unknown key: 404. Malformed key: 400.
	for path, want := range map[string]int{
		"/v1/result/" + strings.Repeat("0", 64): http.StatusNotFound,
		"/v1/result/nothex":                     http.StatusBadRequest,
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("GET %s: HTTP %d; want %d", path, resp.StatusCode, want)
		}
	}
}

func TestBadSpecsAre400(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{})
	bad := []any{
		map[string]any{"workload": "nonesuch"},
		map[string]any{"workload": "stream", "args": map[string]any{"kernel": "warp"}},
		map[string]any{"workload": "stream", "unknown_field": true},
	}
	for i, spec := range bad {
		resp := postSpec(t, ts.URL, spec, "")
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("bad spec %d: HTTP %d; want 400", i, resp.StatusCode)
		}
	}
}

func TestNewRefusesNonCacheDir(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("keep me"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := serve.New(serve.Config{CacheDir: dir}); err == nil {
		t.Fatal("New accepted a non-empty directory without a cache manifest")
	}
}

// Flooding a one-worker, one-slot daemon with a slow workload must
// produce 429 + Retry-After, and the queued request must still finish
// correctly.
func TestQueueFullReturns429(t *testing.T) {
	job.Register(job.Workload{
		Name: "test-serve-slow",
		Canon: func(args json.RawMessage) (json.RawMessage, error) {
			// Distinct specs (no coalescing): echo the args through.
			var a struct {
				ID    int  `json:"id"`
				Block bool `json:"block,omitempty"`
			}
			if err := json.Unmarshal(args, &a); err != nil {
				return nil, err
			}
			return json.Marshal(a)
		},
		Run: func(ctx *job.RunContext) (*job.Result, error) {
			var a struct {
				ID    int  `json:"id"`
				Block bool `json:"block,omitempty"`
			}
			if err := json.Unmarshal(ctx.Spec.Args, &a); err != nil {
				return nil, err
			}
			if a.Block {
				<-serveSlowRelease
			}
			return &job.Result{Cycles: uint64(a.ID)}, nil
		},
		EngineNeutral: true,
	})
	_, ts := newTestServer(t, serve.Config{Workers: 1, QueueLimit: 1})

	spec := func(id int, block bool) map[string]any {
		args := map[string]any{"id": id}
		if block {
			args["block"] = true
		}
		return map[string]any{"workload": "test-serve-slow", "args": args}
	}

	// Request 1 occupies the worker; request 2 fills the queue slot.
	type reply struct {
		rb   runBody
		code int
	}
	replies := make(chan reply, 2)
	send := func(id int, block bool) {
		resp := postSpec(t, ts.URL, spec(id, block), "flooder")
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			replies <- reply{code: resp.StatusCode}
			return
		}
		replies <- reply{rb: decodeRun(t, resp), code: http.StatusOK}
	}
	go send(1, true)
	waitPending(t, ts.URL, "sched_busy", 1)
	go send(2, false)
	waitPending(t, ts.URL, "sched_pending", 1)

	// Request 3 finds the queue full.
	resp := postSpec(t, ts.URL, spec(3, false), "flooder")
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third request: HTTP %d (%s); want 429", resp.StatusCode, body)
	}
	retry, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || retry < 1 {
		t.Fatalf("Retry-After = %q; want a positive integer", resp.Header.Get("Retry-After"))
	}

	close(serveSlowRelease)
	for i := 0; i < 2; i++ {
		r := <-replies
		if r.code != http.StatusOK {
			t.Fatalf("queued request failed: HTTP %d", r.code)
		}
	}
}

// serveSlowRelease unblocks the test-serve-slow workload's blocking run.
var serveSlowRelease = make(chan struct{})

// waitPending polls /metrics until the named gauge reaches want.
func waitPending(t *testing.T, base, name string, want int) {
	t.Helper()
	for i := 0; i < 5000; i++ {
		if metricValue(t, base, name) == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("%s never reached %d (now %d)", name, want, metricValue(t, base, name))
}

func metricValue(t *testing.T, base, name string) int {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		f := strings.Fields(line)
		if len(f) == 2 && f[0] == name {
			v, err := strconv.Atoi(f[1])
			if err != nil {
				t.Fatalf("metric %s: %v", name, err)
			}
			return v
		}
	}
	return -1
}

func TestMetricsAndHealthAndWorkloads(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{})
	decodeRun(t, postSpec(t, ts.URL, streamSpec(), ""))

	if v := metricValue(t, ts.URL, "job_executions"); v != 1 {
		t.Errorf("job_executions = %d; want 1", v)
	}
	if v := metricValue(t, ts.URL, "serve_requests"); v < 1 {
		t.Errorf("serve_requests = %d; want >= 1", v)
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz struct {
		Status        string  `json:"status"`
		UptimeSeconds float64 `json:"uptime_seconds"`
		Semantics     string  `json:"semantics"`
		Queue         struct {
			Pending int `json:"pending"`
			Busy    int `json:"busy"`
			Workers int `json:"workers"`
			Limit   int `json:"limit"`
		} `json:"queue"`
	}
	err = json.NewDecoder(resp.Body).Decode(&hz)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if hz.Status != "ok" || hz.Semantics != job.SemanticsVersion {
		t.Errorf("healthz = %+v; want status ok, semantics %q", hz, job.SemanticsVersion)
	}
	if hz.UptimeSeconds < 0 {
		t.Errorf("healthz uptime = %v; want >= 0", hz.UptimeSeconds)
	}
	if hz.Queue.Workers != serve.DefaultWorkers || hz.Queue.Limit != serve.DefaultQueueLimit {
		t.Errorf("healthz queue = %+v; want workers %d, limit %d", hz.Queue, serve.DefaultWorkers, serve.DefaultQueueLimit)
	}

	resp, err = http.Get(ts.URL + "/v1/workloads")
	if err != nil {
		t.Fatal(err)
	}
	var wl struct {
		Workloads []string `json:"workloads"`
		Semantics string   `json:"semantics"`
	}
	err = json.NewDecoder(resp.Body).Decode(&wl)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if wl.Semantics != job.SemanticsVersion {
		t.Errorf("semantics = %q; want %q", wl.Semantics, job.SemanticsVersion)
	}
	found := false
	for _, name := range wl.Workloads {
		if name == "stream" {
			found = true
		}
	}
	if !found {
		t.Errorf("workloads list %v is missing stream", wl.Workloads)
	}
}
