// Package serve implements the cyclops-serve daemon: simulation as a
// service over HTTP/JSON, fronted by the content-addressed result
// cache. A request is a job.Spec; cached results are answered
// immediately, identical in-flight runs coalesce to one execution, and
// fresh work goes through a bounded queue with per-client fairness.
// Bytes served for a key are always the canonical result encoding, so a
// warm daemon, a cold daemon and a local harness sweep all ship
// identical results for identical specs.
//
// Endpoints:
//
//	POST /v1/run           run a spec (or fetch its cached result)
//	GET  /v1/result/{key}  fetch a result by spec key, cache-only
//	GET  /v1/workloads     list registered workloads + semantics version
//	GET  /healthz          liveness
//	GET  /metrics          counter export (sorted "name value" lines)
package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"

	"cyclops/internal/job"
	_ "cyclops/internal/job/workloads" // register the named workloads
	"cyclops/internal/obs"
	"cyclops/internal/resultcache"
)

// Config sizes a Server.
type Config struct {
	// CacheDir is the on-disk cache directory; empty serves from memory
	// only. A non-empty directory that is not a cache (no manifest) is
	// refused at startup.
	CacheDir string
	// CacheMemBytes bounds the in-memory tier (0 = the cache default).
	CacheMemBytes int
	// Workers bounds concurrent simulator executions (0 = 4).
	Workers int
	// QueueLimit bounds queued-but-not-running requests across all
	// clients; past it, submissions get 429 + Retry-After (0 = 64).
	QueueLimit int
}

// DefaultWorkers and DefaultQueueLimit are the Config zero-value sizes.
const (
	DefaultWorkers    = 4
	DefaultQueueLimit = 64
)

// Server is the daemon state: one Runner (cache + singleflight) behind
// one fairness scheduler.
type Server struct {
	runner  *job.Runner
	sched   *scheduler
	metrics *obs.Metrics
	mux     *http.ServeMux

	requests    *obs.Counter
	badRequests *obs.Counter
	queueFull   *obs.Counter
	runErrors   *obs.Counter
}

// New builds a Server. Cache-directory validation happens here, so a
// refused directory (satellite of the cache-manifest gate) fails
// startup rather than the first request.
func New(cfg Config) (*Server, error) {
	runner := job.NewRunner()
	if cfg.CacheDir != "" {
		c, err := resultcache.Open(cfg.CacheDir, job.SemanticsVersion, cfg.CacheMemBytes)
		if err != nil {
			return nil, err
		}
		runner.Cache = c
	} else {
		runner.Cache = resultcache.OpenMemory(cfg.CacheMemBytes)
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = DefaultWorkers
	}
	limit := cfg.QueueLimit
	if limit <= 0 {
		limit = DefaultQueueLimit
	}
	s := &Server{
		runner:  runner,
		sched:   newScheduler(runner, workers, limit),
		metrics: obs.NewMetrics(),
		mux:     http.NewServeMux(),
	}
	s.requests = s.metrics.Counter("serve_requests")
	s.badRequests = s.metrics.Counter("serve_bad_requests")
	s.queueFull = s.metrics.Counter("serve_queue_full")
	s.runErrors = s.metrics.Counter("serve_run_errors")
	stat := func(read func(job.Stats) uint64) func() uint64 {
		return func() uint64 { return read(runner.Stats()) }
	}
	s.metrics.Func("job_hits", stat(func(st job.Stats) uint64 { return st.Hits }))
	s.metrics.Func("job_misses", stat(func(st job.Stats) uint64 { return st.Misses }))
	s.metrics.Func("job_coalesced", stat(func(st job.Stats) uint64 { return st.Coalesced }))
	s.metrics.Func("job_executions", stat(func(st job.Stats) uint64 { return st.Executions }))
	s.metrics.Func("job_errors", stat(func(st job.Stats) uint64 { return st.Errors }))
	cstat := func(read func(resultcache.Counters) uint64) func() uint64 {
		return func() uint64 { return read(runner.Cache.Stats()) }
	}
	s.metrics.Func("cache_mem_hits", cstat(func(c resultcache.Counters) uint64 { return c.MemHits }))
	s.metrics.Func("cache_disk_hits", cstat(func(c resultcache.Counters) uint64 { return c.DiskHits }))
	s.metrics.Func("cache_misses", cstat(func(c resultcache.Counters) uint64 { return c.Misses }))
	s.metrics.Func("cache_corrupt", cstat(func(c resultcache.Counters) uint64 { return c.Corrupt }))
	s.metrics.Func("cache_evictions", cstat(func(c resultcache.Counters) uint64 { return c.Evictions }))
	s.metrics.Func("cache_puts", cstat(func(c resultcache.Counters) uint64 { return c.Puts }))
	s.metrics.Func("sched_pending", func() uint64 { p, _ := s.sched.load(); return uint64(p) })
	s.metrics.Func("sched_busy", func() uint64 { _, b := s.sched.load(); return uint64(b) })
	s.metrics.Func("job_inflight", func() uint64 { return uint64(runner.Inflight()) })

	s.mux.HandleFunc("POST /v1/run", s.handleRun)
	s.mux.HandleFunc("GET /v1/result/{key}", s.handleResult)
	s.mux.HandleFunc("GET /v1/workloads", s.handleWorkloads)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s, nil
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Runner exposes the underlying runner (tests and in-process CI lanes).
func (s *Server) Runner() *job.Runner { return s.runner }

// runResponse is the POST /v1/run body: the spec's content key, whether
// the cache served it, and the canonical result encoding verbatim.
type runResponse struct {
	Key    string          `json:"key"`
	Cached bool            `json:"cached"`
	Result json.RawMessage `json:"result"`
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var spec job.Spec
	if err := dec.Decode(&spec); err != nil {
		s.badRequests.Inc()
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding spec: %w", err))
		return
	}
	canon, err := spec.Canonicalize()
	if err != nil {
		s.badRequests.Inc()
		httpError(w, http.StatusBadRequest, err)
		return
	}
	key, err := canon.Key()
	if err != nil {
		s.badRequests.Inc()
		httpError(w, http.StatusBadRequest, err)
		return
	}

	// Hits bypass the queue: they cost a map lookup, not a worker.
	if data, ok := s.runner.Cached(canon); ok {
		writeRun(w, key, true, data)
		return
	}
	t := &task{spec: canon, done: make(chan struct{})}
	ok, retry := s.sched.submit(clientID(r), t)
	if !ok {
		s.queueFull.Inc()
		w.Header().Set("Retry-After", strconv.Itoa(retry))
		httpError(w, http.StatusTooManyRequests, fmt.Errorf("queue full, retry in ~%ds", retry))
		return
	}
	<-t.done
	if t.err != nil {
		// Spec errors were caught above; what remains is a failed run
		// (e.g. a deterministic guest trap) — the request is at fault,
		// not the server.
		s.runErrors.Inc()
		httpError(w, http.StatusUnprocessableEntity, t.err)
		return
	}
	writeRun(w, key, t.cached, t.data)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	key, err := resultcache.ParseKey(r.PathValue("key"))
	if err != nil {
		s.badRequests.Inc()
		httpError(w, http.StatusBadRequest, err)
		return
	}
	data, ok := s.runner.Cache.Get(key)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("no cached result for %s", key))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(data)
}

func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	writeJSON(w, map[string]any{
		"workloads": job.WorkloadNames(),
		"semantics": job.SemanticsVersion,
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	_, _ = w.Write([]byte("ok\n"))
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_ = s.metrics.WriteText(w)
}

// clientID names the fairness queue a request belongs to: the
// X-Cyclops-Client header when set (cooperating tools labelling
// themselves), else the remote host.
func clientID(r *http.Request) string {
	if c := r.Header.Get("X-Cyclops-Client"); c != "" {
		return c
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

func writeRun(w http.ResponseWriter, key resultcache.Key, cached bool, data []byte) {
	writeJSON(w, runResponse{Key: key.String(), Cached: cached, Result: data})
}

func writeJSON(w http.ResponseWriter, v any) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(buf.Bytes())
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
