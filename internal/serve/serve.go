// Package serve implements the cyclops-serve daemon: simulation as a
// service over HTTP/JSON, fronted by the content-addressed result
// cache. A request is a job.Spec; cached results are answered
// immediately, identical in-flight runs coalesce to one execution, and
// fresh work goes through a bounded queue with per-client fairness.
// Bytes served for a key are always the canonical result encoding, so a
// warm daemon, a cold daemon and a local harness sweep all ship
// identical results for identical specs.
//
// Every request is traced end to end: the handler roots a span tree
// (joining the client's W3C traceparent when one is sent, and echoing
// the trace back in the response header and body), the scheduler
// records the queue wait, and the job and cache layers hang their
// stage spans — cache lookup, coalesce, execute, encode, store —
// underneath. Per-stage and per-workload latency histograms land on
// /metrics, a JSON access log records one line per run, and a bounded
// ring of recent runs serves /debug/runs.
//
// Endpoints:
//
//	POST /v1/run           run a spec (or fetch its cached result)
//	GET  /v1/result/{key}  fetch a result by spec key, cache-only
//	GET  /v1/workloads     list registered workloads + semantics version
//	GET  /healthz          liveness: uptime, semantics, queue depth
//	GET  /metrics          counter + histogram export (sorted text lines)
//	GET  /debug/runs       recent run records, newest first (JSON)
package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"strconv"
	"time"

	"cyclops/internal/job"
	_ "cyclops/internal/job/workloads" // register the named workloads
	"cyclops/internal/obs"
	"cyclops/internal/resultcache"
)

// Config sizes a Server.
type Config struct {
	// CacheDir is the on-disk cache directory; empty serves from memory
	// only. A non-empty directory that is not a cache (no manifest) is
	// refused at startup.
	CacheDir string
	// CacheMemBytes bounds the in-memory tier (0 = the cache default).
	CacheMemBytes int
	// Workers bounds concurrent simulator executions (0 = 4).
	Workers int
	// QueueLimit bounds queued-but-not-running requests across all
	// clients; past it, submissions get 429 + Retry-After (0 = 64).
	QueueLimit int
	// AccessLog, when non-nil, receives one JSON RunRecord line per
	// completed POST /v1/run request.
	AccessLog io.Writer
	// RecentRuns bounds the /debug/runs ring (0 = DefaultRecentRuns).
	RecentRuns int
	// Tracer overrides the server's span recorder — tests pin its seed
	// and clock for golden traces; nil builds a fresh default tracer.
	// The server's own clock (uptime, access-log stamps) is the
	// tracer's clock, so pinning one pins both.
	Tracer *obs.Tracer
}

// DefaultWorkers and DefaultQueueLimit are the Config zero-value sizes;
// DefaultRecentRuns bounds the /debug/runs ring.
const (
	DefaultWorkers    = 4
	DefaultQueueLimit = 64
	DefaultRecentRuns = 256
)

// Server is the daemon state: one Runner (cache + singleflight) behind
// one fairness scheduler, plus the telemetry stack (tracer, metrics,
// recent-run ring, access log).
type Server struct {
	runner  *job.Runner
	sched   *scheduler
	metrics *obs.Metrics
	tracer  *obs.Tracer
	mux     *http.ServeMux
	recent  *runLog
	access  *accessLog
	start   time.Time
	workers int
	limit   int

	requests       *obs.Counter
	badRequests    *obs.Counter
	queueFull      *obs.Counter
	runErrors      *obs.Counter
	requestSeconds *obs.Histogram
	queueSeconds   *obs.Histogram
	executeSeconds *obs.Histogram // shared with the runner's stage series
}

// New builds a Server. Cache-directory validation happens here, so a
// refused directory (satellite of the cache-manifest gate) fails
// startup rather than the first request.
func New(cfg Config) (*Server, error) {
	runner := job.NewRunner()
	if cfg.CacheDir != "" {
		c, err := resultcache.Open(cfg.CacheDir, job.SemanticsVersion, cfg.CacheMemBytes)
		if err != nil {
			return nil, err
		}
		runner.Cache = c
	} else {
		runner.Cache = resultcache.OpenMemory(cfg.CacheMemBytes)
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = DefaultWorkers
	}
	limit := cfg.QueueLimit
	if limit <= 0 {
		limit = DefaultQueueLimit
	}
	recent := cfg.RecentRuns
	if recent <= 0 {
		recent = DefaultRecentRuns
	}
	tracer := cfg.Tracer
	if tracer == nil {
		tracer = obs.NewTracer(0)
	}
	runner.Tracer = tracer
	s := &Server{
		runner:  runner,
		sched:   newScheduler(runner, workers, limit),
		metrics: obs.NewMetrics(),
		tracer:  tracer,
		mux:     http.NewServeMux(),
		recent:  newRunLog(recent),
		access:  &accessLog{w: cfg.AccessLog},
		workers: workers,
		limit:   limit,
	}
	s.start = tracer.Now()
	s.requests = s.metrics.Counter("serve_requests")
	s.badRequests = s.metrics.Counter("serve_bad_requests")
	s.queueFull = s.metrics.Counter("serve_queue_full")
	s.runErrors = s.metrics.Counter("serve_run_errors")
	runner.Instrument(s.metrics) // job_*, cache_*, stage + workload histograms
	s.requestSeconds = s.metrics.Histogram("serve_request_seconds")
	s.queueSeconds = s.metrics.Histogram("serve_queue_wait_seconds")
	s.executeSeconds = s.metrics.Histogram("job_stage_seconds", "stage", "execute")
	s.sched.observeQueueWait = func(sp obs.Span) { s.queueSeconds.Observe(sp.Dur) }
	s.metrics.Func("sched_pending", func() uint64 { p, _ := s.sched.load(); return uint64(p) })
	s.metrics.Func("sched_busy", func() uint64 { _, b := s.sched.load(); return uint64(b) })
	s.metrics.Func("trace_spans", s.tracer.Recorded)
	s.metrics.Func("trace_spans_dropped", s.tracer.Dropped)

	s.mux.HandleFunc("POST /v1/run", s.handleRun)
	s.mux.HandleFunc("GET /v1/result/{key}", s.handleResult)
	s.mux.HandleFunc("GET /v1/workloads", s.handleWorkloads)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /debug/runs", s.handleDebugRuns)
	return s, nil
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Runner exposes the underlying runner (tests and in-process CI lanes).
func (s *Server) Runner() *job.Runner { return s.runner }

// Tracer exposes the span recorder (the -trace-out shutdown dump and
// in-process CI lanes).
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// runResponse is the POST /v1/run body: the spec's content key, the
// request's trace ID, whether the cache served it, and the canonical
// result encoding verbatim.
type runResponse struct {
	Key    string          `json:"key"`
	Trace  string          `json:"trace"`
	Cached bool            `json:"cached"`
	Result json.RawMessage `json:"result"`
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	started := s.tracer.Now()
	client := clientID(r)

	// Join the caller's trace when it sent a well-formed traceparent,
	// start a fresh one otherwise, and echo the context back so the
	// caller can correlate its logs with /debug/runs and span dumps.
	var root *obs.ActiveSpan
	if tp := r.Header.Get("traceparent"); tp != "" {
		if trace, parent, err := obs.ParseTraceparent(tp); err == nil {
			root = s.tracer.JoinTrace(trace, parent, "request")
		}
	}
	if root == nil {
		root = s.tracer.StartTrace("request")
	}
	root.Attr("client", client)
	w.Header().Set("traceparent", obs.FormatTraceparent(root.TraceID(), root.SpanID()))

	rec := RunRecord{
		Time:   started.UTC().Format(time.RFC3339Nano),
		Trace:  root.TraceID().String(),
		Client: client,
	}
	finish := func(status int, errText string) {
		rec.Status = status
		rec.Error = errText
		rec.TotalSeconds = s.tracer.Now().Sub(started).Seconds()
		root.Attr("status", strconv.Itoa(status))
		s.requestSeconds.Observe(root.End().Dur)
		s.recent.add(rec)
		s.access.write(rec)
	}

	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var spec job.Spec
	if err := dec.Decode(&spec); err != nil {
		s.badRequests.Inc()
		err = fmt.Errorf("decoding spec: %w", err)
		httpError(w, http.StatusBadRequest, err)
		finish(http.StatusBadRequest, err.Error())
		return
	}
	rec.Workload = spec.Workload
	canon, err := spec.Canonicalize()
	if err != nil {
		s.badRequests.Inc()
		httpError(w, http.StatusBadRequest, err)
		finish(http.StatusBadRequest, err.Error())
		return
	}
	key, err := canon.Key()
	if err != nil {
		s.badRequests.Inc()
		httpError(w, http.StatusBadRequest, err)
		finish(http.StatusBadRequest, err.Error())
		return
	}
	rec.Key = key.String()
	root.Attr("key", key.String())

	// Hits bypass the queue: they cost a map lookup, not a worker.
	if data, ok := s.runner.CachedTraced(canon, root); ok {
		rec.Cached = true
		s.writeRun(w, key, root, true, data)
		finish(http.StatusOK, "")
		return
	}
	t := &task{spec: canon, parent: root, done: make(chan struct{})}
	ok, pending := s.sched.submit(client, t)
	if !ok {
		s.queueFull.Inc()
		rec.QueueDepth = pending
		retry := s.retryAfter(pending)
		w.Header().Set("Retry-After", strconv.Itoa(retry))
		err := fmt.Errorf("queue full, retry in ~%ds", retry)
		httpError(w, http.StatusTooManyRequests, err)
		finish(http.StatusTooManyRequests, err.Error())
		return
	}
	<-t.done
	rec.Cached = t.info.Cached
	rec.Coalesced = t.info.Coalesced
	rec.QueueDepth = t.depth
	rec.QueueSeconds = t.queueWait
	rec.RunSeconds = t.runSeconds
	if t.err != nil {
		// Spec errors were caught above; what remains is a failed run
		// (e.g. a deterministic guest trap) — the request is at fault,
		// not the server.
		s.runErrors.Inc()
		httpError(w, http.StatusUnprocessableEntity, t.err)
		finish(http.StatusUnprocessableEntity, t.err.Error())
		return
	}
	s.writeRun(w, key, root, t.info.Cached, t.data)
	finish(http.StatusOK, "")
}

// retryAfter estimates how long a refused client should back off:
// the pending backlog divided by the worker count, scaled by the
// observed p90 execute latency — so a daemon running second-long
// simulations tells clients to come back later than one serving
// millisecond jobs. Before any execution has been observed it falls
// back to assuming a second per backlog slot per worker.
func (s *Server) retryAfter(pending int) int {
	p90 := s.executeSeconds.Quantile(0.9)
	if p90 == 0 {
		return pending/s.workers + 1
	}
	secs := int(math.Ceil(float64(pending) / float64(s.workers) * p90))
	if secs < 1 {
		secs = 1
	}
	if secs > 600 {
		secs = 600
	}
	return secs
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	key, err := resultcache.ParseKey(r.PathValue("key"))
	if err != nil {
		s.badRequests.Inc()
		httpError(w, http.StatusBadRequest, err)
		return
	}
	data, ok := s.runner.Cache.Get(key)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("no cached result for %s", key))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(data)
}

func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	writeJSON(w, map[string]any{
		"workloads": job.WorkloadNames(),
		"semantics": job.SemanticsVersion,
	})
}

// healthzBody is the GET /healthz response: liveness plus the numbers a
// load balancer or operator needs at a glance.
type healthzBody struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Semantics     string  `json:"semantics"`
	Queue         struct {
		Pending int `json:"pending"`
		Busy    int `json:"busy"`
		Workers int `json:"workers"`
		Limit   int `json:"limit"`
	} `json:"queue"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	var h healthzBody
	h.Status = "ok"
	h.UptimeSeconds = s.tracer.Now().Sub(s.start).Seconds()
	h.Semantics = job.SemanticsVersion
	h.Queue.Pending, h.Queue.Busy = s.sched.load()
	h.Queue.Workers = s.workers
	h.Queue.Limit = s.limit
	writeJSON(w, h)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_ = s.metrics.WriteText(w)
}

func (s *Server) handleDebugRuns(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{"runs": s.recent.snapshot()})
}

// clientID names the fairness queue a request belongs to: the
// X-Cyclops-Client header when set (cooperating tools labelling
// themselves), else the remote host.
func clientID(r *http.Request) string {
	if c := r.Header.Get("X-Cyclops-Client"); c != "" {
		return c
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

func (s *Server) writeRun(w http.ResponseWriter, key resultcache.Key, root *obs.ActiveSpan, cached bool, data []byte) {
	writeJSON(w, runResponse{
		Key:    key.String(),
		Trace:  root.TraceID().String(),
		Cached: cached,
		Result: data,
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(buf.Bytes())
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
