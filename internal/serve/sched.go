package serve

import (
	"sync"

	"cyclops/internal/job"
	"cyclops/internal/obs"
)

// task is one queued simulation request, carrying its trace context:
// the request's root span (parent for the runner's stage spans) and the
// queue_wait span, started at submit and ended at dispatch so the span
// tree shows exactly how long the request sat behind other clients.
type task struct {
	spec *job.Spec
	// parent is the request's root span; the worker parents all run
	// stages under it.
	parent *obs.ActiveSpan
	// queued is the queue_wait span (nil when untraced); its End at
	// dispatch yields the queue-wait duration.
	queued *obs.ActiveSpan
	// done closes once data/info/err are final.
	done chan struct{}
	data []byte
	info job.RunInfo
	err  error
	// queueWait is the measured queue_wait duration in seconds and
	// runSeconds the runner's share (dispatch to done).
	queueWait  float64
	runSeconds float64
	// depth is the number of already-pending tasks observed at submit.
	depth int
}

// scheduler dispatches queued tasks to a bounded worker set with
// per-client fairness: each client has its own FIFO, and a round-robin
// ring over the clients picks the next task, so one client flooding the
// queue delays its own requests, not everyone else's. Cache hits never
// enter the queue (the handler answers them directly); only simulator
// executions compete here.
type scheduler struct {
	runner *job.Runner

	// observeQueueWait, when set, receives each task's queue_wait span
	// at dispatch (the server feeds the queue-wait histogram).
	observeQueueWait func(obs.Span)

	mu      sync.Mutex
	queues  map[string]*clientQueue
	ring    []*clientQueue // only clients with pending tasks
	next    int            // ring index served next
	pending int
	busy    int
	workers int
	limit   int // max queued tasks across all clients
}

type clientQueue struct {
	id    string
	tasks []*task
}

func newScheduler(runner *job.Runner, workers, limit int) *scheduler {
	return &scheduler{
		runner:  runner,
		queues:  make(map[string]*clientQueue),
		workers: workers,
		limit:   limit,
	}
}

// submit enqueues t for client. When the queue is full it refuses and
// reports the pending count, from which the server derives a
// latency-informed Retry-After estimate.
func (s *scheduler) submit(client string, t *task) (ok bool, pending int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pending >= s.limit {
		return false, s.pending
	}
	t.depth = s.pending
	t.queued = t.parent.Child("queue_wait")
	q := s.queues[client]
	if q == nil {
		q = &clientQueue{id: client}
		s.queues[client] = q
		s.ring = append(s.ring, q)
	}
	q.tasks = append(q.tasks, t)
	s.pending++
	s.dispatchLocked()
	return true, s.pending
}

// dispatchLocked starts tasks while workers are free. Every queue in
// the ring is non-empty (emptied queues are pruned immediately), so the
// ring cursor always points at the next client due a turn.
func (s *scheduler) dispatchLocked() {
	for s.busy < s.workers && s.pending > 0 {
		idx := s.next % len(s.ring)
		q := s.ring[idx]
		t := q.tasks[0]
		q.tasks = q.tasks[1:]
		if len(q.tasks) == 0 {
			delete(s.queues, q.id)
			s.ring = append(s.ring[:idx], s.ring[idx+1:]...)
			if len(s.ring) > 0 {
				s.next = idx % len(s.ring)
			} else {
				s.next = 0
			}
		} else {
			s.next = (idx + 1) % len(s.ring)
		}
		s.pending--
		s.busy++
		go s.run(t)
	}
}

// run executes one task and recycles the worker slot.
func (s *scheduler) run(t *task) {
	if t.queued != nil {
		sp := t.queued.End()
		t.queueWait = sp.Dur.Seconds()
		if s.observeQueueWait != nil {
			s.observeQueueWait(sp)
		}
	}
	started := s.runner.Tracer.Now()
	t.data, t.info, t.err = s.runner.RunEncodedTraced(t.spec, t.parent)
	t.runSeconds = s.runner.Tracer.Now().Sub(started).Seconds()
	close(t.done)
	s.mu.Lock()
	s.busy--
	s.dispatchLocked()
	s.mu.Unlock()
}

// load reports the pending and busy counts for the metrics export.
func (s *scheduler) load() (pending, busy int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pending, s.busy
}
