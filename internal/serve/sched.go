package serve

import (
	"sync"

	"cyclops/internal/job"
)

// task is one queued simulation request.
type task struct {
	spec *job.Spec
	// done closes once data/cached/err are final.
	done   chan struct{}
	data   []byte
	cached bool
	err    error
}

// scheduler dispatches queued tasks to a bounded worker set with
// per-client fairness: each client has its own FIFO, and a round-robin
// ring over the clients picks the next task, so one client flooding the
// queue delays its own requests, not everyone else's. Cache hits never
// enter the queue (the handler answers them directly); only simulator
// executions compete here.
type scheduler struct {
	runner *job.Runner

	mu      sync.Mutex
	queues  map[string]*clientQueue
	ring    []*clientQueue // only clients with pending tasks
	next    int            // ring index served next
	pending int
	busy    int
	workers int
	limit   int // max queued tasks across all clients
}

type clientQueue struct {
	id    string
	tasks []*task
}

func newScheduler(runner *job.Runner, workers, limit int) *scheduler {
	return &scheduler{
		runner:  runner,
		queues:  make(map[string]*clientQueue),
		workers: workers,
		limit:   limit,
	}
}

// submit enqueues t for client. When the queue is full it refuses and
// returns a Retry-After estimate in seconds (pending work over worker
// count; at least one).
func (s *scheduler) submit(client string, t *task) (ok bool, retryAfter int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pending >= s.limit {
		return false, s.pending/s.workers + 1
	}
	q := s.queues[client]
	if q == nil {
		q = &clientQueue{id: client}
		s.queues[client] = q
		s.ring = append(s.ring, q)
	}
	q.tasks = append(q.tasks, t)
	s.pending++
	s.dispatchLocked()
	return true, 0
}

// dispatchLocked starts tasks while workers are free. Every queue in
// the ring is non-empty (emptied queues are pruned immediately), so the
// ring cursor always points at the next client due a turn.
func (s *scheduler) dispatchLocked() {
	for s.busy < s.workers && s.pending > 0 {
		idx := s.next % len(s.ring)
		q := s.ring[idx]
		t := q.tasks[0]
		q.tasks = q.tasks[1:]
		if len(q.tasks) == 0 {
			delete(s.queues, q.id)
			s.ring = append(s.ring[:idx], s.ring[idx+1:]...)
			if len(s.ring) > 0 {
				s.next = idx % len(s.ring)
			} else {
				s.next = 0
			}
		} else {
			s.next = (idx + 1) % len(s.ring)
		}
		s.pending--
		s.busy++
		go s.run(t)
	}
}

// run executes one task and recycles the worker slot.
func (s *scheduler) run(t *task) {
	t.data, t.cached, t.err = s.runner.RunEncoded(t.spec)
	close(t.done)
	s.mu.Lock()
	s.busy--
	s.dispatchLocked()
	s.mu.Unlock()
}

// load reports the pending and busy counts for the metrics export.
func (s *scheduler) load() (pending, busy int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pending, s.busy
}
