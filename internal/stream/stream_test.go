package stream

import (
	"strings"
	"testing"

	"cyclops/internal/asm"
)

func TestGenerateAssemblesForAllVariants(t *testing.T) {
	variants := []Params{
		{Kernel: Copy, Threads: 1, N: 512},
		{Kernel: Scale, Threads: 1, N: 512},
		{Kernel: Add, Threads: 8, N: 512},
		{Kernel: Triad, Threads: 8, N: 512, Partition: Cyclic},
		{Kernel: Copy, Threads: 8, N: 512, Local: true},
		{Kernel: Triad, Threads: 8, N: 512, Local: true, Unroll: 4},
		{Kernel: Add, Threads: 8, N: 64, Independent: true},
		{Kernel: Copy, Threads: 126, N: 8 * 126},
		{Kernel: Triad, Threads: 126, N: 16 * 126, Partition: Cyclic},
	}
	for _, p := range variants {
		src, err := Generate(p)
		if err != nil {
			t.Fatalf("%+v: %v", p, err)
		}
		if _, err := asm.Assemble(src); err != nil {
			t.Fatalf("%+v does not assemble: %v\n%s", p, err, src)
		}
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	bad := []struct {
		name string
		p    Params
	}{
		{"zero threads", Params{Kernel: Copy, N: 64}},
		{"N not line multiple", Params{Kernel: Copy, Threads: 2, N: 60}},
		{"N not divisible by threads", Params{Kernel: Copy, Threads: 3, N: 64}},
		{"bad unroll", Params{Kernel: Copy, Threads: 1, N: 64, Unroll: 3}},
		{"cyclic local", Params{Kernel: Copy, Threads: 8, N: 512, Partition: Cyclic, Local: true}},
		{"cyclic unrolled", Params{Kernel: Copy, Threads: 8, N: 512, Partition: Cyclic, Unroll: 4}},
		{"too big", Params{Kernel: Copy, Threads: 1, N: 1 << 21}},
		{"independent too big", Params{Kernel: Copy, Threads: 126, N: 1 << 14, Independent: true}},
	}
	for _, c := range bad {
		if err := c.p.Validate(); err == nil {
			t.Errorf("%s accepted", c.name)
		}
	}
}

func TestKernelMetadata(t *testing.T) {
	if Copy.BytesPerElement() != 16 || Scale.BytesPerElement() != 16 {
		t.Error("copy/scale move 2 words per element")
	}
	if Add.BytesPerElement() != 24 || Triad.BytesPerElement() != 24 {
		t.Error("add/triad move 3 words per element")
	}
	if Copy.String() != "Copy" || Triad.String() != "Triad" {
		t.Error("kernel names wrong")
	}
	if Blocked.String() != "blocked" || Cyclic.String() != "cyclic" {
		t.Error("partition names wrong")
	}
}

func TestRunSingleThreaded(t *testing.T) {
	res, err := Run(Params{Kernel: Copy, Threads: 1, N: 256, Reps: 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestCycles == 0 {
		t.Fatal("no cycles measured")
	}
	if res.TotalBytes != 256*16 {
		t.Errorf("TotalBytes = %d", res.TotalBytes)
	}
	if res.GBps() <= 0 {
		t.Error("no bandwidth computed")
	}
	if len(res.RepCycles) != 2 {
		t.Errorf("reps = %d", len(res.RepCycles))
	}
	// Copy of 256 elements: at least one ld+sd per element; an absurdly
	// low cycle count would mean the timed region missed the kernel.
	if res.BestCycles < 256 {
		t.Errorf("best = %d cycles for 256 elements: timing region wrong", res.BestCycles)
	}
}

func TestRunMultithreadedFasterThanSingle(t *testing.T) {
	single, err := Run(Params{Kernel: Triad, Threads: 1, N: 2048, Reps: 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := Run(Params{Kernel: Triad, Threads: 16, N: 2048, Reps: 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if multi.BestCycles*4 > single.BestCycles {
		t.Errorf("16 threads (%d cycles) not at least 4x faster than 1 (%d)",
			multi.BestCycles, single.BestCycles)
	}
}

func TestWarmRepsFasterThanCold(t *testing.T) {
	// 512 elements x 3 vectors = 12 KB: fits the caches, so rep 2+
	// runs in-cache and beats the cold first rep.
	res, err := Run(Params{Kernel: Add, Threads: 4, N: 512, Reps: 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.RepCycles[1] >= res.RepCycles[0] {
		t.Errorf("warm rep (%d) not faster than cold rep (%d)", res.RepCycles[1], res.RepCycles[0])
	}
	if res.BestCycles > res.RepCycles[0] {
		t.Error("best rep exceeds first rep")
	}
}

func TestLocalBeatsSharedForSmallVectors(t *testing.T) {
	shared, err := Run(Params{Kernel: Copy, Threads: 8, N: 1024, Reps: 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	local, err := Run(Params{Kernel: Copy, Threads: 8, N: 1024, Reps: 3, Local: true}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Section 3.2.2: local caches improve small-vector bandwidth by up
	// to 60%; at minimum they must not be slower.
	if local.BestCycles >= shared.BestCycles {
		t.Errorf("local mode (%d cycles) not faster than shared (%d)",
			local.BestCycles, shared.BestCycles)
	}
}

func TestBlockedBeatsCyclic(t *testing.T) {
	// Out-of-cache sizes: in cyclic mode the eight threads of a group
	// touch each line while it is still being fetched, so every one of
	// them waits the full miss latency (Section 3.2.2).
	blocked, err := Run(Params{Kernel: Copy, Threads: 16, N: 65536, Reps: 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	cyclic, err := Run(Params{Kernel: Copy, Threads: 16, N: 65536, Reps: 2, Partition: Cyclic}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 5: blocked outperforms cyclic at equal vector size.
	if blocked.BestCycles >= cyclic.BestCycles {
		t.Errorf("blocked (%d cycles) not faster than cyclic (%d)",
			blocked.BestCycles, cyclic.BestCycles)
	}
}

func TestUnrollingHelpsLocalBlocked(t *testing.T) {
	rolled, err := Run(Params{Kernel: Triad, Threads: 8, N: 2048, Local: true, Reps: 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	unrolled, err := Run(Params{Kernel: Triad, Threads: 8, N: 2048, Local: true, Unroll: 4, Reps: 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 5d: unrolling improves small-vector performance by issuing
	// independent loads while earlier ones complete.
	if unrolled.BestCycles >= rolled.BestCycles {
		t.Errorf("unrolled (%d cycles) not faster than rolled (%d)",
			unrolled.BestCycles, rolled.BestCycles)
	}
}

func TestIndependentCopiesRun(t *testing.T) {
	res, err := Run(Params{Kernel: Triad, Threads: 8, N: 64, Independent: true, Reps: 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalBytes != 8*64*24 {
		t.Errorf("TotalBytes = %d, want aggregate over private copies", res.TotalBytes)
	}
	if res.PerThreadMBps() <= 0 {
		t.Error("per-thread bandwidth not computed")
	}
}

func TestRunRejectsTooManyThreads(t *testing.T) {
	_, err := Run(Params{Kernel: Copy, Threads: 127, N: 8 * 127}, 0)
	if err == nil || !strings.Contains(err.Error(), "usable workers") {
		t.Errorf("127 threads: %v", err)
	}
}

func TestGeneratedSourceMentionsConfig(t *testing.T) {
	src, err := Generate(Params{Kernel: Triad, Threads: 4, N: 64, Local: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, "Triad") || !strings.Contains(src, "local=true") {
		t.Error("generated header does not describe the configuration")
	}
}
