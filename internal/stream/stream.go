// Package stream implements the STREAM benchmark (McCalpin) for the
// Cyclops instruction-level simulator, reproducing every variant measured
// in Section 3.2 of the paper:
//
//   - single-threaded and 126-thread "out of the box" runs (Figure 4),
//   - blocked vs cyclic loop partitioning (Figure 5a/5b),
//   - blocked partitioning into local caches via the own-cache interest
//     group (Figure 5c),
//   - four-way hand-unrolled loops (Figure 5d),
//   - the thread-count sweep of Figure 6a.
//
// The benchmark programs are generated as Cyclops assembly and run on the
// simulated chip under the resident kernel. Threads synchronise with the
// hardware barrier and the main thread samples the cycle SPR between
// barriers, so the measured region covers exactly the vector kernel.
package stream

import (
	"fmt"
	"strings"

	"cyclops/internal/arch"
	"cyclops/internal/sim"
	"cyclops/internal/timing"
)

// Kernel selects one of the four STREAM vector kernels.
type Kernel int

const (
	// Copy: c[i] = a[i]; moves 16 bytes per element.
	Copy Kernel = iota
	// Scale: b[i] = s*c[i]; 16 bytes per element.
	Scale
	// Add: c[i] = a[i] + b[i]; 24 bytes per element.
	Add
	// Triad: a[i] = b[i] + s*c[i]; 24 bytes per element.
	Triad
)

// Kernels lists all four in paper order.
var Kernels = []Kernel{Copy, Add, Scale, Triad}

func (k Kernel) String() string {
	switch k {
	case Copy:
		return "Copy"
	case Scale:
		return "Scale"
	case Add:
		return "Add"
	case Triad:
		return "Triad"
	}
	return "?"
}

// BytesPerElement returns the STREAM-convention counted traffic.
func (k Kernel) BytesPerElement() int {
	if k == Add || k == Triad {
		return 24
	}
	return 16
}

// Partition selects how loop iterations are split among threads
// (Section 3.2.2, "Loop partitioning").
type Partition int

const (
	// Blocked gives each thread one contiguous chunk; each cache line
	// is used by exactly one thread.
	Blocked Partition = iota
	// Cyclic deals cache lines to thread groups of eight; the eight
	// threads of a group touch each of the group's lines together,
	// one element apiece.
	Cyclic
)

func (p Partition) String() string {
	if p == Cyclic {
		return "cyclic"
	}
	return "blocked"
}

// Params configures one STREAM program.
type Params struct {
	Kernel  Kernel
	Threads int
	// N is the total vector length in elements (or per-thread length
	// when Independent). Must be a multiple of 8 (one cache line) and,
	// for partitioned runs, of 8*Threads.
	N         int
	Partition Partition
	// Local maps each thread's elements into its own quad cache via the
	// interest-group mechanism instead of spreading them chip-wide.
	Local bool
	// Unroll is the hand-unrolling depth: 1 or 4.
	Unroll int
	// Independent runs one private STREAM per thread (Figure 4b) rather
	// than partitioning shared vectors.
	Independent bool
	// Reps repeats the timed kernel; the harness reports the best rep,
	// following STREAM's best-of-ten convention (default 3).
	Reps int
	// ProfileEvery, when nonzero, attaches the guest profiler sampling
	// every N cycles per thread unit; the profile and the assembled
	// program (for symbolization) land in the Result. TimelineEvery
	// likewise attaches the interval telemetry timeline. Both are
	// ignored under cyclops_noobs.
	ProfileEvery  uint64
	TimelineEvery uint64
	// Issue, when non-nil, overrides the process-default issue policy
	// (fine-grained, blocked, switch-on-miss) for this run's machine.
	// Distinct from the kernel.Policy parameter of Run, which selects
	// thread *placement*.
	Issue timing.Policy
	// Engine, when non-nil, selects the simulator execution engine for
	// this run's machine instead of the process default. The job layer
	// threads it per point so concurrent runs on different engines never
	// race on the default.
	Engine *sim.Engine
}

// Vector placement: three 2 MB regions below the kernel stacks, staggered
// by one cache line each so that a[i], b[i] and c[i] fall in different
// memory banks (a 2 MB stride alone is invariant under the bank hash).
const (
	vecA = 0x100000
	vecB = 0x300040
	vecC = 0x500080
)

// DefaultReps is the repetition count a zero Reps defaults to.
const DefaultReps = 3

func (p *Params) setDefaults() {
	if p.Reps == 0 {
		p.Reps = DefaultReps
	}
	if p.Unroll == 0 {
		p.Unroll = 1
	}
}

// Validate reports the first problem with the parameters.
func (p Params) Validate() error {
	p.setDefaults()
	switch {
	case p.Threads < 1:
		return fmt.Errorf("stream: Threads = %d", p.Threads)
	case p.N < 8 || p.N%8 != 0:
		return fmt.Errorf("stream: N = %d must be a positive multiple of 8", p.N)
	case p.Unroll != 1 && p.Unroll != 4:
		return fmt.Errorf("stream: Unroll = %d, want 1 or 4", p.Unroll)
	case !p.Independent && p.N%(8*p.Threads) != 0:
		return fmt.Errorf("stream: N = %d must divide into 8-element lines across %d threads", p.N, p.Threads)
	case p.Partition == Cyclic && (p.Local || p.Independent):
		return fmt.Errorf("stream: cyclic partitioning combines only with the shared cache mode")
	case p.Unroll == 4 && p.Partition == Cyclic:
		return fmt.Errorf("stream: the paper unrolls only the blocked variants")
	}
	total := p.N
	if p.Independent {
		total = p.N * p.Threads
	}
	if 3*total*8 > vecB-vecA+vecC-vecB+0x200000 {
		return fmt.Errorf("stream: %d total elements exceed the 6 MB vector region", total)
	}
	return nil
}

// ea returns the numeric effective address of a vector base: local runs
// use the own-cache interest group (zero, so plain physical addresses);
// everything else uses the chip-wide shared group, the system default.
func (p Params) ea(phys uint32) uint32 {
	if p.Local {
		return arch.EA(arch.InterestGroup{Mode: arch.GroupOwn}, phys)
	}
	return arch.EA(arch.InterestGroup{Mode: arch.GroupAll}, phys)
}

// Generate emits the Cyclops assembly program for the parameters.
func Generate(p Params) (string, error) {
	p.setDefaults()
	if err := p.Validate(); err != nil {
		return "", err
	}
	g := &gen{p: p}
	return g.program(), nil
}

type gen struct {
	p   Params
	sb  strings.Builder
	lbl int
}

func (g *gen) f(format string, args ...interface{}) {
	fmt.Fprintf(&g.sb, format+"\n", args...)
}

func (g *gen) label(prefix string) string {
	g.lbl++
	return fmt.Sprintf("%s_%d", prefix, g.lbl)
}

// program builds the whole benchmark: spawn, barrier-timed rep loop, exit.
func (g *gen) program() string {
	p := g.p
	g.f("; STREAM %s: N=%d threads=%d %s local=%v unroll=%d independent=%v",
		p.Kernel, p.N, p.Threads, p.Partition, p.Local, p.Unroll, p.Independent)
	g.f("\t.org 0x100")

	// Main entry: spawn workers 1..T-1, then fall through as index 0.
	g.f("_start:")
	if p.Threads > 1 {
		g.f("\tli   r8, 1")
		g.f("\tli   r9, %d", p.Threads)
		spawn := g.label("spawn")
		g.f("%s:\tli   a0, 3\t\t; SysSpawn", spawn)
		g.f("\tla   a1, thread")
		g.f("\tmov  a2, r8")
		g.f("\tsyscall")
		g.f("\taddi r8, r8, 1")
		g.f("\tblt  r8, r9, %s", spawn)
	}
	g.f("\tli   a0, 0\t\t; main participates as index 0")
	g.f("\tj    thread")

	// Per-thread body. Index arrives in a0 (r4).
	g.f("thread:")
	g.f("\tmov  r30, a0\t\t; r30 = thread index")
	g.setup()
	// Barrier masks: r26 = current, r27 = next.
	g.f("\tli   r26, 1")
	g.f("\tli   r27, 2")
	for rep := 0; rep < p.Reps; rep++ {
		g.barrier()
		g.stamp(rep)
		g.kernelLoop(rep)
	}
	g.barrier()
	g.stamp(p.Reps)
	g.f("\tli   a0, 0\t\t; SysExit")
	g.f("\tsyscall")

	g.f("\t.align 8")
	g.f("scalar:\t.double 3.0")
	g.f("times:\t.space %d", 4*(p.Reps+1))
	return g.sb.String()
}

// barrier emits one hardware-barrier entry with role swap (Section 2.3).
func (g *gen) barrier() {
	spin := g.label("spin")
	g.f("\tmtspr r27, 4\t\t; enter: clear current, set next")
	g.f("%s:\tmfspr r9, 4", spin)
	g.f("\tand  r9, r9, r26")
	g.f("\tbne  r9, r0, %s", spin)
	g.f("\tmov  r9, r26\t\t; swap roles")
	g.f("\tmov  r26, r27")
	g.f("\tmov  r27, r9")
}

// stamp records the cycle counter (main thread only) into times[i].
func (g *gen) stamp(i int) {
	skip := g.label("nostamp")
	g.f("\tbne  r30, r0, %s", skip)
	g.f("\tmfspr r9, 2")
	g.f("\tla   r10, times")
	g.f("\tsw   r9, %d(r10)", 4*i)
	g.f("%s:", skip)
}

// setup computes per-thread pointers and loop counts into fixed registers:
//
//	r16/r18/r20: pointers for the vectors the kernel touches
//	r22: element count (outer count for cyclic)
//	r23: pointer stride per iteration
//	d60: the scalar s
func (g *gen) setup() {
	p := g.p
	g.f("\tla   r9, scalar")
	g.f("\tld   d60, 0(r9)")
	switch {
	case p.Independent:
		// Thread t owns private vectors at V + t*3*N*8.
		span := p.N * 8
		g.f("\tli   r9, %d", 3*span)
		g.f("\tmul  r10, r30, r9\t; private region offset")
		g.f("\tli   r16, %d", p.ea(vecA))
		g.f("\tadd  r16, r16, r10")
		g.f("\tli   r9, %d", span)
		g.f("\tadd  r18, r16, r9\t; b after a")
		g.f("\tadd  r20, r18, r9\t; c after b")
		g.f("\tli   r22, %d", p.N)
		g.f("\tli   r23, %d", 8*p.Unroll)

	case p.Partition == Blocked:
		chunk := p.N / p.Threads
		g.f("\tli   r9, %d", chunk*8)
		g.f("\tmul  r10, r30, r9\t; my chunk offset")
		g.f("\tli   r16, %d", p.ea(vecA))
		g.f("\tadd  r16, r16, r10")
		g.f("\tli   r18, %d", p.ea(vecB))
		g.f("\tadd  r18, r18, r10")
		g.f("\tli   r20, %d", p.ea(vecC))
		g.f("\tadd  r20, r20, r10")
		g.f("\tli   r22, %d", chunk)
		g.f("\tli   r23, %d", 8*p.Unroll)

	default: // Cyclic: lines dealt to groups of 8 threads
		groups := (p.Threads + 7) / 8
		lines := p.N / 8
		g.f("\tsrli r11, r30, 3\t; group = index/8")
		g.f("\tandi r12, r30, 7\t; lane  = index%%8")
		// lineOffset = group*64 + lane*8
		g.f("\tslli r13, r11, 6")
		g.f("\tslli r14, r12, 3")
		g.f("\tadd  r13, r13, r14")
		g.f("\tli   r16, %d", p.ea(vecA))
		g.f("\tadd  r16, r16, r13")
		g.f("\tli   r18, %d", p.ea(vecB))
		g.f("\tadd  r18, r18, r13")
		g.f("\tli   r20, %d", p.ea(vecC))
		g.f("\tadd  r20, r20, r13")
		// count = ceil((lines - group) / groups), lines > group always
		// because lines >= threads/8 is required by Validate.
		g.f("\tli   r9, %d", lines)
		g.f("\tsub  r9, r9, r11")
		g.f("\taddi r9, r9, %d", groups-1)
		g.f("\tli   r10, %d", groups)
		g.f("\tdivu r22, r9, r10")
		g.f("\tli   r23, %d", groups*64)
	}
}

// kernelLoop emits one timed repetition of the vector kernel.
func (g *gen) kernelLoop(rep int) {
	p := g.p
	loop := g.label("loop")
	g.f("\tmov  r8, r16\t\t; a")
	g.f("\tmov  r10, r18\t\t; b")
	g.f("\tmov  r12, r20\t\t; c")
	g.f("\tmov  r14, r22\t\t; count")
	g.f("%s:", loop)
	// Phase-ordered unrolled body: all loads first, then compute, then
	// stores. On an in-order single-issue thread this is what makes
	// unrolling pay — independent loads issue while earlier ones are
	// still completing (Section 3.2.2, "Code optimization").
	for _, phase := range []func(int){g.loads, g.compute, g.stores} {
		for u := 0; u < p.Unroll; u++ {
			phase(u * 8)
		}
	}
	g.f("\tadd  r8, r8, r23")
	g.f("\tadd  r10, r10, r23")
	g.f("\tadd  r12, r12, r23")
	dec := p.Unroll
	if p.Partition == Cyclic {
		dec = 1 // one element per line visit, count is line count
	}
	g.f("\taddi r14, r14, -%d", dec)
	g.f("\tbne  r14, r0, %s", loop)
	// Per-thread counts are always 8-element-line multiples (Validate),
	// so the 4-way unroll never needs a remainder loop.
	_ = rep
}

// vregs returns the rotating double-register pair for an unroll position,
// so unrolled iterations are fully independent; d60 holds the scalar.
func vregs(off int) (v1, v2 int) {
	d0 := 32 + (off/8%4)*4 // d32..d44 plus pair partners d34..d46
	return d0, d0 + 2
}

// loads emits the load phase for one element at byte offset off.
func (g *gen) loads(off int) {
	v1, v2 := vregs(off)
	switch g.p.Kernel {
	case Copy: // c[i] = a[i]
		g.f("\tld   d%d, %d(r8)", v1, off)
	case Scale: // b[i] = s*c[i]
		g.f("\tld   d%d, %d(r12)", v1, off)
	case Add: // c[i] = a[i] + b[i]
		g.f("\tld   d%d, %d(r8)", v1, off)
		g.f("\tld   d%d, %d(r10)", v2, off)
	case Triad: // a[i] = b[i] + s*c[i]
		g.f("\tld   d%d, %d(r10)", v1, off)
		g.f("\tld   d%d, %d(r12)", v2, off)
	}
}

// compute emits the arithmetic phase for one element.
func (g *gen) compute(off int) {
	v1, v2 := vregs(off)
	switch g.p.Kernel {
	case Scale:
		g.f("\tfmul d%d, d%d, d60", v2, v1)
	case Add:
		g.f("\tfadd d%d, d%d, d%d", v1, v1, v2)
	case Triad:
		g.f("\tfma  d%d, d%d, d60, d%d", v1, v2, v1)
	}
}

// stores emits the store phase for one element.
func (g *gen) stores(off int) {
	v1, v2 := vregs(off)
	switch g.p.Kernel {
	case Copy:
		g.f("\tsd   d%d, %d(r12)", v1, off)
	case Scale:
		g.f("\tsd   d%d, %d(r10)", v2, off)
	case Add:
		g.f("\tsd   d%d, %d(r12)", v1, off)
	case Triad:
		g.f("\tsd   d%d, %d(r8)", v1, off)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
