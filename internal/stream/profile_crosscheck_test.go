package stream

import (
	"strings"
	"testing"

	"cyclops/internal/arch"
	"cyclops/internal/obs"
	"cyclops/internal/perf"
	"cyclops/internal/prof"
)

// Cross-engine profile validation: the same STREAM triad profiled on the
// instruction-level simulator (symbols from the assembler line table)
// and on the direct-execution runtime (symbols from T.Region) must agree
// on where the time goes. Symbol names differ by construction — labels
// like "loop_4" versus region names like "triad" — so agreement is
// checked over symbol classes: the compute loop must be the hottest
// class on both engines among the top-5 symbols, with a comparable share
// of sampled cycles.
func TestProfilesAgreeAcrossEngines(t *testing.T) {
	if !obs.Enabled {
		t.Skip("observability compiled out")
	}
	const threads, perThread = 8, 504
	const every = 64

	// Instruction-level run, profiled.
	isaRes, err := Run(Params{
		Kernel: Triad, Threads: threads, N: perThread * threads,
		Local: true, Reps: 2, ProfileEvery: every,
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	isaRep := isaRes.Profile.Report(isaRes.Prog)

	// Timing-runtime equivalent (the DESIGN.md §5 crosscheck stream),
	// with the compute loop and barrier annotated as regions.
	m := perf.NewDefault()
	m.AttachProfile(prof.New(every))
	bar := perf.NewHWBarrier(threads)
	eaA := make([]uint32, threads)
	eaB := make([]uint32, threads)
	eaC := make([]uint32, threads)
	for p := 0; p < threads; p++ {
		g := arch.InterestGroup{Mode: arch.GroupOwn}
		eaA[p] = m.MustAlloc(8*perThread, g)
		eaB[p] = m.MustAlloc(8*perThread, g)
		eaC[p] = m.MustAlloc(8*perThread, g)
	}
	err = m.SpawnN(threads, func(th *perf.T, p int) {
		for rep := 0; rep < 2; rep++ {
			endB := th.Region("barrier")
			th.HWBarrier(bar)
			endB()
			end := th.Region("triad")
			for i := 0; i < perThread; i++ {
				b := th.LoadF64(eaB[p] + uint32(8*i))
				c := th.LoadF64(eaC[p] + uint32(8*i))
				v := th.FMA(b, c)
				th.StoreF64(eaA[p]+uint32(8*i), v)
				th.Work(4)
			}
			end()
		}
		endB := th.Region("barrier")
		th.HWBarrier(bar)
		endB()
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	perfRep := m.Prof.Report(m.Regions)

	// classify maps engine-specific symbol names onto shared classes.
	classify := func(name string) string {
		switch {
		case strings.HasPrefix(name, "loop"), name == "triad":
			return "compute"
		case strings.HasPrefix(name, "spin"), name == "barrier":
			return "sync"
		default:
			return "other"
		}
	}
	shares := func(rep *prof.Report) map[string]float64 {
		var total uint64
		for _, row := range rep.Rows {
			total += row.Cycles
		}
		out := map[string]float64{}
		for _, row := range rep.Top(5) {
			out[classify(row.Name)] += 100 * float64(row.Cycles) / float64(total)
		}
		return out
	}
	isaShares, perfShares := shares(isaRep), shares(perfRep)

	if len(isaRep.Rows) == 0 || len(perfRep.Rows) == 0 {
		t.Fatal("empty profile report")
	}
	if c := classify(isaRep.Rows[0].Name); c != "compute" {
		t.Errorf("sim hottest symbol %q classifies as %q, want the compute loop", isaRep.Rows[0].Name, c)
	}
	if c := classify(perfRep.Rows[0].Name); c != "compute" {
		t.Errorf("perf hottest symbol %q classifies as %q, want the compute loop", perfRep.Rows[0].Name, c)
	}
	if d := isaShares["compute"] - perfShares["compute"]; d < -30 || d > 30 {
		t.Errorf("compute share disagrees: sim %.1f%% vs perf %.1f%%", isaShares["compute"], perfShares["compute"])
	}
}
