package stream

import (
	"fmt"

	"cyclops/internal/arch"
	"cyclops/internal/asm"
	"cyclops/internal/core"
	"cyclops/internal/kernel"
	"cyclops/internal/obs"
	"cyclops/internal/prof"
)

// Result reports one STREAM measurement.
type Result struct {
	Params Params
	// BestCycles is the fastest timed repetition (STREAM's best-of-N).
	BestCycles uint64
	// RepCycles holds every repetition's duration.
	RepCycles []uint64
	// TotalBytes is the STREAM-convention counted traffic per rep.
	TotalBytes int
	// Insts is the total instructions the run issued (all reps).
	Insts uint64
	// Run and Stall are the Figure 7 cycle totals summed over every
	// thread unit (workers plus the spawning main thread); Stalls splits
	// Stall by reason and sums to it exactly. MemWaits sub-attributes
	// memory-system waits by location (port/bank/fill/hop).
	Run, Stall uint64
	Stalls     obs.Breakdown
	MemWaits   obs.MemWaits
	// Profile and Timeline are the attached profiler outputs (nil
	// unless Params asked for them); Prog is the assembled program,
	// whose line table symbolizes the profile.
	Profile  *prof.Profile
	Timeline *prof.Timeline
	Prog     *asm.Program
}

// Bandwidth returns the aggregate best-rep bandwidth in bytes/second at
// the 500 MHz design clock.
func (r Result) Bandwidth() float64 {
	if r.BestCycles == 0 {
		return 0
	}
	return float64(r.TotalBytes) / float64(r.BestCycles) * arch.ClockHz
}

// GBps is Bandwidth in GB/s (decimal, as the paper plots).
func (r Result) GBps() float64 { return r.Bandwidth() / 1e9 }

// PerThreadMBps is the Figure 4 metric: average bandwidth per thread.
func (r Result) PerThreadMBps() float64 {
	return r.Bandwidth() / float64(r.Params.Threads) / 1e6
}

// Policy is re-exported so callers choose thread placement without
// importing kernel.
type Policy = kernel.Policy

// Run generates, assembles and executes one STREAM configuration on a
// fresh default chip and returns the measurement.
func Run(p Params, policy Policy) (*Result, error) {
	return RunOn(nil, p, policy)
}

// RunOn executes on the supplied chip (built fresh when nil), allowing
// design-space exploration with non-default configurations.
func RunOn(chip *core.Chip, p Params, policy Policy) (*Result, error) {
	p.setDefaults()
	src, err := Generate(p)
	if err != nil {
		return nil, err
	}
	prog, err := asm.Assemble(src)
	if err != nil {
		return nil, fmt.Errorf("stream: generated program does not assemble: %w", err)
	}
	if chip == nil {
		chip = core.MustNew(arch.Default())
	}
	if p.Threads > chip.Cfg.WorkerThreads() {
		return nil, fmt.Errorf("stream: %d threads exceed the %d usable workers", p.Threads, chip.Cfg.WorkerThreads())
	}
	k := kernel.New(chip)
	k.Policy = policy
	if p.Engine != nil {
		// Must precede Boot, like SetPolicy below: engines cannot change
		// once threads are started.
		k.Machine().SetEngine(*p.Engine)
	}
	if p.Issue != nil {
		// Must precede Boot: the issue policy installs per-unit trigger
		// tables and cannot change once threads are started.
		k.Machine().SetPolicy(p.Issue)
	}
	// A generous ceiling: the slowest kernels move ~1 element per ~100
	// cycles per thread at worst.
	k.Machine().MaxCycles = 500_000_000
	prog.File = "stream.s"
	var pr *prof.Profile
	var tl *prof.Timeline
	if p.ProfileEvery > 0 {
		pr = prof.New(p.ProfileEvery)
		k.Machine().AttachProfile(pr)
	}
	if p.TimelineEvery > 0 {
		tl = prof.NewTimeline(p.TimelineEvery)
		k.Machine().AttachTimeline(tl)
	}
	if err := k.Boot(prog); err != nil {
		return nil, err
	}
	if err := k.Run(); err != nil {
		return nil, err
	}

	times := prog.Symbols["times"]
	stamps := make([]uint64, p.Reps+1)
	for i := range stamps {
		v, err := chip.Mem.Read32(times + uint32(4*i))
		if err != nil {
			return nil, err
		}
		stamps[i] = uint64(v)
	}
	res := &Result{Params: p, Insts: k.Machine().TotalInsts(), Profile: pr, Timeline: tl, Prog: prog}
	for _, tu := range k.Machine().TUs {
		res.Run += tu.Run
		res.Stall += tu.Stall
		res.Stalls.AddAll(tu.Stalls)
		res.MemWaits.AddAll(tu.MemWaits)
	}
	total := p.N
	if p.Independent {
		total = p.N * p.Threads
	}
	res.TotalBytes = total * p.Kernel.BytesPerElement()
	for i := 0; i < p.Reps; i++ {
		d := stamps[i+1] - stamps[i]
		res.RepCycles = append(res.RepCycles, d)
		if res.BestCycles == 0 || d < res.BestCycles {
			res.BestCycles = d
		}
	}
	return res, nil
}
