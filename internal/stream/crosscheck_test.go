package stream

import (
	"testing"

	"cyclops/internal/arch"
	"cyclops/internal/perf"
)

// Cross-frontend validation (DESIGN.md §5): the same STREAM triad, once
// as Cyclops assembly on the instruction-level simulator and once as an
// equivalent operation stream on the direct-execution timing runtime,
// must agree on cycle counts within a modest band — both charge Table 2
// costs through the same chip model, differing only in how the
// instruction stream is produced.
func TestISAAndTimingRuntimeAgreeOnTriad(t *testing.T) {
	const threads, perThread = 8, 504
	n := perThread * threads

	// Instruction-level run (local caches, no unrolling), warm rep.
	isaRes, err := Run(Params{Kernel: Triad, Threads: threads, N: n, Local: true, Reps: 2}, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Timing-runtime equivalent: same per-element operation stream as
	// the generated assembly loop — ld b, ld c, fma, sd a, plus the
	// 4 loop-control integer ops — on own-cache data, two reps with the
	// first warming the caches.
	m := perf.NewDefault()
	bar := perf.NewHWBarrier(threads)
	eaA := make([]uint32, threads)
	eaB := make([]uint32, threads)
	eaC := make([]uint32, threads)
	for p := 0; p < threads; p++ {
		g := arch.InterestGroup{Mode: arch.GroupOwn}
		eaA[p] = m.MustAlloc(8*perThread, g)
		eaB[p] = m.MustAlloc(8*perThread, g)
		eaC[p] = m.MustAlloc(8*perThread, g)
	}
	var start, end uint64
	err = m.SpawnN(threads, func(th *perf.T, p int) {
		for rep := 0; rep < 2; rep++ {
			th.HWBarrier(bar)
			if p == 0 && rep == 1 {
				start = th.Now()
			}
			for i := 0; i < perThread; i++ {
				b := th.LoadF64(eaB[p] + uint32(8*i))
				c := th.LoadF64(eaC[p] + uint32(8*i))
				v := th.FMA(b, c)
				th.StoreF64(eaA[p]+uint32(8*i), v)
				th.Work(4) // pointer bumps and loop branch
			}
		}
		th.HWBarrier(bar)
		if p == 0 {
			end = th.Now()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	perfCycles := end - start
	isaCycles := isaRes.BestCycles

	ratio := float64(perfCycles) / float64(isaCycles)
	if ratio < 0.6 || ratio > 1.7 {
		t.Errorf("frontends disagree: ISA %d cycles vs timing runtime %d (ratio %.2f)",
			isaCycles, perfCycles, ratio)
	}
}
