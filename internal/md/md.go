// Package md implements the molecular dynamics workload the paper's
// Section 5 names as a target application for Cyclops (the Blue Gene
// protein-science mission; reference [4] of the paper demonstrates MD
// scalability on this architecture).
//
// The simulation is classical NVE molecular dynamics: Lennard-Jones
// particles in a periodic box, a cell list for O(n) neighbour finding,
// and velocity-Verlet integration. Threads own contiguous cell ranges;
// every phase ends in a barrier. Like the SPLASH-2 kernels it runs on the
// direct-execution timing runtime, so force loops charge loads and fused
// multiply-adds against the simulated chip.
package md

import (
	"fmt"
	"math"

	"cyclops/internal/isa"
	"cyclops/internal/perf"
	"cyclops/internal/splash"
)

// Opts configures a run.
type Opts struct {
	splash.Config
	// NParticles is the particle count; Steps the time steps (default 5).
	NParticles int
	Steps      int
	// Density sets the box size: L = (N/Density)^(1/3) (default 0.8).
	Density float64
	// Dt is the integration step (default 0.002).
	Dt float64
	// State, when non-nil, supplies and receives particle state.
	State *State
}

// State is the particle system.
type State struct {
	Pos, Vel, Force [][3]float64
	Box             float64
}

// Cutoff is the LJ interaction range in reduced units.
const Cutoff = 2.5

// Run executes the simulation and returns timing plus the final state.
func Run(opts Opts) (*splash.Result, *State, error) {
	n := opts.NParticles
	if n < 2 {
		return nil, nil, fmt.Errorf("md: need at least 2 particles, got %d", n)
	}
	steps := opts.Steps
	if steps == 0 {
		steps = 5
	}
	density := opts.Density
	if density == 0 {
		density = 0.8
	}
	dt := opts.Dt
	if dt == 0 {
		dt = 0.002
	}
	st := opts.State
	if st == nil {
		st = Lattice(n, density, 23)
	}
	if len(st.Pos) != n {
		return nil, nil, fmt.Errorf("md: state has %d particles, want %d", len(st.Pos), n)
	}
	cellsPerSide := int(st.Box / Cutoff)
	if cellsPerSide < 1 {
		cellsPerSide = 1
	}
	if opts.Threads > cellsPerSide*cellsPerSide*cellsPerSide {
		return nil, nil, fmt.Errorf("md: %d threads exceed %d cells", opts.Threads, cellsPerSide*cellsPerSide*cellsPerSide)
	}

	chipless := opts.Config
	mach, err := newMachine(&chipless)
	if err != nil {
		return nil, nil, err
	}
	eaPos := mach.SharedAlloc(32 * n) // padded particle records
	eaCells := mach.SharedAlloc(16 * cellsPerSide * cellsPerSide * cellsPerSide)
	bar := newBarrier(mach, opts.Threads, opts.Barrier)

	sim := &mdSim{st: st, n: n, cells: cellsPerSide, dt: dt}
	T := opts.Threads

	err = mach.SpawnN(T, func(t *perf.T, p int) {
		for s := 0; s < steps; s++ {
			// Phase 1: thread 0 rebuilds the cell list (cheap binning).
			if p == 0 {
				sim.binParticles()
				t.LoadBlock(eaPos, n, 8, 32)
				t.Work(4 * n)
				t.StoreBlock(eaCells, len(sim.heads), 4, 16)
			}
			bar.wait(t, p)

			// Phase 2: forces over my cell range.
			nc := len(sim.heads)
			lo, hi := cellSpan(nc, p, T)
			for c := lo; c < hi; c++ {
				pairs := sim.cellForces(c)
				if pairs == 0 {
					continue
				}
				// Per pair: load the partner, ~12 multiply-add class
				// ops (dr, r^2, NR reciprocal powers, accumulate).
				t.LoadBlock(eaPos, minI(pairs, 64), 8, 32)
				t.FPBlock(isa.PipeBoth, 12*pairs)
				t.Work(3 * pairs)
			}
			bar.wait(t, p)

			// Phase 3: velocity-Verlet integration of my particles.
			plo, phi := cellSpan(n, p, T)
			v := t.LoadBlock(eaPos+uint32(32*plo), phi-plo, 8, 32)
			sim.integrate(plo, phi)
			f := t.FPBlock(isa.PipeBoth, 9*(phi-plo), v)
			t.StoreBlock(eaPos+uint32(32*plo), phi-plo, 8, 32, f)
			bar.wait(t, p)
		}
	})
	if err != nil {
		return nil, nil, err
	}
	if err := mach.Run(); err != nil {
		return nil, nil, err
	}
	res := resultFor(opts.Threads, n, steps, mach)
	return res, st, nil
}

// Lattice places n particles on a cubic lattice with small deterministic
// velocity noise (net momentum removed).
func Lattice(n int, density float64, seed uint32) *State {
	box := math.Cbrt(float64(n) / density)
	side := int(math.Ceil(math.Cbrt(float64(n))))
	st := &State{
		Pos:   make([][3]float64, n),
		Vel:   make([][3]float64, n),
		Force: make([][3]float64, n),
		Box:   box,
	}
	s := seed
	next := func() float64 {
		s = s*1664525 + 1013904223
		return float64(s>>8)/float64(1<<24) - 0.5
	}
	spacing := box / float64(side)
	var mom [3]float64
	for i := 0; i < n; i++ {
		st.Pos[i] = [3]float64{
			(float64(i%side) + 0.5) * spacing,
			(float64(i/side%side) + 0.5) * spacing,
			(float64(i/(side*side)) + 0.5) * spacing,
		}
		for d := 0; d < 3; d++ {
			st.Vel[i][d] = next() * 0.5
			mom[d] += st.Vel[i][d]
		}
	}
	for i := 0; i < n; i++ {
		for d := 0; d < 3; d++ {
			st.Vel[i][d] -= mom[d] / float64(n)
		}
	}
	return st
}

// Energy returns kinetic, potential and total energy (for tests: NVE
// conserves the total).
func Energy(st *State) (kin, pot, total float64) {
	n := len(st.Pos)
	for i := 0; i < n; i++ {
		for d := 0; d < 3; d++ {
			kin += 0.5 * st.Vel[i][d] * st.Vel[i][d]
		}
	}
	cut2 := Cutoff * Cutoff
	shift := ljPotential(cut2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			r2 := dist2(st, i, j)
			if r2 < cut2 {
				pot += ljPotential(r2) - shift
			}
		}
	}
	return kin, pot, kin + pot
}

// Momentum returns the net momentum vector (conserved exactly).
func Momentum(st *State) [3]float64 {
	var m [3]float64
	for i := range st.Vel {
		for d := 0; d < 3; d++ {
			m[d] += st.Vel[i][d]
		}
	}
	return m
}

// --- internals ---------------------------------------------------------------

type mdSim struct {
	st    *State
	n     int
	cells int
	dt    float64
	heads []int
	next  []int
}

func (s *mdSim) cellIndex(pos [3]float64) int {
	c := s.cells
	ix := int(pos[0] / s.st.Box * float64(c))
	iy := int(pos[1] / s.st.Box * float64(c))
	iz := int(pos[2] / s.st.Box * float64(c))
	clamp := func(v int) int {
		if v < 0 {
			return 0
		}
		if v >= c {
			return c - 1
		}
		return v
	}
	return (clamp(iz)*c+clamp(iy))*c + clamp(ix)
}

func (s *mdSim) binParticles() {
	nc := s.cells * s.cells * s.cells
	if s.heads == nil {
		s.heads = make([]int, nc)
		s.next = make([]int, s.n)
	}
	for i := range s.heads {
		s.heads[i] = -1
	}
	for i := 0; i < s.n; i++ {
		c := s.cellIndex(s.st.Pos[i])
		s.next[i] = s.heads[c]
		s.heads[c] = i
	}
	// Forces accumulate fresh each step.
	for i := range s.st.Force {
		s.st.Force[i] = [3]float64{}
	}
}

// cellForces computes forces on the particles of cell c against all
// neighbouring cells, returning the pair count evaluated. Each ordered
// (cell, neighbour) pair is computed once per owning cell, accumulating
// only onto cell c's particles so parallel cell ranges never race.
func (s *mdSim) cellForces(c int) int {
	cc := s.cells
	cz := c / (cc * cc)
	cy := c / cc % cc
	cx := c % cc
	cut2 := Cutoff * Cutoff
	pairs := 0
	// With fewer than three cells per side the periodic wrap aliases
	// offsets onto the same cell; deduplicate so pairs count once.
	var nbs []int
	for dz := -1; dz <= 1; dz++ {
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				nb := (wrap(cz+dz, cc)*cc+wrap(cy+dy, cc))*cc + wrap(cx+dx, cc)
				dup := false
				for _, seen := range nbs {
					if seen == nb {
						dup = true
						break
					}
				}
				if !dup {
					nbs = append(nbs, nb)
				}
			}
		}
	}
	for _, nb := range nbs {
		for i := s.heads[c]; i >= 0; i = s.next[i] {
			for j := s.heads[nb]; j >= 0; j = s.next[j] {
				if i == j {
					continue
				}
				r2, dr := minImage(s.st, i, j)
				if r2 >= cut2 || r2 == 0 {
					continue
				}
				pairs++
				f := ljForceOverR(r2)
				for d := 0; d < 3; d++ {
					s.st.Force[i][d] += f * dr[d]
				}
			}
		}
	}
	return pairs
}

func (s *mdSim) integrate(lo, hi int) {
	dt := s.dt
	for i := lo; i < hi; i++ {
		for d := 0; d < 3; d++ {
			s.st.Vel[i][d] += s.st.Force[i][d] * dt
			p := s.st.Pos[i][d] + s.st.Vel[i][d]*dt
			// Periodic wrap.
			for p < 0 {
				p += s.st.Box
			}
			for p >= s.st.Box {
				p -= s.st.Box
			}
			s.st.Pos[i][d] = p
		}
	}
}

func wrap(v, n int) int { return (v%n + n) % n }

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// minImage returns the squared minimum-image distance and displacement
// from particle i to j.
func minImage(st *State, i, j int) (float64, [3]float64) {
	var dr [3]float64
	var r2 float64
	for d := 0; d < 3; d++ {
		x := st.Pos[j][d] - st.Pos[i][d]
		if x > st.Box/2 {
			x -= st.Box
		} else if x < -st.Box/2 {
			x += st.Box
		}
		dr[d] = x
		r2 += x * x
	}
	return r2, dr
}

func dist2(st *State, i, j int) float64 {
	r2, _ := minImage(st, i, j)
	return r2
}

// ljPotential is 4(r^-12 - r^-6).
func ljPotential(r2 float64) float64 {
	inv6 := 1 / (r2 * r2 * r2)
	return 4 * (inv6*inv6 - inv6)
}

// ljForceOverR is F/r such that force = (F/r) * dr, pointing from i away
// from j for repulsion. With dr = pos[j]-pos[i], the conventional LJ
// force on i is -dU/dr * (dr/r) = -(24/r^2)(2 r^-12 - r^-6) * dr.
func ljForceOverR(r2 float64) float64 {
	inv2 := 1 / r2
	inv6 := inv2 * inv2 * inv2
	return -24 * inv2 * inv6 * (2*inv6 - 1)
}
