package md

import (
	"math"
	"testing"

	"cyclops/internal/splash"
)

func TestEnergyConservation(t *testing.T) {
	const n = 216 // 6^3 lattice
	st := Lattice(n, 0.8, 5)
	_, _, before := Energy(st)
	_, st2, err := Run(Opts{
		Config:     cfg(4),
		NParticles: n, Steps: 40, Dt: 0.002, State: st,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, _, after := Energy(st2)
	drift := math.Abs(after-before) / math.Abs(before)
	if drift > 0.05 {
		t.Errorf("energy drifted %.2f%% over 40 steps (%.4f -> %.4f)", 100*drift, before, after)
	}
}

func TestMomentumConservation(t *testing.T) {
	const n = 125
	st := Lattice(n, 0.7, 9)
	_, st2, err := Run(Opts{Config: cfg(3), NParticles: n, Steps: 20, State: st})
	if err != nil {
		t.Fatal(err)
	}
	m := Momentum(st2)
	for d := 0; d < 3; d++ {
		if math.Abs(m[d]) > 1e-9 {
			t.Errorf("net momentum axis %d = %g, want ~0", d, m[d])
		}
	}
}

func TestThreadInvariance(t *testing.T) {
	const n = 125
	s1 := Lattice(n, 0.8, 1)
	s2 := Lattice(n, 0.8, 1)
	if _, _, err := Run(Opts{Config: cfg(1), NParticles: n, Steps: 5, State: s1}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Run(Opts{Config: cfg(8), NParticles: n, Steps: 5, State: s2}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for d := 0; d < 3; d++ {
			if math.Abs(s1.Pos[i][d]-s2.Pos[i][d]) > 1e-10 {
				t.Fatalf("trajectories diverge at particle %d", i)
			}
		}
	}
}

func TestForcesMatchDirectSum(t *testing.T) {
	// One step with dt=0 leaves positions alone but fills Force; compare
	// against a brute-force evaluation.
	const n = 64
	st := Lattice(n, 0.3, 3)
	ref := directForces(st)
	_, st2, err := Run(Opts{Config: cfg(2), NParticles: n, Steps: 1, Dt: 1e-12, State: st})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for d := 0; d < 3; d++ {
			if math.Abs(st2.Force[i][d]-ref[i][d]) > 1e-8 {
				t.Fatalf("particle %d axis %d: %g vs %g", i, d, st2.Force[i][d], ref[i][d])
			}
		}
	}
}

func directForces(st *State) [][3]float64 {
	n := len(st.Pos)
	out := make([][3]float64, n)
	cut2 := Cutoff * Cutoff
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			r2, dr := minImage(st, i, j)
			if r2 >= cut2 || r2 == 0 {
				continue
			}
			f := ljForceOverR(r2)
			for d := 0; d < 3; d++ {
				out[i][d] += f * dr[d]
			}
		}
	}
	return out
}

func TestScaling(t *testing.T) {
	const n = 1000
	base, _, err := Run(Opts{Config: cfg(1), NParticles: n, Steps: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, _, err := Run(Opts{Config: cfg(16), NParticles: n, Steps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s := par.Speedup(base); s < 3.5 {
		t.Errorf("16-thread MD speedup = %.2f, want > 3.5", s)
	}
}

func TestValidation(t *testing.T) {
	if _, _, err := Run(Opts{Config: cfg(1), NParticles: 1}); err == nil {
		t.Error("single particle accepted")
	}
	if _, _, err := Run(Opts{Config: cfg(125), NParticles: 64, Density: 0.9}); err == nil {
		t.Error("more threads than cells accepted")
	}
}

func TestLatticeSetup(t *testing.T) {
	st := Lattice(100, 0.8, 7)
	if len(st.Pos) != 100 || st.Box <= 0 {
		t.Fatal("lattice malformed")
	}
	m := Momentum(st)
	for d := 0; d < 3; d++ {
		if math.Abs(m[d]) > 1e-9 {
			t.Errorf("initial momentum axis %d = %g", d, m[d])
		}
	}
	for i := range st.Pos {
		for d := 0; d < 3; d++ {
			if st.Pos[i][d] < 0 || st.Pos[i][d] >= st.Box {
				t.Fatalf("particle %d outside box", i)
			}
		}
	}
}

func TestRepulsionPushesApart(t *testing.T) {
	// Two particles closer than the LJ minimum repel: force on i points
	// away from j.
	st := &State{
		Pos:   [][3]float64{{1, 1, 1}, {2, 1, 1}},
		Vel:   make([][3]float64, 2),
		Force: make([][3]float64, 2),
		Box:   10,
	}
	f := directForces(st)
	if f[0][0] >= 0 || f[1][0] <= 0 {
		t.Errorf("repulsive pair forces wrong: %v %v", f[0], f[1])
	}
}

func cfg(threads int) splash.Config {
	return splash.Config{Threads: threads}
}
