package md

import (
	"fmt"

	"cyclops/internal/arch"
	"cyclops/internal/core"
	"cyclops/internal/perf"
	"cyclops/internal/splash"
)

// newMachine mirrors the splash kernels' machine construction.
func newMachine(c *splash.Config) (*perf.Machine, error) {
	chip := c.Chip
	if chip == nil {
		chip = core.MustNew(arch.Default())
	}
	if c.Threads < 1 || c.Threads > chip.Cfg.WorkerThreads() {
		return nil, fmt.Errorf("md: %d threads out of range (1..%d)", c.Threads, chip.Cfg.WorkerThreads())
	}
	m := perf.New(chip)
	m.Balanced = c.Balanced
	return m, nil
}

// mdBarrier adapts the two barrier implementations.
type mdBarrier struct {
	hw *perf.HWBarrier
	sw *perf.SWBarrier
}

func newBarrier(m *perf.Machine, n int, kind splash.BarrierKind) *mdBarrier {
	if kind == splash.SW {
		return &mdBarrier{sw: perf.NewSWBarrier(m, n, 4)}
	}
	return &mdBarrier{hw: perf.NewHWBarrier(n)}
}

func (b *mdBarrier) wait(t *perf.T, index int) {
	if b.sw != nil {
		t.SWBarrier(b.sw, index)
	} else {
		t.HWBarrier(b.hw)
	}
}

// cellSpan splits n items across nThreads, balancing remainders.
func cellSpan(n, p, nThreads int) (lo, hi int) {
	base := n / nThreads
	rem := n % nThreads
	lo = p*base + minI(p, rem)
	hi = lo + base
	if p < rem {
		hi++
	}
	return lo, hi
}

// resultFor packages the standard metrics.
func resultFor(threads, n, steps int, m *perf.Machine) *splash.Result {
	run, stall := m.TotalRunStall()
	return &splash.Result{
		Name:    "MD",
		Threads: threads,
		Problem: fmt.Sprintf("%d particles, %d steps", n, steps),
		Cycles:  m.Elapsed(),
		Run:     run,
		Stall:   stall,
	}
}
