package harness

import (
	"strconv"
	"strings"
	"testing"

	"cyclops/internal/obs"
)

func TestParseScale(t *testing.T) {
	if s, err := ParseScale("full"); err != nil || s != Full {
		t.Error("full not parsed")
	}
	if s, err := ParseScale(""); err != nil || s != Small {
		t.Error("default not Small")
	}
	if _, err := ParseScale("bogus"); err == nil {
		t.Error("bogus scale accepted")
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{ID: "x", Title: "demo", Columns: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	tab.Note("note %d", 7)
	var sb strings.Builder
	tab.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"== x: demo ==", "a", "bb", "# note 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
	csv := tab.CSV()
	if csv != "a,bb\n1,2\n" {
		t.Errorf("CSV = %q", csv)
	}
}

func TestExperimentRegistry(t *testing.T) {
	exps := Experiments()
	want := []string{"table1", "table2", "fig3", "fig4a", "fig4b", "fig5a", "fig5b", "fig5c", "fig5d", "fig6a", "fig6b", "fig7a", "fig7b", "microbarrier", "breakdown", "profile", "matrix", "apps", "fault", "mesh"}
	if len(exps) != len(want) {
		t.Fatalf("%d experiments, want %d", len(exps), len(want))
	}
	for i, id := range want {
		if exps[i].ID != id {
			t.Errorf("experiment %d = %s, want %s", i, exps[i].ID, id)
		}
		if _, ok := Lookup(id); !ok {
			t.Errorf("Lookup(%q) failed", id)
		}
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("Lookup accepted unknown id")
	}
}

func cell(t *testing.T, tab *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(tab.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q not numeric", row, col, tab.Rows[row][col])
	}
	return v
}

func TestTable1AndTable2(t *testing.T) {
	t1, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(t1.Rows) != 7 {
		t.Errorf("table 1 has %d rows, want 7 modes", len(t1.Rows))
	}
	t2, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(t2.Rows) != 12 {
		t.Errorf("table 2 has %d rows, want 12", len(t2.Rows))
	}
}

func TestFig4aShape(t *testing.T) {
	tab, err := Fig4a(Small)
	if err != nil {
		t.Fatal(err)
	}
	// In-cache (small) beats out-of-cache (large) for every kernel.
	last := len(tab.Rows) - 1
	for col := 1; col <= 4; col++ {
		small, large := cell(t, tab, 0, col), cell(t, tab, last, col)
		if small <= large {
			t.Errorf("%s: in-cache %.0f MB/s not above out-of-cache %.0f", tab.Columns[col], small, large)
		}
	}
}

func TestFig5LocalBeatsShared(t *testing.T) {
	shared, err := Fig5('a', Small)
	if err != nil {
		t.Fatal(err)
	}
	local, err := Fig5('c', Small)
	if err != nil {
		t.Fatal(err)
	}
	// Small-vector copy: local-cache mode wins (paper: up to 60%).
	if l, s := cell(t, local, 0, 1), cell(t, shared, 0, 1); l <= s {
		t.Errorf("local %.1f GB/s not above shared %.1f for small vectors", l, s)
	}
}

func TestFig5UnrollBeatsRolled(t *testing.T) {
	rolled, err := Fig5('c', Small)
	if err != nil {
		t.Fatal(err)
	}
	unrolled, err := Fig5('d', Small)
	if err != nil {
		t.Fatal(err)
	}
	if u, r := cell(t, unrolled, 0, 1), cell(t, rolled, 0, 1); u <= r {
		t.Errorf("unrolled %.1f GB/s not above rolled %.1f for small vectors", u, r)
	}
}

func TestFig6aSaturates(t *testing.T) {
	tab, err := Fig6a(Small)
	if err != nil {
		t.Fatal(err)
	}
	// Bandwidth grows with threads and the largest count beats one
	// thread by a wide margin.
	first, last := cell(t, tab, 0, 4), cell(t, tab, len(tab.Rows)-1, 4)
	if last < 8*first {
		t.Errorf("triad bandwidth went %.1f -> %.1f GB/s across the sweep", first, last)
	}
}

func TestFig6bReference(t *testing.T) {
	tab, err := Fig6b()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 5 {
		t.Fatal("reference series too short")
	}
	// Monotone growth with processors.
	prev := 0.0
	for i := range tab.Rows {
		v := cell(t, tab, i, 4)
		if v < prev {
			t.Errorf("origin triad series not monotone at row %d", i)
		}
		prev = v
	}
}

func TestFig7HardwareWins(t *testing.T) {
	tab, err := Fig7(256, Small)
	if err != nil {
		t.Fatal(err)
	}
	last := len(tab.Rows) - 1
	total := cell(t, tab, last, 1)
	stall := cell(t, tab, last, 3)
	if total >= 0 {
		t.Errorf("hw barrier total change = %+.1f%%, want negative", total)
	}
	if stall >= 0 {
		t.Errorf("hw barrier stall change = %+.1f%%, want negative", stall)
	}
}

func TestFig3Speedups(t *testing.T) {
	tab, err := Fig3(Small)
	if err != nil {
		t.Fatal(err)
	}
	// The one-thread row is all 1.00; the 16-thread row shows real
	// speedup for every kernel.
	for col := 1; col < len(tab.Columns); col++ {
		if v := cell(t, tab, 0, col); v < 0.99 || v > 1.01 {
			t.Errorf("%s: 1-thread speedup = %v", tab.Columns[col], v)
		}
		if tab.Rows[2][col] == "-" {
			continue
		}
		if v := cell(t, tab, 2, col); v < 2 {
			t.Errorf("%s: 16-thread speedup = %v, want > 2", tab.Columns[col], v)
		}
	}
}

func TestMicroBarrier(t *testing.T) {
	tab, err := MicroBarrier(Small)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tab.Rows {
		hw, sw := cell(t, tab, i, 1), cell(t, tab, i, 2)
		if hw >= sw {
			t.Errorf("row %d: hw barrier (%v cycles) not cheaper than sw (%v)", i, hw, sw)
		}
	}
}

func TestBreakdownShares(t *testing.T) {
	if !obs.Enabled {
		t.Skip("counters compiled out")
	}
	tab, err := Breakdown(Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("%d rows, want 3 STREAM + 2 FFT", len(tab.Rows))
	}
	// Columns: workload, engine, threads, run %, 8 reason %, 4 mem-wait
	// attribution counts, cycles.
	if len(tab.Columns) != 17 {
		t.Fatalf("%d columns, want 17", len(tab.Columns))
	}
	if got := tab.Columns[12]; got != "w:port" {
		t.Fatalf("column 12 = %q, want w:port", got)
	}
	for i := range tab.Rows {
		sum := 0.0
		for col := 3; col <= 11; col++ {
			sum += cell(t, tab, i, col)
		}
		// Run share plus every stall share covers all accounted cycles
		// (rounding each cell to 0.1% leaves at most ±0.4 slack).
		if sum < 99.5 || sum > 100.5 {
			t.Errorf("row %d shares sum to %.1f%%, want 100%%", i, sum)
		}
	}
	// The sw-barrier FFT row spends real time in barrier stalls; the
	// hw-barrier row spends none (spinning counts as run cycles).
	hwRow, swRow := 3, 4
	barrierCol := 9 // "barrier %"
	if got := tab.Columns[barrierCol]; got != "barrier %" {
		t.Fatalf("column %d = %q, want barrier %%", barrierCol, got)
	}
	if v := cell(t, tab, swRow, barrierCol); v <= 0 {
		t.Errorf("sw-barrier FFT barrier share = %v%%, want > 0", v)
	}
	if v := cell(t, tab, hwRow, barrierCol); v != 0 {
		t.Errorf("hw-barrier FFT barrier share = %v%%, want 0", v)
	}
}

func TestAppsExtension(t *testing.T) {
	tab, err := Apps(Small)
	if err != nil {
		t.Fatal(err)
	}
	// 16 threads balanced: every application shows real speedup.
	last := len(tab.Rows) - 1
	for col := 1; col <= 3; col++ {
		if v := cell(t, tab, last, col); v < 3 {
			t.Errorf("%s: 16-thread speedup = %v, want > 3", tab.Columns[col], v)
		}
	}
}

func TestFaultExtension(t *testing.T) {
	tab, err := Fault(Small)
	if err != nil {
		t.Fatal(err)
	}
	// The healthy row is 100%; degraded rows stay above half.
	if v := cell(t, tab, 0, 5); v != 100.0 {
		t.Errorf("healthy baseline = %v%%", v)
	}
	for i := 1; i < len(tab.Rows); i++ {
		if v := cell(t, tab, i, 5); v < 40 || v > 130 {
			t.Errorf("row %d retains %v%% of bandwidth", i, v)
		}
	}
}

func TestMeshExtension(t *testing.T) {
	tab, err := Mesh(Small)
	if err != nil {
		t.Fatal(err)
	}
	// Aggregate throughput grows with cells; comm share stays bounded.
	first, last := cell(t, tab, 0, 4), cell(t, tab, len(tab.Rows)-1, 4)
	if last < 10*first {
		t.Errorf("weak scaling failed: %v -> %v Gflop/s", first, last)
	}
	for i := 1; i < len(tab.Rows); i++ {
		if v := cell(t, tab, i, 3); v > 60 {
			t.Errorf("row %d spends %v%% on communication", i, v)
		}
	}
}
