package harness

import (
	"fmt"

	"cyclops/internal/harness/sweep"
	"cyclops/internal/kernel"
	"cyclops/internal/obs"
	"cyclops/internal/prof"
	"cyclops/internal/splash"
	"cyclops/internal/stream"
)

// Profile regenerates the guest-profiler hot-spot table on both engines:
// STREAM Copy through the instruction-level simulator (symbols from the
// assembler's line table) and the FFT kernel with hardware and software
// barriers through the direct-execution runtime (symbols from the
// T.Region phase annotations). Each workload contributes its top-K
// symbols with the per-stall-reason cycle split, so the table shows not
// just where the guest program spends time but why it waits there.
func Profile(s Scale) (*Table, error) {
	const topK = 5
	streamThreads, streamN := 4, 4000
	fftN, fftThreads := 4096, 16
	every := uint64(64)
	if s == Full {
		streamThreads, streamN = 16, 16000
		fftN, fftThreads = 65536, 64
		every = 256
	}

	cols := []string{"workload", "engine", "symbol", "cycles", "share %", "run %"}
	for _, r := range obs.ReasonNames() {
		cols = append(cols, r+" %")
	}
	t := &Table{
		ID:      "profile",
		Title:   fmt.Sprintf("Guest profiler hot spots (top %d symbols, sampled every %d cycles)", topK, every),
		Columns: cols,
	}
	if !obs.Enabled {
		// The sampler compiles out with the counters, so there is
		// nothing to report; render an empty table rather than failing
		// so registry-wide sweeps keep working under cyclops_noobs.
		t.Note("profiler disabled: built with cyclops_noobs (obs.Enabled = false)")
		return t, nil
	}

	type point struct {
		workload, engine string
		run              func() (*prof.Report, error)
	}
	pts := []point{
		{"STREAM Copy", "sim", func() (*prof.Report, error) {
			r, err := stream.Run(stream.Params{
				Kernel: stream.Copy, Threads: streamThreads, N: streamN,
				Local: true, Reps: 2, ProfileEvery: every,
			}, kernel.Sequential)
			if err != nil {
				return nil, err
			}
			return r.Profile.Report(r.Prog), nil
		}},
	}
	for _, kind := range []splash.BarrierKind{splash.HW, splash.SW} {
		kind := kind
		pts = append(pts, point{"FFT " + kind.String() + " barrier", "perf", func() (*prof.Report, error) {
			r, err := splash.RunFFT(splash.FFTOpts{
				Config: splash.Config{Threads: fftThreads, Barrier: kind, ProfileEvery: every},
				N:      fftN,
			})
			if err != nil {
				return nil, err
			}
			return r.Profile.Report(r.Regions), nil
		}})
	}

	reports, err := sweep.Map(pts, func(p point) (*prof.Report, error) { return p.run() })
	if err != nil {
		return nil, err
	}
	for i, p := range pts {
		rep := reports[i]
		var total uint64
		for _, row := range rep.Rows {
			total += row.Cycles
		}
		pct := func(v, of uint64) string {
			if of == 0 {
				return "-"
			}
			return f1(100 * float64(v) / float64(of))
		}
		for _, row := range rep.Top(topK) {
			cells := []string{
				p.workload, p.engine, row.Name,
				fmt.Sprintf("%d", row.Cycles), pct(row.Cycles, total),
				pct(row.Kinds[prof.KindRun], row.Cycles),
			}
			for r := 0; r < int(obs.NumStallReasons); r++ {
				cells = append(cells, pct(row.Kinds[prof.StallKind(obs.StallReason(r))], row.Cycles))
			}
			t.AddRow(cells...)
		}
	}
	t.Note("cycles = samples x %d-cycle interval attributed to the symbol; share %% is of the workload's sampled total", every)
	t.Note("run/stall columns split each symbol's cycles by the ledger charge kind at the sample")
	t.Note("sim symbols come from the assembler line table, perf symbols from T.Region phase annotations")
	return t, nil
}
