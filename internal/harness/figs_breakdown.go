package harness

import (
	"fmt"

	"cyclops/internal/harness/sweep"
	"cyclops/internal/job/workloads"
	"cyclops/internal/kernel"
	"cyclops/internal/obs"
	"cyclops/internal/splash"
	"cyclops/internal/stream"
)

// Breakdown regenerates the Figure-7-style run/stall decomposition
// directly from the stall-reason counters, on both engines: STREAM Copy
// through the instruction-level simulator and the FFT kernel (hardware
// and software barriers) through the direct-execution runtime. Each cell
// is the share of total accounted cycles (run + stall); the per-reason
// shares and the run share sum to 100%.
func Breakdown(s Scale) (*Table, error) {
	streamThreads := []int{1, 4, 16}
	fftN, fftThreads := 4096, 16
	if s == Full {
		streamThreads = []int{1, 4, 16, 64, 126}
		fftN, fftThreads = 65536, 64
	}

	cols := []string{"workload", "engine", "threads", "run %"}
	for _, r := range obs.ReasonNames() {
		cols = append(cols, r+" %")
	}
	for _, k := range obs.MemWaitNames() {
		cols = append(cols, "w:"+k)
	}
	cols = append(cols, "cycles")
	t := &Table{
		ID:      "breakdown",
		Title:   "Run/stall decomposition by reason (% of accounted cycles)",
		Columns: cols,
	}

	// bd is one workload's accounting; cycles is the run+stall total the
	// percentages are taken over.
	type bd struct {
		run, stall uint64
		stalls     obs.Breakdown
		memWaits   obs.MemWaits
	}
	type point struct {
		workload, engine string
		threads          int
		run              func() (bd, error)
	}
	pts := make([]point, 0, len(streamThreads)+2)
	for _, tc := range streamThreads {
		tc := tc
		pts = append(pts, point{"STREAM Copy", "sim", tc, func() (bd, error) {
			p := stream.Params{
				Kernel: stream.Copy, Threads: tc, N: tc * 1000, Local: true, Reps: 2,
			}
			spec, err := workloads.StreamSpec(p, kernel.Sequential)
			if err != nil {
				return bd{}, err
			}
			r, err := runStreamJob(spec, p)
			if err != nil {
				return bd{}, err
			}
			return bd{r.Run, r.Stall, r.Stalls, r.MemWaits}, nil
		}})
	}
	for _, kind := range []splash.BarrierKind{splash.HW, splash.SW} {
		kind := kind
		pts = append(pts, point{"FFT " + kind.String() + " barrier", "perf", fftThreads, func() (bd, error) {
			spec, err := workloads.SplashSpec(workloads.SplashArgs{
				Kernel: "fft", Threads: fftThreads, Barrier: kind.String(), N: fftN,
			})
			if err != nil {
				return bd{}, err
			}
			r, err := runSplashJob(spec)
			if err != nil {
				return bd{}, err
			}
			return bd{r.Run, r.Stall, r.Stalls, r.MemWaits}, nil
		}})
	}

	res, err := sweep.Map(pts, func(p point) (bd, error) { return p.run() })
	if err != nil {
		return nil, err
	}
	for i, p := range pts {
		r := res[i]
		if got := r.stalls.Total(); obs.Enabled && got != r.stall {
			return nil, fmt.Errorf("harness: %s (%s, %d threads): per-reason stalls sum to %d, legacy total is %d",
				p.workload, p.engine, p.threads, got, r.stall)
		}
		total := r.run + r.stall
		pct := func(v uint64) string {
			if total == 0 {
				return "-"
			}
			return f1(100 * float64(v) / float64(total))
		}
		row := []string{p.workload, p.engine, fmt.Sprintf("%d", p.threads), pct(r.run)}
		for _, v := range r.stalls {
			row = append(row, pct(v))
		}
		for _, v := range r.memWaits {
			row = append(row, fmt.Sprintf("%d", v))
		}
		row = append(row, fmt.Sprintf("%d", total))
		t.AddRow(row...)
	}
	t.Note("cycles = run+stall summed over all thread units; per-reason shares + run share = 100%%")
	t.Note("counters: dep = scoreboard, cacheport/bankconflict = memory system, fpu = quad FPU, icache = fetch, barrier = sw-barrier spin, sleep = kernel waits")
	t.Note("w:port/w:bank/w:fill/w:hop = per-access memory-wait cycles by location (timing ledger attribution; loads appear here even when the scoreboard books them as dep)")
	return t, nil
}
