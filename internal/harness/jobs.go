package harness

import (
	"cyclops/internal/job"
	"cyclops/internal/job/workloads"
	"cyclops/internal/resultcache"
	"cyclops/internal/splash"
	"cyclops/internal/stream"
)

// Runner executes every cacheable experiment point. The figure sweeps
// keep their own sweep.Map fan-out and call Runner.Run per point (Run
// is pool-free, so the nesting is safe); attaching a cache via UseCache
// makes repeated sweeps — re-runs, engine cross-checks, CI lanes —
// reuse earlier results instead of re-simulating. Tables are
// byte-identical either way: the Runner returns results decoded from
// the same canonical encoding on every path.
//
// Experiments that produce live profiler objects (profile) or mutate
// chips statefully (fault, mesh) stay on the direct path; their points
// are not content-addressable.
var Runner = job.NewRunner()

// UseCache attaches a result cache to the experiment runner.
func UseCache(c *resultcache.Cache) { Runner.Cache = c }

// runStreamJob executes one STREAM point through the job layer and
// rebuilds the stream result view.
func runStreamJob(spec *job.Spec, p stream.Params) (*stream.Result, error) {
	res, err := Runner.Run(spec)
	if err != nil {
		return nil, err
	}
	return workloads.StreamResult(p, res)
}

// runSplashJob executes one direct-execution point through the job
// layer and rebuilds the splash result view.
func runSplashJob(spec *job.Spec) (*splash.Result, error) {
	res, err := Runner.Run(spec)
	if err != nil {
		return nil, err
	}
	return workloads.SplashResult(res), nil
}
