package sweep

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestMapOrder checks that results come back in input order regardless of
// the order in which the points finish.
func TestMapOrder(t *testing.T) {
	defer SetWorkers(Workers())
	for _, workers := range []int{1, 2, 8} {
		SetWorkers(workers)
		in := make([]int, 100)
		for i := range in {
			in[i] = i
		}
		out, err := Map(in, func(p int) (int, error) { return p * p, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(out) != len(in) {
			t.Fatalf("workers=%d: got %d results, want %d", workers, len(out), len(in))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

// TestMapError checks that the reported error is the one a sequential run
// would stop at — the lowest input index — for every worker count.
func TestMapError(t *testing.T) {
	defer SetWorkers(Workers())
	errLow := errors.New("low")
	for _, workers := range []int{1, 4} {
		SetWorkers(workers)
		in := []int{0, 1, 2, 3, 4, 5, 6, 7}
		_, err := Map(in, func(p int) (int, error) {
			switch p {
			case 2:
				return 0, errLow
			case 6:
				return 0, fmt.Errorf("high")
			}
			return p, nil
		})
		if !errors.Is(err, errLow) {
			t.Fatalf("workers=%d: err = %v, want %v", workers, err, errLow)
		}
	}
}

// TestMapEmpty checks the degenerate inputs.
func TestMapEmpty(t *testing.T) {
	out, err := Map(nil, func(p int) (int, error) { return p, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("nil input: out=%v err=%v", out, err)
	}
	out, err = Map([]int{7}, func(p int) (int, error) { return p + 1, nil })
	if err != nil || len(out) != 1 || out[0] != 8 {
		t.Fatalf("single input: out=%v err=%v", out, err)
	}
}

// TestSetWorkers checks clamping and that the pool really bounds
// concurrency.
func TestSetWorkers(t *testing.T) {
	defer SetWorkers(Workers())
	SetWorkers(-3)
	if got := Workers(); got != 1 {
		t.Fatalf("Workers() after SetWorkers(-3) = %d, want 1", got)
	}
	SetWorkers(2)
	if got := Workers(); got != 2 {
		t.Fatalf("Workers() = %d, want 2", got)
	}
	var cur, peak atomic.Int32
	var mu sync.Mutex
	in := make([]int, 64)
	_, err := Map(in, func(p int) (int, error) {
		n := cur.Add(1)
		mu.Lock()
		if n > peak.Load() {
			peak.Store(n)
		}
		mu.Unlock()
		cur.Add(-1)
		return p, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak.Load() > 2 {
		t.Fatalf("observed %d concurrent points with a 2-worker pool", peak.Load())
	}
}

// TestMapSharedPool checks that two Maps running concurrently (as
// concurrent experiments do) share one token pool and both complete.
func TestMapSharedPool(t *testing.T) {
	defer SetWorkers(Workers())
	SetWorkers(3)
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			in := make([]int, 32)
			for i := range in {
				in[i] = i
			}
			out, err := Map(in, func(p int) (int, error) { return p + g, nil })
			if err == nil {
				for i, v := range out {
					if v != i+g {
						err = fmt.Errorf("goroutine %d: out[%d] = %d", g, i, v)
						break
					}
				}
			}
			errs[g] = err
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}
