// Package sweep fans independent experiment points across a worker pool.
//
// The paper's evaluation is a grid of deterministic simulations — sizes ×
// kernels × thread counts — and every point builds its own core.Chip, so
// points share no state and parallelize perfectly. Map preserves input
// order in its results, which keeps every rendered table byte-identical
// regardless of the worker count.
//
// The pool is process-wide: concurrently running experiments (cyclops-bench
// -all) share one token semaphore, so total simulation concurrency stays
// bounded by SetWorkers no matter how many sweeps are in flight. Map never
// nests — sweep callbacks must not call Map, or workers would starve
// waiting for tokens their callers hold.
package sweep

import (
	"runtime"
	"sync"
)

var (
	mu     sync.Mutex
	size   = runtime.GOMAXPROCS(0)
	tokens = make(chan struct{}, size)
)

// SetWorkers sizes the process-wide pool. n < 1 is clamped to 1; 1 makes
// every Map run sequentially in the calling goroutine.
func SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	mu.Lock()
	size = n
	tokens = make(chan struct{}, n)
	mu.Unlock()
}

// Workers returns the current pool size.
func Workers() int {
	mu.Lock()
	defer mu.Unlock()
	return size
}

func pool() chan struct{} {
	mu.Lock()
	defer mu.Unlock()
	return tokens
}

// Map runs fn over every point and returns the results in input order.
// With more than one worker the points run concurrently; the first error
// in input order is returned (the same error a sequential run would have
// stopped at, since the lowest-index failing point fails either way).
// With one worker Map degenerates to a plain sequential loop.
func Map[P, R any](points []P, fn func(P) (R, error)) ([]R, error) {
	out := make([]R, len(points))
	if Workers() <= 1 || len(points) <= 1 {
		for i := range points {
			r, err := fn(points[i])
			if err != nil {
				return nil, err
			}
			out[i] = r
		}
		return out, nil
	}
	errs := make([]error, len(points))
	sem := pool()
	var wg sync.WaitGroup
	for i := range points {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			out[i], errs[i] = fn(points[i])
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
