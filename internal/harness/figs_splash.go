package harness

import (
	"fmt"

	"cyclops/internal/harness/sweep"
	"cyclops/internal/job/workloads"
	"cyclops/internal/splash"
)

// fig3Sizes returns the per-kernel problem sizes.
func fig3Sizes(s Scale) (barnes, fft, fmm, lu, ocean, radix int) {
	if s == Full {
		return 2048, 65536, 4096, 512, 512, 524288
	}
	return 256, 4096, 1024, 128, 64, 16384
}

// fig3Threads returns the thread counts swept.
func fig3Threads(s Scale) []int {
	if s == Full {
		return []int{1, 2, 4, 8, 16, 32, 64, 126}
	}
	return []int{1, 4, 16}
}

// Fig3 reproduces the SPLASH-2 speedup curves.
func Fig3(s Scale) (*Table, error) {
	nBarnes, nFFT, nFMM, nLU, nOcean, nRadix := fig3Sizes(s)
	threads := fig3Threads(s)
	kernels := []struct {
		name string
		args func(t int) workloads.SplashArgs
		max  int // kernel-specific thread ceiling, 0 = none
	}{
		{"Barnes", func(t int) workloads.SplashArgs {
			return workloads.SplashArgs{Kernel: "barnes", Threads: t, Bodies: nBarnes, Steps: 1}
		}, 0},
		{"FFT", func(t int) workloads.SplashArgs {
			return workloads.SplashArgs{Kernel: "fft", Threads: t, N: nFFT}
		}, intSqrtOf(nFFT)},
		{"FMM", func(t int) workloads.SplashArgs {
			return workloads.SplashArgs{Kernel: "fmm", Threads: t, Bodies: nFMM}
		}, 0},
		{"LU", func(t int) workloads.SplashArgs {
			return workloads.SplashArgs{Kernel: "lu", Threads: t, N: nLU}
		}, 0},
		{"Ocean", func(t int) workloads.SplashArgs {
			return workloads.SplashArgs{Kernel: "ocean", Threads: t, N: nOcean}
		}, nOcean},
		{"Radix", func(t int) workloads.SplashArgs {
			return workloads.SplashArgs{Kernel: "radix", Threads: t, N: nRadix}
		}, 0},
	}

	cols := []string{"threads"}
	for _, k := range kernels {
		cols = append(cols, k.name)
	}
	t := &Table{ID: "fig3", Title: "SPLASH-2 parallel speedups", Columns: cols}

	// The whole kernel × thread-count grid — bases included — fans out
	// over the sweep pool; every point runs on its own chip.
	type cell struct{ ki, tc int }
	pts := make([]cell, 0, len(kernels)*(1+len(threads)))
	for i := range kernels {
		pts = append(pts, cell{i, 1})
	}
	for _, tc := range threads {
		for i, k := range kernels {
			if k.max != 0 && tc > k.max {
				continue
			}
			pts = append(pts, cell{i, tc})
		}
	}
	res, err := sweep.Map(pts, func(c cell) (*splash.Result, error) {
		spec, err := workloads.SplashSpec(kernels[c.ki].args(c.tc))
		if err != nil {
			return nil, fmt.Errorf("%s threads=%d: %w", kernels[c.ki].name, c.tc, err)
		}
		r, err := runSplashJob(spec)
		if err != nil {
			return nil, fmt.Errorf("%s threads=%d: %w", kernels[c.ki].name, c.tc, err)
		}
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	bases, rest := res[:len(kernels)], res[len(kernels):]
	for _, tc := range threads {
		row := []string{fmt.Sprintf("%d", tc)}
		for i, k := range kernels {
			if k.max != 0 && tc > k.max {
				row = append(row, "-")
				continue
			}
			row = append(row, f2(rest[0].Speedup(bases[i])))
			rest = rest[1:]
		}
		t.AddRow(row...)
	}
	t.Note("problem sizes: Barnes %d bodies, FFT %d pts, FMM %d charges, LU %d^2, Ocean %d^2, Radix %d keys",
		nBarnes, nFFT, nFMM, nLU, nOcean, nRadix)
	t.Note("FFT is bounded by the points-per-processor >= sqrt(n) constraint")
	return t, nil
}

func intSqrtOf(n int) int {
	r := 1
	for (r+1)*(r+1) <= n {
		r++
	}
	return r
}

// fig7Variant builds the two panels of Figure 7.
func fig7Variant(points int) func(Scale) (*Table, error) {
	return func(s Scale) (*Table, error) { return Fig7(points, s) }
}

// Fig7 compares hardware and software barriers on the FFT kernel,
// reporting the relative change in total, run and stall cycles (negative
// bars are improvements, as in the paper).
func Fig7(points int, s Scale) (*Table, error) {
	n := points
	if s == Small && n > 4096 {
		n = 4096
	}
	maxThreads := intSqrtOf(n)
	var threadCounts []int
	for tc := 2; tc <= maxThreads && tc <= 64; tc *= 2 {
		threadCounts = append(threadCounts, tc)
	}
	t := &Table{
		ID:      fmt.Sprintf("fig7-%d", points),
		Title:   fmt.Sprintf("HW vs SW barriers, %d-point FFT (%% change, negative = better)", n),
		Columns: []string{"threads", "total %", "run %", "stall %", "sw cycles", "hw cycles"},
	}
	// Two FFT runs per thread count — software and hardware barriers —
	// all independent, all fanned out together.
	type fftPoint struct {
		tc   int
		kind splash.BarrierKind
	}
	pts := make([]fftPoint, 0, 2*len(threadCounts))
	for _, tc := range threadCounts {
		pts = append(pts, fftPoint{tc, splash.SW}, fftPoint{tc, splash.HW})
	}
	res, err := sweep.Map(pts, func(p fftPoint) (*splash.Result, error) {
		spec, err := workloads.SplashSpec(workloads.SplashArgs{
			Kernel: "fft", Threads: p.tc, Barrier: p.kind.String(), N: n,
		})
		if err != nil {
			return nil, err
		}
		return runSplashJob(spec)
	})
	if err != nil {
		return nil, err
	}
	for i, tc := range threadCounts {
		sw, hw := res[2*i], res[2*i+1]
		pct := func(hwV, swV uint64) string {
			if swV == 0 {
				return "-"
			}
			return f1(100 * (float64(hwV) - float64(swV)) / float64(swV))
		}
		t.AddRow(fmt.Sprintf("%d", tc),
			pct(hw.Cycles, sw.Cycles), pct(hw.Run, sw.Run), pct(hw.Stall, sw.Stall),
			fmt.Sprintf("%d", sw.Cycles), fmt.Sprintf("%d", hw.Cycles))
	}
	t.Note("paper: run cycles rise (spinning on the SPR is cheap work), stalls drop sharply;")
	t.Note("total improves ~10%% for 256 points at 16 threads, ~5%% for 64K points at 64 threads")
	return t, nil
}

// MicroBarrier measures raw barrier cost: threads do nothing but
// synchronise, so the per-barrier latency is total/phases.
func MicroBarrier(s Scale) (*Table, error) {
	phases := 20
	counts := []int{2, 8, 32}
	if s == Full {
		counts = []int{2, 4, 8, 16, 32, 64, 126}
	}
	t := &Table{
		ID:      "microbarrier",
		Title:   "Barrier latency (cycles per barrier, no work between)",
		Columns: []string{"threads", "hw", "sw tree"},
	}
	type barrierPoint struct {
		n    int
		kind splash.BarrierKind
	}
	pts := make([]barrierPoint, 0, 2*len(counts))
	for _, n := range counts {
		pts = append(pts, barrierPoint{n, splash.HW}, barrierPoint{n, splash.SW})
	}
	res, err := sweep.Map(pts, func(p barrierPoint) (uint64, error) {
		spec, err := workloads.MicroBarrierSpec(workloads.MicroBarrierArgs{
			Threads: p.n, Barrier: p.kind.String(), Phases: phases,
		})
		if err != nil {
			return 0, err
		}
		r, err := Runner.Run(spec)
		if err != nil {
			return 0, err
		}
		// The workload reports total elapsed cycles; the table shows the
		// per-barrier cost.
		return r.Cycles / uint64(phases), nil
	})
	if err != nil {
		return nil, err
	}
	for i, n := range counts {
		t.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d", res[2*i]), fmt.Sprintf("%d", res[2*i+1]))
	}
	t.Note("hardware barrier cost is a small constant; the software tree grows with depth and memory contention")
	return t, nil
}
