package harness

import (
	"strings"
	"testing"

	"cyclops/internal/harness/sweep"
	"cyclops/internal/obs"
)

// The profile table must be byte-identical for any sweep worker count:
// every point builds its own chip and profiler, and the profiler merges
// per-thread buckets deterministically, so -parallel must never change a
// rendered byte.
func TestProfileTableDeterministicAcrossWorkers(t *testing.T) {
	if !obs.Enabled {
		t.Skip("observability compiled out")
	}
	old := sweep.Workers()
	defer sweep.SetWorkers(old)

	render := func(workers int) string {
		sweep.SetWorkers(workers)
		tbl, err := Profile(Small)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		tbl.Fprint(&sb)
		return sb.String()
	}
	serial := render(1)
	parallel := render(4)
	if serial != parallel {
		t.Errorf("profile table differs between 1 and 4 workers:\n--- serial ---\n%s--- parallel ---\n%s", serial, parallel)
	}
}

// The table's shape: every workload contributes rows, the hottest STREAM
// symbol is a generated loop label, the hottest FFT symbol is a kernel
// phase, and each row's run+stall percentages account for the symbol.
func TestProfileTableShape(t *testing.T) {
	if !obs.Enabled {
		t.Skip("observability compiled out")
	}
	tbl, err := Profile(Small)
	if err != nil {
		t.Fatal(err)
	}
	perWorkload := map[string][]string{}
	for _, row := range tbl.Rows {
		perWorkload[row[0]] = append(perWorkload[row[0]], row[2])
	}
	if len(perWorkload) != 3 {
		t.Fatalf("expected 3 workloads, got %d: %v", len(perWorkload), perWorkload)
	}
	for wl, syms := range perWorkload {
		if len(syms) < 3 {
			t.Errorf("%s: only %d symbols in the table", wl, len(syms))
		}
	}
	if syms := perWorkload["STREAM Copy"]; len(syms) > 0 && !strings.HasPrefix(syms[0], "loop") {
		t.Errorf("hottest STREAM symbol = %q, want a loop label", syms[0])
	}
	for _, wl := range []string{"FFT hw barrier", "FFT sw barrier"} {
		syms := perWorkload[wl]
		if len(syms) > 0 && syms[0] != "fft_rows" {
			t.Errorf("hottest %s symbol = %q, want fft_rows", wl, syms[0])
		}
	}
}
