package harness

import (
	"fmt"

	"cyclops/internal/harness/sweep"
	"cyclops/internal/job/workloads"
	"cyclops/internal/kernel"
	"cyclops/internal/refdata"
	"cyclops/internal/stream"
)

// streamKernels is the STREAM column order of every figure.
var streamKernels = [4]stream.Kernel{stream.Copy, stream.Scale, stream.Add, stream.Triad}

// streamPoint is one (params, kernel) cell of a STREAM sweep grid.
type streamPoint struct {
	p      stream.Params
	policy kernel.Policy
}

// streamGrid fans rows×4 STREAM simulations across the sweep pool — each
// point builds its own chip — and regroups the results one row of four
// kernels per input row, in input order. Points go through the job
// layer, so a warm result cache answers repeated grids without
// simulating.
func streamGrid(rows []stream.Params, policy kernel.Policy) ([][4]*stream.Result, error) {
	pts := make([]streamPoint, 0, 4*len(rows))
	for _, base := range rows {
		for _, k := range streamKernels {
			p := base
			p.Kernel = k
			pts = append(pts, streamPoint{p, policy})
		}
	}
	res, err := sweep.Map(pts, func(q streamPoint) (*stream.Result, error) {
		spec, err := workloads.StreamSpec(q.p, q.policy)
		if err != nil {
			return nil, fmt.Errorf("%v: %w", q.p.Kernel, err)
		}
		r, err := runStreamJob(spec, q.p)
		if err != nil {
			return nil, fmt.Errorf("%v: %w", q.p.Kernel, err)
		}
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	out := make([][4]*stream.Result, len(rows))
	for i := range rows {
		copy(out[i][:], res[4*i:4*i+4])
	}
	return out, nil
}

// Fig4a: single-threaded STREAM out of the box — per-thread bandwidth vs
// vector size, showing the in-cache to out-of-cache transition.
func Fig4a(s Scale) (*Table, error) {
	sizes := []int{512, 4096, 32768, 131072}
	if s == Full {
		sizes = []int{1000, 2000, 5000, 10000, 20000, 40000, 80000, 120000, 180000, 252000}
	}
	t := &Table{
		ID:      "fig4a",
		Title:   "Single-threaded STREAM out-of-the-box (MB/s)",
		Columns: []string{"elements", "Copy", "Scale", "Add", "Triad"},
	}
	rows := make([]stream.Params, 0, len(sizes))
	for _, n := range sizes {
		n -= n % 8
		rows = append(rows, stream.Params{Threads: 1, N: n, Reps: 2})
	}
	grid, err := streamGrid(rows, kernel.Sequential)
	if err != nil {
		return nil, err
	}
	for i, p := range rows {
		rs := grid[i]
		t.AddRow(fmt.Sprintf("%d", p.N),
			f1(rs[0].PerThreadMBps()), f1(rs[1].PerThreadMBps()),
			f1(rs[2].PerThreadMBps()), f1(rs[3].PerThreadMBps()))
	}
	t.Note("paper: ~420 MB/s in-cache falling to ~250 MB/s out-of-cache; transition earlier for Add/Triad (three vectors)")
	return t, nil
}

// Fig4b: 126 independent single-thread STREAMs — average bandwidth per
// thread vs per-thread vector size, plus the Section 3.2.1 aggregate
// ratio against the single-threaded run.
func Fig4b(s Scale) (*Table, error) {
	threads := 126
	sizes := []int{112, 400, 1000}
	if s == Full {
		sizes = []int{112, 248, 400, 600, 800, 1000, 1200, 1400, 1600, 2000}
	}
	t := &Table{
		ID:      "fig4b",
		Title:   fmt.Sprintf("Multithreaded STREAM out-of-the-box, %d threads (MB/s per thread)", threads),
		Columns: []string{"elements/thread", "Copy", "Scale", "Add", "Triad"},
	}
	rows := make([]stream.Params, 0, len(sizes)+1)
	for _, n := range sizes {
		n -= n % 8
		rows = append(rows, stream.Params{Threads: threads, N: n, Independent: true, Reps: 2})
	}
	// The single-threaded reference for the aggregate ratio rides along as
	// one more grid row at the largest size.
	nLast := sizes[len(sizes)-1] &^ 7
	rows = append(rows, stream.Params{Threads: 1, N: nLast, Reps: 2})
	grid, err := streamGrid(rows, kernel.Sequential)
	if err != nil {
		return nil, err
	}
	for i := 0; i < len(sizes); i++ {
		rs := grid[i]
		t.AddRow(fmt.Sprintf("%d", rows[i].N),
			f1(rs[0].PerThreadMBps()), f1(rs[1].PerThreadMBps()),
			f1(rs[2].PerThreadMBps()), f1(rs[3].PerThreadMBps()))
	}
	lastRow, single := grid[len(sizes)-1], grid[len(sizes)]
	for i, name := range []string{"Copy", "Scale", "Add", "Triad"} {
		ratio := lastRow[i].Bandwidth() / single[i].Bandwidth()
		t.Note("aggregate %s bandwidth is %.0fx the single-threaded run (paper: %.0f-%.0fx)",
			name, ratio, refdata.PaperTargets.AggregateRatioLow, refdata.PaperTargets.AggregateRatioHigh)
	}
	return t, nil
}

// fig5Variant builds the Figure 5 experiments: (a) blocked, (b) cyclic,
// (c) blocked + local caches, (d) unrolled + blocked + local caches.
func fig5Variant(v byte) func(Scale) (*Table, error) {
	return func(s Scale) (*Table, error) { return Fig5(v, s) }
}

// Fig5 runs one panel of Figure 5: total bandwidth vs per-thread vector
// size for 126 threads.
func Fig5(variant byte, s Scale) (*Table, error) {
	threads := 126
	sizes := []int{104, 400, 1000}
	if s == Full {
		sizes = []int{104, 200, 400, 600, 800, 1000, 1200, 1400, 1600, 1800, 2016}
	}
	base := stream.Params{Threads: threads, Reps: 2}
	var title string
	switch variant {
	case 'a':
		title = "Blocked partitioning"
	case 'b':
		title = "Cyclic partitioning"
		base.Partition = stream.Cyclic
	case 'c':
		title = "Blocked partitioning with local caches"
		base.Local = true
	case 'd':
		title = "Unrolled loops, blocked partitioning, local caches"
		base.Local = true
		base.Unroll = 4
	default:
		return nil, fmt.Errorf("harness: no figure 5%c", variant)
	}
	t := &Table{
		ID:      fmt.Sprintf("fig5%c", variant),
		Title:   title + fmt.Sprintf(" (%d threads, total GB/s)", threads),
		Columns: []string{"elements/thread", "Copy", "Scale", "Add", "Triad"},
	}
	rows := make([]stream.Params, 0, len(sizes))
	for _, per := range sizes {
		p := base
		p.N = per * threads
		rows = append(rows, p)
	}
	grid, err := streamGrid(rows, kernel.Sequential)
	if err != nil {
		return nil, err
	}
	for i, per := range sizes {
		rs := grid[i]
		t.AddRow(fmt.Sprintf("%d", per),
			f1(rs[0].GBps()), f1(rs[1].GBps()), f1(rs[2].GBps()), f1(rs[3].GBps()))
	}
	switch variant {
	case 'a', 'b':
		t.Note("paper: blocked beats cyclic; out-of-cache plateau near the 42 GB/s memory peak")
	case 'c':
		t.Note("paper: up to 60%% small-vector gain over distributed caches, ~30%% for Scale at large sizes")
	case 'd':
		t.Note("paper: unrolling lifts small vectors (above 80 GB/s in cache); no effect once memory-bound")
	}
	return t, nil
}

// Fig6a: best configuration (unrolled, local caches, blocked, balanced
// allocation) at a fixed large vector, sweeping the thread count.
func Fig6a(s Scale) (*Table, error) {
	const fullN = 249984
	threadCounts := []int{1, 4, 16, 64, 126}
	n := 49984 - 49984%8
	if s == Full {
		threadCounts = []int{1, 2, 4, 8, 16, 32, 48, 64, 96, 112, 126}
		n = fullN
	}
	t := &Table{
		ID:      "fig6a",
		Title:   fmt.Sprintf("Cyclops best-config STREAM, %d elements (total GB/s)", n),
		Columns: []string{"threads", "Copy", "Scale", "Add", "Triad"},
	}
	rows := make([]stream.Params, 0, len(threadCounts))
	for _, tc := range threadCounts {
		nt := n - n%(8*tc)
		rows = append(rows, stream.Params{Threads: tc, N: nt, Local: true, Unroll: 4, Reps: 2})
	}
	grid, err := streamGrid(rows, kernel.Balanced)
	if err != nil {
		return nil, err
	}
	for i, tc := range threadCounts {
		rs := grid[i]
		t.AddRow(fmt.Sprintf("%d", tc),
			f1(rs[0].GBps()), f1(rs[1].GBps()), f1(rs[2].GBps()), f1(rs[3].GBps()))
	}
	t.Note("paper: saturates near 40 GB/s by ~48-64 threads — a single chip matching the 128-cpu Origin 3800")
	return t, nil
}

// Fig6b prints the published SGI Origin 3800/400 reference series.
func Fig6b() (*Table, error) {
	t := &Table{
		ID:      "fig6b",
		Title:   "SGI Origin 3800-400 published STREAM (total GB/s, 5M elements/processor)",
		Columns: []string{"processors", "Copy", "Scale", "Add", "Triad"},
	}
	for _, p := range refdata.Origin3800 {
		t.AddRow(fmt.Sprintf("%d", p.Processors), f1(p.Copy), f1(p.Scale), f1(p.Add), f1(p.Triad))
	}
	t.Note("digitized from Figure 6(b) of the paper; published results, not simulated here")
	return t, nil
}
