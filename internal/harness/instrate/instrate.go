// Package instrate measures the simulator's host-side instruction rate
// (simMIPS) per execution engine, using the same tight arithmetic loop
// as BenchmarkSimInstructionRate. cmd/cyclops-bench exposes it as
// -instrate; the CI bench-smoke lane uses it as a regression and
// equivalence gate. Results append to BENCH_sim.json, whose entries
// record the engine trajectory across PRs.
package instrate

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"cyclops/internal/arch"
	"cyclops/internal/asm"
	"cyclops/internal/core"
	"cyclops/internal/kernel"
	"cyclops/internal/sim"
)

// loopSrc is the measured workload: the BenchmarkSimInstructionRate
// loop — four dependent integer instructions per iteration, the
// dispatch-bound worst case for a cycle-exact simulator.
const loopSrc = `
	li   r8, 200000
loop:	addi r8, r8, -1
	add  r9, r9, r8
	xor  r10, r9, r8
	bne  r8, r0, loop
	halt
	`

// Result is one engine's measurement: the median of the per-sample
// rates, plus the simulated totals every engine must agree on.
type Result struct {
	Engine   sim.Engine
	SimMIPS  float64 // median over samples
	NsPerRun uint64  // median wall time of one boot+run
	Cycles   uint64  // simulated cycles (engine-invariant)
	Insts    uint64  // simulated instructions (engine-invariant)
}

// Measure runs the loop program `samples` times on every engine and
// returns per-engine medians, fastest engine first. It errors if any
// engine disagrees on simulated cycles or instructions — the
// equivalence contract, checked on every benchmark run.
func Measure(samples int) ([]Result, error) {
	if samples < 1 {
		samples = 1
	}
	prog, err := asm.Assemble(loopSrc)
	if err != nil {
		return nil, err
	}
	var results []Result
	for _, e := range sim.Engines() {
		rates := make([]float64, 0, samples)
		times := make([]uint64, 0, samples)
		var cycles, insts uint64
		for s := 0; s < samples; s++ {
			chip, err := core.NewChip(arch.Default())
			if err != nil {
				return nil, err
			}
			k := kernel.New(chip)
			k.Machine().SetEngine(e)
			k.Machine().MaxCycles = 1_000_000_000
			t0 := time.Now() //detlint:clock — instrate exists to measure wall time
			if err := k.Boot(prog); err != nil {
				return nil, err
			}
			if err := k.Run(); err != nil {
				return nil, err
			}
			elapsed := time.Since(t0)
			cycles = k.Machine().Cycle()
			insts = k.Machine().TotalInsts()
			rates = append(rates, float64(insts)/elapsed.Seconds()/1e6)
			times = append(times, uint64(elapsed.Nanoseconds()))
		}
		sort.Float64s(rates)
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		results = append(results, Result{
			Engine:   e,
			SimMIPS:  rates[len(rates)/2],
			NsPerRun: times[len(times)/2],
			Cycles:   cycles,
			Insts:    insts,
		})
	}
	for _, r := range results[1:] {
		if r.Cycles != results[0].Cycles || r.Insts != results[0].Insts {
			return nil, fmt.Errorf(
				"instrate: engine equivalence broken: %s ran %d cycles / %d insts, %s ran %d cycles / %d insts",
				results[0].Engine, results[0].Cycles, results[0].Insts,
				r.Engine, r.Cycles, r.Insts)
		}
	}
	return results, nil
}

// Rate is one engine's recorded rate in a BENCH_sim.json entry.
type Rate struct {
	SimMIPS  float64 `json:"simMIPS"`
	NsPerRun uint64  `json:"ns_per_run,omitempty"`
}

// Entry is one point of the BENCH_sim.json trajectory: the per-engine
// rates measured on one host at one point in the repo's history.
type Entry struct {
	ID                    string          `json:"id"`
	HostCPU               string          `json:"host_cpu,omitempty"`
	Go                    string          `json:"go,omitempty"`
	Samples               int             `json:"samples,omitempty"`
	Engines               map[string]Rate `json:"engines"`
	SpeedupBlockVsDecoded float64         `json:"speedup_block_vs_decoded,omitempty"`
	Note                  string          `json:"note,omitempty"`
}

// File is the BENCH_sim.json schema: fixed metadata plus the
// append-only trajectory.
type File struct {
	Benchmark   string  `json:"benchmark"`
	Method      string  `json:"method,omitempty"`
	Equivalence string  `json:"equivalence,omitempty"`
	Entries     []Entry `json:"entries"`
}

// Load reads a BENCH_sim.json trajectory file.
func Load(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &f, nil
}

// Save writes the trajectory back, indented, with a trailing newline.
// The write goes through a temp file in the same directory plus an
// atomic rename, so an interrupted save leaves the old trajectory
// intact instead of a truncated JSON file.
func (f *File) Save(path string) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// NewEntry converts a measurement into a trajectory entry.
func NewEntry(id string, samples int, results []Result) Entry {
	e := Entry{
		ID:      id,
		HostCPU: hostCPU(),
		Go:      runtime.Version(),
		Samples: samples,
		Engines: make(map[string]Rate, len(results)),
	}
	var block, decoded float64
	for _, r := range results {
		e.Engines[r.Engine.String()] = Rate{SimMIPS: round2(r.SimMIPS), NsPerRun: r.NsPerRun}
		switch r.Engine {
		case sim.EngineBlock:
			block = r.SimMIPS
		case sim.EngineDecoded:
			decoded = r.SimMIPS
		}
	}
	if block > 0 && decoded > 0 {
		e.SpeedupBlockVsDecoded = round2(block / decoded)
	}
	return e
}

func round2(v float64) float64 { return float64(int64(v*100+0.5)) / 100 }

// hostCPU returns the host's CPU model name, best-effort ("" when
// unavailable, e.g. off Linux).
func hostCPU() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
		}
	}
	return ""
}
