package harness

import (
	"fmt"

	"cyclops/internal/arch"
	"cyclops/internal/harness/sweep"
	"cyclops/internal/job/workloads"
	"cyclops/internal/kernel"
	"cyclops/internal/obs"
	"cyclops/internal/stream"
	"cyclops/internal/timing"
)

// matrixPolicies is the issue-policy axis of the scenario matrix: the
// paper's fine-grained design against blocked multithreading and the
// switch-on-miss hybrid, both at an 8-cycle pipeline drain/refill.
func matrixPolicies() []timing.Policy {
	return []timing.Policy{
		timing.FineGrain{},
		timing.Blocked{Pen: 8},
		timing.SwitchOnMiss{Pen: 8},
	}
}

// matrixLatencies is the latency axis: the Table 2 point plus a
// slow-memory point (miss latencies doubled), and at Full scale a
// slow-FPU point (result latencies doubled). Labels are the models'
// canonical specs, so the table is self-describing.
func matrixLatencies(s Scale) []timing.LatencyModel {
	slowmem := timing.DefaultLatencies()
	slowmem.LocalMiss *= 2
	slowmem.RemoteMiss *= 2
	pts := []timing.LatencyModel{timing.DefaultLatencies(), slowmem}
	if s == Full {
		slowfpu := timing.DefaultLatencies()
		slowfpu.FPU *= 2
		slowfpu.FMA *= 2
		pts = append(pts, slowfpu)
	}
	return pts
}

// Matrix runs the scheduling-policy × latency scenario matrix over one
// workload per execution frontend: STREAM Triad through the
// instruction-level simulator and the FFT kernel (hardware barrier)
// through the direct-execution runtime. Each row reports the run share,
// the per-reason stall shares — including the policies' separately
// attributed context-switch penalty — and the memory-wait attribution,
// making visible which stall buckets each policy trades for switch
// overhead as the memory gets slower.
//
// Policies and latencies are threaded per point (Params.Issue, explicit
// chips, splash.Config), never through the process defaults: sweep
// workers run different scenario points concurrently.
func Matrix(s Scale) (*Table, error) {
	streamThreads, fftThreads, fftN := 4, 8, 1024
	if s == Full {
		streamThreads, fftThreads, fftN = 16, 16, 4096
	}

	cols := []string{"workload", "engine", "policy", "latency", "threads", "run %"}
	for _, r := range obs.ReasonNames() {
		cols = append(cols, r+" %")
	}
	for _, k := range obs.MemWaitNames() {
		cols = append(cols, "w:"+k)
	}
	cols = append(cols, "cycles")
	t := &Table{
		ID:      "matrix",
		Title:   "Issue policy × latency scenario matrix (% of accounted cycles)",
		Columns: cols,
	}

	type bd struct {
		run, stall uint64
		stalls     obs.Breakdown
		memWaits   obs.MemWaits
	}
	type point struct {
		workload, engine string
		pol              timing.Policy
		lat              timing.LatencyModel
		threads          int
		run              func() (bd, error)
	}
	var pts []point
	for _, pol := range matrixPolicies() {
		pol := pol
		for _, lat := range matrixLatencies(s) {
			lat := lat
			cfg := lat.Apply(arch.Default())
			pts = append(pts, point{"STREAM Triad", "sim", pol, lat, streamThreads, func() (bd, error) {
				p := stream.Params{
					Kernel: stream.Triad, Threads: streamThreads, N: streamThreads * 1000,
					Local: true, Reps: 2, Issue: pol,
				}
				spec, err := workloads.StreamSpec(p, kernel.Sequential)
				if err != nil {
					return bd{}, err
				}
				spec.Config = &cfg
				r, err := runStreamJob(spec, p)
				if err != nil {
					return bd{}, err
				}
				return bd{r.Run, r.Stall, r.Stalls, r.MemWaits}, nil
			}})
			pts = append(pts, point{"FFT HW barrier", "perf", pol, lat, fftThreads, func() (bd, error) {
				spec, err := workloads.SplashSpec(workloads.SplashArgs{
					Kernel: "fft", Threads: fftThreads, Barrier: "hw", N: fftN,
				})
				if err != nil {
					return bd{}, err
				}
				spec.Config = &cfg
				spec.Policy = pol.String()
				r, err := runSplashJob(spec)
				if err != nil {
					return bd{}, err
				}
				return bd{r.Run, r.Stall, r.Stalls, r.MemWaits}, nil
			}})
		}
	}

	res, err := sweep.Map(pts, func(p point) (bd, error) { return p.run() })
	if err != nil {
		return nil, err
	}
	for i, p := range pts {
		r := res[i]
		if got := r.stalls.Total(); obs.Enabled && got != r.stall {
			return nil, fmt.Errorf("harness: %s (%s, %s, %s): per-reason stalls sum to %d, legacy total is %d",
				p.workload, p.pol, p.lat, p.engine, got, r.stall)
		}
		total := r.run + r.stall
		pct := func(v uint64) string {
			if total == 0 {
				return "-"
			}
			return f1(100 * float64(v) / float64(total))
		}
		row := []string{p.workload, p.engine, p.pol.String(), p.lat.String(),
			fmt.Sprintf("%d", p.threads), pct(r.run)}
		for _, v := range r.stalls {
			row = append(row, pct(v))
		}
		for _, v := range r.memWaits {
			row = append(row, fmt.Sprintf("%d", v))
		}
		row = append(row, fmt.Sprintf("%d", total))
		t.AddRow(row...)
	}
	t.Note("policy: fine = paper's fine-grained issue; blocked/8 = switch on any stall, 8-cycle penalty; switchmiss/8 = switch on cache miss only")
	t.Note("latency: canonical spec of the swept point (diffs from Table 2); switch %% = context-switch penalty, attributed separately from the triggering wait")
	t.Note("policies and latencies are per-point: rows are reproducible standalone via -policy/-switch-penalty/-lat on cyclops-sim")
	return t, nil
}
