package harness

import (
	"fmt"

	"cyclops/internal/arch"
)

// Table1 exercises the interest-group encoding: for each Table 1 row it
// shows which caches an example address may select.
func Table1() (*Table, error) {
	t := &Table{
		ID:      "table1",
		Title:   "Interest group encoding",
		Columns: []string{"mode", "selector", "caches selected (example addresses)"},
	}
	const nCaches, lineShift = 32, 6
	for m := arch.GroupOwn; m <= arch.GroupAll; m++ {
		sel := uint8(8)
		set := map[int]bool{}
		for line := uint32(0); line < 4096; line++ {
			ea := arch.EA(arch.InterestGroup{Mode: m, Sel: sel}, line<<lineShift)
			set[arch.CacheFor(ea, 5, nCaches, lineShift)] = true
		}
		lo, hi := 99, -1
		//detlint:sorted — min/max/len aggregation; order cannot leak
		for c := range set {
			if c < lo {
				lo = c
			}
			if c > hi {
				hi = c
			}
		}
		desc := fmt.Sprintf("%d caches in [%d,%d]", len(set), lo, hi)
		if m == arch.GroupOwn {
			desc = "accessing thread's own cache"
		}
		t.AddRow(m.String(), fmt.Sprintf("%d", sel), desc)
	}
	t.Note("placement is a pure function of the address: same EA, same cache")
	return t, nil
}

// Table2 renders the simulation parameters actually in force, mirroring
// the paper's Table 2.
func Table2() (*Table, error) {
	c := arch.Default()
	l := c.Latencies
	t := &Table{
		ID:      "table2",
		Title:   "Simulation parameters",
		Columns: []string{"instruction type", "execution", "latency"},
	}
	rows := []struct {
		name       string
		exec, late int
	}{
		{"Branches", l.BranchExec, 0},
		{"Integer multiplication", l.IntMulExec, l.IntMulLatency},
		{"Integer divide", l.IntDivExec, 0},
		{"Floating point add, mult. and conv.", l.FPExec, l.FPLatency},
		{"Floating point divide (double prec.)", l.FPDivExec, 0},
		{"Floating point square root (double prec.)", l.FPSqrtExec, 0},
		{"Floating point multiply-and-add", l.FMAExec, l.FMALatency},
		{"Memory operation (local cache hit)", l.MemExec, l.LocalHitLatency},
		{"Memory operation (local cache miss)", l.MemExec, l.LocalMissLatency},
		{"Memory operation (remote cache hit)", l.MemExec, l.RemoteHitLatency},
		{"Memory operation (remote cache miss)", l.MemExec, l.RemoteMissLatency},
		{"All other operations", l.OtherExec, 0},
	}
	for _, r := range rows {
		t.AddRow(r.name, fmt.Sprintf("%d", r.exec), fmt.Sprintf("%d", r.late))
	}
	t.Note("units: %d threads, %d FPUs, %d D-caches (%d KB), %d I-caches (%d KB), %d memory banks (%d KB)",
		c.Threads, c.Quads(), c.Quads(), c.DCacheBytes>>10, c.ICaches(), c.ICacheBytes>>10,
		c.MemBanks, c.MemBankBytes>>10)
	t.Note("peaks: %.1f GB/s memory, %.0f GB/s cache, %.0f GFlops",
		c.PeakMemBandwidth()/1e9, c.PeakCacheBandwidth()/1e9, c.PeakFlops()/1e9)
	return t, nil
}
