package harness

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cyclops/internal/obs"
	"cyclops/internal/timing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestMatrixGolden pins the Small-scale scenario matrix byte-exact: the
// cycle counts and stall attributions of every (policy, latency,
// workload) point are part of the repo's contract, regenerated only by
// an intentional `go test -run MatrixGolden -update ./internal/harness`.
func TestMatrixGolden(t *testing.T) {
	if !obs.Enabled {
		t.Skip("counters compiled out")
	}
	tab, err := Matrix(Small)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	tab.Fprint(&sb)
	got := sb.String()
	path := filepath.Join("testdata", "matrix_small.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test -run MatrixGolden -update ./internal/harness` to create it)", err)
	}
	if got != string(want) {
		t.Errorf("matrix table drifted from golden\n--- golden ---\n%s--- got ---\n%s", want, got)
	}
}

// TestMatrixShares checks the structural invariants of every matrix row:
// shares sum to 100%, fine-grained rows charge no switch overhead,
// switching policies at Table 2 charge some, and blocked charges at
// least as much as switch-on-miss on the same scenario point.
func TestMatrixShares(t *testing.T) {
	if !obs.Enabled {
		t.Skip("counters compiled out")
	}
	tab, err := Matrix(Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 12 {
		t.Fatalf("%d rows, want 3 policies × 2 latencies × 2 workloads", len(tab.Rows))
	}
	polCol, latCol, runCol := 2, 3, 5
	switchCol := runCol + int(obs.SwitchStall) + 1
	if got := tab.Columns[switchCol]; got != "switch %" {
		t.Fatalf("column %d = %q, want switch %%", switchCol, got)
	}
	byKey := map[string]float64{}
	for i, row := range tab.Rows {
		sum := 0.0
		for col := runCol; col <= switchCol; col++ {
			sum += cell(t, tab, i, col)
		}
		if sum < 99.5 || sum > 100.5 {
			t.Errorf("row %d shares sum to %.1f%%, want 100%%", i, sum)
		}
		sw := cell(t, tab, i, switchCol)
		if row[polCol] == (timing.FineGrain{}).String() && sw != 0 {
			t.Errorf("row %d: fine-grained charges %.1f%% switch overhead", i, sw)
		}
		byKey[row[polCol]+"|"+row[latCol]+"|"+row[0]] = sw
	}
	for _, lat := range matrixLatencies(Small) {
		for _, wl := range []string{"STREAM Triad", "FFT HW barrier"} {
			blocked := byKey["blocked/8|"+lat.String()+"|"+wl]
			miss := byKey["switchmiss/8|"+lat.String()+"|"+wl]
			if blocked <= 0 || miss <= 0 {
				t.Errorf("%s @ %s: switching policies charge no switch overhead (blocked %.1f%%, switchmiss %.1f%%)",
					wl, lat, blocked, miss)
			}
			if blocked < miss {
				t.Errorf("%s @ %s: blocked switch share %.1f%% below switch-on-miss %.1f%%",
					wl, lat, blocked, miss)
			}
		}
	}
}
