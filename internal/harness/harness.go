// Package harness regenerates every table and figure of the paper's
// evaluation (Section 3). Each experiment returns a Table that renders as
// aligned text or CSV; cmd/cyclops-bench is the CLI front end and the
// root bench_test.go wires each experiment to a testing.B benchmark.
//
// Experiments run at two scales: Small keeps unit tests and benchmarks
// fast; Full uses the paper's parameters.
package harness

import (
	"fmt"
	"io"
	"strings"
)

// Scale selects experiment sizing.
type Scale int

const (
	// Small is a minutes-not-hours sizing for tests and quick looks.
	Small Scale = iota
	// Full reproduces the paper's parameters.
	Full
)

// ParseScale maps a CLI string to a Scale.
func ParseScale(s string) (Scale, error) {
	switch strings.ToLower(s) {
	case "small", "":
		return Small, nil
	case "full", "paper":
		return Full, nil
	}
	return Small, fmt.Errorf("harness: unknown scale %q (small|full)", s)
}

// Table is one rendered experiment result.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Note appends a free-form footnote.
func (t *Table) Note(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			parts[i] = fmt.Sprintf("%*s", w, c)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Columns)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  # %s\n", n)
	}
	fmt.Fprintln(w)
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var sb strings.Builder
	sb.WriteString(strings.Join(t.Columns, ","))
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		sb.WriteString(strings.Join(row, ","))
		sb.WriteByte('\n')
	}
	return sb.String()
}

// f1 and f2 format floats at one and two decimals.
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// Experiment names one runnable reproduction.
type Experiment struct {
	ID    string
	Brief string
	Run   func(Scale) (*Table, error)
}

// Experiments lists every table and figure in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{"table1", "Interest group encoding (semantic check)", func(Scale) (*Table, error) { return Table1() }},
		{"table2", "Simulation parameters", func(Scale) (*Table, error) { return Table2() }},
		{"fig3", "SPLASH-2 parallel speedups", Fig3},
		{"fig4a", "STREAM out-of-the-box, single thread", Fig4a},
		{"fig4b", "STREAM out-of-the-box, 126 independent threads", Fig4b},
		{"fig5a", "Multithreaded STREAM, blocked partitioning", fig5Variant('a')},
		{"fig5b", "Multithreaded STREAM, cyclic partitioning", fig5Variant('b')},
		{"fig5c", "Blocked partitioning with local caches", fig5Variant('c')},
		{"fig5d", "Unrolled loops, blocked, local caches", fig5Variant('d')},
		{"fig6a", "Cyclops bandwidth vs thread count (best config)", Fig6a},
		{"fig6b", "SGI Origin 3800/400 published reference", func(Scale) (*Table, error) { return Fig6b() }},
		{"fig7a", "HW vs SW barriers, 256-point FFT", fig7Variant(256)},
		{"fig7b", "HW vs SW barriers, 64K-point FFT", fig7Variant(65536)},
		{"microbarrier", "Barrier latency microbenchmark", MicroBarrier},
		{"breakdown", "Run/stall decomposition by stall reason (both engines)", Breakdown},
		{"profile", "Guest profiler hot spots by symbol (both engines)", Profile},
		{"matrix", "Issue policy × latency scenario matrix (extension)", Matrix},
		{"apps", "Section 5 target applications (extension)", Apps},
		{"fault", "Degraded-chip bandwidth (extension)", Fault},
		{"mesh", "Multi-chip weak scaling (extension)", Mesh},
	}
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
