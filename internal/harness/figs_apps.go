package harness

import (
	"fmt"

	"cyclops/internal/harness/sweep"
	"cyclops/internal/job"
	"cyclops/internal/job/workloads"
	"cyclops/internal/splash"
)

// Apps runs the Section 5 target-application trio — molecular dynamics,
// raytracing, and linear algebra (LU) — across thread counts. This is an
// extension beyond the paper's figures: the conclusion names these
// workloads as what Cyclops is for, and this table shows how each class
// behaves on the chip (barrier-phased MD, embarrassingly parallel rays,
// dependence-structured LU).
func Apps(s Scale) (*Table, error) {
	mdN, rayW, rayH, luN := 512, 64, 48, 128
	threads := []int{1, 4, 16}
	if s == Full {
		mdN, rayW, rayH, luN = 4096, 160, 120, 512
		threads = []int{1, 4, 16, 64, 120}
	}
	t := &Table{
		ID:      "apps",
		Title:   "Section 5 target applications: speedups (balanced placement)",
		Columns: []string{"threads", "MD", "Raytrace", "LU"},
	}
	// One point per (thread count, application); the leading tc=1 triple
	// is the speedup baseline.
	type appPoint struct{ tc, app int }
	tcs := append([]int{1}, threads...)
	pts := make([]appPoint, 0, 3*len(tcs))
	for _, tc := range tcs {
		for app := 0; app < 3; app++ {
			pts = append(pts, appPoint{tc, app})
		}
	}
	res, err := sweep.Map(pts, func(p appPoint) (*splash.Result, error) {
		var spec *job.Spec
		var err error
		var name string
		switch p.app {
		case 0:
			name = "md"
			spec, err = workloads.MDSpec(workloads.MDArgs{
				Threads: p.tc, Balanced: true, Particles: mdN, Steps: 1,
			})
		case 1:
			name = "ray"
			spec, err = workloads.RaySpec(workloads.RayArgs{
				Threads: p.tc, Balanced: true, Width: rayW, Height: rayH,
			})
		default:
			name = "lu"
			spec, err = workloads.SplashSpec(workloads.SplashArgs{
				Kernel: "lu", Threads: p.tc, Balanced: true, N: luN,
			})
		}
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		r, err := runSplashJob(spec)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	baseMD, baseRay, baseLU := res[0], res[1], res[2]
	for i, tc := range threads {
		m, r, l := res[3*(i+1)], res[3*(i+1)+1], res[3*(i+1)+2]
		t.AddRow(fmt.Sprintf("%d", tc),
			f2(m.Speedup(baseMD)), f2(r.Speedup(baseRay)), f2(l.Speedup(baseLU)))
	}
	t.Note("MD %d particles, raytrace %dx%d, LU %d^2; rays are barrier-free and scale furthest",
		mdN, rayW, rayH, luN)
	return t, nil
}
