package harness

import (
	"fmt"

	"cyclops/internal/md"
	"cyclops/internal/ray"
	"cyclops/internal/splash"
)

// Apps runs the Section 5 target-application trio — molecular dynamics,
// raytracing, and linear algebra (LU) — across thread counts. This is an
// extension beyond the paper's figures: the conclusion names these
// workloads as what Cyclops is for, and this table shows how each class
// behaves on the chip (barrier-phased MD, embarrassingly parallel rays,
// dependence-structured LU).
func Apps(s Scale) (*Table, error) {
	mdN, rayW, rayH, luN := 512, 64, 48, 128
	threads := []int{1, 4, 16}
	if s == Full {
		mdN, rayW, rayH, luN = 4096, 160, 120, 512
		threads = []int{1, 4, 16, 64, 120}
	}
	t := &Table{
		ID:      "apps",
		Title:   "Section 5 target applications: speedups (balanced placement)",
		Columns: []string{"threads", "MD", "Raytrace", "LU"},
	}
	cfg := func(tc int) splash.Config {
		return splash.Config{Threads: tc, Balanced: true}
	}
	runAll := func(tc int) (*splash.Result, *splash.Result, *splash.Result, error) {
		m, _, err := md.Run(md.Opts{Config: cfg(tc), NParticles: mdN, Steps: 1})
		if err != nil {
			return nil, nil, nil, fmt.Errorf("md: %w", err)
		}
		r, _, err := ray.Render(ray.Opts{Config: cfg(tc), Width: rayW, Height: rayH})
		if err != nil {
			return nil, nil, nil, fmt.Errorf("ray: %w", err)
		}
		l, err := splash.RunLU(splash.LUOpts{Config: cfg(tc), N: luN})
		if err != nil {
			return nil, nil, nil, fmt.Errorf("lu: %w", err)
		}
		return m, r, l, nil
	}
	baseMD, baseRay, baseLU, err := runAll(1)
	if err != nil {
		return nil, err
	}
	for _, tc := range threads {
		m, r, l, err := runAll(tc)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", tc),
			f2(m.Speedup(baseMD)), f2(r.Speedup(baseRay)), f2(l.Speedup(baseLU)))
	}
	t.Note("MD %d particles, raytrace %dx%d, LU %d^2; rays are barrier-free and scale furthest",
		mdN, rayW, rayH, luN)
	return t, nil
}
