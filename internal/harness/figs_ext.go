package harness

import (
	"fmt"

	"cyclops/internal/arch"
	"cyclops/internal/core"
	"cyclops/internal/harness/sweep"
	"cyclops/internal/kernel"
	"cyclops/internal/link"
	"cyclops/internal/splash"
	"cyclops/internal/stream"
)

// Fault quantifies the Section 5 future-work behaviour: STREAM Triad
// bandwidth as banks fail and quads are disabled. The paper promises the
// chip "is expected to function even with broken components"; this table
// shows how gracefully.
func Fault(s Scale) (*Table, error) {
	perThread := 504
	if s == Full {
		perThread = 1000
	}
	t := &Table{
		ID:      "fault",
		Title:   "Degraded-chip STREAM Triad (Section 5 fault tolerance)",
		Columns: []string{"banks down", "quads down", "threads", "memory MB", "GB/s", "% of healthy"},
	}
	faults := []struct{ banks, quads int }{
		{0, 0}, {1, 0}, {2, 0}, {4, 0}, {0, 4}, {0, 8}, {4, 8},
	}
	type faultResult struct {
		threads int
		memMB   float64
		gbps    float64
	}
	res, err := sweep.Map(faults, func(f struct{ banks, quads int }) (faultResult, error) {
		chip := core.MustNew(arch.Default())
		for b := 0; b < f.banks; b++ {
			if err := chip.Mem.FailBank(b); err != nil {
				return faultResult{}, err
			}
		}
		for q := 0; q < f.quads; q++ {
			if err := chip.DisableQuad(q); err != nil {
				return faultResult{}, err
			}
		}
		threads := chip.UsableThreads() - 2
		if threads > chip.Cfg.WorkerThreads() {
			threads = chip.Cfg.WorkerThreads()
		}
		n := perThread * threads
		n -= n % (8 * threads)
		r, err := stream.RunOn(chip, stream.Params{
			Kernel: stream.Triad, Threads: threads, N: n,
			Local: true, Unroll: 4, Reps: 2,
		}, kernel.Sequential)
		if err != nil {
			return faultResult{}, err
		}
		return faultResult{threads, float64(chip.Mem.Size()) / (1 << 20), r.GBps()}, nil
	})
	if err != nil {
		return nil, err
	}
	healthy := res[0].gbps
	for i, f := range faults {
		r := res[i]
		t.AddRow(fmt.Sprintf("%d", f.banks), fmt.Sprintf("%d", f.quads),
			fmt.Sprintf("%d", r.threads), fmt.Sprintf("%.1f", r.memMB),
			f1(r.gbps), f1(100*r.gbps/healthy))
	}
	t.Note("failed banks shrink and re-map the address space; a broken FPU disables its quad")
	return t, nil
}

// Mesh weak-scales a halo-exchanged computation over 3-D torus systems
// (Section 2.2: chips as cells). Per-cell compute comes from a real
// single-chip Ocean timing run; the link model times the halo traffic.
func Mesh(s Scale) (*Table, error) {
	block := 64
	sides := []int{1, 2, 4}
	if s == Full {
		block = 128
		sides = []int{1, 2, 4, 8, 16}
	}
	threads := 126
	if threads > block {
		threads = block
	}
	r, err := splash.RunOcean(splash.OceanOpts{
		Config: splash.Config{Threads: threads},
		N:      block, Iters: 1,
	})
	if err != nil {
		return nil, err
	}
	compute := r.Cycles
	halo := 4 * block * 8

	t := &Table{
		ID:      "mesh",
		Title:   "Multi-chip weak scaling over the 3-D torus (Section 2.2 extension)",
		Columns: []string{"cells", "system", "step cycles", "comm %", "aggregate Gflop/s"},
	}
	worsts, err := sweep.Map(sides, func(side int) (uint64, error) {
		m, err := link.NewMesh(link.DefaultLinkConfig(), link.Coord{X: side, Y: side, Z: side}, true)
		if err != nil {
			return 0, err
		}
		var worst uint64
		for x := 0; x < side; x++ {
			for y := 0; y < side; y++ {
				for z := 0; z < side; z++ {
					src := link.Coord{X: x, Y: y, Z: z}
					for _, dst := range []link.Coord{
						{X: (x + 1) % side, Y: y, Z: z},
						{X: x, Y: (y + 1) % side, Z: z},
					} {
						if dst == src {
							continue
						}
						done, err := m.Send(0, src, dst, halo)
						if err != nil {
							return 0, err
						}
						if done > worst {
							worst = done
						}
					}
				}
			}
		}
		return worst, nil
	})
	if err != nil {
		return nil, err
	}
	for i, side := range sides {
		worst := worsts[i]
		step := compute + worst
		cells := side * side * side
		flops := float64(cells) * float64(block*block) * 6
		t.AddRow(fmt.Sprintf("%d", cells),
			fmt.Sprintf("%dx%dx%d", side, side, side),
			fmt.Sprintf("%d", step),
			f1(100*float64(worst)/float64(step)),
			f1(flops/(float64(step)/arch.ClockHz)/1e9))
	}
	t.Note("per-cell compute: %d cycles for a %d^2 relaxation on %d threads; halo %d bytes/step", compute, block, threads, halo)
	return t, nil
}
