package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Metrics is a small named-series registry with a deterministic text
// export, for long-running processes (the cyclops-serve daemon) that
// need an operational /metrics endpoint without an external metrics
// dependency. Three kinds of series: owned counters (Counter), sampled
// gauges (Func) that read a value at export time — the latter is how
// existing counter sets (job.Runner stats, resultcache counters) are
// surfaced without double accounting — and latency histograms
// (Histogram), which export as a Prometheus-style bucket/count/sum
// block under one sorted series name.
type Metrics struct {
	mu       sync.Mutex
	counters map[string]*Counter
	funcs    map[string]func() uint64
	hists    map[string]*histSeries // key = name{labels}
	histBase map[string]bool        // histogram base names, for collisions
}

// histSeries is one registered histogram with its rendered label set.
type histSeries struct {
	name   string
	labels string // `k="v",k2="v2"` or ""
	h      *Histogram
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counters: make(map[string]*Counter),
		funcs:    make(map[string]func() uint64),
		hists:    make(map[string]*histSeries),
		histBase: make(map[string]bool),
	}
}

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load reads the counter.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Counter returns the named counter, creating it on first use. A name
// already registered as a Func panics: that is a wiring error.
func (m *Metrics) Counter(name string) *Counter {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.funcs[name]; dup {
		panic("obs: metric " + name + " already registered as a func")
	}
	if m.histBase[name] {
		panic("obs: metric " + name + " already registered as a histogram")
	}
	c, ok := m.counters[name]
	if !ok {
		c = &Counter{}
		m.counters[name] = c
	}
	return c
}

// Func registers a sampled series: f is called at export time.
// Re-registering a name panics.
func (m *Metrics) Func(name string, f func() uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.counters[name]; dup {
		panic("obs: metric " + name + " already registered as a counter")
	}
	if _, dup := m.funcs[name]; dup {
		panic("obs: metric " + name + " registered twice")
	}
	if m.histBase[name] {
		panic("obs: metric " + name + " already registered as a histogram")
	}
	m.funcs[name] = f
}

// Histogram returns the latency histogram for name and the given label
// key/value pairs, creating it over DefaultLatencyBuckets on first use
// (same name+labels returns the same histogram, the Counter contract).
// The name must not collide with a counter or func series; labels
// distinguish series under one name (`run_seconds{workload="stream"}`).
func (m *Metrics) Histogram(name string, labels ...string) *Histogram {
	if len(labels)%2 != 0 {
		panic("obs: histogram labels must be key/value pairs")
	}
	var lb strings.Builder
	for i := 0; i < len(labels); i += 2 {
		if i > 0 {
			lb.WriteByte(',')
		}
		lb.WriteString(labels[i])
		lb.WriteString(`="`)
		lb.WriteString(labels[i+1])
		lb.WriteString(`"`)
	}
	key := name
	if lb.Len() > 0 {
		key += "{" + lb.String() + "}"
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.counters[name]; dup {
		panic("obs: metric " + name + " already registered as a counter")
	}
	if _, dup := m.funcs[name]; dup {
		panic("obs: metric " + name + " already registered as a func")
	}
	hs, ok := m.hists[key]
	if !ok {
		hs = &histSeries{name: name, labels: lb.String(), h: NewHistogram(DefaultLatencyBuckets())}
		m.hists[key] = hs
		m.histBase[name] = true
	}
	return hs.h
}

// WriteText exports every series sorted by name, so successive scrapes
// diff cleanly. Counters and funcs print one "name value" line each; a
// histogram prints its whole block — cumulative le-buckets, then
// _count, then _sum — at its name's sort position, in a fixed internal
// order, so the line ordering is byte-stable across scrapes no matter
// what was observed in between.
func (m *Metrics) WriteText(w io.Writer) error {
	m.mu.Lock()
	names := make([]string, 0, len(m.counters)+len(m.funcs)+len(m.hists))
	for n := range m.counters {
		names = append(names, n)
	}
	for n := range m.funcs {
		names = append(names, n)
	}
	for n := range m.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	type sample struct {
		name string
		read func() uint64
		hist *histSeries
	}
	samples := make([]sample, 0, len(names))
	for _, n := range names {
		switch {
		case m.counters[n] != nil:
			samples = append(samples, sample{name: n, read: m.counters[n].Load})
		case m.funcs[n] != nil:
			samples = append(samples, sample{name: n, read: m.funcs[n]})
		default:
			samples = append(samples, sample{name: n, hist: m.hists[n]})
		}
	}
	m.mu.Unlock()

	// Sampling happens outside the lock: a Func may itself take locks
	// (scheduler state), and export must never hold both.
	for _, s := range samples {
		if s.hist != nil {
			if err := s.hist.writeText(w); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", s.name, s.read()); err != nil {
			return err
		}
	}
	return nil
}

// writeText renders one histogram series block from a single snapshot,
// so the cumulative buckets, count and sum are mutually consistent.
func (hs *histSeries) writeText(w io.Writer) error {
	snap := hs.h.Snapshot()
	le := func(bound string) string {
		if hs.labels == "" {
			return fmt.Sprintf(`%s_bucket{le="%s"}`, hs.name, bound)
		}
		return fmt.Sprintf(`%s_bucket{%s,le="%s"}`, hs.name, hs.labels, bound)
	}
	suffix := func(kind string) string {
		if hs.labels == "" {
			return hs.name + "_" + kind
		}
		return hs.name + "_" + kind + "{" + hs.labels + "}"
	}
	var cum uint64
	for i, b := range snap.Bounds {
		cum += snap.Counts[i]
		if _, err := fmt.Fprintf(w, "%s %d\n", le(formatBound(b)), cum); err != nil {
			return err
		}
	}
	cum += snap.Counts[len(snap.Counts)-1]
	if _, err := fmt.Fprintf(w, "%s %d\n", le("+Inf"), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s %d\n", suffix("count"), cum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %s\n", suffix("sum"), formatSeconds(uint64(snap.Sum)))
	return err
}
