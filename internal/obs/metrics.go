package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Metrics is a small named-counter registry with a deterministic text
// export, for long-running processes (the cyclops-serve daemon) that
// need an operational /metrics endpoint without an external metrics
// dependency. Two kinds of series: owned counters (Counter) and sampled
// gauges (Func) that read a value at export time — the latter is how
// existing counter sets (job.Runner stats, resultcache counters) are
// surfaced without double accounting.
type Metrics struct {
	mu       sync.Mutex
	counters map[string]*Counter
	funcs    map[string]func() uint64
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counters: make(map[string]*Counter),
		funcs:    make(map[string]func() uint64),
	}
}

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load reads the counter.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Counter returns the named counter, creating it on first use. A name
// already registered as a Func panics: that is a wiring error.
func (m *Metrics) Counter(name string) *Counter {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.funcs[name]; dup {
		panic("obs: metric " + name + " already registered as a func")
	}
	c, ok := m.counters[name]
	if !ok {
		c = &Counter{}
		m.counters[name] = c
	}
	return c
}

// Func registers a sampled series: f is called at export time.
// Re-registering a name panics.
func (m *Metrics) Func(name string, f func() uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.counters[name]; dup {
		panic("obs: metric " + name + " already registered as a counter")
	}
	if _, dup := m.funcs[name]; dup {
		panic("obs: metric " + name + " registered twice")
	}
	m.funcs[name] = f
}

// WriteText exports every series as "name value\n" lines sorted by
// name, so successive scrapes diff cleanly.
func (m *Metrics) WriteText(w io.Writer) error {
	m.mu.Lock()
	names := make([]string, 0, len(m.counters)+len(m.funcs))
	for n := range m.counters {
		names = append(names, n)
	}
	for n := range m.funcs {
		names = append(names, n)
	}
	sort.Strings(names)
	type sample struct {
		name string
		read func() uint64
	}
	samples := make([]sample, 0, len(names))
	for _, n := range names {
		if c, ok := m.counters[n]; ok {
			samples = append(samples, sample{n, c.Load})
		} else {
			samples = append(samples, sample{n, m.funcs[n]})
		}
	}
	m.mu.Unlock()

	// Sampling happens outside the lock: a Func may itself take locks
	// (scheduler state), and export must never hold both.
	for _, s := range samples {
		if _, err := fmt.Fprintf(w, "%s %d\n", s.name, s.read()); err != nil {
			return err
		}
	}
	return nil
}
