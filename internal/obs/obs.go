// Package obs is the cycle-accounting observability layer: a stall-reason
// taxonomy shared by both simulation engines, per-resource counters for
// the contended hardware (cache ports, DRAM banks, quad FPUs), and
// deterministic export formats — a JSON stats snapshot with stable key
// order and a Chrome trace-event writer for chrome://tracing / Perfetto.
//
// The paper's evaluation instrument is cycle accounting: Figure 7 splits
// execution into run and stall cycles, and Section 3 attributes the
// stalls to dependences, cache ports, memory banks, FPU contention and
// barriers. This package gives those attributions names and storage; the
// engines in internal/sim and internal/perf charge every stall cycle to
// exactly one reason, so the per-reason buckets always sum to the legacy
// StallCycles totals (pinned by test).
//
// Everything on the hot path is a fixed-size array indexed by an enum —
// no maps, no interfaces, no allocation. Building with the cyclops_noobs
// tag compiles the per-reason and per-resource accounting out entirely
// (Enabled becomes a false constant and the guarded increments are dead
// code); the legacy run/stall totals are unaffected either way.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// StallReason classifies why a thread unit could not issue. The order is
// fixed: it is the column order of every exported breakdown.
type StallReason uint8

const (
	// DepStall: an in-order issue waited for a source operand
	// (scoreboard interlock, load-use and FP-latency dependences).
	DepStall StallReason = iota
	// CachePortStall: the quad data cache's single 8-byte port was busy.
	CachePortStall
	// BankConflictStall: a DRAM bank was busy or its write-combining
	// backlog exceeded the store buffer depth (write backpressure,
	// fill queueing).
	BankConflictStall
	// FPUStall: the quad-shared FPU pipe was occupied by another thread.
	FPUStall
	// ICacheStall: instruction fetch missed the PIB and waited on the
	// I-cache or a line fill from memory.
	ICacheStall
	// BarrierStall: waiting in a software barrier (timed loads spinning
	// on a flag in memory). The hardware barrier's SPR spin is charged
	// as run cycles, per the paper.
	BarrierStall
	// SleepIdle: blocked in the kernel (sleep, join retry) rather than
	// on a hardware resource.
	SleepIdle
	// SwitchStall: the context-switch penalty charged by the blocked and
	// switch-on-miss issue policies (timing.Policy) on each stall event
	// that forces a thread switch. The fine-grained policy never charges
	// it; the underlying resource wait keeps its own reason, so policy
	// overhead is attributed separately rather than smeared into the
	// memory or dependence buckets.
	SwitchStall

	// NumStallReasons bounds the enum; Breakdown is indexed by it.
	NumStallReasons
)

var reasonNames = [NumStallReasons]string{
	DepStall:          "dep",
	CachePortStall:    "cacheport",
	BankConflictStall: "bankconflict",
	FPUStall:          "fpu",
	ICacheStall:       "icache",
	BarrierStall:      "barrier",
	SleepIdle:         "sleep",
	SwitchStall:       "switch",
}

func (r StallReason) String() string {
	if r < NumStallReasons {
		return reasonNames[r]
	}
	return fmt.Sprintf("StallReason(%d)", uint8(r))
}

// ReasonNames returns the taxonomy in enum (column) order.
func ReasonNames() []string {
	names := make([]string, NumStallReasons)
	copy(names, reasonNames[:])
	return names
}

// Breakdown is a per-reason stall-cycle accumulator. The zero value is
// ready to use; indexing is by StallReason.
type Breakdown [NumStallReasons]uint64

// Add charges n cycles to reason r.
func (b *Breakdown) Add(r StallReason, n uint64) { b[r] += n }

// AddAll accumulates another breakdown into b.
func (b *Breakdown) AddAll(o Breakdown) {
	for i := range b {
		b[i] += o[i]
	}
}

// Total sums all reasons; by construction it equals the legacy
// StallCycles total of whatever the breakdown was charged for.
func (b Breakdown) Total() uint64 {
	var t uint64
	for _, v := range b {
		t += v
	}
	return t
}

// MarshalJSON emits the breakdown as an object keyed by reason name, in
// enum order — hand-built so the key order is stable across runs.
func (b Breakdown) MarshalJSON() ([]byte, error) {
	buf := make([]byte, 0, 16*int(NumStallReasons))
	buf = append(buf, '{')
	for r := StallReason(0); r < NumStallReasons; r++ {
		if r > 0 {
			buf = append(buf, ',')
		}
		buf = append(buf, '"')
		buf = append(buf, reasonNames[r]...)
		buf = append(buf, '"', ':')
		buf = appendUint(buf, b[r])
	}
	return append(buf, '}'), nil
}

// UnmarshalJSON reads the object form written by MarshalJSON.
func (b *Breakdown) UnmarshalJSON(data []byte) error {
	var m map[string]uint64
	if err := json.Unmarshal(data, &m); err != nil {
		return err
	}
	for r := StallReason(0); r < NumStallReasons; r++ {
		b[r] = m[reasonNames[r]]
	}
	return nil
}

// ResourceStats is the telemetry of one contended hardware resource: a
// quad data cache port, a DRAM bank, or a quad-shared FPU.
type ResourceStats struct {
	// Kind is "cacheport", "drambank" or "fpu".
	Kind string `json:"kind"`
	// ID is the resource index within its kind (quad or bank number).
	ID int `json:"id"`
	// Busy is the cycles the resource was occupied serving requests.
	Busy uint64 `json:"busy"`
	// Grants counts requests served.
	Grants uint64 `json:"grants"`
	// Conflicts counts requests that found the resource busy.
	Conflicts uint64 `json:"conflicts"`
	// WaitCycles is the total queueing delay conflicting requests saw;
	// WaitCycles/elapsed is the mean queue occupancy.
	WaitCycles uint64 `json:"wait_cycles"`
}

// ThreadStat is one thread unit's cycle accounting in a snapshot.
type ThreadStat struct {
	ID     int       `json:"id"`
	Quad   int       `json:"quad"`
	Insts  uint64    `json:"insts"`
	Run    uint64    `json:"run"`
	Stall  uint64    `json:"stall"`
	Stalls Breakdown `json:"stalls"`
	// MemWaits sub-attributes the thread's memory-system waits by
	// location (port/bank/fill/hop); unlike Stalls it counts per-access
	// queueing, so load waits appear here even when the scoreboard later
	// reports them as dep stalls.
	MemWaits MemWaits `json:"mem_waits"`
}

// Snapshot is a complete, self-describing stats capture of one run. Its
// JSON form has stable key order (struct declaration order plus the
// hand-ordered Breakdown marshaller), so snapshots of deterministic runs
// are byte-identical regardless of sweep worker count.
type Snapshot struct {
	Cycles    uint64          `json:"cycles"`
	Insts     uint64          `json:"insts"`
	Run       uint64          `json:"run"`
	Stall     uint64          `json:"stall"`
	Stalls    Breakdown       `json:"stalls"`
	MemWaits  MemWaits        `json:"mem_waits"`
	Threads   []ThreadStat    `json:"threads"`
	Resources []ResourceStats `json:"resources"`
}

// Finish fills the aggregate fields from the per-thread entries.
func (s *Snapshot) Finish() {
	s.Insts, s.Run, s.Stall, s.Stalls, s.MemWaits = 0, 0, 0, Breakdown{}, MemWaits{}
	for _, t := range s.Threads {
		s.Insts += t.Insts
		s.Run += t.Run
		s.Stall += t.Stall
		s.Stalls.AddAll(t.Stalls)
		s.MemWaits.AddAll(t.MemWaits)
	}
}

// WriteJSON writes the snapshot as indented JSON with a trailing newline.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// appendUint formats v in base 10 without pulling strconv into the
// marshal path's escape analysis.
func appendUint(buf []byte, v uint64) []byte {
	if v == 0 {
		return append(buf, '0')
	}
	var tmp [20]byte
	i := len(tmp)
	for v > 0 {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
	}
	return append(buf, tmp[i:]...)
}
