package obs

import (
	"encoding/json"
	"fmt"
)

// MemWaitKind classifies the finer sub-attribution of memory-system
// waits. Where the StallReason taxonomy answers "why could this thread
// not issue", MemWaitKind answers "where inside the memory system did an
// access queue or travel": the quad cache's single port, the DRAM bank
// burst queue, a line still in flight from a concurrent miss (MSHR
// semantics), or the cache-switch transit of a remote access. The
// attribution is produced once, in internal/cache, and accumulated only
// by the timing ledger (internal/timing).
type MemWaitKind uint8

const (
	// MemWaitPort: queued for the owning cache's single 8-byte port.
	MemWaitPort MemWaitKind = iota
	// MemWaitBank: DRAM bank burst queueing — fill FIFO delay and
	// write-combining backlog (write backpressure).
	MemWaitBank
	// MemWaitFill: a hit on a line whose fill had not completed waited
	// for the in-flight fill (the model's MSHR semantics).
	MemWaitFill
	// MemWaitHop: cache-switch transit of a remote access beyond the
	// local-access latency of the same outcome class (Table 2: remote
	// hit 17 vs local 6, remote miss 36 vs local 24).
	MemWaitHop

	// NumMemWaitKinds bounds the enum; MemWaits is indexed by it.
	NumMemWaitKinds
)

var memWaitNames = [NumMemWaitKinds]string{
	MemWaitPort: "port",
	MemWaitBank: "bank",
	MemWaitFill: "fill",
	MemWaitHop:  "hop",
}

func (k MemWaitKind) String() string {
	if k < NumMemWaitKinds {
		return memWaitNames[k]
	}
	return fmt.Sprintf("MemWaitKind(%d)", uint8(k))
}

// MemWaitNames returns the sub-attribution taxonomy in enum (column)
// order.
func MemWaitNames() []string {
	names := make([]string, NumMemWaitKinds)
	copy(names, memWaitNames[:])
	return names
}

// MemWaits is a per-kind memory-wait accumulator. The zero value is
// ready to use; indexing is by MemWaitKind.
type MemWaits [NumMemWaitKinds]uint64

// Add charges n cycles to kind k.
func (m *MemWaits) Add(k MemWaitKind, n uint64) { m[k] += n }

// AddAll accumulates another attribution into m.
func (m *MemWaits) AddAll(o MemWaits) {
	for i := range m {
		m[i] += o[i]
	}
}

// Total sums all kinds.
func (m MemWaits) Total() uint64 {
	var t uint64
	for _, v := range m {
		t += v
	}
	return t
}

// MarshalJSON emits the attribution as an object keyed by kind name, in
// enum order — hand-built so the key order is stable across runs.
func (m MemWaits) MarshalJSON() ([]byte, error) {
	buf := make([]byte, 0, 16*int(NumMemWaitKinds))
	buf = append(buf, '{')
	for k := MemWaitKind(0); k < NumMemWaitKinds; k++ {
		if k > 0 {
			buf = append(buf, ',')
		}
		buf = append(buf, '"')
		buf = append(buf, memWaitNames[k]...)
		buf = append(buf, '"', ':')
		buf = appendUint(buf, m[k])
	}
	return append(buf, '}'), nil
}

// UnmarshalJSON reads the object form written by MarshalJSON.
func (m *MemWaits) UnmarshalJSON(data []byte) error {
	var obj map[string]uint64
	if err := json.Unmarshal(data, &obj); err != nil {
		return err
	}
	for k := MemWaitKind(0); k < NumMemWaitKinds; k++ {
		m[k] = obj[memWaitNames[k]]
	}
	return nil
}
