package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// The snapshot fixture is obs_test.go's testSnapshot, which exercises
// every field including the hand-ordered Breakdown and MemWaits
// marshallers.

// The snapshot's JSON form is part of the tool surface (-stats-json and
// the sweep harness consume it); the golden file pins the exact bytes so
// key order or formatting cannot drift silently.
func TestSnapshotGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := testSnapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "snapshot.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test -run SnapshotGolden -update ./internal/obs` to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("snapshot JSON drifted from golden file:\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}
}

// Unmarshalling a snapshot and writing it back must reproduce the input
// byte for byte: the stable key order makes the JSON form canonical, so
// external tooling can rewrite snapshots without spurious diffs.
func TestSnapshotRoundTrip(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "snapshot.json"))
	if err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), data) {
		t.Errorf("round trip not byte-identical:\n--- rewritten ---\n%s--- original ---\n%s", buf.Bytes(), data)
	}
	// The decoded struct matches the generator, so no field is dropped.
	want := testSnapshot()
	var got, wantBuf bytes.Buffer
	s.WriteJSON(&got)
	want.WriteJSON(&wantBuf)
	if !bytes.Equal(got.Bytes(), wantBuf.Bytes()) {
		t.Error("decoded snapshot differs from the generator")
	}
}
