package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// fixedClock steps a fake clock by step on every read, so span
// durations are deterministic.
type fixedClock struct {
	mu   sync.Mutex
	now  time.Time
	step time.Duration
}

func (c *fixedClock) read() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := c.now
	c.now = c.now.Add(c.step)
	return t
}

func testTracer(capacity int, step time.Duration) (*Tracer, *fixedClock) {
	tr := NewTracerSeeded(capacity, 0x42)
	clk := &fixedClock{now: time.Unix(1700000000, 0).UTC(), step: step}
	tr.SetClock(clk.read)
	return tr, clk
}

func TestTracerDeterministicIDsAndParentage(t *testing.T) {
	tr, _ := testTracer(16, time.Millisecond)
	root := tr.StartTrace("request")
	child := root.Child("execute").Attr("workload", "stream")
	grand := child.Child("encode")
	grand.End()
	child.End()
	root.End()

	spans := tr.Snapshot()
	if len(spans) != 3 {
		t.Fatalf("got %d spans; want 3", len(spans))
	}
	// Completion order: encode, execute, request.
	if spans[0].Name != "encode" || spans[1].Name != "execute" || spans[2].Name != "request" {
		t.Fatalf("span order = %s, %s, %s", spans[0].Name, spans[1].Name, spans[2].Name)
	}
	wantTrace := "00000000000000420000000000000001"
	for _, sp := range spans {
		if sp.Trace.String() != wantTrace {
			t.Errorf("%s: trace = %s; want %s", sp.Name, sp.Trace, wantTrace)
		}
	}
	if spans[2].Parent != (SpanID{}) {
		t.Errorf("root has parent %s", spans[2].Parent)
	}
	if spans[1].Parent != spans[2].ID {
		t.Errorf("execute parent = %s; want root %s", spans[1].Parent, spans[2].ID)
	}
	if spans[0].Parent != spans[1].ID {
		t.Errorf("encode parent = %s; want execute %s", spans[0].Parent, spans[1].ID)
	}
	if got := spans[1].Attrs; len(got) != 1 || got[0] != [2]string{"workload", "stream"} {
		t.Errorf("execute attrs = %v", got)
	}
	// Clock steps once per start and once per end: the innermost span
	// ran for exactly one step … root for five.
	if spans[0].Dur != time.Millisecond {
		t.Errorf("encode dur = %v; want 1ms", spans[0].Dur)
	}
	if spans[2].Dur != 5*time.Millisecond {
		t.Errorf("request dur = %v; want 5ms", spans[2].Dur)
	}

	// A second identically seeded tracer with the same call sequence
	// mints the same IDs.
	tr2, _ := testTracer(16, time.Millisecond)
	root2 := tr2.StartTrace("request")
	if root2.TraceID() != root.TraceID() || root2.SpanID() != root.SpanID() {
		t.Error("seeded tracers diverged on identical call sequences")
	}
}

func TestTracerJoinTraceAdoptsCallerIDs(t *testing.T) {
	tr, _ := testTracer(16, time.Millisecond)
	trace, parent, err := ParseTraceparent("00-0123456789abcdef0123456789abcdef-00f067aa0ba902b7-01")
	if err != nil {
		t.Fatal(err)
	}
	sp := tr.JoinTrace(trace, parent, "request")
	got := sp.End()
	if got.Trace != trace {
		t.Errorf("joined trace = %s; want %s", got.Trace, trace)
	}
	if got.Parent != parent {
		t.Errorf("joined parent = %s; want %s", got.Parent, parent)
	}
	// A zero trace ID falls back to a fresh trace.
	fresh := tr.JoinTrace(TraceID{}, SpanID{}, "request").End()
	if fresh.Trace.IsZero() {
		t.Error("JoinTrace with zero trace minted a zero trace ID")
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	tr, _ := testTracer(16, 0)
	sp := tr.StartTrace("request")
	header := FormatTraceparent(sp.TraceID(), sp.SpanID())
	trace, span, err := ParseTraceparent(header)
	if err != nil {
		t.Fatalf("parsing %q: %v", header, err)
	}
	if trace != sp.TraceID() || span != sp.SpanID() {
		t.Fatalf("round trip %q -> %s/%s; want %s/%s", header, trace, span, sp.TraceID(), sp.SpanID())
	}

	bad := []string{
		"",
		"00-short-00f067aa0ba902b7-01",
		"00-0123456789abcdef0123456789abcdef-badhex!!!!!!!!!!-01",
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // zero trace
		"00-0123456789abcdef0123456789abcdef-0000000000000000-01", // zero span
		"000123456789abcdef0123456789abcdef00f067aa0ba902b701",    // no dashes
	}
	for _, s := range bad {
		if _, _, err := ParseTraceparent(s); err == nil {
			t.Errorf("ParseTraceparent(%q) accepted", s)
		}
	}
}

func TestTracerNilIsFree(t *testing.T) {
	var tr *Tracer
	sp := tr.StartTrace("request")
	if sp != nil {
		t.Fatal("nil tracer returned a span")
	}
	child := sp.Child("inner").Attr("k", "v")
	if got := child.End(); got.Dur != 0 || got.Name != "" {
		t.Fatalf("nil span End = %+v; want zero", got)
	}
	if tr.Snapshot() != nil || tr.Recorded() != 0 || tr.Dropped() != 0 {
		t.Fatal("nil tracer reported recorded spans")
	}
	if tr.Now().IsZero() {
		t.Fatal("nil tracer Now returned zero time")
	}
}

func TestTracerRingBoundsAndConcurrency(t *testing.T) {
	const capacity = 64
	const workers = 8
	const perWorker = 200
	tr := NewTracerSeeded(capacity, 7)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				root := tr.StartTrace("request")
				root.Child("stage").Attr("i", "x").End()
				root.End()
				// Interleave readers with writers.
				if i%50 == 0 {
					tr.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	total := uint64(workers * perWorker * 2)
	if got := tr.Recorded(); got != total {
		t.Fatalf("Recorded = %d; want %d", got, total)
	}
	if got := tr.Dropped(); got != total-capacity {
		t.Fatalf("Dropped = %d; want %d", got, total-capacity)
	}
	spans := tr.Snapshot()
	if len(spans) > capacity {
		t.Fatalf("snapshot retained %d spans; ring capacity is %d", len(spans), capacity)
	}
	for _, sp := range spans {
		if sp.Name != "request" && sp.Name != "stage" {
			t.Fatalf("torn span in snapshot: %+v", sp)
		}
	}
}

func TestWriteSpansChrome(t *testing.T) {
	tr, _ := testTracer(16, time.Millisecond)
	root := tr.StartTrace("request")
	root.Child("execute").Attr("workload", "fft").End()
	root.End()
	other := tr.StartTrace("request")
	other.End()

	var sb strings.Builder
	if err := WriteSpansChrome(&sb, tr.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`"thread_name"`,
		`"trace 0000000000000042"`,
		`"execute"`,
		`"workload":"fft"`,
		`"ph":"X"`,
		`"parent"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("chrome export missing %s:\n%s", want, out)
		}
	}
	// Two traces -> two timelines.
	if got := strings.Count(out, `"thread_name"`); got != 2 {
		t.Errorf("got %d timelines; want 2", got)
	}

	var empty strings.Builder
	if err := WriteSpansChrome(&empty, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(empty.String(), "traceEvents") {
		t.Errorf("empty export = %q", empty.String())
	}
}
