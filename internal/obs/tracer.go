package obs

import (
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"sort"
	"sync/atomic"
	"time"
)

// Tracer is the host-side span layer: where the cycle-accounting stack
// (StallReason, the timing ledger) explains where *simulated* time goes,
// the Tracer explains where a service request's *wall* time goes —
// queueing, cache lookups, coalescing, execution, encoding, storage.
// Spans form trees under a trace ID (W3C-trace-context shaped, so an
// HTTP client's traceparent header threads straight through), and
// finished spans land in a fixed-size lock-free ring: recording is an
// atomic counter increment plus a pointer store, cheap enough to leave
// on in the serving hot path.
//
// Determinism discipline: IDs come from a seed plus an atomic counter —
// never from math/rand — and the clock is injectable, so tests pin both
// and golden-compare whole span trees. A nil *Tracer is valid and free:
// every method on it and on the nil *ActiveSpan it returns is a no-op,
// which is how the batch CLIs run untraced without a branch at every
// call site.
type Tracer struct {
	clock     func() time.Time
	seed      uint64
	nextTrace atomic.Uint64
	nextSpan  atomic.Uint64

	ring     []atomic.Pointer[Span]
	pos      atomic.Uint64 // total spans recorded (ring head = pos % len)
	dropped  atomic.Uint64 // spans overwritten after the ring lapped
	capacity int
}

// TraceID identifies one request tree (16 bytes, W3C trace-context).
type TraceID [16]byte

// SpanID identifies one span within a trace (8 bytes, W3C trace-context).
type SpanID [8]byte

// String returns the ID as lowercase hex (the traceparent wire form).
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// String returns the ID as lowercase hex (the traceparent wire form).
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// IsZero reports whether the ID is the invalid all-zero value.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports whether the ID is the invalid all-zero value.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// Span is one finished operation: a named interval with attributes,
// linked to its parent within a trace.
type Span struct {
	Trace  TraceID
	ID     SpanID
	Parent SpanID // zero for a root span
	Name   string
	Start  time.Time
	Dur    time.Duration
	Attrs  [][2]string
}

// DefaultTraceCapacity sizes the span ring when NewTracer gets zero:
// enough for a few thousand requests' worth of span trees.
const DefaultTraceCapacity = 4096

// NewTracer returns a Tracer whose ID seed derives from the wall clock,
// so concurrently started processes do not collide. capacity <= 0
// selects DefaultTraceCapacity.
func NewTracer(capacity int) *Tracer {
	return NewTracerSeeded(capacity, uint64(time.Now().UnixNano())) //detlint:clock — seed only; tests use NewTracerSeeded
}

// NewTracerSeeded is NewTracer with an explicit ID seed — the
// deterministic form tests use (fixed seed + SetClock = golden span
// trees).
func NewTracerSeeded(capacity int, seed uint64) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	if seed == 0 {
		seed = 1 // all-zero trace IDs are invalid on the wire
	}
	return &Tracer{
		clock:    time.Now, //detlint:clock — the injectable seam; SetClock overrides
		seed:     seed,
		ring:     make([]atomic.Pointer[Span], capacity),
		capacity: capacity,
	}
}

// SetClock replaces the time source (tests pin a fixed or stepped
// clock). Call before the first span starts.
func (t *Tracer) SetClock(clock func() time.Time) {
	t.clock = clock
}

// Now reads the tracer's clock (time.Now unless SetClock replaced it).
// A nil tracer reads the real clock.
func (t *Tracer) Now() time.Time {
	if t == nil {
		return time.Now() //detlint:clock — nil tracer = untraced path, times unused
	}
	return t.clock()
}

// newTraceID mints trace ID n: seed in the high 8 bytes, counter in the
// low 8 — unique per tracer, deterministic under a fixed seed.
func (t *Tracer) newTraceID() TraceID {
	var id TraceID
	binary.BigEndian.PutUint64(id[:8], t.seed)
	binary.BigEndian.PutUint64(id[8:], t.nextTrace.Add(1))
	return id
}

func (t *Tracer) newSpanID() SpanID {
	var id SpanID
	binary.BigEndian.PutUint64(id[:], t.nextSpan.Add(1))
	return id
}

// ActiveSpan is a started, not yet finished span. It is owned by one
// goroutine at a time (hand-off through a channel or mutex is fine);
// Attr and End must not race. All methods are nil-receiver safe.
type ActiveSpan struct {
	t    *Tracer
	span Span
}

// StartTrace begins a new trace rooted at a span named name.
func (t *Tracer) StartTrace(name string) *ActiveSpan {
	if t == nil {
		return nil
	}
	return t.start(t.newTraceID(), SpanID{}, name)
}

// JoinTrace begins this process's root span inside an existing trace —
// the traceparent-propagation entry point: trace is the caller's trace
// ID and parent the caller's span.
func (t *Tracer) JoinTrace(trace TraceID, parent SpanID, name string) *ActiveSpan {
	if t == nil {
		return nil
	}
	if trace.IsZero() {
		return t.StartTrace(name)
	}
	return t.start(trace, parent, name)
}

func (t *Tracer) start(trace TraceID, parent SpanID, name string) *ActiveSpan {
	return &ActiveSpan{t: t, span: Span{
		Trace:  trace,
		ID:     t.newSpanID(),
		Parent: parent,
		Name:   name,
		Start:  t.clock(),
	}}
}

// Child starts a sub-span of s. A nil s yields nil, so untraced call
// paths stay branch-free.
func (s *ActiveSpan) Child(name string) *ActiveSpan {
	if s == nil {
		return nil
	}
	return s.t.start(s.span.Trace, s.span.ID, name)
}

// Attr annotates the span. Values are plain strings; format numbers at
// the call site so goldens stay stable.
func (s *ActiveSpan) Attr(key, value string) *ActiveSpan {
	if s == nil {
		return nil
	}
	s.span.Attrs = append(s.span.Attrs, [2]string{key, value})
	return s
}

// TraceID returns the span's trace ID (zero for nil).
func (s *ActiveSpan) TraceID() TraceID {
	if s == nil {
		return TraceID{}
	}
	return s.span.Trace
}

// SpanID returns the span's own ID (zero for nil).
func (s *ActiveSpan) SpanID() SpanID {
	if s == nil {
		return SpanID{}
	}
	return s.span.ID
}

// End finishes the span, records it into the ring, and returns the
// finished value (callers feed Span.Dur into latency histograms). A nil
// s returns a zero Span. End must be called at most once.
func (s *ActiveSpan) End() Span {
	if s == nil {
		return Span{}
	}
	s.span.Dur = s.t.clock().Sub(s.span.Start)
	s.t.record(s.span)
	return s.span
}

// record claims the next ring slot with one atomic add and publishes
// the span with one atomic pointer store. Two writers never share a
// slot index, so the only race is a reader observing a slot mid-lap —
// and it then simply sees whichever complete span the pointer held.
func (t *Tracer) record(sp Span) {
	n := t.pos.Add(1)
	if n > uint64(t.capacity) {
		t.dropped.Add(1)
	}
	t.ring[(n-1)%uint64(t.capacity)].Store(&sp)
}

// Recorded reports how many spans have ever finished; Dropped how many
// of those the ring has already overwritten.
func (t *Tracer) Recorded() uint64 {
	if t == nil {
		return 0
	}
	return t.pos.Load()
}

// Dropped reports the spans lost to ring wrap-around.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// Snapshot returns the retained spans, oldest first by ring position.
// It is safe against concurrent recording; spans finishing during the
// snapshot may or may not appear.
func (t *Tracer) Snapshot() []Span {
	if t == nil {
		return nil
	}
	n := t.pos.Load()
	cap64 := uint64(t.capacity)
	start := uint64(0)
	if n > cap64 {
		start = n - cap64
	}
	out := make([]Span, 0, n-start)
	for i := start; i < n; i++ {
		if p := t.ring[i%cap64].Load(); p != nil {
			out = append(out, *p)
		}
	}
	return out
}

// traceparent is the W3C trace-context header:
// version "00" - 32 hex trace ID - 16 hex span ID - 2 hex flags.
const traceparentLen = 2 + 1 + 32 + 1 + 16 + 1 + 2

// FormatTraceparent renders the W3C traceparent header value for a
// span (flags always "01": sampled).
func FormatTraceparent(trace TraceID, span SpanID) string {
	return "00-" + trace.String() + "-" + span.String() + "-01"
}

// ParseTraceparent reads a W3C traceparent header value. It accepts any
// version byte (per spec, unknown versions parse as version 00) and
// rejects malformed or all-zero IDs.
func ParseTraceparent(s string) (TraceID, SpanID, error) {
	var trace TraceID
	var span SpanID
	if len(s) < traceparentLen || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return trace, span, fmt.Errorf("obs: malformed traceparent %q", s)
	}
	if _, err := hex.Decode(trace[:], []byte(s[3:35])); err != nil {
		return trace, span, fmt.Errorf("obs: malformed traceparent trace ID %q", s[3:35])
	}
	if _, err := hex.Decode(span[:], []byte(s[36:52])); err != nil {
		return trace, span, fmt.Errorf("obs: malformed traceparent span ID %q", s[36:52])
	}
	if trace.IsZero() || span.IsZero() {
		return trace, span, fmt.Errorf("obs: traceparent %q has an all-zero ID", s)
	}
	return trace, span, nil
}

// WriteSpansChrome renders service spans as a Chrome trace-event
// document through the same writer the simulators use, so a sweep's
// queueing and coalescing behaviour opens in the same viewer as guest
// traces. Each trace ID becomes one timeline (tid, in order of first
// appearance); timestamps are microseconds since the earliest span.
// Output is deterministic for a given span slice.
func WriteSpansChrome(w io.Writer, spans []Span) error {
	if len(spans) == 0 {
		return WriteChromeTrace(w, nil, nil, nil)
	}
	base := spans[0].Start
	for _, sp := range spans {
		if sp.Start.Before(base) {
			base = sp.Start
		}
	}
	tids := make(map[TraceID]int)
	var threads []TraceThread
	var slices []TraceSlice
	for _, sp := range spans {
		tid, ok := tids[sp.Trace]
		if !ok {
			tid = len(tids) + 1
			tids[sp.Trace] = tid
			threads = append(threads, TraceThread{PID: 1, TID: tid, Name: "trace " + sp.Trace.String()[:16]})
		}
		args := [][2]string{{"span", sp.ID.String()}}
		if !sp.Parent.IsZero() {
			args = append(args, [2]string{"parent", sp.Parent.String()})
		}
		args = append(args, sp.Attrs...)
		slices = append(slices, TraceSlice{
			Name:  sp.Name,
			PID:   1,
			TID:   tid,
			Start: uint64(sp.Start.Sub(base) / time.Microsecond),
			Dur:   uint64(sp.Dur / time.Microsecond),
			Args:  args,
		})
	}
	sort.SliceStable(threads, func(i, j int) bool { return threads[i].TID < threads[j].TID })
	return WriteChromeTrace(w, threads, slices, nil)
}
