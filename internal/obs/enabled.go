//go:build !cyclops_noobs

package obs

// Enabled reports whether per-reason and per-resource accounting is
// compiled in. It is a constant: when false (build tag cyclops_noobs)
// every `if obs.Enabled` increment is eliminated at compile time, making
// the observability layer literally free. Legacy run/stall totals are
// charged unconditionally either way.
const Enabled = true
