package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestMetricsTextExportIsSorted(t *testing.T) {
	m := NewMetrics()
	m.Counter("zeta").Add(3)
	m.Counter("alpha").Inc()
	m.Func("mid_gauge", func() uint64 { return 42 })

	var sb strings.Builder
	if err := m.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	want := "alpha 1\nmid_gauge 42\nzeta 3\n"
	if sb.String() != want {
		t.Fatalf("export = %q; want %q", sb.String(), want)
	}
}

func TestMetricsCounterIsSharedByName(t *testing.T) {
	m := NewMetrics()
	a := m.Counter("shared")
	b := m.Counter("shared")
	if a != b {
		t.Fatal("same name returned distinct counters")
	}
	a.Add(2)
	b.Inc()
	if got := a.Load(); got != 3 {
		t.Fatalf("Load = %d; want 3", got)
	}
}

func TestMetricsNameCollisionsPanic(t *testing.T) {
	cases := []struct {
		name string
		set  func(m *Metrics)
	}{
		{"func twice", func(m *Metrics) {
			m.Func("x", func() uint64 { return 0 })
			m.Func("x", func() uint64 { return 0 })
		}},
		{"counter then func", func(m *Metrics) {
			m.Counter("x")
			m.Func("x", func() uint64 { return 0 })
		}},
		{"func then counter", func(m *Metrics) {
			m.Func("x", func() uint64 { return 0 })
			m.Counter("x")
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			tc.set(NewMetrics())
		})
	}
}

func TestMetricsConcurrentUse(t *testing.T) {
	m := NewMetrics()
	c := m.Counter("hits")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
			var sb strings.Builder
			if err := m.WriteText(&sb); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != 8000 {
		t.Fatalf("counter = %d; want 8000", got)
	}
}
