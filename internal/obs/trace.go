package obs

import (
	"bufio"
	"io"
	"strconv"
)

// TraceSlice is one complete ("ph":"X") event on a thread timeline:
// Start and Dur are in simulated cycles, reported to Chrome as
// microseconds so one trace-viewer tick equals one cycle.
type TraceSlice struct {
	Name string
	// PID groups timelines (we use the quad); TID is the thread unit.
	PID, TID int
	Start    uint64
	Dur      uint64
	// Args are extra key/value annotations, emitted in slice order.
	Args [][2]string
}

// TraceThread names one timeline via a thread_name metadata event.
type TraceThread struct {
	PID, TID int
	Name     string
}

// TraceCounter is one counter ("ph":"C") sample: named numeric series at
// one instant on a thread timeline. Trace viewers render the series as a
// stacked area track; we use it to publish each thread unit's memory-wait
// sub-attribution (port/bank/fill/hop) at the end of its run.
type TraceCounter struct {
	Name     string
	PID, TID int
	At       uint64
	// Series holds name/value pairs, emitted in order; values are raw
	// decimal numbers.
	Series [][2]string
}

// WriteChromeTrace writes a Chrome trace-event JSON document (the
// "JSON Object Format": {"traceEvents": [...]}) loadable in
// chrome://tracing and Perfetto. Events are written in the order given,
// metadata first, then slices, then counters, so output is deterministic.
func WriteChromeTrace(w io.Writer, threads []TraceThread, slices []TraceSlice, counters []TraceCounter) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("{\"traceEvents\":[")
	first := true
	comma := func() {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
	}
	for _, t := range threads {
		comma()
		bw.WriteString(`{"name":"thread_name","ph":"M","pid":`)
		bw.WriteString(strconv.Itoa(t.PID))
		bw.WriteString(`,"tid":`)
		bw.WriteString(strconv.Itoa(t.TID))
		bw.WriteString(`,"args":{"name":`)
		bw.WriteString(strconv.Quote(t.Name))
		bw.WriteString("}}")
	}
	for _, s := range slices {
		comma()
		bw.WriteString(`{"name":`)
		bw.WriteString(strconv.Quote(s.Name))
		bw.WriteString(`,"ph":"X","ts":`)
		bw.WriteString(strconv.FormatUint(s.Start, 10))
		bw.WriteString(`,"dur":`)
		bw.WriteString(strconv.FormatUint(s.Dur, 10))
		bw.WriteString(`,"pid":`)
		bw.WriteString(strconv.Itoa(s.PID))
		bw.WriteString(`,"tid":`)
		bw.WriteString(strconv.Itoa(s.TID))
		if len(s.Args) > 0 {
			bw.WriteString(`,"args":{`)
			for i, kv := range s.Args {
				if i > 0 {
					bw.WriteByte(',')
				}
				bw.WriteString(strconv.Quote(kv[0]))
				bw.WriteByte(':')
				bw.WriteString(strconv.Quote(kv[1]))
			}
			bw.WriteByte('}')
		}
		bw.WriteByte('}')
	}
	for _, c := range counters {
		comma()
		bw.WriteString(`{"name":`)
		bw.WriteString(strconv.Quote(c.Name))
		bw.WriteString(`,"ph":"C","ts":`)
		bw.WriteString(strconv.FormatUint(c.At, 10))
		bw.WriteString(`,"pid":`)
		bw.WriteString(strconv.Itoa(c.PID))
		bw.WriteString(`,"tid":`)
		bw.WriteString(strconv.Itoa(c.TID))
		bw.WriteString(`,"args":{`)
		for i, kv := range c.Series {
			if i > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(strconv.Quote(kv[0]))
			bw.WriteByte(':')
			bw.WriteString(kv[1])
		}
		bw.WriteString("}}")
	}
	bw.WriteString("],\"displayTimeUnit\":\"ms\"}\n")
	return bw.Flush()
}
