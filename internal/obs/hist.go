package obs

import (
	"fmt"
	"strconv"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket latency histogram: cumulative-style
// counts over a fixed ascending list of upper bounds (seconds) plus an
// implicit +Inf bucket, a total count, and a nanosecond-exact sum.
// Observe is three atomic adds — cheap enough for the serving hot path
// — and the bucket layout never changes after construction, so
// successive exports and merged shards line up bucket for bucket.
type Histogram struct {
	bounds []float64       // ascending upper bounds, seconds
	counts []atomic.Uint64 // len(bounds)+1; last = +Inf
	count  atomic.Uint64
	sumNs  atomic.Uint64
}

// ExpBuckets returns n exponential upper bounds: start, start*factor,
// start*factor², … — the fixed grid every latency series shares.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// DefaultLatencyBuckets spans 1µs to ~67s in doublings: wide enough for
// both a memory-tier cache hit and a full-scale simulation.
func DefaultLatencyBuckets() []float64 { return ExpBuckets(1e-6, 2, 27) }

// NewHistogram builds a histogram over the given upper bounds, which
// must be positive and strictly ascending.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	prev := 0.0
	for _, b := range bounds {
		if b <= prev {
			panic(fmt.Sprintf("obs: histogram bounds must be positive ascending, got %v", bounds))
		}
		prev = b
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one duration. Values land in the first bucket whose
// upper bound is >= the value in seconds (le semantics: a value exactly
// on an edge belongs to that edge's bucket); values past every bound
// land in +Inf. Negative durations clamp to zero.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	h.counts[h.bucket(d.Seconds())].Add(1)
	h.count.Add(1)
	h.sumNs.Add(uint64(d))
}

// bucket finds the non-cumulative bucket index for a value in seconds
// by binary search over the bounds.
func (h *Histogram) bucket(sec float64) int {
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < sec {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo // == len(bounds) means +Inf
}

// Merge adds o's observations into h. The bucket layouts must be
// identical — merging is for shards of the same series (per-worker
// histograms folding into a process total), not for re-bucketing.
func (h *Histogram) Merge(o *Histogram) error {
	if o == nil {
		return nil
	}
	if len(h.bounds) != len(o.bounds) {
		return fmt.Errorf("obs: merging histograms with %d vs %d buckets", len(h.bounds), len(o.bounds))
	}
	for i, b := range h.bounds {
		if b != o.bounds[i] {
			return fmt.Errorf("obs: merging histograms with different bounds at bucket %d (%g vs %g)", i, b, o.bounds[i])
		}
	}
	for i := range h.counts {
		h.counts[i].Add(o.counts[i].Load())
	}
	h.count.Add(o.count.Load())
	h.sumNs.Add(o.sumNs.Load())
	return nil
}

// HistogramSnapshot is a point-in-time copy of a histogram's state.
// Counts are per-bucket (not cumulative) with the +Inf bucket last.
type HistogramSnapshot struct {
	Bounds []float64
	Counts []uint64
	Count  uint64
	Sum    time.Duration
}

// Snapshot copies the histogram. Concurrent Observes may land between
// the bucket reads and the count read; each bucket value is itself
// consistent.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]uint64, len(h.counts)),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	s.Count = h.count.Load()
	s.Sum = time.Duration(h.sumNs.Load())
	return s
}

// Quantile estimates the q-quantile (0 <= q <= 1) in seconds: the upper
// bound of the bucket holding the q-th observation — a conservative
// (over-)estimate, which is the right bias for Retry-After hints. An
// empty histogram reports 0. Observations in the +Inf bucket report the
// largest finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i := range h.bounds {
		cum += h.counts[i].Load()
		if cum >= rank {
			return h.bounds[i]
		}
	}
	return h.bounds[len(h.bounds)-1]
}

// formatBound renders a bucket bound the way the text export spells it:
// shortest round-trip decimal, so "1e-06" and "0.016384" stay stable
// forever.
func formatBound(b float64) string {
	return strconv.FormatFloat(b, 'g', -1, 64)
}

// formatSeconds renders a nanosecond sum as fixed-point seconds with
// full nanosecond precision — integer arithmetic, so the export is
// byte-deterministic for a given sum.
func formatSeconds(ns uint64) string {
	return fmt.Sprintf("%d.%09d", ns/1e9, ns%1e9)
}
