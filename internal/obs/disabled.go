//go:build cyclops_noobs

package obs

// Enabled is false under the cyclops_noobs build tag: per-reason and
// per-resource accounting compiles out of the hot paths entirely.
const Enabled = false
