package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestReasonNamesCoverTaxonomy(t *testing.T) {
	seen := map[string]bool{}
	for r := StallReason(0); r < NumStallReasons; r++ {
		name := r.String()
		if name == "" || strings.HasPrefix(name, "StallReason(") {
			t.Errorf("reason %d has no name", r)
		}
		if seen[name] {
			t.Errorf("duplicate reason name %q", name)
		}
		seen[name] = true
	}
	if got := ReasonNames(); len(got) != int(NumStallReasons) {
		t.Fatalf("ReasonNames returned %d names, want %d", len(got), NumStallReasons)
	}
	if StallReason(250).String() != "StallReason(250)" {
		t.Errorf("out-of-range String() = %q", StallReason(250).String())
	}
	// The enum order is the exported column order; pin it.
	want := []string{"dep", "cacheport", "bankconflict", "fpu", "icache", "barrier", "sleep", "switch"}
	for i, w := range want {
		if got := StallReason(i).String(); got != w {
			t.Errorf("reason %d = %q, want %q", i, got, w)
		}
	}
}

func TestBreakdownAccounting(t *testing.T) {
	var b Breakdown
	b.Add(DepStall, 10)
	b.Add(FPUStall, 5)
	b.Add(DepStall, 1)
	if b[DepStall] != 11 || b[FPUStall] != 5 {
		t.Fatalf("Add: got %v", b)
	}
	if b.Total() != 16 {
		t.Fatalf("Total = %d, want 16", b.Total())
	}
	var c Breakdown
	c.Add(BarrierStall, 4)
	c.AddAll(b)
	if c.Total() != 20 || c[DepStall] != 11 || c[BarrierStall] != 4 {
		t.Fatalf("AddAll: got %v", c)
	}
}

func TestBreakdownJSONRoundTrip(t *testing.T) {
	var b Breakdown
	for r := StallReason(0); r < NumStallReasons; r++ {
		b[r] = uint64(r) * 7
	}
	data, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	// Key order must be the enum order, not Go map order.
	prev := -1
	for r := StallReason(0); r < NumStallReasons; r++ {
		idx := bytes.Index(data, []byte(`"`+r.String()+`"`))
		if idx < 0 {
			t.Fatalf("marshalled breakdown missing %q: %s", r, data)
		}
		if idx < prev {
			t.Fatalf("key %q out of enum order: %s", r, data)
		}
		prev = idx
	}
	var got Breakdown
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got != b {
		t.Fatalf("round trip: got %v want %v", got, b)
	}
	if err := got.UnmarshalJSON([]byte("[]")); err == nil {
		t.Error("UnmarshalJSON accepted a non-object")
	}
}

func testSnapshot() *Snapshot {
	s := &Snapshot{
		Cycles: 1000,
		Threads: []ThreadStat{
			{ID: 0, Quad: 0, Insts: 300, Run: 400, Stall: 100,
				Stalls:   Breakdown{DepStall: 60, FPUStall: 40},
				MemWaits: MemWaits{MemWaitPort: 7, MemWaitFill: 3}},
			{ID: 5, Quad: 1, Insts: 200, Run: 250, Stall: 50,
				Stalls:   Breakdown{CachePortStall: 20, BankConflictStall: 30},
				MemWaits: MemWaits{MemWaitBank: 11, MemWaitHop: 5}},
		},
		Resources: []ResourceStats{
			{Kind: "cacheport", ID: 0, Busy: 500, Grants: 480, Conflicts: 30, WaitCycles: 90},
			{Kind: "drambank", ID: 3, Busy: 240, Grants: 20, Conflicts: 4, WaitCycles: 18},
			{Kind: "fpu", ID: 1, Busy: 120, Grants: 120, Conflicts: 10, WaitCycles: 12},
		},
	}
	s.Finish()
	return s
}

func TestSnapshotFinishAndJSON(t *testing.T) {
	s := testSnapshot()
	if s.Insts != 500 || s.Run != 650 || s.Stall != 150 {
		t.Fatalf("Finish totals: %+v", s)
	}
	if s.Stalls.Total() != s.Stall {
		t.Fatalf("aggregate breakdown %d != stall total %d", s.Stalls.Total(), s.Stall)
	}
	if got := s.MemWaits.Total(); got != 26 {
		t.Fatalf("aggregate mem waits total %d, want 26", got)
	}

	var a, b bytes.Buffer
	if err := s.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := testSnapshot().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("snapshot JSON is not deterministic:\n%s\nvs\n%s", a.String(), b.String())
	}
	if !bytes.HasSuffix(a.Bytes(), []byte("\n")) {
		t.Error("snapshot JSON missing trailing newline")
	}

	// The document must be well-formed and carry the expected keys.
	var doc map[string]any
	if err := json.Unmarshal(a.Bytes(), &doc); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	for _, key := range []string{"cycles", "insts", "run", "stall", "stalls", "mem_waits", "threads", "resources"} {
		if _, ok := doc[key]; !ok {
			t.Errorf("snapshot missing key %q", key)
		}
	}
}

func TestWriteChromeTrace(t *testing.T) {
	threads := []TraceThread{
		{PID: 0, TID: 0, Name: "TU 0"},
		{PID: 1, TID: 4, Name: "TU 4"},
	}
	slices := []TraceSlice{
		{Name: "lw r8, 0(r1)", PID: 0, TID: 0, Start: 10, Dur: 3,
			Args: [][2]string{{"pc", "0x100"}, {"word", "0x8c280000"}}},
		{Name: "fadd", PID: 1, TID: 4, Start: 12, Dur: 1},
	}
	counters := []TraceCounter{
		{Name: "memwait", PID: 0, TID: 0, At: 13,
			Series: [][2]string{{"port", "4"}, {"bank", "2"}, {"fill", "0"}, {"hop", "1"}}},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, threads, slices, counters); err != nil {
		t.Fatal(err)
	}

	// Schema check: top-level object with a traceEvents array whose
	// entries carry the fields chrome://tracing requires.
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != len(threads)+len(slices)+len(counters) {
		t.Fatalf("got %d events, want %d", len(doc.TraceEvents), len(threads)+len(slices)+len(counters))
	}
	meta, complete, counts := 0, 0, 0
	for _, ev := range doc.TraceEvents {
		for _, key := range []string{"name", "ph", "pid", "tid"} {
			if _, ok := ev[key]; !ok {
				t.Fatalf("event missing %q: %v", key, ev)
			}
		}
		switch ev["ph"] {
		case "M":
			meta++
		case "X":
			complete++
			if _, ok := ev["ts"]; !ok {
				t.Fatalf("complete event missing ts: %v", ev)
			}
			if _, ok := ev["dur"]; !ok {
				t.Fatalf("complete event missing dur: %v", ev)
			}
		case "C":
			counts++
			args, ok := ev["args"].(map[string]any)
			if !ok {
				t.Fatalf("counter event missing args: %v", ev)
			}
			// Counter series values must be numbers, not strings.
			if v, ok := args["port"].(float64); !ok || v != 4 {
				t.Fatalf("counter port value = %v, want number 4", args["port"])
			}
		default:
			t.Fatalf("unexpected phase %v", ev["ph"])
		}
	}
	if meta != 2 || complete != 2 || counts != 1 {
		t.Fatalf("got %d metadata + %d complete + %d counter events, want 2+2+1", meta, complete, counts)
	}

	// Determinism: same input, same bytes.
	var again bytes.Buffer
	if err := WriteChromeTrace(&again, threads, slices, counters); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("trace output is not deterministic")
	}
}

func TestWriteChromeTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil, nil, nil); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("empty trace is not valid JSON: %v", err)
	}
}

func TestMemWaitNamesCoverTaxonomy(t *testing.T) {
	seen := map[string]bool{}
	for k := MemWaitKind(0); k < NumMemWaitKinds; k++ {
		name := k.String()
		if name == "" || strings.HasPrefix(name, "MemWaitKind(") {
			t.Errorf("kind %d has no name", k)
		}
		if seen[name] {
			t.Errorf("duplicate kind name %q", name)
		}
		seen[name] = true
	}
	if got := MemWaitNames(); len(got) != int(NumMemWaitKinds) {
		t.Fatalf("MemWaitNames returned %d names, want %d", len(got), NumMemWaitKinds)
	}
	if MemWaitKind(250).String() != "MemWaitKind(250)" {
		t.Errorf("out-of-range String() = %q", MemWaitKind(250).String())
	}
	// The enum order is the exported column order; pin it.
	want := []string{"port", "bank", "fill", "hop"}
	for i, w := range want {
		if got := MemWaitKind(i).String(); got != w {
			t.Errorf("kind %d = %q, want %q", i, got, w)
		}
	}
}

func TestMemWaitsAccountingAndJSON(t *testing.T) {
	var m MemWaits
	m.Add(MemWaitPort, 10)
	m.Add(MemWaitFill, 5)
	m.Add(MemWaitPort, 1)
	if m[MemWaitPort] != 11 || m[MemWaitFill] != 5 {
		t.Fatalf("Add: got %v", m)
	}
	var n MemWaits
	n.Add(MemWaitHop, 4)
	n.AddAll(m)
	if n.Total() != 20 || n[MemWaitPort] != 11 || n[MemWaitHop] != 4 {
		t.Fatalf("AddAll: got %v", n)
	}

	data, err := json.Marshal(n)
	if err != nil {
		t.Fatal(err)
	}
	// Key order must be the enum order, not Go map order.
	prev := -1
	for k := MemWaitKind(0); k < NumMemWaitKinds; k++ {
		idx := bytes.Index(data, []byte(`"`+k.String()+`"`))
		if idx < 0 {
			t.Fatalf("marshalled mem waits missing %q: %s", k, data)
		}
		if idx < prev {
			t.Fatalf("key %q out of enum order: %s", k, data)
		}
		prev = idx
	}
	var got MemWaits
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got != n {
		t.Fatalf("round trip: got %v want %v", got, n)
	}
	if err := got.UnmarshalJSON([]byte("[]")); err == nil {
		t.Error("UnmarshalJSON accepted a non-object")
	}
}

func TestEnabledDefault(t *testing.T) {
	// The default build has accounting compiled in; the cyclops_noobs
	// tag flips this to false (and this test is skipped there because
	// breakdown asserts elsewhere would be vacuous).
	if !Enabled {
		t.Skip("built with cyclops_noobs")
	}
}
