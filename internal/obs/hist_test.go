package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBucketEdges(t *testing.T) {
	h := NewHistogram([]float64{0.001, 0.01, 0.1})
	cases := []struct {
		d    time.Duration
		want int // non-cumulative bucket index
	}{
		{0, 0},
		{time.Microsecond, 0},
		{time.Millisecond, 0},              // exactly on an edge: le semantics
		{time.Millisecond + 1, 1},          // just past the edge
		{10 * time.Millisecond, 1},         // next edge
		{100 * time.Millisecond, 2},        // last finite edge
		{101 * time.Millisecond, 3},        // +Inf
		{-5 * time.Millisecond, 0},         // negative clamps to zero
		{10 * time.Second, 3},              // deep overflow
		{10*time.Millisecond + 1000000, 2}, // 11ms
	}
	for _, tc := range cases {
		h.Observe(tc.d)
	}
	snap := h.Snapshot()
	wantCounts := make([]uint64, 4)
	for _, tc := range cases {
		wantCounts[tc.want]++
	}
	for i, want := range wantCounts {
		if snap.Counts[i] != want {
			t.Errorf("bucket %d count = %d; want %d (counts %v)", i, snap.Counts[i], want, snap.Counts)
		}
	}
	if snap.Count != uint64(len(cases)) {
		t.Errorf("Count = %d; want %d", snap.Count, len(cases))
	}
}

func TestHistogramSumIsNanosecondExact(t *testing.T) {
	h := NewHistogram([]float64{1})
	h.Observe(1500 * time.Nanosecond)
	h.Observe(2500 * time.Nanosecond)
	if got := h.Snapshot().Sum; got != 4*time.Microsecond {
		t.Fatalf("Sum = %v; want 4µs", got)
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram([]float64{0.001, 0.01})
	b := NewHistogram([]float64{0.001, 0.01})
	a.Observe(time.Millisecond / 2)
	b.Observe(time.Millisecond / 2)
	b.Observe(5 * time.Millisecond)
	b.Observe(time.Second)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	snap := a.Snapshot()
	if want := []uint64{2, 1, 1}; snap.Counts[0] != want[0] || snap.Counts[1] != want[1] || snap.Counts[2] != want[2] {
		t.Fatalf("merged counts = %v; want %v", snap.Counts, want)
	}
	if snap.Count != 4 {
		t.Fatalf("merged Count = %d; want 4", snap.Count)
	}
	if snap.Sum != time.Millisecond/2*2+5*time.Millisecond+time.Second {
		t.Fatalf("merged Sum = %v", snap.Sum)
	}
	if err := a.Merge(nil); err != nil {
		t.Fatalf("merging nil: %v", err)
	}

	// Mismatched layouts refuse.
	if err := a.Merge(NewHistogram([]float64{0.001})); err == nil {
		t.Fatal("merge accepted different bucket count")
	}
	if err := a.Merge(NewHistogram([]float64{0.002, 0.01})); err == nil {
		t.Fatal("merge accepted different bounds")
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{0.001, 0.01, 0.1, 1})
	if got := h.Quantile(0.9); got != 0 {
		t.Fatalf("empty quantile = %g; want 0", got)
	}
	// 8 fast, 1 medium, 1 slow.
	for i := 0; i < 8; i++ {
		h.Observe(500 * time.Microsecond)
	}
	h.Observe(50 * time.Millisecond)
	h.Observe(10 * time.Second) // +Inf bucket
	if got := h.Quantile(0.5); got != 0.001 {
		t.Errorf("p50 = %g; want 0.001", got)
	}
	if got := h.Quantile(0.9); got != 0.1 {
		t.Errorf("p90 = %g; want 0.1", got)
	}
	// +Inf observations report the largest finite bound.
	if got := h.Quantile(1); got != 1 {
		t.Errorf("p100 = %g; want 1", got)
	}
	if got := h.Quantile(-1); got != h.Quantile(0) {
		t.Errorf("q<0 not clamped")
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1e-6, 2, 4)
	want := []float64{1e-6, 2e-6, 4e-6, 8e-6}
	for i := range want {
		if math.Abs(b[i]-want[i]) > 1e-18 {
			t.Fatalf("ExpBuckets = %v; want %v", b, want)
		}
	}
	def := DefaultLatencyBuckets()
	if len(def) != 27 || def[0] != 1e-6 {
		t.Fatalf("DefaultLatencyBuckets = %d buckets starting %g", len(def), def[0])
	}
	if top := def[len(def)-1]; top < 60 {
		t.Fatalf("largest default bucket %gs cannot hold a full-scale run", top)
	}
	for _, bad := range []func(){
		func() { ExpBuckets(0, 2, 4) },
		func() { ExpBuckets(1, 1, 4) },
		func() { ExpBuckets(1, 2, 0) },
		func() { NewHistogram(nil) },
		func() { NewHistogram([]float64{1, 1}) },
		func() { NewHistogram([]float64{-1, 1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic on invalid bucket construction")
				}
			}()
			bad()
		}()
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram(DefaultLatencyBuckets())
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Duration(i) * time.Microsecond)
				if i%100 == 0 {
					h.Snapshot()
					h.Quantile(0.5)
				}
			}
		}()
	}
	wg.Wait()
	if got := h.Snapshot().Count; got != 8000 {
		t.Fatalf("Count = %d; want 8000", got)
	}
}

func TestMetricsHistogramExport(t *testing.T) {
	m := NewMetrics()
	m.Counter("alpha").Inc()
	m.Counter("zeta").Add(2)
	h := m.Histogram("run_seconds", "workload", "stream")
	if m.Histogram("run_seconds", "workload", "stream") != h {
		t.Fatal("same name+labels returned a distinct histogram")
	}
	h.Observe(3 * time.Microsecond)
	h.Observe(3 * time.Microsecond)
	h.Observe(time.Minute) // past the largest finite bound

	var sb strings.Builder
	if err := m.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"alpha 1\n",
		"zeta 2\n",
		"run_seconds_bucket{workload=\"stream\",le=\"1e-06\"} 0\n",
		"run_seconds_bucket{workload=\"stream\",le=\"4e-06\"} 2\n",
		"run_seconds_bucket{workload=\"stream\",le=\"+Inf\"} 3\n",
		"run_seconds_count{workload=\"stream\"} 3\n",
		"run_seconds_sum{workload=\"stream\"} 60.000006000\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("export missing %q:\n%s", want, out)
		}
	}
	// The histogram block sorts between alpha and zeta and is internally
	// ordered buckets -> count -> sum.
	if !(strings.Index(out, "alpha") < strings.Index(out, "run_seconds_bucket") &&
		strings.Index(out, "run_seconds_bucket") < strings.Index(out, "run_seconds_count") &&
		strings.Index(out, "run_seconds_count") < strings.Index(out, "run_seconds_sum") &&
		strings.Index(out, "run_seconds_sum") < strings.Index(out, "zeta")) {
		t.Errorf("export block out of order:\n%s", out)
	}

	// Ordering is byte-stable: a second scrape emits the same lines in
	// the same order (values included, since nothing moved).
	var sb2 strings.Builder
	if err := m.WriteText(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != out {
		t.Errorf("second scrape differs:\n%s\nvs\n%s", sb2.String(), out)
	}

	// An unlabelled histogram exports bare _count/_sum names.
	m2 := NewMetrics()
	m2.Histogram("queue_seconds").Observe(time.Millisecond)
	var sb3 strings.Builder
	if err := m2.WriteText(&sb3); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"queue_seconds_bucket{le=\"0.001024\"} 1\n", "queue_seconds_count 1\n", "queue_seconds_sum 0.001000000\n"} {
		if !strings.Contains(sb3.String(), want) {
			t.Errorf("unlabelled export missing %q:\n%s", want, sb3.String())
		}
	}
}

func TestMetricsHistogramCollisions(t *testing.T) {
	for name, set := range map[string]func(m *Metrics){
		"counter then histogram": func(m *Metrics) { m.Counter("x"); m.Histogram("x") },
		"func then histogram":    func(m *Metrics) { m.Func("x", func() uint64 { return 0 }); m.Histogram("x") },
		"histogram then counter": func(m *Metrics) { m.Histogram("x"); m.Counter("x") },
		"histogram then func":    func(m *Metrics) { m.Histogram("x"); m.Func("x", func() uint64 { return 0 }) },
		"odd labels":             func(m *Metrics) { m.Histogram("x", "k") },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			set(NewMetrics())
		})
	}
}
