package splash

import (
	"fmt"

	"cyclops/internal/isa"
	"cyclops/internal/perf"
)

// Ocean stands in for the SPLASH-2 Ocean application: the computational
// heart of Ocean's time step is an iterative nearest-neighbour grid
// solver, reproduced here as red-black successive over-relaxation on an
// (n+2) x (n+2) grid with fixed boundaries. Threads own contiguous row
// bands; every half-sweep (one colour) ends in a barrier, giving the same
// communication-to-computation scaling as the original multigrid solver's
// relaxation sweeps. (The full multigrid hierarchy is a documented
// simplification — see DESIGN.md.)

// OceanOpts configures a run.
type OceanOpts struct {
	Config
	// N is the interior grid dimension.
	N int
	// Iters is the number of red-black iterations (default 10).
	Iters int
	// Omega is the SOR factor (default 1.5).
	Omega float64
	// Grid, when non-nil, supplies the (n+2)*(n+2) initial grid and
	// receives the relaxed result.
	Grid []float64
}

// RunOcean executes the kernel.
func RunOcean(opts OceanOpts) (*Result, error) {
	n := opts.N
	if n < 2 {
		return nil, fmt.Errorf("splash: ocean grid %d too small", n)
	}
	iters := opts.Iters
	if iters == 0 {
		iters = 10
	}
	omega := opts.Omega
	if omega == 0 {
		omega = 1.5
	}
	mach, err := opts.machine()
	if err != nil {
		return nil, err
	}
	if opts.Threads > n {
		return nil, fmt.Errorf("splash: %d threads exceed %d grid rows", opts.Threads, n)
	}
	stride := n + 2
	g := opts.Grid
	if g == nil {
		g = OceanGrid(n)
	}
	if len(g) != stride*stride {
		return nil, fmt.Errorf("splash: grid length %d != %d", len(g), stride*stride)
	}
	ea := mach.SharedAlloc(8 * stride * stride)
	addr := func(i, j int) uint32 { return ea + uint32(8*(i*stride+j)) }
	bar := newBarrier(mach, opts.Threads, opts.Barrier)

	err = mach.SpawnN(opts.Threads, func(t *perf.T, p int) {
		lo, hi := span(n, p, opts.Threads)
		lo++ // grid rows are 1-based (row 0 is boundary)
		hi++
		for it := 0; it < iters; it++ {
			for colour := 0; colour < 2; colour++ {
				for i := lo; i < hi; i++ {
					// Points of this colour in row i.
					jStart := 1 + (i+colour)%2
					count := (n - jStart + 2) / 2
					if count <= 0 {
						continue
					}
					// Stencil traffic: the row above, below and the
					// centre row stream through the cache; writes
					// touch the colour's points.
					v1 := t.LoadBlock(addr(i-1, jStart), count, 8, 16)
					v2 := t.LoadBlock(addr(i+1, jStart), count, 8, 16)
					v3 := t.LoadBlock(addr(i, jStart-1), count+1, 8, 16)
					for j := jStart; j <= n; j += 2 {
						u := g[i*stride+j]
						nb := g[(i-1)*stride+j] + g[(i+1)*stride+j] +
							g[i*stride+j-1] + g[i*stride+j+1]
						g[i*stride+j] = u + omega*(nb/4-u)
					}
					// 4 adds + multiply-add per point.
					f := t.FPBlock(isa.PipeAdd, 4*count, v1, v2, v3)
					f = t.FPBlock(isa.PipeBoth, count, f)
					t.StoreBlock(addr(i, jStart), count, 8, 16, f)
					t.Work(2 * count)
				}
				bar.wait(t, p)
			}
		}
	})
	if err != nil {
		return nil, err
	}
	if err := mach.Run(); err != nil {
		return nil, err
	}
	if opts.Grid != nil {
		copy(opts.Grid, g)
	}
	return result("Ocean", fmt.Sprintf("%dx%d grid, %d iters", n, n, iters), opts.Threads, mach), nil
}

// OceanGrid builds the default test problem: zero interior, hot top edge.
func OceanGrid(n int) []float64 {
	stride := n + 2
	g := make([]float64, stride*stride)
	for j := 0; j < stride; j++ {
		g[j] = 100
	}
	return g
}

// OceanResidual returns the maximum absolute Laplace residual over the
// interior (for tests: relaxation must reduce it).
func OceanResidual(g []float64, n int) float64 {
	stride := n + 2
	var worst float64
	for i := 1; i <= n; i++ {
		for j := 1; j <= n; j++ {
			r := g[(i-1)*stride+j] + g[(i+1)*stride+j] +
				g[i*stride+j-1] + g[i*stride+j+1] - 4*g[i*stride+j]
			if d := abs(r); d > worst {
				worst = d
			}
		}
	}
	return worst
}
