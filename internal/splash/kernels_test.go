package splash

import (
	"sort"
	"testing"
	"testing/quick"
)

// --- LU ---------------------------------------------------------------------

func TestLUFactorsCorrectly(t *testing.T) {
	const n = 64
	orig := DominantMatrix(n)
	a := make([]float64, len(orig))
	copy(a, orig)
	_, err := RunLU(LUOpts{Config: Config{Threads: 4}, N: n, A: a})
	if err != nil {
		t.Fatal(err)
	}
	if r := LUResidual(a, orig, n); r > 1e-8*float64(n) {
		t.Errorf("LU residual = %g", r)
	}
}

func TestLUThreadCountInvariance(t *testing.T) {
	const n = 48
	ref := DominantMatrix(n)
	a1 := append([]float64(nil), ref...)
	a2 := append([]float64(nil), ref...)
	if _, err := RunLU(LUOpts{Config: Config{Threads: 1}, N: n, A: a1}); err != nil {
		t.Fatal(err)
	}
	if _, err := RunLU(LUOpts{Config: Config{Threads: 7}, N: n, A: a2}); err != nil {
		t.Fatal(err)
	}
	for i := range a1 {
		if d := abs(a1[i] - a2[i]); d > 1e-12 {
			t.Fatalf("factors differ at %d by %g", i, d)
		}
	}
}

func TestLUPropertyRandomMatrices(t *testing.T) {
	f := func(seed uint32) bool {
		const n = 32
		orig := DominantMatrix(n)
		// Perturb deterministically from the seed.
		s := seed | 1
		for i := range orig {
			s = s*1664525 + 1013904223
			orig[i] += float64(s>>24) / 1024
		}
		for i := 0; i < n; i++ {
			orig[i*n+i] += float64(n) // keep dominant
		}
		a := append([]float64(nil), orig...)
		if _, err := RunLU(LUOpts{Config: Config{Threads: 3}, N: n, A: a}); err != nil {
			return false
		}
		return LUResidual(a, orig, n) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestLURejectsBadShapes(t *testing.T) {
	if _, err := RunLU(LUOpts{Config: Config{Threads: 1}, N: 50, Block: 16}); err == nil {
		t.Error("non-multiple size accepted")
	}
	if _, err := RunLU(LUOpts{Config: Config{Threads: 200}, N: 64}); err == nil {
		t.Error("too many threads accepted")
	}
}

func TestLUScales(t *testing.T) {
	base, err := RunLU(LUOpts{Config: Config{Threads: 1}, N: 128})
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunLU(LUOpts{Config: Config{Threads: 16}, N: 128})
	if err != nil {
		t.Fatal(err)
	}
	if s := par.Speedup(base); s < 3 {
		t.Errorf("16-thread LU speedup = %.2f, want > 3 (128x128 is small)", s)
	}
}

// --- Radix ------------------------------------------------------------------

func TestRadixSorts(t *testing.T) {
	keys := RandomKeys(10000, 7)
	orig := append([]uint32(nil), keys...)
	_, err := RunRadix(RadixOpts{Config: Config{Threads: 8}, N: len(keys), Keys: keys})
	if err != nil {
		t.Fatal(err)
	}
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
		t.Fatal("output not sorted")
	}
	// Same multiset.
	sort.Slice(orig, func(i, j int) bool { return orig[i] < orig[j] })
	for i := range keys {
		if keys[i] != orig[i] {
			t.Fatalf("key %d: %d != %d (not a permutation)", i, keys[i], orig[i])
		}
	}
}

func TestRadixPropertySorted(t *testing.T) {
	f := func(seed uint32, tc uint8) bool {
		threads := int(tc%16) + 1
		keys := RandomKeys(2000, seed)
		_, err := RunRadix(RadixOpts{Config: Config{Threads: threads}, N: len(keys), Keys: keys})
		if err != nil {
			return false
		}
		return sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

func TestRadixOddSizesAndWidths(t *testing.T) {
	keys := RandomKeys(1237, 3)
	_, err := RunRadix(RadixOpts{Config: Config{Threads: 5}, N: len(keys), RadixBits: 11, Keys: keys})
	if err != nil {
		t.Fatal(err)
	}
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
		t.Error("11-bit radix failed on odd-size input")
	}
	if _, err := RunRadix(RadixOpts{Config: Config{Threads: 1}, N: 0}); err == nil {
		t.Error("zero keys accepted")
	}
	if _, err := RunRadix(RadixOpts{Config: Config{Threads: 1}, N: 10, RadixBits: 20}); err == nil {
		t.Error("20-bit radix accepted")
	}
}

func TestRadixScales(t *testing.T) {
	base, err := RunRadix(RadixOpts{Config: Config{Threads: 1}, N: 1 << 15})
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunRadix(RadixOpts{Config: Config{Threads: 16}, N: 1 << 15})
	if err != nil {
		t.Fatal(err)
	}
	if s := par.Speedup(base); s < 4 {
		t.Errorf("16-thread radix speedup = %.2f, want > 4", s)
	}
}

// --- Ocean ------------------------------------------------------------------

func TestOceanReducesResidual(t *testing.T) {
	const n = 32
	g := OceanGrid(n)
	before := OceanResidual(g, n)
	_, err := RunOcean(OceanOpts{Config: Config{Threads: 4}, N: n, Iters: 50, Grid: g})
	if err != nil {
		t.Fatal(err)
	}
	after := OceanResidual(g, n)
	if after >= before/4 {
		t.Errorf("residual %g -> %g: SOR not converging", before, after)
	}
}

func TestOceanThreadCountInvariance(t *testing.T) {
	const n = 24
	g1 := OceanGrid(n)
	g2 := OceanGrid(n)
	if _, err := RunOcean(OceanOpts{Config: Config{Threads: 1}, N: n, Iters: 8, Grid: g1}); err != nil {
		t.Fatal(err)
	}
	if _, err := RunOcean(OceanOpts{Config: Config{Threads: 6}, N: n, Iters: 8, Grid: g2}); err != nil {
		t.Fatal(err)
	}
	for i := range g1 {
		if abs(g1[i]-g2[i]) > 1e-12 {
			t.Fatalf("grids diverge at %d", i)
		}
	}
}

func TestOceanBoundariesFixed(t *testing.T) {
	const n = 16
	g := OceanGrid(n)
	if _, err := RunOcean(OceanOpts{Config: Config{Threads: 2}, N: n, Iters: 5, Grid: g}); err != nil {
		t.Fatal(err)
	}
	stride := n + 2
	for j := 0; j < stride; j++ {
		if g[j] != 100 {
			t.Fatalf("top boundary changed at %d", j)
		}
		if g[(stride-1)*stride+j] != 0 {
			t.Fatalf("bottom boundary changed at %d", j)
		}
	}
}

func TestOceanRejectsBadShapes(t *testing.T) {
	if _, err := RunOcean(OceanOpts{Config: Config{Threads: 1}, N: 1}); err == nil {
		t.Error("tiny grid accepted")
	}
	if _, err := RunOcean(OceanOpts{Config: Config{Threads: 64}, N: 32}); err == nil {
		t.Error("more threads than rows accepted")
	}
}

func TestOceanScales(t *testing.T) {
	base, err := RunOcean(OceanOpts{Config: Config{Threads: 1}, N: 128, Iters: 4})
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunOcean(OceanOpts{Config: Config{Threads: 16}, N: 128, Iters: 4})
	if err != nil {
		t.Fatal(err)
	}
	if s := par.Speedup(base); s < 5 {
		t.Errorf("16-thread ocean speedup = %.2f, want > 5", s)
	}
}
