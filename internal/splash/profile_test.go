package splash

import (
	"testing"

	"cyclops/internal/obs"
)

// At a sampling interval of 1 the profiler samples every charged cycle,
// so the direct-execution engine's sample totals must equal the summed
// run+stall ledger totals exactly.
func TestFFTProfileReconcilesAtIntervalOne(t *testing.T) {
	if !obs.Enabled {
		t.Skip("observability compiled out")
	}
	r, err := RunFFT(FFTOpts{
		Config: Config{Threads: 4, Barrier: SW, ProfileEvery: 1},
		N:      256,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Profile == nil {
		t.Fatal("no profile attached")
	}
	if got, want := r.Profile.TotalSamples(), r.Run+r.Stall; got != want {
		t.Errorf("%d samples at interval 1, ledger run+stall = %d", got, want)
	}
}

// The FFT kernel annotates its six-step phases with T.Region; the report
// must attribute cycles to every phase plus the barrier region.
func TestFFTProfileCoversPhases(t *testing.T) {
	if !obs.Enabled {
		t.Skip("observability compiled out")
	}
	r, err := RunFFT(FFTOpts{
		Config: Config{Threads: 4, Barrier: HW, ProfileEvery: 16},
		N:      1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := r.Profile.Report(r.Regions)
	seen := map[string]bool{}
	for _, row := range rep.Rows {
		seen[row.Name] = true
	}
	for _, want := range []string{"transpose", "fft_rows", "twiddle", "barrier"} {
		if !seen[want] {
			t.Errorf("phase %q missing from profile report (rows: %v)", want, rep.Rows)
		}
	}
}

// Timeline interval deltas on the direct-execution engine must telescope
// to the end-of-run totals the Result reports.
func TestFFTTimelineSumMatchesTotals(t *testing.T) {
	if !obs.Enabled {
		t.Skip("observability compiled out")
	}
	r, err := RunFFT(FFTOpts{
		Config: Config{Threads: 4, Barrier: SW, TimelineEvery: 128},
		N:      1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Timeline == nil {
		t.Fatal("no timeline attached")
	}
	if len(r.Timeline.Rows()) == 0 {
		t.Fatal("timeline recorded no intervals")
	}
	sum := r.Timeline.Sum()
	if sum.Run != r.Run || sum.Stall != r.Stall {
		t.Errorf("timeline sum run/stall = %d/%d, result totals %d/%d", sum.Run, sum.Stall, r.Run, r.Stall)
	}
	if sum.Stalls != r.Stalls {
		t.Errorf("timeline stall breakdown %v != result %v", sum.Stalls, r.Stalls)
	}
	if sum.MemWaits != r.MemWaits {
		t.Errorf("timeline memwaits %v != result %v", sum.MemWaits, r.MemWaits)
	}
}
