package splash

import (
	"fmt"
	"math"

	"cyclops/internal/isa"
	"cyclops/internal/perf"
)

// Barnes is the SPLASH-2 Barnes-Hut N-body application: bodies exert
// gravity on each other through a Barnes-Hut octree with the theta
// opening criterion. Each time step builds the tree, computes forces in
// parallel over a body partition, and integrates with leapfrog, with
// barriers between phases. As in the original, force computation
// dominates; tree build runs on thread 0 (a documented simplification of
// SPLASH-2's parallel loading — it is a small fraction of the step and
// bounds speedup realistically via Amdahl's law).
//
// Interaction arithmetic is charged as fused multiply-add work including
// a software reciprocal-square-root (Newton-Raphson), the natural coding
// for a machine whose divide/sqrt unit is shared per quad.

// BarnesOpts configures a run.
type BarnesOpts struct {
	Config
	// NBodies is the body count; Steps the number of time steps
	// (default 2); Theta the opening angle (default 0.7).
	NBodies int
	Steps   int
	Theta   float64
	// Bodies, when non-nil, supplies initial states and receives the
	// final ones.
	Bodies []Body
}

// Body is one particle.
type Body struct {
	Pos, Vel, Acc [3]float64
	Mass          float64
}

// octNode is one cell of the Barnes-Hut tree.
type octNode struct {
	center [3]float64
	half   float64
	mass   float64
	com    [3]float64
	child  [8]int32 // node indices; -1 empty
	body   int32    // body index for leaves; -1 internal
}

// RunBarnes executes the kernel.
func RunBarnes(opts BarnesOpts) (*Result, error) {
	n := opts.NBodies
	if n < 2 {
		return nil, fmt.Errorf("splash: barnes needs at least 2 bodies, got %d", n)
	}
	steps := opts.Steps
	if steps == 0 {
		steps = 2
	}
	theta := opts.Theta
	if theta == 0 {
		theta = 0.7
	}
	mach, err := opts.machine()
	if err != nil {
		return nil, err
	}
	bodies := opts.Bodies
	if bodies == nil {
		bodies = PlummerBodies(n, 99)
	}
	if len(bodies) != n {
		return nil, fmt.Errorf("splash: bodies length %d != %d", len(bodies), n)
	}

	const dt = 0.01
	eaBodies := mach.SharedAlloc(64 * n) // one padded line per body
	eaTree := mach.SharedAlloc(64 * 2 * n)
	tree := &octTree{}
	bar := newBarrier(mach, opts.Threads, opts.Barrier)

	err = mach.SpawnN(opts.Threads, func(t *perf.T, p int) {
		for s := 0; s < steps; s++ {
			// Phase 1: thread 0 rebuilds the tree.
			if p == 0 {
				tree.build(bodies)
				// Charge ~1 store + bookkeeping per insertion level.
				t.LoadBlock(eaBodies, n, 8, 64)
				t.Work(12 * len(tree.nodes))
				t.StoreBlock(eaTree, len(tree.nodes), 8, 64)
			}
			bar.wait(t, p)

			// Phase 2: forces over my body span.
			lo, hi := span(n, p, opts.Threads)
			for b := lo; b < hi; b++ {
				visited, interactions := tree.force(&bodies[b], b, theta)
				// Traversal loads: one line per visited node,
				// gathered in chunks.
				for v := 0; v < visited; v += 32 {
					c := minInt(32, visited-v)
					eas := make([]uint32, c)
					for k := range eas {
						idx := (b*7 + v + k) % (2 * n) // spread over the pool
						eas[k] = eaTree + uint32(64*idx)
					}
					t.LoadGather(eas, 8)
					t.Work(3 * c)
				}
				// ~16 multiply-add class ops per interaction
				// (r^2, NR rsqrt, accumulate).
				t.FPBlock(isa.PipeBoth, 16*interactions)
			}
			bar.wait(t, p)

			// Phase 3: leapfrog integration of my span.
			v := t.LoadBlock(eaBodies+uint32(64*lo), hi-lo, 8, 64)
			for b := lo; b < hi; b++ {
				for d := 0; d < 3; d++ {
					bodies[b].Vel[d] += bodies[b].Acc[d] * dt
					bodies[b].Pos[d] += bodies[b].Vel[d] * dt
				}
			}
			f := t.FPBlock(isa.PipeBoth, 6*(hi-lo), v)
			t.StoreBlock(eaBodies+uint32(64*lo), hi-lo, 8, 64, f)
			bar.wait(t, p)
		}
	})
	if err != nil {
		return nil, err
	}
	if err := mach.Run(); err != nil {
		return nil, err
	}
	if opts.Bodies != nil {
		copy(opts.Bodies, bodies)
	}
	return result("Barnes", fmt.Sprintf("%d bodies, %d steps", n, steps), opts.Threads, mach), nil
}

// octTree holds the Barnes-Hut tree for one step.
type octTree struct {
	nodes []octNode
}

func (tr *octTree) build(bodies []Body) {
	tr.nodes = tr.nodes[:0]
	// Bounding cube.
	var lo, hi [3]float64
	for d := 0; d < 3; d++ {
		lo[d], hi[d] = math.Inf(1), math.Inf(-1)
	}
	for i := range bodies {
		for d := 0; d < 3; d++ {
			lo[d] = math.Min(lo[d], bodies[i].Pos[d])
			hi[d] = math.Max(hi[d], bodies[i].Pos[d])
		}
	}
	half := 0.0
	var center [3]float64
	for d := 0; d < 3; d++ {
		center[d] = (lo[d] + hi[d]) / 2
		half = math.Max(half, (hi[d]-lo[d])/2)
	}
	half *= 1.0001
	if half == 0 {
		half = 1
	}
	tr.newNode(center, half)
	for i := range bodies {
		tr.insert(0, bodies, int32(i))
	}
	tr.summarize(0, bodies)
}

func (tr *octTree) newNode(center [3]float64, half float64) int32 {
	tr.nodes = append(tr.nodes, octNode{
		center: center, half: half, body: -1,
		child: [8]int32{-1, -1, -1, -1, -1, -1, -1, -1},
	})
	return int32(len(tr.nodes) - 1)
}

func (tr *octTree) octant(nIdx int32, pos [3]float64) int {
	o := 0
	for d := 0; d < 3; d++ {
		if pos[d] >= tr.nodes[nIdx].center[d] {
			o |= 1 << d
		}
	}
	return o
}

func (tr *octTree) insert(nIdx int32, bodies []Body, b int32) {
	node := &tr.nodes[nIdx]
	if node.body == -1 && node.mass == 0 && node.childless() {
		node.body = b
		node.mass = bodies[b].Mass
		return
	}
	if node.body >= 0 {
		// Leaf splits: push the resident body down.
		old := node.body
		node.body = -1
		node.mass = 0
		tr.pushDown(nIdx, bodies, old)
	}
	tr.pushDown(nIdx, bodies, b)
}

func (tr *octTree) pushDown(nIdx int32, bodies []Body, b int32) {
	o := tr.octant(nIdx, bodies[b].Pos)
	child := tr.nodes[nIdx].child[o]
	if child == -1 {
		parent := tr.nodes[nIdx]
		var c [3]float64
		for d := 0; d < 3; d++ {
			off := parent.half / 2
			if o&(1<<d) == 0 {
				off = -off
			}
			c[d] = parent.center[d] + off
		}
		child = tr.newNode(c, parent.half/2)
		tr.nodes[nIdx].child[o] = child
	}
	tr.insert(child, bodies, b)
}

func (n *octNode) childless() bool {
	for _, c := range n.child {
		if c != -1 {
			return false
		}
	}
	return true
}

// summarize computes mass and centre of mass bottom-up.
func (tr *octTree) summarize(nIdx int32, bodies []Body) (mass float64, com [3]float64) {
	node := &tr.nodes[nIdx]
	if node.body >= 0 {
		node.mass = bodies[node.body].Mass
		node.com = bodies[node.body].Pos
		return node.mass, node.com
	}
	var m float64
	var c [3]float64
	for _, ch := range node.child {
		if ch == -1 {
			continue
		}
		cm, cc := tr.summarize(ch, bodies)
		m += cm
		for d := 0; d < 3; d++ {
			c[d] += cm * cc[d]
		}
	}
	if m > 0 {
		for d := 0; d < 3; d++ {
			c[d] /= m
		}
	}
	node.mass = m
	node.com = c
	return m, c
}

const softening = 1e-4

// force computes the acceleration on body b, returning the number of
// nodes visited and interactions evaluated (for timing).
func (tr *octTree) force(body *Body, b int, theta float64) (visited, interactions int) {
	var acc [3]float64
	stack := []int32{0}
	for len(stack) > 0 {
		nIdx := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		node := &tr.nodes[nIdx]
		visited++
		if node.mass == 0 {
			continue
		}
		if node.body == int32(b) {
			continue
		}
		var dr [3]float64
		var d2 float64
		for d := 0; d < 3; d++ {
			dr[d] = node.com[d] - body.Pos[d]
			d2 += dr[d] * dr[d]
		}
		open := node.body < 0 && (2*node.half)*(2*node.half) > theta*theta*d2
		if open {
			for _, ch := range node.child {
				if ch != -1 {
					stack = append(stack, ch)
				}
			}
			continue
		}
		interactions++
		inv := 1 / math.Sqrt(d2+softening)
		f := node.mass * inv * inv * inv
		for d := 0; d < 3; d++ {
			acc[d] += f * dr[d]
		}
	}
	body.Acc = acc
	return visited, interactions
}

// DirectForces computes reference accelerations in O(n^2) (for tests).
func DirectForces(bodies []Body) [][3]float64 {
	n := len(bodies)
	acc := make([][3]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			var dr [3]float64
			var d2 float64
			for d := 0; d < 3; d++ {
				dr[d] = bodies[j].Pos[d] - bodies[i].Pos[d]
				d2 += dr[d] * dr[d]
			}
			inv := 1 / math.Sqrt(d2+softening)
			f := bodies[j].Mass * inv * inv * inv
			for d := 0; d < 3; d++ {
				acc[i][d] += f * dr[d]
			}
		}
	}
	return acc
}

// PlummerBodies builds a deterministic pseudo-random cluster.
func PlummerBodies(n int, seed uint32) []Body {
	bodies := make([]Body, n)
	s := seed
	next := func() float64 {
		s = s*1664525 + 1013904223
		return float64(s>>8) / float64(1<<24)
	}
	for i := range bodies {
		for d := 0; d < 3; d++ {
			bodies[i].Pos[d] = next()*2 - 1
			bodies[i].Vel[d] = (next()*2 - 1) * 0.1
		}
		bodies[i].Mass = 1.0 / float64(n)
	}
	return bodies
}
