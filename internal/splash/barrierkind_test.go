package splash

import (
	"sort"
	"testing"
)

// The barrier implementation changes timing, never results: every kernel
// must produce identical output under HW and SW barriers.

func TestBarrierKindDoesNotChangeLU(t *testing.T) {
	const n = 48
	a1 := DominantMatrix(n)
	a2 := DominantMatrix(n)
	if _, err := RunLU(LUOpts{Config: Config{Threads: 5, Barrier: HW}, N: n, A: a1}); err != nil {
		t.Fatal(err)
	}
	if _, err := RunLU(LUOpts{Config: Config{Threads: 5, Barrier: SW}, N: n, A: a2}); err != nil {
		t.Fatal(err)
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("factors differ at %d", i)
		}
	}
}

func TestBarrierKindDoesNotChangeRadix(t *testing.T) {
	k1 := RandomKeys(5000, 11)
	k2 := RandomKeys(5000, 11)
	if _, err := RunRadix(RadixOpts{Config: Config{Threads: 6, Barrier: HW}, N: len(k1), Keys: k1}); err != nil {
		t.Fatal(err)
	}
	if _, err := RunRadix(RadixOpts{Config: Config{Threads: 6, Barrier: SW}, N: len(k2), Keys: k2}); err != nil {
		t.Fatal(err)
	}
	if !sort.SliceIsSorted(k2, func(i, j int) bool { return k2[i] < k2[j] }) {
		t.Fatal("sw-barrier sort not sorted")
	}
	for i := range k1 {
		if k1[i] != k2[i] {
			t.Fatalf("keys differ at %d", i)
		}
	}
}

func TestBarrierKindDoesNotChangeOcean(t *testing.T) {
	const n = 24
	g1 := OceanGrid(n)
	g2 := OceanGrid(n)
	if _, err := RunOcean(OceanOpts{Config: Config{Threads: 4, Barrier: HW}, N: n, Iters: 6, Grid: g1}); err != nil {
		t.Fatal(err)
	}
	if _, err := RunOcean(OceanOpts{Config: Config{Threads: 4, Barrier: SW}, N: n, Iters: 6, Grid: g2}); err != nil {
		t.Fatal(err)
	}
	for i := range g1 {
		if g1[i] != g2[i] {
			t.Fatalf("grids differ at %d", i)
		}
	}
}

// SW barriers cost more: every kernel's total cycles must not improve
// when switching from HW to SW.
func TestSWBarrierNeverFaster(t *testing.T) {
	type runner func(kind BarrierKind) (*Result, error)
	cases := []struct {
		name string
		run  runner
	}{
		{"FFT", func(k BarrierKind) (*Result, error) {
			return RunFFT(FFTOpts{Config: Config{Threads: 16, Barrier: k}, N: 1024})
		}},
		{"LU", func(k BarrierKind) (*Result, error) {
			return RunLU(LUOpts{Config: Config{Threads: 16, Barrier: k}, N: 96, Block: 16})
		}},
		{"Ocean", func(k BarrierKind) (*Result, error) {
			return RunOcean(OceanOpts{Config: Config{Threads: 16, Barrier: k}, N: 64, Iters: 4})
		}},
	}
	for _, c := range cases {
		hw, err := c.run(HW)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		sw, err := c.run(SW)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if sw.Cycles < hw.Cycles {
			t.Errorf("%s: sw barriers (%d cycles) beat hw (%d)", c.name, sw.Cycles, hw.Cycles)
		}
	}
}
