// Package splash implements the SPLASH-2 kernels the paper evaluates
// (Figure 3: Barnes, FFT, FMM, LU, Ocean, Radix; Figure 7: FFT with
// hardware vs software barriers) against the direct-execution timing
// runtime of internal/perf.
//
// Each kernel computes real results on native Go data — verified by unit
// and property tests — while charging every load, store, floating-point
// operation and barrier through the simulated Cyclops chip, so speedup
// curves and run/stall breakdowns come from the same memory system and
// FPU model as the instruction-level simulator.
package splash

import (
	"fmt"

	"cyclops/internal/arch"
	"cyclops/internal/core"
	"cyclops/internal/obs"
	"cyclops/internal/perf"
	"cyclops/internal/prof"
	"cyclops/internal/timing"
)

// BarrierKind selects the synchronisation implementation (Section 3.3).
type BarrierKind int

const (
	// HW uses the wired-OR SPR barrier.
	HW BarrierKind = iota
	// SW uses the tree-over-memory software barrier.
	SW
)

func (k BarrierKind) String() string {
	if k == SW {
		return "sw"
	}
	return "hw"
}

// Result reports one kernel execution.
type Result struct {
	Name    string
	Threads int
	Problem string
	// Cycles is the elapsed virtual time of the slowest thread.
	Cycles uint64
	// Run and Stall are summed over threads (Figure 7's bars).
	Run, Stall uint64
	// Stalls splits Stall by reason; it sums to Stall exactly.
	Stalls obs.Breakdown
	// MemWaits sub-attributes memory-system waits by location
	// (port/bank/fill/hop), summed over threads.
	MemWaits obs.MemWaits
	// Profile, Regions and Timeline are the attached profiler outputs
	// (nil unless Config asked for them); Regions symbolizes the
	// profile's synthetic region PCs.
	Profile  *prof.Profile
	Regions  *prof.RegionTable
	Timeline *prof.Timeline
}

// Speedup returns base.Cycles / r.Cycles.
func (r *Result) Speedup(base *Result) float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(base.Cycles) / float64(r.Cycles)
}

// Config carries the common kernel options.
type Config struct {
	// Threads is the number of worker threads (1..126 on the default
	// chip).
	Threads int
	// Barrier selects hardware or software barriers.
	Barrier BarrierKind
	// Balanced deals threads across quads instead of filling quads
	// sequentially; with fewer than all threads in use this spreads
	// FPU and cache pressure (Section 3.2.2).
	Balanced bool
	// Chip, when non-nil, supplies a custom chip (design exploration);
	// otherwise a fresh default chip is built.
	Chip *core.Chip
	// Issue, when non-nil, overrides the process-default issue policy
	// (fine-grained, blocked, switch-on-miss) for this run's machine.
	Issue timing.Policy
	// Latency, when non-nil, substitutes a swept latency model into the
	// default chip configuration. Ignored when Chip is supplied — a
	// custom chip already fixes its own latencies.
	Latency *timing.LatencyModel
	// ProfileEvery, when nonzero, attaches the guest profiler sampling
	// every N cycles per thread; kernels annotate their phases with
	// T.Region and the profile lands in the Result. TimelineEvery
	// likewise attaches the interval telemetry timeline. Both are
	// ignored under cyclops_noobs.
	ProfileEvery  uint64
	TimelineEvery uint64
}

func (c Config) machine() (*perf.Machine, error) {
	chip := c.Chip
	if chip == nil {
		cfg := arch.Default()
		if c.Latency != nil {
			if err := c.Latency.Validate(); err != nil {
				return nil, err
			}
			cfg = c.Latency.Apply(cfg)
		}
		chip = core.MustNew(cfg)
	}
	if c.Threads < 1 || c.Threads > chip.Cfg.WorkerThreads() {
		return nil, fmt.Errorf("splash: %d threads out of range (1..%d)", c.Threads, chip.Cfg.WorkerThreads())
	}
	m := perf.New(chip)
	if c.Issue != nil {
		m.SetPolicy(c.Issue)
	}
	m.Balanced = c.Balanced
	if c.ProfileEvery > 0 {
		m.AttachProfile(prof.New(c.ProfileEvery))
	}
	if c.TimelineEvery > 0 {
		m.AttachTimeline(prof.NewTimeline(c.TimelineEvery))
	}
	return m, nil
}

// barrier adapts the two implementations behind one call.
type barrier struct {
	hw *perf.HWBarrier
	sw *perf.SWBarrier
}

func newBarrier(m *perf.Machine, n int, kind BarrierKind) *barrier {
	if kind == SW {
		return &barrier{sw: perf.NewSWBarrier(m, n, 4)}
	}
	return &barrier{hw: perf.NewHWBarrier(n)}
}

func (b *barrier) wait(t *perf.T, index int) {
	if b.sw != nil {
		t.SWBarrier(b.sw, index)
	} else {
		t.HWBarrier(b.hw)
	}
}

// result collects the standard metrics after a run.
func result(name, problem string, threads int, m *perf.Machine) *Result {
	run, stall := m.TotalRunStall()
	return &Result{
		Name:     name,
		Threads:  threads,
		Problem:  problem,
		Cycles:   m.Elapsed(),
		Run:      run,
		Stall:    stall,
		Stalls:   m.TotalBreakdown(),
		MemWaits: m.TotalMemWaits(),
		Profile:  m.Prof,
		Regions:  m.Regions,
		Timeline: m.TL,
	}
}

// span returns the half-open index range [lo, hi) that thread p of nThreads
// owns out of n items, balancing remainders.
func span(n, p, nThreads int) (lo, hi int) {
	base := n / nThreads
	rem := n % nThreads
	lo = p*base + minInt(p, rem)
	hi = lo + base
	if p < rem {
		hi++
	}
	return lo, hi
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
