package splash

import (
	"fmt"

	"cyclops/internal/perf"
)

// Radix is the SPLASH-2 integer radix sort: iterative counting sort over
// digit groups. Each pass builds per-thread histograms of the keys'
// current digit, ranks them with a parallel prefix across threads (each
// thread owns a slice of the digit space), then permutes keys into the
// destination array — the permute's scattered writes are the kernel's
// characteristic memory pattern.

// RadixOpts configures a run.
type RadixOpts struct {
	Config
	// N is the key count.
	N int
	// RadixBits is the digit width (default 8: 256 buckets, 4 passes).
	RadixBits int
	// Keys, when non-nil, supplies the input and receives the sorted
	// output.
	Keys []uint32
}

// RunRadix executes the kernel.
func RunRadix(opts RadixOpts) (*Result, error) {
	n := opts.N
	rb := opts.RadixBits
	if rb == 0 {
		rb = 8
	}
	if rb < 1 || rb > 16 {
		return nil, fmt.Errorf("splash: radix bits %d out of range", rb)
	}
	if n < 1 {
		return nil, fmt.Errorf("splash: radix key count %d", n)
	}
	mach, err := opts.machine()
	if err != nil {
		return nil, err
	}
	keys := opts.Keys
	if keys == nil {
		keys = RandomKeys(n, 42)
	}
	if len(keys) != n {
		return nil, fmt.Errorf("splash: key slice length %d != N %d", len(keys), n)
	}

	buckets := 1 << rb
	passes := (32 + rb - 1) / rb
	T := opts.Threads

	src := make([]uint32, n)
	dst := make([]uint32, n)
	copy(src, keys)
	eaSrc := mach.SharedAlloc(4 * n)
	eaDst := mach.SharedAlloc(4 * n)
	// hist[t][d]: thread t's count of digit d in the current pass.
	hist := make([][]int, T)
	eaHist := make([]uint32, T)
	for t := 0; t < T; t++ {
		hist[t] = make([]int, buckets)
		eaHist[t] = mach.SharedAlloc(4 * buckets)
	}
	// rank[t][d]: global starting index for thread t's digit-d keys.
	rank := make([][]int, T)
	for t := 0; t < T; t++ {
		rank[t] = make([]int, buckets)
	}
	// bucketBase[d]: prefix over all lower digits (built each pass).
	bucketBase := make([]int, buckets+1)
	bar := newBarrier(mach, T, opts.Barrier)

	const chunk = 64
	err = mach.SpawnN(T, func(t *perf.T, p int) {
		lo, hi := span(n, p, T)
		// Per-thread views of the ping-pong buffers; the backing
		// arrays are shared, the swap below is thread-local.
		src, dst := src, dst
		eaSrc, eaDst := eaSrc, eaDst
		for pass := 0; pass < passes; pass++ {
			shift := uint(pass * rb)
			mask := uint32(buckets - 1)

			// Phase 1: local histogram.
			h := hist[p]
			for d := range h {
				h[d] = 0
			}
			for i := lo; i < hi; i += chunk {
				c := minInt(chunk, hi-i)
				t.LoadBlock(eaSrc+uint32(4*i), c, 4, 4)
				for k := i; k < i+c; k++ {
					h[(src[k]>>shift)&mask]++
				}
				t.Work(3 * c) // shift, mask, increment
			}
			t.StoreBlock(eaHist[p], buckets, 4, 4)
			bar.wait(t, p)

			// Phase 2: parallel prefix. Thread p ranks its slice of
			// the digit space by reading all threads' histograms.
			dLo, dHi := span(buckets, p, T)
			for d := dLo; d < dHi; d++ {
				sum := 0
				eas := make([]uint32, T)
				for q := 0; q < T; q++ {
					eas[q] = eaHist[q] + uint32(4*d)
				}
				t.LoadGather(eas, 4)
				for q := 0; q < T; q++ {
					rank[q][d] = sum
					sum += hist[q][d]
				}
				bucketBase[d+1] = sum // per-digit total for now
				t.Work(2 * T)
			}
			bar.wait(t, p)
			// Every thread folds digit totals into global bases; this
			// is small, serial work replicated rather than shared.
			if p == 0 {
				run := 0
				for d := 0; d < buckets; d++ {
					tot := bucketBase[d+1]
					bucketBase[d] = run
					run += tot
				}
				bucketBase[buckets] = run
				t.Work(3 * buckets)
			}
			bar.wait(t, p)

			// Phase 3: permute into dst.
			next := make([]int, buckets)
			copy(next, rank[p])
			for i := lo; i < hi; i += chunk {
				c := minInt(chunk, hi-i)
				t.LoadBlock(eaSrc+uint32(4*i), c, 4, 4)
				eas := make([]uint32, c)
				for k := 0; k < c; k++ {
					key := src[i+k]
					d := int((key >> shift) & mask)
					pos := bucketBase[d] + next[d]
					next[d]++
					dst[pos] = key
					eas[k] = eaDst + uint32(4*pos)
				}
				t.StoreScatter(eas, 4)
				t.Work(4 * c)
			}
			bar.wait(t, p)

			// Swap roles for the next pass (thread-local views).
			src, dst = dst, src
			eaSrc, eaDst = eaDst, eaSrc
		}
	})
	if err != nil {
		return nil, err
	}
	if err := mach.Run(); err != nil {
		return nil, err
	}
	sorted := src
	if passes%2 == 1 {
		sorted = dst
	}
	if opts.Keys != nil {
		copy(opts.Keys, sorted)
	}
	return result("Radix", fmt.Sprintf("%d keys, radix %d", n, buckets), T, mach), nil
}

// RandomKeys builds a deterministic pseudo-random key set.
func RandomKeys(n int, seed uint32) []uint32 {
	keys := make([]uint32, n)
	s := seed
	for i := range keys {
		s = s*1664525 + 1013904223
		keys[i] = s
	}
	return keys
}
