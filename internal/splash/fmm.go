package splash

import (
	"fmt"
	"math"
	"math/cmplx"

	"cyclops/internal/isa"
	"cyclops/internal/perf"
)

// FMM is the SPLASH-2 fast multipole method, here the classical 2-D
// Greengard-Rokhlin algorithm on a uniform quadtree (SPLASH-2 uses an
// adaptive tree; the uniform variant is a documented simplification that
// preserves the phase structure and communication pattern): charges
// induce the log-potential, boxes carry multipole and local expansions of
// order P, and the phases — P2M, M2M upward, M2L over interaction lists,
// L2L downward, and near-field P2P — run in parallel over box partitions
// with barriers between them.

// FMMOpts configures a run.
type FMMOpts struct {
	Config
	// NBodies is the charge count; Levels the quadtree depth (leaf grid
	// is 2^Levels per side, default chosen from NBodies); P the
	// expansion order (default 8).
	NBodies int
	Levels  int
	P       int
	// Charges, when non-nil, supplies the particles; potentials are
	// written into Phi.
	Charges []Charge
	// Phi receives the potential at each charge when non-nil.
	Phi []float64
}

// Charge is a 2-D point charge.
type Charge struct {
	Z complex128
	Q float64
}

// fmmBox is one quadtree box.
type fmmBox struct {
	center complex128
	m, l   []complex128 // multipole and local coefficients, 0..P
	bodies []int        // leaf boxes only
}

// RunFMM executes the kernel.
func RunFMM(opts FMMOpts) (*Result, error) {
	n := opts.NBodies
	if n < 2 {
		return nil, fmt.Errorf("splash: fmm needs at least 2 charges, got %d", n)
	}
	p := opts.P
	if p == 0 {
		p = 8
	}
	levels := opts.Levels
	if levels == 0 {
		levels = 2
		for (1<<(2*uint(levels+1)))*4 < n {
			levels++
		}
	}
	if levels < 2 || levels > 8 {
		return nil, fmt.Errorf("splash: fmm levels %d out of range [2,8]", levels)
	}
	mach, err := opts.machine()
	if err != nil {
		return nil, err
	}
	charges := opts.Charges
	if charges == nil {
		charges = RandomCharges(n, 17)
	}
	if len(charges) != n {
		return nil, fmt.Errorf("splash: charges length %d != %d", len(charges), n)
	}

	// Build the uniform tree: level 0 is the root; leaves at `levels`.
	tree := newFMMTree(charges, levels, p)
	phi := make([]float64, n)

	// Simulated layout: one padded region per box per level.
	coefBytes := 16 * (p + 1)
	eaLevel := make([]uint32, levels+1)
	for l := 0; l <= levels; l++ {
		eaLevel[l] = mach.SharedAlloc(boxCount(l) * (2*coefBytes + 64))
	}
	eaCh := mach.SharedAlloc(32 * n)
	boxEA := func(l, idx int) uint32 {
		return eaLevel[l] + uint32(idx*(2*coefBytes+64))
	}
	bar := newBarrier(mach, opts.Threads, opts.Barrier)
	T := opts.Threads

	err = mach.SpawnN(T, func(t *perf.T, th int) {
		// Phase 1: P2M at the leaves.
		nl := boxCount(levels)
		lo, hi := span(nl, th, T)
		for b := lo; b < hi; b++ {
			box := &tree.boxes[levels][b]
			tree.p2m(levels, b)
			if len(box.bodies) > 0 {
				t.LoadBlock(eaCh, len(box.bodies), 8, 32)
				t.FPBlock(isa.PipeBoth, 4*p*len(box.bodies))
				t.StoreBlock(boxEA(levels, b), 2*(p+1), 8, 8)
			}
			t.Work(8)
		}
		bar.wait(t, th)

		// Phase 2: M2M upward.
		for l := levels - 1; l >= 0; l-- {
			nb := boxCount(l)
			lo, hi := span(nb, th, T)
			for b := lo; b < hi; b++ {
				tree.m2m(l, b)
				t.LoadBlock(boxEA(l+1, childIdx(l, b, 0)), 8*(p+1), 8, 8)
				t.FPBlock(isa.PipeBoth, 2*p*p)
				t.StoreBlock(boxEA(l, b), 2*(p+1), 8, 8)
				t.Work(8)
			}
			bar.wait(t, th)
		}

		// Phase 3: M2L over interaction lists, top down, then L2L.
		for l := 2; l <= levels; l++ {
			nb := boxCount(l)
			lo, hi := span(nb, th, T)
			for b := lo; b < hi; b++ {
				ilist := interactionList(l, b)
				for _, s := range ilist {
					tree.m2l(l, s, b)
					t.LoadBlock(boxEA(l, s), 2*(p+1), 8, 8)
					t.FPBlock(isa.PipeBoth, p*p)
				}
				// L2L from the parent.
				tree.l2l(l, b)
				t.LoadBlock(boxEA(l-1, b>>2), 2*(p+1), 8, 8)
				t.FPBlock(isa.PipeBoth, p*p)
				t.StoreBlock(boxEA(l, b), 2*(p+1), 8, 8)
				t.Work(8 + 4*len(ilist))
			}
			bar.wait(t, th)
		}

		// Phase 4: evaluation — local expansion plus near field.
		nlBoxes := boxCount(levels)
		lo, hi = span(nlBoxes, th, T)
		for b := lo; b < hi; b++ {
			box := &tree.boxes[levels][b]
			if len(box.bodies) == 0 {
				continue
			}
			t.LoadBlock(boxEA(levels, b), 2*(p+1), 8, 8)
			for _, i := range box.bodies {
				phi[i] = tree.evalLocal(levels, b, charges[i].Z)
			}
			t.FPBlock(isa.PipeBoth, 2*p*len(box.bodies))
			// Near field: direct interactions with neighbour boxes.
			pairs := 0
			for _, nb := range neighbours(levels, b, true) {
				other := &tree.boxes[levels][nb]
				if len(other.bodies) == 0 {
					continue
				}
				t.LoadBlock(eaCh, len(other.bodies), 8, 32)
				for _, i := range box.bodies {
					for _, j := range other.bodies {
						if i == j {
							continue
						}
						phi[i] += charges[j].Q * math.Log(cmplx.Abs(charges[i].Z-charges[j].Z))
						pairs++
					}
				}
			}
			t.FPBlock(isa.PipeBoth, 8*pairs)
			t.StoreBlock(eaCh, len(box.bodies), 8, 32)
			t.Work(4 * len(box.bodies))
		}
		bar.wait(t, th)
	})
	if err != nil {
		return nil, err
	}
	if err := mach.Run(); err != nil {
		return nil, err
	}
	if opts.Phi != nil {
		copy(opts.Phi, phi)
	}
	if opts.Charges != nil {
		copy(opts.Charges, charges)
	}
	return result("FMM", fmt.Sprintf("%d charges, %d levels, p=%d", n, levels, p), T, mach), nil
}

// --- tree geometry ----------------------------------------------------------

func boxCount(level int) int { return 1 << (2 * uint(level)) }

// boxRC splits a Morton-ish row-major index into row, col at a level.
func boxRC(level, idx int) (r, c int) {
	side := 1 << uint(level)
	return idx / side, idx % side
}

func boxIdx(level, r, c int) int { return r*(1<<uint(level)) + c }

// childIdx returns the k-th child (0..3) of box b at level l.
func childIdx(l, b, k int) int {
	r, c := boxRC(l, b)
	return boxIdx(l+1, 2*r+k/2, 2*c+k%2)
}

// parentIdx returns the parent of box b at level l.
func parentIdx(l, b int) int {
	r, c := boxRC(l, b)
	return boxIdx(l-1, r/2, c/2)
}

// neighbours lists boxes adjacent to b at a level; includeSelf adds b.
func neighbours(level, b int, includeSelf bool) []int {
	side := 1 << uint(level)
	r, c := boxRC(level, b)
	var out []int
	for dr := -1; dr <= 1; dr++ {
		for dc := -1; dc <= 1; dc++ {
			if dr == 0 && dc == 0 && !includeSelf {
				continue
			}
			nr, nc := r+dr, c+dc
			if nr >= 0 && nr < side && nc >= 0 && nc < side {
				out = append(out, boxIdx(level, nr, nc))
			}
		}
	}
	return out
}

// interactionList returns the well-separated same-level boxes: children
// of the parent's neighbours that are not adjacent to b.
func interactionList(level, b int) []int {
	parent := parentIdx(level, b)
	adjacent := map[int]bool{}
	for _, nb := range neighbours(level, b, true) {
		adjacent[nb] = true
	}
	var out []int
	for _, pn := range neighbours(level-1, parent, true) {
		for k := 0; k < 4; k++ {
			cand := childIdx(level-1, pn, k)
			if !adjacent[cand] {
				out = append(out, cand)
			}
		}
	}
	return out
}

// --- expansions ---------------------------------------------------------------

type fmmTree struct {
	p     int
	src   []Charge
	boxes [][]fmmBox
}

func newFMMTree(charges []Charge, levels, p int) *fmmTree {
	tr := &fmmTree{p: p, src: charges, boxes: make([][]fmmBox, levels+1)}
	for l := 0; l <= levels; l++ {
		side := 1 << uint(l)
		tr.boxes[l] = make([]fmmBox, boxCount(l))
		for idx := range tr.boxes[l] {
			r, c := boxRC(l, idx)
			w := 1.0 / float64(side)
			tr.boxes[l][idx] = fmmBox{
				center: complex((float64(c)+0.5)*w, (float64(r)+0.5)*w),
				m:      make([]complex128, p+1),
				l:      make([]complex128, p+1),
			}
		}
	}
	side := 1 << uint(levels)
	for i, ch := range charges {
		c := int(real(ch.Z) * float64(side))
		r := int(imag(ch.Z) * float64(side))
		c = clampInt(c, 0, side-1)
		r = clampInt(r, 0, side-1)
		idx := boxIdx(levels, r, c)
		tr.boxes[levels][idx].bodies = append(tr.boxes[levels][idx].bodies, i)
	}
	return tr
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// p2m forms the multipole expansion of leaf box b from its charges.
// M_0 = sum q_i; M_k = -sum q_i z_i^k / k  (z relative to the centre).
func (tr *fmmTree) p2m(level, b int) {
	box := &tr.boxes[level][b]
	for k := range box.m {
		box.m[k] = 0
	}
	for _, i := range box.bodies {
		q := complex(tr.chargeQ(i), 0)
		z := tr.chargeZ(i) - box.center
		box.m[0] += q
		zk := complex(1, 0)
		for k := 1; k <= tr.p; k++ {
			zk *= z
			box.m[k] -= q * zk / complex(float64(k), 0)
		}
	}
}

func (tr *fmmTree) chargeZ(i int) complex128 { return tr.src[i].Z }
func (tr *fmmTree) chargeQ(i int) float64    { return tr.src[i].Q }

// m2m shifts children multipoles into parent box b at level l:
// M'_k = -M_0 z0^k/k + sum_{j=1..k} M_j z0^{k-j} C(k-1, j-1).
func (tr *fmmTree) m2m(l, b int) {
	parent := &tr.boxes[l][b]
	for k := range parent.m {
		parent.m[k] = 0
	}
	for c := 0; c < 4; c++ {
		child := &tr.boxes[l+1][childIdx(l, b, c)]
		z0 := child.center - parent.center
		parent.m[0] += child.m[0]
		for k := 1; k <= tr.p; k++ {
			s := -child.m[0] * cpow(z0, k) / complex(float64(k), 0)
			for j := 1; j <= k; j++ {
				s += child.m[j] * cpow(z0, k-j) * complex(binom(k-1, j-1), 0)
			}
			parent.m[k] += s
		}
	}
}

// m2l converts source box s's multipole into target box b's local
// expansion (both at level l):
// L_0 += M_0 log(-z0) + sum_j M_j (-1)^j / z0^j
// L_k += -M_0/(k z0^k) + (1/z0^k) sum_j M_j (-1)^j C(k+j-1, j-1) / z0^j.
func (tr *fmmTree) m2l(l, s, b int) {
	src := &tr.boxes[l][s]
	dst := &tr.boxes[l][b]
	z0 := src.center - dst.center
	sum0 := src.m[0] * cmplx.Log(-z0)
	sign := 1.0
	for j := 1; j <= tr.p; j++ {
		sign = -sign
		sum0 += src.m[j] * complex(sign, 0) / cpow(z0, j)
	}
	dst.l[0] += sum0
	for k := 1; k <= tr.p; k++ {
		s := -src.m[0] / (complex(float64(k), 0) * cpow(z0, k))
		sign := 1.0
		for j := 1; j <= tr.p; j++ {
			sign = -sign
			s += src.m[j] * complex(sign*binom(k+j-1, j-1), 0) / cpow(z0, j+k)
		}
		dst.l[k] += s
	}
}

// l2l shifts the parent's local expansion into box b at level l:
// L'_k = sum_{j>=k} L_j C(j, k) (-z0)^(j-k), z0 = child - parent.
func (tr *fmmTree) l2l(l, b int) {
	child := &tr.boxes[l][b]
	parent := &tr.boxes[l-1][parentIdx(l, b)]
	z0 := child.center - parent.center
	for k := 0; k <= tr.p; k++ {
		var s complex128
		for j := k; j <= tr.p; j++ {
			s += parent.l[j] * complex(binom(j, k), 0) * cpow(z0, j-k)
		}
		child.l[k] += s
	}
}

// evalLocal evaluates the local expansion of leaf box b at point z.
func (tr *fmmTree) evalLocal(level, b int, z complex128) float64 {
	box := &tr.boxes[level][b]
	dz := z - box.center
	s := box.l[tr.p]
	for k := tr.p - 1; k >= 0; k-- {
		s = s*dz + box.l[k]
	}
	return real(s)
}

func cpow(z complex128, n int) complex128 {
	r := complex(1, 0)
	for i := 0; i < n; i++ {
		r *= z
	}
	return r
}

func binom(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	r := 1.0
	for i := 0; i < k; i++ {
		r = r * float64(n-i) / float64(i+1)
	}
	return r
}

// DirectPotential computes the reference log-potential (for tests).
func DirectPotential(charges []Charge) []float64 {
	n := len(charges)
	phi := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			phi[i] += charges[j].Q * math.Log(cmplx.Abs(charges[i].Z-charges[j].Z))
		}
	}
	return phi
}

// RandomCharges builds deterministic charges in the unit square.
func RandomCharges(n int, seed uint32) []Charge {
	out := make([]Charge, n)
	s := seed
	next := func() float64 {
		s = s*1664525 + 1013904223
		return float64(s>>8) / float64(1<<24)
	}
	for i := range out {
		out[i] = Charge{
			Z: complex(next(), next()),
			Q: next() - 0.5,
		}
	}
	return out
}
