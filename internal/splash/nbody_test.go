package splash

import (
	"math"
	"testing"
)

// --- Barnes -------------------------------------------------------------------

func TestBarnesForcesApproximateDirectSum(t *testing.T) {
	const n = 200
	bodies := PlummerBodies(n, 5)
	ref := DirectForces(bodies)
	got := append([]Body(nil), bodies...)
	// One step with zero dt effect on comparison: run one step and read
	// the accelerations the tree computed.
	_, err := RunBarnes(BarnesOpts{Config: Config{Threads: 4}, NBodies: n, Steps: 1, Theta: 0.3, Bodies: got})
	if err != nil {
		t.Fatal(err)
	}
	var worst float64
	for i := range got {
		var mag, errMag float64
		for d := 0; d < 3; d++ {
			mag += ref[i][d] * ref[i][d]
			e := got[i].Acc[d] - ref[i][d]
			errMag += e * e
		}
		if mag == 0 {
			continue
		}
		rel := math.Sqrt(errMag) / math.Sqrt(mag)
		if rel > worst {
			worst = rel
		}
	}
	if worst > 0.05 {
		t.Errorf("worst relative force error %.3f exceeds 5%% (theta=0.3)", worst)
	}
}

func TestBarnesThetaZeroIsExact(t *testing.T) {
	const n = 60
	bodies := PlummerBodies(n, 11)
	ref := DirectForces(bodies)
	got := append([]Body(nil), bodies...)
	_, err := RunBarnes(BarnesOpts{Config: Config{Threads: 2}, NBodies: n, Steps: 1, Theta: 1e-9, Bodies: got})
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		for d := 0; d < 3; d++ {
			if abs(got[i].Acc[d]-ref[i][d]) > 1e-9 {
				t.Fatalf("body %d axis %d: %g vs %g", i, d, got[i].Acc[d], ref[i][d])
			}
		}
	}
}

func TestBarnesThreadInvariance(t *testing.T) {
	const n = 100
	b1 := PlummerBodies(n, 3)
	b2 := PlummerBodies(n, 3)
	if _, err := RunBarnes(BarnesOpts{Config: Config{Threads: 1}, NBodies: n, Steps: 2, Bodies: b1}); err != nil {
		t.Fatal(err)
	}
	if _, err := RunBarnes(BarnesOpts{Config: Config{Threads: 9}, NBodies: n, Steps: 2, Bodies: b2}); err != nil {
		t.Fatal(err)
	}
	for i := range b1 {
		for d := 0; d < 3; d++ {
			if abs(b1[i].Pos[d]-b2[i].Pos[d]) > 1e-12 {
				t.Fatalf("trajectories diverge at body %d", i)
			}
		}
	}
}

func TestBarnesScales(t *testing.T) {
	base, err := RunBarnes(BarnesOpts{Config: Config{Threads: 1}, NBodies: 1500, Steps: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunBarnes(BarnesOpts{Config: Config{Threads: 16}, NBodies: 1500, Steps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s := par.Speedup(base); s < 5 {
		t.Errorf("16-thread barnes speedup = %.2f, want > 5", s)
	}
}

func TestBarnesRejectsBadInput(t *testing.T) {
	if _, err := RunBarnes(BarnesOpts{Config: Config{Threads: 1}, NBodies: 1}); err == nil {
		t.Error("single body accepted")
	}
	if _, err := RunBarnes(BarnesOpts{Config: Config{Threads: 0}, NBodies: 10}); err == nil {
		t.Error("zero threads accepted")
	}
}

// --- FMM ----------------------------------------------------------------------

func TestFMMPotentialApproximatesDirect(t *testing.T) {
	const n = 400
	charges := RandomCharges(n, 1)
	ref := DirectPotential(charges)
	phi := make([]float64, n)
	_, err := RunFMM(FMMOpts{Config: Config{Threads: 4}, NBodies: n, P: 10, Levels: 3, Charges: charges, Phi: phi})
	if err != nil {
		t.Fatal(err)
	}
	// Normalise by the potential scale.
	var scale float64
	for _, v := range ref {
		scale += v * v
	}
	scale = math.Sqrt(scale / n)
	var worst float64
	for i := range phi {
		if d := abs(phi[i]-ref[i]) / scale; d > worst {
			worst = d
		}
	}
	if worst > 0.01 {
		t.Errorf("worst normalised potential error %.4f exceeds 1%% (p=10)", worst)
	}
}

func TestFMMHigherOrderIsMoreAccurate(t *testing.T) {
	const n = 300
	charges := RandomCharges(n, 2)
	ref := DirectPotential(charges)
	errAt := func(p int) float64 {
		phi := make([]float64, n)
		_, err := RunFMM(FMMOpts{Config: Config{Threads: 2}, NBodies: n, P: p, Levels: 3, Charges: charges, Phi: phi})
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for i := range phi {
			sum += (phi[i] - ref[i]) * (phi[i] - ref[i])
		}
		return math.Sqrt(sum / n)
	}
	e4, e12 := errAt(4), errAt(12)
	if e12 >= e4 {
		t.Errorf("p=12 error %g not below p=4 error %g", e12, e4)
	}
}

func TestFMMThreadInvariance(t *testing.T) {
	const n = 256
	charges := RandomCharges(n, 9)
	p1 := make([]float64, n)
	p2 := make([]float64, n)
	if _, err := RunFMM(FMMOpts{Config: Config{Threads: 1}, NBodies: n, Charges: charges, Phi: p1}); err != nil {
		t.Fatal(err)
	}
	if _, err := RunFMM(FMMOpts{Config: Config{Threads: 8}, NBodies: n, Charges: charges, Phi: p2}); err != nil {
		t.Fatal(err)
	}
	for i := range p1 {
		if abs(p1[i]-p2[i]) > 1e-9 {
			t.Fatalf("potentials diverge at %d: %g vs %g", i, p1[i], p2[i])
		}
	}
}

func TestFMMScales(t *testing.T) {
	base, err := RunFMM(FMMOpts{Config: Config{Threads: 1}, NBodies: 6144, Levels: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Sequential placement: 16 threads share 4 FPUs, and FMM's
	// multiply-add-dominated phases hit the quad-sharing ceiling the
	// paper's design trade-off predicts (~4x for pure-FMA work).
	seq, err := RunFMM(FMMOpts{Config: Config{Threads: 16}, NBodies: 6144, Levels: 4})
	if err != nil {
		t.Fatal(err)
	}
	if s := seq.Speedup(base); s < 3 || s > 8 {
		t.Errorf("sequential 16-thread fmm speedup = %.2f, want FPU-sharing-bound ~4-6", s)
	}
	// Balanced placement gives each thread its own quad: near-linear.
	bal, err := RunFMM(FMMOpts{Config: Config{Threads: 16, Balanced: true}, NBodies: 6144, Levels: 4})
	if err != nil {
		t.Fatal(err)
	}
	if s := bal.Speedup(base); s < 9 {
		t.Errorf("balanced 16-thread fmm speedup = %.2f, want > 9", s)
	}
	if bal.Cycles >= seq.Cycles {
		t.Error("balanced placement not faster than sequential for 16 FP-bound threads")
	}
}

func TestFMMRejectsBadInput(t *testing.T) {
	if _, err := RunFMM(FMMOpts{Config: Config{Threads: 1}, NBodies: 1}); err == nil {
		t.Error("single charge accepted")
	}
	if _, err := RunFMM(FMMOpts{Config: Config{Threads: 1}, NBodies: 100, Levels: 20}); err == nil {
		t.Error("level 20 accepted")
	}
}

// Interaction-list geometry: well-separated boxes are never adjacent and
// cover exactly the parent-neighbourhood minus own neighbourhood.
func TestFMMInteractionListGeometry(t *testing.T) {
	for _, level := range []int{2, 3, 4} {
		for b := 0; b < boxCount(level); b += 7 {
			adj := map[int]bool{}
			for _, nb := range neighbours(level, b, true) {
				adj[nb] = true
			}
			for _, s := range interactionList(level, b) {
				if adj[s] {
					t.Fatalf("level %d box %d: interaction list contains adjacent box %d", level, b, s)
				}
			}
			if level == 2 && b == 0 {
				if n := len(interactionList(level, b)); n == 0 {
					t.Error("corner box has empty interaction list")
				}
			}
		}
	}
}
