package splash

import (
	"fmt"
	"math"
	"math/cmplx"

	"cyclops/internal/arch"
	"cyclops/internal/isa"
	"cyclops/internal/perf"
)

// FFT is the SPLASH-2 FFT kernel: a 1-D complex FFT of n = m*m points
// organised as the six-step (transpose / row-FFT / twiddle / transpose /
// row-FFT / transpose) algorithm over an m x m matrix, with barriers
// between phases. The SPLASH-2 constraint that the points per processor
// be at least sqrt(n) appears here as threads <= m.
//
// Rows are copied into a per-thread scratch buffer mapped to the thread's
// own quad cache for the in-cache row FFTs, then written back to the
// shared matrix — the structure of the original benchmark.

// FFTOpts configures a run.
type FFTOpts struct {
	Config
	// N is the transform length; it must be a power of four (so the
	// matrix is square).
	N int
	// Data, when non-nil, supplies the input (length N); otherwise a
	// deterministic pseudo-random signal is generated. The transform
	// result is written back into it.
	Data []complex128
}

// RunFFT executes the kernel and returns the timing result; the
// transformed data is left in opts.Data (when supplied).
func RunFFT(opts FFTOpts) (*Result, error) {
	n := opts.N
	m := intSqrt(n)
	if m*m != n || n&(n-1) != 0 || n < 4 {
		return nil, fmt.Errorf("splash: FFT length %d is not a power of four", n)
	}
	if opts.Threads > m {
		return nil, fmt.Errorf("splash: FFT of %d points supports at most %d threads (points per processor >= sqrt(n))", n, m)
	}
	mach, err := opts.machine()
	if err != nil {
		return nil, err
	}

	data := opts.Data
	if data == nil {
		data = make([]complex128, n)
		seed := uint32(12345)
		for i := range data {
			seed = seed*1664525 + 1013904223
			re := float64(seed>>16)/65536 - 0.5
			seed = seed*1664525 + 1013904223
			im := float64(seed>>16)/65536 - 0.5
			data[i] = complex(re, im)
		}
	}
	if len(data) != n {
		return nil, fmt.Errorf("splash: FFT data length %d != N %d", len(data), n)
	}

	// A is the working matrix, B the transpose target; 16 bytes/point.
	a := make([]complex128, n)
	b := make([]complex128, n)
	copy(a, data)
	eaA := mach.SharedAlloc(16 * n)
	eaB := mach.SharedAlloc(16 * n)
	scratch := make([]uint32, opts.Threads)
	for p := range scratch {
		scratch[p] = mach.MustAlloc(16*m, arch.InterestGroup{Mode: arch.GroupOwn})
	}
	tw := twiddles(m)
	bar := newBarrier(mach, opts.Threads, opts.Barrier)

	err = mach.SpawnN(opts.Threads, func(t *perf.T, p int) {
		lo, hi := span(m, p, opts.Threads)
		// Each six-step phase is a named profiling region, so the
		// profiler's folded stacks and the harness profile table
		// attribute cycles to the paper's algorithm phases.
		phase := func(name string, fn func()) {
			end := t.Region(name)
			fn()
			end()
			endB := t.Region("barrier")
			bar.wait(t, p)
			endB()
		}

		// Step 1: transpose A -> B.
		phase("transpose", func() { transposeBand(t, a, b, eaA, eaB, m, lo, hi) })
		// Step 2: FFT the rows of B.
		phase("fft_rows", func() { fftRows(t, b, eaB, scratch[p], m, lo, hi, false) })
		// Step 3: twiddle multiply B[i][j] *= w^(i*j).
		phase("twiddle", func() { twiddleBand(t, b, eaB, tw, m, lo, hi) })
		// Step 4: transpose B -> A.
		phase("transpose", func() { transposeBand(t, b, a, eaB, eaA, m, lo, hi) })
		// Step 5: FFT the rows of A.
		phase("fft_rows", func() { fftRows(t, a, eaA, scratch[p], m, lo, hi, false) })
		// Step 6: transpose A -> B (final index order).
		phase("transpose", func() { transposeBand(t, a, b, eaA, eaB, m, lo, hi) })
	})
	if err != nil {
		return nil, err
	}
	if err := mach.Run(); err != nil {
		return nil, err
	}
	copy(data, b)
	if opts.Data != nil {
		copy(opts.Data, b)
	}
	return result("FFT", fmt.Sprintf("%d points, %s barriers", n, opts.Barrier), opts.Threads, mach), nil
}

// intSqrt returns the integer square root for perfect squares.
func intSqrt(n int) int {
	r := int(math.Sqrt(float64(n)))
	for r*r > n {
		r--
	}
	for (r+1)*(r+1) <= n {
		r++
	}
	return r
}

// twiddles precomputes w_n^(i*j) factors lazily per (i mod m, j) through a
// row of m roots of w_n^i; storing all n would double the footprint.
func twiddles(m int) []complex128 {
	n := m * m
	w := make([]complex128, n)
	for k := 0; k < n; k++ {
		angle := -2 * math.Pi * float64(k) / float64(n)
		w[k] = cmplx.Rect(1, angle)
	}
	return w
}

// transposeBand moves rows [lo,hi) of src into the columns of dst.
func transposeBand(t *perf.T, src, dst []complex128, eaSrc, eaDst uint32, m, lo, hi int) {
	for i := lo; i < hi; i++ {
		// Read the row contiguously, scatter to the column.
		v := t.LoadBlock(eaSrc+uint32(16*i*m), 2*m, 8, 8)
		for j := 0; j < m; j++ {
			dst[j*m+i] = src[i*m+j]
		}
		// The column store: one 16-byte point per line visit.
		t.StoreBlock(eaDst+uint32(16*i), m, 16, 16*m, v)
		t.Work(2 * m) // index arithmetic and loop control
	}
}

// twiddleBand multiplies B[i][j] by w_n^(i*j) for rows [lo,hi).
func twiddleBand(t *perf.T, b []complex128, ea uint32, tw []complex128, m, lo, hi int) {
	n := m * m
	for i := lo; i < hi; i++ {
		v := t.LoadBlock(ea+uint32(16*i*m), 2*m, 8, 8)
		for j := 0; j < m; j++ {
			b[i*m+j] *= tw[(i*j)%n]
		}
		// Complex multiply: 4 mul + 2 add = ~3 FMA-class ops per point.
		w := t.FPBlock(isa.PipeBoth, 3*m, v)
		t.StoreBlock(ea+uint32(16*i*m), 2*m, 8, 8, w)
		t.Work(2 * m)
	}
}

// fftRows transforms rows [lo,hi) of x in place, staging each row through
// the thread's own-cache scratch buffer. inverse selects the conjugate
// transform.
func fftRows(t *perf.T, x []complex128, ea, scratch uint32, m, lo, hi int, inverse bool) {
	for i := lo; i < hi; i++ {
		row := x[i*m : (i+1)*m]
		// Copy in: shared loads, local stores.
		v := t.LoadBlock(ea+uint32(16*i*m), 2*m, 8, 8)
		t.StoreBlock(scratch, 2*m, 8, 8, v)
		timeRowFFT(t, scratch, m)
		fftInPlace(row, inverse)
		// Copy out.
		w := t.LoadBlock(scratch, 2*m, 8, 8)
		t.StoreBlock(ea+uint32(16*i*m), 2*m, 8, 8, w)
	}
}

// timeRowFFT charges the cost of an m-point in-place radix-2 FFT working
// in the scratch buffer: per stage, the row streams through the local
// cache and m/2 butterflies of ~10 flops each hit the FPU.
func timeRowFFT(t *perf.T, scratch uint32, m int) {
	stages := 0
	for s := 1; s < m; s <<= 1 {
		stages++
	}
	for s := 0; s < stages; s++ {
		v := t.LoadBlock(scratch, 2*m, 8, 8)
		// Butterfly: complex mul (4M+2A) + two complex adds (4A):
		// ~5 multiply-add class issues per butterfly, m/2 butterflies.
		w := t.FPBlock(isa.PipeBoth, 5*m/2, v)
		t.StoreBlock(scratch, 2*m, 8, 8, w)
		t.Work(m) // loop control and index arithmetic
	}
}

// fftInPlace computes the functional radix-2 FFT on a row.
func fftInPlace(a []complex128, inverse bool) {
	n := len(a)
	// Bit reversal.
	for i, j := 0, 0; i < n; i++ {
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j |= bit
	}
	sign := -2.0
	if inverse {
		sign = 2.0
	}
	for span := 2; span <= n; span <<= 1 {
		w := cmplx.Rect(1, sign*math.Pi/float64(span))
		for s := 0; s < n; s += span {
			wk := complex(1, 0)
			for k := 0; k < span/2; k++ {
				u := a[s+k]
				v := a[s+k+span/2] * wk
				a[s+k] = u + v
				a[s+k+span/2] = u - v
				wk *= w
			}
		}
	}
}

// NaiveDFT computes the reference DFT (for tests).
func NaiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var s complex128
		for j := 0; j < n; j++ {
			s += x[j] * cmplx.Rect(1, -2*math.Pi*float64(k*j)/float64(n))
		}
		out[k] = s
	}
	return out
}
