package splash

import (
	"fmt"

	"cyclops/internal/isa"
	"cyclops/internal/perf"
)

// LU is the SPLASH-2 dense blocked LU factorization: an n x n matrix is
// divided into B x B blocks assigned to threads in 2-D scatter fashion;
// each outer step factors the diagonal block, solves the perimeter, then
// updates the interior with block matrix-multiplies, with barriers
// between phases. Pivoting is omitted, as in SPLASH-2, so inputs should
// be diagonally dominant.

// LUOpts configures a run.
type LUOpts struct {
	Config
	// N is the matrix dimension; Block the block size (default 16).
	N, Block int
	// A, when non-nil, supplies the matrix in row-major order and
	// receives the packed LU factors.
	A []float64
}

// RunLU executes the kernel.
func RunLU(opts LUOpts) (*Result, error) {
	n, bs := opts.N, opts.Block
	if bs == 0 {
		bs = 16
	}
	if n <= 0 || n%bs != 0 {
		return nil, fmt.Errorf("splash: LU size %d is not a multiple of block %d", n, bs)
	}
	mach, err := opts.machine()
	if err != nil {
		return nil, err
	}
	a := opts.A
	if a == nil {
		a = DominantMatrix(n)
	}
	if len(a) != n*n {
		return nil, fmt.Errorf("splash: LU matrix length %d != %d", len(a), n*n)
	}

	nb := n / bs
	ea := mach.SharedAlloc(8 * n * n)
	addr := func(i, j int) uint32 { return ea + uint32(8*(i*n+j)) }
	owner := func(bi, bj int) int { return (bi + bj*nb) % opts.Threads }
	bar := newBarrier(mach, opts.Threads, opts.Barrier)

	err = mach.SpawnN(opts.Threads, func(t *perf.T, p int) {
		for k := 0; k < nb; k++ {
			d := k * bs
			// Phase 1: factor the diagonal block.
			if owner(k, k) == p {
				factorDiag(t, a, n, d, bs, addr)
			}
			bar.wait(t, p)
			// Phase 2: perimeter solves.
			for j := k + 1; j < nb; j++ {
				if owner(k, j) == p {
					solveRowBlock(t, a, n, d, j*bs, bs, addr)
				}
			}
			for i := k + 1; i < nb; i++ {
				if owner(i, k) == p {
					solveColBlock(t, a, n, i*bs, d, bs, addr)
				}
			}
			bar.wait(t, p)
			// Phase 3: interior updates.
			for i := k + 1; i < nb; i++ {
				for j := k + 1; j < nb; j++ {
					if owner(i, j) == p {
						updateBlock(t, a, n, i*bs, j*bs, d, bs, addr)
					}
				}
			}
			bar.wait(t, p)
		}
	})
	if err != nil {
		return nil, err
	}
	if err := mach.Run(); err != nil {
		return nil, err
	}
	if opts.A != nil {
		copy(opts.A, a)
	}
	return result("LU", fmt.Sprintf("%dx%d, %dx%d blocks", n, n, bs, bs), opts.Threads, mach), nil
}

// DominantMatrix builds a deterministic diagonally dominant test matrix.
func DominantMatrix(n int) []float64 {
	a := make([]float64, n*n)
	seed := uint32(7)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			seed = seed*1664525 + 1013904223
			a[i*n+j] = float64(seed>>20)/4096 - 0.5
		}
		a[i*n+i] += float64(n)
	}
	return a
}

// factorDiag performs the unblocked LU of the bs x bs block at (d, d).
func factorDiag(t *perf.T, a []float64, n, d, bs int, addr func(i, j int) uint32) {
	for kk := 0; kk < bs; kk++ {
		pivRow := d + kk
		piv := a[pivRow*n+pivRow]
		// One divide per subdiagonal row plus a rank-1 update.
		v := t.LoadBlock(addr(pivRow, d+kk), bs-kk, 8, 8)
		for ii := kk + 1; ii < bs; ii++ {
			r := d + ii
			l := a[r*n+pivRow] / piv
			a[r*n+pivRow] = l
			for jj := kk + 1; jj < bs; jj++ {
				c := d + jj
				a[r*n+c] -= l * a[pivRow*n+c]
			}
		}
		rows := bs - kk - 1
		if rows > 0 {
			w := t.FDiv(v)
			f := t.FPBlock(isa.PipeBoth, rows*(bs-kk-1), w)
			t.StoreBlock(addr(d+kk+1, d+kk), rows, 8, 8*n, f)
		}
		t.Work(2 * (bs - kk))
	}
}

// solveRowBlock computes U-part: A[d..][c..] = L(d,d)^-1 * A[d..][c..].
func solveRowBlock(t *perf.T, a []float64, n, d, c, bs int, addr func(i, j int) uint32) {
	for ii := 0; ii < bs; ii++ {
		r := d + ii
		// Row r of the target depends on rows above it.
		v := t.LoadBlock(addr(r, c), bs, 8, 8)
		for kk := 0; kk < ii; kk++ {
			l := a[r*n+d+kk]
			for jj := 0; jj < bs; jj++ {
				a[r*n+c+jj] -= l * a[(d+kk)*n+c+jj]
			}
		}
		f := t.FPBlock(isa.PipeBoth, ii*bs, v)
		t.StoreBlock(addr(r, c), bs, 8, 8, f)
		t.Work(bs)
	}
}

// solveColBlock computes L-part: A[r..][d..] = A[r..][d..] * U(d,d)^-1.
func solveColBlock(t *perf.T, a []float64, n, r, d, bs int, addr func(i, j int) uint32) {
	for ii := 0; ii < bs; ii++ {
		row := r + ii
		v := t.LoadBlock(addr(row, d), bs, 8, 8)
		for jj := 0; jj < bs; jj++ {
			c := d + jj
			s := a[row*n+c]
			for kk := 0; kk < jj; kk++ {
				s -= a[row*n+d+kk] * a[(d+kk)*n+c]
			}
			a[row*n+c] = s / a[c*n+c]
		}
		f := t.FPBlock(isa.PipeBoth, bs*bs/2, v)
		g := t.FDiv(f)
		t.StoreBlock(addr(row, d), bs, 8, 8, g)
		t.Work(bs)
	}
}

// updateBlock performs A[r][c] -= A[r][d] * A[d][c] for bs x bs blocks.
func updateBlock(t *perf.T, a []float64, n, r, c, d, bs int, addr func(i, j int) uint32) {
	for ii := 0; ii < bs; ii++ {
		row := r + ii
		// Load the multiplier row and the target row.
		v1 := t.LoadBlock(addr(row, d), bs, 8, 8)
		v2 := t.LoadBlock(addr(row, c), bs, 8, 8)
		for kk := 0; kk < bs; kk++ {
			l := a[row*n+d+kk]
			for jj := 0; jj < bs; jj++ {
				a[row*n+c+jj] -= l * a[(d+kk)*n+c+jj]
			}
		}
		// bs dot products of length bs: bs*bs fused multiply-adds,
		// streaming the pivot-panel rows through the cache.
		v3 := t.LoadBlock(addr(d, c), bs, 8, 8*n)
		f := t.FPBlock(isa.PipeBoth, bs*bs, v1, v2, v3)
		t.StoreBlock(addr(row, c), bs, 8, 8, f)
		t.Work(bs)
	}
}

// LUResidual verifies a factorization: it reconstructs A from the packed
// factors and returns max |L*U - orig| (for tests).
func LUResidual(lu, orig []float64, n int) float64 {
	var worst float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k <= minInt(i, j); k++ {
				l := lu[i*n+k]
				if k == i {
					l = 1
				}
				u := lu[k*n+j]
				if k > j {
					continue
				}
				s += l * u
			}
			if d := abs(s - orig[i*n+j]); d > worst {
				worst = d
			}
		}
	}
	return worst
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
