package splash

import (
	"math/cmplx"
	"testing"
)

func maxErr(a, b []complex128) float64 {
	var m float64
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	for _, n := range []int{16, 64, 256} {
		in := make([]complex128, n)
		for i := range in {
			in[i] = complex(float64(i%7)-3, float64(i%5)-2)
		}
		want := NaiveDFT(in)
		got := make([]complex128, n)
		copy(got, in)
		_, err := RunFFT(FFTOpts{Config: Config{Threads: 4}, N: n, Data: got})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if e := maxErr(got, want); e > 1e-6*float64(n) {
			t.Errorf("n=%d: max error %g vs naive DFT", n, e)
		}
	}
}

func TestFFTResultIndependentOfThreads(t *testing.T) {
	const n = 256
	in := make([]complex128, n)
	for i := range in {
		in[i] = complex(float64(i), -float64(i%3))
	}
	ref := make([]complex128, n)
	copy(ref, in)
	if _, err := RunFFT(FFTOpts{Config: Config{Threads: 1}, N: n, Data: ref}); err != nil {
		t.Fatal(err)
	}
	for _, threads := range []int{2, 8, 16} {
		got := make([]complex128, n)
		copy(got, in)
		if _, err := RunFFT(FFTOpts{Config: Config{Threads: threads}, N: n, Data: got}); err != nil {
			t.Fatal(err)
		}
		if e := maxErr(got, ref); e > 1e-9 {
			t.Errorf("threads=%d: result differs by %g", threads, e)
		}
	}
}

func TestFFTRejectsBadShapes(t *testing.T) {
	if _, err := RunFFT(FFTOpts{Config: Config{Threads: 1}, N: 128}); err == nil {
		t.Error("128 (not a power of four) accepted")
	}
	if _, err := RunFFT(FFTOpts{Config: Config{Threads: 32}, N: 256}); err == nil {
		t.Error("more threads than sqrt(n) accepted (SPLASH-2 constraint)")
	}
	if _, err := RunFFT(FFTOpts{Config: Config{Threads: 0}, N: 256}); err == nil {
		t.Error("zero threads accepted")
	}
}

func TestFFTScalesWithThreads(t *testing.T) {
	base, err := RunFFT(FFTOpts{Config: Config{Threads: 1}, N: 4096})
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunFFT(FFTOpts{Config: Config{Threads: 16}, N: 4096})
	if err != nil {
		t.Fatal(err)
	}
	s := par.Speedup(base)
	if s < 6 {
		t.Errorf("16-thread speedup = %.2f, want > 6", s)
	}
	if s > 16.5 {
		t.Errorf("16-thread speedup = %.2f exceeds thread count", s)
	}
}

func TestFFTHardwareBarriersReduceStalls(t *testing.T) {
	// Figure 7: hardware barriers trade memory-stall cycles for cheap
	// run cycles, lowering total time.
	hw, err := RunFFT(FFTOpts{Config: Config{Threads: 16, Barrier: HW}, N: 256})
	if err != nil {
		t.Fatal(err)
	}
	sw, err := RunFFT(FFTOpts{Config: Config{Threads: 16, Barrier: SW}, N: 256})
	if err != nil {
		t.Fatal(err)
	}
	if hw.Cycles >= sw.Cycles {
		t.Errorf("hw barrier total %d not below sw %d", hw.Cycles, sw.Cycles)
	}
	if hw.Stall >= sw.Stall {
		t.Errorf("hw barrier stalls %d not below sw %d", hw.Stall, sw.Stall)
	}
}

func TestFFTDeterministic(t *testing.T) {
	r1, err := RunFFT(FFTOpts{Config: Config{Threads: 8}, N: 1024})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunFFT(FFTOpts{Config: Config{Threads: 8}, N: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles != r2.Cycles || r1.Run != r2.Run || r1.Stall != r2.Stall {
		t.Errorf("repeat runs differ: %+v vs %+v", r1, r2)
	}
}
