// Package cache models the Cyclops cache level: 32 software-controlled
// data caches shared across the chip through a cache switch, and 16
// instruction caches private to quad pairs with per-thread prefetch
// instruction buffers (Section 2.1).
//
// The data caches track presence only (tags + LRU). The chip's single
// physical memory array in package mem always holds the data: the caches
// are write-through with no write-allocate, so a hit or miss changes
// timing, never values. Real Cyclops hardware does not keep replicated
// lines coherent (interest group zero can replicate); modeling tags only
// makes replicas trivially consistent, which is conservative for the
// benchmarks the paper runs — none of them relies on incoherent replicas.
package cache

import "cyclops/internal/arch"

// DCache is one 16 KB quad data cache: set-associative tags with LRU
// replacement and optional scratchpad partitioning.
type DCache struct {
	lineShift uint
	setMask   uint32
	assoc     int
	// scratchWays ways are removed from the cached region and exposed as
	// directly addressable fast memory (the 2 KB-granularity partitioning
	// of Section 2.1; one way of the 16 KB/8-way design is exactly 2 KB).
	scratchWays int

	// tags[set*assoc+way] holds the line address (addr >> lineShift) + 1;
	// zero means invalid.
	tags []uint32
	// lru[set*assoc+way] holds a per-set use stamp.
	lru   []uint32
	stamp uint32
	// readyAt[set*assoc+way] is the cycle the line's fill completes; an
	// access that hits a line still in flight cannot finish before it
	// (the effect that penalises cyclic STREAM partitioning, where the
	// eight threads of a group touch a line while it is being fetched).
	readyAt []uint64

	Hits, Misses uint64
}

// NewDCache builds a data cache from the configuration geometry.
func NewDCache(cfg arch.Config) *DCache {
	lines := cfg.DCacheBytes / cfg.DCacheLine
	sets := lines / cfg.DCacheAssoc
	d := &DCache{
		assoc:   cfg.DCacheAssoc,
		setMask: uint32(sets - 1),
		tags:    make([]uint32, lines),
		lru:     make([]uint32, lines),
		readyAt: make([]uint64, lines),
	}
	for d.lineShift = 0; 1<<d.lineShift < cfg.DCacheLine; d.lineShift++ {
	}
	return d
}

// SetScratchWays reserves n ways (n x 2 KB at the default geometry) as
// addressable fast memory, leaving assoc-n ways for caching. Reserved ways
// are invalidated. It reports whether n was acceptable (0 <= n < assoc).
func (d *DCache) SetScratchWays(n int) bool {
	if n < 0 || n >= d.assoc {
		return false
	}
	d.scratchWays = n
	for set := uint32(0); set <= d.setMask; set++ {
		for w := 0; w < n; w++ {
			d.tags[int(set)*d.assoc+w] = 0
		}
	}
	return true
}

// ScratchWays returns the current scratchpad partitioning.
func (d *DCache) ScratchWays() int { return d.scratchWays }

// Lookup probes for the line containing addr, updating LRU and hit/miss
// counters. It does not allocate. On a hit, ready is the cycle the line's
// most recent fill completes: accesses that catch a line in flight cannot
// finish earlier.
func (d *DCache) Lookup(addr uint32) (hit bool, ready uint64) {
	line := addr>>d.lineShift + 1
	set := (line - 1) & d.setMask
	base := int(set) * d.assoc
	for w := d.scratchWays; w < d.assoc; w++ {
		if d.tags[base+w] == line {
			d.stamp++
			d.lru[base+w] = d.stamp
			d.Hits++
			return true, d.readyAt[base+w]
		}
	}
	d.Misses++
	return false, 0
}

// Install allocates the line containing addr with a fill completing at
// ready, evicting the LRU way of its set if necessary. With zero cache
// ways (full scratch partitioning is disallowed) there is always a victim.
func (d *DCache) Install(addr uint32, ready uint64) {
	line := addr>>d.lineShift + 1
	set := (line - 1) & d.setMask
	base := int(set) * d.assoc
	victim := d.scratchWays
	for w := d.scratchWays; w < d.assoc; w++ {
		if d.tags[base+w] == line {
			return // already present (racing installs)
		}
		if d.tags[base+w] == 0 {
			victim = w
			break
		}
		if d.lru[base+w] < d.lru[base+victim] {
			victim = w
		}
	}
	d.stamp++
	d.tags[base+victim] = line
	d.lru[base+victim] = d.stamp
	d.readyAt[base+victim] = ready
}

// InvalidateAll empties the cache (used between experiment runs).
func (d *DCache) InvalidateAll() {
	for i := range d.tags {
		d.tags[i] = 0
		d.lru[i] = 0
	}
}

// ResetStats clears the hit/miss counters.
func (d *DCache) ResetStats() { d.Hits, d.Misses = 0, 0 }
