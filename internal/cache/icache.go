package cache

import (
	"cyclops/internal/arch"
	"cyclops/internal/mem"
)

// ICache is one 32 KB instruction cache shared by two quads (private to
// the quad pair, unlike the data caches). Each thread fetches through its
// 16-entry Prefetch Instruction Buffer; a PIB refill pulls one I-cache
// line, and an I-cache miss pulls the line from memory.
type ICache struct {
	lineShift uint
	setMask   uint32
	assoc     int
	tags      []uint32
	lru       []uint32
	stamp     uint32

	Hits, Misses uint64
}

// NewICache builds an instruction cache from the configuration geometry.
func NewICache(cfg arch.Config) *ICache {
	lines := cfg.ICacheBytes / cfg.ICacheLine
	sets := lines / cfg.ICacheAssoc
	ic := &ICache{
		assoc:   cfg.ICacheAssoc,
		setMask: uint32(sets - 1),
		tags:    make([]uint32, lines),
		lru:     make([]uint32, lines),
	}
	for ic.lineShift = 0; 1<<ic.lineShift < cfg.ICacheLine; ic.lineShift++ {
	}
	return ic
}

// Fetch probes for the line containing addr, installing it on a miss.
// It reports whether the access hit.
func (ic *ICache) Fetch(addr uint32) bool {
	line := addr>>ic.lineShift + 1
	set := (line - 1) & ic.setMask
	base := int(set) * ic.assoc
	victim := 0
	for w := 0; w < ic.assoc; w++ {
		if ic.tags[base+w] == line {
			ic.stamp++
			ic.lru[base+w] = ic.stamp
			ic.Hits++
			return true
		}
		if ic.tags[base+w] == 0 {
			victim = w
		} else if ic.tags[base+victim] != 0 && ic.lru[base+w] < ic.lru[base+victim] {
			victim = w
		}
	}
	ic.Misses++
	ic.stamp++
	ic.tags[base+victim] = line
	ic.lru[base+victim] = ic.stamp
	return false
}

// PIB is a per-thread prefetch instruction buffer: it holds a window of
// sequential instructions starting at base.
type PIB struct {
	base  uint32 // word address of entry 0; pibInvalid when empty
	words uint32 // window size in bytes
}

const pibInvalid = ^uint32(0)

// NewPIB sizes a buffer for cfg.PIBEntries instructions.
func NewPIB(cfg arch.Config) PIB {
	return PIB{base: pibInvalid, words: uint32(cfg.PIBEntries * arch.WordSize)}
}

// Contains reports whether the buffer currently covers addr.
func (p *PIB) Contains(addr uint32) bool {
	return p.base != pibInvalid && addr >= p.base && addr < p.base+p.words
}

// Refill repoints the buffer at the window starting at addr.
func (p *PIB) Refill(addr uint32) { p.base = addr }

// Invalidate empties the buffer.
func (p *PIB) Invalidate() { p.base = pibInvalid }

// FetchPath times one instruction fetch for a thread: PIB hit is free;
// a PIB refill that hits the I-cache costs icHitCycles; an I-cache miss
// additionally waits for the memory burst. Returns the added fetch stall.
type FetchPath struct {
	IC  *ICache
	Mem *mem.Memory
	// ICHitCycles is the refill bubble on a PIB miss that hits (2).
	ICHitCycles uint64
}

// Fetch charges the fetch of the instruction at addr at cycle now through
// pib, returning the cycles of fetch stall to add before issue.
func (f *FetchPath) Fetch(now uint64, pib *PIB, addr uint32) uint64 {
	if pib.Contains(addr) {
		return 0
	}
	pib.Refill(addr)
	if f.IC.Fetch(addr) {
		return f.ICHitCycles
	}
	done := f.Mem.FillLine(now, addr)
	return f.ICHitCycles + done - now
}
