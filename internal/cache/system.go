package cache

import (
	"cyclops/internal/arch"
	"cyclops/internal/mem"
	"cyclops/internal/obs"
)

// Where classifies where a data access was satisfied, matching the four
// memory rows of Table 2.
type Where uint8

const (
	// LocalHit: found in the accessing thread's quad cache (1+6 cycles).
	LocalHit Where = iota
	// LocalMiss: allocated into the quad cache from memory (1+24).
	LocalMiss
	// RemoteHit: found in another quad's cache via the switch (1+17).
	RemoteHit
	// RemoteMiss: allocated into a remote cache from memory (1+36).
	RemoteMiss
	// StoreThrough: a write-through store; retires in one port cycle.
	StoreThrough
)

func (w Where) String() string {
	switch w {
	case LocalHit:
		return "local hit"
	case LocalMiss:
		return "local miss"
	case RemoteHit:
		return "remote hit"
	case RemoteMiss:
		return "remote miss"
	case StoreThrough:
		return "store"
	}
	return "?"
}

// Wait attributes the delays one access experienced beyond the unloaded
// Table 2 latency of its outcome class. The attribution is produced here,
// once, and consumed only by the timing ledger (internal/timing), which
// owns the rule splitting a blocking stall between the coarse cacheport
// and bankconflict stall reasons and accumulates the finer per-kind
// telemetry (obs.MemWaits).
type Wait struct {
	// Port is the cycles the access queued for the cache's single
	// 8-byte port.
	Port uint64
	// Bank is the DRAM bank burst queueing delay: fill FIFO waits and
	// write-combining backlog (write backpressure).
	Bank uint64
	// Fill is the wait on a line still in flight from a concurrent miss
	// (the model's MSHR semantics).
	Fill uint64
	// Hop is the cache-switch transit of a remote access beyond the
	// local latency of the same class (remote hit 17 vs local 6, remote
	// miss 36 vs local 24).
	Hop uint64
}

// Access describes the outcome of one timed data access.
type Access struct {
	// Done is the cycle at which the loaded value is available to
	// dependent instructions (for stores: when the thread may proceed).
	Done uint64
	// Where the access was satisfied.
	Where Where
	// Cache is the data cache that served the access.
	Cache int
	// Wait attributes the access's queueing and transit delays.
	Wait Wait
}

// System is the data side of the memory hierarchy: the 32 quad caches, the
// cache switch, and the embedded memory behind them. Both the
// instruction-level simulator and the direct-execution runtime time their
// data accesses through exactly this object.
type System struct {
	Cfg    arch.Config
	Mem    *mem.Memory
	Caches []*DCache

	// port[i] is the first cycle cache i's single 8-byte port is free.
	port []uint64
	// portBusy accumulates per-cache port occupancy for utilization.
	portBusy []uint64
	// portGrants/portConflicts/portWait are the per-port telemetry the
	// observability layer exports (obs.ResourceStats).
	portGrants    []uint64
	portConflicts []uint64
	portWait      []uint64
	// lineShift is log2(DCacheLine) for interest-group scrambling.
	lineShift uint
	// fillPortCycles is the port occupancy of a line fill.
	fillPortCycles uint64

	// disabledQuads marks quads whose cache is out of service
	// (Section 5 fault tolerance: a broken FPU disables its whole quad).
	disabledQuads map[int]bool

	// Stats by outcome.
	Counts [5]uint64
}

// NewSystem builds the cache system over an existing memory.
func NewSystem(cfg arch.Config, m *mem.Memory) *System {
	n := cfg.Quads()
	s := &System{
		Cfg:            cfg,
		Mem:            m,
		Caches:         make([]*DCache, n),
		port:           make([]uint64, n),
		portBusy:       make([]uint64, n),
		portGrants:     make([]uint64, n),
		portConflicts:  make([]uint64, n),
		portWait:       make([]uint64, n),
		fillPortCycles: uint64(cfg.DCacheLine / cfg.DCachePortBytes),
		disabledQuads:  make(map[int]bool),
	}
	for i := range s.Caches {
		s.Caches[i] = NewDCache(cfg)
	}
	for s.lineShift = 0; 1<<s.lineShift < cfg.DCacheLine; s.lineShift++ {
	}
	return s
}

// DisableQuad takes quad q's cache out of service; accesses that would map
// there are redirected to the next live quad (Section 5). It reports
// whether q was valid and previously enabled.
func (s *System) DisableQuad(q int) bool {
	if q < 0 || q >= len(s.Caches) || s.disabledQuads[q] {
		return false
	}
	if len(s.disabledQuads) == len(s.Caches)-1 {
		return false // at least one quad must survive
	}
	s.disabledQuads[q] = true
	s.Caches[q].InvalidateAll()
	return true
}

// QuadDisabled reports whether quad q's cache is out of service.
func (s *System) QuadDisabled(q int) bool { return s.disabledQuads[q] }

// resolve picks the serving cache for an effective address accessed by a
// thread homed on ownCache, skipping disabled quads.
func (s *System) resolve(ea uint32, ownCache int) int {
	c := arch.CacheFor(ea, ownCache, len(s.Caches), s.lineShift)
	for s.disabledQuads[c] {
		c = (c + 1) % len(s.Caches)
	}
	return c
}

// CacheFor exposes placement resolution (used by tests and the kernel).
func (s *System) CacheFor(ea uint32, ownCache int) int { return s.resolve(ea, ownCache) }

// PartitionScratch reserves n ways (n x 2 KB at the default geometry) of
// quad q's cache as software-managed fast memory (Section 2.1), shrinking
// the cached region. The threads sharing the cache must agree on the
// organisation; this model charges the remaining ways' capacity, while
// scratch accesses themselves ride the normal local-hit path.
func (s *System) PartitionScratch(q, n int) bool {
	if q < 0 || q >= len(s.Caches) {
		return false
	}
	return s.Caches[q].SetScratchWays(n)
}

// Load times a data load of size bytes at effective address ea, issued at
// cycle now by a thread homed on quad ownCache.
func (s *System) Load(now uint64, ea uint32, size int, ownCache int) Access {
	c := s.resolve(ea, ownCache)
	phys := arch.Phys(ea)
	local := c == ownCache
	start := s.takePort(c, now, 1)
	lat := &s.Cfg.Latencies

	if hit, ready := s.Caches[c].Lookup(phys); hit {
		w := RemoteHit
		extra := uint64(lat.RemoteHitLatency)
		hop := uint64(lat.RemoteHitLatency - lat.LocalHitLatency)
		if local {
			w, extra, hop = LocalHit, uint64(lat.LocalHitLatency), 0
		}
		s.Counts[w]++
		done := start + extra
		var fillWait uint64
		if ready > done {
			// The line is still in flight from a concurrent miss;
			// the access completes when the fill does.
			fillWait = ready - done
			done = ready
		}
		return Access{Done: done, Where: w, Cache: c,
			Wait: Wait{Port: start - now, Fill: fillWait, Hop: hop}}
	}

	// Miss: fill the line from its bank and install it. The fill
	// transfer occupies the port; the occupancy is booked at request
	// time (a reserved slot) so the single next-free port cursor never
	// travels backwards.
	fillDone := s.Mem.FillLine(start, phys)
	s.Caches[c].Install(phys, fillDone)
	s.takePort(c, start+1, s.fillPortCycles)
	w := RemoteMiss
	extra := uint64(lat.RemoteMissLatency)
	hop := uint64(lat.RemoteMissLatency - lat.LocalMissLatency)
	if local {
		w, extra, hop = LocalMiss, uint64(lat.LocalMissLatency), 0
	}
	s.Counts[w]++
	// The Table 2 miss latencies are unloaded; queueing at the bank adds
	// on top. fillDone-start-burst is exactly the queueing delay.
	queue := fillDone - start - uint64(s.Cfg.MemBurstCycles)
	return Access{Done: start + extra + queue, Where: w, Cache: c,
		Wait: Wait{Port: start - now, Bank: queue, Hop: hop}}
}

// Store times a write-through store. The thread normally proceeds after
// the port cycle; when the target bank's write buffer is full the store
// blocks until the backlog drains, pacing store traffic to the memory's
// service rate. If the line is present in the target cache it is updated
// in place (the tags stay); no allocation happens on a store miss.
func (s *System) Store(now uint64, ea uint32, size int, ownCache int) Access {
	c := s.resolve(ea, ownCache)
	phys := arch.Phys(ea)
	start := s.takePort(c, now, 1)
	// Keep LRU/tag state truthful: a store hit refreshes the line.
	s.Caches[c].Lookup(phys)
	admit := s.Mem.WriteThrough(start, phys, size)
	s.Counts[StoreThrough]++
	done := start + 1
	var bankWait uint64
	if admit > done {
		bankWait = admit - done
		done = admit
	}
	return Access{Done: done, Where: StoreThrough, Cache: c,
		Wait: Wait{Port: start - now, Bank: bankWait}}
}

// Atomic times a read-modify-write (amoadd/amoswap/amocas). It behaves as
// a load for latency — the old value must return to the thread — plus the
// write-through traffic of the store half. The cache port is held for both
// halves, serialising concurrent atomics on one location's cache.
func (s *System) Atomic(now uint64, ea uint32, size int, ownCache int) Access {
	a := s.Load(now, ea, size, ownCache)
	s.takePort(a.Cache, a.Done, 1)
	s.Mem.WriteThrough(a.Done, arch.Phys(ea), size)
	a.Done++
	return a
}

// takePort reserves n cycles of cache c's port starting no earlier than
// now; it returns the cycle service actually began.
func (s *System) takePort(c int, now uint64, n uint64) uint64 {
	start := now
	if s.port[c] > start {
		start = s.port[c]
		if obs.Enabled {
			s.portConflicts[c]++
			s.portWait[c] += start - now
		}
	}
	if obs.Enabled {
		s.portGrants[c]++
	}
	s.port[c] = start + n
	s.portBusy[c] += n
	return start
}

// PortBusy returns cache c's accumulated port occupancy in cycles.
func (s *System) PortBusy(c int) uint64 { return s.portBusy[c] }

// PortStats returns cache c's port telemetry for the observability layer.
func (s *System) PortStats(c int) obs.ResourceStats {
	return obs.ResourceStats{
		Kind:       "cacheport",
		ID:         c,
		Busy:       s.portBusy[c],
		Grants:     s.portGrants[c],
		Conflicts:  s.portConflicts[c],
		WaitCycles: s.portWait[c],
	}
}

// Reset clears timing and tag state for a fresh experiment run.
func (s *System) Reset() {
	for i := range s.Caches {
		s.Caches[i].InvalidateAll()
		s.Caches[i].ResetStats()
		s.port[i] = 0
		s.portBusy[i] = 0
		s.portGrants[i] = 0
		s.portConflicts[i] = 0
		s.portWait[i] = 0
	}
	s.Counts = [5]uint64{}
	s.Mem.ResetTiming()
}
