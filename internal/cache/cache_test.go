package cache

import (
	"testing"
	"testing/quick"

	"cyclops/internal/arch"
	"cyclops/internal/mem"
)

func hits(d *DCache, addr uint32) bool {
	h, _ := d.Lookup(addr)
	return h
}

func TestDCacheHitMiss(t *testing.T) {
	d := NewDCache(arch.Default())
	if hits(d, 0x1000) {
		t.Fatal("cold cache hit")
	}
	d.Install(0x1000, 0)
	if !hits(d, 0x1000) {
		t.Fatal("miss after install")
	}
	// Same line, different offset.
	if !hits(d, 0x103f) {
		t.Fatal("same-line offset missed")
	}
	// Next line misses.
	if hits(d, 0x1040) {
		t.Fatal("adjacent line hit")
	}
	if d.Hits != 2 || d.Misses != 2 {
		t.Errorf("hits/misses = %d/%d, want 2/2", d.Hits, d.Misses)
	}
}

func TestDCacheLRUEviction(t *testing.T) {
	cfg := arch.Default() // 16 KB, 8-way, 64 B lines -> 32 sets
	d := NewDCache(cfg)
	sets := uint32(cfg.DCacheBytes / cfg.DCacheLine / cfg.DCacheAssoc)
	stride := sets * uint32(cfg.DCacheLine) // same set each time
	// Fill all 8 ways of set 0.
	for i := uint32(0); i < 8; i++ {
		d.Install(i*stride, 0)
	}
	// Touch line 0 so line 1 becomes LRU.
	hits(d, 0)
	d.Install(8*stride, 0) // evicts line 1
	if !hits(d, 0) {
		t.Error("recently used line evicted")
	}
	if hits(d, 1*stride) {
		t.Error("LRU line survived")
	}
	if !hits(d, 8*stride) {
		t.Error("new line not installed")
	}
}

func TestDCacheScratchWays(t *testing.T) {
	d := NewDCache(arch.Default())
	if !d.SetScratchWays(4) {
		t.Fatal("SetScratchWays(4) rejected")
	}
	if d.SetScratchWays(8) || d.SetScratchWays(-1) {
		t.Error("invalid scratch partitioning accepted")
	}
	if d.ScratchWays() != 4 {
		t.Errorf("ScratchWays = %d", d.ScratchWays())
	}
	// Caching still works with the remaining ways.
	d.Install(0x2000, 0)
	if !hits(d, 0x2000) {
		t.Error("half-partitioned cache lost a line")
	}
	// Capacity is halved: 5 conflicting lines in a 4-way region evict.
	cfg := arch.Default()
	sets := uint32(cfg.DCacheBytes / cfg.DCacheLine / cfg.DCacheAssoc)
	stride := sets * uint32(cfg.DCacheLine)
	for i := uint32(0); i < 5; i++ {
		d.Install(0x100000+i*stride, 0)
	}
	live := 0
	for i := uint32(0); i < 5; i++ {
		if hits(d, 0x100000+i*stride) {
			live++
		}
	}
	if live != 4 {
		t.Errorf("%d of 5 lines live in a 4-way partition, want 4", live)
	}
}

func newSystem(t *testing.T) *System {
	t.Helper()
	cfg := arch.Default()
	return NewSystem(cfg, mem.New(cfg))
}

// ea builds an effective address with the chip-wide shared interest group.
func eaAll(phys uint32) uint32 {
	return arch.EA(arch.InterestGroup{Mode: arch.GroupAll}, phys)
}

func eaOwn(phys uint32) uint32 {
	return arch.EA(arch.InterestGroup{Mode: arch.GroupOwn}, phys)
}

func eaOne(c int, phys uint32) uint32 {
	return arch.EA(arch.InterestGroup{Mode: arch.GroupOne, Sel: uint8(c)}, phys)
}

func TestTable2LoadLatencies(t *testing.T) {
	s := newSystem(t)
	own := 5

	// Local miss: unloaded latency 24 beyond the port cycle.
	a := s.Load(0, eaOne(own, 0x4000), 8, own)
	if a.Where != LocalMiss || a.Done != 0+24 {
		t.Errorf("local miss = %+v, want done 24", a)
	}
	// Local hit: 6.
	a = s.Load(100, eaOne(own, 0x4000), 8, own)
	if a.Where != LocalHit || a.Done != 100+6 {
		t.Errorf("local hit = %+v, want done 106", a)
	}
	// Remote miss: 36.
	a = s.Load(200, eaOne(9, 0x8000), 8, own)
	if a.Where != RemoteMiss || a.Done != 200+36 {
		t.Errorf("remote miss = %+v, want done 236", a)
	}
	// Remote hit: 17.
	a = s.Load(300, eaOne(9, 0x8000), 8, own)
	if a.Where != RemoteHit || a.Done != 300+17 {
		t.Errorf("remote hit = %+v, want done 317", a)
	}
}

func TestBankQueueingAddsToMissLatency(t *testing.T) {
	s := newSystem(t)
	// Two threads miss different lines in the same bank at once: the
	// second fill queues 12 cycles behind the first.
	a1 := s.Load(0, eaOne(0, 0x0000), 8, 0)
	a2 := s.Load(0, eaOne(1, 0x0000+17*64), 8, 1) // same bank (hash), different cache
	if a1.Done != 24 {
		t.Errorf("first miss done %d, want 24", a1.Done)
	}
	if a2.Done != 24+12 {
		t.Errorf("queued miss done %d, want 36 (24 + one burst)", a2.Done)
	}
}

func TestPortContentionSerialisesAccesses(t *testing.T) {
	s := newSystem(t)
	s.Caches[3].Install(0x7000, 0)
	// Four threads hit the same cache in the same cycle: the single
	// 8 B/cycle port serialises them.
	var dones []uint64
	for i := 0; i < 4; i++ {
		a := s.Load(50, eaOne(3, 0x7000), 8, 3)
		dones = append(dones, a.Done)
	}
	for i, d := range dones {
		want := uint64(50+i) + 6
		if d != want {
			t.Errorf("access %d done %d, want %d", i, d, want)
		}
	}
}

func TestStoreRetiresInOnePortCycle(t *testing.T) {
	s := newSystem(t)
	a := s.Store(10, eaAll(0x9000), 8, 0)
	if a.Where != StoreThrough || a.Done != 11 {
		t.Errorf("store = %+v, want done 11", a)
	}
	// Stores do not allocate: a following load misses.
	if l := s.Load(20, eaAll(0x9000), 8, 0); l.Where != LocalMiss && l.Where != RemoteMiss {
		t.Errorf("load after store = %v, want a miss (no write-allocate)", l.Where)
	}
}

func TestStoreTrafficLimitsFills(t *testing.T) {
	s := newSystem(t)
	// 32 bytes of stores to bank 0 occupy it for half a burst; a fill
	// to the same bank then waits.
	for i := uint32(0); i < 4; i++ {
		s.Store(0, eaOne(int(i&1), i*8), 8, 0)
	}
	a := s.Load(0, eaOne(5, 0), 8, 5)
	if a.Done <= 24 {
		t.Errorf("fill ignored store traffic: done %d", a.Done)
	}
}

func TestOwnModeIsAlwaysLocal(t *testing.T) {
	s := newSystem(t)
	for own := 0; own < 32; own++ {
		a := s.Load(0, eaOwn(0x5000), 8, own)
		if a.Cache != own {
			t.Fatalf("own-mode access from quad %d served by cache %d", own, a.Cache)
		}
	}
	// All 32 caches now replicate the line (interest group zero).
	for own := 0; own < 32; own++ {
		a := s.Load(1000, eaOwn(0x5000), 8, own)
		if a.Where != LocalHit {
			t.Fatalf("replicated line: quad %d got %v", own, a.Where)
		}
	}
}

func TestSharedModeMapsUniquely(t *testing.T) {
	s := newSystem(t)
	// Under the chip-wide group an address has exactly one home cache,
	// no matter who accesses it — no coherence problem (Section 2.1).
	f := func(phys uint32, t1, t2 uint8) bool {
		phys &= arch.PhysAddrMask
		a := s.CacheFor(eaAll(phys), int(t1%32))
		b := s.CacheFor(eaAll(phys), int(t2%32))
		return a == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAtomicHoldsPortAndReturnsOldValuePath(t *testing.T) {
	s := newSystem(t)
	s.Caches[0].Install(0, 0)
	a := s.Atomic(0, eaOne(0, 0), 4, 0)
	if a.Done != 0+6+1 {
		t.Errorf("atomic done %d, want 7 (hit latency + store cycle)", a.Done)
	}
	// Port was held for both halves.
	if s.PortBusy(0) < 2 {
		t.Errorf("atomic held port for %d cycles, want >= 2", s.PortBusy(0))
	}
}

func TestDisableQuadRedirects(t *testing.T) {
	s := newSystem(t)
	if !s.DisableQuad(7) {
		t.Fatal("DisableQuad(7) failed")
	}
	if s.DisableQuad(7) {
		t.Error("double disable accepted")
	}
	if s.DisableQuad(-1) || s.DisableQuad(32) {
		t.Error("invalid quad accepted")
	}
	a := s.Load(0, eaOne(7, 0x3000), 8, 0)
	if a.Cache == 7 {
		t.Error("access served by disabled quad")
	}
	if a.Cache != 8 {
		t.Errorf("redirected to cache %d, want next live quad 8", a.Cache)
	}
}

func TestSystemReset(t *testing.T) {
	s := newSystem(t)
	s.Load(0, eaAll(0x1000), 8, 0)
	s.Reset()
	if s.Counts[LocalMiss]+s.Counts[RemoteMiss] != 0 {
		t.Error("Reset kept access counts")
	}
	a := s.Load(0, eaAll(0x1000), 8, 0)
	if a.Where != LocalMiss && a.Where != RemoteMiss {
		t.Error("Reset kept cache contents")
	}
}

func TestICacheFetch(t *testing.T) {
	cfg := arch.Default()
	ic := NewICache(cfg)
	if ic.Fetch(0x100) {
		t.Fatal("cold I-cache hit")
	}
	if !ic.Fetch(0x104) {
		t.Fatal("same-line fetch missed (32-byte lines)")
	}
	if ic.Fetch(0x120) {
		t.Fatal("next line hit")
	}
	if ic.Hits != 1 || ic.Misses != 2 {
		t.Errorf("hits/misses = %d/%d", ic.Hits, ic.Misses)
	}
}

func TestICacheEvictsLRU(t *testing.T) {
	cfg := arch.Default() // 32 KB, 8-way, 32 B lines -> 128 sets
	ic := NewICache(cfg)
	sets := uint32(cfg.ICacheBytes / cfg.ICacheLine / cfg.ICacheAssoc)
	stride := sets * uint32(cfg.ICacheLine)
	for i := uint32(0); i < 9; i++ {
		ic.Fetch(i * stride)
	}
	if ic.Fetch(0) { // line 0 was LRU and must be gone
		t.Error("LRU instruction line survived 9 conflicting fills")
	}
}

func TestPIBWindow(t *testing.T) {
	cfg := arch.Default()
	pib := NewPIB(cfg)
	if pib.Contains(0) {
		t.Fatal("empty PIB contains address")
	}
	pib.Refill(0x100)
	if !pib.Contains(0x100) || !pib.Contains(0x13c) {
		t.Error("PIB window too small: 16 instructions = 64 bytes")
	}
	if pib.Contains(0x140) || pib.Contains(0xfc) {
		t.Error("PIB window too large")
	}
	pib.Invalidate()
	if pib.Contains(0x100) {
		t.Error("invalidated PIB still hits")
	}
}

func TestFetchPathCosts(t *testing.T) {
	cfg := arch.Default()
	m := mem.New(cfg)
	fp := &FetchPath{IC: NewICache(cfg), Mem: m, ICHitCycles: 2}
	pib := NewPIB(cfg)

	// Cold fetch: PIB miss + I-cache miss -> bubble includes the burst.
	stall := fp.Fetch(0, &pib, 0x200)
	if stall != 2+uint64(cfg.MemBurstCycles) {
		t.Errorf("cold fetch stall = %d, want %d", stall, 2+cfg.MemBurstCycles)
	}
	// Within the PIB window: free.
	if stall := fp.Fetch(20, &pib, 0x204); stall != 0 {
		t.Errorf("PIB hit stall = %d, want 0", stall)
	}
	// Past the window but in the I-cache line: refill bubble only.
	pib.Refill(0x1000)
	if stall := fp.Fetch(30, &pib, 0x204); stall != 2 {
		t.Errorf("I-cache hit stall = %d, want 2", stall)
	}
}

func TestPartitionScratchShrinksCapacity(t *testing.T) {
	s := newSystem(t)
	if !s.PartitionScratch(3, 6) {
		t.Fatal("partitioning rejected")
	}
	if s.PartitionScratch(-1, 1) || s.PartitionScratch(99, 1) || s.PartitionScratch(3, 8) {
		t.Error("invalid partitioning accepted")
	}
	// With 6 of 8 ways reserved, a working set that fits 8 ways of one
	// set now thrashes: stream 8 conflicting lines twice and count the
	// second pass's misses.
	cfg := arch.Default()
	sets := uint32(cfg.DCacheBytes / cfg.DCacheLine / cfg.DCacheAssoc)
	stride := sets * uint32(cfg.DCacheLine)
	touch := func() {
		for i := uint32(0); i < 8; i++ {
			s.Load(uint64(i*100), eaOne(3, 0x1000+i*stride), 8, 3)
		}
	}
	touch()
	before := s.Caches[3].Misses
	touch()
	extra := s.Caches[3].Misses - before
	if extra < 4 {
		t.Errorf("partitioned cache took only %d second-pass misses, want thrashing", extra)
	}
	// An unpartitioned cache holds all 8 lines.
	s2 := newSystem(t)
	for i := uint32(0); i < 8; i++ {
		s2.Load(uint64(i*100), eaOne(3, 0x1000+i*stride), 8, 3)
	}
	m := s2.Caches[3].Misses
	for i := uint32(0); i < 8; i++ {
		s2.Load(uint64(1000+i*100), eaOne(3, 0x1000+i*stride), 8, 3)
	}
	if s2.Caches[3].Misses != m {
		t.Error("full cache evicted within its associativity")
	}
}

// Property: after any access sequence, the assoc most-recently-used lines
// of one set are always resident.
func TestLRUProperty(t *testing.T) {
	cfg := arch.Default()
	d := NewDCache(cfg)
	sets := uint32(cfg.DCacheBytes / cfg.DCacheLine / cfg.DCacheAssoc)
	stride := sets * uint32(cfg.DCacheLine)
	seed := uint32(99)
	var recent []uint32
	for step := 0; step < 2000; step++ {
		seed = seed*1664525 + 1013904223
		line := seed % 20
		addr := line * stride
		if h, _ := d.Lookup(addr); !h {
			d.Install(addr, 0)
		}
		// Track recency.
		for i, r := range recent {
			if r == line {
				recent = append(recent[:i], recent[i+1:]...)
				break
			}
		}
		recent = append(recent, line)
		if len(recent) > cfg.DCacheAssoc {
			recent = recent[1:]
		}
		for _, r := range recent {
			// The verification probe itself refreshes recency, which
			// keeps the tracked set resident — the invariant under test.
			if h, _ := d.Lookup(r * stride); !h {
				t.Fatalf("step %d: recently-used line %d evicted", step, r)
			}
		}
	}
}
