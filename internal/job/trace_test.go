package job_test

import (
	"encoding/json"
	"sync"
	"testing"
	"time"

	"cyclops/internal/job"
	"cyclops/internal/obs"
	"cyclops/internal/resultcache"
)

// spanNames collects the names recorded for one trace.
func spanNames(tr *obs.Tracer, trace string) map[string]int {
	names := map[string]int{}
	for _, sp := range tr.Snapshot() {
		if sp.Trace.String() == trace {
			names[sp.Name]++
		}
	}
	return names
}

// attr returns a span attribute value ("" when absent).
func attr(sp obs.Span, key string) string {
	for _, kv := range sp.Attrs {
		if kv[0] == key {
			return kv[1]
		}
	}
	return ""
}

// A traced miss records the full stage taxonomy under one run root; the
// following hit records only the lookup, flagged as a hit.
func TestRunnerSpanTaxonomy(t *testing.T) {
	r := job.NewRunner()
	c, err := resultcache.Open(t.TempDir(), job.SemanticsVersion, 0)
	if err != nil {
		t.Fatal(err)
	}
	r.Cache = c
	r.Tracer = obs.NewTracerSeeded(obs.DefaultTraceCapacity, 7)
	spec := smallStreamSpec(t, "")

	if _, _, err := r.RunEncodedTraced(spec, nil); err != nil {
		t.Fatal(err)
	}
	spans := r.Tracer.Snapshot()
	coldTrace := spans[0].Trace.String()
	cold := spanNames(r.Tracer, coldTrace)
	for _, name := range []string{"run", "canonicalize", "cache_lookup", "execute", "encode", "store", "cache.mem", "cache.write"} {
		if cold[name] != 1 {
			t.Errorf("cold trace records %d %q spans; want 1 (all: %v)", cold[name], name, cold)
		}
	}
	if cold["coalesce_wait"] != 0 {
		t.Errorf("uncontended run recorded a coalesce_wait span: %v", cold)
	}

	// Parentage: every span except the root has a parent in the same trace.
	ids := map[string]bool{}
	for _, sp := range spans {
		ids[sp.ID.String()] = true
	}
	for _, sp := range spans {
		if sp.Name == "run" {
			continue
		}
		if sp.Parent.IsZero() || !ids[sp.Parent.String()] {
			t.Errorf("span %q parent %s not recorded in trace", sp.Name, sp.Parent)
		}
	}

	before := r.Tracer.Recorded()
	if _, info, err := r.RunEncodedTraced(spec, nil); err != nil || !info.Cached {
		t.Fatalf("warm run: cached=%t err=%v; want hit", info.Cached, err)
	}
	var warmTrace string
	for _, sp := range r.Tracer.Snapshot()[before:] {
		if sp.Name == "run" {
			warmTrace = sp.Trace.String()
		}
		if sp.Name == "cache_lookup" && attr(sp, "outcome") != "hit" {
			t.Errorf("warm cache_lookup outcome = %q; want hit", attr(sp, "outcome"))
		}
	}
	warm := spanNames(r.Tracer, warmTrace)
	if warm["execute"] != 0 || warm["store"] != 0 {
		t.Errorf("warm trace = %v; a hit must not execute or store", warm)
	}
}

// Coalesced joiners record coalesce_wait spans — exactly starters-1 of
// them for one batch of identical specs.
func TestCoalesceWaitSpans(t *testing.T) {
	g := registerGate(t, "test-trace-coalesce")
	r := job.NewRunner()
	r.Cache = resultcache.OpenMemory(0)
	r.Tracer = obs.NewTracer(0)
	spec := &job.Spec{Workload: "test-trace-coalesce", Args: json.RawMessage(`{}`)}

	const n = 4
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = r.RunEncodedTraced(spec, nil)
		}(i)
	}
	<-g.started
	deadline := time.Now().Add(10 * time.Second)
	for r.Stats().Coalesced < n-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d duplicates coalesced", r.Stats().Coalesced, n-1)
		}
		time.Sleep(time.Millisecond)
	}
	close(g.release)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
	waits := 0
	for _, sp := range r.Tracer.Snapshot() {
		if sp.Name == "coalesce_wait" {
			waits++
		}
	}
	if want := int(r.Stats().Coalesced); waits != want {
		t.Errorf("recorded %d coalesce_wait spans; want %d (one per coalesced join)", waits, want)
	}
	if r.Stats().Executions != 1 {
		t.Errorf("executions = %d; want 1", r.Stats().Executions)
	}
}

// Instrument feeds stage spans and whole submissions into the
// registry's latency histograms: per-stage counts match the span
// counts, and run_seconds is labelled per workload.
func TestInstrumentStageHistograms(t *testing.T) {
	r := job.NewRunner()
	r.Cache = resultcache.OpenMemory(0)
	m := obs.NewMetrics()
	r.Instrument(m)
	if r.Tracer == nil {
		t.Fatal("Instrument left Tracer nil")
	}
	spec := smallStreamSpec(t, "")
	if _, _, err := r.RunEncoded(spec); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.RunEncoded(spec); err != nil {
		t.Fatal(err)
	}

	wantCounts := map[string]uint64{
		"canonicalize":  2, // miss + hit both canonicalize
		"cache_lookup":  2,
		"execute":       1,
		"encode":        1,
		"store":         1,
		"coalesce_wait": 0,
	}
	for stage, want := range wantCounts {
		got := m.Histogram("job_stage_seconds", "stage", stage).Snapshot().Count
		if got != want {
			t.Errorf("job_stage_seconds{stage=%q} count = %d; want %d", stage, got, want)
		}
	}
	if got := m.Histogram("run_seconds", "workload", "stream").Snapshot().Count; got != 2 {
		t.Errorf("run_seconds{workload=stream} count = %d; want 2", got)
	}
}
