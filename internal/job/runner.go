package job

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"cyclops/internal/harness/sweep"
	"cyclops/internal/obs"
	"cyclops/internal/resultcache"
	"cyclops/internal/sim"
)

// Stats is a snapshot of a Runner's activity.
type Stats struct {
	// Hits counts cache hits; Misses cache consultations that found
	// nothing (a Runner without a cache counts every run as a miss).
	Hits, Misses uint64
	// Coalesced counts submissions that joined an identical in-flight
	// execution instead of starting their own.
	Coalesced uint64
	// Executions counts actual simulator runs — the number the warm-cache
	// acceptance test pins at zero on a repeated sweep.
	Executions uint64
	// Errors counts executions that failed (failures are never cached).
	Errors uint64
}

// RunInfo reports how one submission was served.
type RunInfo struct {
	// Cached: the cache held the result; no execution, no coalescing.
	Cached bool
	// Coalesced: an identical execution was already in flight and this
	// submission joined it instead of running its own.
	Coalesced bool
}

// Stage names the per-stage latency series a Runner observes into its
// metrics registry (job_stage_seconds{stage=...}) and the span names a
// request trace carries — one vocabulary for both views.
var Stages = []string{
	"canonicalize",
	"cache_lookup",
	"coalesce_wait",
	"execute",
	"encode",
	"store",
}

// Runner executes canonical specs: cache first, then a coalesced
// execution — concurrent submissions of the same key share one run
// (singleflight) and each decode their own copy of its result. Safe for
// concurrent use; RunAll additionally fans specs across the process-wide
// harness/sweep worker pool.
type Runner struct {
	// Cache, when non-nil, fronts execution. Set it before the first Run;
	// results are stored under Spec.Key in the canonical Result encoding.
	Cache *resultcache.Cache

	// Tracer, when non-nil, records every run as a span tree:
	// canonicalize, cache_lookup (with the cache's tier sub-spans),
	// coalesce_wait, execute, encode and store, parented under the span
	// passed to RunEncodedTraced — or under a fresh root per run when
	// none is (the cyclops-bench -trace-runs mode). Nil tracing costs a
	// handful of nil checks per run. Set it before the first Run.
	Tracer *obs.Tracer

	// metrics, when set by Instrument, receives per-stage and
	// per-workload latency histograms.
	metrics atomic.Pointer[obs.Metrics]

	mu       sync.Mutex
	inflight map[resultcache.Key]*call

	hits, misses, coalesced, executions, errors atomic.Uint64
}

// call is one in-flight execution; done closes once data/err are final.
type call struct {
	done chan struct{}
	data []byte
	err  error
}

// NewRunner returns a Runner with no cache attached.
func NewRunner() *Runner {
	return &Runner{inflight: make(map[resultcache.Key]*call)}
}

// Instrument registers the runner's operational series into m: the
// job_* activity counters, the attached cache's cache_* counters and
// byte gauges, the per-stage job_stage_seconds histograms (one per
// Stages entry, pre-registered so a fresh daemon exports them at zero)
// and the per-workload run_seconds histograms (registered lazily as
// workloads appear). A nil Tracer is replaced with a fresh one — stage
// timings come from span durations, so instrumenting implies tracing.
// Call once, after attaching the cache and before the first run.
func (r *Runner) Instrument(m *obs.Metrics) {
	if r.Tracer == nil {
		r.Tracer = obs.NewTracer(0)
	}
	stat := func(read func(Stats) uint64) func() uint64 {
		return func() uint64 { return read(r.Stats()) }
	}
	m.Func("job_hits", stat(func(st Stats) uint64 { return st.Hits }))
	m.Func("job_misses", stat(func(st Stats) uint64 { return st.Misses }))
	m.Func("job_coalesced", stat(func(st Stats) uint64 { return st.Coalesced }))
	m.Func("job_executions", stat(func(st Stats) uint64 { return st.Executions }))
	m.Func("job_errors", stat(func(st Stats) uint64 { return st.Errors }))
	m.Func("job_inflight", func() uint64 { return uint64(r.Inflight()) })
	if c := r.Cache; c != nil {
		cstat := func(read func(resultcache.Counters) uint64) func() uint64 {
			return func() uint64 { return read(c.Stats()) }
		}
		m.Func("cache_mem_hits", cstat(func(ct resultcache.Counters) uint64 { return ct.MemHits }))
		m.Func("cache_disk_hits", cstat(func(ct resultcache.Counters) uint64 { return ct.DiskHits }))
		m.Func("cache_misses", cstat(func(ct resultcache.Counters) uint64 { return ct.Misses }))
		m.Func("cache_corrupt", cstat(func(ct resultcache.Counters) uint64 { return ct.Corrupt }))
		m.Func("cache_evictions", cstat(func(ct resultcache.Counters) uint64 { return ct.Evictions }))
		m.Func("cache_puts", cstat(func(ct resultcache.Counters) uint64 { return ct.Puts }))
		m.Func("cache_mem_bytes", func() uint64 { return uint64(c.MemBytes()) })
		m.Func("cache_disk_bytes", c.DiskBytes)
	}
	for _, stage := range Stages {
		m.Histogram("job_stage_seconds", "stage", stage)
	}
	r.metrics.Store(m)
}

// observeStage feeds one finished stage span into its latency series.
func (r *Runner) observeStage(stage string, sp obs.Span) {
	if m := r.metrics.Load(); m != nil {
		m.Histogram("job_stage_seconds", "stage", stage).Observe(sp.Dur)
	}
}

// observeRun feeds one whole submission (hit or miss alike) into the
// per-workload run_seconds series.
func (r *Runner) observeRun(workload string, d time.Duration) {
	if m := r.metrics.Load(); m != nil {
		m.Histogram("run_seconds", "workload", workload).Observe(d)
	}
}

// Run executes one spec and returns its decoded result. Every return
// path decodes the canonical encoding — cache hit, coalesced join, or
// fresh execution — so equal specs yield byte-identical encoded results
// no matter which path served them.
//
// Run never calls into the sweep pool itself, so it is safe to call from
// inside a sweep.Map worker (the harness experiments do exactly that).
func (r *Runner) Run(spec *Spec) (*Result, error) {
	data, _, err := r.RunEncoded(spec)
	if err != nil {
		return nil, err
	}
	return DecodeResult(data)
}

// RunEncoded is Run without the final decode: it returns the canonical
// encoded result — the exact bytes the cache stores and the serve
// daemon ships — plus whether the cache served them. Callers must not
// mutate the returned slice.
func (r *Runner) RunEncoded(spec *Spec) (data []byte, cached bool, err error) {
	data, info, err := r.RunEncodedTraced(spec, nil)
	return data, info.Cached, err
}

// RunEncodedTraced is RunEncoded with tracing and full serving info:
// every stage becomes a child span of parent (see Tracer), and the
// returned RunInfo says whether the cache or a coalesced execution
// served the bytes. With a nil parent and a non-nil Tracer each run
// roots its own trace.
func (r *Runner) RunEncodedTraced(spec *Spec, parent *obs.ActiveSpan) ([]byte, RunInfo, error) {
	var info RunInfo
	root := parent
	ownRoot := root == nil && r.Tracer != nil
	if ownRoot {
		root = r.Tracer.StartTrace("run")
	}
	var started time.Time
	if r.metrics.Load() != nil {
		started = r.Tracer.Now()
	}
	data, err := r.runTraced(spec, root, &info)
	if ownRoot {
		root.Attr("workload", spec.Workload)
		root.Attr("cached", fmt.Sprintf("%t", info.Cached))
		root.End()
	}
	if !started.IsZero() {
		r.observeRun(spec.Workload, r.Tracer.Now().Sub(started))
	}
	return data, info, err
}

// runTraced is the staged body of RunEncodedTraced.
func (r *Runner) runTraced(spec *Spec, root *obs.ActiveSpan, info *RunInfo) ([]byte, error) {
	csp := root.Child("canonicalize")
	canon, err := spec.Canonicalize()
	var key resultcache.Key
	if err == nil {
		key, err = canon.Key()
	}
	if err != nil {
		csp.Attr("error", err.Error())
		r.observeStage("canonicalize", csp.End())
		return nil, err
	}
	csp.Attr("key", key.String())
	r.observeStage("canonicalize", csp.End())

	if r.Cache != nil {
		lsp := root.Child("cache_lookup")
		if data, ok := r.Cache.GetTraced(key, lsp); ok {
			if _, derr := DecodeResult(data); derr == nil {
				r.hits.Add(1)
				lsp.Attr("outcome", "hit")
				r.observeStage("cache_lookup", lsp.End())
				info.Cached = true
				return data, nil
			}
			// Undecodable despite the cache's integrity check: the entry
			// predates a Result schema change that forgot a
			// SemanticsVersion bump. Fall through and re-run.
		}
		lsp.Attr("outcome", "miss")
		r.observeStage("cache_lookup", lsp.End())
	}
	r.misses.Add(1)

	r.mu.Lock()
	if c, ok := r.inflight[key]; ok {
		r.mu.Unlock()
		r.coalesced.Add(1)
		info.Coalesced = true
		wsp := root.Child("coalesce_wait")
		<-c.done
		r.observeStage("coalesce_wait", wsp.End())
		return c.data, c.err
	}
	c := &call{done: make(chan struct{})}
	r.inflight[key] = c
	r.mu.Unlock()

	esp := root.Child("execute").Attr("workload", canon.Workload)
	if canon.Engine != "" {
		esp.Attr("engine", canon.Engine)
	}
	res, err := r.execute(canon)
	r.observeStage("execute", esp.End())
	if err != nil {
		c.err = err
	} else {
		nsp := root.Child("encode")
		c.data, c.err = EncodeResult(res)
		r.observeStage("encode", nsp.End())
	}
	if c.err == nil && r.Cache != nil {
		// A failed store (full disk) must not fail the run; the result
		// is in hand and the next identical spec simply re-executes.
		ssp := root.Child("store")
		_ = r.Cache.PutTraced(key, c.data, ssp)
		r.observeStage("store", ssp.End())
	}
	r.mu.Lock()
	delete(r.inflight, key)
	r.mu.Unlock()
	close(c.done)

	return c.data, c.err
}

// Cached returns the canonical encoded result when the cache already
// holds the spec, counting a hit. It never executes and never counts a
// miss (a subsequent RunEncoded does) — the serve daemon's
// answer-hits-without-queueing fast path.
func (r *Runner) Cached(spec *Spec) ([]byte, bool) { return r.CachedTraced(spec, nil) }

// CachedTraced is Cached with the lookup recorded as a cache_lookup
// child span of parent (and the whole probe observed into the
// per-workload run_seconds series on a hit).
func (r *Runner) CachedTraced(spec *Spec, parent *obs.ActiveSpan) ([]byte, bool) {
	if r.Cache == nil {
		return nil, false
	}
	canon, err := spec.Canonicalize()
	if err != nil {
		return nil, false
	}
	key, err := canon.Key()
	if err != nil {
		return nil, false
	}
	var started time.Time
	if r.metrics.Load() != nil {
		started = r.Tracer.Now()
	}
	lsp := parent.Child("cache_lookup")
	data, ok := r.Cache.GetTraced(key, lsp)
	if ok {
		if _, err := DecodeResult(data); err != nil {
			ok = false
		}
	}
	if !ok {
		lsp.Attr("outcome", "miss")
		r.observeStage("cache_lookup", lsp.End())
		return nil, false
	}
	lsp.Attr("outcome", "hit")
	r.observeStage("cache_lookup", lsp.End())
	r.hits.Add(1)
	if !started.IsZero() {
		r.observeRun(canon.Workload, r.Tracer.Now().Sub(started))
	}
	return data, true
}

// execute performs one real run and returns the decoded result.
func (r *Runner) execute(canon *Spec) (*Result, error) {
	r.executions.Add(1)
	w, ok := LookupWorkload(canon.Workload)
	if !ok {
		return nil, fmt.Errorf("job: unknown workload %q", canon.Workload)
	}
	engine := sim.DefaultEngine()
	if canon.Engine != "" {
		var err error
		if engine, err = canon.engine(); err != nil {
			return nil, err
		}
	}
	pol, err := canon.policy()
	if err != nil {
		return nil, err
	}
	res, err := w.Run(&RunContext{Spec: canon, Config: *canon.Config, Engine: engine, Policy: pol})
	if err != nil {
		r.errors.Add(1)
		return nil, fmt.Errorf("job: %s: %w", canon.Workload, err)
	}
	return res, nil
}

// RunAll executes the specs across the process-wide sweep worker pool
// and returns their results in input order (the first in-order error
// aborts, exactly like sweep.Map). Identical specs in one batch coalesce
// to a single execution.
func (r *Runner) RunAll(specs []*Spec) ([]*Result, error) {
	return sweep.Map(specs, r.Run)
}

// Stats snapshots the counters.
func (r *Runner) Stats() Stats {
	return Stats{
		Hits:       r.hits.Load(),
		Misses:     r.misses.Load(),
		Coalesced:  r.coalesced.Load(),
		Executions: r.executions.Load(),
		Errors:     r.errors.Load(),
	}
}

// Inflight reports the number of executions currently running — the
// serve metrics' view of simulator occupancy.
func (r *Runner) Inflight() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.inflight)
}
