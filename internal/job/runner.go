package job

import (
	"fmt"
	"sync"
	"sync/atomic"

	"cyclops/internal/harness/sweep"
	"cyclops/internal/resultcache"
	"cyclops/internal/sim"
)

// Stats is a snapshot of a Runner's activity.
type Stats struct {
	// Hits counts cache hits; Misses cache consultations that found
	// nothing (a Runner without a cache counts every run as a miss).
	Hits, Misses uint64
	// Coalesced counts submissions that joined an identical in-flight
	// execution instead of starting their own.
	Coalesced uint64
	// Executions counts actual simulator runs — the number the warm-cache
	// acceptance test pins at zero on a repeated sweep.
	Executions uint64
	// Errors counts executions that failed (failures are never cached).
	Errors uint64
}

// Runner executes canonical specs: cache first, then a coalesced
// execution — concurrent submissions of the same key share one run
// (singleflight) and each decode their own copy of its result. Safe for
// concurrent use; RunAll additionally fans specs across the process-wide
// harness/sweep worker pool.
type Runner struct {
	// Cache, when non-nil, fronts execution. Set it before the first Run;
	// results are stored under Spec.Key in the canonical Result encoding.
	Cache *resultcache.Cache

	mu       sync.Mutex
	inflight map[resultcache.Key]*call

	hits, misses, coalesced, executions, errors atomic.Uint64
}

// call is one in-flight execution; done closes once data/err are final.
type call struct {
	done chan struct{}
	data []byte
	err  error
}

// NewRunner returns a Runner with no cache attached.
func NewRunner() *Runner {
	return &Runner{inflight: make(map[resultcache.Key]*call)}
}

// Run executes one spec and returns its decoded result. Every return
// path decodes the canonical encoding — cache hit, coalesced join, or
// fresh execution — so equal specs yield byte-identical encoded results
// no matter which path served them.
//
// Run never calls into the sweep pool itself, so it is safe to call from
// inside a sweep.Map worker (the harness experiments do exactly that).
func (r *Runner) Run(spec *Spec) (*Result, error) {
	data, _, err := r.RunEncoded(spec)
	if err != nil {
		return nil, err
	}
	return DecodeResult(data)
}

// RunEncoded is Run without the final decode: it returns the canonical
// encoded result — the exact bytes the cache stores and the serve
// daemon ships — plus whether the cache served them. Callers must not
// mutate the returned slice.
func (r *Runner) RunEncoded(spec *Spec) (data []byte, cached bool, err error) {
	canon, err := spec.Canonicalize()
	if err != nil {
		return nil, false, err
	}
	key, err := canon.Key()
	if err != nil {
		return nil, false, err
	}
	if r.Cache != nil {
		if data, ok := r.Cache.Get(key); ok {
			if _, err := DecodeResult(data); err == nil {
				r.hits.Add(1)
				return data, true, nil
			}
			// Undecodable despite the cache's integrity check: the entry
			// predates a Result schema change that forgot a
			// SemanticsVersion bump. Fall through and re-run.
		}
	}
	r.misses.Add(1)

	r.mu.Lock()
	if c, ok := r.inflight[key]; ok {
		r.mu.Unlock()
		r.coalesced.Add(1)
		<-c.done
		return c.data, false, c.err
	}
	c := &call{done: make(chan struct{})}
	r.inflight[key] = c
	r.mu.Unlock()

	c.data, c.err = r.execute(canon)
	if c.err == nil && r.Cache != nil {
		// A failed store (full disk) must not fail the run; the result
		// is in hand and the next identical spec simply re-executes.
		_ = r.Cache.Put(key, c.data)
	}
	r.mu.Lock()
	delete(r.inflight, key)
	r.mu.Unlock()
	close(c.done)

	return c.data, false, c.err
}

// Cached returns the canonical encoded result when the cache already
// holds the spec, counting a hit. It never executes and never counts a
// miss (a subsequent RunEncoded does) — the serve daemon's
// answer-hits-without-queueing fast path.
func (r *Runner) Cached(spec *Spec) ([]byte, bool) {
	if r.Cache == nil {
		return nil, false
	}
	canon, err := spec.Canonicalize()
	if err != nil {
		return nil, false
	}
	key, err := canon.Key()
	if err != nil {
		return nil, false
	}
	data, ok := r.Cache.Get(key)
	if !ok {
		return nil, false
	}
	if _, err := DecodeResult(data); err != nil {
		return nil, false
	}
	r.hits.Add(1)
	return data, true
}

// execute performs one real run and returns the canonical encoding.
func (r *Runner) execute(canon *Spec) ([]byte, error) {
	r.executions.Add(1)
	w, ok := LookupWorkload(canon.Workload)
	if !ok {
		return nil, fmt.Errorf("job: unknown workload %q", canon.Workload)
	}
	engine := sim.DefaultEngine()
	if canon.Engine != "" {
		var err error
		if engine, err = canon.engine(); err != nil {
			return nil, err
		}
	}
	pol, err := canon.policy()
	if err != nil {
		return nil, err
	}
	res, err := w.Run(&RunContext{Spec: canon, Config: *canon.Config, Engine: engine, Policy: pol})
	if err != nil {
		r.errors.Add(1)
		return nil, fmt.Errorf("job: %s: %w", canon.Workload, err)
	}
	return EncodeResult(res)
}

// RunAll executes the specs across the process-wide sweep worker pool
// and returns their results in input order (the first in-order error
// aborts, exactly like sweep.Map). Identical specs in one batch coalesce
// to a single execution.
func (r *Runner) RunAll(specs []*Spec) ([]*Result, error) {
	return sweep.Map(specs, r.Run)
}

// Stats snapshots the counters.
func (r *Runner) Stats() Stats {
	return Stats{
		Hits:       r.hits.Load(),
		Misses:     r.misses.Load(),
		Coalesced:  r.coalesced.Load(),
		Executions: r.executions.Load(),
		Errors:     r.errors.Load(),
	}
}

// Inflight reports the number of executions currently running — the
// serve metrics' view of simulator occupancy.
func (r *Runner) Inflight() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.inflight)
}
