package job

import (
	"flag"
	"fmt"

	"cyclops/internal/arch"
	"cyclops/internal/sim"
	"cyclops/internal/timing"
)

// Flags is the one shared definition of the engine/policy/latency
// selection flags. cyclops-sim, cyclops-bench and cyclops-serve all
// register it, so the flag names, defaults, usage strings and error
// messages have a single source of truth.
type Flags struct {
	engine        *string
	policy        *string
	switchPenalty *uint64
	lat           *string
}

// AddFlags registers -engine, -policy, -switch-penalty and -lat on fs.
func AddFlags(fs *flag.FlagSet) *Flags {
	return &Flags{
		engine: fs.String("engine", sim.DefaultEngine().String(),
			"execution engine: block, decoded or legacy"),
		policy: fs.String("policy", "fine",
			"issue policy: fine, blocked or switchmiss"),
		switchPenalty: fs.Uint64("switch-penalty", timing.DefaultSwitchPenalty,
			"context-switch penalty in cycles (blocked/switchmiss policies)"),
		lat: fs.String("lat", "table2",
			"latency model: comma-separated key=value overrides on Table 2 (fpu,fma,load,miss,rhit,rmiss,burst,lag)"),
	}
}

// Engine resolves the -engine flag.
func (f *Flags) Engine() (sim.Engine, error) { return sim.ParseEngine(*f.engine) }

// Policy resolves the -policy/-switch-penalty pair.
func (f *Flags) Policy() (timing.Policy, error) {
	return timing.ParsePolicy(*f.policy, *f.switchPenalty)
}

// Latency resolves the -lat flag.
func (f *Flags) Latency() (timing.LatencyModel, error) {
	return timing.ParseLatencies(*f.lat)
}

// Resolve parses all three selections, returning the first error.
func (f *Flags) Resolve() (sim.Engine, timing.Policy, timing.LatencyModel, error) {
	eng, err := f.Engine()
	if err != nil {
		return eng, nil, timing.LatencyModel{}, err
	}
	pol, err := f.Policy()
	if err != nil {
		return eng, nil, timing.LatencyModel{}, err
	}
	lat, err := f.Latency()
	if err != nil {
		return eng, pol, lat, err
	}
	return eng, pol, lat, nil
}

// Usage is the shared usage fragment naming the selection flags, for the
// CLIs' usage lines.
const Usage = "[-engine E] [-policy P] [-switch-penalty N] [-lat SPEC]"

// InstallDefaults makes the resolved selections the process-wide
// defaults: the engine and policy for subsequently built machines, and —
// when the latency model differs from Table 2 — the architectural
// configuration returned by arch.Default. This is the cyclops-bench and
// cyclops-serve pattern: machines are built deep inside experiment
// points and request handlers, so CLI-wide selection installs defaults
// rather than threading parameters through every layer.
func (f *Flags) InstallDefaults() error {
	eng, pol, lat, err := f.Resolve()
	if err != nil {
		return err
	}
	return InstallDefaults(eng, pol, lat)
}

// InstallDefaults installs explicit selections process-wide (see
// Flags.InstallDefaults).
func InstallDefaults(eng sim.Engine, pol timing.Policy, lat timing.LatencyModel) error {
	sim.SetDefaultEngine(eng)
	timing.SetDefaultPolicy(pol)
	if lat != timing.DefaultLatencies() {
		cfg := lat.Apply(arch.Default())
		if _, err := arch.SetDefault(&cfg); err != nil {
			return fmt.Errorf("job: installing latency model: %w", err)
		}
	}
	return nil
}
