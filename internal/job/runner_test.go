package job_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"

	"cyclops/internal/job"
	"cyclops/internal/job/workloads"
	"cyclops/internal/kernel"
	"cyclops/internal/resultcache"
	"cyclops/internal/sim"
	"cyclops/internal/stream"
)

func smallStreamSpec(t *testing.T, engine string) *job.Spec {
	t.Helper()
	spec, err := workloads.StreamSpec(stream.Params{
		Kernel: stream.Copy, Threads: 2, N: 128, Local: true, Reps: 2,
	}, kernel.Sequential)
	if err != nil {
		t.Fatal(err)
	}
	spec.Engine = engine
	return spec
}

// The hit≡miss contract, per engine: the bytes a cold execution returns
// are the bytes the warm cache returns, and — the simulator's
// cross-engine contract — all three engines produce them identically.
func TestHitMissByteIdenticalAcrossEngines(t *testing.T) {
	var ref []byte
	for _, e := range sim.Engines() {
		t.Run(e.String(), func(t *testing.T) {
			r := job.NewRunner()
			r.Cache = resultcache.OpenMemory(0)
			spec := smallStreamSpec(t, e.String())

			cold, cached, err := r.RunEncoded(spec)
			if err != nil {
				t.Fatal(err)
			}
			if cached {
				t.Fatal("cold run reported cached")
			}
			warm, cached, err := r.RunEncoded(spec)
			if err != nil {
				t.Fatal(err)
			}
			if !cached {
				t.Fatal("warm run missed the cache")
			}
			if !bytes.Equal(cold, warm) {
				t.Fatalf("hit differs from miss:\ncold %s\nwarm %s", cold, warm)
			}
			st := r.Stats()
			if st.Executions != 1 || st.Hits != 1 || st.Misses != 1 {
				t.Fatalf("stats = %+v; want 1 execution, 1 hit, 1 miss", st)
			}
			if ref == nil {
				ref = cold
			} else if !bytes.Equal(ref, cold) {
				t.Fatalf("engine %s result bytes differ from the first engine's:\n%s\nvs\n%s", e, cold, ref)
			}
		})
	}
}

// A warm cache must answer a repeated sweep without a single simulator
// execution — the acceptance bar for the figure pipelines.
func TestWarmCacheZeroExecutions(t *testing.T) {
	r := job.NewRunner()
	r.Cache = resultcache.OpenMemory(0)
	var specs []*job.Spec
	for _, k := range []stream.Kernel{stream.Copy, stream.Scale} {
		for _, threads := range []int{1, 2} {
			spec, err := workloads.StreamSpec(stream.Params{
				Kernel: k, Threads: threads, N: 64 * threads, Reps: 2,
			}, kernel.Sequential)
			if err != nil {
				t.Fatal(err)
			}
			specs = append(specs, spec)
		}
	}
	cold, err := r.RunAll(specs)
	if err != nil {
		t.Fatal(err)
	}
	execs := r.Stats().Executions
	if execs != uint64(len(specs)) {
		t.Fatalf("cold sweep ran %d executions for %d specs", execs, len(specs))
	}
	warm, err := r.RunAll(specs)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Stats().Executions; got != execs {
		t.Fatalf("warm sweep executed the simulator %d times; want 0", got-execs)
	}
	for i := range specs {
		ce, err := job.EncodeResult(cold[i])
		if err != nil {
			t.Fatal(err)
		}
		we, err := job.EncodeResult(warm[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ce, we) {
			t.Fatalf("spec %d: warm result differs from cold:\n%s\nvs\n%s", i, we, ce)
		}
	}
}

// gate is a registerable workload whose single execution blocks until
// released, so a test can pile up concurrent duplicates behind it. The
// Run panics on re-entry: coalescing failures fail loudly.
type gate struct {
	started chan struct{}
	release chan struct{}
	runs    int
	mu      sync.Mutex
}

func registerGate(t *testing.T, name string) *gate {
	t.Helper()
	g := &gate{started: make(chan struct{}), release: make(chan struct{})}
	job.Register(job.Workload{
		Name: name,
		Canon: func(args json.RawMessage) (json.RawMessage, error) {
			return json.RawMessage(`{}`), nil
		},
		Run: func(ctx *job.RunContext) (*job.Result, error) {
			g.mu.Lock()
			g.runs++
			runs := g.runs
			g.mu.Unlock()
			if runs == 1 {
				close(g.started)
				<-g.release
			}
			return &job.Result{Cycles: 42}, nil
		},
		EngineNeutral: true,
	})
	return g
}

// Concurrent submissions of one spec must coalesce to one execution;
// run under -race this also exercises the singleflight paths for data
// races.
func TestConcurrentDuplicatesCoalesce(t *testing.T) {
	g := registerGate(t, "test-gate-coalesce")
	r := job.NewRunner()
	spec := &job.Spec{Workload: "test-gate-coalesce", Args: json.RawMessage(`{}`)}

	const waiters = 8
	results := make(chan *job.Result, waiters)
	errs := make(chan error, waiters)
	for i := 0; i < waiters; i++ {
		go func() {
			res, err := r.Run(spec)
			if err != nil {
				errs <- err
				return
			}
			results <- res
		}()
	}
	<-g.started
	// Wait until every other submission has joined the in-flight call,
	// then let the one execution finish.
	deadline := time.Now().Add(10 * time.Second)
	for r.Stats().Coalesced < waiters-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d duplicates coalesced", r.Stats().Coalesced, waiters-1)
		}
		time.Sleep(time.Millisecond)
	}
	close(g.release)
	for i := 0; i < waiters; i++ {
		select {
		case err := <-errs:
			t.Fatal(err)
		case res := <-results:
			if res.Cycles != 42 {
				t.Fatalf("result cycles = %d; want 42", res.Cycles)
			}
		}
	}
	st := r.Stats()
	if st.Executions != 1 {
		t.Fatalf("%d executions for %d concurrent duplicates; want 1", st.Executions, waiters)
	}
	if st.Coalesced != waiters-1 {
		t.Fatalf("coalesced = %d; want %d", st.Coalesced, waiters-1)
	}
}

// An execution error must propagate to every coalesced waiter and must
// not be cached.
func TestErrorsPropagateAndAreNotCached(t *testing.T) {
	fail := true
	job.Register(job.Workload{
		Name: "test-gate-error",
		Canon: func(args json.RawMessage) (json.RawMessage, error) {
			return json.RawMessage(`{}`), nil
		},
		Run: func(ctx *job.RunContext) (*job.Result, error) {
			if fail {
				return nil, fmt.Errorf("deterministic guest trap")
			}
			return &job.Result{Cycles: 7}, nil
		},
		EngineNeutral: true,
	})
	r := job.NewRunner()
	r.Cache = resultcache.OpenMemory(0)
	spec := &job.Spec{Workload: "test-gate-error", Args: json.RawMessage(`{}`)}
	if _, err := r.Run(spec); err == nil {
		t.Fatal("failing workload returned no error")
	}
	if st := r.Stats(); st.Errors != 1 {
		t.Fatalf("errors = %d; want 1", st.Errors)
	}
	// The failure was not cached: flipping the workload healthy, the
	// same spec re-executes and succeeds.
	fail = false
	res, err := r.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != 7 {
		t.Fatalf("cycles = %d; want 7", res.Cycles)
	}
	if st := r.Stats(); st.Executions != 2 {
		t.Fatalf("executions = %d; want 2 (the failure must not be served from cache)", st.Executions)
	}
}
