// Package workloads registers the named simulation workloads with the
// job layer: the STREAM generator ("stream"), the SPLASH-2 kernels
// ("splash"), the Section 5 applications ("md", "ray") and the barrier
// microbenchmark ("microbarrier"). Each registration supplies a strict
// argument schema — unknown fields are rejected, defaultable fields are
// made explicit — so equivalent argument spellings canonicalize to one
// encoding and therefore one cache key.
//
// The package also exports the spec builders and result decoders the
// harness figure sweeps and the CI lanes use to go through
// job.Runner instead of calling the workload packages directly.
package workloads

import (
	"bytes"
	"encoding/json"
	"fmt"

	"cyclops/internal/core"
	"cyclops/internal/job"
	"cyclops/internal/splash"
)

// strict decodes args through v's schema, rejecting unknown fields and
// trailing data — the canonical-spelling guarantee starts here.
func strict(args json.RawMessage, v any) error {
	if len(args) == 0 {
		return fmt.Errorf("missing args")
	}
	dec := json.NewDecoder(bytes.NewReader(args))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data after args")
	}
	return nil
}

// chipFor builds the run's chip from the canonical configuration.
func chipFor(ctx *job.RunContext) (*core.Chip, error) {
	return core.NewChip(ctx.Config)
}

// parseBarrier maps the canonical barrier spelling.
func parseBarrier(s string) (splash.BarrierKind, error) {
	switch s {
	case "", "hw":
		return splash.HW, nil
	case "sw":
		return splash.SW, nil
	}
	return splash.HW, fmt.Errorf("barrier %q (want hw or sw)", s)
}

// splashResult maps the common direct-execution accounting into the
// generic result form.
func splashResult(r *splash.Result) *job.Result {
	return &job.Result{
		Cycles:   r.Cycles,
		Run:      r.Run,
		Stall:    r.Stall,
		Stalls:   r.Stalls,
		MemWaits: r.MemWaits,
	}
}

// SplashResult rebuilds the direct-execution result view from a generic
// job result — the inverse of the mapping the workloads apply, for
// harness code that renders splash.Result fields (Speedup and the
// run/stall breakdowns).
func SplashResult(r *job.Result) *splash.Result {
	return &splash.Result{
		Cycles:   r.Cycles,
		Run:      r.Run,
		Stall:    r.Stall,
		Stalls:   r.Stalls,
		MemWaits: r.MemWaits,
	}
}
