package workloads

import (
	"encoding/json"
	"fmt"
	"strings"

	"cyclops/internal/job"
	"cyclops/internal/kernel"
	"cyclops/internal/stream"
)

// StreamName is the STREAM workload's spec spelling.
const StreamName = "stream"

// StreamArgs is the canonical argument schema of the "stream" workload.
// Defaultable fields are explicit in the canonical form (partition,
// unroll, reps, placement), so a spec that spells a default and one that
// omits it key identically.
type StreamArgs struct {
	// Kernel is copy, scale, add or triad.
	Kernel string `json:"kernel"`
	// Threads and N mirror stream.Params.
	Threads int `json:"threads"`
	N       int `json:"n"`
	// Partition is blocked or cyclic.
	Partition string `json:"partition"`
	Local     bool   `json:"local,omitempty"`
	// Unroll is the hand-unrolling depth (1 or 4).
	Unroll      int  `json:"unroll"`
	Independent bool `json:"independent,omitempty"`
	// Reps is the best-of-N repetition count.
	Reps int `json:"reps"`
	// Placement is the kernel thread-placement policy: sequential or
	// balanced.
	Placement string `json:"placement"`
}

// StreamExtra is the STREAM-specific payload carried in Result.Extra.
type StreamExtra struct {
	BestCycles uint64   `json:"best_cycles"`
	RepCycles  []uint64 `json:"rep_cycles"`
	TotalBytes int      `json:"total_bytes"`
}

func init() {
	job.Register(job.Workload{
		Name:  StreamName,
		Canon: canonStream,
		Run:   runStream,
	})
}

func parseStreamKernel(s string) (stream.Kernel, error) {
	switch strings.ToLower(s) {
	case "copy":
		return stream.Copy, nil
	case "scale":
		return stream.Scale, nil
	case "add":
		return stream.Add, nil
	case "triad":
		return stream.Triad, nil
	}
	return stream.Copy, fmt.Errorf("kernel %q (want copy, scale, add or triad)", s)
}

func parsePlacement(s string) (kernel.Policy, error) {
	switch s {
	case "", "sequential":
		return kernel.Sequential, nil
	case "balanced":
		return kernel.Balanced, nil
	}
	return kernel.Sequential, fmt.Errorf("placement %q (want sequential or balanced)", s)
}

// streamParams converts canonical args back to run parameters.
func (a StreamArgs) streamParams() (stream.Params, kernel.Policy, error) {
	k, err := parseStreamKernel(a.Kernel)
	if err != nil {
		return stream.Params{}, 0, err
	}
	place, err := parsePlacement(a.Placement)
	if err != nil {
		return stream.Params{}, 0, err
	}
	part := stream.Blocked
	switch a.Partition {
	case "", "blocked":
	case "cyclic":
		part = stream.Cyclic
	default:
		return stream.Params{}, 0, fmt.Errorf("partition %q (want blocked or cyclic)", a.Partition)
	}
	p := stream.Params{
		Kernel:      k,
		Threads:     a.Threads,
		N:           a.N,
		Partition:   part,
		Local:       a.Local,
		Unroll:      a.Unroll,
		Independent: a.Independent,
		Reps:        a.Reps,
	}
	return p, place, nil
}

func canonStream(args json.RawMessage) (json.RawMessage, error) {
	var a StreamArgs
	if err := strict(args, &a); err != nil {
		return nil, err
	}
	p, _, err := a.streamParams()
	if err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	// Make the defaults explicit.
	a.Kernel = strings.ToLower(p.Kernel.String())
	if a.Partition == "" {
		a.Partition = "blocked"
	}
	if a.Unroll == 0 {
		a.Unroll = 1
	}
	if a.Reps == 0 {
		a.Reps = stream.DefaultReps
	}
	if a.Placement == "" {
		a.Placement = "sequential"
	}
	return json.Marshal(a)
}

func runStream(ctx *job.RunContext) (*job.Result, error) {
	var a StreamArgs
	if err := strict(ctx.Spec.Args, &a); err != nil {
		return nil, err
	}
	p, place, err := a.streamParams()
	if err != nil {
		return nil, err
	}
	chip, err := chipFor(ctx)
	if err != nil {
		return nil, err
	}
	eng := ctx.Engine
	p.Engine = &eng
	p.Issue = ctx.Policy
	r, err := stream.RunOn(chip, p, place)
	if err != nil {
		return nil, err
	}
	extra, err := json.Marshal(StreamExtra{
		BestCycles: r.BestCycles,
		RepCycles:  r.RepCycles,
		TotalBytes: r.TotalBytes,
	})
	if err != nil {
		return nil, err
	}
	return &job.Result{
		Cycles:   r.BestCycles,
		Insts:    r.Insts,
		Run:      r.Run,
		Stall:    r.Stall,
		Stalls:   r.Stalls,
		MemWaits: r.MemWaits,
		Extra:    extra,
	}, nil
}

// StreamSpec builds the job spec for one STREAM measurement. The
// parameters' per-run Issue and Engine overrides fold into the spec's
// canonical policy/engine fields; profiled runs are not cacheable and
// must keep calling stream.Run directly.
func StreamSpec(p stream.Params, place kernel.Policy) (*job.Spec, error) {
	if p.ProfileEvery != 0 || p.TimelineEvery != 0 {
		return nil, fmt.Errorf("workloads: profiled STREAM runs are not cacheable; call stream.Run directly")
	}
	placement := "sequential"
	if place == kernel.Balanced {
		placement = "balanced"
	}
	partition := "blocked"
	if p.Partition == stream.Cyclic {
		partition = "cyclic"
	}
	args, err := json.Marshal(StreamArgs{
		Kernel:      strings.ToLower(p.Kernel.String()),
		Threads:     p.Threads,
		N:           p.N,
		Partition:   partition,
		Local:       p.Local,
		Unroll:      p.Unroll,
		Independent: p.Independent,
		Reps:        p.Reps,
		Placement:   placement,
	})
	if err != nil {
		return nil, err
	}
	spec := &job.Spec{Workload: StreamName, Args: args}
	if p.Issue != nil {
		spec.Policy = p.Issue.String()
	}
	if p.Engine != nil {
		spec.Engine = p.Engine.String()
	}
	return spec, nil
}

// StreamResult rebuilds the STREAM result view — including the
// bandwidth methods, which need the run parameters — from a generic job
// result produced by the "stream" workload.
func StreamResult(p stream.Params, r *job.Result) (*stream.Result, error) {
	var extra StreamExtra
	if len(r.Extra) == 0 {
		return nil, fmt.Errorf("workloads: result has no STREAM payload")
	}
	if err := json.Unmarshal(r.Extra, &extra); err != nil {
		return nil, err
	}
	return &stream.Result{
		Params:     p,
		BestCycles: extra.BestCycles,
		RepCycles:  extra.RepCycles,
		TotalBytes: extra.TotalBytes,
		Insts:      r.Insts,
		Run:        r.Run,
		Stall:      r.Stall,
		Stalls:     r.Stalls,
		MemWaits:   r.MemWaits,
	}, nil
}
