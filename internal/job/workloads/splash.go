package workloads

import (
	"encoding/json"
	"fmt"

	"cyclops/internal/job"
	"cyclops/internal/splash"
)

// SplashName is the SPLASH-2 workload's spec spelling.
const SplashName = "splash"

// SplashArgs is the canonical argument schema of the "splash" workload.
// Problem sizes use the field matching the kernel: N for fft/lu/ocean/
// radix, Bodies (plus Steps) for barnes, Bodies for fmm. Zero sub-option
// fields (Steps for barnes) take the kernel's own default.
type SplashArgs struct {
	// Kernel is barnes, fft, fmm, lu, ocean or radix.
	Kernel  string `json:"kernel"`
	Threads int    `json:"threads"`
	// Barrier is hw or sw.
	Barrier  string `json:"barrier"`
	Balanced bool   `json:"balanced,omitempty"`
	// N is the problem size of the grid/array kernels.
	N int `json:"n,omitempty"`
	// Bodies is the particle count of the n-body kernels.
	Bodies int `json:"bodies,omitempty"`
	// Steps is the barnes time-step count (0 = kernel default).
	Steps int `json:"steps,omitempty"`
	// Levels is the fmm quadtree depth (0 = kernel default).
	Levels int `json:"levels,omitempty"`
}

func init() {
	job.Register(job.Workload{
		Name:          SplashName,
		Canon:         canonSplash,
		Run:           runSplash,
		EngineNeutral: true, // direct execution: no instruction engine
	})
}

// splashNBody reports whether the kernel sizes itself with Bodies.
func splashNBody(kernel string) (nbody, ok bool) {
	switch kernel {
	case "barnes", "fmm":
		return true, true
	case "fft", "lu", "ocean", "radix":
		return false, true
	}
	return false, false
}

func canonSplash(args json.RawMessage) (json.RawMessage, error) {
	var a SplashArgs
	if err := strict(args, &a); err != nil {
		return nil, err
	}
	nbody, ok := splashNBody(a.Kernel)
	if !ok {
		return nil, fmt.Errorf("kernel %q (want barnes, fft, fmm, lu, ocean or radix)", a.Kernel)
	}
	if a.Threads < 1 {
		return nil, fmt.Errorf("threads = %d", a.Threads)
	}
	if _, err := parseBarrier(a.Barrier); err != nil {
		return nil, err
	}
	if a.Barrier == "" {
		a.Barrier = "hw"
	}
	if nbody && (a.Bodies < 1 || a.N != 0) {
		return nil, fmt.Errorf("%s takes bodies, not n", a.Kernel)
	}
	if !nbody && (a.N < 1 || a.Bodies != 0) {
		return nil, fmt.Errorf("%s takes n, not bodies", a.Kernel)
	}
	if a.Kernel != "barnes" && a.Steps != 0 {
		return nil, fmt.Errorf("steps applies to barnes only")
	}
	if a.Kernel != "fmm" && a.Levels != 0 {
		return nil, fmt.Errorf("levels applies to fmm only")
	}
	return json.Marshal(a)
}

func runSplash(ctx *job.RunContext) (*job.Result, error) {
	var a SplashArgs
	if err := strict(ctx.Spec.Args, &a); err != nil {
		return nil, err
	}
	barrier, err := parseBarrier(a.Barrier)
	if err != nil {
		return nil, err
	}
	chip, err := chipFor(ctx)
	if err != nil {
		return nil, err
	}
	cfg := splash.Config{
		Threads:  a.Threads,
		Barrier:  barrier,
		Balanced: a.Balanced,
		Chip:     chip,
		Issue:    ctx.Policy,
	}
	var r *splash.Result
	switch a.Kernel {
	case "barnes":
		r, err = splash.RunBarnes(splash.BarnesOpts{Config: cfg, NBodies: a.Bodies, Steps: a.Steps})
	case "fft":
		r, err = splash.RunFFT(splash.FFTOpts{Config: cfg, N: a.N})
	case "fmm":
		r, err = splash.RunFMM(splash.FMMOpts{Config: cfg, NBodies: a.Bodies, Levels: a.Levels})
	case "lu":
		r, err = splash.RunLU(splash.LUOpts{Config: cfg, N: a.N})
	case "ocean":
		r, err = splash.RunOcean(splash.OceanOpts{Config: cfg, N: a.N})
	case "radix":
		r, err = splash.RunRadix(splash.RadixOpts{Config: cfg, N: a.N})
	default:
		return nil, fmt.Errorf("kernel %q", a.Kernel)
	}
	if err != nil {
		return nil, err
	}
	return splashResult(r), nil
}

// SplashSpec builds the job spec for one SPLASH-2 kernel run.
func SplashSpec(a SplashArgs) (*job.Spec, error) {
	args, err := json.Marshal(a)
	if err != nil {
		return nil, err
	}
	return &job.Spec{Workload: SplashName, Args: args}, nil
}
