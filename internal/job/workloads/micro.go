package workloads

import (
	"encoding/json"
	"fmt"

	"cyclops/internal/job"
	"cyclops/internal/perf"
	"cyclops/internal/splash"
)

// MicroBarrierName is the barrier microbenchmark's spec spelling.
const MicroBarrierName = "microbarrier"

// swBarrierArity is the software tree fan-in the microbenchmark uses,
// matching the harness table it feeds.
const swBarrierArity = 4

// MicroBarrierArgs is the canonical argument schema of the
// "microbarrier" workload: threads doing nothing but synchronising for
// Phases barriers. The result's Cycles is the total elapsed time;
// divide by Phases for the per-barrier latency.
type MicroBarrierArgs struct {
	Threads int `json:"threads"`
	// Barrier is hw or sw.
	Barrier string `json:"barrier"`
	Phases  int    `json:"phases"`
}

func init() {
	job.Register(job.Workload{
		Name:          MicroBarrierName,
		Canon:         canonMicroBarrier,
		Run:           runMicroBarrier,
		EngineNeutral: true,
	})
}

func canonMicroBarrier(args json.RawMessage) (json.RawMessage, error) {
	var a MicroBarrierArgs
	if err := strict(args, &a); err != nil {
		return nil, err
	}
	if a.Threads < 1 {
		return nil, fmt.Errorf("threads = %d", a.Threads)
	}
	if a.Phases < 1 {
		return nil, fmt.Errorf("phases = %d", a.Phases)
	}
	if _, err := parseBarrier(a.Barrier); err != nil {
		return nil, err
	}
	if a.Barrier == "" {
		a.Barrier = "hw"
	}
	return json.Marshal(a)
}

func runMicroBarrier(ctx *job.RunContext) (*job.Result, error) {
	var a MicroBarrierArgs
	if err := strict(ctx.Spec.Args, &a); err != nil {
		return nil, err
	}
	kind, err := parseBarrier(a.Barrier)
	if err != nil {
		return nil, err
	}
	chip, err := chipFor(ctx)
	if err != nil {
		return nil, err
	}
	m := perf.New(chip)
	m.SetPolicy(ctx.Policy)
	var bhw *perf.HWBarrier
	var bsw *perf.SWBarrier
	if kind == splash.HW {
		bhw = perf.NewHWBarrier(a.Threads)
	} else {
		bsw = perf.NewSWBarrier(m, a.Threads, swBarrierArity)
	}
	err = m.SpawnN(a.Threads, func(th *perf.T, i int) {
		for p := 0; p < a.Phases; p++ {
			if bhw != nil {
				th.HWBarrier(bhw)
			} else {
				th.SWBarrier(bsw, i)
			}
		}
	})
	if err != nil {
		return nil, err
	}
	if err := m.Run(); err != nil {
		return nil, err
	}
	return &job.Result{Cycles: m.Elapsed()}, nil
}

// MicroBarrierSpec builds the job spec for one barrier measurement.
func MicroBarrierSpec(a MicroBarrierArgs) (*job.Spec, error) {
	args, err := json.Marshal(a)
	if err != nil {
		return nil, err
	}
	return &job.Spec{Workload: MicroBarrierName, Args: args}, nil
}
