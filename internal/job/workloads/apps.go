package workloads

import (
	"encoding/json"
	"fmt"

	"cyclops/internal/job"
	"cyclops/internal/md"
	"cyclops/internal/ray"
	"cyclops/internal/splash"
)

// MDName and RayName are the Section 5 application workloads' spec
// spellings.
const (
	MDName  = "md"
	RayName = "ray"
)

// MDArgs is the canonical argument schema of the "md" workload.
type MDArgs struct {
	Threads  int  `json:"threads"`
	Balanced bool `json:"balanced,omitempty"`
	// Particles is the particle count; Steps the time steps (0 = the
	// kernel default).
	Particles int `json:"particles"`
	Steps     int `json:"steps,omitempty"`
}

// RayArgs is the canonical argument schema of the "ray" workload.
type RayArgs struct {
	Threads  int  `json:"threads"`
	Balanced bool `json:"balanced,omitempty"`
	Width    int  `json:"width"`
	Height   int  `json:"height"`
}

func init() {
	job.Register(job.Workload{
		Name:          MDName,
		Canon:         canonMD,
		Run:           runMD,
		EngineNeutral: true,
	})
	job.Register(job.Workload{
		Name:          RayName,
		Canon:         canonRay,
		Run:           runRay,
		EngineNeutral: true,
	})
}

func canonMD(args json.RawMessage) (json.RawMessage, error) {
	var a MDArgs
	if err := strict(args, &a); err != nil {
		return nil, err
	}
	if a.Threads < 1 {
		return nil, fmt.Errorf("threads = %d", a.Threads)
	}
	if a.Particles < 1 {
		return nil, fmt.Errorf("particles = %d", a.Particles)
	}
	return json.Marshal(a)
}

func runMD(ctx *job.RunContext) (*job.Result, error) {
	var a MDArgs
	if err := strict(ctx.Spec.Args, &a); err != nil {
		return nil, err
	}
	chip, err := chipFor(ctx)
	if err != nil {
		return nil, err
	}
	r, _, err := md.Run(md.Opts{
		Config:     splash.Config{Threads: a.Threads, Balanced: a.Balanced, Chip: chip, Issue: ctx.Policy},
		NParticles: a.Particles,
		Steps:      a.Steps,
	})
	if err != nil {
		return nil, err
	}
	return splashResult(r), nil
}

func canonRay(args json.RawMessage) (json.RawMessage, error) {
	var a RayArgs
	if err := strict(args, &a); err != nil {
		return nil, err
	}
	if a.Threads < 1 {
		return nil, fmt.Errorf("threads = %d", a.Threads)
	}
	if a.Width < 1 || a.Height < 1 {
		return nil, fmt.Errorf("image %dx%d", a.Width, a.Height)
	}
	return json.Marshal(a)
}

func runRay(ctx *job.RunContext) (*job.Result, error) {
	var a RayArgs
	if err := strict(ctx.Spec.Args, &a); err != nil {
		return nil, err
	}
	chip, err := chipFor(ctx)
	if err != nil {
		return nil, err
	}
	r, _, err := ray.Render(ray.Opts{
		Config: splash.Config{Threads: a.Threads, Balanced: a.Balanced, Chip: chip, Issue: ctx.Policy},
		Width:  a.Width,
		Height: a.Height,
	})
	if err != nil {
		return nil, err
	}
	return splashResult(r), nil
}

// MDSpec builds the job spec for one molecular-dynamics run.
func MDSpec(a MDArgs) (*job.Spec, error) {
	args, err := json.Marshal(a)
	if err != nil {
		return nil, err
	}
	return &job.Spec{Workload: MDName, Args: args}, nil
}

// RaySpec builds the job spec for one raytrace run.
func RaySpec(a RayArgs) (*job.Spec, error) {
	args, err := json.Marshal(a)
	if err != nil {
		return nil, err
	}
	return &job.Spec{Workload: RayName, Args: args}, nil
}
