package job

import (
	"bytes"
	"encoding/json"
	"fmt"

	"cyclops/internal/core"
	"cyclops/internal/image"
	"cyclops/internal/kernel"
	"cyclops/internal/vet"
)

func init() {
	Register(Workload{
		Name:  ProgramWorkload,
		Canon: func(args json.RawMessage) (json.RawMessage, error) { return nil, nil }, // program specs carry no args
		Run:   runProgram,
	})
}

// runProgram boots a CYC1 image under the resident kernel — the
// cyclops-sim execution path without the interactive outputs — and
// collects the console output, the cycle accounting, and the stats
// snapshot when requested.
func runProgram(ctx *RunContext) (*Result, error) {
	prog, err := image.Decode(ctx.Spec.Program)
	if err != nil {
		return nil, err
	}
	chip, err := core.NewChip(ctx.Config)
	if err != nil {
		return nil, err
	}
	k := kernel.New(chip)
	if ctx.Spec.Balanced {
		k.Policy = kernel.Balanced
	}
	k.Machine().SetEngine(ctx.Engine)
	k.Machine().SetPolicy(ctx.Policy)
	k.Machine().MaxCycles = ctx.Spec.MaxCycles
	if err := k.Boot(prog); err != nil {
		return nil, err
	}
	// Warm the block engine's code cache from the static CFG (the other
	// engines ignore this); purely host-side.
	k.Machine().Precompile(vet.Leaders(prog))
	if err := k.Run(); err != nil {
		// A guest trap is deterministic too, but a failed run has no
		// stats contract; report it as an error and cache nothing.
		return nil, fmt.Errorf("job: program run: %w", err)
	}
	res := &Result{
		Cycles: k.Machine().Cycle(),
		Insts:  k.Machine().TotalInsts(),
		Output: k.Output,
	}
	for _, tu := range k.Machine().TUs {
		res.Run += tu.Run
		res.Stall += tu.Stall
		res.Stalls.AddAll(tu.Stalls)
		res.MemWaits.AddAll(tu.MemWaits)
	}
	if ctx.Spec.wantOutput(SnapshotOutput) {
		var buf bytes.Buffer
		if err := k.Machine().Snapshot().WriteJSON(&buf); err != nil {
			return nil, err
		}
		res.Snapshot = buf.Bytes()
	}
	return res, nil
}
