package job

import (
	"encoding/json"
	"sort"
	"sync"

	"cyclops/internal/arch"
	"cyclops/internal/obs"
	"cyclops/internal/sim"
	"cyclops/internal/timing"
)

// Result is the serializable outcome of one run. Hit and miss must be
// byte-identical: the Runner always returns a Result decoded from its
// canonical encoding, whether that encoding came from the cache or from
// an execution a moment earlier, so a warm sweep renders the same bytes
// as a cold one by construction.
type Result struct {
	// Cycles is the run's elapsed simulated time; Insts the instructions
	// issued (0 for direct-execution workloads, which have no guest
	// instruction stream).
	Cycles uint64 `json:"cycles"`
	Insts  uint64 `json:"insts,omitempty"`
	// Run and Stall are the cycle-accounting totals summed over thread
	// units; Stalls splits Stall by reason and MemWaits sub-attributes
	// memory waits by location.
	Run      uint64        `json:"run,omitempty"`
	Stall    uint64        `json:"stall,omitempty"`
	Stalls   obs.Breakdown `json:"stalls"`
	MemWaits obs.MemWaits  `json:"mem_waits"`
	// Output is the console output (program workload).
	Output []byte `json:"output,omitempty"`
	// Snapshot is the deterministic stats snapshot JSON, when requested.
	Snapshot json.RawMessage `json:"snapshot,omitempty"`
	// Extra carries the workload-specific payload (e.g. STREAM's
	// per-repetition timings), encoded by the workload that produced it.
	Extra json.RawMessage `json:"extra,omitempty"`
}

// EncodeResult renders the canonical byte form stored in the cache.
func EncodeResult(r *Result) ([]byte, error) { return json.Marshal(r) }

// DecodeResult reads the canonical byte form back. Every caller gets its
// own decoded copy, so results can be consumed without aliasing worries.
func DecodeResult(data []byte) (*Result, error) {
	var r Result
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, err
	}
	return &r, nil
}

// RunContext hands a workload its resolved execution parameters: the
// canonical spec plus the parsed configuration, engine and policy, so
// workloads never consult process defaults (sweep workers and serve
// handlers run different points concurrently).
type RunContext struct {
	Spec   *Spec
	Config arch.Config
	Engine sim.Engine
	Policy timing.Policy
}

// Workload is one registered run kind.
type Workload struct {
	// Name is the spec spelling.
	Name string
	// Canon re-encodes args through the workload's argument schema,
	// validating them; equivalent spellings must encode identically.
	Canon func(args json.RawMessage) (json.RawMessage, error)
	// Run executes one canonicalized point.
	Run func(ctx *RunContext) (*Result, error)
	// EngineNeutral marks workloads that never touch the
	// instruction-level execution engine (the direct-execution runtime).
	// Canonicalize clears Engine on their specs, so the same run keys —
	// and caches — identically under every -engine selection.
	EngineNeutral bool
}

var (
	workloadMu  sync.RWMutex
	workloads   = map[string]Workload{}
	workloadIDs []string
)

// Register adds a workload. Duplicate names panic: registration happens
// in package init, where a collision is a programming error.
func Register(w Workload) {
	workloadMu.Lock()
	defer workloadMu.Unlock()
	if _, dup := workloads[w.Name]; dup {
		panic("job: duplicate workload " + w.Name)
	}
	workloads[w.Name] = w
	workloadIDs = append(workloadIDs, w.Name)
	sort.Strings(workloadIDs)
}

// LookupWorkload finds a registered workload.
func LookupWorkload(name string) (Workload, bool) {
	workloadMu.RLock()
	defer workloadMu.RUnlock()
	w, ok := workloads[name]
	return w, ok
}

// WorkloadNames lists the registered workloads, sorted.
func WorkloadNames() []string {
	workloadMu.RLock()
	defer workloadMu.RUnlock()
	return append([]string(nil), workloadIDs...)
}
