package job_test

import (
	"encoding/json"
	"testing"

	"cyclops/internal/arch"
	"cyclops/internal/job"
	"cyclops/internal/job/workloads"
	"cyclops/internal/kernel"
	"cyclops/internal/sim"
	"cyclops/internal/stream"
)

// Key-stability goldens: the content address of a fixed spec must never
// drift silently — a changed key orphans every existing cache entry. An
// intentional change to the key schema or the canonical encoding must
// come with a SemanticsVersion bump, and then with new goldens here.
func TestKeyStability(t *testing.T) {
	streamSpec, err := workloads.StreamSpec(stream.Params{
		Kernel: stream.Triad, Threads: 2, N: 320, Local: true, Reps: 2,
	}, kernel.Sequential)
	if err != nil {
		t.Fatal(err)
	}
	splashSpec, err := workloads.SplashSpec(workloads.SplashArgs{
		Kernel: "fft", Threads: 4, N: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	golden := []struct {
		name string
		spec *job.Spec
		want string
	}{
		{"stream-triad", streamSpec, "1cd7a69e00429f118b5e1a8602921c83d3aa2c9dc7b13db9dac718341da57152"},
		{"splash-fft", splashSpec, "cdfdac722ee7eea773bd34c25aac20ab81e39cd92099af5b56a72936210f1dfd"},
	}
	for _, g := range golden {
		t.Run(g.name, func(t *testing.T) {
			key, err := g.spec.Key()
			if err != nil {
				t.Fatal(err)
			}
			if key.String() != g.want {
				t.Errorf("key drifted:\n got %s\nwant %s\n(an intentional key-schema change needs a SemanticsVersion bump and new goldens)",
					key, g.want)
			}
		})
	}
}

// Two spellings of the same run must canonicalize to the same key: the
// cache is only shared across tools if a defaulted field and its
// explicit default hash identically.
func TestEquivalentSpellingsKeyIdentically(t *testing.T) {
	terse := &job.Spec{
		Workload: "stream",
		Args:     json.RawMessage(`{"kernel":"triad","threads":2,"n":320,"local":true,"reps":2}`),
	}
	cfg := arch.Default()
	verbose := &job.Spec{
		Workload: "stream",
		Args: json.RawMessage(`{
			"n": 320, "kernel": "triad", "local": true,
			"partition": "blocked", "unroll": 1, "reps": 2,
			"placement": "sequential", "threads": 2
		}`),
		Engine: sim.DefaultEngine().String(),
		Policy: "fine",
		Config: &cfg,
	}
	tk, err := terse.Key()
	if err != nil {
		t.Fatal(err)
	}
	vk, err := verbose.Key()
	if err != nil {
		t.Fatal(err)
	}
	if tk != vk {
		t.Fatalf("equivalent spellings keyed differently:\n terse   %s\n verbose %s", tk, vk)
	}
}

// Engine-neutral (direct-execution) workloads never consult the engine,
// so every -engine selection must share one cache slot; engine-sensitive
// workloads must not.
func TestEngineNeutralityInKeys(t *testing.T) {
	splashKey := func(engine string) string {
		spec, err := workloads.SplashSpec(workloads.SplashArgs{Kernel: "lu", Threads: 4, N: 64})
		if err != nil {
			t.Fatal(err)
		}
		spec.Engine = engine
		k, err := spec.Key()
		if err != nil {
			t.Fatal(err)
		}
		return k.String()
	}
	base := splashKey("")
	for _, e := range sim.Engines() {
		if got := splashKey(e.String()); got != base {
			t.Errorf("splash keys differ across engines: %q gave %s, default gave %s", e, got, base)
		}
	}

	streamKey := func(engine string) string {
		spec, err := workloads.StreamSpec(stream.Params{
			Kernel: stream.Copy, Threads: 2, N: 128, Reps: 2,
		}, kernel.Sequential)
		if err != nil {
			t.Fatal(err)
		}
		spec.Engine = engine
		k, err := spec.Key()
		if err != nil {
			t.Fatal(err)
		}
		return k.String()
	}
	seen := map[string]string{}
	for _, e := range sim.Engines() {
		k := streamKey(e.String())
		if prev, dup := seen[k]; dup {
			t.Errorf("stream keys collide across engines %s and %s", prev, e)
		}
		seen[k] = e.String()
	}
}

func TestCanonicalizeIsIdempotent(t *testing.T) {
	spec, err := workloads.StreamSpec(stream.Params{
		Kernel: stream.Scale, Threads: 2, N: 128, Reps: 2,
	}, kernel.Sequential)
	if err != nil {
		t.Fatal(err)
	}
	c1, err := spec.Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	c2, err := c1.Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Fatal("canonicalizing a canonical spec did not pass it through")
	}
	e1, err := json.Marshal(c1)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := json.Marshal(c2)
	if err != nil {
		t.Fatal(err)
	}
	if string(e1) != string(e2) {
		t.Fatalf("canonical encodings differ:\n%s\n%s", e1, e2)
	}
}

// The latency convenience folds into the configuration: a spec with
// -lat-style input keys identically to one carrying the applied config.
func TestLatencyFoldsIntoConfig(t *testing.T) {
	base := func() *job.Spec {
		spec, err := workloads.StreamSpec(stream.Params{
			Kernel: stream.Add, Threads: 2, N: 128, Reps: 2,
		}, kernel.Sequential)
		if err != nil {
			t.Fatal(err)
		}
		return spec
	}
	viaLat := base()
	viaLat.Latency = "miss=48,rmiss=72"
	lk, err := viaLat.Key()
	if err != nil {
		t.Fatal(err)
	}

	cfg := arch.Default()
	cfg.Latencies.LocalMissLatency = 48
	cfg.Latencies.RemoteMissLatency = 72
	viaCfg := base()
	viaCfg.Config = &cfg
	ck, err := viaCfg.Key()
	if err != nil {
		t.Fatal(err)
	}
	if lk != ck {
		t.Fatalf("latency spec and pre-applied config keyed differently:\n lat %s\n cfg %s", lk, ck)
	}
	canon, err := viaLat.Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	if canon.Latency != "" {
		t.Fatalf("canonical spec still carries Latency %q", canon.Latency)
	}

	dk, err := base().Key()
	if err != nil {
		t.Fatal(err)
	}
	if dk == lk {
		t.Fatal("slow-miss latencies keyed the same as Table 2 defaults")
	}
}

func TestCanonicalizeRejections(t *testing.T) {
	bad := []struct {
		name string
		spec job.Spec
	}{
		{"unknown workload", job.Spec{Workload: "nonesuch"}},
		{"unknown engine", job.Spec{Workload: "stream", Engine: "warp",
			Args: json.RawMessage(`{"kernel":"copy","threads":2,"n":128}`)}},
		{"unknown policy", job.Spec{Workload: "stream", Policy: "eager",
			Args: json.RawMessage(`{"kernel":"copy","threads":2,"n":128}`)}},
		{"unknown args field", job.Spec{Workload: "stream",
			Args: json.RawMessage(`{"kernel":"copy","threads":2,"n":128,"warp":9}`)}},
		{"program image on named workload", job.Spec{Workload: "stream", Program: []byte("CYC1"),
			Args: json.RawMessage(`{"kernel":"copy","threads":2,"n":128}`)}},
		{"balanced on named workload", job.Spec{Workload: "stream", Balanced: true,
			Args: json.RawMessage(`{"kernel":"copy","threads":2,"n":128}`)}},
		{"max-cycles on named workload", job.Spec{Workload: "stream", MaxCycles: 10,
			Args: json.RawMessage(`{"kernel":"copy","threads":2,"n":128}`)}},
		{"outputs on named workload", job.Spec{Workload: "stream", Outputs: []string{"snapshot"},
			Args: json.RawMessage(`{"kernel":"copy","threads":2,"n":128}`)}},
		{"program workload without image", job.Spec{Workload: "program"}},
		{"splash n on nbody kernel", job.Spec{Workload: "splash",
			Args: json.RawMessage(`{"kernel":"barnes","threads":2,"n":64}`)}},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := tc.spec.Canonicalize(); err == nil {
				t.Fatal("Canonicalize accepted the spec")
			}
		})
	}
}
