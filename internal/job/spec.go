// Package job is the unified run/job layer: one canonical description of
// a simulation run — what to execute (a program image or a named
// workload), on which architectural configuration, under which engine,
// issue policy and latency model — plus a deterministic content hash over
// that description, and a Runner that executes specs through the
// harness/sweep worker pool with an optional result cache in front.
//
// Every Cyclops run is deterministic: a canonicalized Spec fully
// determines the run's statistics, tables and outputs. Spec.Key exploits
// that — SHA-256 over the canonical spec encoding plus SemanticsVersion —
// so results are content-addressed: the figure sweeps, the CI lanes and
// the cyclops-serve daemon all share one cache keyed by what a run *is*
// rather than who asked for it.
package job

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"sort"

	"cyclops/internal/arch"
	"cyclops/internal/resultcache"
	"cyclops/internal/sim"
	"cyclops/internal/timing"
)

// SemanticsVersion stamps every spec key with the simulator's timing
// semantics. Bump it whenever a change intentionally moves simulated
// cycles or counters (i.e. whenever the harness goldens are regenerated):
// old cache entries then never match new keys, so a stale cache can
// serve stale-but-correct results only for the semantics it recorded,
// never wrong results for the current ones. The resultcache manifest
// records this value per cache directory.
const SemanticsVersion = "cyclops-sim/1"

// ProgramWorkload is the built-in workload name for raw program images.
const ProgramWorkload = "program"

// SnapshotOutput requests the deterministic obs.Snapshot JSON in the
// result (program workload only).
const SnapshotOutput = "snapshot"

// Spec describes one deterministic simulation run. The zero value is not
// runnable; fill Workload (plus Program or Args) and let Canonicalize
// default the rest. Field order is the canonical encoding order — the
// key hashes the JSON form, which encoding/json emits in declaration
// order — so reordering fields is a key-schema change (bump
// SemanticsVersion).
type Spec struct {
	// Workload names what to run: ProgramWorkload for a raw image in
	// Program, else a registered workload ("stream", "splash", ...).
	Workload string `json:"workload"`
	// Program is the CYC1 image for the program workload.
	Program []byte `json:"program,omitempty"`
	// Args parameterizes a named workload; Canonicalize re-encodes them
	// through the workload's argument schema so equivalent spellings
	// (field order, whitespace, defaulted fields) key identically.
	Args json.RawMessage `json:"args,omitempty"`
	// Config is the full architectural configuration. nil means "the
	// process default at canonicalization time" — Canonicalize captures
	// it, so keys are always computed over an explicit configuration.
	Config *arch.Config `json:"config,omitempty"`
	// Engine is the execution engine's flag spelling (block, decoded,
	// legacy); empty defaults to the process default engine.
	Engine string `json:"engine,omitempty"`
	// Policy is the issue policy's canonical spec ("fine", "blocked/8");
	// empty defaults to the process default policy.
	Policy string `json:"policy,omitempty"`
	// Latency is an optional latency-model spec ("miss=48,rmiss=72");
	// Canonicalize folds it into Config and clears it, so it is an input
	// convenience, never part of a canonical spec.
	Latency string `json:"latency,omitempty"`
	// Balanced selects the balanced kernel thread-placement policy
	// (program workload; named workloads carry placement in Args).
	Balanced bool `json:"balanced,omitempty"`
	// MaxCycles bounds the run (0 = unlimited).
	MaxCycles uint64 `json:"max_cycles,omitempty"`
	// Outputs lists extra requested outputs (SnapshotOutput); sorted and
	// deduplicated by Canonicalize.
	Outputs []string `json:"outputs,omitempty"`

	// canonical marks a spec returned by Canonicalize; such specs pass
	// through Canonicalize unchanged.
	canonical bool
}

// Canonicalize validates the spec and returns its canonical form: every
// defaultable field made explicit (engine, policy, configuration), the
// latency convenience folded into the configuration, workload arguments
// re-encoded through the workload's schema, outputs sorted. Two specs
// describing the same run canonicalize to equal values, which is what
// makes Key a content address. The receiver is not modified.
func (s *Spec) Canonicalize() (*Spec, error) {
	if s.canonical {
		return s, nil
	}
	c := *s
	w, ok := LookupWorkload(c.Workload)
	if !ok {
		return nil, fmt.Errorf("job: unknown workload %q (have %v)", c.Workload, WorkloadNames())
	}
	if c.Workload == ProgramWorkload {
		if len(c.Program) == 0 {
			return nil, fmt.Errorf("job: program workload needs a program image")
		}
		if len(c.Args) > 0 {
			return nil, fmt.Errorf("job: program workload takes no args")
		}
	} else {
		if len(c.Program) > 0 {
			return nil, fmt.Errorf("job: workload %q does not take a program image", c.Workload)
		}
		if c.Balanced {
			return nil, fmt.Errorf("job: Balanced is program-only; workload %q carries placement in its args", c.Workload)
		}
		if c.MaxCycles != 0 {
			return nil, fmt.Errorf("job: MaxCycles is program-only; workload %q bounds its own runs", c.Workload)
		}
		if len(c.Outputs) > 0 {
			return nil, fmt.Errorf("job: outputs are program-only; workload %q has none", c.Workload)
		}
		args, err := w.Canon(c.Args)
		if err != nil {
			return nil, fmt.Errorf("job: workload %q args: %w", c.Workload, err)
		}
		c.Args = args
	}

	if c.Engine != "" {
		if _, err := sim.ParseEngine(c.Engine); err != nil {
			return nil, err
		}
	}
	switch {
	case w.EngineNeutral:
		// Direct-execution workloads never consult the engine: clear it so
		// every -engine selection keys (and caches) the same run.
		c.Engine = ""
	case c.Engine == "":
		c.Engine = sim.DefaultEngine().String()
	}
	if c.Policy == "" {
		c.Policy = timing.DefaultPolicy().String()
	} else {
		pol, err := timing.ParsePolicySpec(c.Policy)
		if err != nil {
			return nil, err
		}
		c.Policy = pol.String()
	}

	cfg := arch.Default()
	if c.Config != nil {
		cfg = *c.Config
	}
	if c.Latency != "" {
		lat, err := timing.ParseLatencies(c.Latency)
		if err != nil {
			return nil, err
		}
		cfg = lat.Apply(cfg)
		c.Latency = ""
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c.Config = &cfg

	if len(c.Outputs) > 0 {
		outs := append([]string(nil), c.Outputs...)
		sort.Strings(outs)
		dedup := outs[:0]
		for i, o := range outs {
			if i > 0 && o == outs[i-1] {
				continue
			}
			switch o {
			case SnapshotOutput:
			default:
				return nil, fmt.Errorf("job: unknown output %q (want %q)", o, SnapshotOutput)
			}
			dedup = append(dedup, o)
		}
		c.Outputs = dedup
	}
	c.canonical = true
	return &c, nil
}

// Key returns the spec's content hash: SHA-256 over SemanticsVersion and
// the canonical encoding. Equal keys mean equal runs (and, by the
// determinism contract, equal results).
func (s *Spec) Key() (resultcache.Key, error) {
	c, err := s.Canonicalize()
	if err != nil {
		return resultcache.Key{}, err
	}
	enc, err := json.Marshal(c)
	if err != nil {
		return resultcache.Key{}, err
	}
	h := sha256.New()
	h.Write([]byte(SemanticsVersion))
	h.Write([]byte{0})
	h.Write(enc)
	var k resultcache.Key
	h.Sum(k[:0])
	return k, nil
}

// wantOutput reports whether the canonical spec requests the named
// output.
func (s *Spec) wantOutput(name string) bool {
	for _, o := range s.Outputs {
		if o == name {
			return true
		}
	}
	return false
}

// engine resolves the canonical engine string.
func (s *Spec) engine() (sim.Engine, error) { return sim.ParseEngine(s.Engine) }

// policy resolves the canonical policy spec.
func (s *Spec) policy() (timing.Policy, error) { return timing.ParsePolicySpec(s.Policy) }
