// Package isa defines the Cyclops instruction set: a 3-operand load/store
// RISC with about 60 instruction types (Section 2 of the paper), plus the
// multithreading extensions the paper calls out — atomic memory operations,
// synchronization instructions, and the special-purpose-register moves that
// reach the wired-OR hardware barrier.
//
// The original Cyclops ISA is proprietary; this one reproduces its published
// shape: 32-bit fixed-width instructions, 64 general-purpose 32-bit
// registers per thread that pair up (even, odd) for double-precision
// values, and the instruction classes whose costs Table 2 specifies.
package isa

import "fmt"

// Op is an operation code.
type Op uint8

// The instruction set. Grouped as in Table 2's cost classes.
const (
	// OpInvalid is the zero Op; executing it traps.
	OpInvalid Op = iota

	// Integer register-register.
	OpADD
	OpSUB
	OpAND
	OpOR
	OpXOR
	OpNOR
	OpSLL
	OpSRL
	OpSRA
	OpSLT
	OpSLTU
	OpMUL
	OpDIV
	OpDIVU

	// Integer register-immediate.
	OpADDI
	OpANDI
	OpORI
	OpXORI
	OpSLLI
	OpSRLI
	OpSRAI
	OpSLTI
	OpSLTIU
	OpLUI

	// Loads. LD fills a double-precision register pair.
	OpLW
	OpLH
	OpLHU
	OpLB
	OpLBU
	OpLD

	// Stores. SD writes a register pair.
	OpSW
	OpSH
	OpSB
	OpSD

	// Branches (condition codes are not used; compare-and-branch).
	OpBEQ
	OpBNE
	OpBLT
	OpBGE
	OpBLTU
	OpBGEU

	// Jumps.
	OpJAL
	OpJALR

	// Floating point, double precision on (even, odd) register pairs.
	OpFADD
	OpFSUB
	OpFMUL
	OpFDIV
	OpFSQRT
	OpFMA // d = a*b + c
	OpFMS // d = a*b - c
	OpFNEG
	OpFABS
	OpFMOV
	OpFCVTDW // int word -> double
	OpFCVTWD // double -> int word, truncating
	OpFCEQ   // integer rd = (a == b)
	OpFCLT
	OpFCLE

	// Atomic memory operations (multithreading extensions).
	OpAMOADD  // rd = mem[ra]; mem[ra] += rb, atomically
	OpAMOSWAP // rd = mem[ra]; mem[ra] = rb
	OpAMOCAS  // if mem[ra] == rd { mem[ra] = rb }; rd = old value

	// Special-purpose registers and synchronization.
	OpMFSPR
	OpMTSPR
	OpSYNC

	// System.
	OpSYSCALL
	OpHALT

	NumOps
)

// Format describes how an instruction's operand fields are laid out.
type Format uint8

const (
	// FmtR: rd, ra, rb (register-register).
	FmtR Format = iota
	// FmtR4: rd, ra, rb, rc (fused multiply-add family).
	FmtR4
	// FmtI: rd, ra, imm13 (immediates, loads, JALR).
	FmtI
	// FmtS: rs, ra, imm13 (stores: value register, base, offset).
	FmtS
	// FmtB: ra, rb, imm13 (compare-and-branch; offset in words).
	FmtB
	// FmtU: rd, imm19 (LUI: rd = imm19 << 13).
	FmtU
	// FmtJ: rd, imm19 (JAL; offset in words).
	FmtJ
	// FmtN: no operands (SYNC, HALT, SYSCALL).
	FmtN
)

// Class is the Table 2 cost class of an instruction.
type Class uint8

const (
	// ClassOther: 1 execution cycle, no extra latency.
	ClassOther Class = iota
	// ClassBranch: 2 execution cycles.
	ClassBranch
	// ClassIntMul: 1 execution, 5 latency.
	ClassIntMul
	// ClassIntDiv: 33 execution cycles, non-pipelined.
	ClassIntDiv
	// ClassFP: FP add/mul/convert, 1 execution, 5 latency. Uses the quad
	// FPU's adder or multiplier pipe.
	ClassFP
	// ClassFPDiv: 30 execution cycles on the divide/sqrt unit.
	ClassFPDiv
	// ClassFPSqrt: 56 execution cycles on the divide/sqrt unit.
	ClassFPSqrt
	// ClassFMA: 1 execution, 9 latency; uses both FPU pipes.
	ClassFMA
	// ClassMem: 1 execution cycle on the cache port plus a latency that
	// depends on where the line is found (Table 2, memory rows).
	ClassMem
)

// FPUPipe identifies which pipe of the shared FPU an instruction occupies.
type FPUPipe uint8

const (
	// PipeNone: instruction does not use the FPU.
	PipeNone FPUPipe = iota
	// PipeAdd: the adder (add, sub, neg, abs, compares, converts).
	PipeAdd
	// PipeMul: the multiplier.
	PipeMul
	// PipeBoth: FMA family dispatches to adder and multiplier together.
	PipeBoth
	// PipeDiv: the non-pipelined divide / square-root unit.
	PipeDiv
)

// Info is the static description of one operation.
type Info struct {
	Name   string
	Format Format
	Class  Class
	Pipe   FPUPipe
	// Mem marks loads, stores and atomics; Store marks memory writes;
	// Pair marks 64-bit (register-pair) memory operands; Atomic marks
	// the in-memory read-modify-write operations (the multithreading
	// extensions), which both read and write their location in one
	// indivisible step and so never race with each other.
	Mem, Store, Pair, Atomic bool
}

var infos = [NumOps]Info{
	OpInvalid: {Name: "invalid", Format: FmtN, Class: ClassOther},

	OpADD:  {Name: "add", Format: FmtR, Class: ClassOther},
	OpSUB:  {Name: "sub", Format: FmtR, Class: ClassOther},
	OpAND:  {Name: "and", Format: FmtR, Class: ClassOther},
	OpOR:   {Name: "or", Format: FmtR, Class: ClassOther},
	OpXOR:  {Name: "xor", Format: FmtR, Class: ClassOther},
	OpNOR:  {Name: "nor", Format: FmtR, Class: ClassOther},
	OpSLL:  {Name: "sll", Format: FmtR, Class: ClassOther},
	OpSRL:  {Name: "srl", Format: FmtR, Class: ClassOther},
	OpSRA:  {Name: "sra", Format: FmtR, Class: ClassOther},
	OpSLT:  {Name: "slt", Format: FmtR, Class: ClassOther},
	OpSLTU: {Name: "sltu", Format: FmtR, Class: ClassOther},
	OpMUL:  {Name: "mul", Format: FmtR, Class: ClassIntMul},
	OpDIV:  {Name: "div", Format: FmtR, Class: ClassIntDiv},
	OpDIVU: {Name: "divu", Format: FmtR, Class: ClassIntDiv},

	OpADDI:  {Name: "addi", Format: FmtI, Class: ClassOther},
	OpANDI:  {Name: "andi", Format: FmtI, Class: ClassOther},
	OpORI:   {Name: "ori", Format: FmtI, Class: ClassOther},
	OpXORI:  {Name: "xori", Format: FmtI, Class: ClassOther},
	OpSLLI:  {Name: "slli", Format: FmtI, Class: ClassOther},
	OpSRLI:  {Name: "srli", Format: FmtI, Class: ClassOther},
	OpSRAI:  {Name: "srai", Format: FmtI, Class: ClassOther},
	OpSLTI:  {Name: "slti", Format: FmtI, Class: ClassOther},
	OpSLTIU: {Name: "sltiu", Format: FmtI, Class: ClassOther},
	OpLUI:   {Name: "lui", Format: FmtU, Class: ClassOther},

	OpLW:  {Name: "lw", Format: FmtI, Class: ClassMem, Mem: true},
	OpLH:  {Name: "lh", Format: FmtI, Class: ClassMem, Mem: true},
	OpLHU: {Name: "lhu", Format: FmtI, Class: ClassMem, Mem: true},
	OpLB:  {Name: "lb", Format: FmtI, Class: ClassMem, Mem: true},
	OpLBU: {Name: "lbu", Format: FmtI, Class: ClassMem, Mem: true},
	OpLD:  {Name: "ld", Format: FmtI, Class: ClassMem, Mem: true, Pair: true},

	OpSW: {Name: "sw", Format: FmtS, Class: ClassMem, Mem: true, Store: true},
	OpSH: {Name: "sh", Format: FmtS, Class: ClassMem, Mem: true, Store: true},
	OpSB: {Name: "sb", Format: FmtS, Class: ClassMem, Mem: true, Store: true},
	OpSD: {Name: "sd", Format: FmtS, Class: ClassMem, Mem: true, Store: true, Pair: true},

	OpBEQ:  {Name: "beq", Format: FmtB, Class: ClassBranch},
	OpBNE:  {Name: "bne", Format: FmtB, Class: ClassBranch},
	OpBLT:  {Name: "blt", Format: FmtB, Class: ClassBranch},
	OpBGE:  {Name: "bge", Format: FmtB, Class: ClassBranch},
	OpBLTU: {Name: "bltu", Format: FmtB, Class: ClassBranch},
	OpBGEU: {Name: "bgeu", Format: FmtB, Class: ClassBranch},

	OpJAL:  {Name: "jal", Format: FmtJ, Class: ClassBranch},
	OpJALR: {Name: "jalr", Format: FmtI, Class: ClassBranch},

	OpFADD:   {Name: "fadd", Format: FmtR, Class: ClassFP, Pipe: PipeAdd},
	OpFSUB:   {Name: "fsub", Format: FmtR, Class: ClassFP, Pipe: PipeAdd},
	OpFMUL:   {Name: "fmul", Format: FmtR, Class: ClassFP, Pipe: PipeMul},
	OpFDIV:   {Name: "fdiv", Format: FmtR, Class: ClassFPDiv, Pipe: PipeDiv},
	OpFSQRT:  {Name: "fsqrt", Format: FmtR, Class: ClassFPSqrt, Pipe: PipeDiv},
	OpFMA:    {Name: "fma", Format: FmtR4, Class: ClassFMA, Pipe: PipeBoth},
	OpFMS:    {Name: "fms", Format: FmtR4, Class: ClassFMA, Pipe: PipeBoth},
	OpFNEG:   {Name: "fneg", Format: FmtR, Class: ClassFP, Pipe: PipeAdd},
	OpFABS:   {Name: "fabs", Format: FmtR, Class: ClassFP, Pipe: PipeAdd},
	OpFMOV:   {Name: "fmov", Format: FmtR, Class: ClassFP, Pipe: PipeAdd},
	OpFCVTDW: {Name: "fcvtdw", Format: FmtR, Class: ClassFP, Pipe: PipeAdd},
	OpFCVTWD: {Name: "fcvtwd", Format: FmtR, Class: ClassFP, Pipe: PipeAdd},
	OpFCEQ:   {Name: "fceq", Format: FmtR, Class: ClassFP, Pipe: PipeAdd},
	OpFCLT:   {Name: "fclt", Format: FmtR, Class: ClassFP, Pipe: PipeAdd},
	OpFCLE:   {Name: "fcle", Format: FmtR, Class: ClassFP, Pipe: PipeAdd},

	OpAMOADD:  {Name: "amoadd", Format: FmtR, Class: ClassMem, Mem: true, Store: true, Atomic: true},
	OpAMOSWAP: {Name: "amoswap", Format: FmtR, Class: ClassMem, Mem: true, Store: true, Atomic: true},
	OpAMOCAS:  {Name: "amocas", Format: FmtR, Class: ClassMem, Mem: true, Store: true, Atomic: true},

	OpMFSPR: {Name: "mfspr", Format: FmtI, Class: ClassOther},
	OpMTSPR: {Name: "mtspr", Format: FmtI, Class: ClassOther},
	OpSYNC:  {Name: "sync", Format: FmtN, Class: ClassOther},

	OpSYSCALL: {Name: "syscall", Format: FmtN, Class: ClassOther},
	OpHALT:    {Name: "halt", Format: FmtN, Class: ClassOther},
}

// Lookup returns the static description of op.
func Lookup(op Op) Info {
	if op >= NumOps {
		return infos[OpInvalid]
	}
	return infos[op]
}

// InfoRef returns a pointer to op's static description. The table is
// immutable after init, so the pointer is safe to hold; hot paths (the
// simulator's issue loop) use it to avoid copying Info per instruction.
func InfoRef(op Op) *Info {
	if op >= NumOps {
		return &infos[OpInvalid]
	}
	return &infos[op]
}

// String returns the mnemonic.
func (op Op) String() string { return Lookup(op).Name }

// EndsBlock reports whether in terminates a basic block: branches and
// jumps redirect control, jalr's target is dynamic, halt stops the
// thread, and syscall may halt it or start others. This is the one
// block-boundary definition shared by the static analyzer's CFG
// construction (internal/vet) and the simulator's block compiler
// (internal/sim), so both agree on what a leader is by construction.
func EndsBlock(in Inst) bool {
	switch Lookup(in.Op).Format {
	case FmtB, FmtJ:
		return true
	}
	switch in.Op {
	case OpJALR, OpHALT, OpSYSCALL:
		return true
	}
	return false
}

// BarrierArrive reports the wired-OR barrier arrival: an mtspr whose
// target is the barrier SPR (Section 2.3). The writing thread deposits
// its contribution; the barrier completes only once every participant
// has both arrived and observed the all-arrived state via BarrierWait.
func BarrierArrive(in Inst) bool {
	return in.Op == OpMTSPR && in.Imm == SPRBarrier
}

// BarrierWait reports the barrier spin read: an mfspr from the barrier
// SPR, which a thread polls until the wired-OR over all contributions
// shows the previous phase's bit cleared.
func BarrierWait(in Inst) bool {
	return in.Op == OpMFSPR && in.Imm == SPRBarrier
}

// ByName resolves a mnemonic to its Op; ok is false for unknown mnemonics.
func ByName(name string) (op Op, ok bool) {
	o, ok := byName[name]
	return o, ok
}

var byName = func() map[string]Op {
	m := make(map[string]Op, NumOps)
	for op := Op(1); op < NumOps; op++ {
		m[infos[op].Name] = op
	}
	return m
}()

// Special-purpose register numbers.
const (
	// SPRTid reads the hardware thread id.
	SPRTid = 0
	// SPRNThreads reads the number of thread units on the chip.
	SPRNThreads = 1
	// SPRCycle reads the low 32 bits of the chip cycle counter.
	SPRCycle = 2
	// SPRCycleHi reads the high 32 bits of the chip cycle counter.
	SPRCycleHi = 3
	// SPRBarrier is the 8-bit wired-OR barrier register (Section 2.3).
	// A thread writes its own contribution and reads back the OR over
	// all threads.
	SPRBarrier = 4
	// SPRMemSize reads the amount of working embedded memory; the
	// fault-tolerance hardware lowers it when banks fail (Section 5).
	SPRMemSize = 5
	// SPRQuad reads the accessing thread's quad number.
	SPRQuad = 6
	// NumSPRs bounds the SPR file.
	NumSPRs = 8
)

// Register conventions used by the assembler and the kernel ABI.
const (
	// NumRegs is the size of the general-purpose register file. The
	// 6-bit register fields cannot name anything above it, but the +1 of
	// a double-precision pair based at r63 can; accessors clamp that.
	NumRegs = 64
	// RZero is hardwired to zero.
	RZero = 0
	// RSP is the stack pointer.
	RSP = 1
	// RLR is the link register written by jal/jalr.
	RLR = 2
	// RArg0 .. RArg3 (r4..r7) carry syscall/function arguments and
	// results.
	RArg0 = 4
	RArg1 = 5
	RArg2 = 6
	RArg3 = 7
)

// Syscall numbers (placed in RArg0; see internal/kernel).
const (
	SysExit = iota
	SysPutc
	SysPutInt
	SysSpawn
	SysJoin
	SysThreads
	SysOffChipRead
	SysOffChipWrite
	NumSyscalls
)

func (f Format) String() string {
	switch f {
	case FmtR:
		return "R"
	case FmtR4:
		return "R4"
	case FmtI:
		return "I"
	case FmtS:
		return "S"
	case FmtB:
		return "B"
	case FmtU:
		return "U"
	case FmtJ:
		return "J"
	case FmtN:
		return "N"
	}
	return fmt.Sprintf("Format(%d)", uint8(f))
}
