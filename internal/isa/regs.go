package isa

// Static register-effect metadata: which registers an instruction reads
// and writes, derived from its format and the pair conventions of the FP
// unit. internal/vet's dataflow passes are built on these queries; the
// simulator does not use them (its executor knows the semantics anyway),
// so they can afford to encode ABI-level facts such as the syscall
// argument registers.

// RegMask is a bitset over the 64 general-purpose registers.
type RegMask uint64

// Bit returns the mask with only register r set. Register 0 is hardwired
// to zero, so it never appears in use or def masks: reads of r0 are always
// safe and writes to it are discarded.
func Bit(r uint8) RegMask {
	if r == RZero || r >= NumRegs {
		return 0
	}
	return 1 << r
}

// Has reports whether register r is in the mask.
func (m RegMask) Has(r uint8) bool { return m&(1<<r) != 0 }

// Regs lists the registers in the mask, ascending.
func (m RegMask) Regs() []uint8 {
	var out []uint8
	for r := uint8(0); r < NumRegs; r++ {
		if m.Has(r) {
			out = append(out, r)
		}
	}
	return out
}

// pair returns the mask of the (r, r+1) double-precision pair. An odd or
// out-of-range base still contributes the registers it would actually
// touch, clamped to the register file.
func pair(r uint8) RegMask {
	return Bit(r) | Bit(r+1)
}

// unaryFP reports ops whose FmtR encoding carries only rd, ra.
func unaryFP(op Op) bool {
	switch op {
	case OpFNEG, OpFABS, OpFMOV, OpFSQRT, OpFCVTDW, OpFCVTWD:
		return true
	}
	return false
}

// fpCompare reports the FP compares, whose destination is an integer
// register even though the sources are pairs.
func fpCompare(op Op) bool {
	switch op {
	case OpFCEQ, OpFCLT, OpFCLE:
		return true
	}
	return false
}

// fpPairSources reports FmtR ops whose ra/rb sources are register pairs.
func fpPairSources(op Op) bool {
	switch op {
	case OpFADD, OpFSUB, OpFMUL, OpFDIV, OpFSQRT, OpFNEG, OpFABS, OpFMOV,
		OpFCVTWD, OpFCEQ, OpFCLT, OpFCLE:
		return true
	}
	return false
}

// fpPairDest reports FmtR ops whose rd destination is a register pair.
func fpPairDest(op Op) bool {
	switch op {
	case OpFADD, OpFSUB, OpFMUL, OpFDIV, OpFSQRT, OpFNEG, OpFABS, OpFMOV,
		OpFCVTDW:
		return true
	}
	return false
}

// RegEffects returns the registers in read and the registers written by
// one decoded instruction. Pair-typed operands (double-precision values,
// ld/sd data) contribute both halves of their (even, odd) pair. SYSCALL
// reads and writes RArg0 per the kernel ABI (the number in, the result
// out); the other argument registers depend on the syscall number and are
// deliberately left out so conservative dataflow does not flag exits that
// never set them.
func RegEffects(in Inst) (uses, defs RegMask) {
	info := Lookup(in.Op)
	switch info.Format {
	case FmtR:
		switch {
		case info.Mem: // atomics: rd, (ra), rb
			return Bit(in.B) | Bit(in.C), Bit(in.A)
		case in.Op == OpFCVTDW: // int word -> double pair
			return Bit(in.B), pair(in.A)
		case in.Op == OpFCVTWD: // double pair -> int word
			return pair(in.B), Bit(in.A)
		case fpCompare(in.Op): // pairs in, integer flag out
			return pair(in.B) | pair(in.C), Bit(in.A)
		case unaryFP(in.Op): // rd, ra pairs
			return pair(in.B), pair(in.A)
		case fpPairDest(in.Op) || fpPairSources(in.Op): // FP arithmetic
			return pair(in.B) | pair(in.C), pair(in.A)
		default: // integer rd, ra, rb
			return Bit(in.B) | Bit(in.C), Bit(in.A)
		}
	case FmtR4: // fma/fms: all four operands are pairs
		return pair(in.B) | pair(in.C) | pair(in.D), pair(in.A)
	case FmtI:
		switch {
		case in.Op == OpMFSPR:
			return 0, Bit(in.A)
		case in.Op == OpMTSPR:
			return Bit(in.A), 0
		case in.Op == OpJALR: // link in rd, target base in ra
			return Bit(in.B), Bit(in.A)
		case info.Mem && info.Pair: // ld
			return Bit(in.B), pair(in.A)
		default: // loads and immediates: rd, ra
			return Bit(in.B), Bit(in.A)
		}
	case FmtS: // stores: data in rs, base in ra
		if info.Pair {
			return pair(in.A) | Bit(in.B), 0
		}
		return Bit(in.A) | Bit(in.B), 0
	case FmtB:
		return Bit(in.A) | Bit(in.B), 0
	case FmtU, FmtJ: // lui, jal
		return 0, Bit(in.A)
	case FmtN:
		if in.Op == OpSYSCALL {
			return Bit(RArg0), Bit(RArg0)
		}
		return 0, 0
	}
	return 0, 0
}

// PairRole names one pair-typed operand position for diagnostics.
type PairRole struct {
	// Reg is the pair's base register as encoded.
	Reg uint8
	// Name is the operand's role ("rd", "ra", "rb", "rc", "rs").
	Name string
}

// PairBases lists the operands of in that must name even (base, base+1)
// double-precision register pairs. Instructions without pair operands
// return nil.
func PairBases(in Inst) []PairRole {
	info := Lookup(in.Op)
	switch info.Format {
	case FmtR4:
		return []PairRole{
			{in.A, "rd"}, {in.B, "ra"}, {in.C, "rb"}, {in.D, "rc"},
		}
	case FmtR:
		var out []PairRole
		if fpPairDest(in.Op) {
			out = append(out, PairRole{in.A, "rd"})
		}
		if fpPairSources(in.Op) {
			out = append(out, PairRole{in.B, "ra"})
			if !unaryFP(in.Op) {
				out = append(out, PairRole{in.C, "rb"})
			}
		}
		return out
	case FmtI:
		if info.Mem && info.Pair { // ld
			return []PairRole{{in.A, "rd"}}
		}
	case FmtS:
		if info.Pair { // sd
			return []PairRole{{in.A, "rs"}}
		}
	}
	return nil
}

// ReadOnlySPR reports whether SPR n exists but rejects mtspr; WritableSPR
// and KnownSPR complete the protocol table the simulator enforces at run
// time (exec.go traps on everything else).
func ReadOnlySPR(n int32) bool {
	switch n {
	case SPRTid, SPRNThreads, SPRCycle, SPRCycleHi, SPRMemSize, SPRQuad:
		return true
	}
	return false
}

// KnownSPR reports whether SPR n can be read without trapping.
func KnownSPR(n int32) bool {
	return n == SPRBarrier || ReadOnlySPR(n)
}

// SPRName names an SPR for diagnostics.
func SPRName(n int32) string {
	switch n {
	case SPRTid:
		return "tid"
	case SPRNThreads:
		return "nthreads"
	case SPRCycle:
		return "cycle"
	case SPRCycleHi:
		return "cyclehi"
	case SPRBarrier:
		return "barrier"
	case SPRMemSize:
		return "memsize"
	case SPRQuad:
		return "quad"
	}
	return "undefined"
}
