package isa

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestOpcodeCountMatchesPaper(t *testing.T) {
	// "The proprietary ISA consists of about 60 instruction types."
	n := int(NumOps) - 1 // exclude OpInvalid
	if n < 55 || n > 70 {
		t.Errorf("ISA has %d instruction types, want about 60", n)
	}
}

func TestEveryOpHasInfoAndUniqueName(t *testing.T) {
	seen := map[string]Op{}
	for op := Op(1); op < NumOps; op++ {
		info := Lookup(op)
		if info.Name == "" {
			t.Fatalf("op %d has no mnemonic", op)
		}
		if prev, dup := seen[info.Name]; dup {
			t.Fatalf("mnemonic %q used by ops %d and %d", info.Name, prev, op)
		}
		seen[info.Name] = op
		back, ok := ByName(info.Name)
		if !ok || back != op {
			t.Fatalf("ByName(%q) = %d,%v; want %d", info.Name, back, ok, op)
		}
	}
	if _, ok := ByName("bogus"); ok {
		t.Error("ByName accepted an unknown mnemonic")
	}
}

func TestClassesMatchTable2Semantics(t *testing.T) {
	if Lookup(OpBEQ).Class != ClassBranch || Lookup(OpJAL).Class != ClassBranch {
		t.Error("branches must be ClassBranch")
	}
	if Lookup(OpMUL).Class != ClassIntMul || Lookup(OpDIV).Class != ClassIntDiv {
		t.Error("integer multiply/divide classes wrong")
	}
	if Lookup(OpFADD).Class != ClassFP || Lookup(OpFMUL).Class != ClassFP {
		t.Error("fp add/mul must be ClassFP")
	}
	if Lookup(OpFDIV).Class != ClassFPDiv || Lookup(OpFSQRT).Class != ClassFPSqrt {
		t.Error("fp divide/sqrt classes wrong")
	}
	if Lookup(OpFMA).Class != ClassFMA {
		t.Error("fma must be ClassFMA")
	}
	for _, op := range []Op{OpLW, OpSW, OpLD, OpSD, OpAMOADD, OpAMOCAS} {
		if Lookup(op).Class != ClassMem || !Lookup(op).Mem {
			t.Errorf("%v must be a ClassMem memory op", op)
		}
	}
	for _, op := range []Op{OpSW, OpSD, OpAMOADD, OpAMOSWAP, OpAMOCAS} {
		if !Lookup(op).Store {
			t.Errorf("%v must be marked Store", op)
		}
	}
	if Lookup(OpLW).Store {
		t.Error("lw must not be marked Store")
	}
	if !Lookup(OpLD).Pair || !Lookup(OpSD).Pair || Lookup(OpLW).Pair {
		t.Error("Pair marking wrong for ld/sd/lw")
	}
}

func TestFPUPipeAssignments(t *testing.T) {
	// Section 2: "Threads can dispatch a floating point addition and a
	// floating point multiplication at every cycle" — separate pipes.
	if Lookup(OpFADD).Pipe != PipeAdd || Lookup(OpFMUL).Pipe != PipeMul {
		t.Error("fadd/fmul must use distinct FPU pipes")
	}
	if Lookup(OpFMA).Pipe != PipeBoth {
		t.Error("fma must occupy both pipes")
	}
	if Lookup(OpFDIV).Pipe != PipeDiv || Lookup(OpFSQRT).Pipe != PipeDiv {
		t.Error("divide and sqrt share the divide unit")
	}
	if Lookup(OpADD).Pipe != PipeNone || Lookup(OpLW).Pipe != PipeNone {
		t.Error("integer and memory ops must not touch the FPU")
	}
}

// randomInst builds a random valid instruction for the given op.
func randomInst(r *rand.Rand, op Op) Inst {
	info := Lookup(op)
	in := Inst{Op: op}
	reg := func() uint8 { return uint8(r.Intn(64)) }
	switch info.Format {
	case FmtR:
		in.A, in.B, in.C = reg(), reg(), reg()
	case FmtR4:
		in.A, in.B, in.C, in.D = reg(), reg(), reg(), reg()
	case FmtI, FmtS, FmtB:
		in.A, in.B = reg(), reg()
		if ZeroExtImm(op) {
			in.Imm = int32(r.Intn(0x2000))
		} else {
			in.Imm = int32(r.Intn(MaxImm13-MinImm13+1)) + MinImm13
		}
	case FmtU:
		in.A = reg()
		in.Imm = int32(r.Intn(MaxUImm19 + 1))
	case FmtJ:
		in.A = reg()
		in.Imm = int32(r.Intn(MaxImm19-MinImm19+1)) + MinImm19
	case FmtN:
	}
	return in
}

func TestEncodeDecodeRoundTripAllOps(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for op := Op(1); op < NumOps; op++ {
		for i := 0; i < 200; i++ {
			in := randomInst(r, op)
			w, err := in.Encode()
			if err != nil {
				t.Fatalf("%v: encode: %v", in, err)
			}
			got := Decode(w)
			if got != in {
				t.Fatalf("round trip %+v -> %#x -> %+v", in, w, got)
			}
		}
	}
}

func TestEncodeDecodeRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		op := Op(1 + rr.Intn(int(NumOps)-1))
		in := randomInst(r, op)
		w, err := in.Encode()
		if err != nil {
			return false
		}
		return Decode(w) == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestEncodeRejectsOutOfRange(t *testing.T) {
	cases := []Inst{
		{Op: OpADD, A: 64},
		{Op: OpADDI, A: 1, B: 2, Imm: MaxImm13 + 1},
		{Op: OpADDI, A: 1, B: 2, Imm: MinImm13 - 1},
		{Op: OpLUI, A: 1, Imm: -1},
		{Op: OpLUI, A: 1, Imm: MaxUImm19 + 1},
		{Op: OpJAL, A: 2, Imm: MaxImm19 + 1},
		{Op: OpInvalid},
		{Op: NumOps},
	}
	for _, in := range cases {
		if _, err := in.Encode(); err == nil {
			t.Errorf("Encode(%+v) succeeded, want error", in)
		}
	}
}

func TestDecodeUnknownOpcode(t *testing.T) {
	w := uint32(uint32(NumOps)+5) << 25
	in := Decode(w)
	if in.Op != OpInvalid {
		t.Errorf("unknown opcode decoded to %v", in.Op)
	}
	if uint32(in.Imm) != w {
		t.Errorf("raw word not preserved: %#x vs %#x", in.Imm, w)
	}
}

func TestSignExtension(t *testing.T) {
	in := Inst{Op: OpADDI, A: 1, B: 2, Imm: -1}
	if got := Decode(in.MustEncode()).Imm; got != -1 {
		t.Errorf("imm13 -1 round-tripped to %d", got)
	}
	in = Inst{Op: OpJAL, A: 2, Imm: MinImm19}
	if got := Decode(in.MustEncode()).Imm; got != MinImm19 {
		t.Errorf("imm19 min round-tripped to %d", got)
	}
}

func TestDisassemblyShapes(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: OpADD, A: 3, B: 4, C: 5}, "add r3, r4, r5"},
		{Inst{Op: OpADDI, A: 3, B: 4, Imm: -7}, "addi r3, r4, -7"},
		{Inst{Op: OpLW, A: 8, B: 1, Imm: 16}, "lw r8, 16(r1)"},
		{Inst{Op: OpSD, A: 10, B: 2, Imm: -8}, "sd r10, -8(r2)"},
		{Inst{Op: OpBEQ, A: 3, B: 0, Imm: 12}, "beq r3, r0, 12"},
		{Inst{Op: OpFMA, A: 8, B: 10, C: 12, D: 14}, "fma r8, r10, r12, r14"},
		{Inst{Op: OpFSQRT, A: 8, B: 10}, "fsqrt r8, r10"},
		{Inst{Op: OpAMOADD, A: 3, B: 4, C: 5}, "amoadd r3, (r4), r5"},
		{Inst{Op: OpMFSPR, A: 9, Imm: SPRBarrier}, "mfspr r9, 4"},
		{Inst{Op: OpHALT}, "halt"},
		{Inst{Op: OpLUI, A: 6, Imm: 1234}, "lui r6, 1234"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String(%+v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestMustEncodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustEncode did not panic on bad instruction")
		}
	}()
	Inst{Op: OpADD, A: 99}.MustEncode()
}

func TestFormatString(t *testing.T) {
	for _, f := range []Format{FmtR, FmtR4, FmtI, FmtS, FmtB, FmtU, FmtJ, FmtN} {
		if s := f.String(); s == "" || strings.HasPrefix(s, "Format(") {
			t.Errorf("format %d has no name", f)
		}
	}
}

func TestAtomicClassification(t *testing.T) {
	atomics := map[Op]bool{OpAMOADD: true, OpAMOSWAP: true, OpAMOCAS: true}
	for op := Op(1); op < NumOps; op++ {
		info := Lookup(op)
		if info.Atomic != atomics[op] {
			t.Errorf("%s: Atomic = %v, want %v", info.Name, info.Atomic, atomics[op])
		}
		if info.Atomic && (!info.Mem || !info.Store) {
			t.Errorf("%s: atomics must be Mem+Store", info.Name)
		}
	}
}

func TestBarrierClassification(t *testing.T) {
	cases := []struct {
		in            Inst
		arrive, wait_ bool
	}{
		{Inst{Op: OpMTSPR, A: 8, Imm: SPRBarrier}, true, false},
		{Inst{Op: OpMFSPR, A: 9, Imm: SPRBarrier}, false, true},
		{Inst{Op: OpMTSPR, A: 8, Imm: SPRTid}, false, false},
		{Inst{Op: OpMFSPR, A: 9, Imm: SPRCycle}, false, false},
		{Inst{Op: OpSYNC}, false, false},
	}
	for _, c := range cases {
		if got := BarrierArrive(c.in); got != c.arrive {
			t.Errorf("BarrierArrive(%v) = %v, want %v", c.in, got, c.arrive)
		}
		if got := BarrierWait(c.in); got != c.wait_ {
			t.Errorf("BarrierWait(%v) = %v, want %v", c.in, got, c.wait_)
		}
	}
}
