package isa

import "testing"

// encCase is one explicit encode/decode expectation.
type encCase struct {
	in Inst
	// asm is the expected disassembly; empty skips the String check.
	asm string
}

// encCases holds at least one hand-written case per opcode, including the
// boundary immediates of every format and the SPR / barrier / atomic
// forms. TestEncodeDecodeExhaustive fails with the opcode name when a new
// opcode is added without a case here.
var encCases = map[Op][]encCase{
	OpADD:  {{Inst{Op: OpADD, A: 3, B: 4, C: 5}, "add r3, r4, r5"}},
	OpSUB:  {{Inst{Op: OpSUB, A: 63, B: 0, C: 63}, "sub r63, r0, r63"}},
	OpAND:  {{Inst{Op: OpAND, A: 1, B: 2, C: 3}, "and r1, r2, r3"}},
	OpOR:   {{Inst{Op: OpOR, A: 1, B: 2, C: 3}, "or r1, r2, r3"}},
	OpXOR:  {{Inst{Op: OpXOR, A: 1, B: 2, C: 3}, "xor r1, r2, r3"}},
	OpNOR:  {{Inst{Op: OpNOR, A: 1, B: 2, C: 3}, "nor r1, r2, r3"}},
	OpSLL:  {{Inst{Op: OpSLL, A: 1, B: 2, C: 3}, "sll r1, r2, r3"}},
	OpSRL:  {{Inst{Op: OpSRL, A: 1, B: 2, C: 3}, "srl r1, r2, r3"}},
	OpSRA:  {{Inst{Op: OpSRA, A: 1, B: 2, C: 3}, "sra r1, r2, r3"}},
	OpSLT:  {{Inst{Op: OpSLT, A: 1, B: 2, C: 3}, "slt r1, r2, r3"}},
	OpSLTU: {{Inst{Op: OpSLTU, A: 1, B: 2, C: 3}, "sltu r1, r2, r3"}},
	OpMUL:  {{Inst{Op: OpMUL, A: 1, B: 2, C: 3}, "mul r1, r2, r3"}},
	OpDIV:  {{Inst{Op: OpDIV, A: 1, B: 2, C: 3}, "div r1, r2, r3"}},
	OpDIVU: {{Inst{Op: OpDIVU, A: 1, B: 2, C: 3}, "divu r1, r2, r3"}},

	OpADDI: {
		{Inst{Op: OpADDI, A: 9, B: 9, Imm: MaxImm13}, "addi r9, r9, 4095"},
		{Inst{Op: OpADDI, A: 9, B: 9, Imm: MinImm13}, "addi r9, r9, -4096"},
	},
	// Logical immediates and shift amounts are zero-extended: the full
	// 13-bit unsigned range must survive.
	OpANDI:  {{Inst{Op: OpANDI, A: 1, B: 2, Imm: 0x1fff}, "andi r1, r2, 8191"}},
	OpORI:   {{Inst{Op: OpORI, A: 1, B: 2, Imm: 0x1fff}, "ori r1, r2, 8191"}},
	OpXORI:  {{Inst{Op: OpXORI, A: 1, B: 2, Imm: 0x1000}, "xori r1, r2, 4096"}},
	OpSLLI:  {{Inst{Op: OpSLLI, A: 1, B: 2, Imm: 31}, "slli r1, r2, 31"}},
	OpSRLI:  {{Inst{Op: OpSRLI, A: 1, B: 2, Imm: 31}, "srli r1, r2, 31"}},
	OpSRAI:  {{Inst{Op: OpSRAI, A: 1, B: 2, Imm: 31}, "srai r1, r2, 31"}},
	OpSLTI:  {{Inst{Op: OpSLTI, A: 1, B: 2, Imm: -1}, "slti r1, r2, -1"}},
	OpSLTIU: {{Inst{Op: OpSLTIU, A: 1, B: 2, Imm: -1}, "sltiu r1, r2, -1"}},
	OpLUI: {
		{Inst{Op: OpLUI, A: 8, Imm: MaxUImm19}, "lui r8, 524287"},
		{Inst{Op: OpLUI, A: 8, Imm: 0}, "lui r8, 0"},
	},

	OpLW:  {{Inst{Op: OpLW, A: 4, B: 1, Imm: 16}, "lw r4, 16(r1)"}},
	OpLH:  {{Inst{Op: OpLH, A: 4, B: 1, Imm: -2}, "lh r4, -2(r1)"}},
	OpLHU: {{Inst{Op: OpLHU, A: 4, B: 1, Imm: 2}, "lhu r4, 2(r1)"}},
	OpLB:  {{Inst{Op: OpLB, A: 4, B: 1, Imm: 1}, "lb r4, 1(r1)"}},
	OpLBU: {{Inst{Op: OpLBU, A: 4, B: 1, Imm: 1}, "lbu r4, 1(r1)"}},
	OpLD:  {{Inst{Op: OpLD, A: 16, B: 8, Imm: 8}, "ld r16, 8(r8)"}},

	OpSW: {{Inst{Op: OpSW, A: 4, B: 1, Imm: -16}, "sw r4, -16(r1)"}},
	OpSH: {{Inst{Op: OpSH, A: 4, B: 1, Imm: 2}, "sh r4, 2(r1)"}},
	OpSB: {{Inst{Op: OpSB, A: 4, B: 1, Imm: 1}, "sb r4, 1(r1)"}},
	OpSD: {{Inst{Op: OpSD, A: 16, B: 8, Imm: 8}, "sd r16, 8(r8)"}},

	OpBEQ:  {{Inst{Op: OpBEQ, A: 1, B: 2, Imm: -4}, "beq r1, r2, -4"}},
	OpBNE:  {{Inst{Op: OpBNE, A: 1, B: 2, Imm: MaxImm13}, "bne r1, r2, 4095"}},
	OpBLT:  {{Inst{Op: OpBLT, A: 1, B: 2, Imm: MinImm13}, "blt r1, r2, -4096"}},
	OpBGE:  {{Inst{Op: OpBGE, A: 1, B: 2, Imm: 0}, "bge r1, r2, 0"}},
	OpBLTU: {{Inst{Op: OpBLTU, A: 1, B: 2, Imm: 7}, "bltu r1, r2, 7"}},
	OpBGEU: {{Inst{Op: OpBGEU, A: 1, B: 2, Imm: -7}, "bgeu r1, r2, -7"}},

	OpJAL: {
		{Inst{Op: OpJAL, A: RLR, Imm: MaxImm19}, "jal r2, 262143"},
		{Inst{Op: OpJAL, A: RZero, Imm: MinImm19}, "jal r0, -262144"},
	},
	OpJALR: {{Inst{Op: OpJALR, A: RLR, B: 2, Imm: 0}, "jalr r2, 0(r2)"}},

	OpFADD:   {{Inst{Op: OpFADD, A: 20, B: 16, C: 18}, "fadd r20, r16, r18"}},
	OpFSUB:   {{Inst{Op: OpFSUB, A: 20, B: 16, C: 18}, "fsub r20, r16, r18"}},
	OpFMUL:   {{Inst{Op: OpFMUL, A: 20, B: 16, C: 18}, "fmul r20, r16, r18"}},
	OpFDIV:   {{Inst{Op: OpFDIV, A: 20, B: 16, C: 18}, "fdiv r20, r16, r18"}},
	OpFSQRT:  {{Inst{Op: OpFSQRT, A: 20, B: 16}, "fsqrt r20, r16"}},
	OpFMA:    {{Inst{Op: OpFMA, A: 20, B: 16, C: 18, D: 22}, "fma r20, r16, r18, r22"}},
	OpFMS:    {{Inst{Op: OpFMS, A: 20, B: 16, C: 18, D: 22}, "fms r20, r16, r18, r22"}},
	OpFNEG:   {{Inst{Op: OpFNEG, A: 20, B: 16}, "fneg r20, r16"}},
	OpFABS:   {{Inst{Op: OpFABS, A: 20, B: 16}, "fabs r20, r16"}},
	OpFMOV:   {{Inst{Op: OpFMOV, A: 20, B: 16}, "fmov r20, r16"}},
	OpFCVTDW: {{Inst{Op: OpFCVTDW, A: 20, B: 8}, "fcvtdw r20, r8"}},
	OpFCVTWD: {{Inst{Op: OpFCVTWD, A: 8, B: 20}, "fcvtwd r8, r20"}},
	OpFCEQ:   {{Inst{Op: OpFCEQ, A: 9, B: 16, C: 18}, "fceq r9, r16, r18"}},
	OpFCLT:   {{Inst{Op: OpFCLT, A: 9, B: 16, C: 18}, "fclt r9, r16, r18"}},
	OpFCLE:   {{Inst{Op: OpFCLE, A: 9, B: 16, C: 18}, "fcle r9, r16, r18"}},

	// Atomics address through (ra) and print in the memory form.
	OpAMOADD:  {{Inst{Op: OpAMOADD, A: 10, B: 8, C: 9}, "amoadd r10, (r8), r9"}},
	OpAMOSWAP: {{Inst{Op: OpAMOSWAP, A: 10, B: 8, C: 9}, "amoswap r10, (r8), r9"}},
	OpAMOCAS:  {{Inst{Op: OpAMOCAS, A: 10, B: 8, C: 9}, "amocas r10, (r8), r9"}},

	// SPR moves: the immediate selects the register, including the
	// wired-OR barrier SPR.
	OpMFSPR: {
		{Inst{Op: OpMFSPR, A: 9, Imm: SPRBarrier}, "mfspr r9, 4"},
		{Inst{Op: OpMFSPR, A: 9, Imm: SPRTid}, "mfspr r9, 0"},
		{Inst{Op: OpMFSPR, A: 9, Imm: SPRCycle}, "mfspr r9, 2"},
	},
	OpMTSPR: {
		{Inst{Op: OpMTSPR, A: 9, Imm: SPRBarrier}, "mtspr r9, 4"},
		{Inst{Op: OpMTSPR, A: 9, Imm: NumSPRs - 1}, "mtspr r9, 7"},
	},
	OpSYNC: {{Inst{Op: OpSYNC}, "sync"}},

	OpSYSCALL: {{Inst{Op: OpSYSCALL}, "syscall"}},
	OpHALT:    {{Inst{Op: OpHALT}, "halt"}},
}

// TestEncodeDecodeExhaustive walks every opcode in the ISA: each must
// have at least one explicit case, and each case must encode, decode back
// to the identical Inst, and disassemble to the expected text. Failures
// name the opcode.
func TestEncodeDecodeExhaustive(t *testing.T) {
	for op := Op(1); op < NumOps; op++ {
		cases, ok := encCases[op]
		if !ok || len(cases) == 0 {
			t.Errorf("%s: no encode/decode case — add one to encCases", op)
			continue
		}
		for _, c := range cases {
			w, err := c.in.Encode()
			if err != nil {
				t.Errorf("%s: encode %+v: %v", op, c.in, err)
				continue
			}
			if got := Decode(w); got != c.in {
				t.Errorf("%s: decode(%#x) = %+v, want %+v", op, w, got, c.in)
			}
			if back := Decode(w).String(); c.asm != "" && back != c.asm {
				t.Errorf("%s: disassembles to %q, want %q", op, back, c.asm)
			}
			// The opcode field must survive unmodified in the top bits.
			if got := Op(w >> 25); got != op {
				t.Errorf("%s: opcode field encodes as %d", op, got)
			}
		}
	}
	for op := range encCases {
		if op == OpInvalid || op >= NumOps {
			t.Errorf("encCases lists out-of-range opcode %d", op)
		}
	}
}

// TestImmediateBoundsRejected drives every immediate format one past its
// limit and expects an error naming the instruction.
func TestImmediateBoundsRejected(t *testing.T) {
	cases := []Inst{
		{Op: OpADDI, Imm: MaxImm13 + 1},
		{Op: OpADDI, Imm: MinImm13 - 1},
		{Op: OpANDI, Imm: -1}, // zero-extended: negatives don't fit
		{Op: OpANDI, Imm: 0x1fff + 1},
		{Op: OpBEQ, Imm: MaxImm13 + 1},
		{Op: OpJAL, Imm: MaxImm19 + 1},
		{Op: OpJAL, Imm: MinImm19 - 1},
		{Op: OpLUI, Imm: -1},
		{Op: OpLUI, Imm: MaxUImm19 + 1},
	}
	for _, in := range cases {
		if _, err := in.Encode(); err == nil {
			t.Errorf("%s with imm %d encoded, want error", in.Op, in.Imm)
		}
	}
}
