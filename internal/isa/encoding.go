package isa

import "fmt"

// Instruction encoding. All instructions are one 32-bit word:
//
//	bits 31..25  opcode (7 bits)
//	bits 24..19  field A (rd, or rs for stores, or ra for branches)
//	bits 18..13  field B (ra, or rb for branches)
//	bits 12..7   field C (rb)
//	bits  6..1   field D (rc of the FMA family)
//	bits 12..0   imm13, sign-extended (I, S, B formats)
//	bits 18..0   imm19 (U, J formats; sign-extended for J)
//
// Branch and jump offsets are in words relative to the next instruction.

// Inst is a decoded instruction. Fields not used by the format are zero.
type Inst struct {
	Op  Op
	A   uint8 // rd / rs / ra, by format
	B   uint8 // ra / rb
	C   uint8 // rb
	D   uint8 // rc (FmtR4 only)
	Imm int32 // imm13 or imm19, sign-extended as the format requires
}

const (
	// MaxImm13 and MinImm13 bound the signed 13-bit immediate.
	MaxImm13 = 1<<12 - 1
	MinImm13 = -(1 << 12)
	// MaxImm19 and MinImm19 bound the signed 19-bit immediate (FmtJ).
	MaxImm19 = 1<<18 - 1
	MinImm19 = -(1 << 18)
	// MaxUImm19 bounds the unsigned 19-bit immediate (FmtU).
	MaxUImm19 = 1<<19 - 1
)

// Encode packs an instruction into its 32-bit machine word. It returns an
// error when an operand does not fit its field.
func (in Inst) Encode() (uint32, error) {
	info := Lookup(in.Op)
	if in.Op == OpInvalid || in.Op >= NumOps {
		return 0, fmt.Errorf("isa: cannot encode opcode %d", in.Op)
	}
	for _, r := range []struct {
		name string
		v    uint8
	}{{"A", in.A}, {"B", in.B}, {"C", in.C}, {"D", in.D}} {
		if r.v >= 64 {
			return 0, fmt.Errorf("isa: %s register field %d out of range in %s", r.name, r.v, info.Name)
		}
	}
	w := uint32(in.Op) << 25
	switch info.Format {
	case FmtR:
		w |= uint32(in.A)<<19 | uint32(in.B)<<13 | uint32(in.C)<<7
	case FmtR4:
		w |= uint32(in.A)<<19 | uint32(in.B)<<13 | uint32(in.C)<<7 | uint32(in.D)<<1
	case FmtI, FmtS, FmtB:
		if ZeroExtImm(in.Op) {
			if in.Imm < 0 || in.Imm > 0x1fff {
				return 0, fmt.Errorf("isa: immediate %d does not fit unsigned 13 bits in %s", in.Imm, info.Name)
			}
		} else if in.Imm < MinImm13 || in.Imm > MaxImm13 {
			return 0, fmt.Errorf("isa: immediate %d does not fit 13 bits in %s", in.Imm, info.Name)
		}
		w |= uint32(in.A)<<19 | uint32(in.B)<<13 | uint32(in.Imm)&0x1fff
	case FmtU:
		if in.Imm < 0 || in.Imm > MaxUImm19 {
			return 0, fmt.Errorf("isa: immediate %d does not fit unsigned 19 bits in %s", in.Imm, info.Name)
		}
		w |= uint32(in.A)<<19 | uint32(in.Imm)&0x7ffff
	case FmtJ:
		if in.Imm < MinImm19 || in.Imm > MaxImm19 {
			return 0, fmt.Errorf("isa: immediate %d does not fit 19 bits in %s", in.Imm, info.Name)
		}
		w |= uint32(in.A)<<19 | uint32(in.Imm)&0x7ffff
	case FmtN:
		// opcode only
	default:
		return 0, fmt.Errorf("isa: unknown format %v", info.Format)
	}
	return w, nil
}

// MustEncode is Encode for statically known-good instructions.
func (in Inst) MustEncode() uint32 {
	w, err := in.Encode()
	if err != nil {
		panic(err)
	}
	return w
}

// Decode unpacks a machine word. Unknown opcodes decode to OpInvalid with
// the raw word preserved in Imm so traps can report it.
func Decode(w uint32) Inst {
	op := Op(w >> 25)
	if op >= NumOps || op == OpInvalid {
		return Inst{Op: OpInvalid, Imm: int32(w)}
	}
	info := Lookup(op)
	in := Inst{Op: op}
	switch info.Format {
	case FmtR:
		in.A = uint8(w>>19) & 63
		in.B = uint8(w>>13) & 63
		in.C = uint8(w>>7) & 63
	case FmtR4:
		in.A = uint8(w>>19) & 63
		in.B = uint8(w>>13) & 63
		in.C = uint8(w>>7) & 63
		in.D = uint8(w>>1) & 63
	case FmtI, FmtS, FmtB:
		in.A = uint8(w>>19) & 63
		in.B = uint8(w>>13) & 63
		if ZeroExtImm(op) {
			in.Imm = int32(w & 0x1fff)
		} else {
			in.Imm = signExtend(w&0x1fff, 13)
		}
	case FmtU:
		in.A = uint8(w>>19) & 63
		in.Imm = int32(w & 0x7ffff)
	case FmtJ:
		in.A = uint8(w>>19) & 63
		in.Imm = signExtend(w&0x7ffff, 19)
	case FmtN:
	}
	return in
}

// ZeroExtImm reports whether op's 13-bit immediate is zero-extended
// (logical immediates and shift amounts) rather than sign-extended.
func ZeroExtImm(op Op) bool {
	switch op {
	case OpANDI, OpORI, OpXORI, OpSLLI, OpSRLI, OpSRAI:
		return true
	}
	return false
}

func signExtend(v uint32, bits uint) int32 {
	shift := 32 - bits
	return int32(v<<shift) >> shift
}

// String disassembles the instruction with numeric register names.
func (in Inst) String() string {
	info := Lookup(in.Op)
	switch info.Format {
	case FmtR:
		if info.Mem { // atomics: rd, (ra), rb
			return fmt.Sprintf("%s r%d, (r%d), r%d", info.Name, in.A, in.B, in.C)
		}
		switch in.Op {
		case OpFNEG, OpFABS, OpFMOV, OpFSQRT, OpFCVTDW, OpFCVTWD:
			return fmt.Sprintf("%s r%d, r%d", info.Name, in.A, in.B)
		}
		return fmt.Sprintf("%s r%d, r%d, r%d", info.Name, in.A, in.B, in.C)
	case FmtR4:
		return fmt.Sprintf("%s r%d, r%d, r%d, r%d", info.Name, in.A, in.B, in.C, in.D)
	case FmtI:
		if info.Mem {
			return fmt.Sprintf("%s r%d, %d(r%d)", info.Name, in.A, in.Imm, in.B)
		}
		switch in.Op {
		case OpMFSPR, OpMTSPR:
			return fmt.Sprintf("%s r%d, %d", info.Name, in.A, in.Imm)
		case OpJALR:
			return fmt.Sprintf("%s r%d, %d(r%d)", info.Name, in.A, in.Imm, in.B)
		}
		return fmt.Sprintf("%s r%d, r%d, %d", info.Name, in.A, in.B, in.Imm)
	case FmtS:
		return fmt.Sprintf("%s r%d, %d(r%d)", info.Name, in.A, in.Imm, in.B)
	case FmtB:
		return fmt.Sprintf("%s r%d, r%d, %d", info.Name, in.A, in.B, in.Imm)
	case FmtU:
		return fmt.Sprintf("%s r%d, %d", info.Name, in.A, in.Imm)
	case FmtJ:
		return fmt.Sprintf("%s r%d, %d", info.Name, in.A, in.Imm)
	default:
		return info.Name
	}
}
